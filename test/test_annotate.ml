(* Tests for line-level profiling: the line table emitted by the
   compiler, the VM's exact instruction counts, the Icount data file,
   and the annotated-source listing. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let source =
  {|var total;

fun hot(x) {
  var i;
  var s = 0;
  for (i = 0; i < 40; i = i + 1) { s = s + x * i; }
  return s;
}

fun cold(x) {
  return x + 1;
}

fun main() {
  var k;
  for (k = 0; k < 2000; k = k + 1) { total = total + hot(k); }
  total = total + cold(7);
  print(total);
  return 0;
}
|}

let compile ?(options = Compile.Codegen.profiling_options) () =
  match Compile.Codegen.compile_source ~options source with
  | Ok o -> o
  | Error e -> Alcotest.failf "compile: %s" e

let run_counting o =
  let m =
    Vm.Machine.create
      ~config:{ Vm.Machine.default_config with count_instructions = true }
      o
  in
  (match Vm.Machine.run m with
  | Vm.Machine.Halted -> ()
  | _ -> Alcotest.fail "did not halt");
  m

(* ------------------------------------------------------------------ *)
(* Line tables *)

let test_line_table_emitted () =
  let o = compile () in
  check_bool "line table nonempty" true (Array.length o.Objcode.Objfile.lines > 0);
  (match Objcode.Objfile.validate o with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es));
  (* The hot loop is on source line 6; its body instructions must map
     back to line 6. *)
  let ranges = Objcode.Objfile.addrs_of_line o 6 in
  check_bool "line 6 has code" true (ranges <> []);
  List.iter
    (fun (first, last) ->
      for a = first to last do
        Alcotest.(check (option int))
          (Printf.sprintf "addr %d maps to line 6" a)
          (Some 6)
          (Objcode.Objfile.line_of_addr o a)
      done)
    ranges

let test_line_table_covers_functions () =
  let o = compile () in
  (* every instruction of a compiled-from-source binary has a line *)
  Array.iteri
    (fun pc _ ->
      check_bool
        (Printf.sprintf "pc %d has a line" pc)
        true
        (Objcode.Objfile.line_of_addr o pc <> None))
    o.Objcode.Objfile.text

let test_line_table_roundtrips () =
  let o = compile () in
  match Objcode.Objfile.of_string (Objcode.Objfile.to_string o) with
  | Ok o2 ->
    check_bool "line table survives serialization" true
      (o.Objcode.Objfile.lines = o2.Objcode.Objfile.lines)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Instruction counts *)

let test_instruction_counts () =
  let o = compile () in
  let m = run_counting o in
  let counts = Option.get (Vm.Machine.instruction_counts m) in
  (* hot's entry (the mcount instruction) runs once per call. *)
  let hot = Option.get (Objcode.Objfile.symbol_by_name o "hot") in
  check_int "hot entered 2000 times" 2000 counts.(hot.addr);
  let cold = Option.get (Objcode.Objfile.symbol_by_name o "cold") in
  check_int "cold entered once" 1 counts.(cold.addr);
  (* total executed instructions bounded by cycles *)
  let total = Array.fold_left ( + ) 0 counts in
  check_bool "cycles exceed instruction count" true (Vm.Machine.cycles m >= total)

let test_counts_disabled_by_default () =
  let o = compile () in
  let m = Vm.Machine.create o in
  ignore (Vm.Machine.run m);
  check_bool "no counts unless configured" true
    (Vm.Machine.instruction_counts m = None)

let test_icount_roundtrip () =
  let o = compile () in
  let m = run_counting o in
  let ic = Gmon.Icount.of_counts (Option.get (Vm.Machine.instruction_counts m)) in
  (match Gmon.Icount.of_bytes (Gmon.Icount.to_bytes ic) with
  | Ok ic2 -> check_bool "roundtrip" true (Gmon.Icount.equal ic ic2)
  | Error e -> Alcotest.fail e);
  let path = Filename.temp_file "icount" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (match Gmon.Icount.save ic path with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      match Gmon.Icount.load path with
      | Ok ic2 -> check_bool "file roundtrip" true (Gmon.Icount.equal ic ic2)
      | Error e -> Alcotest.fail e)

let test_icount_merge_and_errors () =
  let a = Gmon.Icount.of_counts [| 1; 0; 3 |] in
  let b = Gmon.Icount.of_counts [| 2; 5; 0 |] in
  (match Gmon.Icount.merge a b with
  | Ok m -> Alcotest.(check (array int)) "merged" [| 3; 5; 3 |] m.counts
  | Error e -> Alcotest.fail e);
  (match Gmon.Icount.merge a (Gmon.Icount.of_counts [| 1 |]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "size mismatch accepted");
  (match Gmon.Icount.of_bytes "junk" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "junk accepted");
  Alcotest.check_raises "count bounds"
    (Invalid_argument "Icount.count: address out of range") (fun () ->
      ignore (Gmon.Icount.count a 3))

let icount_roundtrip_prop =
  QCheck.Test.make ~name:"icount binary round-trip" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 60) (int_range 0 1000))
    (fun counts ->
      let ic = Gmon.Icount.of_counts (Array.of_list counts) in
      match Gmon.Icount.of_bytes (Gmon.Icount.to_bytes ic) with
      | Ok ic2 -> Gmon.Icount.equal ic ic2
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Annotated listings *)

let annotate () =
  let o = compile () in
  let m = run_counting o in
  let gmon = Vm.Machine.profile m in
  let ic = Gmon.Icount.of_counts (Option.get (Vm.Machine.instruction_counts m)) in
  match Gprof_core.Annotate.analyze ~icounts:ic ~source o gmon with
  | Ok t -> t
  | Error e -> Alcotest.failf "annotate: %s" e

let test_annotate_basic () =
  let t = annotate () in
  check_int "one info per source line" (List.length (String.split_on_char '\n' source))
    (List.length t.infos);
  (* the hot loop line dominates *)
  (match Gprof_core.Annotate.hottest t 1 with
  | [ li ] ->
    check_int "hottest line is the loop" 6 li.li_line;
    check_bool "majority of time" true (li.li_ticks > 0.5 *. t.total_ticks);
    (match li.li_execs with
    | Some n -> check_int "loop entered once per call" 2000 n
    | None -> Alcotest.fail "execs missing")
  | _ -> Alcotest.fail "hottest empty");
  (* declaration-only and blank lines carry no code *)
  let info n = List.nth t.infos (n - 1) in
  check_bool "line 1 (global) has no code" false (info 1).li_has_code;
  check_bool "line 2 (blank) has no code" false (info 2).li_has_code;
  check_bool "line 16 (main loop) has code" true (info 16).li_has_code

let test_annotate_listing_renders () =
  let t = annotate () in
  let s = Gprof_core.Annotate.listing t in
  check_bool "mentions loop source" true
    (contains ~needle:"for (i = 0; i < 40; i = i + 1)" s);
  check_bool "headers" true (contains ~needle:"executions" s)

let test_annotate_without_counts () =
  let o = compile () in
  let m = Vm.Machine.create o in
  ignore (Vm.Machine.run m);
  match Gprof_core.Annotate.analyze ~source o (Vm.Machine.profile m) with
  | Ok t ->
    List.iter
      (fun (li : Gprof_core.Annotate.line_info) ->
        check_bool "no exec column" true (li.li_execs = None))
      t.infos
  | Error e -> Alcotest.fail e

let test_annotate_requires_line_table () =
  let o = compile () in
  let o_stripped = { o with Objcode.Objfile.lines = [||] } in
  let m = Vm.Machine.create o in
  ignore (Vm.Machine.run m);
  match Gprof_core.Annotate.analyze ~source o_stripped (Vm.Machine.profile m) with
  | Error e -> check_bool "explains" true (contains ~needle:"line table" e)
  | Ok _ -> Alcotest.fail "accepted a binary without line info"

let test_annotate_rejects_foreign_counts () =
  let o = compile () in
  let m = Vm.Machine.create o in
  ignore (Vm.Machine.run m);
  let bad = Gmon.Icount.of_counts [| 1; 2; 3 |] in
  match Gprof_core.Annotate.analyze ~icounts:bad ~source o (Vm.Machine.profile m) with
  | Error e -> check_bool "explains" true (contains ~needle:"different binary" e)
  | Ok _ -> Alcotest.fail "accepted counts for a different binary"

let test_annotate_tick_conservation () =
  let t = annotate () in
  let o = compile () in
  let m = run_counting o in
  let gmon = Vm.Machine.profile m in
  check_bool "annotated ticks equal histogram ticks" true
    (abs_float (t.total_ticks -. float_of_int (Gmon.total_ticks gmon)) < 1e-6)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "annotate"
    [
      ( "lines",
        [
          Alcotest.test_case "emitted" `Quick test_line_table_emitted;
          Alcotest.test_case "covers all code" `Quick test_line_table_covers_functions;
          Alcotest.test_case "serialization" `Quick test_line_table_roundtrips;
        ] );
      ( "icount",
        [
          Alcotest.test_case "exact counts" `Quick test_instruction_counts;
          Alcotest.test_case "off by default" `Quick test_counts_disabled_by_default;
          Alcotest.test_case "roundtrip" `Quick test_icount_roundtrip;
          Alcotest.test_case "merge and errors" `Quick test_icount_merge_and_errors;
          qt icount_roundtrip_prop;
        ] );
      ( "annotate",
        [
          Alcotest.test_case "basic" `Quick test_annotate_basic;
          Alcotest.test_case "listing" `Quick test_annotate_listing_renders;
          Alcotest.test_case "without counts" `Quick test_annotate_without_counts;
          Alcotest.test_case "requires line table" `Quick test_annotate_requires_line_table;
          Alcotest.test_case "foreign counts" `Quick test_annotate_rejects_foreign_counts;
          Alcotest.test_case "tick conservation" `Quick test_annotate_tick_conservation;
        ] );
    ]
