(* Tests for the profile-guided optimization subsystem: the
   profile-to-program pairing guard, the inline/layout/order decisions,
   determinism of the decision log, and the proflint pairing rules. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let profile_of (w : Workloads.Programs.t) =
  match Workloads.Driver.run w with
  | Ok r -> r
  | Error e -> Alcotest.failf "driver %s: %s" w.w_name e

let optimize (w : Workloads.Programs.t) gmon =
  let p = Mini.Parser.parse_program w.w_source in
  match
    Pgo.optimize ~options:Compile.Codegen.profiling_options
      ~source_name:w.w_name p gmon
  with
  | Ok r -> r
  | Error e -> Alcotest.failf "optimize %s: %s" w.w_name e

let run_halted obj =
  let m = Vm.Machine.create obj in
  match Vm.Machine.run m with
  | Vm.Machine.Halted -> m
  | Vm.Machine.Faulted f -> Alcotest.failf "fault: %a" Vm.Machine.pp_fault f
  | Vm.Machine.Running -> Alcotest.fail "did not halt"

(* ------------------------------------------------------------------ *)

let test_optimize_improves_matrix () =
  let base = profile_of Workloads.Programs.matrix in
  let obj, report = optimize Workloads.Programs.matrix base.gmon in
  let m = run_halted obj in
  check_bool "fewer instructions" true
    (Vm.Machine.instructions_executed m
    < Vm.Machine.instructions_executed base.machine);
  check_bool "fewer cycles" true
    (Vm.Machine.cycles m < Vm.Machine.cycles base.machine);
  check_string "same output" (Vm.Machine.output base.machine)
    (Vm.Machine.output m);
  check_bool "the accessors were inlined" true
    (List.mem "get_a" report.Pgo.p_inline_names
    && List.mem "get_b" report.Pgo.p_inline_names);
  (* every baseline routine keeps a slot in the emitted order *)
  check_int "order covers all functions"
    (Array.length base.objfile.Objcode.Objfile.symbols)
    (List.length report.Pgo.p_order)

let test_report_is_deterministic () =
  let base = profile_of Workloads.Programs.sort in
  let obj1, r1 = optimize Workloads.Programs.sort base.gmon in
  let obj2, r2 = optimize Workloads.Programs.sort base.gmon in
  check_bool "binaries byte-identical" true (Objcode.Objfile.equal obj1 obj2);
  check_string "decision logs byte-identical" (Pgo.report_listing r1)
    (Pgo.report_listing r2);
  (* the log names its inputs, so a stale one cannot masquerade *)
  let contains needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "log names the source" true
    (contains "sort" (Pgo.report_listing r1))

let test_mismatched_profile_refused () =
  (* a profile of one program must not silently optimize another *)
  let base = profile_of Workloads.Programs.quick in
  let p = Mini.Parser.parse_program Workloads.Programs.sort.w_source in
  match
    Pgo.optimize ~options:Compile.Codegen.profiling_options ~source_name:"sort"
      p base.gmon
  with
  | Ok _ -> Alcotest.fail "mismatched profile accepted"
  | Error e ->
    check_bool "refusal explains the pairing failure" true
      (String.length e > 0)

let test_optimized_binary_reprofiles_cleanly () =
  let base = profile_of Workloads.Programs.sort in
  let obj, _ = optimize Workloads.Programs.sort base.gmon in
  let m = run_halted obj in
  let fresh = Vm.Machine.profile m in
  check_int "fresh profile lints clean (strict)" 0
    (Analysis.Proflint.exit_code ~strict:true (Analysis.Proflint.lint obj fresh))

let test_lint_pgo_pairing_rules () =
  let base = profile_of Workloads.Programs.matrix in
  let obj, _ = optimize Workloads.Programs.matrix base.gmon in
  let lint = Analysis.Proflint.lint_pgo ~baseline:base.objfile obj in
  check_int "no errors or warnings" 0
    (Analysis.Proflint.exit_code ~strict:true lint);
  check_bool "inlined-away accessors are noted" true
    (List.exists
       (fun (f : Analysis.Proflint.finding) ->
         f.f_rule = "pgo-inlined-away" && f.f_func = Some "get_a")
       lint.l_findings);
  (* an unrelated binary is no rebuild of the baseline: symbols differ *)
  let other = profile_of Workloads.Programs.sort in
  let cross = Analysis.Proflint.lint_pgo ~baseline:base.objfile other.objfile in
  check_bool "missing symbols are errors" true
    (List.exists
       (fun (f : Analysis.Proflint.finding) ->
         f.f_rule = "pgo-symbol-missing"
         && f.f_severity = Analysis.Proflint.Error)
       cross.l_findings)

let test_forced_inline_overrides_heat () =
  (* --inline names must be honoured even when the profile says cold *)
  let base = profile_of Workloads.Programs.sort in
  let p = Mini.Parser.parse_program Workloads.Programs.sort.w_source in
  let options =
    { Compile.Codegen.profiling_options with inline = [ "less" ] }
  in
  match Pgo.optimize ~options ~source_name:"sort" p base.gmon with
  | Error e -> Alcotest.failf "optimize: %s" e
  | Ok (_, report) ->
    let d =
      List.find
        (fun (d : Pgo.inline_decision) -> d.i_callee = "less")
        report.Pgo.p_inline
    in
    check_bool "taken" true d.Pgo.i_taken;
    check_string "reason records the flag" "forced by --inline"
      d.Pgo.i_why

let () =
  Alcotest.run "pgo"
    [
      ( "optimize",
        [
          Alcotest.test_case "improves matrix" `Slow test_optimize_improves_matrix;
          Alcotest.test_case "report deterministic" `Slow
            test_report_is_deterministic;
          Alcotest.test_case "mismatched profile refused" `Slow
            test_mismatched_profile_refused;
          Alcotest.test_case "optimized binary reprofiles cleanly" `Slow
            test_optimized_binary_reprofiles_cleanly;
          Alcotest.test_case "forced inline overrides heat" `Slow
            test_forced_inline_overrides_heat;
        ] );
      ( "lint",
        [ Alcotest.test_case "pairing rules" `Slow test_lint_pgo_pairing_rules ] );
    ]
