(* Tests for the Mini frontend: lexer, parser, pretty-printer
   round-trips, and the static checker. *)

open Mini

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Lexer *)

let toks src = List.map fst (Lexer.tokenize src)

let test_lex_basics () =
  Alcotest.(check int) "count"
    8
    (List.length (toks "fun f ( x ) { }"));
  match toks "var x = 42;" with
  | [ Lexer.KW_VAR; Lexer.IDENT "x"; Lexer.ASSIGN; Lexer.INT 42; Lexer.SEMI;
      Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "unexpected tokens"

let test_lex_operators () =
  match toks "<= >= == != && || < > = ! + - * / %" with
  | [ Lexer.LE; Lexer.GE; Lexer.EQ; Lexer.NE; Lexer.AMPAMP; Lexer.BARBAR;
      Lexer.LT; Lexer.GT; Lexer.ASSIGN; Lexer.BANG; Lexer.PLUS; Lexer.MINUS;
      Lexer.STAR; Lexer.SLASH; Lexer.PERCENT; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "operator tokens wrong"

let test_lex_comments () =
  check_int "line comment" 2 (List.length (toks "x // rest is gone\n"));
  check_int "block comment" 3 (List.length (toks "a /* b c d */ e"));
  check_int "comment at eof" 1 (List.length (toks "// nothing"))

let test_lex_positions () =
  let all = Lexer.tokenize "x\n  y" in
  match all with
  | [ (_, l1); (_, l2); (_, _) ] ->
    check_int "x line" 1 l1.Ast.line;
    check_int "x col" 1 l1.Ast.col;
    check_int "y line" 2 l2.Ast.line;
    check_int "y col" 3 l2.Ast.col
  | _ -> Alcotest.fail "token count"

let expect_lex_error src =
  match Lexer.tokenize src with
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.fail ("expected lex error on " ^ src)

let test_lex_errors () =
  expect_lex_error "@";
  expect_lex_error "a & b";
  expect_lex_error "a | b";
  expect_lex_error "/* unterminated";
  expect_lex_error "123abc";
  expect_lex_error "99999999999999999999999999"

(* ------------------------------------------------------------------ *)
(* Parser *)

let parse_ok src =
  match Parser.parse_program src with
  | p -> p
  | exception Parser.Error (msg, loc) ->
    Alcotest.failf "unexpected parse error %a: %s" Ast.pp_loc loc msg

let expect_parse_error src =
  match Parser.parse_program src with
  | exception Parser.Error _ -> ()
  | _ -> Alcotest.fail ("expected parse error on: " ^ src)

let test_parse_program_shapes () =
  let p = parse_ok "var g = 3; array t[10]; fun f(a, b) { return a + b; }" in
  check_int "globals" 2 (List.length p.globals);
  check_int "funs" 1 (List.length p.funs);
  (match p.globals with
  | [ Ast.Gvar ("g", 3, _); Ast.Garray ("t", 10, _) ] -> ()
  | _ -> Alcotest.fail "global shapes");
  match p.funs with
  | [ { Ast.fname = "f"; params = [ "a"; "b" ]; body = [ _ ]; _ } ] -> ()
  | _ -> Alcotest.fail "fun shape"

let test_parse_negative_global () =
  match (parse_ok "var g = -7;").globals with
  | [ Ast.Gvar ("g", -7, _) ] -> ()
  | _ -> Alcotest.fail "negative initializer"

let test_parse_precedence () =
  let e = Parser.parse_expr "1 + 2 * 3" in
  (match e.desc with
  | Ast.Binop (Ast.Add, { desc = Ast.Int 1; _ },
               { desc = Ast.Binop (Ast.Mul, _, _); _ }) -> ()
  | _ -> Alcotest.fail "mul binds tighter than add");
  let e = Parser.parse_expr "1 - 2 - 3" in
  (match e.desc with
  | Ast.Binop (Ast.Sub, { desc = Ast.Binop (Ast.Sub, _, _); _ },
               { desc = Ast.Int 3; _ }) -> ()
  | _ -> Alcotest.fail "sub left-associates");
  let e = Parser.parse_expr "a || b && c" in
  (match e.desc with
  | Ast.Binop (Ast.Or, { desc = Ast.Var "a"; _ },
               { desc = Ast.Binop (Ast.And, _, _); _ }) -> ()
  | _ -> Alcotest.fail "and binds tighter than or");
  let e = Parser.parse_expr "1 + 2 < 3 * 4" in
  match e.desc with
  | Ast.Binop (Ast.Lt, { desc = Ast.Binop (Ast.Add, _, _); _ },
               { desc = Ast.Binop (Ast.Mul, _, _); _ }) -> ()
  | _ -> Alcotest.fail "comparison binds loosest of arithmetic"

let test_parse_unary () =
  (match (Parser.parse_expr "-5").desc with
  | Ast.Int (-5) -> ()
  | _ -> Alcotest.fail "negative literal folded");
  (match (Parser.parse_expr "-x").desc with
  | Ast.Unop (Ast.Neg, { desc = Ast.Var "x"; _ }) -> ()
  | _ -> Alcotest.fail "negation of variable");
  match (Parser.parse_expr "!!x").desc with
  | Ast.Unop (Ast.Not, { desc = Ast.Unop (Ast.Not, _); _ }) -> ()
  | _ -> Alcotest.fail "double not"

let test_parse_calls () =
  (match (Parser.parse_expr "f(1, 2)").desc with
  | Ast.Call ({ desc = Ast.Var "f"; _ }, [ _; _ ]) -> ()
  | _ -> Alcotest.fail "direct call");
  (match (Parser.parse_expr "t[i](x)").desc with
  | Ast.Call ({ desc = Ast.Index ("t", _); _ }, [ _ ]) -> ()
  | _ -> Alcotest.fail "computed callee");
  match (Parser.parse_expr "f(1)(2)").desc with
  | Ast.Call ({ desc = Ast.Call _; _ }, [ _ ]) -> ()
  | _ -> Alcotest.fail "curried-style call chain"

let test_parse_statements () =
  let p =
    parse_ok
      {|
fun f(n) {
  var x = 1;
  var y;
  x = x + 1;
  t[x] = n;
  if (x < n) { x = 0; } else if (x == n) { x = 1; } else { x = 2; }
  while (x > 0) { x = x - 1; }
  for (y = 0; y < 10; y = y + 1) { f(y); }
  return x;
}
array t[4];
|}
  in
  match p.funs with
  | [ { Ast.body; _ } ] -> check_int "statements" 8 (List.length body)
  | _ -> Alcotest.fail "fun count"

let test_parse_expr_statement_forms () =
  (* Expression statements whose head was consumed during
     disambiguation. *)
  let p =
    parse_ok
      {|
array t[4];
fun g() { return 0; }
fun f(h) {
  g();
  h(3);
  t[0](7);
  g() + 1;
  t[1] * 2;
  h;
  return 0;
}
|}
  in
  match p.funs with
  | [ _; { Ast.body; _ } ] -> check_int "statements" 7 (List.length body)
  | _ -> Alcotest.fail "fun count"

let test_parse_errors () =
  expect_parse_error "fun f( { }";
  expect_parse_error "fun f() { return 1 }";
  expect_parse_error "fun f() { x = ; }";
  expect_parse_error "fun f() { if x { } }";
  expect_parse_error "fun f() { a < b < c; }";
  expect_parse_error "var x = y;";
  expect_parse_error "array a[0];";
  expect_parse_error "array a[-3];";
  expect_parse_error "fun f() { for (f(); 1; x = 1) { } }";
  expect_parse_error "fun f() {";
  expect_parse_error "garbage";
  expect_parse_error "fun f() { } trailing";
  (match Parser.parse_expr "1 +" with
  | exception Parser.Error _ -> ()
  | _ -> Alcotest.fail "dangling operator");
  match Parser.parse_expr "1 2" with
  | exception Parser.Error _ -> ()
  | _ -> Alcotest.fail "trailing input"

(* ------------------------------------------------------------------ *)
(* Pretty-printer round-trip *)

let roundtrip src =
  let p1 = parse_ok src in
  let printed = Pprint.program p1 in
  match Parser.parse_program printed with
  | exception Parser.Error (msg, loc) ->
    Alcotest.failf "reparse failed (%a: %s); printed was:\n%s" Ast.pp_loc loc msg
      printed
  | p2 ->
    check_bool
      (Printf.sprintf "round trip of:\n%s\nprinted:\n%s" src printed)
      true
      (Ast.equal_program p1 p2)

let test_roundtrip_hand_cases () =
  roundtrip "fun f() { return 1 + 2 * 3 - 4 / 5 % 6; }";
  roundtrip "fun f() { return (1 + 2) * 3; }";
  roundtrip "fun f() { return 1 - (2 - 3); }";
  roundtrip "fun f(a, b) { return a && b || !a && !b; }";
  roundtrip "fun f(a) { return (a < 3) == (a > 1); }";
  roundtrip "fun f(a) { return -a + -3; }";
  roundtrip "var g = -9; fun f() { return g; }";
  roundtrip
    {|
array t[8];
fun f(h, n) {
  var i;
  for (i = 0; i < n; i = i + 1) {
    if (i % 2 == 0) { t[i] = h(i); } else { t[i] = f(h, i - 1); }
  }
  while (n > 0 && t[0] != 1) { n = n - 1; }
  h;
  return t[n];
}
|};
  roundtrip
    {|
fun f(x) {
  if (x == 0) { return 1; } else if (x == 1) { return 2; } else { return 3; }
}
|};
  roundtrip
    {|
fun f(n) {
  var i;
  for (i = 0; i < n; i = i + 1) {
    if (i == 7) { break; }
    if (i % 2 == 0) { continue; }
    while (n > 0) { n = n - 1; break; }
  }
  return i;
}
|}

let test_roundtrip_workloads () =
  List.iter
    (fun (w : Workloads.Programs.t) -> roundtrip w.w_source)
    Workloads.Programs.all

(* Random expression generator for the round-trip property. Avoids
   Unop(Neg, Int _) which the parser deliberately folds. *)
let gen_expr : Ast.expr QCheck.Gen.t =
  let open QCheck.Gen in
  let var = oneofl [ "a"; "b"; "c" ] in
  sized (fun size ->
      fix
        (fun self size ->
          let leaf =
            oneof
              [
                map (fun n -> Ast.mk_expr (Ast.Int n)) (int_range (-50) 50);
                map (fun v -> Ast.mk_expr (Ast.Var v)) var;
              ]
          in
          if size <= 1 then leaf
          else
            let sub = self (size / 2) in
            oneof
              [
                leaf;
                map (fun i -> Ast.mk_expr (Ast.Index ("t", i))) sub;
                map2
                  (fun f args -> Ast.mk_expr (Ast.Call (f, args)))
                  (map (fun v -> Ast.mk_expr (Ast.Var v)) var)
                  (list_size (int_range 0 3) sub);
                (let* op =
                   oneofl
                     [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Mod; Ast.And;
                       Ast.Or ]
                 in
                 map2 (fun l r -> Ast.mk_expr (Ast.Binop (op, l, r))) sub sub);
                (let* op = oneofl [ Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.Eq; Ast.Ne ] in
                 map2 (fun l r -> Ast.mk_expr (Ast.Binop (op, l, r))) sub sub);
                (map (fun e ->
                     match e.Ast.desc with
                     | Ast.Int _ -> Ast.mk_expr (Ast.Unop (Ast.Not, e))
                     | _ -> Ast.mk_expr (Ast.Unop (Ast.Neg, e)))
                   sub);
              ])
        size)

let expr_roundtrip_prop =
  QCheck.Test.make ~name:"pretty-printed expressions reparse to the same AST"
    ~count:500
    (QCheck.make ~print:(fun e -> Pprint.expr e) gen_expr)
    (fun e ->
      let printed = Pprint.expr e in
      match Parser.parse_expr printed with
      | e2 -> Ast.equal_expr e e2
      | exception Parser.Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Checker *)

let errors_of ?(builtins = Compile.Builtins.arities) src =
  Check.check ~builtins (parse_ok src)

let expect_error ?builtins src fragment =
  let errs = errors_of ?builtins src in
  let found =
    List.exists
      (fun (e : Check.error) ->
        let msg = e.msg in
        let n = String.length fragment and h = String.length msg in
        let rec go i = i + n <= h && (String.sub msg i n = fragment || go (i + 1)) in
        go 0)
      errs
  in
  if not found then
    Alcotest.failf "expected error containing %S; got: %s" fragment
      (String.concat " | "
         (List.map (fun (e : Check.error) -> e.msg) errs))

let test_check_ok () =
  List.iter
    (fun (w : Workloads.Programs.t) ->
      match errors_of w.w_source with
      | [] -> ()
      | errs ->
        Alcotest.failf "workload %s: %s" w.w_name
          (String.concat "; " (List.map (fun (e : Check.error) -> e.msg) errs)))
    Workloads.Programs.all

let test_check_unbound () =
  expect_error "fun f() { return nope; }" "unbound variable nope";
  expect_error "fun f() { return g(1); }" "unbound function g";
  expect_error "fun f() { x = 1; return 0; }" "unbound variable x";
  expect_error "fun f() { t[0] = 1; return 0; }" "unbound array t"

let test_check_duplicates () =
  expect_error "var g; var g;" "duplicate global g";
  expect_error "fun f() { return 0; } fun f() { return 1; }" "duplicate definition of f";
  expect_error "fun f(a, a) { return a; }" "duplicate parameter a";
  expect_error "fun f() { var x; var x; return 0; }" "duplicate local declaration of x";
  expect_error "fun print(x) { return x; }" "duplicate definition of print"

let test_check_arity () =
  expect_error "fun f(a) { return a; } fun g() { return f(); }" "expects 1 argument";
  expect_error "fun f() { return print(1, 2); }" "expects 1 argument";
  (* Indirect calls are not arity-checked. *)
  Alcotest.(check int) "indirect unchecked" 0
    (List.length
       (errors_of "fun f(a) { return a; } fun g(h) { return h(1, 2, 3); }"))

let test_check_shapes () =
  expect_error "array t[4]; fun f() { return t; }" "cannot be used as a value";
  expect_error "array t[4]; fun f() { return t(1); }" "cannot be called";
  expect_error "var g; fun f() { return g[0]; }" "is not an array";
  expect_error "fun f() { f = 3; return 0; }" "cannot assign to function";
  expect_error "array t[4]; fun f() { t = 3; return 0; }" "cannot assign to array";
  expect_error "fun f() { return print; }" "may only be called directly";
  expect_error "fun f() { var i; for (i = 0; i < 3; var j = 1) { } return 0; }"
    "for-step may not declare";
  expect_error "fun f() { break; return 0; }" "break outside of a loop";
  expect_error "fun f() { continue; return 0; }" "continue outside of a loop";
  Alcotest.(check int) "break inside loop is fine" 0
    (List.length
       (errors_of "fun f() { while (1) { break; } return 0; }"))

let test_check_function_values_ok () =
  Alcotest.(check int) "function as value is fine" 0
    (List.length
       (errors_of
          "fun f(x) { return x; } fun g() { var h = f; return h(1); }"))

(* The known-callee warning pass over indirect call sites. *)

let warnings_of ?(builtins = Compile.Builtins.arities) src =
  Check.warnings ~builtins (parse_ok src)

let expect_warning src fragment =
  let warns = warnings_of src in
  let found =
    List.exists
      (fun (w : Check.error) ->
        let n = String.length fragment and h = String.length w.msg in
        let rec go i =
          i + n <= h && (String.sub w.msg i n = fragment || go (i + 1))
        in
        go 0)
      warns
  in
  if not found then
    Alcotest.failf "expected warning containing %S; got: %s" fragment
      (String.concat " | "
         (List.map (fun (w : Check.error) -> w.msg) warns))

let test_warnings_clean_workloads () =
  List.iter
    (fun (w : Workloads.Programs.t) ->
      match Check.warnings ~builtins:Compile.Builtins.arities (parse_ok w.w_source) with
      | [] -> ()
      | warns ->
        Alcotest.failf "workload %s: %s" w.w_name
          (String.concat "; " (List.map (fun (e : Check.error) -> e.msg) warns)))
    Workloads.Programs.all

let test_warnings_never_a_function () =
  expect_warning "var v; fun f() { return v(1); }"
    "never assigned a function value";
  expect_warning "fun f() { var x = 3; return x(1); }"
    "never assigned a function value"

let test_warnings_arity_mismatch () =
  expect_warning
    "fun one(a) { return a; } fun g() { var h = one; return h(1, 2); }"
    "no possible callee of h takes 2 arguments (candidates: one/1)";
  (* a matching candidate anywhere in the set silences the site *)
  Alcotest.(check int) "mixed arities with a match are fine" 0
    (List.length
       (warnings_of
          "fun one(a) { return a; } fun two(a, b) { return a + b; } \
           fun g(k) { var h; if (k) { h = one; } else { h = two; } \
           return h(1, 2); }"))

let test_warnings_flow_through_calls () =
  (* the function value flows through an argument into a parameter *)
  expect_warning
    "fun one(a) { return a; } fun apply(h) { return h(1, 2); } \
     fun g() { return apply(one); }"
    "no possible callee of h takes 2 arguments";
  (* ... and through an array and a return value *)
  expect_warning
    "array tab[2]; fun one(a) { return a; } \
     fun pick() { return tab[0]; } \
     fun g() { tab[0] = one; var h = pick(); return h(1, 2); }"
    "no possible callee of h takes 2 arguments"

let test_warnings_constant_conditions () =
  expect_warning "fun main() { if (0) { return 1; } return 0; }"
    "if condition is constantly false";
  expect_warning "fun main() { if (3) { return 1; } return 0; }"
    "if condition is constantly true";
  expect_warning "fun main() { while (0) { return 1; } return 0; }"
    "while condition is constantly false";
  expect_warning "fun main() { var i; for (i = 0; 0; i = i + 1) { } return 0; }"
    "for condition is constantly false";
  (* the deliberate infinite loop is idiom, not a bug *)
  (match warnings_of "fun main() { while (1) { return 0; } return 1; }" with
  | [] -> ()
  | ws ->
    Alcotest.failf "while (1) should be quiet, got: %s"
      (String.concat " | " (List.map (fun (w : Check.error) -> w.msg) ws)));
  (* a non-literal condition stays quiet even when foldable *)
  match warnings_of "fun main() { if (1 < 2) { return 1; } return 0; }" with
  | [] -> ()
  | _ -> Alcotest.fail "non-literal conditions are the folder's business"

let test_check_entry () =
  (match Check.check_entry (parse_ok "fun main() { return 0; }") with
  | [] -> ()
  | _ -> Alcotest.fail "main ok");
  (match Check.check_entry (parse_ok "fun f() { return 0; }") with
  | [ e ] -> check_bool "no main" true (e.msg = "program has no main function")
  | _ -> Alcotest.fail "expected one error");
  match Check.check_entry (parse_ok "fun main(x) { return x; }") with
  | [ e ] -> check_bool "main params" true (e.msg = "main must take no parameters")
  | _ -> Alcotest.fail "expected one error"

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "mini"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lex_basics;
          Alcotest.test_case "operators" `Quick test_lex_operators;
          Alcotest.test_case "comments" `Quick test_lex_comments;
          Alcotest.test_case "positions" `Quick test_lex_positions;
          Alcotest.test_case "errors" `Quick test_lex_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "program shapes" `Quick test_parse_program_shapes;
          Alcotest.test_case "negative global" `Quick test_parse_negative_global;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "unary" `Quick test_parse_unary;
          Alcotest.test_case "calls" `Quick test_parse_calls;
          Alcotest.test_case "statements" `Quick test_parse_statements;
          Alcotest.test_case "expr statements" `Quick test_parse_expr_statement_forms;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "pprint",
        [
          Alcotest.test_case "hand cases" `Quick test_roundtrip_hand_cases;
          Alcotest.test_case "workloads" `Quick test_roundtrip_workloads;
          qt expr_roundtrip_prop;
        ] );
      ( "check",
        [
          Alcotest.test_case "workloads are clean" `Quick test_check_ok;
          Alcotest.test_case "unbound names" `Quick test_check_unbound;
          Alcotest.test_case "duplicates" `Quick test_check_duplicates;
          Alcotest.test_case "arity" `Quick test_check_arity;
          Alcotest.test_case "shape misuse" `Quick test_check_shapes;
          Alcotest.test_case "function values" `Quick test_check_function_values_ok;
          Alcotest.test_case "entry point" `Quick test_check_entry;
        ] );
      ( "warnings",
        [
          Alcotest.test_case "workloads are warning-free" `Quick
            test_warnings_clean_workloads;
          Alcotest.test_case "never a function" `Quick
            test_warnings_never_a_function;
          Alcotest.test_case "arity mismatch" `Quick test_warnings_arity_mismatch;
          Alcotest.test_case "flow through calls" `Quick
            test_warnings_flow_through_calls;
          Alcotest.test_case "constant conditions" `Quick
            test_warnings_constant_conditions;
        ] );
    ]
