(* Tests for the profile data format: histogram geometry, validation,
   binary round-trips, and multi-run merging. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk ?(lowpc = 0) ?(highpc = 20) ?(bucket = 1) ?(ticks = []) ?(arcs = [])
    ?(runs = 1) () =
  let hist = Gmon.make_hist ~lowpc ~highpc ~bucket_size:bucket in
  let counts = Array.copy hist.h_counts in
  List.iter (fun (b, c) -> counts.(b) <- c) ticks;
  {
    Gmon.hist = { hist with h_counts = counts };
    arcs =
      List.map (fun (f, s, c) -> { Gmon.a_from = f; a_self = s; a_count = c }) arcs
      |> List.sort (fun (a : Gmon.arc) b ->
             compare (a.a_from, a.a_self) (b.a_from, b.a_self));
    ticks_per_second = 60;
    cycles_per_tick = 16_666;
    runs;
  }

(* ------------------------------------------------------------------ *)

let test_hist_geometry () =
  check_int "buckets exact" 10 (Gmon.n_buckets ~lowpc:0 ~highpc:10 ~bucket_size:1);
  check_int "buckets rounded up" 4 (Gmon.n_buckets ~lowpc:0 ~highpc:10 ~bucket_size:3);
  let h = Gmon.make_hist ~lowpc:5 ~highpc:15 ~bucket_size:3 in
  Alcotest.(check (option int)) "pc below" None (Gmon.bucket_of_pc h 4);
  Alcotest.(check (option int)) "pc at low" (Some 0) (Gmon.bucket_of_pc h 5);
  Alcotest.(check (option int)) "pc mid" (Some 1) (Gmon.bucket_of_pc h 8);
  Alcotest.(check (option int)) "pc at high" None (Gmon.bucket_of_pc h 15);
  Alcotest.(check (pair int int)) "range clipped" (14, 15) (Gmon.bucket_range h 3);
  Alcotest.check_raises "bad bucket size"
    (Invalid_argument "Gmon.make_hist: bucket_size must be positive") (fun () ->
      ignore (Gmon.make_hist ~lowpc:0 ~highpc:10 ~bucket_size:0));
  Alcotest.check_raises "empty range"
    (Invalid_argument "Gmon.make_hist: need 0 <= lowpc < highpc") (fun () ->
      ignore (Gmon.make_hist ~lowpc:10 ~highpc:10 ~bucket_size:1))

let test_totals () =
  let g = mk ~ticks:[ (0, 30); (3, 90) ] () in
  check_int "total ticks" 120 (Gmon.total_ticks g);
  Alcotest.(check (float 1e-9)) "seconds" 2.0 (Gmon.total_seconds g);
  Alcotest.(check (float 1e-9)) "half second" 0.5 (Gmon.seconds_of_ticks g 30)

let test_arc_count_into () =
  let g = mk ~arcs:[ (1, 10, 3); (2, 10, 4); (3, 11, 5) ] () in
  check_int "into 10" 7 (Gmon.arc_count_into g 10);
  check_int "into 11" 5 (Gmon.arc_count_into g 11);
  check_int "into nothing" 0 (Gmon.arc_count_into g 12)

let test_validate () =
  (match Gmon.validate (mk ()) with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat ";" es));
  let bad_counts =
    let g = mk () in
    { g with hist = { g.hist with h_counts = Array.make 3 0 } }
  in
  (match Gmon.validate bad_counts with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "bucket-count mismatch accepted");
  let dup = mk ~arcs:[ (1, 10, 3); (1, 10, 4) ] () in
  (* mk sorts but keeps duplicates *)
  (match Gmon.validate dup with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate arcs accepted");
  let neg = mk ~arcs:[ (1, 10, -1) ] () in
  (match Gmon.validate neg with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "negative arc count accepted");
  (match Gmon.validate { (mk ()) with runs = 0 } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "zero runs accepted");
  (match Gmon.validate { (mk ()) with ticks_per_second = 0 } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "zero clock accepted");
  (* regression: a corrupted bucket size of 0 must produce a clean
     error, not Division_by_zero (found by the bit-flip fuzzer) *)
  let g = mk () in
  match Gmon.validate { g with hist = { g.hist with h_bucket_size = 0 } } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "zero bucket size accepted"

let test_roundtrip_hand () =
  let g = mk ~ticks:[ (0, 3); (7, 11) ] ~arcs:[ (-1, 0, 1); (4, 8, 100) ] ~runs:2 () in
  match Gmon.of_bytes (Gmon.to_bytes g) with
  | Ok g2 -> check_bool "equal" true (Gmon.equal g g2)
  | Error e -> Alcotest.fail e

let test_corrupt_bytes () =
  let g = mk () in
  let bytes = Gmon.to_bytes g in
  (match Gmon.of_bytes "garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad magic accepted");
  (match Gmon.of_bytes (String.sub bytes 0 (String.length bytes - 4)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncation accepted");
  match Gmon.of_bytes (bytes ^ "xx") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing bytes accepted"

let test_save_load () =
  let g = mk ~ticks:[ (2, 5) ] ~arcs:[ (1, 3, 9) ] () in
  let path = Filename.temp_file "gmon" ".out" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (match Gmon.save g path with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      match Gmon.load path with
      | Ok g2 -> check_bool "file roundtrip" true (Gmon.equal g g2)
      | Error e -> Alcotest.fail e)

let test_merge_basics () =
  let a = mk ~ticks:[ (0, 5) ] ~arcs:[ (1, 10, 2); (2, 11, 1) ] () in
  let b = mk ~ticks:[ (0, 7); (3, 1) ] ~arcs:[ (1, 10, 3); (5, 12, 4) ] () in
  match Gmon.merge a b with
  | Error e -> Alcotest.fail e
  | Ok m ->
    check_int "ticks add" 13 (Gmon.total_ticks m);
    check_int "bucket 0" 12 m.hist.h_counts.(0);
    check_int "runs add" 2 m.runs;
    Alcotest.(check (list (triple int int int)))
      "arcs union with sums"
      [ (1, 10, 5); (2, 11, 1); (5, 12, 4) ]
      (List.map (fun (a : Gmon.arc) -> (a.a_from, a.a_self, a.a_count)) m.arcs);
    (match Gmon.validate m with
    | Ok () -> ()
    | Error es -> Alcotest.fail (String.concat ";" es))

let test_merge_mismatch () =
  let a = mk () and b = mk ~highpc:30 () in
  (match Gmon.merge a b with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "layout mismatch accepted");
  let c = { (mk ()) with ticks_per_second = 100 } in
  match Gmon.merge a c with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "clock mismatch accepted"

let test_merge_all () =
  let gs = List.init 5 (fun i -> mk ~ticks:[ (i, i + 1) ] ()) in
  (match Gmon.merge_all gs with
  | Ok m ->
    check_int "five runs" 5 m.runs;
    check_int "summed ticks" 15 (Gmon.total_ticks m)
  | Error e -> Alcotest.fail e);
  match Gmon.merge_all [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty merge accepted"

(* ------------------------------------------------------------------ *)
(* Properties *)

let gen_gmon =
  QCheck.Gen.(
    let* nbuckets = int_range 1 30 in
    let* counts = list_size (return nbuckets) (int_range 0 1000) in
    let* raw_arcs =
      list_size (int_range 0 20)
        (let* f = int_range (-1) 40 in
         let* s = int_range 0 29 in
         let* c = int_range 0 10_000 in
         return (f, s, c))
    in
    let* runs = int_range 1 5 in
    let dedup =
      List.sort_uniq (fun (f1, s1, _) (f2, s2, _) -> compare (f1, s1) (f2, s2)) raw_arcs
    in
    return
      {
        Gmon.hist =
          {
            h_lowpc = 0;
            h_highpc = nbuckets;
            h_bucket_size = 1;
            h_counts = Array.of_list counts;
          };
        arcs =
          List.map (fun (f, s, c) -> { Gmon.a_from = f; a_self = s; a_count = c }) dedup;
        ticks_per_second = 60;
        cycles_per_tick = 16_666;
        runs;
      })

let arb_gmon =
  QCheck.make
    ~print:(fun g -> Format.asprintf "%a" Gmon.pp g)
    gen_gmon

let roundtrip_prop =
  QCheck.Test.make ~name:"binary round-trip preserves profiles" ~count:200 arb_gmon
    (fun g ->
      match Gmon.of_bytes (Gmon.to_bytes g) with
      | Ok g2 -> Gmon.equal g g2
      | Error _ -> false)

let generated_valid =
  QCheck.Test.make ~name:"generated profiles validate" ~count:200 arb_gmon (fun g ->
      Gmon.validate g = Ok ())

(* Force compatible layouts by reusing [a]'s geometry with the other
   profile's data truncated/padded. *)
let fit_to (a : Gmon.t) (g : Gmon.t) =
  let n = Array.length a.Gmon.hist.h_counts in
  let counts =
    Array.init n (fun i ->
        if i < Array.length g.Gmon.hist.h_counts then g.Gmon.hist.h_counts.(i)
        else 0)
  in
  { g with Gmon.hist = { a.Gmon.hist with h_counts = counts } }

let merge_commutative =
  QCheck.Test.make ~name:"merge is commutative" ~count:200
    (QCheck.pair arb_gmon arb_gmon) (fun (a, b) ->
      let a = fit_to a a and b = fit_to a b in
      match (Gmon.merge a b, Gmon.merge b a) with
      | Ok x, Ok y -> Gmon.equal x y
      | _ -> false)

let merge_associative =
  QCheck.Test.make ~name:"merge is associative" ~count:200
    (QCheck.triple arb_gmon arb_gmon arb_gmon) (fun (a, b, c) ->
      let b = fit_to a b and c = fit_to a c in
      let ( >>= ) = Result.bind in
      let left = Gmon.merge a b >>= fun ab -> Gmon.merge ab c in
      let right = Gmon.merge b c >>= fun bc -> Gmon.merge a bc in
      match (left, right) with
      | Ok x, Ok y -> Gmon.equal x y
      | _ -> false)

(* The pairwise merge tree must be invisible: merge_all has to equal a
   plain left fold of merge, on any list length (the store's compaction
   and the daemon's merged view rely on this to agree with offline
   summing bit for bit). *)
let merge_all_equals_fold =
  QCheck.Test.make ~name:"merge_all = left fold of merge" ~count:200
    (QCheck.pair arb_gmon (QCheck.list_of_size (QCheck.Gen.int_range 0 12) arb_gmon))
    (fun (a, rest) ->
      let gs = fit_to a a :: List.map (fit_to a) rest in
      let fold =
        List.fold_left
          (fun acc g -> Result.bind acc (fun x -> Gmon.merge x g))
          (Ok (List.hd gs))
          (List.tl gs)
      in
      match (Gmon.merge_all gs, fold) with
      | Ok x, Ok y -> Gmon.equal x y
      | _ -> false)

let merge_all_order_blind =
  QCheck.Test.make ~name:"merge_all ignores input order" ~count:200
    (QCheck.pair arb_gmon (QCheck.list_of_size (QCheck.Gen.int_range 0 12) arb_gmon))
    (fun (a, rest) ->
      let gs = fit_to a a :: List.map (fit_to a) rest in
      match (Gmon.merge_all gs, Gmon.merge_all (List.rev gs)) with
      | Ok x, Ok y -> Gmon.equal x y
      | _ -> false)

let merge_ticks_additive =
  QCheck.Test.make ~name:"merge adds tick totals" ~count:200
    (QCheck.pair arb_gmon arb_gmon) (fun (a, b) ->
      let fit g =
        let n = Array.length a.Gmon.hist.h_counts in
        let counts =
          Array.init n (fun i ->
              if i < Array.length g.Gmon.hist.h_counts then g.Gmon.hist.h_counts.(i)
              else 0)
        in
        { g with Gmon.hist = { a.Gmon.hist with h_counts = counts } }
      in
      let a = fit a and b = fit b in
      match Gmon.merge a b with
      | Ok m -> Gmon.total_ticks m = Gmon.total_ticks a + Gmon.total_ticks b
      | Error _ -> false)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "gmon"
    [
      ( "hist",
        [
          Alcotest.test_case "geometry" `Quick test_hist_geometry;
          Alcotest.test_case "totals" `Quick test_totals;
          Alcotest.test_case "arc_count_into" `Quick test_arc_count_into;
        ] );
      ( "validate",
        [ Alcotest.test_case "invariants" `Quick test_validate ] );
      ( "serialization",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip_hand;
          Alcotest.test_case "corrupt input" `Quick test_corrupt_bytes;
          Alcotest.test_case "save/load" `Quick test_save_load;
          qt roundtrip_prop;
          qt generated_valid;
        ] );
      ( "merge",
        [
          Alcotest.test_case "basics" `Quick test_merge_basics;
          Alcotest.test_case "mismatch" `Quick test_merge_mismatch;
          Alcotest.test_case "merge_all" `Quick test_merge_all;
          qt merge_commutative;
          qt merge_associative;
          qt merge_all_equals_fold;
          qt merge_all_order_blind;
          qt merge_ticks_additive;
        ] );
    ]
