(* Tests for the fleet-aggregation layer: Gmon.Wire edge cases, the
   sharded profile store (equivalence with offline merging, compaction,
   caching, crash recovery), and the batching ingestion queue. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk ?(lowpc = 0) ?(highpc = 20) ?(bucket = 1) ?(ticks = []) ?(arcs = [])
    ?(runs = 1) () =
  let hist = Gmon.make_hist ~lowpc ~highpc ~bucket_size:bucket in
  let counts = Array.copy hist.h_counts in
  List.iter (fun (b, c) -> counts.(b) <- c) ticks;
  {
    Gmon.hist = { hist with h_counts = counts };
    arcs =
      List.map (fun (f, s, c) -> { Gmon.a_from = f; a_self = s; a_count = c }) arcs
      |> List.sort (fun (a : Gmon.arc) b ->
             compare (a.a_from, a.a_self) (b.a_from, b.a_self));
    ticks_per_second = 60;
    cycles_per_tick = 16_666;
    runs;
  }

(* a small family of distinct, mergeable profiles *)
let sample i =
  mk
    ~ticks:[ (i mod 20, i + 1); ((i * 7) mod 20, 2 * i + 3) ]
    ~arcs:[ (1, 10, i + 1); ((i mod 5) + 2, 11, i + 2) ]
    ()

let offline gs =
  match Gmon.merge_all gs with Ok g -> g | Error e -> Alcotest.fail e

(* fresh store directory per test, cleaned up afterwards *)
let with_dir f =
  let dir = Filename.temp_file "store_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

let open_ok ?shards dir =
  match Store.open_ ?shards dir with
  | Ok (st, rep) -> (st, rep)
  | Error e -> Alcotest.fail e

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let merged_exn st =
  match Store.merged st with
  | Ok (Some g) -> g
  | Ok None -> Alcotest.fail "store unexpectedly empty"
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Wire edge cases: damaged inputs produce structured errors or a
   salvage report — never exceptions. *)

let test_wire_empty () =
  (match Gmon.Wire.split_footer "" with
  | `Missing, 0 -> ()
  | _ -> Alcotest.fail "empty string should have no footer");
  (match Gmon.decode ~mode:`Strict "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty payload accepted (strict)");
  match Gmon.decode ~mode:`Salvage "" with
  | Error _ -> () (* nothing to salvage: the header itself is gone *)
  | Ok _ -> Alcotest.fail "empty payload accepted (salvage)"

let test_wire_footer_only () =
  (* a file holding nothing but a checksum footer: too short to even
     hold a profile header, so the framing layer classifies the footer
     as missing rather than pretending an empty body was verified *)
  let buf = Buffer.create 16 in
  Gmon.Wire.add_footer buf;
  let bytes = Buffer.contents buf in
  (match Gmon.Wire.split_footer bytes with
  | `Missing, n -> check_int "whole file is the body" (String.length bytes) n
  | _ -> Alcotest.fail "footer-only: expected a missing-footer verdict");
  (match Gmon.decode ~mode:`Strict bytes with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "footer-only file accepted (strict)");
  match Gmon.decode ~mode:`Salvage bytes with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "footer-only file accepted (salvage)"

let test_wire_truncated_mid_frame () =
  (* every possible truncation point: strict must reject, salvage must
     either reject or report losses, and neither may raise *)
  let bytes = Gmon.to_bytes (sample 3) in
  for len = 0 to String.length bytes - 1 do
    let cut = String.sub bytes 0 len in
    (match Gmon.decode ~mode:`Strict cut with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "strict accepted a %d-byte prefix" len
    | exception e ->
      Alcotest.failf "strict raised on a %d-byte prefix: %s" len
        (Printexc.to_string e));
    match Gmon.decode ~mode:`Salvage cut with
    | Error _ -> ()
    | Ok (_, rep) ->
      check_bool
        (Printf.sprintf "salvage of a %d-byte prefix reports losses" len)
        true
        (Gmon.report_degraded rep)
    | exception e ->
      Alcotest.failf "salvage raised on a %d-byte prefix: %s" len
        (Printexc.to_string e)
  done

(* ------------------------------------------------------------------ *)
(* The store. *)

let test_store_merged_equals_offline () =
  with_dir @@ fun dir ->
  let st, rep = open_ok ~shards:4 dir in
  check_bool "fresh store created" true rep.Store.or_created;
  let gs = List.init 9 sample in
  List.iteri
    (fun i g -> ok (Store.append st ~label:(Printf.sprintf "host-%d" i) g))
    gs;
  check_bool "merged = offline merge_all" true
    (Gmon.equal (offline gs) (merged_exn st));
  let s = Store.stats st in
  check_int "segments" 9 s.Store.st_segments;
  check_int "total runs" 9 s.Store.st_total_runs;
  check_int "nothing compacted yet" 0 s.Store.st_compacted_runs

let test_store_compaction_preserves_merge () =
  with_dir @@ fun dir ->
  let st, _ = open_ok ~shards:3 dir in
  let first = List.init 6 sample in
  List.iteri
    (fun i g -> ok (Store.append st ~label:(Printf.sprintf "h%d" i) g))
    first;
  let folded = ok (Store.compact st) in
  check_int "all segments folded" 6 folded;
  check_bool "compacted merged view unchanged" true
    (Gmon.equal (offline first) (merged_exn st));
  (* appends after compaction land in the tail and still sum in *)
  let more = [ sample 10; sample 11 ] in
  List.iteri
    (fun i g -> ok (Store.append st ~label:(Printf.sprintf "h%d" i) g))
    more;
  check_bool "compacted + tail" true
    (Gmon.equal (offline (first @ more)) (merged_exn st));
  ignore (ok (Store.compact st));
  check_bool "second compaction" true
    (Gmon.equal (offline (first @ more)) (merged_exn st));
  let s = Store.stats st in
  check_int "tail empty after compaction" 0 s.Store.st_segments;
  check_int "every run in compacted state" 8 s.Store.st_compacted_runs

let cache_counters () =
  let hits =
    Obs.Metrics.counter Obs.Metrics.default "store.cache.hits"
  and misses =
    Obs.Metrics.counter Obs.Metrics.default "store.cache.misses"
  in
  (Obs.Metrics.counter_value hits, Obs.Metrics.counter_value misses)

let test_store_cache_counters () =
  with_dir @@ fun dir ->
  let st, _ = open_ok ~shards:1 dir in
  ok (Store.append st ~label:"a" (sample 1));
  ignore (ok (Store.compact st));
  (* compaction leaves the merged result cached *)
  let h0, m0 = cache_counters () in
  let g1 = merged_exn st in
  let h1, m1 = cache_counters () in
  check_int "hit served from cache" (h0 + 1) h1;
  check_int "no miss on a warm cache" m0 m1;
  (* a new segment invalidates the shard's cache *)
  ok (Store.append st ~label:"a" (sample 2));
  let g2 = merged_exn st in
  let h2, m2 = cache_counters () in
  check_int "append invalidated the cache" (m1 + 1) m2;
  check_int "no phantom hit" h1 h2;
  check_bool "views still correct" true
    (Gmon.equal (offline [ sample 1; sample 2 ]) g2);
  check_bool "pre-append view was correct too" true
    (Gmon.equal (sample 1) g1);
  (* and the recomputed view is cached again *)
  ignore (merged_exn st);
  let h3, m3 = cache_counters () in
  check_int "second read hits" (h2 + 1) h3;
  check_int "second read does not miss" m2 m3

let test_store_reopen_equivalence () =
  with_dir @@ fun dir ->
  let gs = List.init 7 sample in
  let st, _ = open_ok ~shards:4 dir in
  List.iteri
    (fun i g -> ok (Store.append st ~label:(Printf.sprintf "n%d" i) g))
    (List.filteri (fun i _ -> i < 4) gs);
  ignore (ok (Store.compact st));
  List.iteri
    (fun i g -> ok (Store.append st ~label:(Printf.sprintf "n%d" (4 + i)) g))
    (List.filteri (fun i _ -> i >= 4) gs);
  (* a second handle on the same directory reconstructs everything:
     manifest, compacted state, and the uncompacted tail *)
  let st2, rep = open_ok dir in
  check_bool "reopen is not a creation" false rep.Store.or_created;
  check_bool "reopen is clean" false (Store.open_report_degraded rep);
  check_int "shard count from the manifest" 4 (Store.n_shards st2);
  check_bool "reopened merged view" true
    (Gmon.equal (offline gs) (merged_exn st2))

let test_store_quarantine_bytes () =
  with_dir @@ fun dir ->
  let st, _ = open_ok dir in
  ok (Store.append st ~label:"good" (sample 1));
  (match Store.append_bytes st ~label:"bad" "not a profile at all" with
  | Ok (`Quarantined _) -> ()
  | Ok `Stored -> Alcotest.fail "garbage stored as a profile"
  | Error e -> Alcotest.fail e);
  (* a truncated-but-valid-prefix payload is still quarantined whole:
     the store never silently keeps half a submission *)
  let torn = String.sub (Gmon.to_bytes (sample 2)) 0 40 in
  (match Store.append_bytes st ~label:"torn" torn with
  | Ok (`Quarantined _) -> ()
  | Ok `Stored -> Alcotest.fail "torn payload stored"
  | Error e -> Alcotest.fail e);
  let s = Store.stats st in
  check_int "both quarantined" 2 s.Store.st_quarantined;
  check_bool "quarantine does not poison the merge" true
    (Gmon.equal (sample 1) (merged_exn st));
  (* quarantined payloads are kept byte-for-byte for post-mortems *)
  let files = Sys.readdir (Store.quarantine_dir st) in
  check_int "payload + reason sidecar per case" 4 (Array.length files)

let test_store_torn_append_recovery () =
  with_dir @@ fun dir ->
  let st, _ = open_ok ~shards:2 dir in
  let baseline = [ sample 1; sample 2; sample 3 ] in
  List.iteri
    (fun i g -> ok (Store.append st ~label:(Printf.sprintf "k%d" i) g))
    baseline;
  (* fault injection: the next segment write dies mid-file, leaving a
     4-byte fragment at the final path — an unrecoverable header *)
  Gmon.inject_torn_save (Some 4);
  (match Store.append st ~label:"k1" (sample 9) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "torn append reported success");
  let st2, rep = open_ok dir in
  check_bool "restart reports the loss" true (Store.open_report_degraded rep);
  check_int "torn segment quarantined" 1 (List.length rep.Store.or_quarantined);
  check_bool "survivors intact after recovery" true
    (Gmon.equal (offline baseline) (merged_exn st2));
  (* the handle that hit the fault also retries cleanly: the torn
     sequence number is not reused *)
  ok (Store.append st ~label:"k1" (sample 9));
  check_bool "retry lands" true
    (Gmon.equal (offline (sample 9 :: baseline)) (merged_exn st))

let test_store_torn_append_salvage () =
  with_dir @@ fun dir ->
  let st, _ = open_ok ~shards:1 dir in
  ok (Store.append st ~label:"a" (sample 1));
  (* tear the write late: header and buckets survive, so recovery
     salvages a sub-profile instead of quarantining *)
  let full = String.length (Gmon.to_bytes (sample 6)) in
  Gmon.inject_torn_save (Some (full - 5));
  (match Store.append st ~label:"a" (sample 6) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "torn append reported success");
  let st2, rep = open_ok dir in
  check_bool "restart reports the salvage" true
    (Store.open_report_degraded rep);
  check_int "segment salvaged, not quarantined" 1 rep.Store.or_salvaged;
  check_int "nothing quarantined" 0 (List.length rep.Store.or_quarantined);
  (* the salvaged sub-profile plus the intact segment still merge; the
     salvaged part never invents data, so total ticks are bounded by
     the offline sum *)
  let m = merged_exn st2 in
  check_bool "salvaged view within offline bounds" true
    (Gmon.total_ticks m <= Gmon.total_ticks (offline [ sample 1; sample 6 ]));
  check_bool "salvaged view keeps the intact segment" true
    (Gmon.total_ticks m >= Gmon.total_ticks (sample 1))

let test_store_shard_routing () =
  with_dir @@ fun dir ->
  let st, _ = open_ok ~shards:4 dir in
  let labels = List.init 32 (Printf.sprintf "service-%d") in
  List.iter
    (fun l ->
      let s = Store.shard_of_label st l in
      check_bool "shard in range" true (s >= 0 && s < 4);
      check_int "routing is stable" s (Store.shard_of_label st l))
    labels;
  let distinct =
    List.sort_uniq compare (List.map (Store.shard_of_label st) labels)
  in
  check_bool "labels spread over shards" true (List.length distinct > 1)

(* ------------------------------------------------------------------ *)
(* The ingestion queue. *)

let test_ingest_size_trigger () =
  with_dir @@ fun dir ->
  let st, _ = open_ok dir in
  let q = Ingest.create ~max_batch:3 ~max_age:3600.0 st in
  let submit i =
    ok (Ingest.submit q ~label:"lbl" (Gmon.to_bytes (sample i)))
  in
  (match submit 1 with
  | Ingest.Queued 1 -> ()
  | _ -> Alcotest.fail "first submission should queue");
  (match submit 2 with
  | Ingest.Queued 2 -> ()
  | _ -> Alcotest.fail "second submission should queue");
  check_int "nothing on disk yet" 0 (Store.stats st).Store.st_segments;
  (match submit 3 with
  | Ingest.Flushed 3 -> ()
  | _ -> Alcotest.fail "third submission should trip the size trigger");
  check_int "batch landed" 3 (Store.stats st).Store.st_segments;
  check_int "queue drained" 0 (Ingest.pending q);
  check_bool "batched view = offline" true
    (Gmon.equal (offline [ sample 1; sample 2; sample 3 ]) (merged_exn st))

let test_ingest_age_trigger () =
  with_dir @@ fun dir ->
  let st, _ = open_ok dir in
  let q = Ingest.create ~max_batch:100 ~max_age:0.0 st in
  (match ok (Ingest.submit q ~label:"x" (Gmon.to_bytes (sample 4))) with
  | Ingest.Queued 1 -> ()
  | _ -> Alcotest.fail "should buffer below the size trigger");
  (* max_age 0: the oldest entry is already over age on the next tick *)
  check_int "tick flushes by age" 1 (ok (Ingest.tick q));
  check_int "tick with an empty queue is a no-op" 0 (ok (Ingest.tick q));
  check_bool "flushed by age" true
    (Gmon.equal (sample 4) (merged_exn st))

let test_ingest_quarantine () =
  with_dir @@ fun dir ->
  let st, _ = open_ok dir in
  let q = Ingest.create st in
  (match ok (Ingest.submit q ~label:"evil" "GMONOCAML1\nbut then junk") with
  | Ingest.Quarantined _ -> ()
  | _ -> Alcotest.fail "undecodable submission not quarantined");
  check_int "never buffered" 0 (Ingest.pending q);
  check_int "recorded in quarantine" 1 (Store.stats st).Store.st_quarantined;
  (* good submissions around it are unaffected *)
  ignore (ok (Ingest.submit q ~label:"fine" (Gmon.to_bytes (sample 2))));
  check_int "flush writes only the good one" 1 (ok (Ingest.flush q));
  check_bool "merge unaffected by quarantine" true
    (Gmon.equal (sample 2) (merged_exn st))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "store"
    [
      ( "wire",
        [
          Alcotest.test_case "empty payload" `Quick test_wire_empty;
          Alcotest.test_case "footer-only file" `Quick test_wire_footer_only;
          Alcotest.test_case "truncated mid-frame" `Quick
            test_wire_truncated_mid_frame;
        ] );
      ( "store",
        [
          Alcotest.test_case "merged = offline merge_all" `Quick
            test_store_merged_equals_offline;
          Alcotest.test_case "compaction preserves the merge" `Quick
            test_store_compaction_preserves_merge;
          Alcotest.test_case "cache hit/miss counters" `Quick
            test_store_cache_counters;
          Alcotest.test_case "reopen reconstructs the view" `Quick
            test_store_reopen_equivalence;
          Alcotest.test_case "undecodable bytes quarantined" `Quick
            test_store_quarantine_bytes;
          Alcotest.test_case "torn append quarantined on restart" `Quick
            test_store_torn_append_recovery;
          Alcotest.test_case "torn append salvaged on restart" `Quick
            test_store_torn_append_salvage;
          Alcotest.test_case "shard routing" `Quick test_store_shard_routing;
        ] );
      ( "ingest",
        [
          Alcotest.test_case "size trigger" `Quick test_ingest_size_trigger;
          Alcotest.test_case "age trigger" `Quick test_ingest_age_trigger;
          Alcotest.test_case "quarantine at the door" `Quick
            test_ingest_quarantine;
        ] );
    ]
