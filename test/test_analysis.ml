(* Tests for the static-analysis subsystem: control-flow graphs,
   indirect-call resolution, reachability with the dynamic
   cross-check, and the profile linter — including one seeded
   corruption per lint rule class. *)

open Objcode

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  nl = 0 || go 0

let run_workload w =
  match Workloads.Driver.run w with
  | Ok r -> r
  | Error e -> Alcotest.failf "run %s: %s" w.Workloads.Programs.w_name e

let workload name src =
  { Workloads.Programs.w_name = name; w_source = src; w_about = name }

(* ------------------------------------------------------------------ *)
(* Cfg *)

let test_cfg_blocks_partition () =
  List.iter
    (fun w ->
      let o = (run_workload w).objfile in
      let cfg = Analysis.Cfg.build o in
      Array.iter
        (fun (f : Analysis.Cfg.func) ->
          let s = f.fn_symbol in
          let covered = Array.make s.size 0 in
          Array.iter
            (fun (b : Analysis.Cfg.block) ->
              check_bool "block inside function" true
                (b.bb_start >= s.addr && b.bb_start + b.bb_len <= s.addr + s.size);
              for a = b.bb_start to b.bb_start + b.bb_len - 1 do
                covered.(a - s.addr) <- covered.(a - s.addr) + 1
              done;
              List.iter
                (fun succ ->
                  check_bool "successor is a block start in the function" true
                    (Option.is_some (Analysis.Cfg.block_of_addr f succ)
                    && (match Analysis.Cfg.block_of_addr f succ with
                       | Some sb -> sb.bb_start = succ
                       | None -> false)))
                b.bb_succs)
            f.fn_blocks;
          Array.iteri
            (fun off n ->
              check_int (Printf.sprintf "%s+%d covered once" s.name off) 1 n)
            covered)
        cfg.cfg_funcs)
    [ Workloads.Programs.sort; Workloads.Programs.codegen;
      Workloads.Programs.indirect ]

let test_cfg_subsumes_scan () =
  (* every arc the per-site scanner finds is in the CFG's direct call
     graph, and vice versa: the interprocedural view subsumes
     Scan.function_graph *)
  List.iter
    (fun w ->
      let o = (run_workload w).objfile in
      let cfg_g = Analysis.Cfg.call_graph (Analysis.Cfg.build o) in
      let scan_g = Scan.function_graph o in
      check_bool w.Workloads.Programs.w_name true
        (Graphlib.Digraph.equal cfg_g scan_g))
    [ Workloads.Programs.sort; Workloads.Programs.recursive;
      Workloads.Programs.kernel; Workloads.Programs.indirect ]

(* ------------------------------------------------------------------ *)
(* Indirect *)

let entry o name =
  match Objfile.symbol_by_name o name with
  | Some s -> s.Objfile.addr
  | None -> Alcotest.failf "no symbol %s" name

let test_indirect_resolves_dispatch_table () =
  let o = (run_workload Workloads.Programs.indirect).objfile in
  let ind = Analysis.Indirect.analyze o in
  let handlers =
    List.sort compare
      [ entry o "on_add"; entry o "on_mul"; entry o "on_neg"; entry o "on_mix" ]
  in
  check_bool "address-taken set is the handler table" true
    (ind.i_address_taken = handlers);
  (* both Calli sites read the handlers array: each resolves to the
     full table, never Unresolved *)
  check_bool "has indirect sites" true (ind.i_sites <> []);
  List.iter
    (fun (site, r) ->
      match r with
      | Analysis.Indirect.Resolved ts ->
        check_bool
          (Printf.sprintf "site %d resolves to the table" site)
          true
          (List.sort compare ts = handlers)
      | Analysis.Indirect.Unresolved ->
        Alcotest.failf "site %d unexpectedly unresolved" site)
    ind.i_sites;
  (* the named arcs cover dispatch -> every handler *)
  List.iter
    (fun callee ->
      check_bool ("dispatch -> " ^ callee) true
        (List.mem ("dispatch", callee) ind.i_arcs))
    [ "on_add"; "on_mul"; "on_neg"; "on_mix" ]

let test_indirect_recall_of_dynamic_arcs () =
  (* every dynamically-observed indirect arc is predicted statically:
     recall 1.0 on the dispatch workload *)
  let r = run_workload Workloads.Programs.indirect in
  let o = r.objfile in
  let ind = Analysis.Indirect.analyze o in
  let dynamic_indirect =
    List.filter_map
      (fun (a : Gmon.arc) ->
        if a.a_from >= 0 && a.a_from < Array.length o.Objfile.text then
          match o.Objfile.text.(a.a_from) with
          | Instr.Calli _ -> (
            match (Objfile.find_symbol o a.a_from, Objfile.find_symbol o a.a_self) with
            | Some caller, Some callee -> Some (caller.name, callee.name)
            | _ -> None)
          | _ -> None
        else None)
      r.gmon.Gmon.arcs
  in
  check_bool "saw dynamic indirect arcs" true (dynamic_indirect <> []);
  List.iter
    (fun arc ->
      check_bool (fst arc ^ " -> " ^ snd arc) true (List.mem arc ind.i_arcs))
    dynamic_indirect

let test_indirect_static_arc_count0_in_report () =
  (* A handler that sits in the table but is never dynamically picked
     must still appear as a child of its caller, with count 0 — the
     functional-parameter analogue of Figure 4's EXAMPLE -> SUB3. *)
  let w =
    workload "unpicked"
      {|
array tab[2];
var sink;

fun used(x) { return x + 1; }
fun unpicked(x) { return x + 2; }

fun main() {
  var i;
  var f;
  tab[0] = used;
  tab[1] = unpicked;
  for (i = 0; i < 20000; i = i + 1) { f = tab[0]; sink = sink + f(i); }
  print(sink);
  return 0;
}
|}
  in
  let r = run_workload w in
  (match Gprof_core.Report.analyze r.objfile r.gmon with
  | Error e -> Alcotest.fail e
  | Ok rep ->
    let listing = Gprof_core.Report.graph_listing rep in
    check_bool "unpicked appears in the call graph listing" true
      (contains ~needle:"unpicked" listing);
    let p = rep.Gprof_core.Report.profile in
    let id name =
      Option.get (Gprof_core.Symtab.id_of_name p.Gprof_core.Profile.symtab name)
    in
    let e = p.Gprof_core.Profile.entries.(id "unpicked") in
    check_int "unpicked called 0 times" 0 e.Gprof_core.Profile.e_calls);
  (* without the indirect augmentation the arc is invisible *)
  check_bool "scan alone misses the arc" true
    (not (List.mem ("main", "unpicked") (Scan.static_arcs r.objfile)));
  check_bool "indirect analysis finds it" true
    (List.mem ("main", "unpicked") (Analysis.Indirect.static_arcs r.objfile))

(* ------------------------------------------------------------------ *)
(* Reach *)

let dead_src =
  {|
var sink;

fun live(x) { return x + 1; }
fun dead(x) { return x * 2; }

fun main() {
  var i;
  for (i = 0; i < 30000; i = i + 1) { sink = sink + live(i); }
  print(sink);
  return 0;
}
|}

let test_reach_dead_function () =
  let r = run_workload (workload "deadfn" dead_src) in
  let cfg = Analysis.Cfg.build r.objfile in
  let reach = Analysis.Reach.analyze cfg in
  check_bool "dead is unreachable" true
    (List.mem "dead" reach.r_unreachable);
  check_bool "dead is profiled-but-dead" true
    (List.mem "dead" reach.r_dead_profiled);
  check_bool "live is reachable" true
    (not (List.mem "live" reach.r_unreachable));
  (* the real run never contradicts the static verdict *)
  check_int "clean crosscheck" 0
    (List.length (Analysis.Reach.crosscheck reach r.objfile r.gmon))

let test_reach_crosscheck_contradiction () =
  let r = run_workload (workload "deadfn" dead_src) in
  let o = r.objfile in
  let cfg = Analysis.Cfg.build o in
  let reach = Analysis.Reach.analyze cfg in
  (* seed ticks inside the dead function: the profile now claims
     statically-impossible execution, with no arc to explain it *)
  let g = r.gmon in
  let counts = Array.copy g.Gmon.hist.h_counts in
  let daddr = entry o "dead" in
  counts.(daddr + 1) <- counts.(daddr + 1) + 25;
  let g' = { g with Gmon.hist = { g.Gmon.hist with h_counts = counts } } in
  match Analysis.Reach.crosscheck reach o g' with
  | [ c ] ->
    check_bool "names the function" true (c.c_func = "dead");
    check_int "sees the ticks" 25 c.c_ticks
  | cs -> Alcotest.failf "expected one contradiction, got %d" (List.length cs)

(* ------------------------------------------------------------------ *)
(* Proflint *)

let rules_of (l : Analysis.Proflint.t) =
  List.map (fun f -> f.Analysis.Proflint.f_rule) l.l_findings

let errors_of (l : Analysis.Proflint.t) =
  List.filter
    (fun f -> f.Analysis.Proflint.f_severity = Analysis.Proflint.Error)
    l.l_findings

let test_proflint_intact_runs_pass () =
  List.iter
    (fun w ->
      let r = run_workload w in
      let l = Analysis.Proflint.lint r.objfile r.gmon in
      (match errors_of l with
      | [] -> ()
      | f :: _ ->
        Alcotest.failf "%s: unexpected %s: %s" w.Workloads.Programs.w_name
          f.f_rule f.f_msg);
      check_int
        (w.Workloads.Programs.w_name ^ " exits 0")
        0
        (Analysis.Proflint.exit_code ~strict:true l))
    [ Workloads.Programs.quick; Workloads.Programs.sort;
      Workloads.Programs.indirect; Workloads.Programs.recursive ]

let test_proflint_figure4_intact () =
  let l =
    Analysis.Proflint.lint Workloads.Figure4.objfile Workloads.Figure4.gmon
  in
  (match Analysis.Proflint.worst l with
  | None | Some Analysis.Proflint.Info -> ()
  | Some s ->
    Alcotest.failf "figure4 worst severity %s"
      (Analysis.Proflint.severity_to_string s));
  check_int "figure4 exits 0 even under --strict" 0
    (Analysis.Proflint.exit_code ~strict:true l);
  (* the three pseudo-site roots are declared spontaneous *)
  check_int "spontaneous notes" 3
    (List.length
       (List.filter (fun r -> r = "arc-spontaneous") (rules_of l)))

(* One seeded corruption per rule class, each on a genuine run. *)

let sort_run = lazy (run_workload Workloads.Programs.sort)

let expect_rule gmon rule =
  let r = Lazy.force sort_run in
  let l = Analysis.Proflint.lint r.objfile gmon in
  check_bool (rule ^ " flagged") true (List.mem rule (rules_of l));
  check_int (rule ^ " fails strict") 2 (Analysis.Proflint.exit_code ~strict:true l)

let direct_call_arc o (g : Gmon.t) =
  (* an arc whose recorded site holds a direct Call instruction *)
  match
    List.find_opt
      (fun (a : Gmon.arc) ->
        a.a_from >= 0
        && a.a_from < Array.length o.Objfile.text
        &&
        match o.Objfile.text.(a.a_from) with
        | Instr.Call _ -> true
        | _ -> false)
      g.arcs
  with
  | Some a -> a
  | None -> Alcotest.fail "no direct-call arc in the profile"

let replace_arc (g : Gmon.t) old arc =
  { g with Gmon.arcs = arc :: List.filter (fun a -> a <> old) g.Gmon.arcs }

let test_proflint_arc_from_non_call () =
  let r = Lazy.force sort_run in
  let a = direct_call_arc r.objfile r.gmon in
  (* entry + 1 holds the Enter, never a call *)
  let bad = { a with Gmon.a_from = entry r.objfile "main" + 1 } in
  expect_rule (replace_arc r.gmon a bad) "arc-from-non-call"

let test_proflint_arc_into_non_entry () =
  let r = Lazy.force sort_run in
  let a = direct_call_arc r.objfile r.gmon in
  let bad = { a with Gmon.a_self = a.a_self + 1 } in
  expect_rule (replace_arc r.gmon a bad) "arc-into-non-entry"

let test_proflint_arc_infeasible () =
  let r = Lazy.force sort_run in
  let a = direct_call_arc r.objfile r.gmon in
  (* retarget the callee to a different (real) entry: the site's Call
     instruction contradicts the claim *)
  let other =
    let victim =
      Array.to_list r.objfile.Objfile.symbols
      |> List.find (fun (s : Objfile.symbol) -> s.addr <> a.Gmon.a_self)
    in
    victim.addr
  in
  let bad = { a with Gmon.a_self = other } in
  expect_rule (replace_arc r.gmon a bad) "arc-infeasible"

let test_proflint_bucket_outside_text () =
  let r = Lazy.force sort_run in
  let g = r.gmon in
  let h = g.Gmon.hist in
  (* stretch the histogram past the text segment and claim ticks there *)
  let h' =
    {
      h with
      Gmon.h_highpc = h.h_highpc + (4 * h.h_bucket_size);
      h_counts = Array.append h.h_counts [| 0; 0; 0; 9 |];
    }
  in
  expect_rule { g with Gmon.hist = h' } "hist-geometry"

let test_proflint_dead_code_ticks () =
  let r = run_workload (workload "deadfn" dead_src) in
  let g = r.gmon in
  let counts = Array.copy g.Gmon.hist.h_counts in
  counts.(entry r.objfile "dead" + 1) <- 31;
  let g' = { g with Gmon.hist = { g.Gmon.hist with h_counts = counts } } in
  let l = Analysis.Proflint.lint r.objfile g' in
  check_bool "dead-code-ticks flagged" true
    (List.mem "dead-code-ticks" (rules_of l));
  check_int "warning fails strict" 2 (Analysis.Proflint.exit_code ~strict:true l);
  check_int "warning passes lenient" 0
    (Analysis.Proflint.exit_code ~strict:false l)

let test_proflint_render () =
  let r = Lazy.force sort_run in
  let a = direct_call_arc r.objfile r.gmon in
  let bad = { a with Gmon.a_from = entry r.objfile "main" + 1 } in
  let l = Analysis.Proflint.lint r.objfile (replace_arc r.gmon a bad) in
  let s = Analysis.Proflint.render l in
  check_bool "renders the rule id" true (contains ~needle:"[arc-from-non-call]" s);
  check_bool "renders the summary" true (contains ~needle:"proflint:" s);
  (* errors sort before notes *)
  match l.l_findings with
  | f :: _ -> check_bool "errors first" true (f.f_severity = Analysis.Proflint.Error)
  | [] -> Alcotest.fail "expected findings"

(* ------------------------------------------------------------------ *)
(* Scan anomalies and Disasm annotations *)

let anomalous_obj () =
  let text =
    [|
      (* f: a call into g's middle and a funref off the table *)
      Instr.Mcount; Instr.Call (5, 0); Instr.Funref 99; Instr.Ret;
      (* g *)
      Instr.Mcount; Instr.Nop; Instr.Ret;
    |]
  in
  {
    Objfile.text;
    symbols =
      [|
        { Objfile.name = "f"; addr = 0; size = 4; profiled = true };
        { Objfile.name = "g"; addr = 4; size = 3; profiled = true };
      |];
    entry = 0;
    globals = [||];
    global_init = [||];
    arrays = [||];
    lines = [||];
    source_name = "anomalous";
  }

let test_scan_anomalies_surfaced () =
  let o = anomalous_obj () in
  let sites, anomalies = Scan.scan o in
  check_int "no clean sites" 0 (List.length sites);
  check_int "two anomalies" 2 (List.length anomalies);
  (match anomalies with
  | [ a1; a2 ] ->
    check_int "call anomaly at 1" 1 a1.an_addr;
    check_bool "call kind" true (a1.an_instr = `Call);
    check_bool "mid-function kind" true (a1.an_kind = Scan.Mid_function "g");
    check_bool "caller recorded" true (a1.an_caller = Some "f");
    check_bool "funref kind" true (a2.an_instr = `Funref);
    check_bool "outside table" true (a2.an_kind = Scan.Outside_table)
  | _ -> Alcotest.fail "expected exactly two anomalies");
  (* the static graph stays silent, the listing does not *)
  check_int "no static arcs" 0 (List.length (Scan.static_arcs o));
  let listing = Disasm.program_listing o in
  check_bool "listing flags the mid-function target" true
    (contains ~needle:"! mid-g target" listing);
  check_bool "listing flags the wild funref" true
    (contains ~needle:"! target outside the symbol table" listing);
  check_bool "listing has the anomaly section" true
    (contains ~needle:"anomalous targets:" listing);
  (* and proflint reports them as call-anomaly warnings *)
  let l = Analysis.Proflint.lint_binary o in
  check_int "two call-anomaly findings" 2
    (List.length (List.filter (fun r -> r = "call-anomaly") (rules_of l)))

let test_scan_referenced_functions () =
  let o = (run_workload Workloads.Programs.indirect).objfile in
  let refs = Scan.referenced_functions o in
  List.iter
    (fun name -> check_bool ("referenced " ^ name) true (List.mem name refs))
    [ "on_add"; "on_mul"; "on_neg"; "on_mix" ];
  check_bool "dispatch itself is not address-taken" true
    (not (List.mem "dispatch" refs));
  (* deduplicated even when a funref appears repeatedly *)
  check_int "no duplicates" (List.length refs)
    (List.length (List.sort_uniq compare refs))

let test_disasm_out_of_range_guards () =
  let o =
    {
      Objfile.text = [| Instr.Gload 7; Instr.Aload 3; Instr.Ret |];
      symbols = [| { Objfile.name = "f"; addr = 0; size = 3; profiled = false } |];
      entry = 0;
      globals = [||];
      global_init = [||];
      arrays = [||];
      lines = [||];
      source_name = "oob";
    }
  in
  let listing = Disasm.program_listing o in
  check_bool "global guard" true (contains ~needle:"! global 7 out of range" listing);
  check_bool "array guard" true (contains ~needle:"! array 3 out of range" listing)

let () =
  Alcotest.run "analysis"
    [
      ( "cfg",
        [
          Alcotest.test_case "blocks partition functions" `Quick
            test_cfg_blocks_partition;
          Alcotest.test_case "call graph subsumes scan" `Quick
            test_cfg_subsumes_scan;
        ] );
      ( "indirect",
        [
          Alcotest.test_case "resolves the dispatch table" `Quick
            test_indirect_resolves_dispatch_table;
          Alcotest.test_case "full recall of dynamic arcs" `Quick
            test_indirect_recall_of_dynamic_arcs;
          Alcotest.test_case "count-0 arc reaches the report" `Quick
            test_indirect_static_arc_count0_in_report;
        ] );
      ( "reach",
        [
          Alcotest.test_case "dead function found" `Quick test_reach_dead_function;
          Alcotest.test_case "crosscheck contradiction" `Quick
            test_reach_crosscheck_contradiction;
        ] );
      ( "proflint",
        [
          Alcotest.test_case "intact runs pass" `Quick test_proflint_intact_runs_pass;
          Alcotest.test_case "figure4 intact" `Quick test_proflint_figure4_intact;
          Alcotest.test_case "arc from non-call" `Quick
            test_proflint_arc_from_non_call;
          Alcotest.test_case "arc into non-entry" `Quick
            test_proflint_arc_into_non_entry;
          Alcotest.test_case "infeasible arc" `Quick test_proflint_arc_infeasible;
          Alcotest.test_case "bucket outside text" `Quick
            test_proflint_bucket_outside_text;
          Alcotest.test_case "dead code ticks" `Quick test_proflint_dead_code_ticks;
          Alcotest.test_case "render" `Quick test_proflint_render;
        ] );
      ( "scan",
        [
          Alcotest.test_case "anomalies surfaced" `Quick test_scan_anomalies_surfaced;
          Alcotest.test_case "referenced functions" `Quick
            test_scan_referenced_functions;
          Alcotest.test_case "disasm out-of-range guards" `Quick
            test_disasm_out_of_range_guards;
        ] );
    ]
