(* Fault-injection harness for the profile data path.

   Emission: the crash-safe writer and the torn-write hook. Ingestion:
   truncation at every byte boundary and single-byte corruption at
   every position — the decoder must never raise, strict mode must
   reject with an offset-bearing error, and salvage mode must recover
   a valid sub-profile of what the intact file held. Summing: a
   quarantined batch must equal the sum of its good subset. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk ?(lowpc = 0) ?(highpc = 12) ?(bucket = 1) ?(ticks = []) ?(arcs = [])
    ?(runs = 1) () =
  let hist = Gmon.make_hist ~lowpc ~highpc ~bucket_size:bucket in
  let counts = Array.copy hist.h_counts in
  List.iter (fun (b, c) -> counts.(b) <- c) ticks;
  {
    Gmon.hist = { hist with h_counts = counts };
    arcs =
      List.map (fun (f, s, c) -> { Gmon.a_from = f; a_self = s; a_count = c }) arcs
      |> List.sort (fun (a : Gmon.arc) b ->
             compare (a.a_from, a.a_self) (b.a_from, b.a_self));
    ticks_per_second = 60;
    cycles_per_tick = 16_666;
    runs;
  }

let sample =
  mk ~ticks:[ (0, 3); (4, 7); (11, 2) ]
    ~arcs:[ (1, 4, 9); (2, 8, 1); (5, 4, 3) ]
    ()

(* Magic (11 bytes) + six header fields + the stored bucket count:
   before this point nothing is recoverable, after it salvage always
   yields a profile. *)
let header_end = 11 + (7 * 8)

(* [sub] never invents data: same geometry, every bucket count and
   every arc bounded by (here: present in) the original. *)
let sub_profile (s : Gmon.t) (o : Gmon.t) =
  s.hist.h_lowpc = o.hist.h_lowpc
  && s.hist.h_highpc = o.hist.h_highpc
  && s.hist.h_bucket_size = o.hist.h_bucket_size
  && Array.for_all2 ( >= ) o.hist.h_counts s.hist.h_counts
  && List.for_all (fun a -> List.mem a o.Gmon.arcs) s.Gmon.arcs

let assert_valid what g =
  match Gmon.validate g with
  | Ok () -> ()
  | Error es -> Alcotest.failf "%s: invalid: %s" what (String.concat "; " es)

(* ------------------------------------------------------------------ *)
(* Ingestion: truncation at every byte boundary *)

let test_truncate_everywhere () =
  let bytes = Gmon.to_bytes sample in
  let len = String.length bytes in
  for cut = 0 to len - 1 do
    let s = String.sub bytes 0 cut in
    (match Gmon.decode ~mode:`Strict s with
    | Error e ->
      check_bool
        (Printf.sprintf "cut %d: strict offset in range" cut)
        true
        (e.de_offset >= 0 && e.de_offset <= cut)
    | Ok _ -> Alcotest.failf "cut %d: strict accepted a truncated file" cut);
    match Gmon.decode ~mode:`Salvage s with
    | Ok (g, rep) ->
      check_bool
        (Printf.sprintf "cut %d: salvage past header" cut)
        true (cut >= header_end);
      assert_valid (Printf.sprintf "cut %d" cut) g;
      check_bool
        (Printf.sprintf "cut %d: salvaged is a sub-profile" cut)
        true (sub_profile g sample);
      check_bool
        (Printf.sprintf "cut %d: report degraded" cut)
        true (Gmon.report_degraded rep)
    | Error _ ->
      check_bool
        (Printf.sprintf "cut %d: only header damage is unrecoverable" cut)
        true (cut < header_end)
  done;
  (* the intact file is lossless in both modes *)
  match (Gmon.decode ~mode:`Strict bytes, Gmon.decode ~mode:`Salvage bytes) with
  | Ok (g1, r1), Ok (g2, r2) ->
    check_bool "strict roundtrip" true (Gmon.equal g1 sample);
    check_bool "salvage roundtrip" true (Gmon.equal g2 sample);
    check_bool "no strict losses" false (Gmon.report_degraded r1);
    check_bool "no salvage losses" false (Gmon.report_degraded r2)
  | _ -> Alcotest.fail "intact file rejected"

(* ------------------------------------------------------------------ *)
(* Ingestion: a flipped byte at every position *)

let test_flip_everywhere () =
  let bytes = Gmon.to_bytes sample in
  for i = 0 to String.length bytes - 1 do
    let b = Bytes.of_string bytes in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
    let s = Bytes.to_string b in
    (* the checksum footer catches every single-byte corruption *)
    (match Gmon.decode ~mode:`Strict s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "flip %d: strict accepted corrupt bytes" i);
    match Gmon.decode ~mode:`Salvage s with
    | Ok (g, rep) ->
      assert_valid (Printf.sprintf "flip %d" i) g;
      check_bool
        (Printf.sprintf "flip %d: degradation reported" i)
        true (Gmon.report_degraded rep)
    | Error _ -> ()
  done

let test_strict_errors_carry_offsets () =
  (match Gmon.decode ~mode:`Strict "garbage" with
  | Error e ->
    check_int "magic offset" 0 e.Gmon.de_offset;
    Alcotest.(check string) "magic context" "magic" e.Gmon.de_context
  | Ok _ -> Alcotest.fail "garbage accepted");
  let bytes = Gmon.to_bytes sample in
  let cut = String.length bytes - 5 in
  match Gmon.decode ~path:"some.gmon" ~mode:`Strict (String.sub bytes 0 cut) with
  | Error e ->
    Alcotest.(check (option string)) "path carried" (Some "some.gmon") e.de_path;
    let s = Gmon.decode_error_to_string e in
    let has frag =
      let n = String.length frag and h = String.length s in
      let rec go i = i + n <= h && (String.sub s i n = frag || go (i + 1)) in
      go 0
    in
    check_bool "message names the file" true (has "some.gmon");
    check_bool "message has a byte offset" true (has "at byte ")
  | Ok _ -> Alcotest.fail "torn file accepted"

(* ------------------------------------------------------------------ *)
(* Salvaged data keeps working downstream *)

let test_salvaged_merges_with_clean () =
  let bytes = Gmon.to_bytes sample in
  (* cut inside the bucket array: geometry survives, data is partial *)
  let cut = header_end + 8 + (5 * 8) + 3 in
  match Gmon.decode ~mode:`Salvage (String.sub bytes 0 cut) with
  | Error e -> Alcotest.fail (Gmon.decode_error_to_string e)
  | Ok (salvaged, rep) ->
    check_bool "buckets were zero-filled" true (rep.Gmon.r_dropped_buckets > 0);
    let clean = mk ~ticks:[ (0, 1); (7, 5) ] ~arcs:[ (1, 4, 2) ] () in
    (match Gmon.merge salvaged clean with
    | Error e -> Alcotest.failf "salvaged profile refused to merge: %s" e
    | Ok m ->
      assert_valid "salvaged+clean" m;
      check_int "ticks add" (Gmon.total_ticks salvaged + Gmon.total_ticks clean)
        (Gmon.total_ticks m))

(* ------------------------------------------------------------------ *)
(* Quarantined summing *)

let test_quarantine_equals_good_subset () =
  let a = mk ~ticks:[ (0, 5) ] ~arcs:[ (1, 4, 2) ] () in
  let b = mk ~ticks:[ (3, 7) ] ~arcs:[ (1, 4, 1); (2, 8, 9) ] () in
  let other_layout = mk ~highpc:99 () in
  match
    Gmon.merge_all_quarantine
      [
        ("a.gmon", Ok a);
        ("torn.gmon", Error "at byte 12: checksum footer: missing");
        ("b.gmon", Ok b);
        ("wrong.gmon", Ok other_layout);
      ]
  with
  | Error e -> Alcotest.fail e
  | Ok (sum, quarantined) ->
    (match Gmon.merge_all [ a; b ] with
    | Ok expected ->
      check_bool "sum equals sum of the good subset" true (Gmon.equal sum expected)
    | Error e -> Alcotest.fail e);
    Alcotest.(check (list string))
      "quarantined, in order"
      [ "torn.gmon"; "wrong.gmon" ]
      (List.map (fun (q : Gmon.quarantined) -> q.q_path) quarantined);
    List.iter
      (fun (q : Gmon.quarantined) ->
        check_bool "reason nonempty" true (q.q_reason <> ""))
      quarantined

let test_quarantine_edge_cases () =
  (match Gmon.merge_all_quarantine [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty batch accepted");
  match
    Gmon.merge_all_quarantine
      [ ("x.gmon", Error "bad"); ("y.gmon", Error "worse") ]
  with
  | Ok _ -> Alcotest.fail "all-quarantined batch produced a sum"
  | Error e ->
    let has frag =
      let n = String.length frag and h = String.length e in
      let rec go i = i + n <= h && (String.sub e i n = frag || go (i + 1)) in
      go 0
    in
    check_bool "error lists the files" true (has "x.gmon" && has "y.gmon")

(* ------------------------------------------------------------------ *)
(* Emission: atomic writes and the torn-write hook *)

let in_tmpdir f =
  let dir = Filename.temp_file "robust" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let test_atomic_save () =
  in_tmpdir @@ fun dir ->
  let path = Filename.concat dir "out.gmon" in
  (match Gmon.save sample path with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check_bool "no temp file left" false (Sys.file_exists (path ^ ".tmp"));
  (match Gmon.load path with
  | Ok g -> check_bool "roundtrip" true (Gmon.equal g sample)
  | Error e -> Alcotest.fail e);
  (* an unwritable destination is an Error, not an exception *)
  match Gmon.save sample (Filename.concat dir "no/such/dir/out.gmon") with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "save into a missing directory succeeded"

let test_torn_save () =
  in_tmpdir @@ fun dir ->
  let path = Filename.concat dir "torn.gmon" in
  Gmon.inject_torn_save (Some 40);
  (match Gmon.save sample path with
  | Error e ->
    let has frag =
      let n = String.length frag and h = String.length e in
      let rec go i = i + n <= h && (String.sub e i n = frag || go (i + 1)) in
      go 0
    in
    check_bool "error says injected" true (has "fault injected")
  | Ok () -> Alcotest.fail "torn save reported success");
  check_int "exactly the torn prefix on disk" 40
    (In_channel.with_open_bin path (fun ic ->
         String.length (In_channel.input_all ic)));
  (match Gmon.load path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "strict load accepted the torn file");
  (* the hook is one-shot: the retry is clean *)
  (match Gmon.save sample path with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Gmon.load path with
  | Ok g -> check_bool "clean rewrite roundtrips" true (Gmon.equal g sample)
  | Error e -> Alcotest.fail e

let test_icount_robustness () =
  let ic = Gmon.Icount.of_counts [| 3; 0; 0; 7; 1 |] in
  let bytes = Gmon.Icount.to_bytes ic in
  for cut = 0 to String.length bytes - 1 do
    match Gmon.Icount.of_bytes (String.sub bytes 0 cut) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "icount cut %d accepted" cut
  done;
  for i = 0 to String.length bytes - 1 do
    let b = Bytes.of_string bytes in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
    match Gmon.Icount.of_bytes (Bytes.to_string b) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "icount flip %d accepted" i
  done;
  in_tmpdir @@ fun dir ->
  let path = Filename.concat dir "ic.bin" in
  Gmon.inject_torn_save (Some 20);
  (match Gmon.Icount.save ic path with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "torn icount save reported success");
  (match Gmon.Icount.load path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "torn icount file accepted");
  (match Gmon.Icount.save ic path with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Gmon.Icount.load path with
  | Ok ic2 -> check_bool "icount roundtrip" true (Gmon.Icount.equal ic ic2)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Ingestion from disk: mixed batches *)

let test_load_merge_mixed_batch () =
  in_tmpdir @@ fun dir ->
  let a = mk ~ticks:[ (0, 5) ] ~arcs:[ (1, 4, 2) ] () in
  let b = mk ~ticks:[ (3, 7) ] ~arcs:[ (2, 8, 1) ] () in
  let write name data =
    let path = Filename.concat dir name in
    Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc data);
    path
  in
  let save name g =
    let path = Filename.concat dir name in
    match Gmon.save g path with
    | Ok () -> path
    | Error e -> Alcotest.fail e
  in
  let pa = save "a.gmon" a in
  let pb = save "b.gmon" b in
  let truncated = write "torn.gmon" (String.sub (Gmon.to_bytes a) 0 header_end) in
  let garbage = write "junk.gmon" "not a profile at all" in
  let salvaged_files = Obs.Metrics.counter Obs.Metrics.default "gmon.salvage.files" in
  let quarantined_files =
    Obs.Metrics.counter Obs.Metrics.default "gmon.quarantined_files"
  in
  let salvaged0 = Obs.Metrics.counter_value salvaged_files in
  let quarantined0 = Obs.Metrics.counter_value quarantined_files in
  (match Gmon.load_merge ~mode:`Salvage [ pa; truncated; pb; garbage ] with
  | Error e -> Alcotest.fail e
  | Ok (sum, reports, quarantined) ->
    Alcotest.(check (list string))
      "only the garbage is quarantined" [ garbage ]
      (List.map (fun (q : Gmon.quarantined) -> q.q_path) quarantined);
    (* the torn file salvages to all-zero buckets, so the sum equals
       the good subset's *)
    (match Gmon.merge_all [ a; b ] with
    | Ok good ->
      check_int "ticks = good subset's" (Gmon.total_ticks good)
        (Gmon.total_ticks sum);
      check_int "three files summed (runs)" 3 sum.Gmon.runs
    | Error e -> Alcotest.fail e);
    check_bool "torn file's report is degraded" true
      (List.exists
         (fun (p, r) -> p = truncated && Gmon.report_degraded r)
         reports);
    check_bool "salvage metrics advanced" true
      (Obs.Metrics.counter_value salvaged_files > salvaged0);
    check_bool "quarantine metrics advanced" true
      (Obs.Metrics.counter_value quarantined_files > quarantined0));
  (* strict mode quarantines the torn file too *)
  match Gmon.load_merge ~mode:`Strict [ pa; truncated; pb; garbage ] with
  | Error e -> Alcotest.fail e
  | Ok (sum, _, quarantined) ->
    Alcotest.(check (list string))
      "strict quarantines both damaged files" [ truncated; garbage ]
      (List.map (fun (q : Gmon.quarantined) -> q.q_path) quarantined);
    check_int "two files summed (runs)" 2 sum.Gmon.runs

(* ------------------------------------------------------------------ *)
(* The VM-side fault hook *)

let compile_src src =
  match
    Compile.Codegen.compile_source ~options:Compile.Codegen.profiling_options src
  with
  | Ok o -> o
  | Error e -> Alcotest.failf "compile: %s" e

let looping_src =
  {|
fun spin(n) {
  var i;
  var s = 0;
  for (i = 0; i < n; i = i + 1) { s = s + i; }
  return s;
}
fun main() {
  var r;
  var s = 0;
  for (r = 0; r < 100; r = r + 1) { s = s + spin(50); }
  return s % 1000;
}
|}

let test_vm_fault_injection () =
  let o = compile_src looping_src in
  let run budget =
    let m =
      Vm.Machine.create
        ~config:{ Vm.Machine.default_config with fault_after_instr = budget }
        o
    in
    (Vm.Machine.run m, m)
  in
  (match run (Some 1_000) with
  | Vm.Machine.Faulted f, m ->
    Alcotest.(check string)
      "injected reason" Vm.Machine.injected_fault_reason f.reason;
    (* the profile gathered up to the fault still condenses cleanly *)
    assert_valid "profile at fault" (Vm.Machine.profile m)
  | _ -> Alcotest.fail "expected the injected fault");
  (match run (Some 0) with
  | Vm.Machine.Faulted f, _ ->
    Alcotest.(check string)
      "immediate fault" Vm.Machine.injected_fault_reason f.reason
  | _ -> Alcotest.fail "budget 0 must fault before the first instruction");
  match run None with
  | Vm.Machine.Halted, _ -> ()
  | _ -> Alcotest.fail "no budget must run to completion"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "robust"
    [
      ( "ingestion",
        [
          Alcotest.test_case "truncate everywhere" `Quick test_truncate_everywhere;
          Alcotest.test_case "flip everywhere" `Quick test_flip_everywhere;
          Alcotest.test_case "errors carry offsets" `Quick
            test_strict_errors_carry_offsets;
          Alcotest.test_case "salvaged merges with clean" `Quick
            test_salvaged_merges_with_clean;
        ] );
      ( "summing",
        [
          Alcotest.test_case "quarantine = good subset" `Quick
            test_quarantine_equals_good_subset;
          Alcotest.test_case "quarantine edge cases" `Quick
            test_quarantine_edge_cases;
          Alcotest.test_case "mixed batch from disk" `Quick
            test_load_merge_mixed_batch;
        ] );
      ( "emission",
        [
          Alcotest.test_case "atomic save" `Quick test_atomic_save;
          Alcotest.test_case "torn save" `Quick test_torn_save;
          Alcotest.test_case "icount robustness" `Quick test_icount_robustness;
        ] );
      ( "vm",
        [
          Alcotest.test_case "fault after N instructions" `Quick
            test_vm_fault_injection;
        ] );
    ]
