(* Tests for the export layer: golden folded-stack, callgrind, and
   dot renderings of the Figure 4 scenario, structural validation of
   the JSON report (via a small real JSON parser, so malformed output
   cannot sneak through), the timeline digest, and the Regress gate
   that profwatch is built on. *)

open Gprof_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_time = Alcotest.(check (float 1e-4))

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let figure4 () =
  match Report.analyze Workloads.Figure4.objfile Workloads.Figure4.gmon with
  | Error e -> Alcotest.failf "figure4: %s" e
  | Ok r -> r

(* --- goldens -------------------------------------------------------- *)

(* The dominant-path stacks of Figure 4: EXAMPLE under its heavier
   caller, the cycle members under OTHER (who contributes more time
   into the cycle than EXAMPLE does). *)
let folded_golden =
  "CALLER1 26\n\
   CALLER2;EXAMPLE 30\n\
   OTHER;SUB1 <cycle 1> 120\n\
   OTHER;SUB1 <cycle 1>;SUB1B <cycle 1> 60\n\
   OTHER;SUB1 <cycle 1>;DEPTH1 120\n\
   OTHER;SUB2;DEPTH2 150\n"

let test_folded_golden () =
  let r = figure4 () in
  check_string "folded stacks" folded_golden (Export.folded_stacks r.profile)

let test_folded_totals () =
  (* every sampled tick lands in exactly one stack line *)
  let r = figure4 () in
  let total =
    String.split_on_char '\n' (Export.folded_stacks r.profile)
    |> List.filter (fun l -> l <> "")
    |> List.fold_left
         (fun acc line ->
           match String.rindex_opt line ' ' with
           | None -> Alcotest.failf "unparseable folded line: %s" line
           | Some i ->
             acc
             + int_of_string
                 (String.sub line (i + 1) (String.length line - i - 1)))
         0
  in
  check_int "folded ticks sum to the histogram" 506 total

let callgrind_golden_head =
  "# callgrind format\n\
   version: 1\n\
   creator: gprof-repro\n\
   positions: line\n\
   events: ticks\n\
   summary: 506\n\n\
   fn=CALLER1\n\
   0 26\n\
   cfn=EXAMPLE\n\
   calls=4 10\n\
   0 84\n"

let test_callgrind_golden () =
  let r = figure4 () in
  let s = Export.callgrind r.profile in
  check_bool "header and first record" true
    (String.length s >= String.length callgrind_golden_head
    && String.sub s 0 (String.length callgrind_golden_head)
       = callgrind_golden_head);
  (* every routine of the dynamic graph has a cost record *)
  List.iter
    (fun fn -> check_bool (fn ^ " present") true (contains ~needle:fn s))
    [
      "fn=CALLER1"; "fn=CALLER2"; "fn=EXAMPLE"; "fn=SUB1"; "fn=SUB1B";
      "fn=SUB2"; "fn=SUB3"; "fn=DEPTH1"; "fn=DEPTH2"; "fn=OTHER";
    ];
  (* the static-only EXAMPLE -> SUB3 arc appears with zero calls *)
  check_bool "static arc exported" true (contains ~needle:"calls=0 30" s)

let test_dot_deterministic_golden () =
  let a = Report.dot_graph (figure4 ()) in
  let b = Report.dot_graph (figure4 ()) in
  check_string "two analyses render identically" a b;
  (* nodes in id order, arcs in (src, dst) order — pin the shape *)
  List.iter
    (fun needle -> check_bool needle true (contains ~needle a))
    [
      "subgraph cluster_cycle1";
      "f0 [label=\"CALLER1";
      "f9 [label=\"OTHER";
      "f0 -> f2 [label=\"4\"];";
      "f2 -> f6 [label=\"0\", style=dashed];";
      "f3 -> f4 [label=\"3\", style=dotted];";
      "spontaneous -> f9;";
    ];
  let index_of needle =
    let rec go i =
      if i + String.length needle > String.length a then
        Alcotest.failf "missing %s" needle
      else if String.sub a i (String.length needle) = needle then i
      else go (i + 1)
    in
    go 0
  in
  check_bool "node order f0 < f1" true
    (index_of "f0 [label=" < index_of "f1 [label=");
  check_bool "arc order (0,2) < (1,2)" true
    (index_of "f0 -> f2" < index_of "f1 -> f2");
  check_bool "arc order (2,3) < (9,3)" true
    (index_of "f2 -> f3" < index_of "f9 -> f3")

(* --- JSON ----------------------------------------------------------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

(* A small but real JSON parser: enough to reject anything malformed
   the emitter could produce. *)
let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n && (peek () = ' ' || peek () = '\n' || peek () = '\t') then begin
      advance (); skip_ws ()
    end
  in
  let expect c = if peek () = c then advance () else fail (Printf.sprintf "expected %c" c) in
  let parse_lit lit v =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit
    then begin pos := !pos + String.length lit; v end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match peek () with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (match peek () with
          | '"' | '\\' | '/' -> Buffer.add_char b (peek ()); advance ()
          | 'n' -> Buffer.add_char b '\n'; advance ()
          | 't' -> Buffer.add_char b '\t'; advance ()
          | 'r' -> Buffer.add_char b '\r'; advance ()
          | 'b' -> Buffer.add_char b '\b'; advance ()
          | 'f' -> Buffer.add_char b '\012'; advance ()
          | 'u' ->
            advance ();
            if !pos + 4 > n then fail "bad \\u escape";
            pos := !pos + 4;
            Buffer.add_char b '?'
          | _ -> fail "bad escape");
          go ()
        | c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && numchar (peek ()) do advance () done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance (); skip_ws ();
      if peek () = '}' then begin advance (); Obj [] end
      else
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws (); expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); members ((k, v) :: acc)
          | '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or }"
        in
        members []
    | '[' ->
      advance (); skip_ws ();
      if peek () = ']' then begin advance (); Arr [] end
      else
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); elements (v :: acc)
          | ']' -> advance (); Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        elements []
    | '"' -> Str (parse_string ())
    | 't' -> parse_lit "true" (Bool true)
    | 'f' -> parse_lit "false" (Bool false)
    | 'n' -> parse_lit "null" Null
    | _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing bytes";
  v

let field name = function
  | Obj kvs -> (
    match List.assoc_opt name kvs with
    | Some v -> v
    | None -> Alcotest.failf "missing field %s" name)
  | _ -> Alcotest.failf "not an object (looking for %s)" name

let as_num = function Num f -> f | _ -> Alcotest.fail "expected number"
let as_str = function Str s -> s | _ -> Alcotest.fail "expected string"
let as_arr = function Arr l -> l | _ -> Alcotest.fail "expected array"

let test_json_roundtrip () =
  let r = figure4 () in
  let p = r.profile in
  let j = parse_json (Export.json_report r) in
  check_string "schema" "gprof-repro.report/1" (as_str (field "schema" j));
  check_time "total_seconds" Workloads.Figure4.expected_total_seconds
    (as_num (field "total_seconds" j));
  check_bool "not degraded" false (field "degraded" j = Bool true);
  let flat = as_arr (field "flat" j) in
  check_int "flat row count" (List.length (Flat.rows p)) (List.length flat);
  let flat_self =
    List.fold_left (fun acc row -> acc +. as_num (field "self_seconds" row)) 0.0 flat
  in
  check_time "flat self seconds sum to the total"
    (p.total_time -. p.unattributed) flat_self;
  let graph = as_arr (field "graph" j) in
  check_int "graph entry count" (Array.length p.order) (List.length graph);
  let example =
    match
      List.find_opt
        (fun g -> field "kind" g = Str "routine" && field "name" g = Str "EXAMPLE")
        graph
    with
    | Some g -> g
    | None -> Alcotest.fail "EXAMPLE not in graph"
  in
  check_time "EXAMPLE self" 0.5 (as_num (field "self_seconds" example));
  check_time "EXAMPLE descendants" 3.0
    (as_num (field "descendant_seconds" example));
  check_int "EXAMPLE has two parents" 2
    (List.length (as_arr (field "parents" example)));
  let cycles = as_arr (field "cycles" j) in
  check_int "one cycle" 1 (List.length cycles);
  (match cycles with
  | [ c ] ->
    check_bool "cycle members" true
      (List.map as_str (as_arr (field "members" c)) = [ "SUB1"; "SUB1B" ])
  | _ -> Alcotest.fail "expected one cycle")

(* --- timeline ------------------------------------------------------- *)

let run_with_epochs every =
  let config = { Vm.Machine.default_config with epoch_ticks = Some every } in
  match Workloads.Driver.run ~config Workloads.Programs.matrix with
  | Error e -> Alcotest.fail e
  | Ok r -> (
    match Vm.Machine.epochs r.machine with
    | None -> Alcotest.fail "epoch engine not enabled"
    | Some c -> (r, c))

let test_timeline () =
  let r, c = run_with_epochs 5 in
  match Export.timeline r.objfile c with
  | Error e -> Alcotest.fail e
  | Ok s ->
    check_bool "header names the epoch count" true
      (contains ~needle:(Printf.sprintf "timeline: %d epoch(s)" (Gmon.Epoch.n_epochs c)) s);
    check_bool "first window present" true (contains ~needle:"epoch 1 " s);
    check_bool "busiest routines listed" true (contains ~needle:"busiest:" s)

let test_timeline_empty () =
  let r, c = run_with_epochs 5 in
  match Export.timeline r.objfile { c with Gmon.Epoch.e_epochs = [] } with
  | Ok _ -> Alcotest.fail "empty container should not render"
  | Error e -> check_bool "explains" true (contains ~needle:"empty" e)

(* --- the regression gate -------------------------------------------- *)

let scaled_figure4 factor =
  (* merging a profile with itself k-1 times multiplies every count
     and tick by k: a synthetic "everything got k times slower" run *)
  let g = Workloads.Figure4.gmon in
  match Gmon.merge_all (List.init factor (fun _ -> g)) with
  | Error e -> Alcotest.fail e
  | Ok merged -> (
    match
      Report.analyze Workloads.Figure4.objfile { merged with Gmon.runs = 1 }
    with
    | Error e -> Alcotest.fail e
    | Ok r -> r.profile)

let test_regress_steady () =
  let p = (figure4 ()).profile in
  let findings =
    Regress.compare_profiles Regress.default_policy ~from_label:"a"
      ~to_label:"b" p p
  in
  check_int "identical profiles are steady" 0 (List.length findings);
  check_string "empty listing" "" (Regress.listing findings)

let test_regress_flags_growth () =
  let before = (figure4 ()).profile in
  let after = scaled_figure4 2 in
  let findings =
    Regress.compare_profiles Regress.default_policy ~from_label:"a"
      ~to_label:"b" before after
  in
  check_bool "something flagged" true (findings <> []);
  (* the biggest absolute growth comes first *)
  (match findings with
  | f :: _ ->
    check_bool "sorted by growth" true
      (List.for_all
         (fun g -> g.Regress.f_after -. g.f_before <= f.Regress.f_after -. f.f_before)
         findings)
  | [] -> ());
  (* DEPTH2: 2.5s -> 5.0s of self time must be flagged on Self *)
  check_bool "DEPTH2 self flagged" true
    (List.exists
       (fun f -> f.Regress.f_name = "DEPTH2" && f.f_metric = Regress.Self)
       findings);
  (* a routine whose Self already fired is not double-reported *)
  List.iter
    (fun (f : Regress.finding) ->
      if f.f_metric = Regress.Total then
        check_bool (f.f_name ^ " not double-reported") false
          (List.exists
             (fun (g : Regress.finding) ->
               g.f_name = f.f_name && g.f_metric = Regress.Self)
             findings))
    findings;
  let listing = Regress.listing findings in
  check_bool "listing names the labels" true (contains ~needle:"[a -> b]" listing);
  check_bool "listing says regression" true
    (contains ~needle:"regression: " listing)

let test_regress_thresholds () =
  let before = (figure4 ()).profile in
  let after = scaled_figure4 2 in
  let lax =
    { Regress.p_min_seconds = 1000.0; p_min_ratio = 0.25; p_descendants = true }
  in
  check_int "absolute floor suppresses" 0
    (List.length (Regress.compare_profiles lax ~from_label:"a" ~to_label:"b" before after));
  let ratio_only =
    { Regress.p_min_seconds = 0.0; p_min_ratio = 10.0; p_descendants = true }
  in
  check_int "ratio floor suppresses a 2x" 0
    (List.length
       (Regress.compare_profiles ratio_only ~from_label:"a" ~to_label:"b" before
          after));
  let self_only =
    { Regress.default_policy with p_descendants = false }
  in
  List.iter
    (fun (f : Regress.finding) ->
      check_bool "self-only policy yields Self findings" true
        (f.f_metric = Regress.Self))
    (Regress.compare_profiles self_only ~from_label:"a" ~to_label:"b" before
       after)

let test_regress_scan_sequence () =
  let p1 = (figure4 ()).profile in
  let p2 = scaled_figure4 2 in
  let p3 = scaled_figure4 4 in
  let findings =
    Regress.scan Regress.default_policy [ ("r1", p1); ("r2", p2); ("r3", p3) ]
  in
  (* both consecutive steps regress; labels map pairwise *)
  check_bool "first step flagged" true
    (List.exists (fun f -> f.Regress.f_from = "r1" && f.f_to = "r2") findings);
  check_bool "second step flagged" true
    (List.exists (fun f -> f.Regress.f_from = "r2" && f.f_to = "r3") findings);
  check_bool "no cross-step pair" true
    (List.for_all (fun f -> not (f.Regress.f_from = "r1" && f.f_to = "r3")) findings)

let () =
  Alcotest.run "export"
    [
      ( "goldens",
        [
          Alcotest.test_case "folded stacks (Figure 4)" `Quick test_folded_golden;
          Alcotest.test_case "folded ticks are conserved" `Quick test_folded_totals;
          Alcotest.test_case "callgrind (Figure 4)" `Quick test_callgrind_golden;
          Alcotest.test_case "dot is deterministic and sorted" `Quick
            test_dot_deterministic_golden;
        ] );
      ( "json",
        [ Alcotest.test_case "schema round-trip" `Quick test_json_roundtrip ] );
      ( "timeline",
        [
          Alcotest.test_case "digest renders" `Quick test_timeline;
          Alcotest.test_case "empty container is an error" `Quick
            test_timeline_empty;
        ] );
      ( "regress",
        [
          Alcotest.test_case "steady" `Quick test_regress_steady;
          Alcotest.test_case "flags growth" `Quick test_regress_flags_growth;
          Alcotest.test_case "thresholds" `Quick test_regress_thresholds;
          Alcotest.test_case "scan over a sequence" `Quick
            test_regress_scan_sequence;
        ] );
    ]
