(* Tests for the dataflow engine: bit sets, the generic solver (with
   QCheck fixpoint properties), dominators and natural loops (with a
   brute-force dominance oracle on random graphs), the three stock
   instantiations, static cost bounds, the dataflow lint rules — one
   seeded mutation per profile-vs-statics rule — and the
   machine-readable lint report. *)

open Objcode
module Df = Analysis.Dataflow
module Bits = Analysis.Dataflow.Bits

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let qt = QCheck_alcotest.to_alcotest

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  nl = 0 || go 0

let workload name src =
  { Workloads.Programs.w_name = name; w_source = src; w_about = name }

let run_workload w =
  match Workloads.Driver.run w with
  | Ok r -> r
  | Error e -> Alcotest.failf "run %s: %s" w.Workloads.Programs.w_name e

let func_named cfg name =
  match Analysis.Cfg.func_by_name cfg name with
  | Some f -> f
  | None -> Alcotest.failf "no function %s" name

let has_rule rule (l : Analysis.Proflint.t) =
  List.exists
    (fun (f : Analysis.Proflint.finding) -> f.f_rule = rule)
    l.l_findings

let rules_fired (l : Analysis.Proflint.t) =
  List.sort_uniq compare
    (List.map (fun (f : Analysis.Proflint.finding) -> f.f_rule) l.l_findings)

(* ------------------------------------------------------------------ *)
(* Bits *)

let test_bits_basics () =
  let w = 200 in
  (* wider than one word, so the operations cross word boundaries *)
  let s = List.fold_left Bits.add (Bits.empty w) [ 0; 63; 64; 127; 199 ] in
  check_bool "mem 63" true (Bits.mem s 63);
  check_bool "mem 64" true (Bits.mem s 64);
  check_bool "mem 65" false (Bits.mem s 65);
  check_int "cardinal" 5 (Bits.cardinal s);
  Alcotest.(check (list int)) "elements ascending" [ 0; 63; 64; 127; 199 ]
    (Bits.elements s);
  let s' = Bits.remove s 64 in
  check_bool "removed" false (Bits.mem s' 64);
  check_int "cardinal after remove" 4 (Bits.cardinal s');
  check_bool "union restores" true (Bits.equal s (Bits.union s' (Bits.add (Bits.empty w) 64)));
  check_bool "inter" true
    (Bits.equal (Bits.add (Bits.empty w) 64)
       (Bits.inter s (Bits.add (Bits.empty w) 64)));
  check_bool "diff" true (Bits.equal s' (Bits.diff s (Bits.add (Bits.empty w) 64)));
  check_bool "full mem" true (Bits.mem (Bits.full w) 199);
  check_int "full cardinal" w (Bits.cardinal (Bits.full w));
  check_bool "empty is_empty" true (Bits.is_empty (Bits.empty w))

(* ------------------------------------------------------------------ *)
(* Graphs, reachability *)

let test_graph_reachable () =
  (* diamond plus an unreachable node *)
  let g = Df.graph_of_succs ~entry:0 [| [ 1; 2 ]; [ 3 ]; [ 3 ]; []; [ 0 ] |] in
  let r = Df.reachable g in
  Alcotest.(check (array bool)) "reachable" [| true; true; true; true; false |] r;
  Alcotest.(check (list int)) "preds of 3" [ 1; 2 ]
    (List.sort compare (Array.to_list g.Df.g_preds.(3)))

(* ------------------------------------------------------------------ *)
(* Dominators *)

let test_dom_diamond () =
  let d = Analysis.Dom.of_graph (Df.graph_of_succs ~entry:0 [| [ 1; 2 ]; [ 3 ]; [ 3 ]; [] |]) in
  Alcotest.(check (array int)) "idoms" [| 0; 0; 0; 0 |] d.Analysis.Dom.d_idom;
  Alcotest.(check (list int)) "frontier of 1" [ 3 ] d.Analysis.Dom.d_frontier.(1);
  Alcotest.(check (list int)) "frontier of 2" [ 3 ] d.Analysis.Dom.d_frontier.(2);
  check_bool "entry dominates all" true (Analysis.Dom.dominates d 0 3);
  check_bool "1 does not dominate 3" false (Analysis.Dom.dominates d 1 3);
  check_bool "reflexive" true (Analysis.Dom.dominates d 2 2);
  check_int "no loops" 0 (Array.length d.Analysis.Dom.d_loops);
  check_bool "reducible" false d.Analysis.Dom.d_irreducible

let test_dom_nested_loops () =
  (* 0 -> 1(outer header) -> 2(inner header) -> 3 -> {2 back, 4};
     4 -> 1 back; 1 -> 5 exit *)
  let d =
    Analysis.Dom.of_graph
      (Df.graph_of_succs ~entry:0
         [| [ 1 ]; [ 2; 5 ]; [ 3 ]; [ 2; 4 ]; [ 1 ]; [] |])
  in
  check_int "two loops" 2 (Array.length d.Analysis.Dom.d_loops);
  let outer = d.Analysis.Dom.d_loops.(0) and inner = d.Analysis.Dom.d_loops.(1) in
  check_int "outer header" 1 outer.Analysis.Dom.l_header;
  Alcotest.(check (list int)) "outer body" [ 1; 2; 3; 4 ] outer.Analysis.Dom.l_body;
  check_int "outer depth" 1 outer.Analysis.Dom.l_depth;
  check_bool "outer is outermost" true (outer.Analysis.Dom.l_parent = None);
  check_int "inner header" 2 inner.Analysis.Dom.l_header;
  Alcotest.(check (list int)) "inner body" [ 2; 3 ] inner.Analysis.Dom.l_body;
  check_int "inner depth" 2 inner.Analysis.Dom.l_depth;
  check_bool "inner nests in outer" true (inner.Analysis.Dom.l_parent = Some 0);
  Alcotest.(check (array int)) "block depths" [| 0; 1; 2; 2; 1; 0 |]
    d.Analysis.Dom.d_depth;
  check_bool "reducible" false d.Analysis.Dom.d_irreducible

let test_dom_irreducible () =
  (* the classic two-entry loop: 1 <-> 2, both entered from 0 *)
  let d = Analysis.Dom.of_graph (Df.graph_of_succs ~entry:0 [| [ 1; 2 ]; [ 2 ]; [ 1 ] |]) in
  check_bool "irreducible" true d.Analysis.Dom.d_irreducible;
  check_int "no natural loops claimed" 0 (Array.length d.Analysis.Dom.d_loops)

(* A brute-force dominance oracle: [a] dominates [b] iff [b] is
   reachable, and removing [a] from the graph makes [b] unreachable
   (or [a = b]). *)
let edges_to_succs n edges =
  let succs = Array.make n [] in
  List.iter
    (fun (a, b) ->
      if not (List.mem b succs.(a)) then succs.(a) <- succs.(a) @ [ b ])
    edges;
  succs

let reach_avoiding succs avoid =
  let n = Array.length succs in
  let seen = Array.make n false in
  let rec go v =
    if v <> avoid && not seen.(v) then begin
      seen.(v) <- true;
      List.iter go succs.(v)
    end
  in
  if avoid <> 0 then go 0;
  seen

let dom_oracle =
  QCheck.Test.make ~name:"dominates agrees with the brute-force oracle"
    ~count:300
    QCheck.(list_of_size Gen.(int_range 0 18) (pair (int_range 0 5) (int_range 0 5)))
    (fun edges ->
      let n = 6 in
      let succs = edges_to_succs n edges in
      let g = Df.graph_of_succs ~entry:0 succs in
      let d = Analysis.Dom.of_graph g in
      let reachable = reach_avoiding succs (-1) in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          let expected =
            reachable.(b) && (a = b || not (reach_avoiding succs a).(b))
          in
          if Analysis.Dom.dominates d a b <> expected then ok := false
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* The generic solver *)

module BV = Df.Make (struct
  type t = Bits.t

  let bottom = Bits.empty 8
  let equal = Bits.equal
  let join = Bits.union
end)

let bits_of_mask m =
  let rec go s i =
    if i >= 8 then s
    else go (if m land (1 lsl i) <> 0 then Bits.add s i else s) (i + 1)
  in
  go (Bits.empty 8) 0

let genkill_spec dir genkill =
  let gen = Array.map (fun (g, _) -> bits_of_mask g) genkill in
  let kill = Array.map (fun (_, k) -> bits_of_mask k) genkill in
  {
    BV.direction = dir;
    boundary = Bits.empty 8;
    transfer = (fun b f -> Bits.union gen.(b) (Bits.diff f kill.(b)));
    edge = None;
  }

let solver_fixpoint =
  QCheck.Test.make
    ~name:"a converged solve is a fixpoint (gen/kill, both directions)"
    ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(int_range 0 18) (pair (int_range 0 5) (int_range 0 5)))
        (list_of_size Gen.(return 6) (pair (int_bound 255) (int_bound 255))))
    (fun (edges, genkill) ->
      let g = Df.graph_of_succs ~entry:0 (edges_to_succs 6 edges) in
      let genkill = Array.of_list genkill in
      List.for_all
        (fun dir ->
          let spec = genkill_spec dir genkill in
          let r = BV.solve g spec in
          r.BV.r_stats.Df.st_converged && BV.is_fixpoint g spec r)
        [ Df.Forward; Df.Backward ])

let test_solver_fuel () =
  (* an ever-growing chain on a cycle: the fuel bound must trip *)
  let module Counter = Df.Make (struct
    type t = int

    let bottom = 0
    let equal = Int.equal
    let join = max
  end) in
  let g = Df.graph_of_succs ~entry:0 [| [ 1 ]; [ 0 ] |] in
  let spec =
    {
      Counter.direction = Df.Forward;
      boundary = 0;
      transfer = (fun _ f -> f + 1);
      edge = None;
    }
  in
  let r = Counter.solve ~fuel:50 g spec in
  check_bool "fuel exhausted" false r.Counter.r_stats.Df.st_converged

(* ------------------------------------------------------------------ *)
(* Straight-line agreement: liveness vs the first-access oracle,
   reaching definitions vs the last-store oracle *)

let straightline_obj ops =
  let body =
    List.concat_map
      (fun (write, slot) ->
        if write then [ Instr.Const 1; Instr.Store slot ]
        else [ Instr.Load slot; Instr.Pop ])
      ops
  in
  let text = Array.of_list ((Instr.Enter 4 :: body) @ [ Instr.Const 0; Instr.Ret ]) in
  {
    Objfile.text;
    symbols =
      [| { Objfile.name = "f"; addr = 0; size = Array.length text; profiled = false } |];
    entry = 0;
    globals = [||];
    global_init = [||];
    arrays = [||];
    lines = [||];
    source_name = "straightline";
  }

let straightline_agreement =
  QCheck.Test.make
    ~name:"straight-line liveness and reaching defs match the trace oracle"
    ~count:300
    QCheck.(list_of_size Gen.(int_range 0 30) (pair bool (int_range 0 3)))
    (fun ops ->
      let o = straightline_obj ops in
      let cfg = Analysis.Cfg.build o in
      let f = cfg.Analysis.Cfg.cfg_funcs.(0) in
      if Array.length f.Analysis.Cfg.fn_blocks <> 1 then false
      else
        let live = Analysis.Facts.liveness ~nslots:4 o f in
        let rd = Analysis.Facts.reaching ~nslots:4 o f in
        List.for_all
          (fun slot ->
            (* live at entry iff the first access is a read *)
            let rec first_access = function
              | [] -> None
              | (w, s) :: rest ->
                if s = slot then Some (not w) else first_access rest
            in
            let expect_live = first_access ops = Some true in
            let got_live = Bits.mem live.Analysis.Facts.lv_in.(0) slot in
            (* exactly the last store (or the frame pseudo-def)
               reaches the exit *)
            let last_store =
              List.fold_left
                (fun (pc, acc) (w, s) ->
                  let len = if w then 2 else 2 in
                  (pc + len, if w && s = slot then Some (pc + 1) else acc))
                (1, None) ops
              |> snd
            in
            let expected_def = match last_store with Some pc -> pc | None -> -1 in
            let reaching_defs =
              List.filter
                (fun i ->
                  let _, s = rd.Analysis.Facts.rd_defs.(i) in
                  s = slot)
                (Bits.elements rd.Analysis.Facts.rd_out.(0))
              |> List.map (fun i -> fst rd.Analysis.Facts.rd_defs.(i))
            in
            got_live = expect_live && reaching_defs = [ expected_def ])
          [ 0; 1; 2; 3 ])

(* ------------------------------------------------------------------ *)
(* Arity inference *)

let test_arities_inferred () =
  let r =
    run_workload
      (workload "arities"
         "fun add(a, b) { return a + b; }\n\
          fun main() { return add(1, 2); }")
  in
  let cfg = Analysis.Cfg.build r.objfile in
  let arities = Analysis.Facts.arities cfg in
  let id name =
    match Objfile.symbol_by_name r.objfile name with
    | Some _ ->
      let rec go i =
        if cfg.Analysis.Cfg.cfg_funcs.(i).fn_symbol.Objfile.name = name then i
        else go (i + 1)
      in
      go 0
    | None -> Alcotest.failf "no symbol %s" name
  in
  check_bool "add takes 2" true (arities.(id "add") = Some 2);
  check_bool "main takes 0 (the entry contract)" true (arities.(id "main") = Some 0)

let test_arities_conflict () =
  (* two direct call sites that disagree: nothing can be inferred *)
  let text =
    [|
      (* f at 0 *)
      Instr.Enter 0; Instr.Const 0; Instr.Ret;
      (* main at 3 *)
      Instr.Const 1; Instr.Call (0, 1); Instr.Pop;
      Instr.Const 1; Instr.Const 2; Instr.Call (0, 2); Instr.Pop;
      Instr.Const 0; Instr.Ret;
    |]
  in
  let o =
    {
      Objfile.text;
      symbols =
        [|
          { Objfile.name = "f"; addr = 0; size = 3; profiled = false };
          { Objfile.name = "main"; addr = 3; size = 9; profiled = false };
        |];
      entry = 3;
      globals = [||];
      global_init = [||];
      arrays = [||];
      lines = [||];
      source_name = "conflict";
    }
  in
  let arities = Analysis.Facts.arities (Analysis.Cfg.build o) in
  check_bool "conflicting sites infer nothing" true (arities.(0) = None);
  check_bool "entry still takes 0" true (arities.(1) = Some 0)

(* ------------------------------------------------------------------ *)
(* Constant propagation beats plain reachability *)

let constprop_src =
  "fun main() { var x; x = 0; if (x) { print(999); } return 0; }"

let test_constprop_beats_reach () =
  let r = run_workload (workload "constprop" constprop_src) in
  let o = r.objfile in
  let cfg = Analysis.Cfg.build o in
  let f = func_named cfg "main" in
  let cp = Analysis.Facts.constprop ~arity:0 o f in
  check_bool "a constant branch was found" true
    (cp.Analysis.Facts.cp_const_branches <> []);
  check_bool "a block is proven dead beyond plain reachability" true
    (cp.Analysis.Facts.cp_dead_blocks <> []);
  (* the blocks constprop kills are ones the plain CFG reaches — the
     claim is strictly stronger than Reach's *)
  let g = Df.graph_of_func f in
  let plain = Df.reachable g in
  List.iter
    (fun bi -> check_bool "dead block is plain-reachable" true plain.(bi))
    cp.Analysis.Facts.cp_dead_blocks;
  (* and the linter reports both, against the same binary *)
  let l = Analysis.Proflint.lint_binary o in
  check_bool "const-branch fires" true (has_rule "const-branch" l);
  check_bool "const-dead-block fires" true (has_rule "const-dead-block" l)

let test_dead_store () =
  let r =
    run_workload
      (workload "deadstore" "fun main() { var x; x = 42; x = 7; return x; }")
  in
  let o = r.objfile in
  let f = func_named (Analysis.Cfg.build o) "main" in
  let live = Analysis.Facts.liveness ~nslots:1 o f in
  check_bool "the overwritten store is dead" true
    (live.Analysis.Facts.lv_dead_stores <> []);
  check_bool "dead-store fires" true
    (has_rule "dead-store" (Analysis.Proflint.lint_binary o))

let test_dead_param () =
  let r =
    run_workload
      (workload "deadparam"
         "fun waste(a, b) { return a; }\nfun main() { return waste(1, 2); }")
  in
  let o = r.objfile in
  let cfg = Analysis.Cfg.build o in
  let f = func_named cfg "waste" in
  let live =
    Analysis.Facts.liveness ~nslots:2 o f
  in
  Alcotest.(check (list int)) "slot 1 never read" [ 1 ]
    (Analysis.Facts.dead_params live ~arity:2);
  check_bool "dead-param fires" true
    (has_rule "dead-param" (Analysis.Proflint.lint_binary o))

let test_irreducible_lint () =
  (* handmade: a two-entry loop between [2..3] and [4..5] *)
  let text =
    [|
      Instr.Const 0; Instr.Jumpz 4;
      Instr.Nop; Instr.Jump 4;
      Instr.Nop; Instr.Jump 2;
      Instr.Const 0; Instr.Ret;
    |]
  in
  let o =
    {
      Objfile.text;
      symbols = [| { Objfile.name = "f"; addr = 0; size = 8; profiled = false } |];
      entry = 0;
      globals = [||];
      global_init = [||];
      arrays = [||];
      lines = [||];
      source_name = "irreducible";
    }
  in
  let f = (Analysis.Cfg.build o).Analysis.Cfg.cfg_funcs.(0) in
  let d = Analysis.Dom.compute f in
  check_bool "irreducible" true d.Analysis.Dom.d_irreducible;
  check_bool "irreducible-loop fires" true
    (has_rule "irreducible-loop" (Analysis.Proflint.lint_binary o))

(* ------------------------------------------------------------------ *)
(* Static cost bounds *)

let test_cost_loops_and_recursion () =
  let r =
    run_workload
      (workload "cost"
         "fun work(n) { var i; var s; i = 0; s = 0; \
          while (i < n) { s = s + i; i = i + 1; } return s; }\n\
          fun rec(n) { if (n < 1) { return 0; } return rec(n - 1); }\n\
          fun main() { return work(10) + rec(3); }")
  in
  let cfg = Analysis.Cfg.build r.objfile in
  let est = Analysis.Cost.static_estimate cfg in
  let fn name =
    match
      Array.find_opt (fun c -> c.Analysis.Cost.c_name = name) est.Analysis.Cost.c_funcs
    with
    | Some c -> c
    | None -> Alcotest.failf "no cost entry for %s" name
  in
  let work = fn "work" and recf = fn "rec" and main = fn "main" in
  check_int "work has one loop" 1 work.Analysis.Cost.c_loops;
  check_int "work depth" 1 work.Analysis.Cost.c_depth;
  check_bool "work total is finite" true (work.Analysis.Cost.c_total <> None);
  check_bool "recursion has no finite bound" true (recf.Analysis.Cost.c_total = None);
  check_bool "a caller of recursion inherits the unbound" true
    (main.Analysis.Cost.c_total = None);
  (* loop weighting: the loop body counts more than once *)
  (match work.Analysis.Cost.c_total with
  | Some t -> check_bool "loop-weighted" true (t > 0 && t >= work.Analysis.Cost.c_self)
  | None -> ());
  let listing = Analysis.Cost.listing est in
  check_bool "listing marks the unbounded" true (contains ~needle:"unbounded" listing);
  check_bool "listing names work" true (contains ~needle:"work" listing)

(* ------------------------------------------------------------------ *)
(* The stock workloads and Figure 4 lint clean *)

let test_workloads_lint_clean () =
  List.iter
    (fun w ->
      let r = run_workload w in
      let l = Analysis.Proflint.lint r.objfile r.gmon in
      check_int
        (Printf.sprintf "%s lints clean (rules: %s)" w.Workloads.Programs.w_name
           (String.concat ", "
              (List.filter
                 (fun ru ->
                   List.exists
                     (fun (f : Analysis.Proflint.finding) ->
                       f.f_rule = ru && f.f_severity <> Analysis.Proflint.Info)
                     l.l_findings)
                 (rules_fired l))))
        0
        (Analysis.Proflint.exit_code ~strict:true l))
    Workloads.Programs.all

let test_figure4_lint_clean () =
  let l = Analysis.Proflint.lint Workloads.Figure4.objfile Workloads.Figure4.gmon in
  check_int "figure4 clean" 0 (Analysis.Proflint.exit_code ~strict:true l)

(* ------------------------------------------------------------------ *)
(* Seeded mutations: each profile-vs-statics rule must trip *)

let hot_loop_src =
  "fun leaf(x) { return x + 1; }\n\
   fun main() { var i; var s; i = 0; s = 0; \
   while (i < 200000) { s = leaf(s) + i; i = i + 1; } return s; }"

let test_loop_call_unobserved () =
  let r = run_workload (workload "hotloop" hot_loop_src) in
  let o = r.objfile in
  let leaf =
    match Objfile.symbol_by_name o "leaf" with
    | Some s -> s
    | None -> Alcotest.fail "no leaf"
  in
  (* erase every dynamic arc into the loop's callee *)
  let mutated =
    {
      r.gmon with
      Gmon.arcs =
        List.filter
          (fun (a : Gmon.arc) -> a.Gmon.a_self <> leaf.Objfile.addr)
          r.gmon.Gmon.arcs;
    }
  in
  check_bool "clean before mutation" false
    (has_rule "loop-call-unobserved" (Analysis.Proflint.lint o r.gmon));
  let l = Analysis.Proflint.lint o mutated in
  check_bool "loop-call-unobserved fires" true (has_rule "loop-call-unobserved" l);
  check_int "strict exit" 2 (Analysis.Proflint.exit_code ~strict:true l)

let test_loop_no_ticks () =
  let r = run_workload (workload "hotloop2" hot_loop_src) in
  let o = r.objfile in
  let cfg = Analysis.Cfg.build o in
  let f = func_named cfg "main" in
  let d = Analysis.Dom.compute f in
  let in_loop pc =
    Array.exists
      (fun (l : Analysis.Dom.loop) ->
        List.exists
          (fun bi ->
            let b = f.Analysis.Cfg.fn_blocks.(bi) in
            pc >= b.Analysis.Cfg.bb_start
            && pc < b.Analysis.Cfg.bb_start + b.Analysis.Cfg.bb_len)
          l.Analysis.Dom.l_body)
      d.Analysis.Dom.d_loops
  in
  check_bool "main has a loop" true (Array.length d.Analysis.Dom.d_loops > 0);
  (* move every loop-bucket tick to the function prologue: total ticks
     in the function are conserved, the loop shows none *)
  let h = r.gmon.Gmon.hist in
  let counts = Array.copy h.Gmon.h_counts in
  let moved = ref 0 in
  Array.iteri
    (fun i c ->
      let blo, bhi = Gmon.bucket_range h i in
      if c > 0 && bhi > blo && in_loop blo && in_loop (bhi - 1) then begin
        moved := !moved + c;
        counts.(i) <- 0
      end)
    h.Gmon.h_counts;
  check_bool "the loop had ticks to move" true (!moved > 0);
  let entry_sym = f.Analysis.Cfg.fn_symbol in
  (match Gmon.bucket_of_pc h entry_sym.Objfile.addr with
  | Some i -> counts.(i) <- counts.(i) + !moved
  | None -> Alcotest.fail "entry not covered by the histogram");
  let mutated = { r.gmon with Gmon.hist = { h with Gmon.h_counts = counts } } in
  check_bool "clean before mutation" false
    (has_rule "loop-no-ticks" (Analysis.Proflint.lint o r.gmon));
  let l = Analysis.Proflint.lint o mutated in
  check_bool "loop-no-ticks fires" true (has_rule "loop-no-ticks" l);
  check_int "strict exit" 2 (Analysis.Proflint.exit_code ~strict:true l)

let test_dead_block_ticks () =
  let r = run_workload (workload "deadticks" constprop_src) in
  let o = r.objfile in
  let cfg = Analysis.Cfg.build o in
  let f = func_named cfg "main" in
  (* find a plain-CFG-unreachable block (codegen's trailing epilogue)
     and claim the profiler sampled it *)
  let g = Df.graph_of_func f in
  let plain = Df.reachable g in
  let dead =
    let rec go i =
      if i >= Array.length plain then Alcotest.fail "no dead block"
      else if not plain.(i) then f.Analysis.Cfg.fn_blocks.(i)
      else go (i + 1)
    in
    go 0
  in
  let h = r.gmon.Gmon.hist in
  let counts = Array.copy h.Gmon.h_counts in
  (match Gmon.bucket_of_pc h dead.Analysis.Cfg.bb_start with
  | Some i -> counts.(i) <- counts.(i) + 5
  | None -> Alcotest.fail "dead block not covered by the histogram");
  let mutated = { r.gmon with Gmon.hist = { h with Gmon.h_counts = counts } } in
  let l = Analysis.Proflint.lint o mutated in
  check_bool "dead-block-ticks fires" true (has_rule "dead-block-ticks" l);
  check_bool "it is an error" true
    (List.exists
       (fun (fi : Analysis.Proflint.finding) ->
         fi.f_rule = "dead-block-ticks" && fi.f_severity = Analysis.Proflint.Error)
       l.l_findings);
  check_int "even lenient fails" 2 (Analysis.Proflint.exit_code ~strict:false l)

(* ------------------------------------------------------------------ *)
(* Aggregation and the machine-readable report *)

let test_aggregate_duplicates () =
  let o = Workloads.Figure4.objfile and g = Workloads.Figure4.gmon in
  let statics = Analysis.Proflint.prepare o in
  let r1 = Analysis.Proflint.lint ~statics o g in
  let r2 = Analysis.Proflint.lint ~statics o g in
  let aggs = Analysis.Proflint.aggregate [ r1; r2 ] in
  check_int "distinct findings, not doubled" (List.length r1.l_findings)
    (List.length aggs);
  List.iter
    (fun (a : Analysis.Proflint.aggregate) ->
      check_int "each seen in both profiles" 2 a.Analysis.Proflint.a_profiles)
    aggs;
  let rendered = Analysis.Proflint.render_aggregate ~nprofiles:2 [ r1; r2 ] in
  check_bool "tagged with the profile count" true
    (contains ~needle:"(2/2 profiles)" rendered);
  check_bool "one combined summary" true
    (contains ~needle:"over 2 profile(s)" rendered)

let test_json_deterministic_and_parses () =
  let o = Workloads.Figure4.objfile and g = Workloads.Figure4.gmon in
  let j1 =
    Analysis.Proflint.to_json ~binary:"figure4" ~profiles:[ "a"; "b" ]
      [ Analysis.Proflint.lint o g; Analysis.Proflint.lint o g ]
  in
  let j2 =
    Analysis.Proflint.to_json ~binary:"figure4" ~profiles:[ "a"; "b" ]
      [ Analysis.Proflint.lint o g; Analysis.Proflint.lint o g ]
  in
  check_bool "byte-identical across runs" true (String.equal j1 j2);
  (* independent parse-back *)
  let v = Obs.Jsonin.parse_exn j1 in
  let member k =
    match Obs.Jsonin.member k v with
    | Some x -> x
    | None -> Alcotest.failf "missing %s" k
  in
  check_bool "schema" true
    (Obs.Jsonin.to_string (member "schema") = Some Analysis.Proflint.json_schema);
  check_bool "binary" true (Obs.Jsonin.to_string (member "binary") = Some "figure4");
  let findings =
    match Obs.Jsonin.to_list (member "findings") with
    | Some l -> l
    | None -> Alcotest.fail "findings not a list"
  in
  let summary = member "summary" in
  check_bool "summary.findings counts the array" true
    (Obs.Jsonin.to_int
       (Option.get (Obs.Jsonin.member "findings" summary))
    = Some (List.length findings));
  (* every finding is well-shaped and sorted by (rule, func, addr) *)
  let keys =
    List.map
      (fun fv ->
        let get k = Obs.Jsonin.member k fv in
        let rule = Option.bind (get "rule") Obs.Jsonin.to_string in
        check_bool "has rule" true (rule <> None);
        check_bool "has severity" true
          (Option.bind (get "severity") Obs.Jsonin.to_string <> None);
        check_bool "has profiles count" true
          (Option.bind (get "profiles") Obs.Jsonin.to_int <> None);
        check_bool "has msg" true
          (Option.bind (get "msg") Obs.Jsonin.to_string <> None);
        ( Option.value ~default:"" rule,
          Option.bind (get "func") Obs.Jsonin.to_string,
          Option.bind (get "addr") Obs.Jsonin.to_int ))
      findings
  in
  check_bool "sorted by (rule, func, addr)" true
    (List.sort compare keys = keys)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_published () =
  let reg = Obs.Metrics.default in
  let before = Obs.Metrics.counter_value (Obs.Metrics.counter reg "analysis.dataflow.passes") in
  let r = run_workload (workload "metrics" constprop_src) in
  let l = Analysis.Proflint.lint r.objfile r.gmon in
  ignore l;
  let after = Obs.Metrics.counter_value (Obs.Metrics.counter reg "analysis.dataflow.passes") in
  check_bool "dataflow passes counted" true (after > before);
  check_bool "iterations counted" true
    (Obs.Metrics.counter_value (Obs.Metrics.counter reg "analysis.dataflow.iterations") > 0);
  check_bool "loops counted" true
    (Obs.Metrics.counter_value (Obs.Metrics.counter reg "analysis.dom.loops") > 0);
  check_bool "per-rule fired counter" true
    (Obs.Metrics.counter_value (Obs.Metrics.counter reg "analysis.lint.fired.const-branch") > 0)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "dataflow"
    [
      ( "bits",
        [
          Alcotest.test_case "basics" `Quick test_bits_basics;
          Alcotest.test_case "graph reachability" `Quick test_graph_reachable;
        ] );
      ( "dom",
        [
          Alcotest.test_case "diamond" `Quick test_dom_diamond;
          Alcotest.test_case "nested loops" `Quick test_dom_nested_loops;
          Alcotest.test_case "irreducible" `Quick test_dom_irreducible;
          qt dom_oracle;
        ] );
      ( "solver",
        [
          qt solver_fixpoint;
          Alcotest.test_case "fuel bound" `Quick test_solver_fuel;
          qt straightline_agreement;
        ] );
      ( "facts",
        [
          Alcotest.test_case "arities inferred" `Quick test_arities_inferred;
          Alcotest.test_case "arity conflict" `Quick test_arities_conflict;
          Alcotest.test_case "constprop beats reach" `Quick test_constprop_beats_reach;
          Alcotest.test_case "dead store" `Quick test_dead_store;
          Alcotest.test_case "dead param" `Quick test_dead_param;
          Alcotest.test_case "irreducible lint" `Quick test_irreducible_lint;
        ] );
      ( "cost",
        [ Alcotest.test_case "loops and recursion" `Quick test_cost_loops_and_recursion ] );
      ( "lint",
        [
          Alcotest.test_case "workloads clean" `Slow test_workloads_lint_clean;
          Alcotest.test_case "figure4 clean" `Quick test_figure4_lint_clean;
          Alcotest.test_case "loop-call-unobserved" `Quick test_loop_call_unobserved;
          Alcotest.test_case "loop-no-ticks" `Quick test_loop_no_ticks;
          Alcotest.test_case "dead-block-ticks" `Quick test_dead_block_ticks;
        ] );
      ( "report",
        [
          Alcotest.test_case "aggregation" `Quick test_aggregate_duplicates;
          Alcotest.test_case "json determinism" `Quick test_json_deterministic_and_parses;
          Alcotest.test_case "metrics" `Quick test_metrics_published;
        ] );
    ]
