(* Robustness: random and adversarial inputs at every boundary of the
   system must produce clean errors (or clean faults), never OCaml
   exceptions, and the analyses must hold their invariants on every
   well-formed program a generator can produce. *)


(* ------------------------------------------------------------------ *)
(* Random text into the parsers *)

let token_soup_gen =
  QCheck.Gen.(
    let word =
      oneofl
        [ "fun"; "var"; "array"; "if"; "else"; "while"; "for"; "return"; "x";
          "main"; "f"; "42"; "0"; "+"; "-"; "*"; "/"; "%"; "("; ")"; "{"; "}";
          "["; "]"; ";"; ","; "="; "=="; "<"; "<="; "&&"; "||"; "!"; "//c\n";
          "/*c*/" ]
    in
    map (String.concat " ") (list_size (int_range 0 60) word))

let parser_never_crashes =
  QCheck.Test.make ~name:"parser: token soup yields a program or Parser.Error"
    ~count:1000
    (QCheck.make ~print:Fun.id token_soup_gen)
    (fun src ->
      match Mini.Parser.parse_program src with
      | _ -> true
      | exception Mini.Parser.Error _ -> true)

let lexer_never_crashes =
  QCheck.Test.make ~name:"lexer: arbitrary bytes yield tokens or Lexer.Error"
    ~count:1000
    QCheck.(string_gen Gen.(char_range '\000' '\255'))
    (fun src ->
      match Mini.Lexer.tokenize src with
      | _ -> true
      | exception Mini.Lexer.Error _ -> true)

(* ------------------------------------------------------------------ *)
(* Random bytes into the binary readers *)

let gmon_reader_total =
  QCheck.Test.make ~name:"gmon reader: random bytes never raise" ~count:500
    QCheck.(string_gen Gen.(char_range '\000' '\255'))
    (fun s -> match Gmon.of_bytes s with Ok _ | Error _ -> true)

let gmon_reader_bitflips =
  QCheck.Test.make ~name:"gmon reader: bit-flipped real files never raise"
    ~count:300
    QCheck.(pair small_nat small_nat)
    (fun (pos_seed, bit) ->
      let g =
        {
          Gmon.hist =
            { h_lowpc = 0; h_highpc = 16; h_bucket_size = 1;
              h_counts = Array.init 16 (fun i -> i) };
          arcs = [ { Gmon.a_from = 2; a_self = 4; a_count = 9 } ];
          ticks_per_second = 60;
          cycles_per_tick = 16_666;
          runs = 1;
        }
      in
      let bytes = Bytes.of_string (Gmon.to_bytes g) in
      let pos = pos_seed mod Bytes.length bytes in
      Bytes.set bytes pos
        (Char.chr (Char.code (Bytes.get bytes pos) lxor (1 lsl (bit mod 8))));
      match Gmon.of_bytes (Bytes.to_string bytes) with
      | Ok _ | Error _ -> true)

let salvage_reader_total =
  QCheck.Test.make ~name:"salvage decoder: random bytes never raise; Ok validates"
    ~count:500
    QCheck.(string_gen Gen.(char_range '\000' '\255'))
    (fun s ->
      match Gmon.decode ~mode:`Salvage s with
      | Error _ -> true
      | Ok (g, _) -> Gmon.validate g = Ok ())

(* A random profile, truncated at a random point and peppered with
   random byte flips: salvage must never raise, and anything it
   recovers must validate. Under pure truncation it must additionally
   be a sub-profile — salvage never invents ticks or arcs. *)
let random_profile_gen =
  QCheck.Gen.(
    let* highpc = int_range 1 24 in
    let* ticks =
      list_size (int_range 0 8) (pair (int_range 0 (highpc - 1)) (int_range 0 99))
    in
    let* arcs =
      list_size (int_range 0 8)
        (triple (int_range (-2) 30) (int_range 0 30) (int_range 0 50))
    in
    let hist = Gmon.make_hist ~lowpc:0 ~highpc ~bucket_size:1 in
    let counts = Array.copy hist.Gmon.h_counts in
    List.iter (fun (b, c) -> counts.(b) <- c) ticks;
    let arcs =
      List.sort_uniq
        (fun (a : Gmon.arc) b -> compare (a.a_from, a.a_self) (b.a_from, b.a_self))
        (List.map (fun (f, s, c) -> { Gmon.a_from = f; a_self = s; a_count = c }) arcs)
    in
    return
      { Gmon.hist = { hist with h_counts = counts }; arcs;
        ticks_per_second = 60; cycles_per_tick = 16_666; runs = 1 })

let salvage_truncation_is_subset =
  QCheck.Test.make
    ~name:"salvage decoder: truncated files yield valid sub-profiles"
    ~count:300
    (QCheck.make
       ~print:(fun (g, cut) -> Printf.sprintf "cut=%d of %a" cut
                  (fun () -> Format.asprintf "%a" Gmon.pp) g)
       QCheck.Gen.(pair random_profile_gen small_nat))
    (fun (g, cut_seed) ->
      let bytes = Gmon.to_bytes g in
      let cut = cut_seed mod String.length bytes in
      match Gmon.decode ~mode:`Salvage (String.sub bytes 0 cut) with
      | Error _ -> true (* header damage is unrecoverable by design *)
      | Ok (s, report) ->
        Gmon.validate s = Ok ()
        && Gmon.report_degraded report
        && s.hist.h_highpc = g.hist.h_highpc
        && Array.for_all2 ( >= ) g.hist.h_counts s.hist.h_counts
        && List.for_all (fun a -> List.mem a g.Gmon.arcs) s.Gmon.arcs)

let salvage_mutations_never_raise =
  QCheck.Test.make
    ~name:"salvage decoder: flipped+truncated files never raise; Ok validates"
    ~count:300
    (QCheck.make
       ~print:(fun (_, cut, flips) ->
         Printf.sprintf "cut=%d flips=%d" cut (List.length flips))
       QCheck.Gen.(
         triple random_profile_gen small_nat
           (list_size (int_range 0 5) (pair small_nat (int_range 0 7)))))
    (fun (g, cut_seed, flips) ->
      let bytes = Gmon.to_bytes g in
      let cut = 1 + (cut_seed mod (String.length bytes - 1)) in
      let b = Bytes.of_string (String.sub bytes 0 cut) in
      List.iter
        (fun (pos_seed, bit) ->
          let pos = pos_seed mod Bytes.length b in
          Bytes.set b pos
            (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit))))
        flips;
      let s = Bytes.to_string b in
      (match Gmon.decode ~mode:`Strict s with Ok _ | Error _ -> ());
      match Gmon.decode ~mode:`Salvage s with
      | Error e -> e.Gmon.de_offset >= 0 && e.de_offset <= cut
      | Ok (g', _) -> Gmon.validate g' = Ok ())

let icount_reader_total =
  QCheck.Test.make ~name:"icount reader: random bytes never raise" ~count:500
    QCheck.(string_gen Gen.(char_range '\000' '\255'))
    (fun s -> match Gmon.Icount.of_bytes s with Ok _ | Error _ -> true)

let objfile_reader_total =
  QCheck.Test.make ~name:"objfile reader: random text never raises" ~count:500
    QCheck.(string_gen Gen.printable)
    (fun s ->
      match Objcode.Objfile.of_string ("MINIOBJ 1\n" ^ s) with
      | Ok _ | Error _ -> true)

(* ------------------------------------------------------------------ *)
(* Random well-formed programs through the whole pipeline *)

(* Generates terminating programs: functions may only call
   lower-numbered functions, loops have static bounds, divisors are
   offset to be nonzero. *)
let program_gen =
  let open QCheck.Gen in
  let rec expr_gen ~callees ~locals n =
    if n <= 1 then
      oneof
        [ map (fun k -> Printf.sprintf "%d" k) (int_range (-9) 99);
          (if locals = [] then map string_of_int (int_range 0 9)
           else oneofl locals) ]
    else
      let sub = expr_gen ~callees ~locals (n / 2) in
      oneof
        ([
           map (fun k -> string_of_int k) (int_range 0 99);
           map2 (Printf.sprintf "(%s + %s)") sub sub;
           map2 (Printf.sprintf "(%s - %s)") sub sub;
           map2 (Printf.sprintf "(%s * %s)") sub sub;
           (* the divisor is m%7+8, in [2,14]: never zero *)
           map2 (Printf.sprintf "(%s / (%s %% 7 + 8))") sub sub;
           map2 (Printf.sprintf "(%s < %s)") sub sub;
           map2 (Printf.sprintf "(%s && %s)") sub sub;
         ]
        @
        match callees with
        | [] -> []
        | _ ->
          [ (let* f = oneofl callees in
             let* a = sub in
             return (Printf.sprintf "%s(%s)" f a)) ])
  in
  let stmt_gen ~callees ~locals =
    let expr = expr_gen ~callees ~locals 6 in
    oneof
      [
        (let* l = oneofl locals in
         map (Printf.sprintf "%s = %s;" l) expr);
        (let* l = oneofl locals in
         let* bound = int_range 1 5 in
         map
           (fun e ->
             Printf.sprintf "for (loopv = 0; loopv < %d; loopv = loopv + 1) { %s = %s + %s; }"
               bound l l e)
           expr);
        (let* c = expr in
         let* l = oneofl locals in
         let* e = expr in
         return (Printf.sprintf "if (%s) { %s = %s; }" c l e));
        map (Printf.sprintf "return %s;") expr;
      ]
  in
  let fun_gen ~name ~callees =
    let locals = [ "a"; "b" ] in
    let* stmts = list_size (int_range 1 5) (stmt_gen ~callees ~locals) in
    return
      (Printf.sprintf "fun %s(a) {\n  var b;\n  var loopv;\n  %s\n  return a + b;\n}"
         name (String.concat "\n  " stmts))
  in
  let* n_funs = int_range 1 5 in
  let rec build i acc callees =
    if i > n_funs then return (List.rev acc)
    else
      let name = Printf.sprintf "f%d" i in
      let* f = fun_gen ~name ~callees in
      build (i + 1) (f :: acc) (name :: callees)
  in
  let* funs = build 1 [] [] in
  let* main_body =
    list_size (int_range 1 4)
      (stmt_gen ~callees:(List.init n_funs (fun i -> Printf.sprintf "f%d" (i + 1)))
         ~locals:[ "a"; "b" ])
  in
  return
    (String.concat "\n\n" funs
    ^ Printf.sprintf
        "\n\nfun main() {\n  var a;\n  var b;\n  var loopv;\n  %s\n  return b %% 256;\n}"
        (String.concat "\n  " main_body))

let pipeline_on_random_programs =
  QCheck.Test.make
    ~name:"generated programs compile, run, and analyze with conserved time"
    ~count:60
    (QCheck.make ~print:Fun.id program_gen)
    (fun src ->
      match
        Compile.Codegen.compile_source ~options:Compile.Codegen.profiling_options
          src
      with
      | Error _ -> false (* the generator only makes well-formed programs *)
      | Ok o -> (
        (match Objcode.Objfile.validate o with Ok () -> () | Error es ->
          QCheck.Test.fail_reportf "invalid objfile: %s" (String.concat "; " es));
        let m =
          Vm.Machine.create
            ~config:{ Vm.Machine.default_config with max_cycles = Some 3_000_000 }
            o
        in
        match Vm.Machine.run m with
        | Vm.Machine.Running -> false
        | Vm.Machine.Faulted f ->
          (* generated divisions are nonzero and loops bounded; the
             only legitimate fault is the safety cap *)
          f.reason = "cycle limit exceeded"
        | Vm.Machine.Halted -> (
          match Gprof_core.Report.analyze o (Vm.Machine.profile m) with
          | Error e -> QCheck.Test.fail_reportf "analyze failed: %s" e
          | Ok r ->
            let p = r.profile in
            let rows = Gprof_core.Flat.rows p in
            let sum = List.fold_left (fun a (_, s, _, _) -> a +. s) 0.0 rows in
            abs_float (sum +. p.unattributed -. p.total_time) < 1e-6)))

let transformed_random_programs_agree =
  QCheck.Test.make
    ~name:"constant folding and inlining preserve generated-program results"
    ~count:40
    (QCheck.make ~print:Fun.id program_gen)
    (fun src ->
      let run options =
        match Compile.Codegen.compile_source ~options src with
        | Error _ -> None
        | Ok o -> (
          let m =
            Vm.Machine.create
              ~config:{ Vm.Machine.default_config with max_cycles = Some 3_000_000 }
              o
          in
          match Vm.Machine.run m with
          | Vm.Machine.Halted -> Some (Vm.Machine.result m, Vm.Machine.output m)
          | _ -> None)
      in
      let plain = run Compile.Codegen.default_options in
      let folded =
        run { Compile.Codegen.default_options with fold = true }
      in
      let inlined =
        run
          { Compile.Codegen.default_options with
            inline = [ "f1"; "f2"; "f3"; "f4"; "f5" ] }
      in
      match plain with
      | None -> true (* hit the safety cap; nothing to compare *)
      | Some r -> folded = Some r && inlined = Some r)

(* ------------------------------------------------------------------ *)
(* Corrupted executables into the VM *)

let corrupt_instr_gen =
  QCheck.Gen.(
    let* which = int_range 0 10_000 in
    let* op = int_range 0 9 in
    let* operand = int_range (-5) 2000 in
    return (which, op, operand))

let vm_survives_corrupt_code =
  QCheck.Test.make ~name:"VM: corrupted object code faults cleanly" ~count:300
    (QCheck.make
       ~print:(fun (a, b, c) -> Printf.sprintf "(%d,%d,%d)" a b c)
       corrupt_instr_gen)
    (fun (which, op, operand) ->
      let o =
        match
          Compile.Codegen.compile_source ~options:Compile.Codegen.profiling_options
            Workloads.Programs.quick.w_source
        with
        | Ok o -> o
        | Error _ -> assert false
      in
      let text = Array.copy o.Objcode.Objfile.text in
      let pos = which mod Array.length text in
      let evil : Objcode.Instr.t =
        match op with
        | 0 -> Jump operand
        | 1 -> Jumpz operand
        | 2 -> Call (operand, 1)
        | 3 -> Calli 3
        | 4 -> Load operand
        | 5 -> Store operand
        | 6 -> Aload operand
        | 7 -> Gload operand
        | 8 -> Ret
        | _ -> Pop
      in
      text.(pos) <- evil;
      let o = { o with Objcode.Objfile.text } in
      (* validation may reject it outright; if it passes, the VM must
         reach a clean terminal state under the cycle cap *)
      match Objcode.Objfile.validate o with
      | Error _ -> true
      | Ok () -> (
        let m =
          Vm.Machine.create
            ~config:{ Vm.Machine.default_config with max_cycles = Some 3_000_000 }
            o
        in
        match Vm.Machine.run m with
        | Vm.Machine.Halted | Vm.Machine.Faulted _ -> true
        | Vm.Machine.Running -> false))

(* Arc records pointing anywhere must not break the analyzer. *)
let analyzer_survives_junk_arcs =
  QCheck.Test.make ~name:"analyzer: arbitrary arc records never crash" ~count:300
    QCheck.(
      list_of_size Gen.(int_range 0 30)
        (triple (int_range (-10) 100) (int_range (-10) 100) (int_range 0 50)))
    (fun raw ->
      let o = Workloads.Figure4.objfile in
      let n = Array.length o.Objcode.Objfile.text in
      let hist = Gmon.make_hist ~lowpc:0 ~highpc:n ~bucket_size:1 in
      let arcs =
        List.sort_uniq
          (fun (a : Gmon.arc) b -> compare (a.a_from, a.a_self) (b.a_from, b.a_self))
          (List.map (fun (f, s, c) -> { Gmon.a_from = f; a_self = s; a_count = c }) raw)
      in
      let g =
        { Gmon.hist; arcs; ticks_per_second = 60; cycles_per_tick = 16_666;
          runs = 1 }
      in
      match Gprof_core.Report.analyze o g with Ok _ | Error _ -> true)

let () =
  (* Pin the generator seed: this suite drives whole-program execution,
     so runtime and outcomes must not wander run to run. *)
  if Sys.getenv_opt "QCHECK_SEED" = None then Unix.putenv "QCHECK_SEED" "20260705";
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "fuzz"
    [
      ( "text inputs",
        [ qt parser_never_crashes; qt lexer_never_crashes ] );
      ( "binary inputs",
        [ qt gmon_reader_total; qt gmon_reader_bitflips; qt salvage_reader_total;
          qt salvage_truncation_is_subset; qt salvage_mutations_never_raise;
          qt icount_reader_total; qt objfile_reader_total ] );
      ( "generated programs",
        [ qt pipeline_on_random_programs; qt transformed_random_programs_agree ] );
      ( "corrupted state",
        [ qt vm_survives_corrupt_code; qt analyzer_survives_junk_arcs ] );
    ]
