(* Tests for the VM: the mcount monitor, the profil histogram, the
   oracle, the stack sampler, and the machine itself (execution,
   faults, clock ticks, runtime profiling control). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Monitor *)

let test_monitor_basic () =
  let m = Vm.Monitor.create ~text_size:100 ~keying:Vm.Monitor.Site_primary in
  ignore (Vm.Monitor.record m ~frompc:10 ~selfpc:50);
  ignore (Vm.Monitor.record m ~frompc:10 ~selfpc:50);
  ignore (Vm.Monitor.record m ~frompc:20 ~selfpc:50);
  Alcotest.(check (list (triple int int int)))
    "arcs"
    [ (10, 50, 2); (20, 50, 1) ]
    (List.map (fun (a : Gmon.arc) -> (a.a_from, a.a_self, a.a_count))
       (Vm.Monitor.arcs m));
  check_int "records" 3 (Vm.Monitor.total_records m);
  check_int "distinct" 2 (Vm.Monitor.distinct_arcs m)

let test_monitor_multi_callee_site () =
  (* A call site with several destinations (a functional variable)
     chains within one froms slot. *)
  let m = Vm.Monitor.create ~text_size:100 ~keying:Vm.Monitor.Site_primary in
  ignore (Vm.Monitor.record m ~frompc:10 ~selfpc:50);
  ignore (Vm.Monitor.record m ~frompc:10 ~selfpc:60);
  ignore (Vm.Monitor.record m ~frompc:10 ~selfpc:70);
  ignore (Vm.Monitor.record m ~frompc:10 ~selfpc:50);
  check_int "three arcs" 3 (Vm.Monitor.distinct_arcs m);
  let counts =
    List.map (fun (a : Gmon.arc) -> (a.a_self, a.a_count)) (Vm.Monitor.arcs m)
  in
  Alcotest.(check (list (pair int int))) "chained counts"
    [ (50, 2); (60, 1); (70, 1) ] counts

let test_monitor_spontaneous () =
  let m = Vm.Monitor.create ~text_size:100 ~keying:Vm.Monitor.Site_primary in
  ignore (Vm.Monitor.record m ~frompc:(-2) ~selfpc:50);
  ignore (Vm.Monitor.record m ~frompc:100 ~selfpc:50);
  ignore (Vm.Monitor.record m ~frompc:(-2) ~selfpc:60);
  (match Vm.Monitor.arcs m with
  | [ a; b ] ->
    check_int "spontaneous from" Vm.Monitor.spontaneous_from a.Gmon.a_from;
    check_int "merged count" 2 a.Gmon.a_count;
    check_int "second callee" 60 b.Gmon.a_self
  | arcs -> Alcotest.failf "expected 2 arcs, got %d" (List.length arcs));
  Alcotest.check_raises "selfpc outside text"
    (Invalid_argument "Monitor.record: selfpc outside text segment") (fun () ->
      ignore (Vm.Monitor.record m ~frompc:10 ~selfpc:100))

let test_monitor_keying_equivalence () =
  (* Both keyings must produce identical condensed arc tables. *)
  let mk keying = Vm.Monitor.create ~text_size:200 ~keying in
  let a = mk Vm.Monitor.Site_primary and b = mk Vm.Monitor.Callee_primary in
  let prng = Util.Prng.create 7 in
  for _ = 1 to 2000 do
    let frompc = Util.Prng.int prng 220 - 10 in
    let selfpc = Util.Prng.int prng 200 in
    ignore (Vm.Monitor.record a ~frompc ~selfpc);
    ignore (Vm.Monitor.record b ~frompc ~selfpc)
  done;
  check_bool "same arcs" true (Vm.Monitor.arcs a = Vm.Monitor.arcs b)

let test_monitor_keying_probes () =
  (* Many callers of one callee: callee-primary must probe longer
     chains — the paper's reason for keying by call site. *)
  let site = Vm.Monitor.create ~text_size:1000 ~keying:Vm.Monitor.Site_primary in
  let callee = Vm.Monitor.create ~text_size:1000 ~keying:Vm.Monitor.Callee_primary in
  for round = 1 to 50 do
    for caller = 0 to 99 do
      ignore round;
      ignore (Vm.Monitor.record site ~frompc:caller ~selfpc:500);
      ignore (Vm.Monitor.record callee ~frompc:caller ~selfpc:500)
    done
  done;
  check_bool "callee-primary probes more" true
    (Vm.Monitor.total_probes callee > Vm.Monitor.total_probes site)

let test_monitor_reset () =
  let m = Vm.Monitor.create ~text_size:100 ~keying:Vm.Monitor.Site_primary in
  ignore (Vm.Monitor.record m ~frompc:10 ~selfpc:50);
  ignore (Vm.Monitor.record m ~frompc:(-1) ~selfpc:50);
  Vm.Monitor.reset m;
  check_int "no arcs" 0 (Vm.Monitor.distinct_arcs m);
  check_int "no records" 0 (Vm.Monitor.total_records m);
  check_int "no probes" 0 (Vm.Monitor.total_probes m);
  check_int "no max probe" 0 (Vm.Monitor.max_probe m);
  check_int "empty probe histogram" 0
    (Array.fold_left ( + ) 0 (Vm.Monitor.probe_depth_hist m));
  check_int "no chains" 0 (Vm.Monitor.chain_stats m).Vm.Monitor.n_chains;
  ignore (Vm.Monitor.record m ~frompc:10 ~selfpc:50);
  check_int "usable after reset" 1 (Vm.Monitor.distinct_arcs m)

let test_monitor_probe_depth () =
  (* Hand-computed chain walks: new cells are pushed at the head, so
     a repeated callee sinks one position per later-arriving callee. *)
  let m = Vm.Monitor.create ~text_size:100 ~keying:Vm.Monitor.Site_primary in
  let probes = ref [] in
  let rec_ frompc selfpc =
    let cost = Vm.Monitor.record m ~frompc ~selfpc in
    probes := ((cost - Vm.Monitor.base_cost) / Vm.Monitor.probe_cost) :: !probes
  in
  rec_ 10 50; (* empty chain: 0 probes *)
  rec_ 10 50; (* head hit: 1 *)
  rec_ 10 60; (* miss past [50]: 1, then 60 pushed at head *)
  rec_ 10 50; (* 60 then 50: 2 *)
  rec_ 10 70; (* miss past [60;50]: 2, then 70 pushed at head *)
  rec_ 10 50; (* 70, 60, 50: 3 *)
  Alcotest.(check (list int)) "per-record probes from returned cost"
    [ 0; 1; 1; 2; 2; 3 ] (List.rev !probes);
  check_int "total probes" 9 (Vm.Monitor.total_probes m);
  check_int "max probe" 3 (Vm.Monitor.max_probe m);
  let hist = Vm.Monitor.probe_depth_hist m in
  check_int "bucket 0 (empty chain)" 1 hist.(0);
  check_int "bucket [1,2)" 2 hist.(1);
  check_int "bucket [2,4)" 3 hist.(2);
  check_int "histogram covers every record" (Vm.Monitor.total_records m)
    (Array.fold_left ( + ) 0 hist);
  let cs = Vm.Monitor.chain_stats m in
  check_int "one live chain" 1 cs.Vm.Monitor.n_chains;
  check_int "three cells" 3 cs.Vm.Monitor.n_cells;
  check_int "longest chain" 3 cs.Vm.Monitor.max_chain

let test_monitor_spontaneous_callee_primary () =
  (* Regression: out-of-text callers must normalize to the one
     spontaneous pseudo-site under BOTH keyings, so a negative
     sentinel and a past-the-end address cannot smear into distinct
     arcs. *)
  let run keying =
    let m = Vm.Monitor.create ~text_size:100 ~keying in
    ignore (Vm.Monitor.record m ~frompc:(-5) ~selfpc:50);
    ignore (Vm.Monitor.record m ~frompc:107 ~selfpc:50);
    ignore (Vm.Monitor.record m ~frompc:(-2) ~selfpc:60);
    Vm.Monitor.arcs m
  in
  let arcs = run Vm.Monitor.Callee_primary in
  (match arcs with
  | [ a; b ] ->
    check_int "one pseudo-site" Vm.Monitor.spontaneous_from a.Gmon.a_from;
    check_int "conflated count" 2 a.Gmon.a_count;
    check_int "other callee" 60 b.Gmon.a_self
  | l -> Alcotest.failf "expected 2 arcs, got %d" (List.length l));
  check_bool "keyings agree on anomalous callers" true
    (arcs = run Vm.Monitor.Site_primary)

let test_monitor_cost_grows_with_chain () =
  let m = Vm.Monitor.create ~text_size:100 ~keying:Vm.Monitor.Site_primary in
  let c1 = Vm.Monitor.record m ~frompc:10 ~selfpc:10 in
  ignore (Vm.Monitor.record m ~frompc:10 ~selfpc:20);
  ignore (Vm.Monitor.record m ~frompc:10 ~selfpc:30);
  (* Probing for the oldest entry now walks past the two newer ones. *)
  let c2 = Vm.Monitor.record m ~frompc:10 ~selfpc:10 in
  check_bool "longer chain costs more" true (c2 > c1)

(* ------------------------------------------------------------------ *)
(* Profil *)

let test_profil_sampling () =
  let p = Vm.Profil.create ~lowpc:0 ~highpc:10 ~bucket_size:1 in
  Vm.Profil.sample p ~pc:3;
  Vm.Profil.sample p ~pc:3;
  Vm.Profil.sample p ~pc:7;
  Vm.Profil.sample p ~pc:99 (* outside: dropped *);
  let h = Vm.Profil.hist p in
  check_int "bucket 3" 2 h.Gmon.h_counts.(3);
  check_int "bucket 7" 1 h.Gmon.h_counts.(7);
  check_int "ticks" 3 (Vm.Profil.ticks p)

let test_profil_granularity () =
  let p = Vm.Profil.create ~lowpc:0 ~highpc:10 ~bucket_size:4 in
  let h = Vm.Profil.hist p in
  check_int "bucket count" 3 (Array.length h.Gmon.h_counts);
  Vm.Profil.sample p ~pc:0;
  Vm.Profil.sample p ~pc:3;
  Vm.Profil.sample p ~pc:4;
  Vm.Profil.sample p ~pc:9;
  let h = Vm.Profil.hist p in
  check_int "bucket 0 covers 0-3" 2 h.Gmon.h_counts.(0);
  check_int "bucket 1 covers 4-7" 1 h.Gmon.h_counts.(1);
  check_int "bucket 2 covers 8-9" 1 h.Gmon.h_counts.(2)

let test_profil_enable_disable_reset () =
  let p = Vm.Profil.create ~lowpc:0 ~highpc:10 ~bucket_size:1 in
  Vm.Profil.disable p;
  Vm.Profil.sample p ~pc:1;
  check_int "disabled drops" 0 (Vm.Profil.ticks p);
  Vm.Profil.enable p;
  Vm.Profil.sample p ~pc:1;
  check_int "enabled records" 1 (Vm.Profil.ticks p);
  Vm.Profil.reset p;
  check_int "reset zeroes" 0 (Vm.Profil.ticks p);
  check_int "reset zeroes buckets" 0 (Vm.Profil.hist p).Gmon.h_counts.(1)

(* ------------------------------------------------------------------ *)
(* Oracle *)

let test_oracle_simple () =
  let o = Vm.Oracle.create () in
  (* main [0..100]; calls child at 10, child returns at 30. *)
  Vm.Oracle.on_call o ~site:(-1) ~callee:0 ~now:0;
  Vm.Oracle.on_call o ~site:5 ~callee:50 ~now:10;
  Vm.Oracle.on_return o ~now:30;
  Vm.Oracle.on_return o ~now:100;
  check_int "child self" 20 (Vm.Oracle.self_cycles o 50);
  check_int "child total" 20 (Vm.Oracle.total_cycles o 50);
  check_int "main self" 80 (Vm.Oracle.self_cycles o 0);
  check_int "main total" 100 (Vm.Oracle.total_cycles o 0);
  check_int "grand total" 100 (Vm.Oracle.grand_total o)

let test_oracle_recursion () =
  let o = Vm.Oracle.create () in
  (* f calls itself: outer [0..100], inner [20..60]. *)
  Vm.Oracle.on_call o ~site:(-1) ~callee:0 ~now:0;
  Vm.Oracle.on_call o ~site:3 ~callee:0 ~now:20;
  Vm.Oracle.on_return o ~now:60;
  Vm.Oracle.on_return o ~now:100;
  check_int "self counts both activations" 100 (Vm.Oracle.self_cycles o 0);
  check_int "total counts outermost only" 100 (Vm.Oracle.total_cycles o 0);
  let stats = Vm.Oracle.fun_stats o in
  (match stats with
  | [ (0, s) ] -> check_int "two calls" 2 s.Vm.Oracle.f_calls
  | _ -> Alcotest.fail "one function expected")

let test_oracle_arcs () =
  let o = Vm.Oracle.create () in
  Vm.Oracle.on_call o ~site:(-1) ~callee:0 ~now:0;
  Vm.Oracle.on_call o ~site:7 ~callee:50 ~now:10;
  Vm.Oracle.on_return o ~now:40;
  Vm.Oracle.on_call o ~site:9 ~callee:50 ~now:50;
  Vm.Oracle.on_return o ~now:60;
  Vm.Oracle.on_return o ~now:100;
  match Vm.Oracle.arc_stats o with
  | [ ((-1, 0), root); ((7, 50), a); ((9, 50), b) ] ->
    check_int "root calls" 1 root.Vm.Oracle.ar_calls;
    check_int "arc a time" 30 a.Vm.Oracle.ar_total_cycles;
    check_int "arc b time" 10 b.Vm.Oracle.ar_total_cycles
  | arcs -> Alcotest.failf "unexpected arcs (%d)" (List.length arcs)

let test_oracle_finish_unwinds () =
  let o = Vm.Oracle.create () in
  Vm.Oracle.on_call o ~site:(-1) ~callee:0 ~now:0;
  Vm.Oracle.on_call o ~site:1 ~callee:50 ~now:10;
  Vm.Oracle.finish o ~now:30;
  check_int "depth zero" 0 (Vm.Oracle.depth o);
  check_int "child attributed" 20 (Vm.Oracle.self_cycles o 50);
  check_int "root attributed" 10 (Vm.Oracle.self_cycles o 0);
  Alcotest.check_raises "return on empty"
    (Invalid_argument "Oracle.on_return: no outstanding call") (fun () ->
      Vm.Oracle.on_return o ~now:99)

(* ------------------------------------------------------------------ *)
(* Stacksamp *)

let test_stacksamp_interval () =
  let s = Vm.Stacksamp.create ~interval:3 () in
  for tick = 1 to 10 do
    ignore (Vm.Stacksamp.on_tick s ~stack:[| tick |])
  done;
  check_int "every third tick" 3 (Vm.Stacksamp.n_samples s);
  Alcotest.(check (list (pair (array int) int)))
    "kept ticks 3,6,9 with count 1 each"
    [ ([| 3 |], 1); ([| 6 |], 1); ([| 9 |], 1) ]
    (Vm.Stacksamp.folded s)

let test_stacksamp_interning () =
  (* interval 1: every tick sampled; repeats intern to one slot *)
  let s = Vm.Stacksamp.create ~interval:1 () in
  for _ = 1 to 5 do
    ignore (Vm.Stacksamp.on_tick s ~stack:[| 0; 4 |])
  done;
  ignore (Vm.Stacksamp.on_tick s ~stack:[| 0; 8 |]);
  check_int "six samples" 6 (Vm.Stacksamp.n_samples s);
  check_int "two distinct stacks" 2 (Vm.Stacksamp.n_distinct s);
  Alcotest.(check (list (pair (array int) int)))
    "folded in canonical order with counts"
    [ ([| 0; 4 |], 5); ([| 0; 8 |], 1) ]
    (Vm.Stacksamp.folded s);
  check_int "max depth tracked" 2 (Vm.Stacksamp.max_depth s)

let test_stacksamp_empty_and_deep () =
  let s = Vm.Stacksamp.create ~interval:1 () in
  (* an empty stack at the tick (nothing live) still counts as a sample *)
  ignore (Vm.Stacksamp.on_tick s ~stack:[||]);
  check_int "empty stack sampled" 1 (Vm.Stacksamp.n_samples s);
  (* deep recursion: one very deep stack interns fine *)
  let deep = Array.init 10_000 (fun i -> i land 7) in
  let c = Vm.Stacksamp.on_tick s ~stack:deep in
  check_int "walk cost proportional to depth" (2 * 10_000) c;
  check_int "deep stack interned" 2 (Vm.Stacksamp.n_distinct s);
  check_int "max depth is the deep stack's" 10_000 (Vm.Stacksamp.max_depth s)

let test_stacksamp_capacity () =
  let s = Vm.Stacksamp.create ~capacity:2 ~interval:1 () in
  ignore (Vm.Stacksamp.on_tick s ~stack:[| 1 |]);
  ignore (Vm.Stacksamp.on_tick s ~stack:[| 2 |]);
  (* table full: a new stack is dropped and counted as skipped... *)
  let c = Vm.Stacksamp.on_tick s ~stack:[| 3 |] in
  check_bool "walk cost still charged when skipped" true (c > 0);
  (* ...but a known stack still counts *)
  ignore (Vm.Stacksamp.on_tick s ~stack:[| 1 |]);
  check_int "taken" 3 (Vm.Stacksamp.n_samples s);
  check_int "skipped" 1 (Vm.Stacksamp.n_skipped s);
  check_int "distinct capped" 2 (Vm.Stacksamp.n_distinct s);
  Alcotest.(check (list (pair (array int) int)))
    "known stacks keep counting at capacity"
    [ ([| 1 |], 2); ([| 2 |], 1) ]
    (Vm.Stacksamp.folded s)

let test_stacksamp_cost_and_reset () =
  let s = Vm.Stacksamp.create ~interval:1 () in
  let c = Vm.Stacksamp.on_tick s ~stack:[| 1; 2; 3 |] in
  check_bool "cost proportional to depth" true (c > 0);
  let c2 = Vm.Stacksamp.on_tick s ~stack:(Array.make 10 0) in
  check_bool "deeper costs more" true (c2 > c);
  Vm.Stacksamp.reset s;
  check_int "reset" 0 (Vm.Stacksamp.n_samples s);
  check_int "reset distinct" 0 (Vm.Stacksamp.n_distinct s);
  Alcotest.check_raises "bad interval"
    (Invalid_argument "Stacksamp.create: interval must be >= 1") (fun () ->
      ignore (Vm.Stacksamp.create ~interval:0 ()))

(* ------------------------------------------------------------------ *)
(* Machine: faults via handcrafted object code *)

let asm_fun name items = { Objcode.Asm.name; items; profiled = false }

let assemble ?(globals = []) ?(arrays = []) funs =
  match
    Objcode.Asm.assemble
      {
        Objcode.Asm.a_globals = globals;
        a_arrays = arrays;
        a_funs = funs;
        a_entry = "main";
        a_source = "test";
      }
  with
  | Ok o -> o
  | Error e -> Alcotest.failf "assemble: %s" e

let expect_fault o fragment =
  let m = Vm.Machine.create o in
  match Vm.Machine.run m with
  | Vm.Machine.Faulted f ->
    check_bool
      (Printf.sprintf "fault %S mentions %S" f.reason fragment)
      true
      (let n = String.length fragment and h = String.length f.reason in
       let rec go i =
         i + n <= h && (String.sub f.reason i n = fragment || go (i + 1))
       in
       go 0)
  | _ -> Alcotest.fail "expected a fault"

let test_fault_stack_underflow () =
  expect_fault
    (assemble [ asm_fun "main" [ Objcode.Asm.Ins Objcode.Asm.APop ] ])
    "underflow"

let test_fault_division_by_zero () =
  expect_fault
    (assemble
       [
         asm_fun "main"
           [ Objcode.Asm.Ins (Objcode.Asm.AConst 1);
             Objcode.Asm.Ins (Objcode.Asm.AConst 0);
             Objcode.Asm.Ins (Objcode.Asm.AAlu Objcode.Instr.Div);
             Objcode.Asm.Ins Objcode.Asm.ARet ] ])
    "division by zero"

let test_fault_array_bounds () =
  expect_fault
    (assemble ~arrays:[ ("t", 4) ]
       [
         asm_fun "main"
           [ Objcode.Asm.Ins (Objcode.Asm.AConst 9);
             Objcode.Asm.Ins (Objcode.Asm.AAload "t");
             Objcode.Asm.Ins Objcode.Asm.ARet ] ])
    "out of bounds"

let test_fault_bad_indirect_target () =
  expect_fault
    (assemble
       [
         asm_fun "main"
           [ Objcode.Asm.Ins (Objcode.Asm.AConst 1);
             (* address 1 is inside main, not a function entry *)
             Objcode.Asm.Ins (Objcode.Asm.ACalli 0);
             Objcode.Asm.Ins Objcode.Asm.ARet ] ])
    "not a function entry"

let test_fault_local_out_of_range () =
  expect_fault
    (assemble
       [ asm_fun "main"
           [ Objcode.Asm.Ins (Objcode.Asm.ALoad 3);
             Objcode.Asm.Ins Objcode.Asm.ARet ] ])
    "local slot"

let test_fault_depth_limit () =
  let o =
    assemble
      [ asm_fun "main"
          [ Objcode.Asm.Ins (Objcode.Asm.ACall ("main", 0));
            Objcode.Asm.Ins Objcode.Asm.ARet ] ]
  in
  let m =
    Vm.Machine.create ~config:{ Vm.Machine.default_config with max_depth = 100 } o
  in
  match Vm.Machine.run m with
  | Vm.Machine.Faulted f ->
    check_bool "depth fault" true
      (String.length f.reason >= 5 && String.sub f.reason 0 5 = "call ")
  | _ -> Alcotest.fail "expected depth fault"

let test_fault_cycle_limit () =
  let o =
    assemble
      [ asm_fun "main"
          [ Objcode.Asm.Label "l"; Objcode.Asm.Ins (Objcode.Asm.AJump "l") ] ]
  in
  let m =
    Vm.Machine.create
      ~config:{ Vm.Machine.default_config with max_cycles = Some 10_000 }
      o
  in
  (match Vm.Machine.run m with
  | Vm.Machine.Faulted f ->
    check_bool "cycle limit" true (f.reason = "cycle limit exceeded")
  | _ -> Alcotest.fail "expected cycle-limit fault");
  (* A fault is sticky. *)
  check_bool "still faulted" true
    (match Vm.Machine.step m with Vm.Machine.Faulted _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Machine: clock, control interface, profile extraction *)

let compile_src src =
  match
    Compile.Codegen.compile_source ~options:Compile.Codegen.profiling_options src
  with
  | Ok o -> o
  | Error e -> Alcotest.failf "compile: %s" e

let looping_src =
  {|
fun spin(n) {
  var i;
  var s = 0;
  for (i = 0; i < n; i = i + 1) { s = s + i; }
  return s;
}
fun main() {
  var r;
  var s = 0;
  for (r = 0; r < 3000; r = r + 1) { s = s + spin(200); }
  return s % 1000;
}
|}

let test_ticks_match_cycles () =
  let o = compile_src looping_src in
  let m = Vm.Machine.create o in
  ignore (Vm.Machine.run m);
  let expected = Vm.Machine.cycles m / Vm.Machine.default_config.cycles_per_tick in
  check_bool "tick count tracks cycles" true
    (abs (Vm.Machine.ticks m - expected) <= 1);
  let g = Vm.Machine.profile m in
  check_int "histogram holds every tick" (Vm.Machine.ticks m) (Gmon.total_ticks g)

let test_profile_extraction_valid () =
  let o = compile_src looping_src in
  let m = Vm.Machine.create o in
  ignore (Vm.Machine.run m);
  let g = Vm.Machine.profile m in
  (match Gmon.validate g with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es));
  (* Arc counts: spin called 300 times from one site, main spontaneously. *)
  let spin = Option.get (Objcode.Objfile.symbol_by_name o "spin") in
  check_int "spin arc count" 3000 (Gmon.arc_count_into g spin.addr)

let test_control_interface () =
  let o = compile_src looping_src in
  let m = Vm.Machine.create o in
  Vm.Machine.profiling_off m;
  ignore (Vm.Machine.run_cycles m 500_000);
  check_int "nothing while off" 0 (Gmon.total_ticks (Vm.Machine.profile m));
  check_int "no arcs while off" 0 (List.length (Vm.Machine.profile m).Gmon.arcs);
  Vm.Machine.profiling_on m;
  ignore (Vm.Machine.run_cycles m 1_000_000);
  let mid = Vm.Machine.profile m in
  check_bool "ticks while on" true (Gmon.total_ticks mid > 0);
  check_bool "arcs while on" true (List.length mid.Gmon.arcs > 0);
  Vm.Machine.reset_profile m;
  check_int "reset clears" 0 (Gmon.total_ticks (Vm.Machine.profile m));
  let st = Vm.Machine.run m in
  check_bool "halts" true (st = Vm.Machine.Halted);
  check_bool "fresh window gathered" true
    (Gmon.total_ticks (Vm.Machine.profile m) > 0)

let test_run_cycles_budget () =
  let o = compile_src looping_src in
  let m = Vm.Machine.create o in
  let st = Vm.Machine.run_cycles m 50_000 in
  check_bool "still running" true (st = Vm.Machine.Running);
  check_bool "ran about the budget" true
    (Vm.Machine.cycles m >= 50_000 && Vm.Machine.cycles m < 80_000)

let test_pcounts () =
  let options =
    { Compile.Codegen.default_options with count = true; profile = false }
  in
  let o =
    match Compile.Codegen.compile_source ~options looping_src with
    | Ok o -> o
    | Error e -> Alcotest.failf "compile: %s" e
  in
  let m = Vm.Machine.create o in
  ignore (Vm.Machine.run m);
  let counts = Vm.Machine.pcounts m in
  let id name =
    Option.get
      (Objcode.Objfile.func_id_of_addr o
         (Option.get (Objcode.Objfile.symbol_by_name o name)).addr)
  in
  check_int "spin counted" 3000 counts.(id "spin");
  check_int "main counted" 1 counts.(id "main");
  check_int "no mcount arcs in count mode" 0
    (List.length (Vm.Machine.profile m).Gmon.arcs)

let test_mcount_overhead_charged () =
  let o_plain =
    match Compile.Codegen.compile_source looping_src with
    | Ok o -> o
    | Error e -> Alcotest.failf "compile: %s" e
  in
  let o_prof = compile_src looping_src in
  let run o =
    let m = Vm.Machine.create o in
    ignore (Vm.Machine.run m);
    m
  in
  let plain = run o_plain and prof = run o_prof in
  check_bool "profiled run is slower" true
    (Vm.Machine.cycles prof > Vm.Machine.cycles plain);
  check_int "difference equals monitor charges + mcount decodes"
    (Vm.Machine.cycles prof - Vm.Machine.cycles plain)
    (Vm.Machine.mcount_cycles prof + (3001 * Objcode.Instr.cost Objcode.Instr.Mcount))

let test_stack_samples_from_machine () =
  let o = compile_src looping_src in
  let m =
    Vm.Machine.create
      ~config:{ Vm.Machine.default_config with stack_interval = Some 1 }
      o
  in
  ignore (Vm.Machine.run m);
  let folded = Vm.Machine.stack_folded m in
  check_bool "collected" true (folded <> []);
  let main = (Option.get (Objcode.Objfile.symbol_by_name o "main")).addr in
  check_bool "every stack is rooted at main" true
    (List.for_all
       (fun (s, n) -> Array.length s > 0 && s.(0) = main && n > 0)
       folded);
  let sp = Option.get (Vm.Machine.sprof m) in
  check_int "sprof carries every sample"
    (Vm.Stacksamp.n_samples (Option.get (Vm.Machine.sampler m)))
    (Gmon.Sprof.n_samples sp);
  Alcotest.(check (result unit (list string))) "sprof validates" (Ok ())
    (Gmon.Sprof.validate sp)

let test_jitter_determinism_and_effect () =
  let o = compile_src looping_src in
  let run seed jitter =
    let m =
      Vm.Machine.create
        ~config:{ Vm.Machine.default_config with seed; tick_jitter = jitter }
        o
    in
    ignore (Vm.Machine.run m);
    Vm.Machine.profile m
  in
  check_bool "jitter is deterministic per seed" true
    (Gmon.equal (run 5 0.4) (run 5 0.4));
  check_bool "different seeds differ" true
    (not (Gmon.equal (run 5 0.4) (run 6 0.4)))

let test_oracle_matches_machine_totals () =
  let o = compile_src looping_src in
  let m =
    Vm.Machine.create ~config:{ Vm.Machine.default_config with oracle = true } o
  in
  ignore (Vm.Machine.run m);
  let orc = Option.get (Vm.Machine.the_oracle m) in
  check_int "oracle grand total = machine cycles" (Vm.Machine.cycles m)
    (Vm.Oracle.grand_total orc);
  let main = (Option.get (Objcode.Objfile.symbol_by_name o "main")).addr in
  check_int "main inclusive = everything" (Vm.Machine.cycles m)
    (Vm.Oracle.total_cycles orc main)

(* ------------------------------------------------------------------ *)
(* Kscript: the kgmon control language *)

let test_kscript_parse () =
  (match Vm.Kscript.parse "off; run 500000 ;on;dump w1 ; reset; run-to-end; dump w2" with
  | Ok cmds ->
    Alcotest.(check (list string)) "parsed"
      [ "off"; "run 500000"; "on"; "dump w1"; "reset"; "run-to-end"; "dump w2" ]
      (List.map Vm.Kscript.command_to_string cmds)
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Vm.Kscript.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" bad)
    [ ""; ";"; "frobnicate"; "run"; "run x"; "run -5"; "dump"; "on off" ]

let test_kscript_execute () =
  let o = compile_src looping_src in
  let m = Vm.Machine.create o in
  let script = "off; run 500000; on; run 1000000; dump mid; reset; run-to-end; dump end" in
  let cmds = Result.get_ok (Vm.Kscript.parse script) in
  let outcome = Vm.Kscript.execute m cmds in
  check_bool "halted" true (outcome.status = Vm.Machine.Halted);
  (match outcome.dumps with
  | [ ("mid", mid); ("end", fin) ] ->
    check_bool "mid window has ticks" true (Gmon.total_ticks mid > 0);
    check_bool "end window has ticks" true (Gmon.total_ticks fin > 0);
    (* the reset means the windows are disjoint: together they cover
       roughly the profiled-on portion, not double it *)
    check_bool "windows disjoint" true
      (Gmon.total_ticks mid + Gmon.total_ticks fin
      <= (Vm.Machine.cycles m / Vm.Machine.default_config.cycles_per_tick) + 2)
  | dumps -> Alcotest.failf "expected 2 dumps, got %d" (List.length dumps))

let test_kscript_on_stopped_machine () =
  let o = compile_src looping_src in
  let m = Vm.Machine.create o in
  ignore (Vm.Machine.run m);
  let cmds = Result.get_ok (Vm.Kscript.parse "dump post; reset; run 1000; dump empty") in
  let outcome = Vm.Kscript.execute m cmds in
  (match outcome.dumps with
  | [ ("post", post); ("empty", empty) ] ->
    check_bool "post-mortem dump has data" true (Gmon.total_ticks post > 0);
    check_int "dump after reset is empty" 0 (Gmon.total_ticks empty)
  | _ -> Alcotest.fail "dumps");
  check_bool "still halted" true (outcome.status = Vm.Machine.Halted)

let () =
  Alcotest.run "vm"
    [
      ( "monitor",
        [
          Alcotest.test_case "basic arcs" `Quick test_monitor_basic;
          Alcotest.test_case "multi-callee site" `Quick test_monitor_multi_callee_site;
          Alcotest.test_case "spontaneous" `Quick test_monitor_spontaneous;
          Alcotest.test_case "keying equivalence" `Quick test_monitor_keying_equivalence;
          Alcotest.test_case "keying probe costs" `Quick test_monitor_keying_probes;
          Alcotest.test_case "reset" `Quick test_monitor_reset;
          Alcotest.test_case "probe depth accounting" `Quick
            test_monitor_probe_depth;
          Alcotest.test_case "spontaneous under callee keying" `Quick
            test_monitor_spontaneous_callee_primary;
          Alcotest.test_case "chain cost" `Quick test_monitor_cost_grows_with_chain;
        ] );
      ( "profil",
        [
          Alcotest.test_case "sampling" `Quick test_profil_sampling;
          Alcotest.test_case "granularity" `Quick test_profil_granularity;
          Alcotest.test_case "enable/disable/reset" `Quick
            test_profil_enable_disable_reset;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "simple" `Quick test_oracle_simple;
          Alcotest.test_case "recursion" `Quick test_oracle_recursion;
          Alcotest.test_case "arcs" `Quick test_oracle_arcs;
          Alcotest.test_case "finish" `Quick test_oracle_finish_unwinds;
        ] );
      ( "stacksamp",
        [
          Alcotest.test_case "interval" `Quick test_stacksamp_interval;
          Alcotest.test_case "interning" `Quick test_stacksamp_interning;
          Alcotest.test_case "empty/deep stacks" `Quick
            test_stacksamp_empty_and_deep;
          Alcotest.test_case "capacity" `Quick test_stacksamp_capacity;
          Alcotest.test_case "cost and reset" `Quick test_stacksamp_cost_and_reset;
        ] );
      ( "faults",
        [
          Alcotest.test_case "stack underflow" `Quick test_fault_stack_underflow;
          Alcotest.test_case "division by zero" `Quick test_fault_division_by_zero;
          Alcotest.test_case "array bounds" `Quick test_fault_array_bounds;
          Alcotest.test_case "bad indirect target" `Quick test_fault_bad_indirect_target;
          Alcotest.test_case "local out of range" `Quick test_fault_local_out_of_range;
          Alcotest.test_case "depth limit" `Quick test_fault_depth_limit;
          Alcotest.test_case "cycle limit" `Quick test_fault_cycle_limit;
        ] );
      ( "machine",
        [
          Alcotest.test_case "ticks track cycles" `Quick test_ticks_match_cycles;
          Alcotest.test_case "profile extraction" `Quick test_profile_extraction_valid;
          Alcotest.test_case "control interface" `Quick test_control_interface;
          Alcotest.test_case "run_cycles budget" `Quick test_run_cycles_budget;
          Alcotest.test_case "pcounts" `Quick test_pcounts;
          Alcotest.test_case "mcount overhead charged" `Quick
            test_mcount_overhead_charged;
          Alcotest.test_case "stack samples" `Quick test_stack_samples_from_machine;
          Alcotest.test_case "jitter" `Quick test_jitter_determinism_and_effect;
          Alcotest.test_case "oracle totals" `Quick test_oracle_matches_machine_totals;
        ] );
      ( "kscript",
        [
          Alcotest.test_case "parse" `Quick test_kscript_parse;
          Alcotest.test_case "execute" `Quick test_kscript_execute;
          Alcotest.test_case "stopped machine" `Quick test_kscript_on_stopped_machine;
        ] );
    ]
