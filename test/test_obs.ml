(* Tests for the self-observability layer: the metrics registry
   (bucket geometry, instrument semantics, export formats), the span
   tracer (nesting, clocks, Chrome export), and the hooks the VM and
   the analysis pipeline publish through. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* A minimal JSON syntax checker — enough to reject the classic
   emission bugs (trailing commas, unescaped quotes, bare NaN) without
   needing a JSON library in the test image. *)
let json_ok (s : string) : bool =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail = ref false in
  let error () = fail := true in
  let skip_ws () =
    while (not !fail) && !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c = if peek () = Some c then advance () else error () in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some ('-' | '0' .. '9') -> number ()
    | Some 't' -> keyword "true"
    | Some 'f' -> keyword "false"
    | Some 'n' -> keyword "null"
    | _ -> error ()
  and keyword k =
    if !pos + String.length k <= n && String.sub s !pos (String.length k) = k
    then pos := !pos + String.length k
    else error ()
  and string_lit () =
    expect '"';
    let closed = ref false in
    while (not !fail) && not !closed do
      match peek () with
      | None -> error ()
      | Some '"' -> advance (); closed := true
      | Some '\\' -> advance (); (match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            (match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> error ())
          done
        | _ -> error ())
      | Some c when Char.code c < 0x20 -> error ()
      | Some _ -> advance ()
    done
  and number () =
    if peek () = Some '-' then advance ();
    let digits () =
      let seen = ref false in
      while (match peek () with Some '0' .. '9' -> true | _ -> false) do
        seen := true; advance ()
      done;
      if not !seen then error ()
    in
    digits ();
    if peek () = Some '.' then (advance (); digits ());
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ())
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else begin
      let more = ref true in
      while (not !fail) && !more do
        skip_ws (); string_lit (); skip_ws (); expect ':'; value (); skip_ws ();
        match peek () with
        | Some ',' -> advance ()
        | Some '}' -> advance (); more := false
        | _ -> error ()
      done
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else begin
      let more = ref true in
      while (not !fail) && !more do
        value (); skip_ws ();
        match peek () with
        | Some ',' -> advance ()
        | Some ']' -> advance (); more := false
        | _ -> error ()
      done
    end
  in
  value ();
  skip_ws ();
  (not !fail) && !pos = n

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Metrics: bucket geometry *)

let test_bucket_geometry () =
  let b = Obs.Metrics.hist_bucket_of in
  check_int "negative" 0 (b (-3));
  check_int "zero" 0 (b 0);
  check_int "one" 1 (b 1);
  check_int "two" 2 (b 2);
  check_int "three" 2 (b 3);
  check_int "four" 3 (b 4);
  check_int "1024" 11 (b 1024);
  check_int "max_int lands in the top bucket"
    (Obs.Metrics.n_hist_buckets - 1) (b max_int);
  (* Bounds and bucket_of must agree: every bucket's own bounds map
     back to it, and adjacent buckets tile the integers. *)
  for i = 0 to Obs.Metrics.n_hist_buckets - 1 do
    let lo, hi = Obs.Metrics.hist_bucket_bounds i in
    check_int (Printf.sprintf "lo of bucket %d" i) i (b lo);
    check_int (Printf.sprintf "hi of bucket %d" i) i (b hi);
    if i > 0 then begin
      let _, prev_hi = Obs.Metrics.hist_bucket_bounds (i - 1) in
      check_int (Printf.sprintf "buckets %d/%d tile" (i - 1) i) lo (prev_hi + 1)
    end
  done

(* ------------------------------------------------------------------ *)
(* Metrics: instruments *)

let test_counter_gauge () =
  let r = Obs.Metrics.create () in
  let c = Obs.Metrics.counter r "requests" in
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:4 c;
  check_int "counter accumulates" 5 (Obs.Metrics.counter_value c);
  (* Get-or-create: the same name yields the same instrument. *)
  Obs.Metrics.incr (Obs.Metrics.counter r "requests");
  check_int "same instrument by name" 6 (Obs.Metrics.counter_value c);
  check_int "find_counter" 6 (Option.get (Obs.Metrics.find_counter r "requests"));
  let g = Obs.Metrics.gauge r "depth" in
  Obs.Metrics.set g 7;
  Obs.Metrics.set g 3;
  check_int "gauge is last-write-wins" 3 (Obs.Metrics.gauge_value g);
  check_bool "find misses are None" true
    (Obs.Metrics.find_gauge r "no-such" = None)

let test_kind_mismatch_raises () =
  let r = Obs.Metrics.create () in
  ignore (Obs.Metrics.counter r "x");
  check_bool "re-registering under another kind raises" true
    (try ignore (Obs.Metrics.gauge r "x"); false
     with Invalid_argument _ -> true)

let test_histogram () =
  let r = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram r "lat" in
  List.iter (Obs.Metrics.observe h) [ 0; 1; 1; 3; 900 ];
  check_int "count" 5 (Obs.Metrics.hist_count h);
  check_int "sum" 905 (Obs.Metrics.hist_sum h);
  check_int "max" 900 (Obs.Metrics.hist_max h);
  let bk = Obs.Metrics.hist_buckets h in
  check_int "bucket 0" 1 bk.(0);
  check_int "bucket 1" 2 bk.(1);
  check_int "bucket 2" 1 bk.(2);
  check_int "bucket of 900" 1 bk.(Obs.Metrics.hist_bucket_of 900);
  (* Snapshot publication, as the monitor's observe uses it. *)
  let snap = Array.make Obs.Metrics.n_hist_buckets 0 in
  snap.(4) <- 9;
  Obs.Metrics.set_snapshot h ~buckets:snap ~count:9 ~sum:90 ~max:15;
  check_int "snapshot count" 9 (Obs.Metrics.hist_count h);
  check_int "snapshot bucket" 9 (Obs.Metrics.hist_buckets h).(4);
  check_bool "wrong-length snapshot raises" true
    (try Obs.Metrics.set_snapshot h ~buckets:[| 1; 2 |] ~count:3 ~sum:3 ~max:2; false
     with Invalid_argument _ -> true)

let test_disabled_registry () =
  let r = Obs.Metrics.create () in
  let c = Obs.Metrics.counter r "c" and g = Obs.Metrics.gauge r "g" in
  let h = Obs.Metrics.histogram r "h" in
  Obs.Metrics.set_enabled r false;
  Obs.Metrics.incr c;
  Obs.Metrics.set g 5;
  Obs.Metrics.observe h 5;
  check_int "counter untouched" 0 (Obs.Metrics.counter_value c);
  check_int "gauge untouched" 0 (Obs.Metrics.gauge_value g);
  check_int "histogram untouched" 0 (Obs.Metrics.hist_count h);
  Obs.Metrics.set_enabled r true;
  Obs.Metrics.incr c;
  check_int "mutations resume" 1 (Obs.Metrics.counter_value c)

let test_reset_keeps_registrations () =
  let r = Obs.Metrics.create () in
  let c = Obs.Metrics.counter r "c" in
  let h = Obs.Metrics.histogram r "h" in
  Obs.Metrics.incr ~by:3 c;
  Obs.Metrics.observe h 12;
  Obs.Metrics.reset r;
  check_int "counter zeroed" 0 (Obs.Metrics.counter_value c);
  check_int "histogram zeroed" 0 (Obs.Metrics.hist_count h);
  check_int "max zeroed" 0 (Obs.Metrics.hist_max h);
  check_bool "registration survives" true
    (Obs.Metrics.find_counter r "c" = Some 0)

let test_metrics_export () =
  let r = Obs.Metrics.create () in
  Obs.Metrics.incr ~by:2 (Obs.Metrics.counter r ~help:"two" "a.count");
  Obs.Metrics.set (Obs.Metrics.gauge r "z.depth") 7;
  Obs.Metrics.observe (Obs.Metrics.histogram r "m.lat") 3;
  let d = Obs.Metrics.dump r in
  check_bool "dump lists the counter" true (contains ~needle:"a.count" d);
  check_bool "dump lists the help text" true (contains ~needle:"two" d);
  let index_of needle =
    let nl = String.length needle in
    let rec go i =
      if i + nl > String.length d then -1
      else if String.sub d i nl = needle then i
      else go (i + 1)
    in
    go 0
  in
  check_bool "dump sorts by name" true
    (index_of "a.count" >= 0 && index_of "a.count" < index_of "z.depth");
  let j = Obs.Metrics.to_json r in
  check_bool "json parses" true (json_ok j);
  check_bool "json has the counter" true (contains ~needle:"\"a.count\":2" j);
  check_bool "json has the gauge" true (contains ~needle:"\"z.depth\":7" j);
  check_bool "json has bucket bounds" true (contains ~needle:"\"lo\":" j);
  (* Names requiring escaping must not corrupt the document. *)
  Obs.Metrics.set (Obs.Metrics.gauge r "weird\"name\n") 1;
  check_bool "json stays valid under escaping" true
    (json_ok (Obs.Metrics.to_json r))

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_disabled_is_free () =
  let t = Obs.Trace.create () in
  check_bool "starts disabled" false (Obs.Trace.enabled t);
  let x = Obs.Trace.with_span ~t "work" (fun () -> 42) in
  check_int "thunk result passes through" 42 x;
  check_int "nothing recorded" 0 (Obs.Trace.span_count t)

let test_trace_nesting () =
  let t = Obs.Trace.create () in
  Obs.Trace.set_enabled t true;
  Obs.Trace.with_span ~t "outer" (fun () ->
      Obs.Trace.with_span ~t "inner" (fun () -> ());
      Obs.Trace.with_span ~t ~args:[ ("k", "v") ] "inner2" (fun () -> ()));
  Obs.Trace.instant ~t "mark";
  let spans = Obs.Trace.spans t in
  Alcotest.(check (list (pair string int)))
    "start order and depths"
    [ ("outer", 0); ("inner", 1); ("inner2", 1); ("mark", 0) ]
    (List.map (fun s -> (s.Obs.Trace.s_name, s.Obs.Trace.s_depth)) spans);
  List.iter
    (fun s -> check_bool "durations are non-negative" true (s.Obs.Trace.s_dur_us >= 0.0))
    spans;
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      a.Obs.Trace.s_start_us <= b.Obs.Trace.s_start_us && sorted rest
    | _ -> true
  in
  check_bool "start timestamps are non-decreasing" true (sorted spans);
  let inner2 = List.nth spans 2 in
  check_string "args survive" "v" (List.assoc "k" inner2.Obs.Trace.s_args);
  Obs.Trace.clear t;
  check_int "clear empties" 0 (Obs.Trace.span_count t)

let test_trace_records_on_exception () =
  let t = Obs.Trace.create () in
  Obs.Trace.set_enabled t true;
  (try Obs.Trace.with_span ~t "boom" (fun () -> failwith "no")
   with Failure _ -> ());
  check_int "span recorded despite the raise" 1 (Obs.Trace.span_count t);
  (* Depth must unwind, or every later span inherits a bogus depth. *)
  Obs.Trace.with_span ~t "after" (fun () -> ());
  match Obs.Trace.spans t with
  | [ _; after ] -> check_int "depth unwound" 0 after.Obs.Trace.s_depth
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)

let test_trace_chrome_json () =
  let t = Obs.Trace.create () in
  Obs.Trace.set_enabled t true;
  Obs.Trace.with_span ~t ~cat:"test" ~args:[ ("n", "5") ] "phase-a" (fun () -> ());
  let j = Obs.Trace.to_chrome_json t in
  check_bool "parses" true (json_ok j);
  check_bool "has traceEvents" true (contains ~needle:"\"traceEvents\":[" j);
  check_bool "complete events" true (contains ~needle:"\"ph\":\"X\"" j);
  check_bool "carries the name" true (contains ~needle:"\"name\":\"phase-a\"" j);
  check_bool "carries the category" true (contains ~needle:"\"cat\":\"test\"" j);
  check_bool "carries args" true (contains ~needle:"\"n\":\"5\"" j)

(* ------------------------------------------------------------------ *)
(* The hooks: what the VM and the pipeline actually publish *)

let test_machine_observe () =
  match Workloads.Driver.run Workloads.Programs.quick with
  | Error e -> Alcotest.failf "workload failed: %s" e
  | Ok r ->
    let reg = Obs.Metrics.create () in
    Vm.Machine.observe r.Workloads.Driver.machine reg;
    let m = r.Workloads.Driver.machine in
    let gv n = Option.get (Obs.Metrics.find_gauge reg n) in
    check_int "vm.instructions mirrors the machine"
      (Vm.Machine.instructions_executed m) (gv "vm.instructions");
    check_int "dispatch groups sum to the instruction count"
      (Vm.Machine.instructions_executed m)
      (List.fold_left (fun a (_, n) -> a + n) 0 (Vm.Machine.dispatch_counts m));
    check_bool "call group is populated" true
      (List.assoc "call" (Vm.Machine.dispatch_counts m) > 0);
    check_int "monitor records mirror the machine"
      (Vm.Monitor.total_records (Vm.Machine.monitor m)) (gv "monitor.records");
    let h = Option.get (Obs.Metrics.find_histogram reg "monitor.probe_depth") in
    check_int "published histogram covers every record"
      (Vm.Monitor.total_records (Vm.Machine.monitor m))
      (Obs.Metrics.hist_count h)

let test_pipeline_spans () =
  let t = Obs.Trace.default in
  let was = Obs.Trace.enabled t in
  Obs.Trace.set_enabled t true;
  Obs.Trace.clear t;
  (match Gprof_core.Report.analyze Workloads.Figure4.objfile Workloads.Figure4.gmon with
  | Ok rep -> ignore (Gprof_core.Report.full_listing rep)
  | Error e -> Alcotest.failf "figure4 analyze failed: %s" e);
  let names = List.map (fun s -> s.Obs.Trace.s_name) (Obs.Trace.spans t) in
  Obs.Trace.set_enabled t was;
  Obs.Trace.clear t;
  List.iter
    (fun n -> check_bool (Printf.sprintf "span %s present" n) true (List.mem n names))
    [ "analyze"; "symtab"; "assign"; "static-scan"; "arcgraph"; "cyclefind";
      "propagate"; "report"; "flat"; "graph"; "index" ]

(* ------------------------------------------------------------------ *)
(* Jsonbuf/Jsonin: the emission/parse pair *)

let escape_str s =
  let buf = Buffer.create 32 in
  Obs.Jsonbuf.escape buf s;
  Buffer.contents buf

let test_jsonbuf_escaping () =
  (* every control byte must come out as a valid JSON literal that
     parses back to the original — the classic eprintf-style emitter
     bugs all live here *)
  for c = 0x00 to 0x1f do
    let s = Printf.sprintf "a%cb" (Char.chr c) in
    let lit = escape_str s in
    check_bool (Printf.sprintf "control 0x%02x emits valid JSON" c) true
      (json_ok lit);
    match Obs.Jsonin.parse lit with
    | Ok (Obs.Jsonin.Str got) ->
      check_string (Printf.sprintf "control 0x%02x round-trips" c) s got
    | _ -> Alcotest.failf "control 0x%02x did not parse back" c
  done;
  (* quotes, backslashes, and pathological mixes *)
  List.iter
    (fun s ->
      let lit = escape_str s in
      check_bool (Printf.sprintf "%S emits valid JSON" s) true (json_ok lit);
      match Obs.Jsonin.parse lit with
      | Ok (Obs.Jsonin.Str got) -> check_string (Printf.sprintf "%S" s) s got
      | _ -> Alcotest.failf "%S did not parse back" s)
    [
      "";
      "\"";
      "\\";
      "\\\"";
      "a\"b\\c";
      "\\u0041";
      "tab\there\nand newline";
      "trailing backslash \\";
      String.make 3 '"';
    ];
  (* non-ASCII passes through byte-for-byte (the emitter assumes UTF-8
     and never mangles it) *)
  let utf8 = "héllo — κόσμε — 世界" in
  let lit = escape_str utf8 in
  check_bool "utf8 emits valid JSON" true (json_ok lit);
  (match Obs.Jsonin.parse lit with
  | Ok (Obs.Jsonin.Str got) -> check_string "utf8 round-trips" utf8 got
  | _ -> Alcotest.fail "utf8 did not parse back")

let test_jsonin_parser () =
  let p = Obs.Jsonin.parse_exn in
  check_bool "null" true (p "null" = Obs.Jsonin.Null);
  check_bool "bools" true
    (p "true" = Obs.Jsonin.Bool true && p "false" = Obs.Jsonin.Bool false);
  check_bool "negative int" true (p "-42" = Obs.Jsonin.Int (-42));
  check_bool "float" true
    (match p "1.5e2" with Obs.Jsonin.Float f -> f = 150.0 | _ -> false);
  check_bool "unicode escape re-encodes as UTF-8" true
    (p {|"é"|} = Obs.Jsonin.Str "é");
  check_bool "surrogate-free BMP escape" true
    (p {|"世"|} = Obs.Jsonin.Str "世");
  (match p {|{"a":[1,2],"b":{"c":null}}|} with
  | Obs.Jsonin.Obj [ ("a", Obs.Jsonin.List [ Obs.Jsonin.Int 1; Obs.Jsonin.Int 2 ]);
                     ("b", Obs.Jsonin.Obj [ ("c", Obs.Jsonin.Null) ]) ] -> ()
  | _ -> Alcotest.fail "nested structure mis-parsed");
  (* malformed inputs are rejected, not mangled *)
  List.iter
    (fun bad ->
      check_bool (Printf.sprintf "%S rejected" bad) true
        (Result.is_error (Obs.Jsonin.parse bad)))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "\"unterminated"; "1 2"; "nul";
      "\"bad \\x escape\""; "{\"a\" 1}" ]

(* ------------------------------------------------------------------ *)
(* Snapshot: capture, serialize, parse back, subtract *)

(* a registry with a bit of everything, for round-trip tests *)
let build_registry mutations =
  let r = Obs.Metrics.create () in
  let c1 = Obs.Metrics.counter r "reqs" and c2 = Obs.Metrics.counter r "errs" in
  let g = Obs.Metrics.gauge r "queue.depth" in
  let h = Obs.Metrics.histogram r "latency" in
  List.iter
    (fun (dc1, dc2, gv, obs) ->
      Obs.Metrics.incr ~by:dc1 c1;
      Obs.Metrics.incr ~by:dc2 c2;
      Obs.Metrics.set g gv;
      List.iter (Obs.Metrics.observe h) obs)
    mutations;
  r

let test_snapshot_roundtrip () =
  let r = build_registry [ (5, 1, 17, [ 0; 1; 3; 900; 7_000_000 ]) ] in
  let json = Obs.Metrics.to_json r in
  (* of_registry serializes byte-identically to the live exporter *)
  check_string "of_registry emits Metrics.to_json" json
    (Obs.Snapshot.to_json (Obs.Snapshot.of_registry r));
  (* and the parse-back is exact *)
  match Obs.Snapshot.of_json json with
  | Error e -> Alcotest.failf "of_json: %s" e
  | Ok snap ->
    check_string "parse-back reserializes identically" json
      (Obs.Snapshot.to_json snap);
    check_bool "counter recovered" true
      (Obs.Snapshot.find_counter snap "reqs" = Some 5);
    check_bool "gauge recovered" true
      (Obs.Snapshot.find_gauge snap "queue.depth" = Some 17);
    (match Obs.Snapshot.find_hist snap "latency" with
    | None -> Alcotest.fail "histogram lost"
    | Some h ->
      check_int "hist count" 5 h.Obs.Snapshot.h_count;
      check_int "hist max" 7_000_000 h.h_max;
      check_bool "bucket indices recovered from lo bounds" true
        (List.mem_assoc (Obs.Metrics.hist_bucket_of 900) h.h_buckets))

let qcheck_snapshot_roundtrip =
  QCheck.Test.make ~name:"Metrics.to_json → Snapshot.of_json is exact"
    ~count:100
    QCheck.(
      list_of_size (Gen.int_range 1 6)
        (quad (int_range 0 1_000_000) (int_range 0 1000)
           (int_range (-100) 100_000)
           (list_of_size (Gen.int_range 0 12) (int_range (-5) 1_000_000_000))))
    (fun mutations ->
      let r = build_registry mutations in
      let json = Obs.Metrics.to_json r in
      match Obs.Snapshot.of_json json with
      | Error e -> QCheck.Test.fail_report e
      | Ok snap ->
        Obs.Snapshot.to_json snap = json
        && Obs.Snapshot.to_json (Obs.Snapshot.of_registry r) = json)

let test_snapshot_diff_and_rates () =
  let r = build_registry [ (10, 2, 5, [ 100; 200 ]) ] in
  let before = Obs.Snapshot.of_registry r in
  (* two seconds of activity *)
  let c = Obs.Metrics.counter r "reqs" and g = Obs.Metrics.gauge r "queue.depth" in
  let h = Obs.Metrics.histogram r "latency" in
  Obs.Metrics.incr ~by:6 c;
  Obs.Metrics.set g 9;
  Obs.Metrics.observe h 150;
  Obs.Metrics.observe h 1_000_000;
  let after = Obs.Snapshot.of_registry r in
  let d = Obs.Snapshot.diff ~before ~after in
  check_bool "counter delta" true (Obs.Snapshot.find_counter d "reqs" = Some 6);
  check_bool "untouched counter delta is zero" true
    (Obs.Snapshot.find_counter d "errs" = Some 0);
  check_bool "gauge is last-write" true
    (Obs.Snapshot.find_gauge d "queue.depth" = Some 9);
  (match Obs.Snapshot.find_hist d "latency" with
  | None -> Alcotest.fail "hist delta lost"
  | Some hd ->
    check_int "hist delta count" 2 hd.Obs.Snapshot.h_count;
    check_int "hist delta sum" 1_000_150 hd.h_sum;
    check_int "window bucket count" 1
      (List.assoc (Obs.Metrics.hist_bucket_of 150) hd.h_buckets));
  let rates = Obs.Snapshot.rates ~elapsed:2.0 d in
  check_bool "rate of reqs" true (List.assoc "reqs" rates = 3.0);
  check_bool "no rates for elapsed <= 0" true
    (Obs.Snapshot.rates ~elapsed:0.0 d = []);
  (* a fresh process (counters reset) is a monotonicity violation *)
  let fresh = Obs.Snapshot.of_registry (build_registry [ (1, 0, 0, []) ]) in
  check_bool "reset counters detected" true
    (Obs.Snapshot.monotonic_violations ~before:after ~after:fresh <> []);
  check_bool "same-process pair is clean" true
    (Obs.Snapshot.monotonic_violations ~before ~after = [])

let test_hist_quantile () =
  let r = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram r "q" in
  (* all mass in one bucket: quantiles interpolate inside [64,128) *)
  for _ = 1 to 100 do Obs.Metrics.observe h 100 done;
  let snap = Obs.Metrics.to_json r in
  (match Obs.Snapshot.of_json snap with
  | Error e -> Alcotest.failf "of_json: %s" e
  | Ok s -> (
    match Obs.Snapshot.find_hist s "q" with
    | None -> Alcotest.fail "hist lost"
    | Some hist ->
      let p50 = Obs.Snapshot.hist_quantile hist 0.5 in
      check_bool "p50 inside the bucket" true (p50 >= 64.0 && p50 <= 128.0);
      check_bool "p0 at bucket lo" true
        (Obs.Snapshot.hist_quantile hist 0.0 >= 64.0);
      (* the top bucket clamps to the observed max, not max_int *)
      Obs.Metrics.observe h max_int;
      let s2 =
        Result.get_ok (Obs.Snapshot.of_json (Obs.Metrics.to_json r))
      in
      let hist2 = Option.get (Obs.Snapshot.find_hist s2 "q") in
      check_bool "p100 clamped to max" true
        (Obs.Snapshot.hist_quantile hist2 1.0 <= float_of_int max_int)));
  check_bool "empty histogram quantile is 0" true
    (Obs.Snapshot.hist_quantile
       { Obs.Snapshot.h_count = 0; h_sum = 0; h_max = 0; h_buckets = [] }
       0.9
    = 0.0)

(* ------------------------------------------------------------------ *)
(* Eventlog: structured JSONL with levels and sequence numbers *)

let tmp_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "obs_test_%d_%s" (Unix.getpid ()) name)

let test_eventlog () =
  let path = tmp_path "events.jsonl" in
  if Sys.file_exists path then Sys.remove path;
  (match Obs.Eventlog.open_file ~level:Obs.Eventlog.Info path with
  | Error e -> Alcotest.failf "open_file: %s" e
  | Ok log ->
    check_bool "info allowed" true (Obs.Eventlog.would_log log Obs.Eventlog.Info);
    check_bool "debug filtered" false
      (Obs.Eventlog.would_log log Obs.Eventlog.Debug);
    Obs.Eventlog.info log "serve.start" [ ("socket", S "/tmp/d.sock"); ("pid", I 42) ];
    Obs.Eventlog.debug log "noise" [];
    (* dropped: below the level, and must not consume a seq *)
    Obs.Eventlog.warn log "shed" [ ("pending", I 256); ("frac", F 1.0) ];
    Obs.Eventlog.error log "quote\"field" [ ("b", B true) ];
    check_int "two dropped-free seqs consumed" 3 (Obs.Eventlog.seq log);
    Obs.Eventlog.close log);
  let lines =
    In_channel.with_open_text path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  check_int "three records written" 3 (List.length lines);
  List.iteri
    (fun i line ->
      match Obs.Jsonin.parse line with
      | Error e -> Alcotest.failf "line %d is not JSON: %s" i e
      | Ok v ->
        check_bool "seq matches position" true
          (Obs.Jsonin.(member "seq" v |> Option.get |> to_int) = Some i);
        check_bool "has ts" true (Obs.Jsonin.member "ts" v <> None);
        check_bool "has level" true (Obs.Jsonin.member "level" v <> None))
    lines;
  (* the quoted event kind survived escaping *)
  check_bool "escaped kind round-trips" true
    (match Obs.Jsonin.parse (List.nth lines 2) with
    | Ok v -> Obs.Jsonin.(member "event" v |> Option.get |> to_string) = Some "quote\"field"
    | Error _ -> false);
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Timeseries: checksummed JSONL, corruption detection, seq resume *)

let test_timeseries_roundtrip_and_corruption () =
  let path = tmp_path "tele.jsonl" in
  if Sys.file_exists path then Sys.remove path;
  let r = build_registry [ (3, 1, 2, [ 10; 20 ]) ] in
  (match Obs.Timeseries.open_writer path with
  | Error e -> Alcotest.failf "open_writer: %s" e
  | Ok w ->
    for i = 0 to 2 do
      Obs.Metrics.incr ~by:1 (Obs.Metrics.counter r "reqs");
      match Obs.Timeseries.append w ~ts:(float_of_int i) (Obs.Snapshot.of_registry r) with
      | Ok seq -> check_int "seq assigned in order" i seq
      | Error e -> Alcotest.failf "append: %s" e
    done;
    Obs.Timeseries.close_writer w);
  (match Obs.Timeseries.read path with
  | Error e -> Alcotest.failf "read: %s" e
  | Ok (records, complaints) ->
    check_int "three records back" 3 (List.length records);
    check_int "no complaints" 0 (List.length complaints);
    check_bool "metrics payload intact" true
      (Obs.Snapshot.find_counter (List.nth records 2).Obs.Timeseries.r_metrics "reqs"
      = Some 6));
  (* flip one byte inside the middle line: exactly that record dies *)
  let lines =
    In_channel.with_open_text path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  let corrupt = Bytes.of_string (List.nth lines 1) in
  let mid = Bytes.length corrupt - 5 in
  Bytes.set corrupt mid
    (if Bytes.get corrupt mid = '0' then '1' else '0');
  Out_channel.with_open_text path (fun oc ->
      List.iteri
        (fun i l ->
          Out_channel.output_string oc
            (if i = 1 then Bytes.to_string corrupt else l);
          Out_channel.output_char oc '\n')
        lines);
  (match Obs.Timeseries.read path with
  | Error e -> Alcotest.failf "read after corruption: %s" e
  | Ok (records, complaints) ->
    check_int "two records survive" 2 (List.length records);
    check_int "one complaint" 1 (List.length complaints);
    check_bool "survivors keep their seqs" true
      (List.map (fun rec_ -> rec_.Obs.Timeseries.r_seq) records = [ 0; 2 ]));
  (* a writer reopening the damaged file resumes after the highest
     intact record — seq never goes backwards *)
  (match Obs.Timeseries.open_writer path with
  | Error e -> Alcotest.failf "reopen: %s" e
  | Ok w ->
    (match Obs.Timeseries.append w ~ts:9.0 (Obs.Snapshot.of_registry r) with
    | Ok seq -> check_int "seq resumes past the survivors" 3 seq
    | Error e -> Alcotest.failf "append after reopen: %s" e);
    Obs.Timeseries.close_writer w);
  (* decode_line rejects structural damage loudly *)
  check_bool "garbage line rejected" true
    (Result.is_error (Obs.Timeseries.decode_line "not a record"));
  check_bool "valid line accepted" true
    (Result.is_ok
       (Obs.Timeseries.decode_line
          (Obs.Timeseries.encode_line ~seq:0 ~ts:1.0
             (Obs.Snapshot.of_registry r))));
  Sys.remove path

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "bucket geometry" `Quick test_bucket_geometry;
          Alcotest.test_case "counter and gauge" `Quick test_counter_gauge;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch_raises;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "disabled registry" `Quick test_disabled_registry;
          Alcotest.test_case "reset" `Quick test_reset_keeps_registrations;
          Alcotest.test_case "dump and json export" `Quick test_metrics_export;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled is free" `Quick test_trace_disabled_is_free;
          Alcotest.test_case "nesting and clocks" `Quick test_trace_nesting;
          Alcotest.test_case "records on exception" `Quick
            test_trace_records_on_exception;
          Alcotest.test_case "chrome export" `Quick test_trace_chrome_json;
        ] );
      ( "hooks",
        [
          Alcotest.test_case "machine observe" `Quick test_machine_observe;
          Alcotest.test_case "pipeline spans" `Quick test_pipeline_spans;
        ] );
      ( "jsonio",
        [
          Alcotest.test_case "escaping edge cases" `Quick test_jsonbuf_escaping;
          Alcotest.test_case "parser" `Quick test_jsonin_parser;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "round-trip" `Quick test_snapshot_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_snapshot_roundtrip;
          Alcotest.test_case "diff and rates" `Quick test_snapshot_diff_and_rates;
          Alcotest.test_case "quantiles" `Quick test_hist_quantile;
        ] );
      ( "eventlog",
        [ Alcotest.test_case "leveled JSONL" `Quick test_eventlog ] );
      ( "timeseries",
        [
          Alcotest.test_case "checksums, corruption, seq resume" `Quick
            test_timeseries_roundtrip_and_corruption;
        ] );
    ]
