(* Tests for the sampled-profile (sprof) container: codec robustness
   under truncation and corruption (mirroring test_robust's regime for
   gmon), the QCheck-pinned merge algebra — commutative, associative,
   and canonical, so equal merges serialize byte-identically — and the
   store's sampled track (daemon-equivalent to offline merging). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk ?(interval = 2) ?(runs = 1) stacks =
  {
    Gmon.Sprof.sp_sample_interval = interval;
    sp_ticks_per_second = 60;
    sp_cycles_per_tick = 16_666;
    sp_runs = runs;
    sp_stacks =
      List.stable_sort
        (fun (a, _) (b, _) -> Gmon.Sprof.compare_stack a b)
        stacks;
  }

let sample =
  mk [ ([| 0 |], 3); ([| 0; 4 |], 7); ([| 0; 4; 8 |], 2); ([| 0; 8 |], 1) ]

(* Magic (12 bytes) + five header fields: before this point nothing is
   recoverable, after it salvage always yields a container. *)
let header_end = 12 + (5 * 8)

let assert_valid what sp =
  match Gmon.Sprof.validate sp with
  | Ok () -> ()
  | Error es -> Alcotest.failf "%s: invalid: %s" what (String.concat "; " es)

(* Whole-record prefix recovery: every salvaged stack must appear in
   the original with the same count — salvage never invents samples. *)
let sub_sprof (s : Gmon.Sprof.t) (o : Gmon.Sprof.t) =
  s.sp_sample_interval = o.sp_sample_interval
  && s.sp_ticks_per_second = o.sp_ticks_per_second
  && s.sp_cycles_per_tick = o.sp_cycles_per_tick
  && List.for_all
       (fun (stack, count) ->
         List.exists
           (fun (so, co) -> Gmon.Sprof.compare_stack stack so = 0 && count = co)
           o.sp_stacks)
       s.sp_stacks

(* ------------------------------------------------------------------ *)
(* Codec robustness *)

let test_truncate_everywhere () =
  let bytes = Gmon.Sprof.to_bytes sample in
  let len = String.length bytes in
  for cut = 0 to len - 1 do
    let s = String.sub bytes 0 cut in
    (match Gmon.Sprof.decode ~mode:`Strict s with
    | Error e ->
      check_bool
        (Printf.sprintf "cut %d: strict offset in range" cut)
        true
        (e.de_offset >= 0 && e.de_offset <= cut)
    | Ok _ -> Alcotest.failf "cut %d: strict accepted a truncated file" cut);
    match Gmon.Sprof.decode ~mode:`Salvage s with
    | Ok (sp, rep) ->
      check_bool
        (Printf.sprintf "cut %d: salvage past header" cut)
        true (cut >= header_end);
      assert_valid (Printf.sprintf "cut %d" cut) sp;
      check_bool
        (Printf.sprintf "cut %d: salvaged is a sub-container" cut)
        true (sub_sprof sp sample);
      check_bool
        (Printf.sprintf "cut %d: report degraded" cut)
        true (Gmon.report_degraded rep)
    | Error _ ->
      check_bool
        (Printf.sprintf "cut %d: only header damage is unrecoverable" cut)
        true (cut < header_end)
  done;
  match
    ( Gmon.Sprof.decode ~mode:`Strict bytes,
      Gmon.Sprof.decode ~mode:`Salvage bytes )
  with
  | Ok (s1, r1), Ok (s2, r2) ->
    check_bool "strict roundtrip" true (Gmon.Sprof.equal s1 sample);
    check_bool "salvage roundtrip" true (Gmon.Sprof.equal s2 sample);
    check_bool "no strict losses" false (Gmon.report_degraded r1);
    check_bool "no salvage losses" false (Gmon.report_degraded r2)
  | _ -> Alcotest.fail "intact file rejected"

let test_flip_everywhere () =
  let bytes = Gmon.Sprof.to_bytes sample in
  for i = 0 to String.length bytes - 1 do
    let b = Bytes.of_string bytes in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
    let s = Bytes.to_string b in
    (* the checksum footer catches every single-byte corruption *)
    (match Gmon.Sprof.decode ~mode:`Strict s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "flip %d: strict accepted corrupt bytes" i);
    match Gmon.Sprof.decode ~mode:`Salvage s with
    | Ok (sp, rep) ->
      assert_valid (Printf.sprintf "flip %d" i) sp;
      check_bool
        (Printf.sprintf "flip %d: degradation reported" i)
        true (Gmon.report_degraded rep)
    | Error _ -> ()
  done

let test_salvage_recovers_prefix () =
  let bytes = Gmon.Sprof.to_bytes sample in
  (* cut inside the third stack record: the first two survive whole *)
  let rec_len n_frames = 8 + 8 + (8 * n_frames) in
  let cut = header_end + rec_len 1 + rec_len 2 + 5 in
  match Gmon.Sprof.decode ~mode:`Salvage (String.sub bytes 0 cut) with
  | Error e -> Alcotest.fail (Gmon.decode_error_to_string e)
  | Ok (sp, rep) ->
    check_int "two whole records recovered" 2 (Gmon.Sprof.n_stacks sp);
    check_bool "prefix of the canonical table" true (sub_sprof sp sample);
    check_int "dropped records counted" 2 rep.Gmon.r_dropped_arcs;
    check_bool "bytes lost counted" true (rep.Gmon.r_dropped_bytes > 0);
    (* salvaged data keeps merging downstream *)
    (match Gmon.Sprof.merge sp (mk [ ([| 5 |], 4) ]) with
    | Error e -> Alcotest.failf "salvaged sprof refused to merge: %s" e
    | Ok m ->
      assert_valid "salvaged+clean" m;
      check_int "samples add"
        (Gmon.Sprof.n_samples sp + 4)
        (Gmon.Sprof.n_samples m))

let test_strict_errors_carry_offsets () =
  (match Gmon.Sprof.decode ~mode:`Strict "garbage" with
  | Error e ->
    check_int "magic offset" 0 e.Gmon.de_offset;
    Alcotest.(check string) "magic context" "magic" e.Gmon.de_context
  | Ok _ -> Alcotest.fail "garbage accepted");
  let bytes = Gmon.Sprof.to_bytes sample in
  let cut = String.length bytes - 5 in
  match
    Gmon.Sprof.decode ~path:"some.sprof" ~mode:`Strict (String.sub bytes 0 cut)
  with
  | Error e ->
    Alcotest.(check (option string)) "path carried" (Some "some.sprof") e.de_path
  | Ok _ -> Alcotest.fail "torn file accepted"

let test_sniff_and_family () =
  let bytes = Gmon.Sprof.to_bytes sample in
  check_bool "sniffs its own magic" true (Gmon.Sprof.sniff_bytes bytes);
  check_bool "gmon decoder rejects sprof bytes" true
    (Result.is_error (Gmon.decode ~mode:`Strict bytes));
  let g = Gmon.make_hist ~lowpc:0 ~highpc:4 ~bucket_size:1 in
  let gmon_bytes =
    Gmon.to_bytes
      { Gmon.hist = g; arcs = []; ticks_per_second = 60;
        cycles_per_tick = 16_666; runs = 1 }
  in
  check_bool "sprof decoder rejects gmon bytes" true
    (Result.is_error (Gmon.Sprof.decode ~mode:`Strict gmon_bytes));
  check_bool "sprof sniff rejects gmon bytes" false
    (Gmon.Sprof.sniff_bytes gmon_bytes)

let test_merge_rejects_mismatched_rates () =
  let a = mk ~interval:1 [ ([| 0 |], 1) ] in
  let b = mk ~interval:4 [ ([| 0 |], 1) ] in
  (match Gmon.Sprof.merge a b with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "merged across sample intervals");
  match Gmon.Sprof.merge_all [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty merge produced a container"

(* ------------------------------------------------------------------ *)
(* QCheck: codec round-trip and the merge algebra *)

let random_sprof_gen =
  QCheck.Gen.(
    let stack_gen =
      let* depth = int_range 0 5 in
      let* frames = list_repeat depth (int_range 0 40) in
      return (Array.of_list frames)
    in
    let* stacks =
      list_size (int_range 0 10) (pair stack_gen (int_range 1 50))
    in
    let* runs = int_range 1 3 in
    return
      {
        (mk ~runs []) with
        Gmon.Sprof.sp_stacks =
          Gmon.Sprof.(
            (of_folded ~sample_interval:2 ~ticks_per_second:60
               ~cycles_per_tick:16_666 stacks)
              .sp_stacks);
      })

let arb_sprof =
  QCheck.make
    ~print:(fun sp -> Format.asprintf "%a" Gmon.Sprof.pp sp)
    random_sprof_gen

let codec_roundtrip =
  QCheck.Test.make ~name:"sprof codec: to_bytes/decode round-trips" ~count:200
    arb_sprof (fun sp ->
      match Gmon.Sprof.decode ~mode:`Strict (Gmon.Sprof.to_bytes sp) with
      | Ok (sp', rep) ->
        Gmon.Sprof.equal sp sp' && not (Gmon.report_degraded rep)
      | Error _ -> false)

let reader_total =
  QCheck.Test.make ~name:"sprof reader: random bytes never raise" ~count:500
    QCheck.(map (fun s -> "SPROFOCAML1\n" ^ s) string)
    (fun s ->
      (match Gmon.Sprof.decode ~mode:`Strict s with Ok _ | Error _ -> ());
      match Gmon.Sprof.decode ~mode:`Salvage s with
      | Ok (sp, _) -> Gmon.Sprof.validate sp = Ok ()
      | Error _ -> true)

let merge_ok a b = match Gmon.Sprof.merge a b with
  | Ok m -> m
  | Error e -> QCheck.Test.fail_report e

let merge_commutative =
  QCheck.Test.make ~name:"sprof merge: commutative and byte-identical"
    ~count:200 (QCheck.pair arb_sprof arb_sprof) (fun (a, b) ->
      let ab = merge_ok a b and ba = merge_ok b a in
      Gmon.Sprof.equal ab ba
      && Gmon.Sprof.to_bytes ab = Gmon.Sprof.to_bytes ba)

let merge_associative =
  QCheck.Test.make ~name:"sprof merge: associative and byte-identical"
    ~count:200
    (QCheck.triple arb_sprof arb_sprof arb_sprof)
    (fun (a, b, c) ->
      let l = merge_ok (merge_ok a b) c and r = merge_ok a (merge_ok b c) in
      Gmon.Sprof.equal l r && Gmon.Sprof.to_bytes l = Gmon.Sprof.to_bytes r)

let merge_preserves_samples =
  QCheck.Test.make ~name:"sprof merge: sample counts are an exact sum"
    ~count:200 (QCheck.pair arb_sprof arb_sprof) (fun (a, b) ->
      let m = merge_ok a b in
      Gmon.Sprof.validate m = Ok ()
      && Gmon.Sprof.n_samples m
         = Gmon.Sprof.n_samples a + Gmon.Sprof.n_samples b
      && m.sp_runs = a.sp_runs + b.sp_runs)

(* ------------------------------------------------------------------ *)
(* The store's sampled track: daemon-path equivalent to offline *)

let with_dir f =
  let dir = Filename.temp_file "sprof_store" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let sample_i i =
  mk [ ([| i mod 3 |], i + 1); ([| i mod 3; 4 |], (2 * i) + 1) ]

let merged_sprof_exn st =
  match Store.merged_sprof st with
  | Ok (Some sp) -> sp
  | Ok None -> Alcotest.fail "store holds no sampled profiles"
  | Error e -> Alcotest.fail e

let test_store_sprof_equals_offline () =
  with_dir @@ fun dir ->
  let st, _ = ok (Store.open_ ~shards:4 dir) in
  let sps = List.init 9 sample_i in
  List.iteri
    (fun i sp ->
      ok (Store.append_sprof st ~label:(Printf.sprintf "job-%d" (i mod 3)) sp))
    sps;
  let offline = ok (Gmon.Sprof.merge_all sps) in
  let view = merged_sprof_exn st in
  check_bool "merged = offline merge_all" true (Gmon.Sprof.equal view offline);
  check_bool "byte-identical (canonical merge)" true
    (Gmon.Sprof.to_bytes view = Gmon.Sprof.to_bytes offline);
  (* compaction must not change the view, and survives reopening *)
  let folded = ok (Store.compact st) in
  check_bool "compaction folded sprof segments" true (folded > 0);
  check_bool "view unchanged after compact" true
    (Gmon.Sprof.equal (merged_sprof_exn st) offline);
  let st2, rep = ok (Store.open_ dir) in
  check_bool "clean recovery" false (Store.open_report_degraded rep);
  check_bool "view reconstructed after reopen" true
    (Gmon.Sprof.equal (merged_sprof_exn st2) offline)

let test_store_tracks_are_independent () =
  with_dir @@ fun dir ->
  let st, _ = ok (Store.open_ ~shards:2 dir) in
  let g = Gmon.make_hist ~lowpc:0 ~highpc:4 ~bucket_size:1 in
  let gmon =
    { Gmon.hist = g; arcs = []; ticks_per_second = 60;
      cycles_per_tick = 16_666; runs = 1 }
  in
  ok (Store.append st ~label:"a" gmon);
  ok (Store.append_sprof st ~label:"a" (sample_i 1));
  (* submission bytes route by magic *)
  (match Store.append_bytes st ~label:"b" (Gmon.Sprof.to_bytes (sample_i 2)) with
  | Ok `Stored -> ()
  | Ok (`Quarantined r) -> Alcotest.failf "sprof bytes quarantined: %s" r
  | Error e -> Alcotest.fail e);
  let stats = Store.stats st in
  check_int "sprof segments counted" 2 stats.st_sprof_segments;
  check_int "sprof runs counted" 2 stats.st_sprof_runs;
  check_int "arc segments unaffected" 1 stats.st_segments;
  let expected = ok (Gmon.Sprof.merge_all [ sample_i 1; sample_i 2 ]) in
  check_bool "sampled view sums both labels" true
    (Gmon.Sprof.equal (merged_sprof_exn st) expected);
  match Store.merged st with
  | Ok (Some m) -> check_bool "arc view untouched" true (Gmon.equal m gmon)
  | _ -> Alcotest.fail "arc view lost"

let test_store_quarantines_torn_sprof () =
  with_dir @@ fun dir ->
  let st, _ = ok (Store.open_ ~shards:1 dir) in
  let torn =
    let b = Gmon.Sprof.to_bytes (sample_i 1) in
    String.sub b 0 (String.length b - 3)
  in
  (match Store.append_bytes st ~label:"x" torn with
  | Ok (`Quarantined _) -> ()
  | Ok `Stored -> Alcotest.fail "torn sprof bytes stored"
  | Error e -> Alcotest.fail e);
  check_int "quarantined" 1 (Store.stats st).st_quarantined

(* ------------------------------------------------------------------ *)

let () =
  if Sys.getenv_opt "QCHECK_SEED" = None then Unix.putenv "QCHECK_SEED" "20260807";
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "sprof"
    [
      ( "codec",
        [
          Alcotest.test_case "truncate everywhere" `Quick test_truncate_everywhere;
          Alcotest.test_case "flip everywhere" `Quick test_flip_everywhere;
          Alcotest.test_case "salvage recovers the prefix" `Quick
            test_salvage_recovers_prefix;
          Alcotest.test_case "errors carry offsets" `Quick
            test_strict_errors_carry_offsets;
          Alcotest.test_case "magic separates the family" `Quick
            test_sniff_and_family;
          Alcotest.test_case "mismatched rates refuse to merge" `Quick
            test_merge_rejects_mismatched_rates;
        ] );
      ( "algebra",
        [
          qt codec_roundtrip; qt reader_total; qt merge_commutative;
          qt merge_associative; qt merge_preserves_samples;
        ] );
      ( "store",
        [
          Alcotest.test_case "merged = offline merge_all" `Quick
            test_store_sprof_equals_offline;
          Alcotest.test_case "tracks are independent" `Quick
            test_store_tracks_are_independent;
          Alcotest.test_case "torn submissions quarantined" `Quick
            test_store_quarantines_torn_sprof;
        ] );
    ]
