(* End-to-end tests across the whole system on the workload programs:
   the invariants the paper states, checked on real runs. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let analyze ?report w =
  match Workloads.Driver.analyze ?report w with
  | Ok (r, run) -> (r.profile, run)
  | Error e -> Alcotest.failf "analyze %s: %s" w.Workloads.Programs.w_name e

let entry_by (p : Gprof_core.Profile.t) name =
  p.entries.(Option.get (Gprof_core.Symtab.id_of_name p.symtab name))

(* §5.1: "the individual times sum to the total execution time". *)
let test_flat_conservation () =
  List.iter
    (fun w ->
      let p, _ = analyze w in
      let rows = Gprof_core.Flat.rows p in
      let sum = List.fold_left (fun a (_, s, _, _) -> a +. s) 0.0 rows in
      check_bool
        (Printf.sprintf "%s: flat sums %.4f vs total %.4f" w.Workloads.Programs.w_name
           sum p.total_time)
        true
        (abs_float (sum +. p.unattributed -. p.total_time) < 1e-6))
    [ Workloads.Programs.matrix; Workloads.Programs.sort;
      Workloads.Programs.codegen; Workloads.Programs.wide ]

(* main inherits (essentially) the whole program. *)
let test_main_inherits_everything () =
  List.iter
    (fun w ->
      let p, _ = analyze w in
      let main = entry_by p "main" in
      check_bool
        (Printf.sprintf "%s: main %.4f vs total %.4f" w.Workloads.Programs.w_name
           (main.e_self +. main.e_child) p.total_time)
        true
        (Util.Stats.rel_error
           ~actual:(main.e_self +. main.e_child)
           ~expected:p.total_time
         < 1e-6))
    [ Workloads.Programs.matrix; Workloads.Programs.codegen;
      Workloads.Programs.skewed; Workloads.Programs.wide ]

(* gprof's self times track the oracle's true self times. *)
let test_self_times_track_oracle () =
  let config = { Vm.Machine.default_config with oracle = true } in
  List.iter
    (fun w ->
      match Workloads.Driver.run ~config w with
      | Error e -> Alcotest.fail e
      | Ok r ->
        let report = Result.get_ok (Gprof_core.Report.analyze r.objfile r.gmon) in
        let p = report.profile in
        let orc = Option.get (Vm.Machine.the_oracle r.machine) in
        let cps = 1_000_000.0 in
        Array.iteri
          (fun id (e : Gprof_core.Profile.entry) ->
            let truth =
              float_of_int
                (Vm.Oracle.self_cycles orc (Gprof_core.Symtab.entry p.symtab id))
              /. cps
            in
            (* Only check functions with enough samples for the
               statistical estimate to settle (> 1 simulated second is
               over 60 ticks). *)
            if truth > 1.0 then
              check_bool
                (Printf.sprintf "%s/%s: gprof %.3f vs oracle %.3f"
                   w.Workloads.Programs.w_name
                   (Gprof_core.Symtab.name p.symtab id)
                   e.e_self truth)
                true
                (Util.Stats.rel_error ~actual:e.e_self ~expected:truth < 0.10))
          p.entries)
    [ Workloads.Programs.matrix; Workloads.Programs.skewed ]

(* Call counts are exact, not sampled. *)
let test_call_counts_exact () =
  let config = { Vm.Machine.default_config with oracle = true } in
  let r = Result.get_ok (Workloads.Driver.run ~config Workloads.Programs.sort) in
  let report = Result.get_ok (Gprof_core.Report.analyze r.objfile r.gmon) in
  let p = report.profile in
  let orc = Option.get (Vm.Machine.the_oracle r.machine) in
  Array.iter
    (fun (e : Gprof_core.Profile.entry) ->
      let entry_addr = Gprof_core.Symtab.entry p.symtab e.e_id in
      let truth =
        List.fold_left
          (fun acc (addr, (s : Vm.Oracle.fun_stat)) ->
            if addr = entry_addr then acc + s.f_calls else acc)
          0 (Vm.Oracle.fun_stats orc)
      in
      check_int
        (Gprof_core.Symtab.name p.symtab e.e_id ^ " call count")
        truth
        (e.e_calls + e.e_self_calls))
    p.entries

(* The recursive workload collapses into cycles. *)
let test_recursion_produces_cycles () =
  let p, _ = analyze Workloads.Programs.recursive in
  check_bool "at least two cycles" true (Array.length p.cycles >= 2);
  let fib = entry_by p "fib" in
  check_bool "fib is self-recursive" true (fib.e_self_calls > 0);
  check_int "fib not in a multi-member cycle" 0 fib.e_cycle;
  let even = entry_by p "is_even" in
  check_bool "is_even in a cycle" true (even.e_cycle > 0);
  let odd = entry_by p "is_odd" in
  check_int "is_even and is_odd share a cycle" even.e_cycle odd.e_cycle

(* The kernel workload: one big cycle, broken by removing the two
   low-count upcalls, after which the subsystem hierarchy is visible. *)
let test_kernel_cycle_breaking () =
  let p, run = analyze Workloads.Programs.kernel in
  check_int "one big cycle" 1 (Array.length p.cycles);
  check_int "four members" 4 (List.length p.cycles.(0).c_members);
  let report =
    {
      Gprof_core.Report.default_options with
      removed_arcs = [ ("dev_io", "net_input"); ("fs_read", "syscall_layer") ];
    }
  in
  match Gprof_core.Report.analyze ~options:report run.objfile run.gmon with
  | Error e -> Alcotest.fail e
  | Ok r2 ->
    let p2 = r2.profile in
    check_int "cycle broken" 0 (Array.length p2.cycles);
    (* the hierarchy is restored: syscall_layer >= net_input >= fs_read
       in inclusive time *)
    let incl name =
      let e = entry_by p2 name in
      e.e_self +. e.e_child
    in
    check_bool "syscall_layer atop" true (incl "syscall_layer" >= incl "net_input");
    check_bool "net_input above fs_read" true (incl "net_input" >= incl "fs_read");
    check_bool "fs_read above dev_io self" true
      (incl "fs_read" >= (entry_by p2 "dev_io").e_self)

(* Indirect calls: one call site, several callees; all recorded. *)
let test_indirect_callees_recorded () =
  let p, _ = analyze Workloads.Programs.indirect in
  let dispatch = entry_by p "dispatch" in
  let children =
    List.filter_map
      (fun (v : Gprof_core.Profile.arc_view) ->
        match v.av_other with
        | Gprof_core.Profile.Func id ->
          Some (Gprof_core.Symtab.name p.symtab id)
        | _ -> None)
      dispatch.e_children
  in
  List.iter
    (fun n -> check_bool ("dispatch calls " ^ n) true (List.mem n children))
    [ "on_add"; "on_mul"; "on_neg"; "on_mix" ]

(* "Routines that are not profiled run at full speed": excluding the
   hot leaf removes its mcount arcs and most of the overhead. *)
let test_selective_profiling () =
  let w = Workloads.Programs.unprofiled_leaf in
  let all = Result.get_ok (Workloads.Driver.run w) in
  let partial_options =
    { Compile.Codegen.profiling_options with profiled = (fun n -> n <> "hot_leaf") }
  in
  let partial = Result.get_ok (Workloads.Driver.run ~options:partial_options w) in
  check_bool "partial instrumentation is faster" true
    (Vm.Machine.cycles partial.machine < Vm.Machine.cycles all.machine);
  let leaf_entry =
    (Option.get (Objcode.Objfile.symbol_by_name partial.objfile "hot_leaf")).addr
  in
  check_int "no arcs into the unprofiled leaf" 0
    (Gmon.arc_count_into partial.gmon leaf_entry);
  check_bool "arcs into profiled warm_mid remain" true
    (Gmon.arc_count_into partial.gmon
       (Option.get (Objcode.Objfile.symbol_by_name partial.objfile "warm_mid")).addr
     > 0)

(* Multi-run summing (gprof -s): short runs accumulate. *)
let test_multirun_summing () =
  let w = Workloads.Programs.short in
  let runs =
    List.init 30 (fun i ->
        let config = { Vm.Machine.default_config with seed = i + 1 } in
        (Result.get_ok (Workloads.Driver.run ~config w)).gmon)
  in
  let single = List.hd runs in
  let merged = Result.get_ok (Gmon.merge_all runs) in
  check_int "thirty runs" 30 merged.runs;
  check_bool "a single short run has a handful of ticks" true
    (Gmon.total_ticks single < 20);
  check_bool "merged accumulates 30x" true
    (Gmon.total_ticks merged >= 25 * Gmon.total_ticks single);
  let o = (Result.get_ok (Workloads.Driver.run w)).objfile in
  let report = Result.get_ok (Gprof_core.Report.analyze o merged) in
  let leaf = entry_by report.profile "tiny_leaf" in
  check_bool "short routine resolves in the merged profile" true (leaf.e_self > 0.0)

(* The avg-time pitfall: gprof splits `work`'s time by call counts
   (900:100 per round), but the truth is the opposite (expensive site
   dominates). The oracle and the stack sampler both see the truth. *)
let test_avgtime_pitfall () =
  let config =
    { Vm.Machine.default_config with oracle = true; stack_interval = Some 1 }
  in
  let r = Result.get_ok (Workloads.Driver.run ~config Workloads.Programs.skewed) in
  let report = Result.get_ok (Gprof_core.Report.analyze r.objfile r.gmon) in
  let p = report.profile in
  let cheap = entry_by p "cheap_site" and exp = entry_by p "expensive_site" in
  (* gprof: cheap_site gets ~90% of work's time (it makes 90% of calls). *)
  check_bool "gprof inflates the cheap site" true (cheap.e_child > exp.e_child);
  (* oracle: the expensive site truly dominates. *)
  let orc = Option.get (Vm.Machine.the_oracle r.machine) in
  let entry name = (Option.get (Objcode.Objfile.symbol_by_name r.objfile name)).addr in
  check_bool "oracle: expensive site dominates" true
    (Vm.Oracle.total_cycles orc (entry "expensive_site")
    > Vm.Oracle.total_cycles orc (entry "cheap_site"));
  (* stack sampler agrees with the oracle. *)
  let t =
    Stacksample.Stackprof.analyze r.objfile
      ~folded:(Vm.Machine.stack_folded r.machine)
      ~ticks_per_second:60 ~sample_interval:1
  in
  let id name = Option.get (Objcode.Objfile.func_id_of_addr r.objfile (entry name)) in
  check_bool "stack sampler agrees with oracle" true
    (Stacksample.Stackprof.inclusive_of t (id "expensive_site")
    > Stacksample.Stackprof.inclusive_of t (id "cheap_site"))

(* The section-6 navigation facts. *)
let test_explore_structure () =
  let p, _ = analyze Workloads.Programs.explore in
  let parents_of name =
    List.filter_map
      (fun (v : Gprof_core.Profile.arc_view) ->
        match v.av_other with
        | Gprof_core.Profile.Func id -> Some (Gprof_core.Symtab.name p.symtab id)
        | _ -> None)
      (entry_by p name).e_parents
    |> List.sort compare
  in
  Alcotest.(check (list string)) "write_out's parents are the formats"
    [ "format1"; "format2" ] (parents_of "write_out");
  Alcotest.(check (list string)) "format2's parents"
    [ "calc2"; "calc3" ] (parents_of "format2");
  Alcotest.(check (list string)) "format1's parents"
    [ "calc1"; "format2" ] (parents_of "format1")

(* Histogram granularity: coarser buckets leave conservation intact
   but smear attribution. *)
let test_granularity_tradeoff () =
  let fine =
    Result.get_ok
      (Workloads.Driver.run
         ~config:{ Vm.Machine.default_config with hist_bucket_size = 1 }
         Workloads.Programs.wide)
  in
  let coarse =
    Result.get_ok
      (Workloads.Driver.run
         ~config:{ Vm.Machine.default_config with hist_bucket_size = 64 }
         Workloads.Programs.wide)
  in
  check_bool "coarse histogram is smaller" true
    (Array.length coarse.gmon.Gmon.hist.h_counts
    < Array.length fine.gmon.Gmon.hist.h_counts);
  let report g = Result.get_ok (Gprof_core.Report.analyze fine.objfile g) in
  let pf = (report fine.gmon).profile and pc = (report coarse.gmon).profile in
  check_bool "both conserve" true
    (abs_float (pf.total_time -. pc.total_time) /. pf.total_time < 0.02)

let () =
  Alcotest.run "integration"
    [
      ( "invariants",
        [
          Alcotest.test_case "flat conservation" `Slow test_flat_conservation;
          Alcotest.test_case "main inherits everything" `Slow
            test_main_inherits_everything;
          Alcotest.test_case "self times track oracle" `Slow
            test_self_times_track_oracle;
          Alcotest.test_case "call counts exact" `Slow test_call_counts_exact;
        ] );
      ( "phenomena",
        [
          Alcotest.test_case "recursion cycles" `Slow test_recursion_produces_cycles;
          Alcotest.test_case "kernel cycle breaking" `Slow test_kernel_cycle_breaking;
          Alcotest.test_case "indirect callees" `Slow test_indirect_callees_recorded;
          Alcotest.test_case "selective profiling" `Slow test_selective_profiling;
          Alcotest.test_case "multi-run summing" `Slow test_multirun_summing;
          Alcotest.test_case "avg-time pitfall" `Slow test_avgtime_pitfall;
          Alcotest.test_case "explore structure" `Slow test_explore_structure;
          Alcotest.test_case "granularity trade-off" `Slow test_granularity_tradeoff;
        ] );
    ]
