(* Tests for the complete-call-stack sampling post-processor. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_time = Alcotest.(check (float 1e-6))

let synthetic names =
  let fsize = 4 in
  {
    Objcode.Objfile.text =
      Array.concat
        (List.map (fun _ -> [| Objcode.Instr.Nop; Nop; Const 0; Ret |]) names);
    symbols =
      Array.of_list
        (List.mapi
           (fun i name ->
             { Objcode.Objfile.name; addr = i * fsize; size = fsize; profiled = true })
           names);
    entry = 0;
    globals = [||];
    global_init = [||];
    arrays = [||];
    lines = [||];
    source_name = "synthetic";
  }

(* main=0, f=4, g=8 *)
let o3 = synthetic [ "main"; "f"; "g" ]

(* the old one-entry-per-sample shape, folded with count 1 each *)
let fold1 samples = List.map (fun s -> (s, 1)) samples

let analyze samples =
  Stacksample.Stackprof.analyze o3 ~folded:(fold1 samples) ~ticks_per_second:60
    ~sample_interval:1

(* Function ids: main=0, f=1, g=2; entry addresses 0, 4, 8. *)
let test_exclusive_inclusive () =
  let t =
    analyze [ [| 0; 4 |]; [| 0; 4; 8 |]; [| 0; 8 |]; [| 0 |] ]
  in
  check_int "samples" 4 t.n_samples;
  (* main on all 4, leaf on 1 *)
  check_time "main inclusive" (4.0 /. 60.0) (Stacksample.Stackprof.inclusive_of t 0);
  check_time "main exclusive" (1.0 /. 60.0) (Stacksample.Stackprof.exclusive_of t 0);
  check_time "f inclusive" (2.0 /. 60.0) (Stacksample.Stackprof.inclusive_of t 1);
  check_time "f exclusive" (1.0 /. 60.0) (Stacksample.Stackprof.exclusive_of t 1);
  check_time "g inclusive" (2.0 /. 60.0) (Stacksample.Stackprof.inclusive_of t 2);
  check_time "g exclusive" (2.0 /. 60.0) (Stacksample.Stackprof.exclusive_of t 2);
  (* Exclusive times sum to total. *)
  let excl = List.fold_left (fun a r -> a +. r.Stacksample.Stackprof.s_exclusive) 0.0 t.rows in
  check_time "exclusive sums to total" t.total_seconds excl

let test_recursion_dedup () =
  (* f appears twice on one stack: inclusive charged once. *)
  let t = analyze [ [| 0; 4; 4 |]; [| 0; 4; 4; 4 |] ] in
  check_time "f inclusive counted once per sample" (2.0 /. 60.0)
    (Stacksample.Stackprof.inclusive_of t 1);
  check_time "f exclusive as leaf" (2.0 /. 60.0)
    (Stacksample.Stackprof.exclusive_of t 1)

let test_arc_attribution () =
  let t = analyze [ [| 0; 4; 8 |]; [| 0; 4 |]; [| 0; 8 |] ] in
  let find key = List.assoc_opt key t.arc_inclusive in
  check_time "main->f over two samples" (2.0 /. 60.0)
    (Option.value ~default:0.0 (find (0, 1)));
  check_time "f->g once" (1.0 /. 60.0) (Option.value ~default:0.0 (find (1, 2)));
  check_time "main->g once" (1.0 /. 60.0) (Option.value ~default:0.0 (find (0, 2)))

let test_interval_scales_time () =
  let folded = fold1 [ [| 0 |]; [| 0 |] ] in
  let t1 =
    Stacksample.Stackprof.analyze o3 ~folded ~ticks_per_second:60 ~sample_interval:1
  in
  let t5 =
    Stacksample.Stackprof.analyze o3 ~folded ~ticks_per_second:60 ~sample_interval:5
  in
  check_time "coarser samples weigh more" (5.0 *. t1.total_seconds) t5.total_seconds;
  Alcotest.check_raises "bad interval"
    (Invalid_argument "Stackprof.analyze: sample_interval must be >= 1") (fun () ->
      ignore
        (Stacksample.Stackprof.analyze o3 ~folded ~ticks_per_second:60
           ~sample_interval:0))

let test_unknown_addresses_skipped () =
  let t = analyze [ [| 0; 999; 4 |] ] in
  check_time "known frames still counted" (1.0 /. 60.0)
    (Stacksample.Stackprof.inclusive_of t 1);
  check_int "one sample" 1 t.n_samples

let test_end_to_end_against_oracle () =
  (* On a deep workload, stack-sampling inclusive times should be close
     to the oracle's (within sampling noise). *)
  let config =
    { Vm.Machine.default_config with oracle = true; stack_interval = Some 1 }
  in
  let r = Result.get_ok (Workloads.Driver.run ~config Workloads.Programs.matrix) in
  let orc = Option.get (Vm.Machine.the_oracle r.machine) in
  let t =
    Stacksample.Stackprof.analyze r.objfile
      ~folded:(Vm.Machine.stack_folded r.machine)
      ~ticks_per_second:60 ~sample_interval:1
  in
  let cps = 1_000_000.0 in
  let dot = (Option.get (Objcode.Objfile.symbol_by_name r.objfile "dot")).addr in
  let dot_id = Option.get (Objcode.Objfile.func_id_of_addr r.objfile dot) in
  let oracle_incl = float_of_int (Vm.Oracle.total_cycles orc dot) /. cps in
  let sampled_incl = Stacksample.Stackprof.inclusive_of t dot_id in
  check_bool
    (Printf.sprintf "dot inclusive: oracle %.2f vs sampled %.2f" oracle_incl
       sampled_incl)
    true
    (Util.Stats.rel_error ~actual:sampled_incl ~expected:oracle_incl < 0.15)

let () =
  Alcotest.run "stacksample"
    [
      ( "stackprof",
        [
          Alcotest.test_case "exclusive/inclusive" `Quick test_exclusive_inclusive;
          Alcotest.test_case "recursion dedup" `Quick test_recursion_dedup;
          Alcotest.test_case "arc attribution" `Quick test_arc_attribution;
          Alcotest.test_case "interval scaling" `Quick test_interval_scales_time;
          Alcotest.test_case "unknown addresses" `Quick test_unknown_addresses_skipped;
          Alcotest.test_case "matches oracle end to end" `Quick
            test_end_to_end_against_oracle;
        ] );
    ]
