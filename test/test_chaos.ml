(* Tests for the chaos-hardened fleet pipeline: the Proto transport
   under deadlines, oversize frames, and injected faults; the Server
   event loop's backpressure, duplicate suppression, slowloris
   defense, and graceful drain (a real forked daemon per test); and
   the client-side spool, including the QCheck equivalence property
   spool → drain → store ≡ direct submission for both container
   families. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let qt = QCheck_alcotest.to_alcotest

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let with_dir f =
  let dir = Filename.temp_file "chaos_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

(* the same small profile family the store tests use *)
let mk_gmon i =
  let hist = Gmon.make_hist ~lowpc:0 ~highpc:20 ~bucket_size:1 in
  let counts = Array.copy hist.Gmon.h_counts in
  counts.(i mod 20) <- i + 1;
  counts.((i * 7) mod 20) <- (2 * i) + 3;
  {
    Gmon.hist = { hist with h_counts = counts };
    arcs =
      [
        { Gmon.a_from = 1; a_self = 10; a_count = i + 1 };
        { Gmon.a_from = (i mod 5) + 2; a_self = 11; a_count = i + 2 };
      ]
      |> List.sort (fun (a : Gmon.arc) b ->
             compare (a.a_from, a.a_self) (b.a_from, b.a_self));
    ticks_per_second = 60;
    cycles_per_tick = 16_666;
    runs = 1;
  }

let mk_sprof i =
  {
    Gmon.Sprof.sp_sample_interval = 2;
    sp_ticks_per_second = 60;
    sp_cycles_per_tick = 16_666;
    sp_runs = 1;
    sp_stacks =
      [ ([| 0; i mod 5 |], i + 1); ([| i mod 3 |], 1) ]
      |> List.stable_sort (fun (a, _) (b, _) -> Gmon.Sprof.compare_stack a b);
  }

let with_faults spec f =
  match Faultplane.of_spec spec with
  | Error e -> Alcotest.fail e
  | Ok plane ->
    Faultplane.configure (Some plane);
    Fun.protect ~finally:(fun () -> Faultplane.configure None) f

(* ------------------------------------------------------------------ *)
(* A real daemon for integration tests: Server.serve in a forked
   child, one per test, killed and reaped no matter how the test
   ends. *)

let with_daemon ?(conn_timeout = 5.0) ?(max_conns = 8) ?(retry_after = 0.05)
    ?(drain_grace = 2.0) ?(max_batch = 4) ?(queue_cap = 8) ?faults ~dir f =
  let socket = Filename.concat dir "d.sock" in
  let store_dir = Filename.concat dir "store" in
  match Unix.fork () with
  | 0 ->
    (try
       (match faults with
       | None -> ()
       | Some spec -> Faultplane.configure (Some (ok (Faultplane.of_spec spec))));
       match Store.open_ store_dir with
       | Error e ->
         prerr_endline e;
         Unix._exit 2
       | Ok (store, _) ->
         let ingest = Ingest.create ~max_batch ~queue_cap store in
         let config =
           {
             Server.socket;
             conn_timeout;
             max_conns;
             retry_after;
             drain_grace;
             telemetry_out = None;
             telemetry_interval = 1.0;
           }
         in
         (match
            Server.serve config ingest
              ~stop_requested:(fun () -> false)
              ~events:Obs.Eventlog.null
          with
         | Ok () -> Unix._exit 0
         | Error e ->
           prerr_endline e;
           Unix._exit 2)
     with e ->
       prerr_endline (Printexc.to_string e);
       Unix._exit 2)
  | pid ->
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
      (fun () ->
        (match Proto.wait_ready ~socket ~timeout:10.0 with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        f ~socket ~store_dir ~pid)

let raw_connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  fd

(* ------------------------------------------------------------------ *)
(* Proto: codecs and transport *)

let test_codec_roundtrips () =
  let reqs =
    [
      Proto.Submit { label = "web-7"; id = Some "a1-b2.c3"; payload = "\x00\xffbin" };
      Proto.Submit { label = "web-7"; id = None; payload = "" };
      Proto.Query_top 13;
      Proto.Query_report;
      Proto.Query_sreport;
      Proto.Query_stats;
      Proto.Query_metrics;
      Proto.Query_health;
      Proto.Flush;
      Proto.Compact;
      Proto.Shutdown;
    ]
  in
  List.iter
    (fun req ->
      match Proto.decode_request (Proto.encode_request req) with
      | Ok got -> check_bool "request round-trips" true (got = req)
      | Error e -> Alcotest.fail e)
    reqs;
  let resps =
    [ Proto.Resp_ok "payload\nwith\nlines"; Resp_busy 0.25; Resp_err "boom" ]
  in
  List.iter
    (fun resp ->
      match Proto.decode_response (Proto.encode_response resp) with
      | Ok got -> check_bool "response round-trips" true (got = resp)
      | Error e -> Alcotest.fail e)
    resps;
  (* a BUSY's retry-after survives the text codec *)
  (match Proto.decode_response "BUSY 1.5\n" with
  | Ok (Resp_busy t) -> check_bool "retry_after parsed" true (t = 1.5)
  | _ -> Alcotest.fail "BUSY did not decode");
  (* hostile ids are refused at decode, not at ingest *)
  check_bool "id with a space is invalid" true
    (Result.is_error (Proto.decode_request "SUBMIT l bad id extra\n"));
  check_bool "valid_id rejects newline" false (Proto.valid_id "a\nb");
  check_bool "valid_id rejects empty" false (Proto.valid_id "");
  check_bool "fresh ids are valid" true (Proto.valid_id (Proto.fresh_id ()));
  check_bool "fresh ids differ" true (Proto.fresh_id () <> Proto.fresh_id ())

let test_oversize_refused_client_side () =
  (* the writer refuses before sending a byte *)
  let a, b = Unix.(socketpair PF_UNIX SOCK_STREAM 0) in
  Fun.protect
    ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
    (fun () ->
      let big = String.make (Proto.max_frame + 1) 'x' in
      (match Proto.write_frame a big with
      | Error (Proto.Oversize n) -> check_int "reported size" (Proto.max_frame + 1) n
      | _ -> Alcotest.fail "oversize write not refused");
      (* and the reader refuses a hostile length prefix without
         allocating the body *)
      let hdr = Bytes.create 4 in
      Bytes.set_int32_le hdr 0 (Int32.of_int (Proto.max_frame + 1));
      ignore (Unix.write a hdr 0 4);
      match Proto.read_frame ~deadline:(Unix.gettimeofday () +. 5.0) b with
      | Error (Proto.Oversize n) -> check_int "reader size" (Proto.max_frame + 1) n
      | _ -> Alcotest.fail "oversize read not refused")

let test_read_deadline () =
  let a, b = Unix.(socketpair PF_UNIX SOCK_STREAM 0) in
  Fun.protect
    ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
    (fun () ->
      let t0 = Unix.gettimeofday () in
      match Proto.read_frame ~deadline:(t0 +. 0.2) b with
      | Error Proto.Timeout ->
        check_bool "timed out promptly" true (Unix.gettimeofday () -. t0 < 2.0)
      | _ -> Alcotest.fail "expected a deadline miss")

let test_fault_injection_is_deterministic () =
  (* with torn=1.0 every framed write fails after a prefix; the same
     spec gives the same failure — replayable chaos *)
  let tear () =
    with_faults "seed=7,torn=1.0" (fun () ->
        let a, b = Unix.(socketpair PF_UNIX SOCK_STREAM 0) in
        Fun.protect
          ~finally:(fun () ->
            Unix.close a;
            Unix.close b)
          (fun () ->
            match Proto.write_frame a (String.make 4096 'p') with
            | Error (Proto.Torn msg) -> msg
            | Ok () -> Alcotest.fail "torn write unexpectedly succeeded"
            | Error e -> Alcotest.fail (Proto.frame_error_to_string e)))
  in
  let m1 = tear () and m2 = tear () in
  check_bool "same seed, same tear" true (m1 = m2);
  (* reads injected to fail surface as resets, not exceptions *)
  with_faults "seed=7,reset=1.0" (fun () ->
      let a, b = Unix.(socketpair PF_UNIX SOCK_STREAM 0) in
      Fun.protect
        ~finally:(fun () ->
          Unix.close a;
          Unix.close b)
        (fun () ->
          ignore (Unix.write_substring a "xxxx" 0 4);
          match Proto.read_frame ~deadline:(Unix.gettimeofday () +. 1.0) b with
          | Error (Proto.Torn _) -> ()
          | _ -> Alcotest.fail "injected reset not surfaced"))

(* ------------------------------------------------------------------ *)
(* The daemon under attack *)

let rpc_exn ?attempts ~socket req =
  match Proto.rpc ?attempts ~socket req with
  | Ok resp -> resp
  | Error e -> Alcotest.fail e

let test_duplicate_submission_not_double_counted () =
  with_dir (fun dir ->
      with_daemon ~dir (fun ~socket ~store_dir:_ ~pid:_ ->
          let g = mk_gmon 3 in
          let payload = Gmon.to_bytes g in
          let id = Some (Proto.fresh_id ()) in
          let req = Proto.Submit { label = "t"; id; payload } in
          (match rpc_exn ~socket req with
          | Resp_ok _ -> ()
          | _ -> Alcotest.fail "first submit refused");
          (* the retry of an already-acknowledged submission — as after
             a lost response — is acknowledged without ingesting *)
          (match rpc_exn ~socket req with
          | Resp_ok reply ->
            check_bool "acknowledged as duplicate" true
              (String.length reply >= 9 && String.sub reply 0 9 = "duplicate")
          | _ -> Alcotest.fail "duplicate submit refused");
          match rpc_exn ~socket Proto.Query_report with
          | Resp_ok bytes ->
            let stored =
              match Gmon.decode ~mode:`Strict bytes with
              | Ok (g, _) -> g
              | Error e -> Alcotest.failf "report undecodable at %d" e.de_offset
            in
            check_bool "stored exactly once" true (Gmon.equal stored g)
          | _ -> Alcotest.fail "report query failed"))

let test_overload_sheds_with_busy () =
  with_dir (fun dir ->
      (* every store append fails, so the 1-deep queue jams: the first
         submission is accepted (buffered), the second must be shed
         with an explicit BUSY, never silently dropped *)
      with_daemon ~dir ~max_batch:1 ~queue_cap:1 ~faults:"seed=3,storefail=1.0"
        (fun ~socket ~store_dir:_ ~pid:_ ->
          let submit i =
            Proto.rpc ~socket
              (Submit
                 {
                   label = "t";
                   id = Some (Proto.fresh_id ());
                   payload = Gmon.to_bytes (mk_gmon i);
                 })
          in
          (match submit 0 with
          | Ok (Resp_ok _) -> ()
          | _ -> Alcotest.fail "first submission should be buffered");
          (match submit 1 with
          | Ok (Resp_busy retry_after) ->
            check_bool "retry-after hint present" true (retry_after > 0.0)
          | _ -> Alcotest.fail "expected BUSY at the full queue");
          (* a retrying client keeps getting BUSY (the store never
             heals here) and surfaces the final BUSY for degrading *)
          match
            Proto.rpc ~attempts:3 ~socket
              (Submit
                 {
                   label = "t";
                   id = Some (Proto.fresh_id ());
                   payload = Gmon.to_bytes (mk_gmon 2);
                 })
          with
          | Ok (Resp_busy _) -> ()
          | _ -> Alcotest.fail "retries should end in the final BUSY"))

let test_slowloris_cannot_stall_the_daemon () =
  with_dir (fun dir ->
      with_daemon ~dir ~conn_timeout:0.5 (fun ~socket ~store_dir:_ ~pid:_ ->
          (* a peer that sends half a length prefix and stops *)
          let slow = raw_connect socket in
          Fun.protect
            ~finally:(fun () -> try Unix.close slow with Unix.Unix_error _ -> ())
            (fun () ->
              ignore (Unix.write_substring slow "\x08\x00" 0 2);
              (* the daemon still serves others while the slow peer
                 dangles *)
              let t0 = Unix.gettimeofday () in
              (match rpc_exn ~socket Proto.Query_stats with
              | Resp_ok json ->
                check_bool "stats answered while stalled" true
                  (String.length json > 0)
              | _ -> Alcotest.fail "stats refused");
              check_bool "other clients not stalled" true
                (Unix.gettimeofday () -. t0 < 3.0);
              (* and cuts the slow peer at the deadline *)
              match
                Proto.read_frame ~deadline:(Unix.gettimeofday () +. 5.0) slow
              with
              | Error Proto.Eof ->
                check_bool "cut at the deadline, not ours" true
                  (Unix.gettimeofday () -. t0 < 4.0)
              | Ok _ -> Alcotest.fail "slow peer got a frame?"
              | Error e -> Alcotest.fail (Proto.frame_error_to_string e))))

let test_oversize_frame_answered_then_closed () =
  with_dir (fun dir ->
      with_daemon ~dir (fun ~socket ~store_dir:_ ~pid:_ ->
          let fd = raw_connect socket in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              let hdr = Bytes.create 4 in
              Bytes.set_int32_le hdr 0 (Int32.of_int (Proto.max_frame + 7));
              ignore (Unix.write fd hdr 0 4);
              let deadline = Unix.gettimeofday () +. 5.0 in
              (match Proto.read_frame ~deadline fd with
              | Ok body -> (
                match Proto.decode_response body with
                | Ok (Resp_err msg) ->
                  check_bool "structured error names the cap" true
                    (String.length msg > 0 && contains ~needle:"cap" msg)
                | _ -> Alcotest.fail "expected a structured ERR")
              | Error e -> Alcotest.fail (Proto.frame_error_to_string e));
              (* the stream is unusable after a refused length: closed *)
              match Proto.read_frame ~deadline fd with
              | Error Proto.Eof -> ()
              | _ -> Alcotest.fail "connection should be closed")))

let test_graceful_drain_flushes_the_store () =
  with_dir (fun dir ->
      with_daemon ~dir ~max_batch:64 (fun ~socket ~store_dir ~pid ->
          (* large batch: nothing hits the disk until the drain *)
          let gs = [ mk_gmon 1; mk_gmon 2; mk_gmon 3 ] in
          List.iter
            (fun g ->
              match
                rpc_exn ~socket
                  (Submit
                     {
                       label = "t";
                       id = Some (Proto.fresh_id ());
                       payload = Gmon.to_bytes g;
                     })
              with
              | Resp_ok _ -> ()
              | _ -> Alcotest.fail "submit refused")
            gs;
          (match rpc_exn ~socket Proto.Shutdown with
          | Resp_ok _ -> ()
          | _ -> Alcotest.fail "shutdown refused");
          (match Unix.waitpid [] pid with
          | _, Unix.WEXITED 0 -> ()
          | _ -> Alcotest.fail "daemon did not drain cleanly");
          (* the store on disk holds everything the daemon accepted *)
          let store, _ = ok (Store.open_ store_dir) in
          match Store.merged store with
          | Ok (Some got) ->
            check_bool "drained store equals the offline merge" true
              (Gmon.equal got (ok (Gmon.merge_all gs)))
          | Ok None -> Alcotest.fail "store empty after drain"
          | Error e -> Alcotest.fail e))

(* ------------------------------------------------------------------ *)
(* The spool *)

let test_spool_roundtrip_and_bad_entries () =
  with_dir (fun dir ->
      let spool = Filename.concat dir "spool" in
      let id1 = ok (Spool.add ~dir:spool ~label:"alpha" "payload-1") in
      let _id2 = ok (Spool.add ~dir:spool ~label:"beta" "payload-2") in
      check_int "two entries" 2 (List.length (ok (Spool.entries ~dir:spool)));
      (* entries round-trip label, id, and payload *)
      let path1 =
        List.find
          (fun p -> ok (Spool.read p) |> fun (_, id, _) -> id = id1)
          (ok (Spool.entries ~dir:spool))
      in
      let label, id, payload = ok (Spool.read path1) in
      check_bool "label" true (label = "alpha");
      check_bool "id" true (id = id1);
      check_bool "payload" true (payload = "payload-1");
      (* a damaged entry is set aside as .bad, not retried forever *)
      let bad = Filename.concat spool "sp-damaged.spool" in
      Out_channel.with_open_bin bad (fun oc ->
          Out_channel.output_string oc "not a spool entry");
      let accepted = ref 0 in
      let drained, remaining =
        ok
          (Spool.drain ~dir:spool ~submit:(fun ~label:_ ~id:_ _ ->
               incr accepted;
               if !accepted = 1 then Ok `Accepted else Ok `Retry))
      in
      check_int "one drained" 1 drained;
      check_int "one retried + one damaged" 2 remaining;
      check_bool "damaged entry renamed" true (Sys.file_exists (bad ^ ".bad"));
      (* the next drain sees only the retryable entry *)
      let drained, remaining =
        ok (Spool.drain ~dir:spool ~submit:(fun ~label:_ ~id:_ _ -> Ok `Accepted))
      in
      check_int "second drain ships the rest" 1 drained;
      check_int "spool empty" 0 remaining;
      check_int "no entries left" 0 (List.length (ok (Spool.entries ~dir:spool))))

(* QCheck: for any mix of profiles, spooling then draining into a
   store yields a merged report byte-identical (after compaction) to
   submitting directly — the accounting equation closes with no
   profile lost or duplicated. One property per container family. *)

let spool_equivalence_gmon =
  QCheck.Test.make ~name:"spool → drain → store ≡ direct submission (gmon)"
    ~count:30
    QCheck.(list_of_size Gen.(int_range 1 8) (int_range 0 50))
    (fun is ->
      with_dir (fun dir ->
          let payloads = List.map (fun i -> Gmon.to_bytes (mk_gmon i)) is in
          let direct_store, _ =
            ok (Store.open_ (Filename.concat dir "direct"))
          in
          let direct = Ingest.create ~max_batch:3 direct_store in
          List.iter
            (fun p -> ignore (ok (Ingest.submit direct ~label:"t" p)))
            payloads;
          ignore (ok (Ingest.flush direct));
          ignore (ok (Store.compact direct_store));
          let spool = Filename.concat dir "spool" in
          List.iter
            (fun p -> ignore (ok (Spool.add ~dir:spool ~label:"t" p)))
            payloads;
          let drained_store, _ =
            ok (Store.open_ (Filename.concat dir "drained"))
          in
          let drained = Ingest.create ~max_batch:3 drained_store in
          let n_drained, n_left =
            ok
              (Spool.drain ~dir:spool ~submit:(fun ~label ~id:_ payload ->
                   ignore (ok (Ingest.submit drained ~label payload));
                   Ok `Accepted))
          in
          ignore (ok (Ingest.flush drained));
          ignore (ok (Store.compact drained_store));
          n_drained = List.length payloads
          && n_left = 0
          &&
          match (Store.merged direct_store, Store.merged drained_store) with
          | Ok (Some a), Ok (Some b) ->
            Gmon.equal a b && Gmon.to_bytes a = Gmon.to_bytes b
          | _ -> false))

let spool_equivalence_sprof =
  QCheck.Test.make ~name:"spool → drain → store ≡ direct submission (sprof)"
    ~count:30
    QCheck.(list_of_size Gen.(int_range 1 8) (int_range 0 50))
    (fun is ->
      with_dir (fun dir ->
          let payloads =
            List.map (fun i -> Gmon.Sprof.to_bytes (mk_sprof i)) is
          in
          let direct_store, _ =
            ok (Store.open_ (Filename.concat dir "direct"))
          in
          let direct = Ingest.create ~max_batch:3 direct_store in
          List.iter
            (fun p -> ignore (ok (Ingest.submit direct ~label:"t" p)))
            payloads;
          ignore (ok (Ingest.flush direct));
          ignore (ok (Store.compact direct_store));
          let spool = Filename.concat dir "spool" in
          List.iter
            (fun p -> ignore (ok (Spool.add ~dir:spool ~label:"t" p)))
            payloads;
          let drained_store, _ =
            ok (Store.open_ (Filename.concat dir "drained"))
          in
          let drained = Ingest.create ~max_batch:3 drained_store in
          let n_drained, n_left =
            ok
              (Spool.drain ~dir:spool ~submit:(fun ~label ~id:_ payload ->
                   ignore (ok (Ingest.submit drained ~label payload));
                   Ok `Accepted))
          in
          ignore (ok (Ingest.flush drained));
          ignore (ok (Store.compact drained_store));
          n_drained = List.length payloads
          && n_left = 0
          &&
          match
            (Store.merged_sprof direct_store, Store.merged_sprof drained_store)
          with
          | Ok (Some a), Ok (Some b) ->
            Gmon.Sprof.equal a b
            && Gmon.Sprof.to_bytes a = Gmon.Sprof.to_bytes b
          | _ -> false))

let () =
  Alcotest.run "chaos"
    [
      ( "proto",
        [
          Alcotest.test_case "codec round-trips" `Quick test_codec_roundtrips;
          Alcotest.test_case "oversize refused client side" `Quick
            test_oversize_refused_client_side;
          Alcotest.test_case "read deadline" `Quick test_read_deadline;
          Alcotest.test_case "fault injection is deterministic" `Quick
            test_fault_injection_is_deterministic;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "duplicate submission not double-counted" `Slow
            test_duplicate_submission_not_double_counted;
          Alcotest.test_case "overload sheds with BUSY" `Slow
            test_overload_sheds_with_busy;
          Alcotest.test_case "slowloris cannot stall the daemon" `Slow
            test_slowloris_cannot_stall_the_daemon;
          Alcotest.test_case "oversize frame answered then closed" `Slow
            test_oversize_frame_answered_then_closed;
          Alcotest.test_case "graceful drain flushes the store" `Slow
            test_graceful_drain_flushes_the_store;
        ] );
      ( "spool",
        [
          Alcotest.test_case "roundtrip and bad entries" `Quick
            test_spool_roundtrip_and_bad_entries;
          qt spool_equivalence_gmon;
          qt spool_equivalence_sprof;
        ] );
    ]
