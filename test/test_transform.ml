(* Tests for the source-to-source transformations: inline expansion
   (§6's "easiest optimization") and constant folding. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let parse src = Mini.Parser.parse_program src

let run_program ?(options = Compile.Codegen.default_options) src =
  match Compile.Codegen.compile_source ~options src with
  | Error e -> Alcotest.failf "compile: %s" e
  | Ok o -> (
    let m = Vm.Machine.create o in
    match Vm.Machine.run m with
    | Vm.Machine.Halted -> (m, Option.get (Vm.Machine.result m))
    | Vm.Machine.Faulted f -> Alcotest.failf "fault: %a" Vm.Machine.pp_fault f
    | Vm.Machine.Running -> Alcotest.fail "did not halt")

(* ------------------------------------------------------------------ *)
(* is_pure *)

let test_is_pure () =
  let pure s = Compile.Transform.is_pure (Mini.Parser.parse_expr s) in
  check_bool "literal" true (pure "42");
  check_bool "variable" true (pure "x");
  check_bool "arith" true (pure "x * 3 + y");
  check_bool "div by constant" true (pure "x / 4");
  check_bool "call" false (pure "f(1)");
  check_bool "call inside" false (pure "1 + f(x)");
  check_bool "indexing can fault" false (pure "t[i]");
  check_bool "division can fault" false (pure "x / y")

(* ------------------------------------------------------------------ *)
(* Inline expansion *)

let square_src =
  {|
var total;
fun square(x) { return x * x; }
fun sum_squares(n) {
  var i;
  var s = 0;
  for (i = 1; i <= n; i = i + 1) { s = s + square(i); }
  return s;
}
fun main() {
  var k;
  for (k = 0; k < 50; k = k + 1) { total = total + sum_squares(40); }
  return total % 100000;
}
|}

let test_inline_removes_calls () =
  let p = Compile.Transform.inline_expansion ~names:[ "square" ] (parse square_src) in
  let printed = Mini.Pprint.program p in
  (* the expansion has substituted i * i at the call site *)
  check_bool "call site replaced" true
    (let needle = "s + i * i" in
     let n = String.length needle and h = String.length printed in
     let rec go i = i + n <= h && (String.sub printed i n = needle || go (i + 1)) in
     go 0);
  (* the definition remains *)
  check_int "definition kept" 3 (List.length p.funs)

let test_inline_preserves_semantics () =
  let _, plain = run_program square_src in
  let options = { Compile.Codegen.default_options with inline = [ "square" ] } in
  let m, inlined = run_program ~options square_src in
  check_int "same result" plain inlined;
  ignore m

let test_inline_saves_call_overhead () =
  let m_plain, _ = run_program square_src in
  let options = { Compile.Codegen.default_options with inline = [ "square" ] } in
  let m_inl, _ = run_program ~options square_src in
  check_bool "inlined build is faster" true
    (Vm.Machine.cycles m_inl < Vm.Machine.cycles m_plain)

let test_inline_profile_loses_routine () =
  (* "the loss of routines will make its output more granular": after
     inlining, square receives no calls and no arcs. *)
  let options = { Compile.Codegen.profiling_options with inline = [ "square" ] } in
  match Compile.Codegen.compile_source ~options square_src with
  | Error e -> Alcotest.failf "compile: %s" e
  | Ok o ->
    let m = Vm.Machine.create o in
    ignore (Vm.Machine.run m);
    let g = Vm.Machine.profile m in
    let square = Option.get (Objcode.Objfile.symbol_by_name o "square") in
    check_int "no arcs into square" 0 (Gmon.arc_count_into g square.addr);
    (match Gprof_core.Report.analyze o g with
    | Error e -> Alcotest.fail e
    | Ok r ->
      check_bool "square is in the never-called list" true
        (List.exists
           (fun id -> Gprof_core.Symtab.name r.profile.symtab id = "square")
           r.profile.never_called))

let test_inline_skips_unsafe () =
  (* impure argument: the call must survive *)
  let src =
    {|
var effects;
fun bump() { effects = effects + 1; return effects; }
fun double(x) { return x + x; }
fun main() { return double(bump()); }
|}
  in
  let p = Compile.Transform.inline_expansion ~names:[ "double" ] (parse src) in
  let printed = Mini.Pprint.program p in
  check_bool "call kept (impure argument)" true
    (let needle = "double(bump())" in
     let n = String.length needle and h = String.length printed in
     let rec go i = i + n <= h && (String.sub printed i n = needle || go (i + 1)) in
     go 0);
  (* semantics would differ if bump() were duplicated *)
  let _, r = run_program src in
  let options = { Compile.Codegen.default_options with inline = [ "double" ] } in
  let _, r2 = run_program ~options src in
  check_int "identical result" r r2

let test_inline_skips_multi_statement_and_recursive () =
  let src =
    {|
fun fact(n) { if (n < 2) { return 1; } return n * fact(n - 1); }
fun wrap(n) { return fact(n); }
fun main() { return wrap(6); }
|}
  in
  (* fact is recursive and multi-statement; wrap is a candidate. *)
  let p = Compile.Transform.inline_expansion ~names:[ "fact"; "wrap" ] (parse src) in
  let wrap_calls_left =
    List.exists
      (fun (f : Mini.Ast.fundef) ->
        f.fname = "main"
        && Mini.Pprint.program { Mini.Ast.globals = []; funs = [ f ] }
           |> fun s ->
           let needle = "fact(6)" in
           let n = String.length needle and h = String.length s in
           let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
           go 0)
      p.funs
  in
  check_bool "wrap expanded into a direct fact call" true wrap_calls_left;
  let _, r = run_program src in
  let options = { Compile.Codegen.default_options with inline = [ "fact"; "wrap" ] } in
  let _, r2 = run_program ~options src in
  check_int "result preserved" r r2;
  check_int "720" 720 r2

let test_inline_chain_flattens () =
  let src =
    {|
fun a(x) { return x + 1; }
fun b(x) { return a(x) * 2; }
fun c(x) { return b(x) + 3; }
fun main() { return c(10); }
|}
  in
  let p = Compile.Transform.inline_expansion ~names:[ "a"; "b"; "c" ] (parse src) in
  let main = List.find (fun (f : Mini.Ast.fundef) -> f.fname = "main") p.funs in
  let printed = Mini.Pprint.program { Mini.Ast.globals = []; funs = [ main ] } in
  check_bool "no calls left in main" true
    (not
       (let needle = "(" in
        ignore needle;
        String.exists (fun c -> c = 'a' || c = 'b' || c = 'c') printed
        && (let has call =
              let n = String.length call and h = String.length printed in
              let rec go i = i + n <= h && (String.sub printed i n = call || go (i + 1)) in
              go 0
            in
            has "a(" || has "b(" || has "c(")));
  let _, r = run_program src in
  check_int "25" 25 r;
  let options =
    { Compile.Codegen.default_options with inline = [ "a"; "b"; "c" ] }
  in
  let _, r2 = run_program ~options src in
  check_int "same" r r2

let contains needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_inlinable_lists_candidates () =
  (* the PGO pipeline trusts this list; it must match what expansion
     actually accepts *)
  let p = parse square_src in
  check_bool "square is inlinable" true
    (List.mem "square" (Compile.Transform.inlinable p));
  check_bool "sum_squares is not (loop body)" false
    (List.mem "sum_squares" (Compile.Transform.inlinable p))

let test_inline_recursive_refused () =
  (* a lone-return body that mentions itself must never be a
     candidate: substitution would re-introduce the call forever *)
  let src =
    {|
fun fact(n) { return (n < 2) + (n >= 2) * n * fact(n - 1); }
fun main() { return fact(5); }
|}
  in
  let p = parse src in
  check_bool "recursive lone return is not inlinable" false
    (List.mem "fact" (Compile.Transform.inlinable p));
  let p' = Compile.Transform.inline_expansion ~names:[ "fact" ] p in
  check_bool "call site untouched" true
    (contains "fact(5)" (Mini.Pprint.program p'))

let test_inline_arity_mismatch_kept () =
  (* a call with the wrong argument count cannot be substituted; the
     transform must leave it for the checker to reject, not crash or
     mangle it *)
  let src =
    {|
fun add(a, b) { return a + b; }
fun main() { return add(1) + add(2, 3); }
|}
  in
  let p = Compile.Transform.inline_expansion ~names:[ "add" ] (parse src) in
  let printed = Mini.Pprint.program p in
  check_bool "short call survives verbatim" true (contains "add(1)" printed);
  check_bool "well-formed call expanded" true (contains "2 + 3" printed)

let test_inline_address_taken_still_expands () =
  (* taking a function's value (a funref) must not block inlining its
     direct call sites: the definition always survives, so the
     reference stays valid *)
  let src =
    {|
fun inc(x) { return x + 1; }
fun main() {
  var f = inc;
  return f(10) + inc(5);
}
|}
  in
  let p = Compile.Transform.inline_expansion ~names:[ "inc" ] (parse src) in
  let printed = Mini.Pprint.program p in
  check_bool "direct site expanded" true (contains "5 + 1" printed);
  check_bool "funref untouched" true (contains "f = inc" printed);
  check_bool "indirect call untouched" true (contains "f(10)" printed);
  check_int "definition kept" 2 (List.length p.funs);
  let _, r = run_program src in
  let options = { Compile.Codegen.default_options with inline = [ "inc" ] } in
  let _, r2 = run_program ~options src in
  check_int "17 either way" r r2;
  check_int "17" 17 r

let test_inline_mutual_wrappers_terminate () =
  (* mutually recursive lone-return wrappers would substitute into
     each other forever; the round bound must cut the ping-pong *)
  let src =
    {|
fun a(x) { return b(x); }
fun b(x) { return a(x); }
fun main() { return 0; }
|}
  in
  let p = Compile.Transform.inline_expansion ~names:[ "a"; "b" ] (parse src) in
  let printed = Mini.Pprint.program p in
  check_int "all definitions kept" 3 (List.length p.funs);
  (* whatever the parity of the bound, each body is still a single
     call to the other wrapper — not an ever-growing chain *)
  check_bool "bodies still call a wrapper" true
    (contains "a(x)" printed || contains "b(x)" printed)

(* Inlining must preserve semantics on every workload it can touch. *)
let test_inline_workloads_semantics () =
  List.iter
    (fun ((w : Workloads.Programs.t), names) ->
      let _, plain = run_program w.w_source in
      let options = { Compile.Codegen.default_options with inline = names } in
      let m1, inlined = run_program ~options w.w_source in
      ignore m1;
      check_int (w.w_name ^ " semantics") plain inlined)
    [
      (Workloads.Programs.matrix, [ "get_a"; "get_b" ]);
      (Workloads.Programs.quick, [ "square" ]);
      (Workloads.Programs.sort, [ "less" ]);
      (Workloads.Programs.codegen, [ "hash"; "rehash" ]);
    ]

(* ------------------------------------------------------------------ *)
(* Constant folding *)

let fold_expr_str s =
  let p = parse (Printf.sprintf "fun main() { return %s; }" s) in
  let p = Compile.Transform.constant_fold p in
  match (List.hd p.funs).body with
  | [ { Mini.Ast.sdesc = Mini.Ast.Return (Some e); _ } ] -> Mini.Pprint.expr e
  | _ -> Alcotest.fail "unexpected shape"

let test_fold_arith () =
  Alcotest.(check string) "const" "42" (fold_expr_str "40 + 2");
  Alcotest.(check string) "nested" "6" (fold_expr_str "1 + 2 + 3");
  Alcotest.(check string) "mul" "6 + x" (fold_expr_str "2 * 3 + x");
  Alcotest.(check string) "div" "3" (fold_expr_str "10 / 3");
  Alcotest.(check string) "cmp" "1" (fold_expr_str "2 < 3");
  Alcotest.(check string) "div by zero kept" "1 / 0" (fold_expr_str "1 / 0")

let test_fold_identities () =
  Alcotest.(check string) "x + 0" "x" (fold_expr_str "x + 0");
  Alcotest.(check string) "0 + x" "x" (fold_expr_str "0 + x");
  Alcotest.(check string) "x * 1" "x" (fold_expr_str "x * 1");
  Alcotest.(check string) "x * 0" "0" (fold_expr_str "x * 0");
  Alcotest.(check string) "x - 0" "x" (fold_expr_str "x - 0");
  Alcotest.(check string) "x / 1" "x" (fold_expr_str "x / 1");
  (* impure operand: must not discard the call *)
  Alcotest.(check string) "f() * 0 kept" "main() * 0" (fold_expr_str "main() * 0")

let test_fold_logic () =
  Alcotest.(check string) "0 && x" "0" (fold_expr_str "0 && x");
  Alcotest.(check string) "1 || x" "1" (fold_expr_str "1 || x");
  Alcotest.(check string) "1 && x normalizes" "!!x" (fold_expr_str "1 && x");
  Alcotest.(check string) "0 || x normalizes" "!!x" (fold_expr_str "0 || x");
  (* a constant right side decides too *)
  Alcotest.(check string) "x && 0" "0" (fold_expr_str "x && 0");
  Alcotest.(check string) "x && 5 normalizes" "!!x" (fold_expr_str "x && 5");
  Alcotest.(check string) "x || 0 normalizes" "!!x" (fold_expr_str "x || 0");
  Alcotest.(check string) "x || 5" "1" (fold_expr_str "x || 5");
  (* ... but an impure left side must keep its effects *)
  Alcotest.(check string) "impure left survives && 0" "f() && 0"
    (fold_expr_str "f() && 0");
  Alcotest.(check string) "impure left survives || 5" "f() || 5"
    (fold_expr_str "f() || 5")

let test_fold_dead_branches () =
  let src =
    {|
fun main() {
  var x = 1;
  if (1 < 2) { x = 10; } else { x = 20; }
  if (0) { x = 30; }
  while (0) { x = 40; }
  return x;
}
|}
  in
  let p = Compile.Transform.constant_fold (parse src) in
  let printed = Mini.Pprint.program p in
  let has needle =
    let n = String.length needle and h = String.length printed in
    let rec go i = i + n <= h && (String.sub printed i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "then branch kept inline" true (has "x = 10;");
  check_bool "else branch dropped" false (has "x = 20;");
  check_bool "dead if dropped" false (has "x = 30;");
  check_bool "dead while dropped" false (has "x = 40;")

let test_fold_keeps_declaring_dead_code () =
  (* A dead branch that declares must survive: its slot is used later
     in the (admittedly odd) flat scope. *)
  let src =
    {|
fun main() {
  if (0) { var y = 1; }
  y = 7;
  return y;
}
|}
  in
  let p = Compile.Transform.constant_fold (parse src) in
  check_int "still checks" 0
    (List.length (Mini.Check.check ~builtins:Compile.Builtins.arities p));
  let options = { Compile.Codegen.default_options with fold = true } in
  let _, r = run_program ~options src in
  check_int "runs to 7" 7 r

let test_fold_workloads_semantics () =
  List.iter
    (fun (w : Workloads.Programs.t) ->
      let _, plain = run_program w.w_source in
      let options = { Compile.Codegen.default_options with fold = true } in
      let _, folded = run_program ~options w.w_source in
      check_int (w.w_name ^ " semantics") plain folded)
    Workloads.Programs.[ quick; matrix; sort; kernel; recursive; explore ]

(* Random-expression property: folding preserves evaluation. *)
let fold_matches_eval =
  QCheck.Test.make ~name:"constant folding preserves pure evaluation" ~count:300
    QCheck.(
      make
        ~print:(fun e -> Mini.Pprint.expr e)
        Gen.(
          sized (fun n ->
              fix
                (fun self n ->
                  if n <= 1 then map (fun k -> Mini.Ast.mk_expr (Mini.Ast.Int k))
                      (int_range (-20) 20)
                  else
                    let sub = self (n / 2) in
                    oneof
                      [
                        map (fun k -> Mini.Ast.mk_expr (Mini.Ast.Int k))
                          (int_range (-20) 20);
                        (let* op =
                           oneofl
                             Mini.Ast.[ Add; Sub; Mul; Div; Mod; Lt; Le; Gt; Ge;
                                        Eq; Ne; And; Or ]
                         in
                         map2
                           (fun l r -> Mini.Ast.mk_expr (Mini.Ast.Binop (op, l, r)))
                           sub sub);
                        map (fun e -> Mini.Ast.mk_expr (Mini.Ast.Unop (Mini.Ast.Not, e))) sub;
                      ])
                n)))
    (fun e ->
      (* Reference evaluator with Mini's semantics; Division_by_zero
         bubbles as None. *)
      let rec eval (e : Mini.Ast.expr) =
        match e.desc with
        | Mini.Ast.Int n -> Some n
        | Mini.Ast.Var _ | Mini.Ast.Index _ | Mini.Ast.Call _ -> None
        | Mini.Ast.Unop (Mini.Ast.Neg, e1) -> Option.map (fun v -> -v) (eval e1)
        | Mini.Ast.Unop (Mini.Ast.Not, e1) ->
          Option.map (fun v -> if v = 0 then 1 else 0) (eval e1)
        | Mini.Ast.Binop (op, l, r) -> (
          match op with
          | Mini.Ast.And -> (
            match eval l with
            | Some 0 -> Some 0
            | Some _ -> Option.map (fun v -> if v <> 0 then 1 else 0) (eval r)
            | None -> None)
          | Mini.Ast.Or -> (
            match eval l with
            | Some 0 -> Option.map (fun v -> if v <> 0 then 1 else 0) (eval r)
            | Some _ -> Some 1
            | None -> None)
          | _ -> (
            match (eval l, eval r) with
            | Some a, Some b -> (
              match op with
              | Mini.Ast.Add -> Some (a + b)
              | Mini.Ast.Sub -> Some (a - b)
              | Mini.Ast.Mul -> Some (a * b)
              | Mini.Ast.Div -> if b = 0 then None else Some (a / b)
              | Mini.Ast.Mod -> if b = 0 then None else Some (a mod b)
              | Mini.Ast.Lt -> Some (if a < b then 1 else 0)
              | Mini.Ast.Le -> Some (if a <= b then 1 else 0)
              | Mini.Ast.Gt -> Some (if a > b then 1 else 0)
              | Mini.Ast.Ge -> Some (if a >= b then 1 else 0)
              | Mini.Ast.Eq -> Some (if a = b then 1 else 0)
              | Mini.Ast.Ne -> Some (if a <> b then 1 else 0)
              | Mini.Ast.And | Mini.Ast.Or -> assert false)
            | _ -> None))
      in
      let p =
        { Mini.Ast.globals = [];
          funs =
            [ { Mini.Ast.fname = "main"; params = [];
                body = [ Mini.Ast.mk_stmt (Mini.Ast.Return (Some e)) ];
                floc = Mini.Ast.dummy_loc } ] }
      in
      let folded = Compile.Transform.constant_fold p in
      let folded_e =
        match (List.hd folded.funs).body with
        | [ { Mini.Ast.sdesc = Mini.Ast.Return (Some e'); _ } ] -> e'
        | _ -> e
      in
      match eval e with
      | Some v -> (
        (* a fully-constant expression must fold to that literal *)
        match folded_e.desc with Mini.Ast.Int v' -> v = v' | _ -> false)
      | None ->
        (* division by zero somewhere: folding must keep an expression
           that still evaluates to None (faults at run time) *)
        eval folded_e = None)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "transform"
    [
      ("purity", [ Alcotest.test_case "is_pure" `Quick test_is_pure ]);
      ( "inline",
        [
          Alcotest.test_case "expands call sites" `Quick test_inline_removes_calls;
          Alcotest.test_case "preserves semantics" `Quick test_inline_preserves_semantics;
          Alcotest.test_case "saves call overhead" `Quick test_inline_saves_call_overhead;
          Alcotest.test_case "profile loses the routine" `Quick
            test_inline_profile_loses_routine;
          Alcotest.test_case "skips impure arguments" `Quick test_inline_skips_unsafe;
          Alcotest.test_case "skips recursive/multi-statement" `Quick
            test_inline_skips_multi_statement_and_recursive;
          Alcotest.test_case "chains flatten" `Quick test_inline_chain_flattens;
          Alcotest.test_case "inlinable lists candidates" `Quick
            test_inlinable_lists_candidates;
          Alcotest.test_case "recursive callee refused" `Quick
            test_inline_recursive_refused;
          Alcotest.test_case "arity mismatch kept" `Quick
            test_inline_arity_mismatch_kept;
          Alcotest.test_case "address-taken still expands" `Quick
            test_inline_address_taken_still_expands;
          Alcotest.test_case "mutual wrappers terminate" `Quick
            test_inline_mutual_wrappers_terminate;
          Alcotest.test_case "workload semantics" `Slow test_inline_workloads_semantics;
        ] );
      ( "fold",
        [
          Alcotest.test_case "arithmetic" `Quick test_fold_arith;
          Alcotest.test_case "identities" `Quick test_fold_identities;
          Alcotest.test_case "logic" `Quick test_fold_logic;
          Alcotest.test_case "dead branches" `Quick test_fold_dead_branches;
          Alcotest.test_case "declaring dead code" `Quick
            test_fold_keeps_declaring_dead_code;
          Alcotest.test_case "workload semantics" `Slow test_fold_workloads_semantics;
          qt fold_matches_eval;
        ] );
    ]
