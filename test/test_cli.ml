(* End-to-end tests of the command-line tools, driving the real
   binaries the way a user would: compile, run, post-process, diff,
   and control at run time. Paths to the executables are passed by
   dune through environment variables (see test/dune). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let exe name =
  match Sys.getenv_opt ("CLI_" ^ String.uppercase_ascii name) with
  | Some p -> p
  | None -> Alcotest.failf "CLI_%s not set" (String.uppercase_ascii name)

let tmpdir = Filename.get_temp_dir_name ()

let path name = Filename.concat tmpdir ("cli_test_" ^ name)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* Run a command, capture stdout, return (exit code, stdout). *)
let run_cmd args =
  let out = path "stdout.txt" in
  let cmd =
    String.concat " " (List.map Filename.quote args)
    ^ " > " ^ Filename.quote out ^ " 2> " ^ Filename.quote (path "stderr.txt")
  in
  let code = Sys.command cmd in
  let stdout = In_channel.with_open_text out In_channel.input_all in
  (code, stdout)

let source =
  {|
var total;

fun square(x) { return x * x; }

fun helper(x) {
  var i;
  var s = 0;
  for (i = 0; i < 25; i = i + 1) { s = s + square(x + i); }
  return s;
}

fun main() {
  var k;
  for (k = 0; k < 4000; k = k + 1) { total = total + helper(k); }
  print(total);
  return 0;
}
|}

let write_source () =
  let src = path "prog.mini" in
  Out_channel.with_open_text src (fun oc -> Out_channel.output_string oc source);
  src

let test_compile_run_analyze () =
  let src = write_source () in
  let obj = path "prog.obj" and gmon = path "prog.gmon" in
  let counts = path "prog.counts" and icount = path "prog.icount" in
  let code, _ =
    run_cmd [ exe "minic"; src; "--pg"; "-p"; "-o"; obj ]
  in
  check_int "minic exits 0" 0 code;
  check_bool "object file written" true (Sys.file_exists obj);
  let code, out =
    run_cmd
      [ exe "minirun"; obj; "--gmon"; gmon; "--prof-out"; counts;
        "--icount"; icount ]
  in
  check_int "minirun exits 0" 0 code;
  check_bool "program output printed" true (String.length (String.trim out) > 0);
  check_bool "gmon written" true (Sys.file_exists gmon);
  (* gprofx: full listing with annotation *)
  let code, out =
    run_cmd
      [ exe "gprofx"; obj; gmon; "--annotate"; src; "--icount"; icount; "-v" ]
  in
  check_int "gprofx exits 0" 0 code;
  List.iter
    (fun needle -> check_bool needle true (contains ~needle out))
    [ "call graph profile"; "flat profile"; "helper"; "index by function name";
      "executions"; "% time" ];
  (* profx over the same data *)
  let code, out = run_cmd [ exe "profx"; obj; gmon; counts ] in
  check_int "profx exits 0" 0 code;
  check_bool "prof shows calls" true (contains ~needle:"4000" out)

let test_multirun_merge_cli () =
  let src = write_source () in
  let obj = path "prog.obj" in
  ignore (run_cmd [ exe "minic"; src; "--pg"; "-o"; obj ]);
  let g1 = path "r1.gmon" and g2 = path "r2.gmon" in
  ignore (run_cmd [ exe "minirun"; obj; "--gmon"; g1; "-q"; "--seed"; "1" ]);
  ignore (run_cmd [ exe "minirun"; obj; "--gmon"; g2; "-q"; "--seed"; "2" ]);
  let code, out = run_cmd [ exe "gprofx"; obj; g1; g2; "--flat" ] in
  check_int "summed analysis exits 0" 0 code;
  (* two identical runs: the merged total is twice a single run's *)
  let single = Result.get_ok (Gmon.load g1) in
  let merged_seconds =
    2.0 *. Gmon.total_seconds single
  in
  check_bool "flat mentions helper" true (contains ~needle:"helper" out);
  check_bool "merged time doubled" true
    (contains ~needle:(Printf.sprintf "%.2f" merged_seconds) out)

let test_profdiff_cli () =
  let src = write_source () in
  let obj_a = path "a.obj" and obj_b = path "b.obj" in
  ignore (run_cmd [ exe "minic"; src; "--pg"; "-o"; obj_a ]);
  ignore (run_cmd [ exe "minic"; src; "--pg"; "--inline"; "square"; "-o"; obj_b ]);
  let ga = path "a.gmon" and gb = path "b.gmon" in
  ignore (run_cmd [ exe "minirun"; obj_a; "--gmon"; ga; "-q" ]);
  ignore (run_cmd [ exe "minirun"; obj_b; "--gmon"; gb; "-q" ]);
  let code, out = run_cmd [ exe "profdiff"; obj_a; ga; obj_b; gb ] in
  check_int "profdiff exits 0" 0 code;
  check_bool "square reported gone" true (contains ~needle:"[gone]" out);
  check_bool "total improved" true (contains ~needle:"profile diff" out)

let test_kgmonx_cli () =
  let src = write_source () in
  let obj = path "prog.obj" in
  ignore (run_cmd [ exe "minic"; src; "--pg"; "-o"; obj ]);
  let w1 = path "w1.gmon" and w2 = path "w2.gmon" in
  let code, _ =
    run_cmd
      [ exe "kgmonx"; obj;
        Printf.sprintf "off; run 400000; on; run 1500000; dump %s; reset; run-to-end; dump %s"
          w1 w2;
        "-q" ]
  in
  check_int "kgmonx exits 0" 0 code;
  let g1 = Result.get_ok (Gmon.load w1) in
  let g2 = Result.get_ok (Gmon.load w2) in
  check_bool "first window gathered while on" true (Gmon.total_ticks g1 > 0);
  check_bool "second window disjoint and nonempty" true (Gmon.total_ticks g2 > 0)

let test_obs_flags () =
  let src = write_source () in
  let obj = path "prog.obj" and gmon = path "prog.gmon" in
  ignore (run_cmd [ exe "minic"; src; "--pg"; "-o"; obj ]);
  let vm_metrics = path "vm_metrics.json" in
  let code, _ =
    run_cmd
      [ exe "minirun"; obj; "--gmon"; gmon; "-q"; "--obs-metrics"; vm_metrics ]
  in
  check_int "minirun --obs-metrics exits 0" 0 code;
  let vm_json = In_channel.with_open_text vm_metrics In_channel.input_all in
  List.iter
    (fun needle -> check_bool needle true (contains ~needle vm_json))
    [ "\"gauges\"";       (* registry structure *)
      "\"vm.instructions\""; "\"vm.dispatch.call\""; (* the machine *)
      "\"monitor.records\""; "\"monitor.probe_depth\""; (* mcount *)
      "\"profil.ticks\"";   (* the histogram sampler *)
      "\"gmon.bytes_written\"" (* the codec *) ];
  let metrics = path "gprofx_metrics.json" and trace = path "gprofx_trace.json" in
  let code, _ =
    run_cmd
      [ exe "gprofx"; obj; gmon; "--obs-metrics"; metrics; "--obs-trace"; trace ]
  in
  check_int "gprofx --obs-* exits 0" 0 code;
  let trace_json = In_channel.with_open_text trace In_channel.input_all in
  List.iter
    (fun needle -> check_bool needle true (contains ~needle trace_json))
    [ "\"traceEvents\":["; "\"ph\":\"X\"";
      "\"name\":\"symtab\""; "\"name\":\"arcgraph\""; "\"name\":\"propagate\"";
      "\"name\":\"flat\""; "\"name\":\"gmon-load\"" ];
  check_bool "gprofx metrics mention the gmon codec" true
    (contains ~needle:"\"gmon.bytes_read\""
       (In_channel.with_open_text metrics In_channel.input_all));
  (* --self-profile prints the span summary on stdout after the report. *)
  let code, out = run_cmd [ exe "gprofx"; obj; gmon; "--flat"; "--self-profile" ] in
  check_int "gprofx --self-profile exits 0" 0 code;
  check_bool "self-profile table printed" true
    (contains ~needle:"gprofx self-profile" out && contains ~needle:"analyze" out)

let stderr_text () =
  In_channel.with_open_text (path "stderr.txt") In_channel.input_all

let test_robust_cli () =
  let src = write_source () in
  let obj = path "prog.obj" in
  ignore (run_cmd [ exe "minic"; src; "--pg"; "-o"; obj ]);
  let g1 = path "c1.gmon" and g2 = path "c2.gmon" in
  ignore (run_cmd [ exe "minirun"; obj; "--gmon"; g1; "-q"; "--seed"; "1" ]);
  ignore (run_cmd [ exe "minirun"; obj; "--gmon"; g2; "-q"; "--seed"; "2" ]);
  (* a torn copy (valid header, truncated data) and an undecodable one *)
  let torn = path "torn.gmon" and junk = path "junk.gmon" in
  let bytes = In_channel.with_open_bin g1 In_channel.input_all in
  Out_channel.with_open_bin torn (fun oc ->
      Out_channel.output_string oc (String.sub bytes 0 150));
  Out_channel.with_open_text junk (fun oc ->
      Out_channel.output_string oc "this is not profile data");
  (* strict (the default): the torn file fails the whole run, with an
     offset-bearing diagnostic *)
  let code, _ = run_cmd [ exe "gprofx"; obj; g1; torn; "--flat" ] in
  check_int "strict run exits 1" 1 code;
  check_bool "strict error names the file and offset" true
    (let err = stderr_text () in
     contains ~needle:"torn.gmon" err && contains ~needle:"at byte" err);
  (* lenient: the batch degrades instead of failing — salvage the torn
     file, quarantine the undecodable one, and say so *)
  let code, out =
    run_cmd [ exe "gprofx"; obj; g1; torn; g2; junk; "--lenient"; "--flat" ]
  in
  check_int "lenient run exits 2 (degraded)" 2 code;
  check_bool "listing still produced" true (contains ~needle:"helper" out);
  let err = stderr_text () in
  check_bool "quarantine reported per file" true
    (contains ~needle:"quarantined" err && contains ~needle:"junk.gmon" err);
  check_bool "salvage reported per file" true
    (contains ~needle:"salvaged" err && contains ~needle:"torn.gmon" err);
  (* clean data under --lenient is not degraded *)
  let code, _ = run_cmd [ exe "gprofx"; obj; g1; g2; "--lenient"; "--flat" ] in
  check_int "lenient over clean data exits 0" 0 code;
  (* emission-side injection: a VM fault still flushes a loadable
     profile; a torn save fails loudly and leaves a rejectable file *)
  let gf = path "faulted.gmon" in
  let code, _ =
    run_cmd [ exe "minirun"; obj; "--gmon"; gf; "-q"; "--fault-after"; "200000" ]
  in
  check_int "injected VM fault exits 125" 125 code;
  check_bool "fault reported" true (contains ~needle:"fault injected" (stderr_text ()));
  (match Gmon.load gf with
  | Ok g -> check_bool "flushed profile is nonempty" true (Gmon.total_ticks g > 0)
  | Error e -> Alcotest.fail e);
  let gt = path "tornsave.gmon" in
  let code, _ =
    run_cmd [ exe "minirun"; obj; "--gmon"; gt; "-q"; "--torn-save"; "50" ]
  in
  check_int "torn save exits 1" 1 code;
  check_bool "torn save reported" true
    (contains ~needle:"fault injected" (stderr_text ()));
  match Gmon.load gt with
  | Error e -> check_bool "torn file rejected with offset" true (contains ~needle:"at byte" e)
  | Ok _ -> Alcotest.fail "torn file loaded"

let test_epoch_cli () =
  let src = write_source () in
  let obj = path "prog.obj" and gmon = path "prog.gmon" in
  let epochs = path "prog.epochs" in
  ignore (run_cmd [ exe "minic"; src; "--pg"; "-o"; obj ]);
  let code, _ =
    run_cmd
      [ exe "minirun"; obj; "--gmon"; gmon; "--epoch-ticks"; "8";
        "--epochs"; epochs; "-q" ]
  in
  check_int "minirun --epoch-ticks exits 0" 0 code;
  check_bool "epoch container written" true (Sys.file_exists epochs);
  check_bool "epoch count reported" true
    (contains ~needle:"epoch(s) written" (stderr_text ()));
  (* the container's sum is bit-identical to the whole-run profile *)
  let c = Result.get_ok (Gmon.Epoch.load epochs) in
  check_bool "several epochs recorded" true (Gmon.Epoch.n_epochs c > 1);
  let whole = Result.get_ok (Gmon.load gmon) in
  let summed = Result.get_ok (Gmon.Epoch.sum c) in
  check_bool "sum of epochs is bit-identical to the run profile" true
    (Gmon.to_bytes summed = Gmon.to_bytes whole);
  (* gprofx accepts the container wherever a gmon file goes: the
     analysis of the summed container matches the plain profile's *)
  let _, flat_gmon = run_cmd [ exe "gprofx"; obj; gmon; "--flat" ] in
  let code, flat_epochs = run_cmd [ exe "gprofx"; obj; epochs; "--flat" ] in
  check_int "gprofx over the container exits 0" 0 code;
  check_bool "same flat profile from either file" true (flat_gmon = flat_epochs);
  (* single-window selection *)
  let code, out = run_cmd [ exe "gprofx"; obj; epochs; "--epoch"; "1"; "--flat" ] in
  check_int "--epoch 1 exits 0" 0 code;
  check_bool "window listing mentions a routine" true (contains ~needle:"helper" out);
  let code, _ = run_cmd [ exe "gprofx"; obj; epochs; "--epoch"; "999"; "--flat" ] in
  check_int "--epoch out of range exits 1" 1 code;
  let code, _ = run_cmd [ exe "gprofx"; obj; gmon; "--epoch"; "1"; "--flat" ] in
  check_int "--epoch on a plain profile exits 1" 1 code;
  (* the timeline digest *)
  let code, out = run_cmd [ exe "gprofx"; obj; epochs; "--timeline" ] in
  check_int "--timeline exits 0" 0 code;
  check_bool "digest header" true (contains ~needle:"timeline:" out);
  check_bool "windows listed" true (contains ~needle:"epoch 1 " out);
  let code, _ = run_cmd [ exe "gprofx"; obj; gmon; "--timeline" ] in
  check_int "--timeline rejects a plain profile" 1 code

let test_export_formats_cli () =
  let src = write_source () in
  let obj = path "prog.obj" and gmon = path "prog.gmon" in
  ignore (run_cmd [ exe "minic"; src; "--pg"; "-o"; obj ]);
  ignore (run_cmd [ exe "minirun"; obj; "--gmon"; gmon; "-q" ]);
  let code, out = run_cmd [ exe "gprofx"; obj; gmon; "--format"; "flame" ] in
  check_int "flame exits 0" 0 code;
  check_bool "folded stack line" true (contains ~needle:"main;helper;square " out);
  let code, out = run_cmd [ exe "gprofx"; obj; gmon; "--format"; "callgrind" ] in
  check_int "callgrind exits 0" 0 code;
  check_bool "callgrind header" true (contains ~needle:"# callgrind format" out);
  check_bool "callgrind events" true (contains ~needle:"events: ticks" out);
  check_bool "callgrind fn record" true (contains ~needle:"fn=helper" out);
  let code, out = run_cmd [ exe "gprofx"; obj; gmon; "--format"; "json" ] in
  check_int "json exits 0" 0 code;
  check_bool "schema tag" true (contains ~needle:"\"gprof-repro.report/1\"" out);
  check_bool "flat rows" true (contains ~needle:"\"flat\":[{" out);
  let code, _ = run_cmd [ exe "gprofx"; obj; gmon; "--format"; "nonsense" ] in
  check_bool "unknown format rejected" true (code <> 0)

let test_lenient_flags_cli () =
  let src = write_source () in
  let obj = path "prog.obj" in
  ignore (run_cmd [ exe "minic"; src; "--pg"; "-p"; "-o"; obj ]);
  let g = path "l1.gmon" and counts = path "l1.counts" in
  ignore (run_cmd [ exe "minirun"; obj; "--gmon"; g; "--prof-out"; counts; "-q" ]);
  let torn = path "l_torn.gmon" in
  let bytes = In_channel.with_open_bin g In_channel.input_all in
  Out_channel.with_open_bin torn (fun oc ->
      Out_channel.output_string oc (String.sub bytes 0 150));
  (* profx: strict rejects the torn file, lenient degrades to exit 2 *)
  let code, _ = run_cmd [ exe "profx"; obj; torn; counts ] in
  check_int "profx strict exits 1" 1 code;
  let code, out = run_cmd [ exe "profx"; obj; torn; counts; "--lenient" ] in
  check_int "profx lenient exits 2" 2 code;
  check_bool "profx salvage reported" true
    (contains ~needle:"salvaged" (stderr_text ()));
  check_bool "profx listing still printed" true (contains ~needle:"name" out);
  let code, _ = run_cmd [ exe "profx"; obj; g; counts; "--lenient" ] in
  check_int "profx lenient over clean data exits 0" 0 code;
  (* profdiff: same ladder *)
  let code, _ = run_cmd [ exe "profdiff"; obj; g; obj; torn ] in
  check_int "profdiff strict exits 1" 1 code;
  let code, out = run_cmd [ exe "profdiff"; obj; g; obj; torn; "--lenient" ] in
  check_int "profdiff lenient exits 2" 2 code;
  check_bool "profdiff salvage reported" true
    (contains ~needle:"salvaged" (stderr_text ()));
  check_bool "profdiff still diffs" true (contains ~needle:"profile diff" out);
  let code, _ = run_cmd [ exe "profdiff"; obj; g; obj; g; "--lenient" ] in
  check_int "profdiff lenient over clean data exits 0" 0 code

(* The same program with a 4x hotter helper loop: the regression
   profwatch must flag. *)
let slow_source =
  {|
var total;

fun square(x) { return x * x; }

fun helper(x) {
  var i;
  var s = 0;
  for (i = 0; i < 100; i = i + 1) { s = s + square(x + i); }
  return s;
}

fun main() {
  var k;
  for (k = 0; k < 4000; k = k + 1) { total = total + helper(k); }
  print(total);
  return 0;
}
|}

let rec rm_rf p =
  if Sys.is_directory p then begin
    Array.iter (fun f -> rm_rf (Filename.concat p f)) (Sys.readdir p);
    Sys.rmdir p
  end
  else Sys.remove p

let test_profwatch_cli () =
  let src = write_source () in
  let slow_src = path "slow.mini" in
  Out_channel.with_open_text slow_src (fun oc ->
      Out_channel.output_string oc slow_source);
  let fast_obj = path "watch_fast.obj" and slow_obj = path "watch_slow.obj" in
  ignore (run_cmd [ exe "minic"; src; "--pg"; "-o"; fast_obj ]);
  ignore (run_cmd [ exe "minic"; slow_src; "--pg"; "-o"; slow_obj ]);
  let steady = path "watch_steady" and hot = path "watch_hot" in
  List.iter (fun d -> if Sys.file_exists d then rm_rf d) [ steady; hot ];
  Sys.mkdir steady 0o755;
  Sys.mkdir hot 0o755;
  (* steady: two runs of the same build *)
  ignore
    (run_cmd
       [ exe "minirun"; fast_obj; "--gmon";
         Filename.concat steady "run-001.gmon"; "-q"; "--seed"; "1" ]);
  ignore
    (run_cmd
       [ exe "minirun"; fast_obj; "--gmon";
         Filename.concat steady "run-002.gmon"; "-q"; "--seed"; "2" ]);
  let code, out = run_cmd [ exe "profwatch"; fast_obj; steady ] in
  check_int "steady sequence exits 0" 0 code;
  check_bool "steady reported" true (contains ~needle:"steady" out);
  (* regression: the second run is the slower build, found through its
     sibling .obj file *)
  ignore
    (run_cmd
       [ exe "minirun"; fast_obj; "--gmon";
         Filename.concat hot "run-001.gmon"; "-q" ]);
  let hot_obj = Filename.concat hot "run-002.obj" in
  let copy a b =
    Out_channel.with_open_bin b (fun oc ->
        Out_channel.output_string oc (In_channel.with_open_bin a In_channel.input_all))
  in
  copy slow_obj hot_obj;
  ignore
    (run_cmd
       [ exe "minirun"; hot_obj; "--gmon";
         Filename.concat hot "run-002.gmon"; "-q" ]);
  let code, out = run_cmd [ exe "profwatch"; fast_obj; hot ] in
  check_int "regression exits 2" 2 code;
  check_bool "helper flagged" true
    (contains ~needle:"regression: helper" out);
  (* a tighter absolute floor can silence it *)
  let code, _ =
    run_cmd [ exe "profwatch"; fast_obj; hot; "--min-seconds"; "1000" ]
  in
  check_int "policy floor silences the gate" 0 code;
  (* an epoch container in the watch directory expands into windows *)
  let epochs_dir = path "watch_epochs" in
  if Sys.file_exists epochs_dir then rm_rf epochs_dir;
  Sys.mkdir epochs_dir 0o755;
  ignore
    (run_cmd
       [ exe "minirun"; fast_obj; "--gmon"; Filename.concat epochs_dir "r.gmon";
         "--epoch-ticks"; "8"; "--epochs";
         Filename.concat epochs_dir "r.epochs"; "-q" ]);
  let code, _ =
    run_cmd
      [ exe "profwatch"; fast_obj; epochs_dir; "--min-seconds"; "1000" ]
  in
  check_int "epoch windows scanned without error" 0 code;
  check_bool "window points counted" true
    (contains ~needle:"profile point(s)" (stderr_text ()))

(* An indirect call whose candidate set has no arity match: legal to
   run, but the known-callee pass should warn and --werror should
   refuse to ship it. *)
let warn_source =
  {|
var h;

fun one(a) { return a; }

fun main() {
  h = one;
  print(h(1, 2));
  return 0;
}
|}

let test_lint_cli () =
  let src = write_source () in
  let obj = path "prog.obj" and gmon = path "prog.gmon" in
  ignore (run_cmd [ exe "minic"; src; "--pg"; "-o"; obj ]);
  ignore (run_cmd [ exe "minirun"; obj; "--gmon"; gmon; "-q" ]);
  (* an intact profile lints clean, strict or not *)
  let code, out = run_cmd [ exe "proflint"; obj; gmon ] in
  check_int "proflint over a clean run exits 0" 0 code;
  check_bool "summary line" true (contains ~needle:"proflint: 0 error(s)" out);
  (* the binary alone can be linted *)
  let code, _ = run_cmd [ exe "proflint"; obj ] in
  check_int "binary-only lint exits 0" 0 code;
  (* the built-in Figure 4 fixture is clean by construction *)
  let code, out = run_cmd [ exe "proflint"; "--figure4" ] in
  check_int "figure4 lints clean" 0 code;
  check_bool "figure4 roots are spontaneous" true
    (contains ~needle:"arc-spontaneous" out);
  (* a profile from a different binary is full of lies *)
  let slow_src = path "lintslow.mini" in
  Out_channel.with_open_text slow_src (fun oc ->
      Out_channel.output_string oc slow_source);
  let other_obj = path "lintother.obj" in
  ignore (run_cmd [ exe "minic"; slow_src; "-o"; other_obj ]);
  let code, _ = run_cmd [ exe "proflint"; other_obj; gmon ] in
  check_int "mismatched binary/profile exits 2" 2 code;
  (* an undecodable profile is an operational failure, not a finding *)
  let junk = path "lintjunk.gmon" in
  Out_channel.with_open_text junk (fun oc ->
      Out_channel.output_string oc "not a profile");
  let code, _ = run_cmd [ exe "proflint"; obj; junk ] in
  check_int "undecodable profile exits 1" 1 code;
  (* gprofx --lint replaces the listings with the lint report *)
  let code, out = run_cmd [ exe "gprofx"; obj; gmon; "--lint" ] in
  check_int "gprofx --lint exits 0" 0 code;
  check_bool "gprofx --lint prints the lint summary" true
    (contains ~needle:"proflint:" out);
  check_bool "no listings in lint mode" true
    (not (contains ~needle:"call graph profile" out))

let test_werror_cli () =
  let src = path "warny.mini" in
  Out_channel.with_open_text src (fun oc ->
      Out_channel.output_string oc warn_source);
  let obj = path "warny.obj" in
  let code, _ = run_cmd [ exe "minic"; src; "-o"; obj ] in
  check_int "warnings alone do not fail the build" 0 code;
  check_bool "warning printed to stderr" true
    (contains ~needle:"no possible callee of h takes 2 arguments"
       (stderr_text ()));
  let code, _ = run_cmd [ exe "minic"; src; "-o"; obj; "--werror" ] in
  check_int "--werror promotes to failure" 1 code;
  check_bool "promotion reported" true
    (contains ~needle:"promoted to errors" (stderr_text ()));
  (* a warning-free program is unaffected *)
  let clean = write_source () in
  let code, _ = run_cmd [ exe "minic"; clean; "-o"; obj; "--werror" ] in
  check_int "clean program passes --werror" 0 code

(* The aggregation daemon, driven over its real socket: submit (good
   and corrupt), survive kill -9, recover on restart, and end up
   byte-equivalent to an offline merge of the same runs. *)
let test_profd_cli () =
  let src = write_source () in
  let obj = path "prog.obj" in
  ignore (run_cmd [ exe "minic"; src; "--pg"; "-o"; obj ]);
  let g1 = path "d1.gmon" and g2 = path "d2.gmon" and g3 = path "d3.gmon" in
  ignore (run_cmd [ exe "minirun"; obj; "--gmon"; g1; "-q"; "--seed"; "1" ]);
  ignore (run_cmd [ exe "minirun"; obj; "--gmon"; g2; "-q"; "--seed"; "2" ]);
  ignore (run_cmd [ exe "minirun"; obj; "--gmon"; g3; "-q"; "--seed"; "3" ]);
  let junk = path "djunk.gmon" in
  Out_channel.with_open_text junk (fun oc ->
      Out_channel.output_string oc "not profile data");
  let sock = path "profd.sock" and store = path "profd_store" in
  if Sys.file_exists store then rm_rf store;
  let pidfile = path "profd.pid" and serve_log = path "profd_serve.log" in
  let start () =
    let cmd =
      Printf.sprintf "%s --serve --socket %s --store %s --batch 2 2>> %s & echo $! > %s"
        (Filename.quote (exe "profd")) (Filename.quote sock)
        (Filename.quote store) (Filename.quote serve_log)
        (Filename.quote pidfile)
    in
    check_int "daemon starts" 0 (Sys.command cmd);
    let code, _ =
      run_cmd [ exe "profd"; "--socket"; sock; "--wait"; "--timeout"; "30" ]
    in
    check_int "daemon ready" 0 code
  in
  Out_channel.with_open_text serve_log (fun _ -> ());
  start ();
  (* two good submissions fill the batch and flush; a corrupt one is
     quarantined, acknowledged, and turns the client's exit into 2 *)
  let code, _ = run_cmd [ exe "profd"; "--socket"; sock; "--submit"; g1; g2 ] in
  check_int "good submissions exit 0" 0 code;
  let code, out = run_cmd [ exe "profd"; "--socket"; sock; "--submit"; junk ] in
  check_int "corrupt submission exits 2" 2 code;
  check_bool "quarantine acknowledged with a reason" true
    (contains ~needle:"quarantined" out);
  (* kill -9: no shutdown handler runs; the store must come back *)
  check_int "kill -9" 0
    (Sys.command (Printf.sprintf "kill -9 $(cat %s)" (Filename.quote pidfile)));
  start ();
  check_bool "restart reports recovery" true
    (contains ~needle:"recovered"
       (In_channel.with_open_text serve_log In_channel.input_all));
  (* a fleet member ships its run straight from minirun *)
  let code, _ =
    run_cmd
      [ exe "minirun"; obj; "--submit"; sock; "--submit-label"; "prog";
        "--gmon"; g3; "-q"; "--seed"; "3" ]
  in
  check_int "minirun --submit exits 0" 0 code;
  let code, _ =
    run_cmd [ exe "profd"; "--socket"; sock; "--flush"; "--compact" ]
  in
  check_int "flush + compact exit 0" 0 code;
  let code, out =
    run_cmd [ exe "profd"; "--socket"; sock; "--query"; "top"; "--top-n"; "3" ]
  in
  check_int "query top exits 0" 0 code;
  check_bool "top rows printed" true (String.length (String.trim out) > 0);
  let code, out = run_cmd [ exe "profd"; "--socket"; sock; "--query"; "stats" ] in
  check_int "query stats exits 0" 0 code;
  check_bool "stats counts the quarantine" true
    (contains ~needle:"\"quarantined\":1" out);
  check_bool "stats counts every run" true
    (contains ~needle:"\"total_runs\":3" out);
  (* the equivalence gate: the daemon-built, compacted, recovered store
     serves exactly what an offline merge of the same runs produces *)
  let daemon_gmon = path "daemon.gmon" and offline_gmon = path "offline.gmon" in
  let code, _ =
    run_cmd
      [ exe "profd"; "--socket"; sock; "--query"; "report"; "--out"; daemon_gmon ]
  in
  check_int "query report exits 0" 0 code;
  let code, _ =
    run_cmd [ exe "profd"; "--merge-offline"; offline_gmon; g1; g2; g3 ]
  in
  check_int "offline merge exits 0" 0 code;
  let d = Result.get_ok (Gmon.load daemon_gmon) in
  let o = Result.get_ok (Gmon.load offline_gmon) in
  check_bool "daemon report = offline merge_all" true (Gmon.equal d o);
  (* gprofx can read the store directly, without the daemon *)
  let code, _ = run_cmd [ exe "profd"; "--socket"; sock; "--shutdown" ] in
  check_int "shutdown exits 0" 0 code;
  Unix.sleepf 0.3;
  let code, out = run_cmd [ exe "gprofx"; obj; "--store"; store; "--flat" ] in
  check_int "gprofx --store exits 0" 0 code;
  check_bool "store-backed listing" true (contains ~needle:"helper" out)

(* The live-telemetry loop end to end: a daemon with --telemetry-out
   and --log, watched by proftop (--once --json), its metrics snapshots
   subtracted offline (--diff), and its telemetry series verified
   (--telemetry). *)
let test_proftop_cli () =
  let src = write_source () in
  let obj = path "tele.obj" in
  ignore (run_cmd [ exe "minic"; src; "--pg"; "-o"; obj ]);
  let g1 = path "t1.gmon" in
  ignore (run_cmd [ exe "minirun"; obj; "--gmon"; g1; "-q"; "--seed"; "1" ]);
  let sock = path "tele.sock" and store = path "tele_store" in
  if Sys.file_exists store then rm_rf store;
  let tele = path "tele.jsonl" and events = path "tele_events.jsonl" in
  List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ tele; events ];
  let pidfile = path "tele.pid" in
  let cmd =
    Printf.sprintf
      "%s --serve --socket %s --store %s --batch 1 --telemetry-out %s \
       --telemetry-interval 0.1 --log %s 2> /dev/null & echo $! > %s"
      (Filename.quote (exe "profd")) (Filename.quote sock)
      (Filename.quote store) (Filename.quote tele) (Filename.quote events)
      (Filename.quote pidfile)
  in
  check_int "daemon starts" 0 (Sys.command cmd);
  let code, _ =
    run_cmd [ exe "profd"; "--socket"; sock; "--wait"; "--timeout"; "30" ]
  in
  check_int "daemon ready" 0 code;
  (* snapshot A — then two known RPCs — snapshot B *)
  let a = path "tele_a.json" and b = path "tele_b.json" in
  let save p body =
    Out_channel.with_open_text p (fun oc -> Out_channel.output_string oc body)
  in
  let code, out =
    run_cmd [ exe "proftop"; "--socket"; sock; "--once"; "--json" ]
  in
  check_int "first snapshot exits 0" 0 code;
  save a out;
  ignore (run_cmd [ exe "profd"; "--socket"; sock; "--submit"; g1 ]);
  ignore (run_cmd [ exe "profd"; "--socket"; sock; "--query"; "stats" ]);
  let code, snap =
    run_cmd [ exe "proftop"; "--socket"; sock; "--once"; "--json" ]
  in
  check_int "second snapshot exits 0" 0 code;
  save b snap;
  check_bool "health carried" true (contains ~needle:"\"version\"" snap);
  check_bool "submit latency histogram present" true
    (contains ~needle:"profd.rpc.submit.latency" snap);
  check_bool "derived quantiles present" true
    (contains ~needle:"\"p99_us\"" snap);
  check_bool "byte accounting present" true
    (contains ~needle:"profd.bytes.read" snap);
  (* the delta between the snapshots is exactly the traffic between
     them: health(A) + submit + stats + metrics(B) = 4 requests *)
  let code, out = run_cmd [ exe "proftop"; "--diff"; a; b ] in
  check_int "diff exits 0" 0 code;
  check_bool "request delta is exact" true
    (contains ~needle:"\"profd.requests\":4" out);
  check_bool "submit delta is exact" true
    (contains ~needle:"\"ingest.submitted\":1" out);
  (* a human frame renders against the live daemon too *)
  let code, out = run_cmd [ exe "proftop"; "--socket"; sock; "--once" ] in
  check_int "plain frame exits 0" 0 code;
  check_bool "frame shows the rpc table" true (contains ~needle:"submit" out);
  let code, _ = run_cmd [ exe "profd"; "--socket"; sock; "--shutdown" ] in
  check_int "shutdown exits 0" 0 code;
  Unix.sleepf 0.3;
  (* the event log is structured JSONL with the lifecycle in order *)
  let ev = In_channel.with_open_text events In_channel.input_all in
  check_bool "serve.start logged" true (contains ~needle:"\"event\":\"serve.start\"" ev);
  check_bool "drain logged" true (contains ~needle:"\"event\":\"draining\"" ev);
  check_bool "records carry seqs" true (contains ~needle:"\"seq\":0" ev);
  (* the telemetry series verifies: checksums, seq, monotonic counters *)
  let code, out = run_cmd [ exe "proftop"; "--telemetry"; tele; "--json" ] in
  check_int "telemetry verifies" 0 code;
  check_bool "verification says ok" true (contains ~needle:"\"ok\":true" out);
  check_bool "no damaged lines" true (contains ~needle:"\"damaged\":0" out);
  (* --obs-trace parity: the client dumps a Chrome trace on exit *)
  let trace = path "tele_trace.json" in
  let code, _ =
    run_cmd
      [ exe "profd"; "--merge-offline"; path "tele_off.gmon"; g1;
        "--obs-trace"; trace ]
  in
  check_int "client with --obs-trace exits 0" 0 code;
  check_bool "chrome trace written" true
    (contains ~needle:"traceEvents"
       (In_channel.with_open_text trace In_channel.input_all))

let test_bad_inputs_fail_cleanly () =
  let code, _ = run_cmd [ exe "minic"; path "nonexistent.mini" ] in
  check_bool "minic rejects missing file" true (code <> 0);
  let bad = path "bad.mini" in
  Out_channel.with_open_text bad (fun oc ->
      Out_channel.output_string oc "fun main( { return 0; }");
  let code, _ = run_cmd [ exe "minic"; bad ] in
  check_bool "minic rejects syntax errors" true (code <> 0);
  let src = write_source () in
  let obj = path "prog.obj" in
  ignore (run_cmd [ exe "minic"; src; "--pg"; "-o"; obj ]);
  let code, _ = run_cmd [ exe "gprofx"; obj; src ] in
  (* a source file is not a gmon file *)
  check_bool "gprofx rejects non-gmon data" true (code <> 0)

let () =
  Alcotest.run "cli"
    [
      ( "pipeline",
        [
          Alcotest.test_case "compile/run/analyze" `Slow test_compile_run_analyze;
          Alcotest.test_case "multi-run summing" `Slow test_multirun_merge_cli;
          Alcotest.test_case "profdiff" `Slow test_profdiff_cli;
          Alcotest.test_case "kgmonx" `Slow test_kgmonx_cli;
          Alcotest.test_case "observability flags" `Slow test_obs_flags;
          Alcotest.test_case "fault tolerance" `Slow test_robust_cli;
          Alcotest.test_case "epoch timeline" `Slow test_epoch_cli;
          Alcotest.test_case "export formats" `Slow test_export_formats_cli;
          Alcotest.test_case "lenient flags" `Slow test_lenient_flags_cli;
          Alcotest.test_case "profwatch" `Slow test_profwatch_cli;
          Alcotest.test_case "proflint" `Slow test_lint_cli;
          Alcotest.test_case "minic --werror" `Slow test_werror_cli;
          Alcotest.test_case "profd daemon" `Slow test_profd_cli;
          Alcotest.test_case "proftop telemetry" `Slow test_proftop_cli;
          Alcotest.test_case "bad inputs" `Slow test_bad_inputs_fail_cleanly;
        ] );
    ]
