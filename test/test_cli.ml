(* End-to-end tests of the command-line tools, driving the real
   binaries the way a user would: compile, run, post-process, diff,
   and control at run time. Paths to the executables are passed by
   dune through environment variables (see test/dune). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let exe name =
  match Sys.getenv_opt ("CLI_" ^ String.uppercase_ascii name) with
  | Some p -> p
  | None -> Alcotest.failf "CLI_%s not set" (String.uppercase_ascii name)

let tmpdir = Filename.get_temp_dir_name ()

let path name = Filename.concat tmpdir ("cli_test_" ^ name)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* Run a command, capture stdout, return (exit code, stdout). *)
let run_cmd args =
  let out = path "stdout.txt" in
  let cmd =
    String.concat " " (List.map Filename.quote args)
    ^ " > " ^ Filename.quote out ^ " 2> " ^ Filename.quote (path "stderr.txt")
  in
  let code = Sys.command cmd in
  let stdout = In_channel.with_open_text out In_channel.input_all in
  (code, stdout)

let source =
  {|
var total;

fun square(x) { return x * x; }

fun helper(x) {
  var i;
  var s = 0;
  for (i = 0; i < 25; i = i + 1) { s = s + square(x + i); }
  return s;
}

fun main() {
  var k;
  for (k = 0; k < 4000; k = k + 1) { total = total + helper(k); }
  print(total);
  return 0;
}
|}

let write_source () =
  let src = path "prog.mini" in
  Out_channel.with_open_text src (fun oc -> Out_channel.output_string oc source);
  src

let test_compile_run_analyze () =
  let src = write_source () in
  let obj = path "prog.obj" and gmon = path "prog.gmon" in
  let counts = path "prog.counts" and icount = path "prog.icount" in
  let code, _ =
    run_cmd [ exe "minic"; src; "--pg"; "-p"; "-o"; obj ]
  in
  check_int "minic exits 0" 0 code;
  check_bool "object file written" true (Sys.file_exists obj);
  let code, out =
    run_cmd
      [ exe "minirun"; obj; "--gmon"; gmon; "--prof-out"; counts;
        "--icount"; icount ]
  in
  check_int "minirun exits 0" 0 code;
  check_bool "program output printed" true (String.length (String.trim out) > 0);
  check_bool "gmon written" true (Sys.file_exists gmon);
  (* gprofx: full listing with annotation *)
  let code, out =
    run_cmd
      [ exe "gprofx"; obj; gmon; "--annotate"; src; "--icount"; icount; "-v" ]
  in
  check_int "gprofx exits 0" 0 code;
  List.iter
    (fun needle -> check_bool needle true (contains ~needle out))
    [ "call graph profile"; "flat profile"; "helper"; "index by function name";
      "executions"; "% time" ];
  (* profx over the same data *)
  let code, out = run_cmd [ exe "profx"; obj; gmon; counts ] in
  check_int "profx exits 0" 0 code;
  check_bool "prof shows calls" true (contains ~needle:"4000" out)

let test_multirun_merge_cli () =
  let src = write_source () in
  let obj = path "prog.obj" in
  ignore (run_cmd [ exe "minic"; src; "--pg"; "-o"; obj ]);
  let g1 = path "r1.gmon" and g2 = path "r2.gmon" in
  ignore (run_cmd [ exe "minirun"; obj; "--gmon"; g1; "-q"; "--seed"; "1" ]);
  ignore (run_cmd [ exe "minirun"; obj; "--gmon"; g2; "-q"; "--seed"; "2" ]);
  let code, out = run_cmd [ exe "gprofx"; obj; g1; g2; "--flat" ] in
  check_int "summed analysis exits 0" 0 code;
  (* two identical runs: the merged total is twice a single run's *)
  let single = Result.get_ok (Gmon.load g1) in
  let merged_seconds =
    2.0 *. Gmon.total_seconds single
  in
  check_bool "flat mentions helper" true (contains ~needle:"helper" out);
  check_bool "merged time doubled" true
    (contains ~needle:(Printf.sprintf "%.2f" merged_seconds) out)

let test_profdiff_cli () =
  let src = write_source () in
  let obj_a = path "a.obj" and obj_b = path "b.obj" in
  ignore (run_cmd [ exe "minic"; src; "--pg"; "-o"; obj_a ]);
  ignore (run_cmd [ exe "minic"; src; "--pg"; "--inline"; "square"; "-o"; obj_b ]);
  let ga = path "a.gmon" and gb = path "b.gmon" in
  ignore (run_cmd [ exe "minirun"; obj_a; "--gmon"; ga; "-q" ]);
  ignore (run_cmd [ exe "minirun"; obj_b; "--gmon"; gb; "-q" ]);
  let code, out = run_cmd [ exe "profdiff"; obj_a; ga; obj_b; gb ] in
  check_int "profdiff exits 0" 0 code;
  check_bool "square reported gone" true (contains ~needle:"[gone]" out);
  check_bool "total improved" true (contains ~needle:"profile diff" out)

let test_kgmonx_cli () =
  let src = write_source () in
  let obj = path "prog.obj" in
  ignore (run_cmd [ exe "minic"; src; "--pg"; "-o"; obj ]);
  let w1 = path "w1.gmon" and w2 = path "w2.gmon" in
  let code, _ =
    run_cmd
      [ exe "kgmonx"; obj;
        Printf.sprintf "off; run 400000; on; run 1500000; dump %s; reset; run-to-end; dump %s"
          w1 w2;
        "-q" ]
  in
  check_int "kgmonx exits 0" 0 code;
  let g1 = Result.get_ok (Gmon.load w1) in
  let g2 = Result.get_ok (Gmon.load w2) in
  check_bool "first window gathered while on" true (Gmon.total_ticks g1 > 0);
  check_bool "second window disjoint and nonempty" true (Gmon.total_ticks g2 > 0)

let test_obs_flags () =
  let src = write_source () in
  let obj = path "prog.obj" and gmon = path "prog.gmon" in
  ignore (run_cmd [ exe "minic"; src; "--pg"; "-o"; obj ]);
  let vm_metrics = path "vm_metrics.json" in
  let code, _ =
    run_cmd
      [ exe "minirun"; obj; "--gmon"; gmon; "-q"; "--obs-metrics"; vm_metrics ]
  in
  check_int "minirun --obs-metrics exits 0" 0 code;
  let vm_json = In_channel.with_open_text vm_metrics In_channel.input_all in
  List.iter
    (fun needle -> check_bool needle true (contains ~needle vm_json))
    [ "\"gauges\"";       (* registry structure *)
      "\"vm.instructions\""; "\"vm.dispatch.call\""; (* the machine *)
      "\"monitor.records\""; "\"monitor.probe_depth\""; (* mcount *)
      "\"profil.ticks\"";   (* the histogram sampler *)
      "\"gmon.bytes_written\"" (* the codec *) ];
  let metrics = path "gprofx_metrics.json" and trace = path "gprofx_trace.json" in
  let code, _ =
    run_cmd
      [ exe "gprofx"; obj; gmon; "--obs-metrics"; metrics; "--obs-trace"; trace ]
  in
  check_int "gprofx --obs-* exits 0" 0 code;
  let trace_json = In_channel.with_open_text trace In_channel.input_all in
  List.iter
    (fun needle -> check_bool needle true (contains ~needle trace_json))
    [ "\"traceEvents\":["; "\"ph\":\"X\"";
      "\"name\":\"symtab\""; "\"name\":\"arcgraph\""; "\"name\":\"propagate\"";
      "\"name\":\"flat\""; "\"name\":\"gmon-load\"" ];
  check_bool "gprofx metrics mention the gmon codec" true
    (contains ~needle:"\"gmon.bytes_read\""
       (In_channel.with_open_text metrics In_channel.input_all));
  (* --self-profile prints the span summary on stdout after the report. *)
  let code, out = run_cmd [ exe "gprofx"; obj; gmon; "--flat"; "--self-profile" ] in
  check_int "gprofx --self-profile exits 0" 0 code;
  check_bool "self-profile table printed" true
    (contains ~needle:"gprofx self-profile" out && contains ~needle:"analyze" out)

let stderr_text () =
  In_channel.with_open_text (path "stderr.txt") In_channel.input_all

let test_robust_cli () =
  let src = write_source () in
  let obj = path "prog.obj" in
  ignore (run_cmd [ exe "minic"; src; "--pg"; "-o"; obj ]);
  let g1 = path "c1.gmon" and g2 = path "c2.gmon" in
  ignore (run_cmd [ exe "minirun"; obj; "--gmon"; g1; "-q"; "--seed"; "1" ]);
  ignore (run_cmd [ exe "minirun"; obj; "--gmon"; g2; "-q"; "--seed"; "2" ]);
  (* a torn copy (valid header, truncated data) and an undecodable one *)
  let torn = path "torn.gmon" and junk = path "junk.gmon" in
  let bytes = In_channel.with_open_bin g1 In_channel.input_all in
  Out_channel.with_open_bin torn (fun oc ->
      Out_channel.output_string oc (String.sub bytes 0 150));
  Out_channel.with_open_text junk (fun oc ->
      Out_channel.output_string oc "this is not profile data");
  (* strict (the default): the torn file fails the whole run, with an
     offset-bearing diagnostic *)
  let code, _ = run_cmd [ exe "gprofx"; obj; g1; torn; "--flat" ] in
  check_int "strict run exits 1" 1 code;
  check_bool "strict error names the file and offset" true
    (let err = stderr_text () in
     contains ~needle:"torn.gmon" err && contains ~needle:"at byte" err);
  (* lenient: the batch degrades instead of failing — salvage the torn
     file, quarantine the undecodable one, and say so *)
  let code, out =
    run_cmd [ exe "gprofx"; obj; g1; torn; g2; junk; "--lenient"; "--flat" ]
  in
  check_int "lenient run exits 2 (degraded)" 2 code;
  check_bool "listing still produced" true (contains ~needle:"helper" out);
  let err = stderr_text () in
  check_bool "quarantine reported per file" true
    (contains ~needle:"quarantined" err && contains ~needle:"junk.gmon" err);
  check_bool "salvage reported per file" true
    (contains ~needle:"salvaged" err && contains ~needle:"torn.gmon" err);
  (* clean data under --lenient is not degraded *)
  let code, _ = run_cmd [ exe "gprofx"; obj; g1; g2; "--lenient"; "--flat" ] in
  check_int "lenient over clean data exits 0" 0 code;
  (* emission-side injection: a VM fault still flushes a loadable
     profile; a torn save fails loudly and leaves a rejectable file *)
  let gf = path "faulted.gmon" in
  let code, _ =
    run_cmd [ exe "minirun"; obj; "--gmon"; gf; "-q"; "--fault-after"; "200000" ]
  in
  check_int "injected VM fault exits 125" 125 code;
  check_bool "fault reported" true (contains ~needle:"fault injected" (stderr_text ()));
  (match Gmon.load gf with
  | Ok g -> check_bool "flushed profile is nonempty" true (Gmon.total_ticks g > 0)
  | Error e -> Alcotest.fail e);
  let gt = path "tornsave.gmon" in
  let code, _ =
    run_cmd [ exe "minirun"; obj; "--gmon"; gt; "-q"; "--torn-save"; "50" ]
  in
  check_int "torn save exits 1" 1 code;
  check_bool "torn save reported" true
    (contains ~needle:"fault injected" (stderr_text ()));
  match Gmon.load gt with
  | Error e -> check_bool "torn file rejected with offset" true (contains ~needle:"at byte" e)
  | Ok _ -> Alcotest.fail "torn file loaded"

let test_bad_inputs_fail_cleanly () =
  let code, _ = run_cmd [ exe "minic"; path "nonexistent.mini" ] in
  check_bool "minic rejects missing file" true (code <> 0);
  let bad = path "bad.mini" in
  Out_channel.with_open_text bad (fun oc ->
      Out_channel.output_string oc "fun main( { return 0; }");
  let code, _ = run_cmd [ exe "minic"; bad ] in
  check_bool "minic rejects syntax errors" true (code <> 0);
  let src = write_source () in
  let obj = path "prog.obj" in
  ignore (run_cmd [ exe "minic"; src; "--pg"; "-o"; obj ]);
  let code, _ = run_cmd [ exe "gprofx"; obj; src ] in
  (* a source file is not a gmon file *)
  check_bool "gprofx rejects non-gmon data" true (code <> 0)

let () =
  Alcotest.run "cli"
    [
      ( "pipeline",
        [
          Alcotest.test_case "compile/run/analyze" `Slow test_compile_run_analyze;
          Alcotest.test_case "multi-run summing" `Slow test_multirun_merge_cli;
          Alcotest.test_case "profdiff" `Slow test_profdiff_cli;
          Alcotest.test_case "kgmonx" `Slow test_kgmonx_cli;
          Alcotest.test_case "observability flags" `Slow test_obs_flags;
          Alcotest.test_case "fault tolerance" `Slow test_robust_cli;
          Alcotest.test_case "bad inputs" `Slow test_bad_inputs_fail_cleanly;
        ] );
    ]
