(* The profile timeline: the VM's epoch engine and the epoch container
   codec. The load-bearing invariant is exactness — summing the
   per-epoch deltas must reproduce the whole-run profile bit for bit —
   plus the usual codec guarantees: strict round-trips are the
   identity, and salvage recovers a valid prefix of whole epochs. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let run_with_epochs ?(program = Workloads.Programs.matrix) every =
  let config = { Vm.Machine.default_config with epoch_ticks = Some every } in
  match Workloads.Driver.run ~config program with
  | Error e -> Alcotest.fail e
  | Ok r -> (
    match Vm.Machine.epochs r.machine with
    | None -> Alcotest.fail "epoch engine not enabled"
    | Some c -> (r, c))

(* --- the engine ----------------------------------------------------- *)

let test_sum_identity () =
  List.iter
    (fun every ->
      List.iter
        (fun program ->
          let r, c = run_with_epochs ~program every in
          check_bool
            (Printf.sprintf "%s every %d: container validates"
               program.Workloads.Programs.w_name every)
            true
            (Gmon.Epoch.validate c = Ok ());
          match Gmon.Epoch.sum c with
          | Error e -> Alcotest.fail e
          | Ok s ->
            check_bool
              (Printf.sprintf "%s every %d: sum is bit-identical"
                 program.Workloads.Programs.w_name every)
              true
              (Gmon.to_bytes s = Gmon.to_bytes r.gmon))
        [ Workloads.Programs.matrix; Workloads.Programs.sort ])
    [ 1; 4; 7 ]

let test_boundaries () =
  let every = 5 in
  let r, c = run_with_epochs every in
  let ticks = Vm.Machine.ticks r.machine in
  check_bool "several epochs" true (Gmon.Epoch.n_epochs c > 1);
  (* every completed window ends on a multiple of the cadence; only
     the trailing partial epoch may not *)
  let rec completed = function
    | [] | [ _ ] -> true
    | (e : Gmon.Epoch.entry) :: rest ->
      e.ep_end_tick mod every = 0 && completed rest
  in
  check_bool "completed windows end on the cadence" true (completed c.e_epochs);
  let last = List.nth c.e_epochs (Gmon.Epoch.n_epochs c - 1) in
  check_int "last epoch ends at the final tick" ticks last.ep_end_tick;
  check_int "last epoch ends at the final cycle" (Vm.Machine.cycles r.machine)
    last.ep_end_cycle;
  (* per-epoch ticks sum to the run's ticks *)
  let tick_sum =
    List.fold_left
      (fun acc (e : Gmon.Epoch.entry) ->
        acc + Array.fold_left ( + ) 0 e.ep_counts)
      0 c.e_epochs
  in
  check_int "per-epoch ticks sum to the histogram total" (Gmon.total_ticks r.gmon)
    tick_sum

let test_epochs_idempotent () =
  let _, c1 = run_with_epochs 6 in
  let _, _ = run_with_epochs 6 in
  let r, _ = run_with_epochs 6 in
  (* calling epochs twice on the same halted machine gives the same
     container: the baselines are not advanced *)
  match (Vm.Machine.epochs r.machine, Vm.Machine.epochs r.machine) with
  | Some a, Some b ->
    check_bool "epochs is idempotent" true (Gmon.Epoch.equal a b);
    check_bool "deterministic across runs" true (Gmon.Epoch.equal a c1)
  | _ -> Alcotest.fail "epoch engine not enabled"

let test_nth_and_profile_of () =
  let _, c = run_with_epochs 4 in
  let n = Gmon.Epoch.n_epochs c in
  check_bool "nth 0 rejected" true (Result.is_error (Gmon.Epoch.nth c 0));
  check_bool "nth past the end rejected" true
    (Result.is_error (Gmon.Epoch.nth c (n + 1)));
  match Gmon.Epoch.nth c 1 with
  | Error e -> Alcotest.fail e
  | Ok e ->
    let p = Gmon.Epoch.profile_of c e in
    check_bool "interval profile validates" true (Gmon.validate p = Ok ());
    check_int "interval profile is a single run" 1 p.Gmon.runs

(* --- the codec ------------------------------------------------------ *)

let test_roundtrip () =
  let _, c = run_with_epochs 3 in
  let bytes = Gmon.Epoch.to_bytes c in
  (match Gmon.Epoch.of_bytes bytes with
  | Error e -> Alcotest.fail e
  | Ok c' -> check_bool "strict decode round-trips" true (Gmon.Epoch.equal c c'));
  check_bool "sniffed as an epoch container" true (Gmon.Epoch.sniff_bytes bytes);
  check_bool "gmon files are not sniffed" false
    (Gmon.Epoch.sniff_bytes (Gmon.to_bytes (Result.get_ok (Gmon.Epoch.sum c))))

let test_save_load () =
  let _, c = run_with_epochs 3 in
  let path = Filename.concat (Filename.get_temp_dir_name ()) "epoch_test.epochs" in
  (match Gmon.Epoch.save c path with
  | Error e -> Alcotest.fail e
  | Ok () -> ());
  check_bool "file sniffs as epoch container" true (Gmon.Epoch.sniff_file path);
  (match Gmon.Epoch.load path with
  | Error e -> Alcotest.fail e
  | Ok c' -> check_bool "load round-trips" true (Gmon.Epoch.equal c c'));
  Sys.remove path

let test_salvage_truncation () =
  let _, c = run_with_epochs 3 in
  let bytes = Gmon.Epoch.to_bytes c in
  let n = Gmon.Epoch.n_epochs c in
  (* cut inside the epoch stream: strict rejects, salvage recovers a
     strict prefix of whole epochs *)
  let cut = String.length bytes - (String.length bytes / 3) in
  let torn = String.sub bytes 0 cut in
  (match Gmon.Epoch.of_bytes torn with
  | Ok _ -> Alcotest.fail "strict accepted a torn container"
  | Error e -> check_bool "strict error carries an offset" true
      (contains ~needle:"at byte" e));
  match Gmon.Epoch.decode ~mode:`Salvage torn with
  | Error e -> Alcotest.fail (Gmon.decode_error_to_string e)
  | Ok (c', rep) ->
    check_bool "salvage report degraded" true (Gmon.report_degraded rep);
    check_bool "fewer epochs survive" true (Gmon.Epoch.n_epochs c' < n);
    check_bool "salvaged container validates" true
      (Gmon.Epoch.validate c' = Ok ());
    (* the survivors are exactly a prefix of the original *)
    let rec is_prefix xs ys =
      match (xs, ys) with
      | [], _ -> true
      | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
      | _, [] -> false
    in
    check_bool "salvaged epochs are a prefix" true
      (is_prefix
         (List.map (fun (e : Gmon.Epoch.entry) -> e.ep_end_tick) c'.e_epochs)
         (List.map (fun (e : Gmon.Epoch.entry) -> e.ep_end_tick) c.e_epochs))

let test_salvage_checksum () =
  let _, c = run_with_epochs 3 in
  let bytes = Bytes.of_string (Gmon.Epoch.to_bytes c) in
  (* flip a bit in the last epoch's arc region, keeping the footer *)
  let pos = Bytes.length bytes - 30 in
  Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 1));
  let s = Bytes.to_string bytes in
  (match Gmon.Epoch.of_bytes s with
  | Ok _ -> Alcotest.fail "strict accepted a checksum mismatch"
  | Error _ -> ());
  match Gmon.Epoch.decode ~mode:`Salvage s with
  | Error _ -> () (* the flip may corrupt the stream unrecoverably *)
  | Ok (c', rep) ->
    check_bool "mismatch recorded" true (rep.Gmon.r_checksum = `Mismatch);
    check_bool "salvaged container validates" true
      (Gmon.Epoch.validate c' = Ok ())

(* --- properties ----------------------------------------------------- *)

let container_gen =
  QCheck.Gen.(
    let entry_gen ~nb ~prev_cycle ~prev_tick =
      let* dc = int_range 0 10_000 in
      let* dt = int_range 0 50 in
      let* counts = array_size (return nb) (int_range 0 5) in
      let* arc_keys =
        list_size (int_range 0 6) (pair (int_range 0 63) (int_range 0 63))
      in
      let keys = List.sort_uniq compare arc_keys in
      let* counts_for_arcs =
        list_size (return (List.length keys)) (int_range 0 100)
      in
      let arcs =
        List.map2
          (fun (f, s) c -> { Gmon.a_from = f; a_self = s; a_count = c })
          keys counts_for_arcs
      in
      return
        ({ Gmon.Epoch.ep_end_cycle = prev_cycle + dc;
           ep_end_tick = prev_tick + dt; ep_counts = counts; ep_arcs = arcs },
         (prev_cycle + dc, prev_tick + dt))
    in
    let* bucket_size = int_range 1 4 in
    let* lowpc = int_range 0 8 in
    let* span = int_range 1 32 in
    let highpc = lowpc + span in
    let nb = Gmon.n_buckets ~lowpc ~highpc ~bucket_size in
    let* n = int_range 0 6 in
    let rec epochs k prev_cycle prev_tick acc =
      if k = 0 then return (List.rev acc)
      else
        let* e, (pc, pt) = entry_gen ~nb ~prev_cycle ~prev_tick in
        epochs (k - 1) pc pt (e :: acc)
    in
    let* es = epochs n 0 0 [] in
    return
      {
        Gmon.Epoch.e_lowpc = lowpc;
        e_highpc = highpc;
        e_bucket_size = bucket_size;
        e_ticks_per_second = 60;
        e_cycles_per_tick = 16_666;
        e_epochs = es;
      })

let prop_roundtrip_identity =
  QCheck.Test.make ~name:"epoch codec: decode . encode = identity" ~count:300
    (QCheck.make container_gen)
    (fun c ->
      match Gmon.Epoch.of_bytes (Gmon.Epoch.to_bytes c) with
      | Ok c' -> Gmon.Epoch.equal c c'
      | Error _ -> false)

let prop_salvage_total =
  QCheck.Test.make
    ~name:"epoch salvage: truncated containers never raise; Ok validates"
    ~count:300
    QCheck.(pair (make container_gen) (int_range 0 2000))
    (fun (c, cut_seed) ->
      let bytes = Gmon.Epoch.to_bytes c in
      let cut = cut_seed mod (String.length bytes + 1) in
      let torn = String.sub bytes 0 cut in
      match Gmon.Epoch.decode ~mode:`Salvage torn with
      | Error _ -> true
      | Ok (c', _) -> Gmon.Epoch.validate c' = Ok ())

let prop_sum_equals_merge_of_intervals =
  QCheck.Test.make
    ~name:"epoch sum = merging every interval profile (runs forced to 1)"
    ~count:100 (QCheck.make container_gen)
    (fun c ->
      match c.Gmon.Epoch.e_epochs with
      | [] -> true
      | es -> (
        let profiles = List.map (Gmon.Epoch.profile_of c) es in
        match (Gmon.Epoch.sum c, Gmon.merge_all profiles) with
        | Ok s, Ok m -> Gmon.equal s { m with Gmon.runs = 1 }
        | _ -> false))

let () =
  Alcotest.run "epoch"
    [
      ( "engine",
        [
          Alcotest.test_case "sum reproduces the whole-run profile" `Slow
            test_sum_identity;
          Alcotest.test_case "boundary bookkeeping" `Quick test_boundaries;
          Alcotest.test_case "idempotent and deterministic" `Quick
            test_epochs_idempotent;
          Alcotest.test_case "nth / profile_of" `Quick test_nth_and_profile_of;
        ] );
      ( "codec",
        [
          Alcotest.test_case "round-trip" `Quick test_roundtrip;
          Alcotest.test_case "save / load" `Quick test_save_load;
          Alcotest.test_case "salvage: truncation" `Quick test_salvage_truncation;
          Alcotest.test_case "salvage: checksum flip" `Quick test_salvage_checksum;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_roundtrip_identity; prop_salvage_total;
            prop_sum_equals_merge_of_intervals;
          ] );
    ]
