(** The virtual machine.

    Executes an {!Objcode.Objfile.t} with a per-instruction cycle cost
    model. The cycle counter drives a simulated wall clock: every
    [cycles_per_tick] cycles a clock tick fires, sampling the program
    counter into the {!Profil} histogram (and, when configured, the
    whole call stack into the {!Stacksamp} collector) — the simulated
    equivalent of the paper's 1/60-second hardware clock interrupts.

    Instrumentation costs are charged to the running program: the
    monitor's hash work on every [Mcount], and the stack walk on
    sampled ticks. An uninstrumented binary therefore runs measurably
    faster, which is how the paper's overhead claim is reproduced
    rather than assumed.

    The {!profiling_on}/{!profiling_off}/{!reset_profile}/{!profile}
    quartet is the "programmer's interface to control the profiler"
    that the retrospective added for kernel profiling: the profile of
    a long-running program can be extracted, reset, and toggled
    without stopping execution ({!run_cycles} runs bounded slices). *)

type config = {
  cycles_per_tick : int;
  ticks_per_second : int;
      (** together these define simulated time; defaults give a 60 Hz
          clock over a 1 MHz machine *)
  hist_bucket_size : int;  (** histogram granularity; 1 = one-to-one *)
  keying : Monitor.keying;
  histogram : bool;  (** PC histogram enabled at start *)
  monitoring : bool;  (** arc recording enabled at start *)
  oracle : bool;  (** exact-timing ground truth (no cycle cost) *)
  stack_interval : int option;
      (** sample complete call stacks every k ticks *)
  stack_capacity : int option;
      (** distinct-stack bound for the interning sample buffer;
          [None] = the sampler's default (4096) *)
  count_instructions : bool;
      (** keep an exact per-address execution count (drives the
          annotated-source listing); free of simulated-cycle cost,
          like a hardware trace unit *)
  metrics : bool;
      (** maintain the self-observability counters (instructions
          executed, dispatch-group breakdown); free of simulated-cycle
          cost, and cheap enough in host time to leave on (bench
          [t-obs] measures the overhead) *)
  tick_jitter : float;
      (** 0 = strictly periodic ticks; q > 0 randomizes each interval
          uniformly within ±q/2 of its length, modelling an imperfect
          clock *)
  seed : int;  (** PRNG seed for [rand] and jitter *)
  max_cycles : int option;  (** fault when exceeded; None = unlimited *)
  max_depth : int;  (** call-stack depth limit *)
  fault_after_instr : int option;
      (** fault injection: abort with {!injected_fault_reason} after
          executing N instructions, simulating a program killed
          mid-run — the normal way to produce the partial profiles the
          salvage decoder must tolerate *)
  epoch_ticks : int option;
      (** snapshot the live profile counters every N clock ticks,
          recording each window's delta as one epoch of a
          {!Gmon.Epoch} timeline container ({!epochs}); host-time
          only, free of simulated-cycle cost (bench [t-timeline]
          bounds the overhead) *)
}

val default_config : config
(** 16666 cycles/tick, 60 ticks/s, bucket size 1, [Site_primary],
    histogram, monitoring, and metrics on, no oracle, no stack
    sampling, no jitter, seed 1, max_cycles [None], depth 100000. *)

type fault = { fault_pc : int; reason : string }

val injected_fault_reason : string
(** The [reason] of a fault produced by [fault_after_instr], so
    drivers can distinguish deliberate crashes from real ones. *)

val pp_fault : Format.formatter -> fault -> unit

type status = Running | Halted | Faulted of fault

type t

val create : ?config:config -> Objcode.Objfile.t -> t

val obj : t -> Objcode.Objfile.t

val step : t -> status
(** Execute one instruction (and any clock ticks it completes). *)

val run : t -> status
(** Run until halt or fault. *)

val run_cycles : t -> int -> status
(** [run_cycles m n] runs until at least [n] more cycles have elapsed
    (or halt/fault). Returns [Running] if the budget expired. *)

val status : t -> status

val cycles : t -> int

val ticks : t -> int

val output : t -> string
(** Everything the program printed so far. *)

val result : t -> int option
(** [main]'s return value once halted normally. *)

val pcounts : t -> int array
(** The prof-style per-function counters, indexed by symbol id. *)

val instruction_counts : t -> int array option
(** Exact execution count per text address, when
    [count_instructions] was configured. *)

val call_stack : t -> int array
(** Entry addresses of the live frames, root first. *)

val monitor : t -> Monitor.t

val mcount_cycles : t -> int
(** Total cycles charged by the monitoring routine so far. *)

val instructions_executed : t -> int
(** Instructions dispatched so far; 0 when [metrics] is off. *)

val dispatch_counts : t -> (string * int) list
(** Execution count per {!Objcode.Instr.group}, as
    [(group name, count)] in group order; all zero when [metrics] is
    off. *)

val observe : t -> Obs.Metrics.t -> unit
(** Publish the machine's execution metrics ([vm.*]) and its
    monitor's ([monitor.*]) and histogram's ([profil.*]) into a
    registry. *)

val the_oracle : t -> Oracle.t option

val sampler : t -> Stacksamp.t option

val stack_folded : t -> (int array * int) list
(** The interned call-stack samples as [(stack, count)] in the
    sampler's canonical order; [[]] when sampling is off. *)

val sprof : t -> Gmon.Sprof.t option
(** Condense the interned sample buffer to a sampled-profile
    container at this machine's clock rates; [None] when sampling is
    off. Usable mid-run and after a fault, like {!profile}. *)

val profiling_on : t -> unit

val profiling_off : t -> unit

val reset_profile : t -> unit
(** Zero the histogram, the arc table, and the per-function
    counters. *)

val profile : t -> Gmon.t
(** Snapshot the current histogram and arc table as a profile data
    record ([runs = 1]); usable mid-run. *)

val epochs : t -> Gmon.Epoch.t option
(** The timeline gathered so far, when [epoch_ticks] was configured:
    one epoch per completed window plus, when any data accrued after
    the last boundary, a trailing partial epoch. Usable mid-run and
    idempotent (the engine's baselines are not advanced). Summing the
    epochs reproduces {!profile} exactly. *)
