(** The program-counter histogram — profil(2).

    "the operating system can provide a histogram of the location of
    the program counter at the end of each clock tick … The histogram
    is assembled in memory as the program runs." The granularity is a
    scale: with [bucket_size = 1] "program counter values map
    one-to-one onto the histogram" (the paper's configuration); larger
    bucket sizes trade memory for attribution precision (the
    retrospective's 16-bit-era compromise, measured by bench
    [t-gran]). *)

type t

val create : lowpc:int -> highpc:int -> bucket_size:int -> t
(** Zeroed, enabled histogram over [\[lowpc, highpc)]. *)

val enabled : t -> bool

val enable : t -> unit

val disable : t -> unit

val sample : t -> pc:int -> unit
(** Record one clock tick observed at [pc]. No-op when disabled; a
    [pc] outside the covered range is not counted but is tallied in
    {!overflow}. *)

val ticks : t -> int
(** Total ticks recorded since creation/reset. *)

val overflow : t -> int
(** Ticks observed while enabled whose pc fell outside the covered
    range — the histogram-overflow the paper's profil(2) silently
    drops. *)

val collisions : t -> int
(** Ticks that landed in a bucket previously hit by a {e different}
    address: the attribution ambiguity introduced by bucket sizes
    greater than one. Always 0 when [bucket_size = 1]. *)

val observe : t -> Obs.Metrics.t -> unit
(** Publish ticks, overflow, collisions, and bucket occupancy into a
    registry under [profil.*]. *)

val hist : t -> Gmon.hist
(** Snapshot (the counts array is copied). *)

val reset : t -> unit
