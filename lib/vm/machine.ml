module Instr = Objcode.Instr
module Objfile = Objcode.Objfile

type config = {
  cycles_per_tick : int;
  ticks_per_second : int;
  hist_bucket_size : int;
  keying : Monitor.keying;
  histogram : bool;
  monitoring : bool;
  oracle : bool;
  stack_interval : int option;
  stack_capacity : int option;
  count_instructions : bool;
  metrics : bool;
  tick_jitter : float;
  seed : int;
  max_cycles : int option;
  max_depth : int;
  fault_after_instr : int option;
  epoch_ticks : int option;
}

let default_config =
  {
    cycles_per_tick = 16_666;
    ticks_per_second = 60;
    hist_bucket_size = 1;
    keying = Monitor.Site_primary;
    histogram = true;
    monitoring = true;
    oracle = false;
    stack_interval = None;
    stack_capacity = None;
    count_instructions = false;
    metrics = true;
    tick_jitter = 0.0;
    seed = 1;
    max_cycles = None;
    max_depth = 100_000;
    fault_after_instr = None;
    epoch_ticks = None;
  }

let injected_fault_reason = "fault injected: instruction budget exhausted"

type fault = { fault_pc : int; reason : string }

let pp_fault ppf f = Format.fprintf ppf "fault at pc %d: %s" f.fault_pc f.reason

type status = Running | Halted | Faulted of fault

type frame = {
  ret_pc : int;
  func_entry : int;
  base : int; (* operand stack height when the frame was pushed *)
  mutable locals : int array;
}

(* The epoch engine: cumulative counter values at the last boundary,
   against which each window's delta is computed. Baselines and
   entries live outside simulated time — taking a snapshot costs the
   running program nothing, like the metrics counters. *)
type epoch_state = {
  ep_every : int;
  mutable ep_base_counts : int array;
  mutable ep_base_arcs : Gmon.arc list;
  mutable ep_entries : Gmon.Epoch.entry list; (* newest first *)
}

type t = {
  config : config;
  o : Objfile.t;
  mutable pc : int;
  stack : int Util.Growvec.t;
  frames : frame Util.Growvec.t;
  globals : int array;
  arrays : int array array;
  mutable cycles : int;
  mutable next_tick : int;
  mutable n_ticks : int;
  profil : Profil.t;
  monitor : Monitor.t;
  mutable monitoring : bool;
  mutable mcount_cycles : int;
  pcounts : int array;
  oracle : Oracle.t option;
  sampler : Stacksamp.t option;
  icounts : int array option;
  mutable n_instr : int;
  dispatch : int array; (* per Instr.group execution counts *)
  groups : int array;
      (* Instr.group of every text word, precomputed at creation so
         the metrics-on hot path is two array bumps, not a re-match of
         the constructor per step. Empty when metrics are off. *)
  prng : Util.Prng.t;
  out : Buffer.t;
  mutable status : status;
  mutable result : int option;
  mutable fault_countdown : int option;
      (* decremented per instruction independently of the metrics
         counters, so injection works with metrics off *)
  epochs : epoch_state option;
}

let dummy_frame = { ret_pc = -1; func_entry = 0; base = 0; locals = [||] }

let create ?(config = default_config) o =
  let text_size = Array.length o.Objfile.text in
  if text_size = 0 then invalid_arg "Machine.create: empty text segment";
  let profil =
    Profil.create ~lowpc:0 ~highpc:text_size ~bucket_size:config.hist_bucket_size
  in
  if not config.histogram then Profil.disable profil;
  let m =
    {
      config;
      o;
      pc = o.entry;
      stack = Util.Growvec.create ~capacity:256 ~dummy:0 ();
      frames = Util.Growvec.create ~capacity:64 ~dummy:dummy_frame ();
      globals = Array.copy o.global_init;
      arrays = Array.map (fun (_, len) -> Array.make len 0) o.arrays;
      cycles = 0;
      next_tick = config.cycles_per_tick;
      n_ticks = 0;
      profil;
      monitor = Monitor.create ~text_size ~keying:config.keying;
      monitoring = config.monitoring;
      mcount_cycles = 0;
      pcounts = Array.make (Array.length o.symbols) 0;
      oracle = (if config.oracle then Some (Oracle.create ()) else None);
      sampler =
        Option.map
          (fun i ->
            Stacksamp.create ?capacity:config.stack_capacity ~interval:i ())
          config.stack_interval;
      icounts =
        (if config.count_instructions then Some (Array.make text_size 0) else None);
      n_instr = 0;
      dispatch = Array.make Instr.n_groups 0;
      groups =
        (if config.metrics then Array.map Instr.group o.Objfile.text else [||]);
      prng = Util.Prng.create config.seed;
      out = Buffer.create 256;
      status = Running;
      result = None;
      fault_countdown = config.fault_after_instr;
      epochs =
        (match config.epoch_ticks with
        | None -> None
        | Some n ->
          if n <= 0 then invalid_arg "Machine.create: epoch_ticks must be positive";
          Some
            {
              ep_every = n;
              ep_base_counts =
                Array.make
                  (Gmon.n_buckets ~lowpc:0 ~highpc:text_size
                     ~bucket_size:config.hist_bucket_size)
                  0;
              ep_base_arcs = [];
              ep_entries = [];
            });
    }
  in
  (* The startup stub "calls" main: a frame with a sentinel return
     address, which the monitor will classify as spontaneous. *)
  Util.Growvec.push m.frames
    { ret_pc = -1; func_entry = o.entry; base = 0; locals = [||] };
  (match m.oracle with
  | Some orc -> Oracle.on_call orc ~site:(-1) ~callee:o.entry ~now:0
  | None -> ());
  m

let obj m = m.o
let status m = m.status
let cycles m = m.cycles
let ticks m = m.n_ticks
let output m = Buffer.contents m.out
let result m = m.result
let pcounts m = Array.copy m.pcounts

let instruction_counts m = Option.map Array.copy m.icounts
let monitor m = m.monitor
let mcount_cycles m = m.mcount_cycles
let the_oracle m = m.oracle

let instructions_executed m = m.n_instr

let dispatch_counts m =
  Array.to_list (Array.mapi (fun g n -> (Instr.group_name g, n)) m.dispatch)

let observe m reg =
  let module M = Obs.Metrics in
  let g name v = M.set (M.gauge reg name) v in
  g "vm.instructions" m.n_instr;
  g "vm.cycles" m.cycles;
  g "vm.ticks" m.n_ticks;
  g "vm.mcount_cycles" m.mcount_cycles;
  g "vm.stack_depth" (Util.Growvec.length m.stack);
  g "vm.frame_depth" (Util.Growvec.length m.frames);
  Array.iteri
    (fun grp n -> if n > 0 then g ("vm.dispatch." ^ Instr.group_name grp) n)
    m.dispatch;
  Option.iter (fun s -> Stacksamp.observe s reg) m.sampler;
  Monitor.observe m.monitor reg;
  Profil.observe m.profil reg

let call_stack m =
  Array.init (Util.Growvec.length m.frames) (fun i ->
      (Util.Growvec.get m.frames i).func_entry)

let sampler m = m.sampler

let stack_folded m =
  match m.sampler with Some s -> Stacksamp.folded s | None -> []

let sprof m =
  Option.map
    (fun s ->
      Gmon.Sprof.of_folded ~sample_interval:(Stacksamp.interval s)
        ~ticks_per_second:m.config.ticks_per_second
        ~cycles_per_tick:m.config.cycles_per_tick (Stacksamp.folded s))
    m.sampler

let profiling_on m =
  m.monitoring <- true;
  Profil.enable m.profil

let profiling_off m =
  m.monitoring <- false;
  Profil.disable m.profil

let reset_profile m =
  Profil.reset m.profil;
  Monitor.reset m.monitor;
  Array.fill m.pcounts 0 (Array.length m.pcounts) 0;
  Option.iter Stacksamp.reset m.sampler;
  (* The cumulative counters just went to zero, so the deltas restart
     from zero too; epochs already recorded describe real history and
     are kept. *)
  Option.iter
    (fun es ->
      Array.fill es.ep_base_counts 0 (Array.length es.ep_base_counts) 0;
      es.ep_base_arcs <- [])
    m.epochs

let profile m =
  {
    Gmon.hist = Profil.hist m.profil;
    arcs = Monitor.arcs m.monitor;
    ticks_per_second = m.config.ticks_per_second;
    cycles_per_tick = m.config.cycles_per_tick;
    runs = 1;
  }

(* --- the epoch engine ----------------------------------------------- *)

(* Subtract two sorted cumulative arc lists: [cur] extends [prev]
   (counters only grow between boundaries), so every key of [prev]
   appears in [cur]. Arcs whose count did not move are omitted. *)
let arc_delta ~prev ~cur =
  let rec go prev cur acc =
    match (prev, cur) with
    | _, [] -> List.rev acc
    | [], c :: cs -> go [] cs (if c.Gmon.a_count <> 0 then c :: acc else acc)
    | p :: ps, c :: cs ->
      let k =
        compare (c.Gmon.a_from, c.Gmon.a_self) (p.Gmon.a_from, p.Gmon.a_self)
      in
      if k = 0 then begin
        let d = c.Gmon.a_count - p.Gmon.a_count in
        go ps cs (if d <> 0 then { c with Gmon.a_count = d } :: acc else acc)
      end
      else if k < 0 then go (p :: ps) cs (c :: acc)
      else (* a key vanished: counters were reset; start over *) go ps (c :: cs) acc
  in
  go prev cur []

(* The window's delta against the baselines, as an epoch entry ending
   now. Does not advance the baselines. *)
let epoch_delta_of m es ~cur_counts ~cur_arcs =
  {
    Gmon.Epoch.ep_end_cycle = m.cycles;
    ep_end_tick = m.n_ticks;
    ep_counts = Array.mapi (fun i c -> c - es.ep_base_counts.(i)) cur_counts;
    ep_arcs = arc_delta ~prev:es.ep_base_arcs ~cur:cur_arcs;
  }

let epoch_delta m es =
  epoch_delta_of m es
    ~cur_counts:(Profil.hist m.profil).Gmon.h_counts
    ~cur_arcs:(Monitor.arcs m.monitor)

(* The boundary runs on the tick path, so the monitor walk and the
   histogram copy happen exactly once: the same snapshot serves as
   this window's delta input and the next window's baseline. *)
let epoch_boundary m es =
  let cur_counts = (Profil.hist m.profil).Gmon.h_counts in
  let cur_arcs = Monitor.arcs m.monitor in
  let e = epoch_delta_of m es ~cur_counts ~cur_arcs in
  es.ep_entries <- e :: es.ep_entries;
  es.ep_base_counts <- cur_counts;
  es.ep_base_arcs <- cur_arcs

let epochs m =
  Option.map
    (fun es ->
      let trailing =
        let e = epoch_delta m es in
        if
          es.ep_entries = []
          || Array.exists (fun c -> c <> 0) e.Gmon.Epoch.ep_counts
          || e.Gmon.Epoch.ep_arcs <> []
        then [ e ]
        else []
      in
      let h = Profil.hist m.profil in
      {
        Gmon.Epoch.e_lowpc = h.Gmon.h_lowpc;
        e_highpc = h.Gmon.h_highpc;
        e_bucket_size = h.Gmon.h_bucket_size;
        e_ticks_per_second = m.config.ticks_per_second;
        e_cycles_per_tick = m.config.cycles_per_tick;
        e_epochs = List.rev_append es.ep_entries trailing;
      })
    m.epochs

(* --- execution ------------------------------------------------------ *)

exception Fault of string

let fault m reason =
  let f = { fault_pc = m.pc; reason } in
  m.status <- Faulted f;
  Faulted f

let push m v = Util.Growvec.push m.stack v

let pop m =
  match Util.Growvec.pop m.stack with
  | Some v -> v
  | None -> raise (Fault "operand stack underflow")

let cur_frame m =
  match Util.Growvec.top m.frames with
  | Some f -> f
  | None -> raise (Fault "no active frame")

let next_interval m =
  let cpt = m.config.cycles_per_tick in
  if m.config.tick_jitter <= 0.0 then cpt
  else begin
    let q = m.config.tick_jitter in
    let delta = Util.Prng.float m.prng (q *. float_of_int cpt) in
    let d = int_of_float (delta -. (q *. float_of_int cpt /. 2.0)) in
    max 1 (cpt + d)
  end

(* Fire any clock ticks the last instruction completed. [at_pc] is the
   address of the instruction during which the tick landed. *)
let service_ticks m ~at_pc =
  while m.cycles >= m.next_tick do
    m.n_ticks <- m.n_ticks + 1;
    Profil.sample m.profil ~pc:at_pc;
    (match m.sampler with
    | Some s ->
      let cost = Stacksamp.on_tick s ~stack:(call_stack m) in
      m.cycles <- m.cycles + cost
    | None -> ());
    (match m.epochs with
    | Some es when m.n_ticks mod es.ep_every = 0 -> epoch_boundary m es
    | _ -> ());
    m.next_tick <- m.next_tick + next_interval m
  done

let do_call m ~target ~nargs ~ret_pc =
  if Util.Growvec.length m.frames >= m.config.max_depth then
    raise (Fault "call depth limit exceeded");
  if target < 0 || target >= Array.length m.o.Objfile.text then
    raise (Fault (Printf.sprintf "call target %d outside text" target));
  (match Objfile.func_id_of_addr m.o target with
  | Some _ -> ()
  | None -> raise (Fault (Printf.sprintf "call target %d is not a function entry" target)));
  let locals = Array.make nargs 0 in
  for i = nargs - 1 downto 0 do
    locals.(i) <- pop m
  done;
  Util.Growvec.push m.frames
    { ret_pc; func_entry = target; base = Util.Growvec.length m.stack; locals };
  (match m.oracle with
  | Some orc -> Oracle.on_call orc ~site:(ret_pc - 1) ~callee:target ~now:m.cycles
  | None -> ());
  m.pc <- target

let do_ret m =
  let value = pop m in
  match Util.Growvec.pop m.frames with
  | None -> raise (Fault "return with no active frame")
  | Some fr ->
    (match m.oracle with
    | Some orc -> Oracle.on_return orc ~now:m.cycles
    | None -> ());
    (* Reset the operand stack to the caller's height; balanced code
       leaves nothing extra, but hand-written code may. *)
    while Util.Growvec.length m.stack > fr.base do
      ignore (pop m)
    done;
    if Util.Growvec.is_empty m.frames then begin
      m.status <- Halted;
      m.result <- Some value
    end
    else begin
      push m value;
      m.pc <- fr.ret_pc
    end

let alu_apply op a b =
  match (op : Instr.alu) with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then raise (Fault "division by zero") else a / b
  | Mod -> if b = 0 then raise (Fault "division by zero") else a mod b
  | Lt -> if a < b then 1 else 0
  | Le -> if a <= b then 1 else 0
  | Gt -> if a > b then 1 else 0
  | Ge -> if a >= b then 1 else 0
  | Eq -> if a = b then 1 else 0
  | Ne -> if a <> b then 1 else 0

let step m =
  match m.status with
  | (Halted | Faulted _) as s -> s
  | Running -> (
    let text = m.o.Objfile.text in
    if m.pc < 0 || m.pc >= Array.length text then fault m "pc outside text segment"
    else begin
      let at_pc = m.pc in
      let ins = text.(m.pc) in
      try
        (match m.fault_countdown with
        | Some n when n <= 0 -> raise (Fault injected_fault_reason)
        | Some n -> m.fault_countdown <- Some (n - 1)
        | None -> ());
        (match m.icounts with
        | Some counts -> counts.(at_pc) <- counts.(at_pc) + 1
        | None -> ());
        if m.config.metrics then begin
          m.n_instr <- m.n_instr + 1;
          let grp = m.groups.(at_pc) in
          m.dispatch.(grp) <- m.dispatch.(grp) + 1
        end;
        m.cycles <- m.cycles + Instr.cost ins;
        (match m.config.max_cycles with
        | Some limit when m.cycles > limit -> raise (Fault "cycle limit exceeded")
        | _ -> ());
        (match ins with
        | Instr.Nop -> m.pc <- m.pc + 1
        | Instr.Const n ->
          push m n;
          m.pc <- m.pc + 1
        | Instr.Load slot ->
          let fr = cur_frame m in
          if slot < 0 || slot >= Array.length fr.locals then
            raise (Fault (Printf.sprintf "local slot %d out of range" slot));
          push m fr.locals.(slot);
          m.pc <- m.pc + 1
        | Instr.Store slot ->
          let fr = cur_frame m in
          if slot < 0 || slot >= Array.length fr.locals then
            raise (Fault (Printf.sprintf "local slot %d out of range" slot));
          fr.locals.(slot) <- pop m;
          m.pc <- m.pc + 1
        | Instr.Gload g ->
          if g < 0 || g >= Array.length m.globals then
            raise (Fault (Printf.sprintf "global %d out of range" g));
          push m m.globals.(g);
          m.pc <- m.pc + 1
        | Instr.Gstore g ->
          if g < 0 || g >= Array.length m.globals then
            raise (Fault (Printf.sprintf "global %d out of range" g));
          m.globals.(g) <- pop m;
          m.pc <- m.pc + 1
        | Instr.Aload a ->
          if a < 0 || a >= Array.length m.arrays then
            raise (Fault (Printf.sprintf "array %d out of range" a));
          let arr = m.arrays.(a) in
          let i = pop m in
          if i < 0 || i >= Array.length arr then
            raise
              (Fault
                 (Printf.sprintf "index %d out of bounds for %s[%d]" i
                    (fst m.o.Objfile.arrays.(a))
                    (Array.length arr)));
          push m arr.(i);
          m.pc <- m.pc + 1
        | Instr.Astore a ->
          if a < 0 || a >= Array.length m.arrays then
            raise (Fault (Printf.sprintf "array %d out of range" a));
          let arr = m.arrays.(a) in
          let v = pop m in
          let i = pop m in
          if i < 0 || i >= Array.length arr then
            raise
              (Fault
                 (Printf.sprintf "index %d out of bounds for %s[%d]" i
                    (fst m.o.Objfile.arrays.(a))
                    (Array.length arr)));
          arr.(i) <- v;
          m.pc <- m.pc + 1
        | Instr.Alu op ->
          let b = pop m in
          let a = pop m in
          push m (alu_apply op a b);
          m.pc <- m.pc + 1
        | Instr.Unop Neg ->
          push m (-pop m);
          m.pc <- m.pc + 1
        | Instr.Unop Not ->
          push m (if pop m = 0 then 1 else 0);
          m.pc <- m.pc + 1
        | Instr.Jump target -> m.pc <- target
        | Instr.Jumpz target -> if pop m = 0 then m.pc <- target else m.pc <- m.pc + 1
        | Instr.Call (target, nargs) -> do_call m ~target ~nargs ~ret_pc:(m.pc + 1)
        | Instr.Calli nargs ->
          let target = pop m in
          do_call m ~target ~nargs ~ret_pc:(m.pc + 1)
        | Instr.Funref addr ->
          push m addr;
          m.pc <- m.pc + 1
        | Instr.Enter extra ->
          let fr = cur_frame m in
          if extra < 0 then raise (Fault "negative local count");
          if extra > 0 then begin
            let bigger = Array.make (Array.length fr.locals + extra) 0 in
            Array.blit fr.locals 0 bigger 0 (Array.length fr.locals);
            fr.locals <- bigger
          end;
          m.pc <- m.pc + 1
        | Instr.Mcount ->
          if m.monitoring then begin
            let fr = cur_frame m in
            let frompc = fr.ret_pc - 1 in
            let cost = Monitor.record m.monitor ~frompc ~selfpc:fr.func_entry in
            m.cycles <- m.cycles + cost;
            m.mcount_cycles <- m.mcount_cycles + cost
          end;
          m.pc <- m.pc + 1
        | Instr.Pcount f ->
          if m.monitoring then begin
            if f < 0 || f >= Array.length m.pcounts then
              raise (Fault (Printf.sprintf "pcount id %d out of range" f));
            m.pcounts.(f) <- m.pcounts.(f) + 1
          end;
          m.pc <- m.pc + 1
        | Instr.Ret -> do_ret m
        | Instr.Pop ->
          ignore (pop m);
          m.pc <- m.pc + 1
        | Instr.Syscall sc ->
          (match sc with
          | Instr.Sys_print ->
            let v = pop m in
            Buffer.add_string m.out (string_of_int v);
            Buffer.add_char m.out '\n';
            push m v
          | Instr.Sys_putc ->
            let v = pop m in
            Buffer.add_char m.out (Char.chr (((v mod 256) + 256) mod 256));
            push m v
          | Instr.Sys_rand ->
            let bound = pop m in
            push m (if bound <= 0 then 0 else Util.Prng.int m.prng bound)
          | Instr.Sys_cycles -> push m m.cycles);
          m.pc <- m.pc + 1
        | Instr.Halt ->
          m.status <- Halted;
          m.result <- Some 0);
        service_ticks m ~at_pc;
        (match (m.status, m.oracle) with
        | Halted, Some orc -> Oracle.finish orc ~now:m.cycles
        | _ -> ());
        m.status
      with Fault reason ->
        m.pc <- at_pc;
        fault m reason
    end)

let run m =
  let rec go () = match step m with Running -> go () | s -> s in
  go ()

let run_cycles m budget =
  let stop_at = m.cycles + budget in
  let rec go () =
    if m.cycles >= stop_at then m.status
    else match step m with Running -> go () | s -> s
  in
  go ()
