(* The interning trace buffer. Storing every sample as its own array
   made memory grow with run length even though long runs revisit the
   same few hundred stacks over and over. Interning inverts that: each
   distinct stack is stored once, keyed by content, with a count of
   how many samples hit it — the folded representation every consumer
   (sprof container, flame export, stackprof) wants anyway. *)

type slot = { sl_id : int; sl_stack : int array; mutable sl_count : int }

type t = {
  interval : int;
  capacity : int;
  tbl : (int array, slot) Hashtbl.t;
  mutable next_id : int;
  mutable tick : int;
  mutable taken : int;
  mutable skipped : int;
  mutable max_depth : int;
}

(* Walking one stack frame costs about as much as a monitor hash
   probe: a couple of loads chasing the frame link. *)
let frame_walk_cost = 2

let default_capacity = 4096

(* Depths land in the process-wide registry at sample time, like the
   codec byte counters: the distribution is an event stream, not a
   snapshot. *)
let m_depth =
  Obs.Metrics.histogram Obs.Metrics.default "vm.sample.depth"
    ~help:"call-stack depth at each retained sample"

let create ?(capacity = default_capacity) ~interval () =
  if interval < 1 then invalid_arg "Stacksamp.create: interval must be >= 1";
  if capacity < 1 then invalid_arg "Stacksamp.create: capacity must be >= 1";
  {
    interval;
    capacity;
    tbl = Hashtbl.create 256;
    next_id = 0;
    tick = 0;
    taken = 0;
    skipped = 0;
    max_depth = 0;
  }

let interval t = t.interval

let capacity t = t.capacity

let on_tick t ~stack =
  t.tick <- t.tick + 1;
  if t.tick mod t.interval <> 0 then 0
  else begin
    let depth = Array.length stack in
    (match Hashtbl.find_opt t.tbl stack with
    | Some slot ->
      slot.sl_count <- slot.sl_count + 1;
      t.taken <- t.taken + 1;
      if depth > t.max_depth then t.max_depth <- depth;
      Obs.Metrics.observe m_depth depth
    | None ->
      if Hashtbl.length t.tbl >= t.capacity then
        (* The table is full and this stack is new: drop the sample
           rather than grow without bound. The walk already happened,
           so the cost below is still charged. *)
        t.skipped <- t.skipped + 1
      else begin
        let slot = { sl_id = t.next_id; sl_stack = Array.copy stack;
                     sl_count = 1 } in
        t.next_id <- t.next_id + 1;
        Hashtbl.replace t.tbl slot.sl_stack slot;
        t.taken <- t.taken + 1;
        if depth > t.max_depth then t.max_depth <- depth;
        Obs.Metrics.observe m_depth depth
      end);
    frame_walk_cost * depth
  end

let compare_stack a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la || i >= lb then compare la lb
    else
      let c = compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let folded t =
  Hashtbl.fold (fun _ s acc -> (s.sl_stack, s.sl_count) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare_stack a b)

let id_of_stack t stack =
  Option.map (fun s -> s.sl_id) (Hashtbl.find_opt t.tbl stack)

let n_samples t = t.taken

let n_skipped t = t.skipped

let n_distinct t = Hashtbl.length t.tbl

let max_depth t = t.max_depth

let observe t reg =
  let module M = Obs.Metrics in
  let g name v = M.set (M.gauge reg name) v in
  g "vm.sample.taken" t.taken;
  g "vm.sample.skipped" t.skipped;
  g "vm.sample.distinct" (Hashtbl.length t.tbl);
  g "vm.sample.capacity" t.capacity;
  g "vm.sample.occupancy_pct" (100 * Hashtbl.length t.tbl / t.capacity);
  g "vm.sample.max_depth" t.max_depth

let reset t =
  Hashtbl.reset t.tbl;
  t.next_id <- 0;
  t.tick <- 0;
  t.taken <- 0;
  t.skipped <- 0;
  t.max_depth <- 0
