(** The monitoring routine's arc table — mcount.

    "The monitoring routine maintains a table of all the arcs
    discovered, with counts of the numbers of times each is traversed
    … Our solution is to access the table through a hash table. We use
    the call site as the primary key with the callee address being the
    secondary key. … we were able to allocate enough space for the
    primary hash table to allow a one-to-one mapping from call site
    addresses to the primary hash table. Thus our hash function is
    trivial to calculate and collisions occur only for call sites that
    call multiple destinations."

    [Site_primary] is that structure: a direct-mapped [froms] array
    indexed by call-site address, each entry heading a chain of
    (callee, count) records. [Callee_primary] is the alternative the
    paper considers and rejects — callee-indexed with call sites on
    the chains, "at the expense of longer lookups" — implemented here
    so the design choice can be measured (bench [t-hash]).

    Calls whose source cannot be identified (the caller's return
    address falls outside the text segment — e.g. the startup code
    invoking [main]) are "declared spontaneous" and recorded under the
    pseudo call site {!spontaneous_from}. *)

type keying = Site_primary | Callee_primary

type t

val spontaneous_from : int
(** The pseudo call-site address ([-1]) under which anomalous
    invocations are recorded. *)

val create : text_size:int -> keying:keying -> t

val keying : t -> keying

val record : t -> frompc:int -> selfpc:int -> int
(** [record m ~frompc ~selfpc] notes one traversal of the arc and
    returns the cycle cost of the table operation (a fixed entry cost
    plus a per-chain-probe cost), which the VM charges to the running
    program — this is where the paper's "five to thirty percent
    execution overhead" comes from. [frompc] outside [\[0, text_size)]
    is recorded as spontaneous. @raise Invalid_argument if [selfpc] is
    outside the text segment. *)

val arcs : t -> Gmon.arc list
(** Condensed arc records, sorted by (from, self) — what gets written
    to the profile data file. *)

val distinct_arcs : t -> int

val total_records : t -> int
(** Number of [record] calls since creation/reset. *)

val total_probes : t -> int
(** Number of chain probes performed, for the keying ablation. *)

val max_probe : t -> int
(** Longest chain walk any single [record] performed. *)

val probe_depth_hist : t -> int array
(** Per-record probe counts bucketed as by
    {!Obs.Metrics.hist_bucket_of} (length
    {!Obs.Metrics.n_hist_buckets}); bucket 0 is the empty-chain case. *)

type chain_stats = { n_chains : int; n_cells : int; max_chain : int }

val chain_stats : t -> chain_stats
(** Walk the live table: number of non-empty chains, total records on
    them, and the longest chain. O(cells). *)

val observe : t -> Obs.Metrics.t -> unit
(** Publish records, probes, chain statistics, and the probe-depth
    histogram into a registry under [monitor.*]. *)

val reset : t -> unit
(** Clear all counts (the kernel-control "reset" operation),
    including the probe statistics. *)

val base_cost : int
val probe_cost : int
