type t = {
  shape : Gmon.hist; (* h_counts unused; retained for geometry *)
  counts : int array;
  last_pc : int array; (* last sampled pc per bucket + 1; 0 = never hit *)
  mutable enabled : bool;
  mutable ticks : int;
  mutable overflow : int;
  mutable collisions : int;
}

let create ~lowpc ~highpc ~bucket_size =
  let shape = Gmon.make_hist ~lowpc ~highpc ~bucket_size in
  {
    shape;
    counts = Array.make (Array.length shape.h_counts) 0;
    last_pc = Array.make (Array.length shape.h_counts) 0;
    enabled = true;
    ticks = 0;
    overflow = 0;
    collisions = 0;
  }

let enabled t = t.enabled
let enable t = t.enabled <- true
let disable t = t.enabled <- false

let sample t ~pc =
  if t.enabled then
    match Gmon.bucket_of_pc t.shape pc with
    | Some i ->
      t.counts.(i) <- t.counts.(i) + 1;
      t.ticks <- t.ticks + 1;
      (* A collision is a tick that lands in a bucket a *different*
         address already hit: exactly the attribution ambiguity a
         bucket size > 1 introduces. *)
      if t.last_pc.(i) <> 0 && t.last_pc.(i) <> pc + 1 then
        t.collisions <- t.collisions + 1;
      t.last_pc.(i) <- pc + 1
    | None -> t.overflow <- t.overflow + 1

let ticks t = t.ticks

let overflow t = t.overflow

let collisions t = t.collisions

let observe t reg =
  let module M = Obs.Metrics in
  let g name v = M.set (M.gauge reg name) v in
  g "profil.ticks" t.ticks;
  g "profil.overflow" t.overflow;
  g "profil.collisions" t.collisions;
  g "profil.buckets" (Array.length t.counts);
  g "profil.buckets_hit"
    (Array.fold_left (fun n c -> if c > 0 then n + 1 else n) 0 t.counts)

let hist t = { t.shape with h_counts = Array.copy t.counts }

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  Array.fill t.last_pc 0 (Array.length t.last_pc) 0;
  t.ticks <- 0;
  t.overflow <- 0;
  t.collisions <- 0
