(** Complete-call-stack sampling through an interning trace buffer.

    The retrospective: "Modern profilers solve both these problems by
    periodically gathering not just isolated program counter samples
    and isolated call graph arcs, but complete call stacks. The
    additional overhead of gathering the call stack can be hidden by
    backing off the frequency with which the call stacks are
    sampled." This collector does exactly that inside the VM: every
    [interval] clock ticks it walks the frame stack and records the
    chain of function entry addresses, root first, leaf last.

    Long runs revisit the same few hundred stacks, so the buffer
    interns: each distinct stack is hashed once to a stack id and kept
    with a sample count, giving bounded memory and the folded
    representation downstream consumers ({!Stacksample.Stackprof}, the
    sprof container, flame export) want directly. When the intern
    table is full, samples of {e new} stacks are dropped and counted
    as skipped — never mis-credited to another stack. *)

type t

val create : ?capacity:int -> interval:int -> unit -> t
(** Sample every [interval]-th clock tick ([1] = every tick), keeping
    at most [capacity] distinct stacks (default 4096).
    @raise Invalid_argument if [interval < 1] or [capacity < 1]. *)

val interval : t -> int

val capacity : t -> int

val on_tick : t -> stack:int array -> int
(** Offer the current stack (root first) on a clock tick; the sampler
    interns it if this tick is on its schedule. Returns the cycle cost
    charged for the walk (proportional to the stack depth when
    sampled, 0 when skipped by the schedule). A sample dropped because
    the intern table is full still pays the walk. *)

val folded : t -> (int array * int) list
(** The interned stacks with their sample counts, in canonical order
    (lexicographic by frame addresses, shorter stack first on a shared
    prefix). Arrays are the live interned keys — treat as read-only. *)

val id_of_stack : t -> int array -> int option
(** The intern id assigned to a stack (ids count up from 0 in first-
    seen order), or [None] if it was never retained. *)

val n_samples : t -> int
(** Samples retained (sum of all counts). *)

val n_skipped : t -> int
(** Samples dropped because the intern table was at capacity. *)

val n_distinct : t -> int

val max_depth : t -> int

val observe : t -> Obs.Metrics.t -> unit
(** Publish the [vm.sample.*] gauges (taken, skipped, distinct,
    capacity, occupancy_pct, max_depth) into a registry. Per-sample
    depths additionally stream into the [vm.sample.depth] histogram of
    the default registry as they happen. *)

val reset : t -> unit
