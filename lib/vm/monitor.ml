type keying = Site_primary | Callee_primary

let spontaneous_from = -1

(* The faithful mcount layout: [froms] is direct-mapped by the primary
   key (a text address); each entry is 0 for empty or a 1-based index
   into [tos]. A [tos] record holds the secondary key, the traversal
   count, and a 1-based link to the next record on the chain. *)
type cell = { mutable key2 : int; mutable count : int; mutable link : int }

type t = {
  keying : keying;
  text_size : int;
  froms : int array;
  tos : cell Util.Growvec.t;
  mutable spontaneous : int; (* head of the spontaneous chain, 1-based *)
  mutable n_records : int;
  mutable n_probes : int;
  mutable max_probe : int;
  probe_hist : int array; (* log2 buckets of probes-per-record *)
}

let base_cost = 10
let probe_cost = 2

let dummy_cell = { key2 = 0; count = 0; link = 0 }

let create ~text_size ~keying =
  {
    keying;
    text_size;
    froms = Array.make (max text_size 1) 0;
    tos = Util.Growvec.create ~capacity:256 ~dummy:dummy_cell ();
    spontaneous = 0;
    n_records = 0;
    n_probes = 0;
    max_probe = 0;
    probe_hist = Array.make Obs.Metrics.n_hist_buckets 0;
  }

let keying t = t.keying

(* Walk the chain headed by [head] (1-based) looking for [key2];
   returns (cell option, probes). *)
let find_on_chain t head key2 =
  let probes = ref 0 in
  let rec go idx =
    if idx = 0 then None
    else begin
      incr probes;
      let c = Util.Growvec.get t.tos (idx - 1) in
      if c.key2 = key2 then Some c else go c.link
    end
  in
  let r = go head in
  (r, !probes)

let push_cell t key2 link =
  Util.Growvec.push t.tos { key2; count = 1; link };
  Util.Growvec.length t.tos (* 1-based index of the new cell *)

let record t ~frompc ~selfpc =
  if selfpc < 0 || selfpc >= t.text_size then
    invalid_arg "Monitor.record: selfpc outside text segment";
  t.n_records <- t.n_records + 1;
  (* A caller outside the text segment — the negative sentinel the
     startup stub leaves, or an address past the end — is normalized
     to the one spontaneous pseudo-site before keying, so both keyings
     agree on the arc and distinct anomalous sources cannot smear into
     distinct records. *)
  let frompc =
    if frompc < 0 || frompc >= t.text_size then spontaneous_from else frompc
  in
  let spontaneous = frompc = spontaneous_from in
  let get_head, set_head, key2 =
    match t.keying with
    | Site_primary ->
      if spontaneous then
        (* All spontaneous invocations share one chain keyed by
           callee. *)
        ((fun () -> t.spontaneous), (fun h -> t.spontaneous <- h), selfpc)
      else
        ((fun () -> t.froms.(frompc)), (fun h -> t.froms.(frompc) <- h), selfpc)
    | Callee_primary ->
      (* The callee is a real address; the (possibly normalized)
         caller is just another secondary key. *)
      ((fun () -> t.froms.(selfpc)), (fun h -> t.froms.(selfpc) <- h), frompc)
  in
  let found, probes = find_on_chain t (get_head ()) key2 in
  t.n_probes <- t.n_probes + probes;
  if probes > t.max_probe then t.max_probe <- probes;
  let pb = Obs.Metrics.hist_bucket_of probes in
  t.probe_hist.(pb) <- t.probe_hist.(pb) + 1;
  (match found with
  | Some c -> c.count <- c.count + 1
  | None -> set_head (push_cell t key2 (get_head ())));
  base_cost + (probe_cost * probes)

let arcs t =
  let out = ref [] in
  let walk head decode =
    let rec go idx =
      if idx <> 0 then begin
        let c = Util.Growvec.get t.tos (idx - 1) in
        let a_from, a_self = decode c.key2 in
        out := { Gmon.a_from; a_self; a_count = c.count } :: !out;
        go c.link
      end
    in
    go head
  in
  Array.iteri
    (fun key1 head ->
      match t.keying with
      | Site_primary -> walk head (fun key2 -> (key1, key2))
      | Callee_primary -> walk head (fun key2 -> (key2, key1)))
    t.froms;
  (match t.keying with
  | Site_primary -> walk t.spontaneous (fun key2 -> (spontaneous_from, key2))
  | Callee_primary -> ());
  List.sort
    (fun a b -> compare (a.Gmon.a_from, a.Gmon.a_self) (b.Gmon.a_from, b.Gmon.a_self))
    !out

let distinct_arcs t = List.length (arcs t)

let total_records t = t.n_records

let total_probes t = t.n_probes

let max_probe t = t.max_probe

let probe_depth_hist t = Array.copy t.probe_hist

type chain_stats = { n_chains : int; n_cells : int; max_chain : int }

let chain_stats t =
  let n_chains = ref 0 and n_cells = ref 0 and max_chain = ref 0 in
  let walk head =
    if head <> 0 then begin
      incr n_chains;
      let len = ref 0 in
      let rec go idx =
        if idx <> 0 then begin
          incr len;
          go (Util.Growvec.get t.tos (idx - 1)).link
        end
      in
      go head;
      n_cells := !n_cells + !len;
      if !len > !max_chain then max_chain := !len
    end
  in
  Array.iter walk t.froms;
  walk t.spontaneous;
  { n_chains = !n_chains; n_cells = !n_cells; max_chain = !max_chain }

let observe t reg =
  let module M = Obs.Metrics in
  let g name v = M.set (M.gauge reg name) v in
  g "monitor.records" t.n_records;
  g "monitor.probes" t.n_probes;
  let cs = chain_stats t in
  g "monitor.chains" cs.n_chains;
  g "monitor.cells" cs.n_cells;
  g "monitor.chain_max" cs.max_chain;
  M.set_snapshot
    (M.histogram reg "monitor.probe_depth"
       ~help:"chain probes per mcount record")
    ~buckets:t.probe_hist ~count:t.n_records ~sum:t.n_probes ~max:t.max_probe

let reset t =
  Array.fill t.froms 0 (Array.length t.froms) 0;
  Util.Growvec.clear t.tos;
  t.spontaneous <- 0;
  t.n_records <- 0;
  t.n_probes <- 0;
  t.max_probe <- 0;
  Array.fill t.probe_hist 0 (Array.length t.probe_hist) 0
