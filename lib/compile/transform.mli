(** Source-to-source transformations.

    Two optimizations the paper discusses as the uses of a profile:

    - {!inline_expansion}: "If this format routine is expanded inline
      in the output routine, the overhead of a function call and
      return can be saved for each datum … The drawback … is that the
      data abstractions in the program may become less parameterized
      … The profiling will also become less useful since the loss of
      routines will make its output more granular." Experiment
      [t-inline] measures both effects.
    - {!constant_fold}: the "small change to a control construct"
      class of improvement, applied mechanically.

    Both preserve Mini semantics; this is property-tested by running
    transformed and untransformed workloads and comparing outputs. *)

val inline_expansion : names:string list -> Mini.Ast.program -> Mini.Ast.program
(** Expand calls to the named functions at their call sites.

    A call is expanded only when it is provably safe and beneficial:
    the callee's body is a single [return e;], the callee does not
    call itself, the call is direct, and every argument is a {e pure}
    expression (no calls), so duplicating or reordering evaluation
    cannot change behaviour. Expansion iterates to a fixed point (a
    bounded number of rounds), so chains of small wrappers flatten.
    The function definitions remain in the program (they may still be
    called indirectly), so a fully-inlined routine shows up in the
    profile as never called. *)

val inlinable : Mini.Ast.program -> string list
(** The functions {!inline_expansion} could expand — body is a single
    [return e;] that does not call the function itself — in program
    order. Whether a given call site actually expands still depends on
    the site (direct call, exact arity, pure arguments). This is the
    candidate set a profile-guided selection chooses from. *)

val constant_fold : Mini.Ast.program -> Mini.Ast.program
(** Fold constant subexpressions ([2 * 3 + x] to [6 + x]), apply
    arithmetic identities ([x + 0], [x * 1], [x * 0] when [x] is
    pure), fold constant conditions ([if]/[while]), and drop
    statically-dead branches. Division by a constant zero is left in
    place to fault at run time, as it must. *)

val is_pure : Mini.Ast.expr -> bool
(** Safe to duplicate or discard: no calls, no possibly-faulting
    operations (division or modulo without a nonzero constant divisor,
    array indexing). Evaluation has no effects, cannot fault, and
    terminates. *)
