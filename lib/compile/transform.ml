module Ast = Mini.Ast

(* "Pure" here is the strong property the transformations need:
   evaluation has no effects, cannot fault, and terminates. Calls have
   effects; division/modulo can fault on zero; array indexing can
   fault on bounds. Only such expressions may be duplicated (inlining
   an argument used twice) or discarded (folding [x * 0], dropping an
   unused argument). *)
let rec is_pure (e : Ast.expr) =
  match e.desc with
  | Ast.Int _ | Ast.Var _ -> true
  | Ast.Index _ | Ast.Call _ -> false
  | Ast.Binop ((Ast.Div | Ast.Mod), l, r) -> (
    is_pure l && (match r.desc with Ast.Int n -> n <> 0 | _ -> false))
  | Ast.Binop (_, l, r) -> is_pure l && is_pure r
  | Ast.Unop (_, e1) -> is_pure e1

(* --- inline expansion ------------------------------------------------ *)

let rec expr_calls name (e : Ast.expr) =
  match e.desc with
  | Ast.Int _ | Ast.Var _ -> false
  | Ast.Index (_, i) -> expr_calls name i
  | Ast.Call (f, args) ->
    (match f.desc with Ast.Var n when n = name -> true | _ -> expr_calls name f)
    || List.exists (expr_calls name) args
  | Ast.Binop (_, l, r) -> expr_calls name l || expr_calls name r
  | Ast.Unop (_, e1) -> expr_calls name e1

(* Substitute parameters by argument expressions in a pure-parameter
   body expression. Only parameter names are substituted; everything
   else a single-return body can reference is global and unshadowed by
   construction (the checker forbids duplicate names per scope, and
   the body has no declarations). *)
let rec subst env (e : Ast.expr) =
  match e.desc with
  | Ast.Int _ -> e
  | Ast.Var x -> (
    match List.assoc_opt x env with Some arg -> arg | None -> e)
  | Ast.Index (a, i) -> { e with desc = Ast.Index (a, subst env i) }
  | Ast.Call (f, args) ->
    (* the callee position may mention a parameter holding a function *)
    { e with desc = Ast.Call (subst env f, List.map (subst env) args) }
  | Ast.Binop (op, l, r) -> { e with desc = Ast.Binop (op, subst env l, subst env r) }
  | Ast.Unop (op, e1) -> { e with desc = Ast.Unop (op, subst env e1) }

type candidate = { params : string list; body : Ast.expr }

let candidates ~names (p : Ast.program) =
  List.filter_map
    (fun (f : Ast.fundef) ->
      if not (List.mem f.fname names) then None
      else
        match f.body with
        | [ { Ast.sdesc = Ast.Return (Some e); _ } ]
          when not (expr_calls f.fname e) ->
          Some (f.fname, { params = f.params; body = e })
        | _ -> None)
    p.funs

let rec expand cands (e : Ast.expr) =
  let e =
    match e.desc with
    | Ast.Int _ | Ast.Var _ -> e
    | Ast.Index (a, i) -> { e with desc = Ast.Index (a, expand cands i) }
    | Ast.Call (f, args) ->
      { e with desc = Ast.Call (expand cands f, List.map (expand cands) args) }
    | Ast.Binop (op, l, r) ->
      { e with desc = Ast.Binop (op, expand cands l, expand cands r) }
    | Ast.Unop (op, e1) -> { e with desc = Ast.Unop (op, expand cands e1) }
  in
  match e.desc with
  | Ast.Call ({ desc = Ast.Var name; _ }, args) -> (
    match List.assoc_opt name cands with
    | Some c
      when List.length args = List.length c.params
           && List.for_all is_pure args ->
      subst (List.combine c.params args) c.body
    | _ -> e)
  | _ -> e

let rec expand_stmt cands (s : Ast.stmt) =
  let ex = expand cands in
  match s.sdesc with
  | Ast.Decl (x, init) -> { s with sdesc = Ast.Decl (x, Option.map ex init) }
  | Ast.Assign (x, e) -> { s with sdesc = Ast.Assign (x, ex e) }
  | Ast.Astore (a, i, e) -> { s with sdesc = Ast.Astore (a, ex i, ex e) }
  | Ast.If (c, t, el) ->
    { s with
      sdesc = Ast.If (ex c, List.map (expand_stmt cands) t,
                      List.map (expand_stmt cands) el) }
  | Ast.While (c, b) ->
    { s with sdesc = Ast.While (ex c, List.map (expand_stmt cands) b) }
  | Ast.For (i, c, st, b) ->
    { s with
      sdesc =
        Ast.For (expand_stmt cands i, ex c, expand_stmt cands st,
                 List.map (expand_stmt cands) b) }
  | Ast.Return e -> { s with sdesc = Ast.Return (Option.map ex e) }
  | Ast.Break | Ast.Continue -> s
  | Ast.Expr e -> { s with sdesc = Ast.Expr (ex e) }

let inline_round ~names (p : Ast.program) =
  let cands = candidates ~names p in
  if cands = [] then p
  else
    {
      p with
      funs =
        List.map
          (fun (f : Ast.fundef) ->
            (* do not expand a candidate inside itself through a chain *)
            let applicable = List.filter (fun (n, _) -> n <> f.fname) cands in
            { f with body = List.map (expand_stmt applicable) f.body })
          p.funs;
    }

let inlinable (p : Ast.program) =
  let all = List.map (fun (f : Ast.fundef) -> f.Ast.fname) p.funs in
  List.map fst (candidates ~names:all p)

let inline_expansion ~names p =
  (* Chains of wrappers flatten in a few rounds; the bound guards
     against mutual single-return functions expanding forever. *)
  let rec go n p =
    if n = 0 then p
    else
      let p' = inline_round ~names p in
      if Ast.equal_program p' p then p else go (n - 1) p'
  in
  go 5 p

(* --- constant folding ------------------------------------------------ *)

let truth b = if b then 1 else 0

let rec fold_expr (e : Ast.expr) =
  let mk desc = { e with desc } in
  match e.desc with
  | Ast.Int _ | Ast.Var _ -> e
  | Ast.Index (a, i) -> mk (Ast.Index (a, fold_expr i))
  | Ast.Call (f, args) -> mk (Ast.Call (fold_expr f, List.map fold_expr args))
  | Ast.Unop (op, e1) -> (
    let e1 = fold_expr e1 in
    match (op, e1.desc) with
    | Ast.Neg, Ast.Int n -> mk (Ast.Int (-n))
    | Ast.Not, Ast.Int n -> mk (Ast.Int (truth (n = 0)))
    | _ -> mk (Ast.Unop (op, e1)))
  | Ast.Binop (op, l, r) -> (
    let l = fold_expr l and r = fold_expr r in
    let keep () = mk (Ast.Binop (op, l, r)) in
    match (op, l.desc, r.desc) with
    | Ast.Add, Ast.Int a, Ast.Int b -> mk (Ast.Int (a + b))
    | Ast.Sub, Ast.Int a, Ast.Int b -> mk (Ast.Int (a - b))
    | Ast.Mul, Ast.Int a, Ast.Int b -> mk (Ast.Int (a * b))
    | Ast.Div, Ast.Int a, Ast.Int b when b <> 0 -> mk (Ast.Int (a / b))
    | Ast.Mod, Ast.Int a, Ast.Int b when b <> 0 -> mk (Ast.Int (a mod b))
    | Ast.Lt, Ast.Int a, Ast.Int b -> mk (Ast.Int (truth (a < b)))
    | Ast.Le, Ast.Int a, Ast.Int b -> mk (Ast.Int (truth (a <= b)))
    | Ast.Gt, Ast.Int a, Ast.Int b -> mk (Ast.Int (truth (a > b)))
    | Ast.Ge, Ast.Int a, Ast.Int b -> mk (Ast.Int (truth (a >= b)))
    | Ast.Eq, Ast.Int a, Ast.Int b -> mk (Ast.Int (truth (a = b)))
    | Ast.Ne, Ast.Int a, Ast.Int b -> mk (Ast.Int (truth (a <> b)))
    (* identities; the discarded side must be pure *)
    | Ast.Add, Ast.Int 0, _ -> r
    | Ast.Add, _, Ast.Int 0 -> l
    | Ast.Sub, _, Ast.Int 0 -> l
    | Ast.Mul, Ast.Int 1, _ -> r
    | Ast.Mul, _, Ast.Int 1 -> l
    | Ast.Mul, Ast.Int 0, _ when is_pure r -> mk (Ast.Int 0)
    | Ast.Mul, _, Ast.Int 0 when is_pure l -> mk (Ast.Int 0)
    | Ast.Div, _, Ast.Int 1 -> l
    (* short-circuit operators: a constant left side decides *)
    | Ast.And, Ast.Int 0, _ -> mk (Ast.Int 0)
    | Ast.And, Ast.Int _, Ast.Int n -> mk (Ast.Int (truth (n <> 0)))
    | Ast.And, Ast.Int _, _ -> mk (Ast.Unop (Ast.Not, mk (Ast.Unop (Ast.Not, r))))
    | Ast.Or, Ast.Int 0, Ast.Int n -> mk (Ast.Int (truth (n <> 0)))
    | Ast.Or, Ast.Int 0, _ -> mk (Ast.Unop (Ast.Not, mk (Ast.Unop (Ast.Not, r))))
    | Ast.Or, Ast.Int _, _ -> mk (Ast.Int 1)
    (* ... and a constant right side, when the left may be discarded
       (it is still evaluated first, so it must be pure to drop) or
       the result only needs normalizing to a truth value *)
    | Ast.And, _, Ast.Int 0 when is_pure l -> mk (Ast.Int 0)
    | Ast.And, _, Ast.Int n when n <> 0 ->
      mk (Ast.Unop (Ast.Not, mk (Ast.Unop (Ast.Not, l))))
    | Ast.Or, _, Ast.Int 0 -> mk (Ast.Unop (Ast.Not, mk (Ast.Unop (Ast.Not, l))))
    | Ast.Or, _, Ast.Int n when n <> 0 && is_pure l -> mk (Ast.Int 1)
    | _ -> keep ())

(* Mini locals are function-scoped, so a declaration inside a branch
   serves the whole function: a statically-dead branch that declares
   must be kept (its code never runs, but its slots must exist). *)
let rec declares (s : Ast.stmt) =
  match s.sdesc with
  | Ast.Decl _ -> true
  | Ast.If (_, t, el) -> List.exists declares t || List.exists declares el
  | Ast.While (_, b) -> List.exists declares b
  | Ast.For (i, _, st, b) -> declares i || declares st || List.exists declares b
  | Ast.Assign _ | Ast.Astore _ | Ast.Return _ | Ast.Break | Ast.Continue
  | Ast.Expr _ -> false

let rec fold_stmt (s : Ast.stmt) =
  match s.sdesc with
  | Ast.Decl (x, init) -> [ { s with sdesc = Ast.Decl (x, Option.map fold_expr init) } ]
  | Ast.Assign (x, e) -> [ { s with sdesc = Ast.Assign (x, fold_expr e) } ]
  | Ast.Astore (a, i, e) ->
    [ { s with sdesc = Ast.Astore (a, fold_expr i, fold_expr e) } ]
  | Ast.If (c, t, el) -> (
    let c = fold_expr c in
    let ft = fold_block t and fel = fold_block el in
    match c.desc with
    | Ast.Int 0 when not (List.exists declares t) -> fel
    | Ast.Int n when n <> 0 && not (List.exists declares el) -> ft
    | _ -> [ { s with sdesc = Ast.If (c, ft, fel) } ])
  | Ast.While (c, b) -> (
    let c = fold_expr c in
    match c.desc with
    | Ast.Int 0 when not (List.exists declares b) -> []
    | _ -> [ { s with sdesc = Ast.While (c, fold_block b) } ])
  | Ast.For (i, c, st, b) ->
    (* folding the init/step must not drop their effects; only the
       body and condition fold *)
    [ { s with
        sdesc =
          Ast.For
            (List.hd (fold_stmt i), fold_expr c, List.hd (fold_stmt st),
             fold_block b) } ]
  | Ast.Return e -> [ { s with sdesc = Ast.Return (Option.map fold_expr e) } ]
  | Ast.Break | Ast.Continue -> [ s ]
  | Ast.Expr e ->
    let e = fold_expr e in
    if is_pure e then [] else [ { s with sdesc = Ast.Expr e } ]

and fold_block b =
  (* statements after a return are dead, unless they declare *)
  let rec cut = function
    | [] -> []
    | ({ Ast.sdesc = Ast.Return _; _ } as s) :: rest
      when not (List.exists declares rest) -> [ s ]
    | s :: rest -> s :: cut rest
  in
  cut (List.concat_map fold_stmt b)

let constant_fold (p : Ast.program) =
  { p with funs = List.map (fun f -> { f with Ast.body = fold_block f.Ast.body }) p.funs }
