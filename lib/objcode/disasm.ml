let annot o pc =
  let target_note addr =
    (* Anomalous targets are flagged rather than left bare: a listing
       that silently drops the annotation hides exactly the targets the
       static scanner cannot resolve. *)
    match Objfile.find_symbol o addr with
    | Some s when s.addr = addr -> Printf.sprintf "  ; %s" s.name
    | Some s -> Printf.sprintf "  ; ! mid-%s target" s.name
    | None -> "  ; ! target outside the symbol table"
  in
  match o.Objfile.text.(pc) with
  | Instr.Call (a, _) | Instr.Funref a -> target_note a
  | Instr.Gload g | Instr.Gstore g ->
    if g >= 0 && g < Array.length o.globals then
      Printf.sprintf "  ; %s" o.globals.(g)
    else Printf.sprintf "  ; ! global %d out of range" g
  | Instr.Aload a | Instr.Astore a ->
    if a >= 0 && a < Array.length o.arrays then
      Printf.sprintf "  ; %s" (fst o.arrays.(a))
    else Printf.sprintf "  ; ! array %d out of range" a
  | Instr.Pcount f ->
    if f >= 0 && f < Array.length o.symbols then
      Printf.sprintf "  ; %s" o.symbols.(f).name
    else Printf.sprintf "  ; ! function id %d out of range" f
  | _ -> ""

let instruction o pc =
  if pc < 0 || pc >= Array.length o.Objfile.text then
    invalid_arg "Disasm.instruction: pc out of range";
  Printf.sprintf "%4d: %-16s%s" pc (Instr.to_string o.Objfile.text.(pc)) (annot o pc)

let function_listing o (s : Objfile.symbol) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%s:%s  (addr %d, size %d)\n" s.name
       (if s.profiled then "  [profiled]" else "")
       s.addr s.size);
  for pc = s.addr to s.addr + s.size - 1 do
    Buffer.add_string buf (instruction o pc);
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let program_listing o =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "; %s: %d instructions, %d functions, entry %d\n"
       o.Objfile.source_name
       (Array.length o.Objfile.text)
       (Array.length o.Objfile.symbols)
       o.Objfile.entry);
  Array.iter
    (fun s ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (function_listing o s))
    o.Objfile.symbols;
  (match Scan.anomalies o with
  | [] -> ()
  | anomalies ->
    Buffer.add_string buf "\n; anomalous targets:\n";
    List.iter
      (fun a ->
        Buffer.add_string buf ("; ! " ^ Scan.anomaly_to_string a);
        Buffer.add_char buf '\n')
      anomalies);
  Buffer.contents buf
