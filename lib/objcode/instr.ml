type alu = Add | Sub | Mul | Div | Mod | Lt | Le | Gt | Ge | Eq | Ne

type unop = Neg | Not

type syscall = Sys_print | Sys_putc | Sys_rand | Sys_cycles

type t =
  | Nop
  | Const of int
  | Load of int
  | Store of int
  | Gload of int
  | Gstore of int
  | Aload of int
  | Astore of int
  | Alu of alu
  | Unop of unop
  | Jump of int
  | Jumpz of int
  | Call of int * int
  | Calli of int
  | Funref of int
  | Enter of int
  | Mcount
  | Pcount of int
  | Ret
  | Pop
  | Syscall of syscall
  | Halt

let cost = function
  | Nop -> 1
  | Const _ -> 1
  | Load _ | Store _ -> 1
  | Gload _ | Gstore _ -> 2
  | Aload _ | Astore _ -> 3
  | Alu (Add | Sub | Lt | Le | Gt | Ge | Eq | Ne) -> 1
  | Alu Mul -> 4
  | Alu (Div | Mod) -> 8
  | Unop _ -> 1
  | Jump _ -> 1
  | Jumpz _ -> 2
  (* The call path is deliberately heavy, like the VAX 'calls'
     instruction the paper's machines used: procedure call overhead
     dwarfed a couple of ALU operations. This ratio is what puts the
     monitoring routine's cost in the paper's 5-30% band. *)
  | Call _ -> 16
  | Calli _ -> 18
  | Funref _ -> 1
  | Enter _ -> 4
  | Mcount -> 1 (* decode only; the monitor adds its dynamic cost *)
  | Pcount _ -> 3
  | Ret -> 10
  | Pop -> 1
  | Syscall Sys_rand -> 12
  | Syscall Sys_cycles -> 4
  | Syscall (Sys_print | Sys_putc) -> 40
  | Halt -> 1

(* Coarse dispatch groups for the VM's execution-mix breakdown. *)
let n_groups = 12

let group = function
  | Nop -> 0
  | Const _ -> 1
  | Load _ | Store _ -> 2
  | Gload _ | Gstore _ -> 3
  | Aload _ | Astore _ -> 4
  | Alu _ | Unop _ -> 5
  | Jump _ | Jumpz _ -> 6
  | Call _ | Calli _ | Funref _ -> 7
  | Enter _ | Ret | Pop -> 8
  | Mcount | Pcount _ -> 9
  | Syscall _ -> 10
  | Halt -> 11

let group_names =
  [|
    "nop"; "const"; "local"; "global"; "array"; "alu"; "branch"; "call"; "frame";
    "instrument"; "syscall"; "halt";
  |]

let group_name g =
  if g < 0 || g >= n_groups then invalid_arg "Instr.group_name" else group_names.(g)

let alu_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Mod -> "mod"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"
  | Eq -> "eq"
  | Ne -> "ne"

let alu_of_name = function
  | "add" -> Some Add
  | "sub" -> Some Sub
  | "mul" -> Some Mul
  | "div" -> Some Div
  | "mod" -> Some Mod
  | "lt" -> Some Lt
  | "le" -> Some Le
  | "gt" -> Some Gt
  | "ge" -> Some Ge
  | "eq" -> Some Eq
  | "ne" -> Some Ne
  | _ -> None

let syscall_name = function
  | Sys_print -> "print"
  | Sys_putc -> "putc"
  | Sys_rand -> "rand"
  | Sys_cycles -> "cycles"

let syscall_of_name = function
  | "print" -> Some Sys_print
  | "putc" -> Some Sys_putc
  | "rand" -> Some Sys_rand
  | "cycles" -> Some Sys_cycles
  | _ -> None

let to_string = function
  | Nop -> "nop"
  | Const n -> Printf.sprintf "const %d" n
  | Load n -> Printf.sprintf "load %d" n
  | Store n -> Printf.sprintf "store %d" n
  | Gload n -> Printf.sprintf "gload %d" n
  | Gstore n -> Printf.sprintf "gstore %d" n
  | Aload n -> Printf.sprintf "aload %d" n
  | Astore n -> Printf.sprintf "astore %d" n
  | Alu op -> alu_name op
  | Unop Neg -> "neg"
  | Unop Not -> "not"
  | Jump n -> Printf.sprintf "jump %d" n
  | Jumpz n -> Printf.sprintf "jumpz %d" n
  | Call (a, n) -> Printf.sprintf "call %d %d" a n
  | Calli n -> Printf.sprintf "calli %d" n
  | Funref a -> Printf.sprintf "funref %d" a
  | Enter n -> Printf.sprintf "enter %d" n
  | Mcount -> "mcount"
  | Pcount n -> Printf.sprintf "pcount %d" n
  | Ret -> "ret"
  | Pop -> "pop"
  | Syscall s -> Printf.sprintf "syscall %s" (syscall_name s)
  | Halt -> "halt"

let of_string s =
  let words =
    String.split_on_char ' ' (String.trim s) |> List.filter (fun w -> w <> "")
  in
  let int_arg mk = function
    | [ a ] -> (
      match int_of_string_opt a with
      | Some n -> Ok (mk n)
      | None -> Error (Printf.sprintf "bad integer operand %S" a))
    | args -> Error (Printf.sprintf "expected 1 operand, got %d" (List.length args))
  in
  match words with
  | [] -> Error "empty instruction"
  | op :: args -> (
    match (op, args) with
    | "nop", [] -> Ok Nop
    | "const", _ -> int_arg (fun n -> Const n) args
    | "load", _ -> int_arg (fun n -> Load n) args
    | "store", _ -> int_arg (fun n -> Store n) args
    | "gload", _ -> int_arg (fun n -> Gload n) args
    | "gstore", _ -> int_arg (fun n -> Gstore n) args
    | "aload", _ -> int_arg (fun n -> Aload n) args
    | "astore", _ -> int_arg (fun n -> Astore n) args
    | "neg", [] -> Ok (Unop Neg)
    | "not", [] -> Ok (Unop Not)
    | "jump", _ -> int_arg (fun n -> Jump n) args
    | "jumpz", _ -> int_arg (fun n -> Jumpz n) args
    | "call", [ a; n ] -> (
      match (int_of_string_opt a, int_of_string_opt n) with
      | Some a, Some n -> Ok (Call (a, n))
      | _ -> Error "bad call operands")
    | "calli", _ -> int_arg (fun n -> Calli n) args
    | "funref", _ -> int_arg (fun n -> Funref n) args
    | "enter", _ -> int_arg (fun n -> Enter n) args
    | "mcount", [] -> Ok Mcount
    | "pcount", _ -> int_arg (fun n -> Pcount n) args
    | "ret", [] -> Ok Ret
    | "pop", [] -> Ok Pop
    | "syscall", [ name ] -> (
      match syscall_of_name name with
      | Some sc -> Ok (Syscall sc)
      | None -> Error (Printf.sprintf "unknown syscall %S" name))
    | "halt", [] -> Ok Halt
    | _ -> (
      match (alu_of_name op, args) with
      | Some a, [] -> Ok (Alu a)
      | Some _, _ -> Error (Printf.sprintf "%s takes no operands" op)
      | None, _ -> Error (Printf.sprintf "unknown instruction %S" op)))

let equal (a : t) (b : t) = a = b

let pp ppf i = Format.pp_print_string ppf (to_string i)
