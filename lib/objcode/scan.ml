type site = { site_addr : int; caller : string; callee : string }

type anomaly_kind = Mid_function of string | Outside_table

type anomaly = {
  an_addr : int;
  an_caller : string option;
  an_target : int;
  an_kind : anomaly_kind;
  an_instr : [ `Call | `Funref ];
}

let scan o =
  let sites = ref [] in
  let anomalies = ref [] in
  let anomaly pc target instr =
    let kind =
      match Objfile.find_symbol o target with
      | Some s -> Mid_function s.name
      | None -> Outside_table
    in
    let caller = Option.map (fun (s : Objfile.symbol) -> s.name) (Objfile.find_symbol o pc) in
    anomalies :=
      { an_addr = pc; an_caller = caller; an_target = target; an_kind = kind;
        an_instr = instr }
      :: !anomalies
  in
  Array.iteri
    (fun pc ins ->
      match (ins : Instr.t) with
      | Call (target, _) -> (
        match (Objfile.find_symbol o pc, Objfile.find_symbol o target) with
        | Some caller, Some callee when callee.addr = target ->
          sites := { site_addr = pc; caller = caller.name; callee = callee.name } :: !sites
        | None, Some callee when callee.addr = target ->
          (* The call itself sits in a symbol-table gap: the target is
             fine but the arc has no caller to attach to. *)
          anomaly pc target `Call
        | _ -> anomaly pc target `Call)
      | Funref target -> (
        match Objfile.find_symbol o target with
        | Some s when s.addr = target -> ()
        | _ -> anomaly pc target `Funref)
      | _ -> ())
    o.Objfile.text;
  (List.rev !sites, List.rev !anomalies)

let call_sites o = fst (scan o)

let anomalies o = snd (scan o)

let anomaly_to_string a =
  Printf.sprintf "%s at %d%s targets %d, %s"
    (match a.an_instr with `Call -> "call" | `Funref -> "funref")
    a.an_addr
    (match a.an_caller with Some c -> " (in " ^ c ^ ")" | None -> " (no containing routine)")
    a.an_target
    (match a.an_kind with
    | Mid_function f -> "mid-" ^ f
    | Outside_table -> "outside the symbol table")

let static_arcs o =
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun s ->
      let key = (s.caller, s.callee) in
      if Hashtbl.mem seen key then None
      else begin
        Hashtbl.replace seen key ();
        Some key
      end)
    (call_sites o)

let function_graph o =
  let n = Array.length o.Objfile.symbols in
  let g = Graphlib.Digraph.create n in
  let id name =
    match Objfile.symbol_by_name o name with
    | Some s -> Objfile.func_id_of_addr o s.addr
    | None -> None
  in
  List.iter
    (fun (caller, callee) ->
      match (id caller, id callee) with
      | Some src, Some dst -> Graphlib.Digraph.add_arc g ~src ~dst ~count:0
      | _ -> ())
    (static_arcs o);
  g

let referenced_functions o =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  Array.iter
    (fun ins ->
      match (ins : Instr.t) with
      | Funref target -> (
        match Objfile.find_symbol o target with
        | Some s when s.addr = target && not (Hashtbl.mem seen s.name) ->
          Hashtbl.replace seen s.name ();
          out := s.name :: !out
        | _ -> ())
      | _ -> ())
    o.Objfile.text;
  List.rev !out
