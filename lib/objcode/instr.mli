(** The instruction set of the simulated machine.

    A simple stack machine: expression operands live on an operand
    stack, locals and parameters in the current frame, scalars and
    arrays in a global data segment. Each instruction has a cycle
    cost ({!cost}); the VM's simulated clock is driven by these costs,
    and the program-counter histogram is sampled against them — this
    is the stand-in for the paper's hardware clock.

    [Mcount] is the hook for the paper's monitoring routine: the
    compiler places one at the head of each profiled function's body,
    exactly as the Berkeley compilers "insert calls to a monitoring
    routine in the prologue for each routine". Its cost is dynamic
    (hash probe dependent) and accounted by the VM monitor, not by
    {!cost}. *)

type alu = Add | Sub | Mul | Div | Mod | Lt | Le | Gt | Ge | Eq | Ne

type unop = Neg | Not

type syscall =
  | Sys_print  (** pop a word, write it as a decimal line *)
  | Sys_putc   (** pop a word, write it as one character *)
  | Sys_rand   (** pop a bound, push a deterministic pseudo-random
                   value in [\[0, bound)] *)
  | Sys_cycles (** push the current cycle counter *)

type t =
  | Nop
  | Const of int   (** push a constant *)
  | Load of int    (** push local slot *)
  | Store of int   (** pop into local slot *)
  | Gload of int   (** push global scalar *)
  | Gstore of int  (** pop into global scalar *)
  | Aload of int   (** pop index, push element of array [id] *)
  | Astore of int  (** pop value, pop index, store into array [id] *)
  | Alu of alu     (** pop right, pop left, push result *)
  | Unop of unop
  | Jump of int    (** absolute text address *)
  | Jumpz of int   (** pop; branch when zero *)
  | Call of int * int   (** direct call: entry address, argument count *)
  | Calli of int        (** indirect call: entry address popped; arg count *)
  | Funref of int       (** push a function's entry address *)
  | Enter of int        (** prologue: allocate [n] locals beyond parameters *)
  | Mcount              (** invoke the call-graph monitoring routine *)
  | Pcount of int       (** prof-style per-function counter increment *)
  | Ret                 (** pop return value, pop frame, push value *)
  | Pop                 (** discard top of stack *)
  | Syscall of syscall
  | Halt

val cost : t -> int
(** Cycle cost of one execution of the instruction. [Mcount]'s entry
    here is only its fixed decode cost; the monitor adds its dynamic
    cost. Multiplication and division are slower than addition, calls
    and returns slower than jumps, and syscalls slowest — coarse but
    shaped like the VAX of the paper. *)

val n_groups : int
(** Number of coarse dispatch groups. *)

val group : t -> int
(** Coarse dispatch group of an instruction, in [\[0, n_groups)]:
    stack/local/global/array traffic, ALU, branches, the call family,
    frame management, instrumentation, syscalls. Drives the VM's
    execution-mix metrics. *)

val group_name : int -> string
(** Short name of a dispatch group.
    @raise Invalid_argument when out of range. *)

val alu_name : alu -> string

val syscall_name : syscall -> string

val to_string : t -> string
(** One-line textual form, parseable by {!of_string}. *)

val of_string : string -> (t, string) result

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
