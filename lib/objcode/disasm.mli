(** Disassembly listings with symbol annotations. *)

val instruction : Objfile.t -> int -> string
(** [instruction o pc] renders the instruction at [pc] with symbolic
    annotations: call and funref targets get the callee name appended,
    global/array operands their data names. Anomalous operands — call
    or funref targets that are not a function entry, out-of-range
    global/array/function ids — are annotated with a [; !] warning
    instead of being left bare. *)

val function_listing : Objfile.t -> Objfile.symbol -> string
(** Multi-line listing of one function: a header line, then
    [addr: instruction] lines. *)

val program_listing : Objfile.t -> string
(** Full listing of the text segment in symbol order, followed by a
    summary of {!Scan.anomalies} when the image has any. *)
