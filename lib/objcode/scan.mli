(** Static call-graph discovery by crawling the executable.

    The paper: "One can examine the instructions in the object
    program, looking for calls to routines, and note which routines
    can be called. … Statically discovered arcs that do not exist in
    the dynamic call graph are added to the graph with a traversal
    count of zero." Only direct calls are statically visible —
    indirect calls through functional variables are exactly the arcs
    the static graph may omit (§2 of the paper); {!Analysis.Indirect}
    narrows that blind spot. *)

type site = {
  site_addr : int;  (** address of the call instruction *)
  caller : string;
  callee : string;
}

type anomaly_kind =
  | Mid_function of string
      (** the target lands inside the named routine, not at its entry *)
  | Outside_table  (** the target is covered by no symbol at all *)

type anomaly = {
  an_addr : int;  (** address of the offending instruction *)
  an_caller : string option;
      (** routine containing the instruction, if any covers it *)
  an_target : int;  (** the bad target address *)
  an_kind : anomaly_kind;
  an_instr : [ `Call | `Funref ];
}

val scan : Objfile.t -> site list * anomaly list
(** Every direct call instruction, in text order. Calls (and funrefs)
    whose target is not a symbol entry address are {e not} silently
    dropped: they come back as anomalies — mid-function targets,
    targets outside the symbol table, and call instructions sitting in
    a symbol-table gap. Well-formed assembler output produces no
    anomalies; hand-built or corrupted images may. *)

val call_sites : Objfile.t -> site list
(** The sites of {!scan} alone. *)

val anomalies : Objfile.t -> anomaly list
(** The anomalies of {!scan} alone. *)

val anomaly_to_string : anomaly -> string
(** One-line rendering, e.g.
    ["call at 12 (in main) targets 7, mid-leaf"]. *)

val static_arcs : Objfile.t -> (string * string) list
(** Deduplicated (caller, callee) pairs, in first-occurrence order. *)

val function_graph : Objfile.t -> Graphlib.Digraph.t
(** The static call graph over symbol indices: node [i] is
    [o.symbols.(i)]; every arc has weight 0, matching how static arcs
    enter the profile. *)

val referenced_functions : Objfile.t -> string list
(** Functions whose entry address is taken with [Funref] — potential
    targets of indirect calls. These are NOT added as arcs by this
    scanner (it cannot know the call site); {!Analysis.Indirect}
    propagates them to the [Calli] sites they can reach, and the
    listing tools report them. *)
