(** Post-processing complete-call-stack samples.

    The retrospective's "modern profiler": each sample is the whole
    chain of live routines, so inclusive time needs no propagation
    and no average-time-per-call assumption — a routine is charged
    inclusively for every sample it appears on (once, however many
    times it recurs on that stack), and exclusively for samples where
    it is the leaf. Caller attribution is likewise direct: a sample
    charges the callee's inclusive hit to the caller immediately
    below it on the stack. This estimator is what gprof's propagated
    times approximate; the accuracy experiments compare both against
    the oracle. *)

type row = {
  s_id : int;  (** function id *)
  s_name : string;
  s_exclusive : float;  (** seconds: leaf samples *)
  s_inclusive : float;  (** seconds: samples anywhere on the stack *)
  s_samples : int;  (** raw inclusive sample count *)
}

type t = {
  rows : row list;  (** decreasing inclusive time *)
  n_samples : int;
  seconds_per_sample : float;
  total_seconds : float;
  arc_inclusive : ((int * int) * float) list;
      (** ((caller id, callee id), inclusive seconds attributed to the
          caller for that callee), deduplicated per sample, sorted *)
}

val analyze :
  ?symtab:Gprof_core.Symtab.t ->
  Objcode.Objfile.t ->
  folded:(int array * int) list ->
  ticks_per_second:int ->
  sample_interval:int ->
  t
(** [folded] is the interned sample table — stacks of function entry
    addresses, root first, each with its sample count (from
    {!Vm.Stacksamp.folded} or a {!Gmon.Sprof.t}); [sample_interval]
    the tick stride they were taken at. Addresses that match no
    function entry are skipped. Pass [?symtab] to reuse a prebuilt
    symbol table instead of rebuilding it from the object file on
    every call. *)

val of_sprof : ?symtab:Gprof_core.Symtab.t -> Objcode.Objfile.t -> Gmon.Sprof.t -> t
(** {!analyze} over a sampled-profile container's stack table, at the
    interval and clock rate recorded in its header. *)

val inclusive_of : t -> int -> float
(** By function id (the symbol's index, as in {!Gprof_core.Symtab});
    0.0 for functions never sampled. *)

val exclusive_of : t -> int -> float

val listing : t -> string
