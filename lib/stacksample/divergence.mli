(** The gprof-divergence report.

    Given an arc-profile analysis and a stack-sample analysis of the
    {e same} run, compare per-function inclusive times: gprof's column
    is propagated under the average-cost assumption (every call to a
    routine charged at the routine's average cost, PAPER.md §6); the
    sampled column counts samples whose stack contains the routine —
    no assumption. The per-function absolute gap and the rank
    displacement between the two orderings quantify exactly what the
    assumption costs; on the adversarial cheap-caller/expensive-caller
    workload it inverts the ranking (bench [t-divergence]). *)

type row = {
  dv_id : int;  (** function id in the arc profile's symtab *)
  dv_name : string;
  dv_gprof : float;  (** propagated inclusive seconds (self + children) *)
  dv_sampled : float;  (** stack-sampled inclusive seconds *)
  dv_abs : float;  (** |gprof - sampled| *)
  dv_gprof_rank : int;  (** 1-based, by decreasing propagated inclusive *)
  dv_sampled_rank : int;
  dv_displacement : int;  (** |gprof rank - sampled rank| *)
}

type t = {
  rows : row list;  (** decreasing |delta|, ties by id *)
  total_abs : float;
  mean_abs : float;
  max_displacement : int;
  n_displaced : int;  (** routines whose rank moved at all *)
  gprof_total : float;
  sampled_total : float;
}

val compute : Gprof_core.Profile.t -> Stackprof.t -> t
(** Routines participate when they were called or sampled on either
    side; a routine absent from one side scores 0.0 there. Ranks are
    computed over the union, ties broken by function id. *)

val of_function : t -> string -> row option

val listing : t -> string
(** Summary header plus one line per routine. *)
