type row = {
  s_id : int;
  s_name : string;
  s_exclusive : float;
  s_inclusive : float;
  s_samples : int;
}

type t = {
  rows : row list;
  n_samples : int;
  seconds_per_sample : float;
  total_seconds : float;
  arc_inclusive : ((int * int) * float) list;
}

let analyze ?symtab o ~folded ~ticks_per_second ~sample_interval =
  if sample_interval < 1 then
    invalid_arg "Stackprof.analyze: sample_interval must be >= 1";
  let st =
    match symtab with
    | Some st -> st
    | None -> Gprof_core.Symtab.of_objfile o
  in
  let n = Gprof_core.Symtab.n_funcs st in
  let incl = Array.make n 0 in
  let excl = Array.make n 0 in
  let arcs = Hashtbl.create 64 in
  let n_samples = ref 0 in
  List.iter
    (fun (stack, count) ->
      if count > 0 then begin
        n_samples := !n_samples + count;
        let ids =
          Array.to_list stack
          |> List.filter_map (fun addr -> Gprof_core.Symtab.id_of_entry st addr)
        in
        (match List.rev ids with
        | leaf :: _ -> excl.(leaf) <- excl.(leaf) + count
        | [] -> ());
        (* Inclusive: each function once per sample, no matter how many
           frames it holds. *)
        let seen = Hashtbl.create 8 in
        List.iter
          (fun id ->
            if not (Hashtbl.mem seen id) then begin
              Hashtbl.replace seen id ();
              incl.(id) <- incl.(id) + count
            end)
          ids;
        (* Arc attribution: adjacent frames, deduplicated per sample. *)
        let arcs_seen = Hashtbl.create 8 in
        let rec pairs = function
          | a :: (b :: _ as rest) ->
            if not (Hashtbl.mem arcs_seen (a, b)) then begin
              Hashtbl.replace arcs_seen (a, b) ();
              let prev =
                Option.value ~default:0 (Hashtbl.find_opt arcs (a, b))
              in
              Hashtbl.replace arcs (a, b) (prev + count)
            end;
            pairs rest
          | _ -> ()
        in
        pairs ids
      end)
    folded;
  let seconds_per_sample =
    float_of_int sample_interval /. float_of_int ticks_per_second
  in
  let sec k = float_of_int k *. seconds_per_sample in
  let rows =
    List.init n (fun id ->
        {
          s_id = id;
          s_name = Gprof_core.Symtab.name st id;
          s_exclusive = sec excl.(id);
          s_inclusive = sec incl.(id);
          s_samples = incl.(id);
        })
    |> List.filter (fun r -> r.s_samples > 0)
    |> List.sort (fun a b ->
           let c = compare b.s_inclusive a.s_inclusive in
           if c <> 0 then c else compare a.s_id b.s_id)
  in
  {
    rows;
    n_samples = !n_samples;
    seconds_per_sample;
    total_seconds = sec !n_samples;
    arc_inclusive =
      Hashtbl.fold (fun k v acc -> (k, sec v) :: acc) arcs []
      |> List.sort compare;
  }

let of_sprof ?symtab o (sp : Gmon.Sprof.t) =
  analyze ?symtab o ~folded:sp.sp_stacks
    ~ticks_per_second:sp.sp_ticks_per_second
    ~sample_interval:sp.sp_sample_interval

let find t id = List.find_opt (fun r -> r.s_id = id) t.rows

let inclusive_of t id =
  match find t id with Some r -> r.s_inclusive | None -> 0.0

let exclusive_of t id =
  match find t id with Some r -> r.s_exclusive | None -> 0.0

let listing t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "call-stack samples: %d (%.4fs each, %.2fs total)\n\n"
       t.n_samples t.seconds_per_sample t.total_seconds);
  Buffer.add_string buf "  inclusive  exclusive   samples  name\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %9.2f  %9.2f  %8d  %s\n" r.s_inclusive r.s_exclusive
           r.s_samples r.s_name))
    t.rows;
  Buffer.contents buf
