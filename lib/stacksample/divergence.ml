(* The payoff report: put gprof's propagated inclusive times and the
   stack-sampled inclusive times for the same run side by side, per
   function. The gprof column rests on the average-cost assumption
   (PAPER.md §6: every call charged at the routine's average); the
   sampled column needs no assumption at all, so the gap between them
   is exactly the price of that assumption — on workloads where a
   routine's cost depends on its caller, it inverts rankings. *)

type row = {
  dv_id : int;
  dv_name : string;
  dv_gprof : float;
  dv_sampled : float;
  dv_abs : float;
  dv_gprof_rank : int;
  dv_sampled_rank : int;
  dv_displacement : int;
}

type t = {
  rows : row list;
  total_abs : float;
  mean_abs : float;
  max_displacement : int;
  n_displaced : int;
  gprof_total : float;
  sampled_total : float;
}

(* 1-based dense ranks by decreasing value; ties broken by id so the
   ranking is deterministic. *)
let ranks_of values =
  let order =
    List.sort
      (fun (ia, va) (ib, vb) ->
        let c = compare vb va in
        if c <> 0 then c else compare ia ib)
      values
  in
  let tbl = Hashtbl.create 16 in
  List.iteri (fun i (id, _) -> Hashtbl.replace tbl id (i + 1)) order;
  tbl

let compute (p : Gprof_core.Profile.t) (s : Stackprof.t) =
  let gprof_incl = Hashtbl.create 64 in
  Array.iter
    (fun (e : Gprof_core.Profile.entry) ->
      if e.e_calls > 0 || e.e_self_calls > 0 || e.e_self > 0.0 then
        Hashtbl.replace gprof_incl e.e_id (e.e_self +. e.e_child))
    p.entries;
  let sampled_incl = Hashtbl.create 64 in
  List.iter
    (fun (r : Stackprof.row) -> Hashtbl.replace sampled_incl r.s_id r.s_inclusive)
    s.rows;
  let ids = Hashtbl.create 64 in
  Hashtbl.iter (fun id _ -> Hashtbl.replace ids id ()) gprof_incl;
  Hashtbl.iter (fun id _ -> Hashtbl.replace ids id ()) sampled_incl;
  let value tbl id = Option.value ~default:0.0 (Hashtbl.find_opt tbl id) in
  let id_list = Hashtbl.fold (fun id () acc -> id :: acc) ids [] in
  let grank = ranks_of (List.map (fun id -> (id, value gprof_incl id)) id_list) in
  let srank =
    ranks_of (List.map (fun id -> (id, value sampled_incl id)) id_list)
  in
  let rows =
    List.map
      (fun id ->
        let g = value gprof_incl id and sm = value sampled_incl id in
        let gr = Hashtbl.find grank id and sr = Hashtbl.find srank id in
        {
          dv_id = id;
          dv_name = Gprof_core.Symtab.name p.symtab id;
          dv_gprof = g;
          dv_sampled = sm;
          dv_abs = abs_float (g -. sm);
          dv_gprof_rank = gr;
          dv_sampled_rank = sr;
          dv_displacement = abs (gr - sr);
        })
      id_list
    |> List.sort (fun a b ->
           let c = compare b.dv_abs a.dv_abs in
           if c <> 0 then c else compare a.dv_id b.dv_id)
  in
  let total_abs = List.fold_left (fun a r -> a +. r.dv_abs) 0.0 rows in
  {
    rows;
    total_abs;
    mean_abs =
      (if rows = [] then 0.0 else total_abs /. float_of_int (List.length rows));
    max_displacement =
      List.fold_left (fun a r -> max a r.dv_displacement) 0 rows;
    n_displaced =
      List.fold_left
        (fun a r -> if r.dv_displacement > 0 then a + 1 else a)
        0 rows;
    gprof_total = p.total_time;
    sampled_total = s.total_seconds;
  }

let of_function t name =
  List.find_opt (fun r -> r.dv_name = name) t.rows

let listing t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "divergence: gprof propagated vs stack samples (%d routine(s))\n"
       (List.length t.rows));
  Buffer.add_string buf
    (Printf.sprintf
       "totals: gprof %.2fs, sampled %.2fs; mean |delta| %.3fs; %d routine(s) displaced, worst by %d rank(s)\n\n"
       t.gprof_total t.sampled_total t.mean_abs t.n_displaced
       t.max_displacement);
  Buffer.add_string buf
    "   gprof(s)  sampled(s)   |delta|   rank(gprof)  rank(sampled)  moved  name\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "   %8.2f  %10.2f  %8.2f   %11d  %13d  %5d  %s\n"
           r.dv_gprof r.dv_sampled r.dv_abs r.dv_gprof_rank r.dv_sampled_rank
           r.dv_displacement r.dv_name))
    t.rows;
  Buffer.contents buf
