type hist = {
  h_lowpc : int;
  h_highpc : int;
  h_bucket_size : int;
  h_counts : int array;
}

type arc = { a_from : int; a_self : int; a_count : int }

type t = {
  hist : hist;
  arcs : arc list;
  ticks_per_second : int;
  cycles_per_tick : int;
  runs : int;
}

let n_buckets ~lowpc ~highpc ~bucket_size =
  (highpc - lowpc + bucket_size - 1) / bucket_size

let make_hist ~lowpc ~highpc ~bucket_size =
  if bucket_size <= 0 then invalid_arg "Gmon.make_hist: bucket_size must be positive";
  if lowpc < 0 || highpc <= lowpc then
    invalid_arg "Gmon.make_hist: need 0 <= lowpc < highpc";
  {
    h_lowpc = lowpc;
    h_highpc = highpc;
    h_bucket_size = bucket_size;
    h_counts = Array.make (n_buckets ~lowpc ~highpc ~bucket_size) 0;
  }

let bucket_of_pc h pc =
  if pc < h.h_lowpc || pc >= h.h_highpc then None
  else Some ((pc - h.h_lowpc) / h.h_bucket_size)

let bucket_range h i =
  let lo = h.h_lowpc + (i * h.h_bucket_size) in
  (lo, min (lo + h.h_bucket_size) h.h_highpc)

let total_ticks t = Array.fold_left ( + ) 0 t.hist.h_counts

let seconds_of_ticks t ticks = float_of_int ticks /. float_of_int t.ticks_per_second

let total_seconds t = seconds_of_ticks t (total_ticks t)

let arc_count_into t self =
  List.fold_left
    (fun acc a -> if a.a_self = self then acc + a.a_count else acc)
    0 t.arcs

let validate t =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
  let h = t.hist in
  if h.h_bucket_size <= 0 then err "bucket size %d not positive" h.h_bucket_size;
  if h.h_lowpc < 0 || h.h_highpc <= h.h_lowpc then
    err "bad pc range [%d,%d)" h.h_lowpc h.h_highpc;
  (* the bucket-count check only makes sense on a sane geometry (and
     n_buckets divides by the bucket size) *)
  if h.h_bucket_size > 0 && h.h_lowpc >= 0 && h.h_highpc > h.h_lowpc then begin
    let expect =
      n_buckets ~lowpc:h.h_lowpc ~highpc:h.h_highpc ~bucket_size:h.h_bucket_size
    in
    if Array.length h.h_counts <> expect then
      err "histogram has %d buckets, expected %d" (Array.length h.h_counts) expect
  end;
  Array.iteri (fun i c -> if c < 0 then err "negative count in bucket %d" i) h.h_counts;
  let rec arcs_ok = function
    | [] | [ _ ] -> ()
    | a :: (b :: _ as rest) ->
      if compare (a.a_from, a.a_self) (b.a_from, b.a_self) >= 0 then
        err "arcs not strictly sorted at (%d,%d)" b.a_from b.a_self;
      arcs_ok rest
  in
  arcs_ok t.arcs;
  List.iter
    (fun a ->
      if a.a_count < 0 then err "negative arc count on (%d,%d)" a.a_from a.a_self)
    t.arcs;
  if t.ticks_per_second <= 0 then err "ticks_per_second %d not positive" t.ticks_per_second;
  if t.cycles_per_tick <= 0 then err "cycles_per_tick %d not positive" t.cycles_per_tick;
  if t.runs < 1 then err "runs %d < 1" t.runs;
  match List.rev !errs with [] -> Ok () | es -> Error es

(* --- self-observability --------------------------------------------- *)

(* The codec publishes its traffic to the process-wide registry: the
   retrospective found that "reading data files … represents the
   dominating factor" of gprof's own run time, so the byte counts are
   first-class metrics. *)
let m_bytes_written =
  Obs.Metrics.counter Obs.Metrics.default "gmon.bytes_written"
    ~help:"profile data bytes encoded"

let m_bytes_read =
  Obs.Metrics.counter Obs.Metrics.default "gmon.bytes_read"
    ~help:"profile data bytes presented for decoding"

let m_files_loaded = Obs.Metrics.counter Obs.Metrics.default "gmon.files_loaded"

let m_files_saved = Obs.Metrics.counter Obs.Metrics.default "gmon.files_saved"

let m_merges = Obs.Metrics.counter Obs.Metrics.default "gmon.merges"

let m_arcs_merged =
  Obs.Metrics.counter Obs.Metrics.default "gmon.arcs_merged"
    ~help:"arc records combined on key collision during profile summing"

let merge a b =
  let ha = a.hist and hb = b.hist in
  if
    ha.h_lowpc <> hb.h_lowpc || ha.h_highpc <> hb.h_highpc
    || ha.h_bucket_size <> hb.h_bucket_size
  then Error "cannot merge profiles with different histogram layouts"
  else if a.ticks_per_second <> b.ticks_per_second then
    Error "cannot merge profiles with different clock rates"
  else if a.cycles_per_tick <> b.cycles_per_tick then
    Error "cannot merge profiles with different cycle rates"
  else begin
    let counts = Array.mapi (fun i c -> c + hb.h_counts.(i)) ha.h_counts in
    (* Merge two sorted unique arc lists, summing counts on key
       collisions. *)
    let rec go xs ys acc =
      match (xs, ys) with
      | [], rest | rest, [] -> List.rev_append acc rest
      | x :: xs', y :: ys' ->
        let c = compare (x.a_from, x.a_self) (y.a_from, y.a_self) in
        if c = 0 then go xs' ys' ({ x with a_count = x.a_count + y.a_count } :: acc)
        else if c < 0 then go xs' ys (x :: acc)
        else go xs ys' (y :: acc)
    in
    let arcs = go a.arcs b.arcs [] in
    Obs.Metrics.incr m_merges;
    Obs.Metrics.incr m_arcs_merged
      ~by:(List.length a.arcs + List.length b.arcs - List.length arcs);
    Ok
      {
        hist = { ha with h_counts = counts };
        arcs;
        ticks_per_second = a.ticks_per_second;
        cycles_per_tick = a.cycles_per_tick;
        runs = a.runs + b.runs;
      }
  end

let merge_all = function
  | [] -> Error "no profiles to merge"
  | x :: rest ->
    List.fold_left
      (fun acc y -> Result.bind acc (fun a -> merge a y))
      (Ok x) rest

(* --- binary serialization ------------------------------------------- *)

let magic = "GMONOCAML1\n"

let put_i64 buf n = Buffer.add_int64_le buf (Int64.of_int n)

let to_bytes t =
  let buf = Buffer.create (1024 + (8 * Array.length t.hist.h_counts)) in
  Buffer.add_string buf magic;
  put_i64 buf t.hist.h_lowpc;
  put_i64 buf t.hist.h_highpc;
  put_i64 buf t.hist.h_bucket_size;
  put_i64 buf t.ticks_per_second;
  put_i64 buf t.cycles_per_tick;
  put_i64 buf t.runs;
  put_i64 buf (Array.length t.hist.h_counts);
  Array.iter (put_i64 buf) t.hist.h_counts;
  put_i64 buf (List.length t.arcs);
  List.iter
    (fun a ->
      put_i64 buf a.a_from;
      put_i64 buf a.a_self;
      put_i64 buf a.a_count)
    t.arcs;
  Obs.Metrics.incr m_bytes_written ~by:(Buffer.length buf);
  Buffer.contents buf

let of_bytes s =
  let exception Bad of string in
  Obs.Metrics.incr m_bytes_read ~by:(String.length s);
  try
    let len = String.length s in
    if len < String.length magic || String.sub s 0 (String.length magic) <> magic
    then raise (Bad "bad magic");
    let pos = ref (String.length magic) in
    let get_i64 () =
      if !pos + 8 > len then raise (Bad "truncated file");
      let v = Int64.to_int (String.get_int64_le s !pos) in
      pos := !pos + 8;
      v
    in
    let lowpc = get_i64 () in
    let highpc = get_i64 () in
    let bucket_size = get_i64 () in
    let ticks_per_second = get_i64 () in
    let cycles_per_tick = get_i64 () in
    let runs = get_i64 () in
    let nbuckets = get_i64 () in
    if nbuckets < 0 || nbuckets > 1 lsl 30 then raise (Bad "absurd bucket count");
    let counts = Array.init nbuckets (fun _ -> get_i64 ()) in
    let narcs = get_i64 () in
    if narcs < 0 || narcs > 1 lsl 30 then raise (Bad "absurd arc count");
    let arcs =
      List.init narcs (fun _ ->
          let a_from = get_i64 () in
          let a_self = get_i64 () in
          let a_count = get_i64 () in
          { a_from; a_self; a_count })
    in
    if !pos <> len then raise (Bad "trailing bytes");
    let t =
      {
        hist =
          { h_lowpc = lowpc; h_highpc = highpc; h_bucket_size = bucket_size;
            h_counts = counts };
        arcs;
        ticks_per_second;
        cycles_per_tick;
        runs;
      }
    in
    match validate t with
    | Ok () -> Ok t
    | Error es -> Error (String.concat "; " es)
  with Bad msg -> Error msg

let save t path =
  Obs.Metrics.incr m_files_saved;
  Obs.Trace.with_span ~cat:"gmon" "gmon-save" (fun () ->
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (to_bytes t)))

let load path =
  Obs.Metrics.incr m_files_loaded;
  Obs.Trace.with_span ~cat:"gmon" "gmon-load" ~args:[ ("path", path) ] (fun () ->
      match In_channel.with_open_bin path In_channel.input_all with
      | s -> of_bytes s
      | exception Sys_error e -> Error e)

let equal a b =
  a.hist.h_lowpc = b.hist.h_lowpc
  && a.hist.h_highpc = b.hist.h_highpc
  && a.hist.h_bucket_size = b.hist.h_bucket_size
  && a.hist.h_counts = b.hist.h_counts
  && a.arcs = b.arcs
  && a.ticks_per_second = b.ticks_per_second
  && a.cycles_per_tick = b.cycles_per_tick
  && a.runs = b.runs

let pp ppf t =
  Format.fprintf ppf
    "@[<v>profile: pc [%d,%d) step %d, %d ticks @@ %d Hz (%.3fs), %d run(s)"
    t.hist.h_lowpc t.hist.h_highpc t.hist.h_bucket_size (total_ticks t)
    t.ticks_per_second (total_seconds t) t.runs;
  Array.iteri
    (fun i c ->
      if c > 0 then
        let lo, hi = bucket_range t.hist i in
        Format.fprintf ppf "@,  bucket %d [%d,%d): %d" i lo hi c)
    t.hist.h_counts;
  List.iter
    (fun a -> Format.fprintf ppf "@,  arc %d -> %d: %d" a.a_from a.a_self a.a_count)
    t.arcs;
  Format.fprintf ppf "@]"

module Icount = struct
  type t = { text_size : int; counts : int array }

  let of_counts counts = { text_size = Array.length counts; counts = Array.copy counts }

  let count t addr =
    if addr < 0 || addr >= t.text_size then
      invalid_arg "Icount.count: address out of range";
    t.counts.(addr)

  let total t = Array.fold_left ( + ) 0 t.counts

  let merge a b =
    if a.text_size <> b.text_size then
      Error "cannot merge instruction counts for different binaries"
    else
      Ok
        {
          text_size = a.text_size;
          counts = Array.mapi (fun i c -> c + b.counts.(i)) a.counts;
        }

  let magic = "ICOUNTOCaml1\n"

  let to_bytes t =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf magic;
    Buffer.add_int64_le buf (Int64.of_int t.text_size);
    let nonzero = Array.fold_left (fun n c -> if c <> 0 then n + 1 else n) 0 t.counts in
    Buffer.add_int64_le buf (Int64.of_int nonzero);
    Array.iteri
      (fun addr c ->
        if c <> 0 then begin
          Buffer.add_int64_le buf (Int64.of_int addr);
          Buffer.add_int64_le buf (Int64.of_int c)
        end)
      t.counts;
    Buffer.contents buf

  let of_bytes s =
    let exception Bad of string in
    try
      let len = String.length s in
      let mlen = String.length magic in
      if len < mlen || String.sub s 0 mlen <> magic then raise (Bad "bad magic");
      let pos = ref mlen in
      let get () =
        if !pos + 8 > len then raise (Bad "truncated file");
        let v = Int64.to_int (String.get_int64_le s !pos) in
        pos := !pos + 8;
        v
      in
      let text_size = get () in
      if text_size < 0 || text_size > 1 lsl 30 then raise (Bad "absurd text size");
      let nonzero = get () in
      if nonzero < 0 || nonzero > text_size then raise (Bad "absurd entry count");
      let counts = Array.make text_size 0 in
      for _ = 1 to nonzero do
        let addr = get () in
        let c = get () in
        if addr < 0 || addr >= text_size then raise (Bad "entry address out of range");
        if c <= 0 then raise (Bad "nonpositive count");
        if counts.(addr) <> 0 then raise (Bad "duplicate entry");
        counts.(addr) <- c
      done;
      if !pos <> len then raise (Bad "trailing bytes");
      Ok { text_size; counts }
    with Bad msg -> Error msg

  let save t path =
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_bytes t))

  let load path =
    match In_channel.with_open_bin path In_channel.input_all with
    | s -> of_bytes s
    | exception Sys_error e -> Error e

  let equal a b = a.text_size = b.text_size && a.counts = b.counts

end
