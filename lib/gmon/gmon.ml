type hist = {
  h_lowpc : int;
  h_highpc : int;
  h_bucket_size : int;
  h_counts : int array;
}

type arc = { a_from : int; a_self : int; a_count : int }

type t = {
  hist : hist;
  arcs : arc list;
  ticks_per_second : int;
  cycles_per_tick : int;
  runs : int;
}

let n_buckets ~lowpc ~highpc ~bucket_size =
  (highpc - lowpc + bucket_size - 1) / bucket_size

let make_hist ~lowpc ~highpc ~bucket_size =
  if bucket_size <= 0 then invalid_arg "Gmon.make_hist: bucket_size must be positive";
  if lowpc < 0 || highpc <= lowpc then
    invalid_arg "Gmon.make_hist: need 0 <= lowpc < highpc";
  {
    h_lowpc = lowpc;
    h_highpc = highpc;
    h_bucket_size = bucket_size;
    h_counts = Array.make (n_buckets ~lowpc ~highpc ~bucket_size) 0;
  }

let bucket_of_pc h pc =
  if pc < h.h_lowpc || pc >= h.h_highpc then None
  else Some ((pc - h.h_lowpc) / h.h_bucket_size)

let bucket_range h i =
  let lo = h.h_lowpc + (i * h.h_bucket_size) in
  (lo, min (lo + h.h_bucket_size) h.h_highpc)

let total_ticks t = Array.fold_left ( + ) 0 t.hist.h_counts

let seconds_of_ticks t ticks = float_of_int ticks /. float_of_int t.ticks_per_second

let total_seconds t = seconds_of_ticks t (total_ticks t)

let arc_count_into t self =
  List.fold_left
    (fun acc a -> if a.a_self = self then acc + a.a_count else acc)
    0 t.arcs

let validate t =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
  let h = t.hist in
  if h.h_bucket_size <= 0 then err "bucket size %d not positive" h.h_bucket_size;
  if h.h_lowpc < 0 || h.h_highpc <= h.h_lowpc then
    err "bad pc range [%d,%d)" h.h_lowpc h.h_highpc;
  (* the bucket-count check only makes sense on a sane geometry (and
     n_buckets divides by the bucket size) *)
  if h.h_bucket_size > 0 && h.h_lowpc >= 0 && h.h_highpc > h.h_lowpc then begin
    let expect =
      n_buckets ~lowpc:h.h_lowpc ~highpc:h.h_highpc ~bucket_size:h.h_bucket_size
    in
    if Array.length h.h_counts <> expect then
      err "histogram has %d buckets, expected %d" (Array.length h.h_counts) expect
  end;
  Array.iteri (fun i c -> if c < 0 then err "negative count in bucket %d" i) h.h_counts;
  let rec arcs_ok = function
    | [] | [ _ ] -> ()
    | a :: (b :: _ as rest) ->
      if compare (a.a_from, a.a_self) (b.a_from, b.a_self) >= 0 then
        err "arcs not strictly sorted at (%d,%d)" b.a_from b.a_self;
      arcs_ok rest
  in
  arcs_ok t.arcs;
  List.iter
    (fun a ->
      if a.a_count < 0 then err "negative arc count on (%d,%d)" a.a_from a.a_self)
    t.arcs;
  if t.ticks_per_second <= 0 then err "ticks_per_second %d not positive" t.ticks_per_second;
  if t.cycles_per_tick <= 0 then err "cycles_per_tick %d not positive" t.cycles_per_tick;
  if t.runs < 1 then err "runs %d < 1" t.runs;
  match List.rev !errs with [] -> Ok () | es -> Error es

(* --- self-observability --------------------------------------------- *)

(* The codec publishes its traffic to the process-wide registry: the
   retrospective found that "reading data files … represents the
   dominating factor" of gprof's own run time, so the byte counts are
   first-class metrics. *)
let m_bytes_written =
  Obs.Metrics.counter Obs.Metrics.default "gmon.bytes_written"
    ~help:"profile data bytes encoded"

let m_bytes_read =
  Obs.Metrics.counter Obs.Metrics.default "gmon.bytes_read"
    ~help:"profile data bytes presented for decoding"

let m_files_loaded = Obs.Metrics.counter Obs.Metrics.default "gmon.files_loaded"

let m_files_saved = Obs.Metrics.counter Obs.Metrics.default "gmon.files_saved"

let m_merges = Obs.Metrics.counter Obs.Metrics.default "gmon.merges"

let m_arcs_merged =
  Obs.Metrics.counter Obs.Metrics.default "gmon.arcs_merged"
    ~help:"arc records combined on key collision during profile summing"

let merge a b =
  let ha = a.hist and hb = b.hist in
  if
    ha.h_lowpc <> hb.h_lowpc || ha.h_highpc <> hb.h_highpc
    || ha.h_bucket_size <> hb.h_bucket_size
  then Error "cannot merge profiles with different histogram layouts"
  else if a.ticks_per_second <> b.ticks_per_second then
    Error "cannot merge profiles with different clock rates"
  else if a.cycles_per_tick <> b.cycles_per_tick then
    Error "cannot merge profiles with different cycle rates"
  else begin
    let counts = Array.mapi (fun i c -> c + hb.h_counts.(i)) ha.h_counts in
    (* Merge two sorted unique arc lists, summing counts on key
       collisions. *)
    let rec go xs ys acc =
      match (xs, ys) with
      | [], rest | rest, [] -> List.rev_append acc rest
      | x :: xs', y :: ys' ->
        let c = compare (x.a_from, x.a_self) (y.a_from, y.a_self) in
        if c = 0 then go xs' ys' ({ x with a_count = x.a_count + y.a_count } :: acc)
        else if c < 0 then go xs' ys (x :: acc)
        else go xs ys' (y :: acc)
    in
    let arcs = go a.arcs b.arcs [] in
    Obs.Metrics.incr m_merges;
    Obs.Metrics.incr m_arcs_merged
      ~by:(List.length a.arcs + List.length b.arcs - List.length arcs);
    Ok
      {
        hist = { ha with h_counts = counts };
        arcs;
        ticks_per_second = a.ticks_per_second;
        cycles_per_tick = a.cycles_per_tick;
        runs = a.runs + b.runs;
      }
  end

(* Balanced k-way summing: merge adjacent pairs until one profile
   remains. The tree shape is invisible in the result — histogram and
   arc addition are exact integer sums, so any association yields the
   same profile (tested) — but a balanced tree keeps every intermediate
   arc list near its final merged size instead of replaying the
   accumulated union against each new input, as the old left fold did.
   The store's compaction funnels through this same code path. *)
let merge_all = function
  | [] -> Error "no profiles to merge"
  | [ g ] -> Ok g
  | gs ->
    let rec round acc = function
      | [] -> Ok (List.rev acc)
      | [ x ] -> Ok (List.rev (x :: acc))
      | x :: y :: rest -> (
        match merge x y with
        | Error e -> Error e
        | Ok m -> round (m :: acc) rest)
    in
    let rec loop = function
      | [ g ] -> Ok g
      | gs -> ( match round [] gs with Error e -> Error e | Ok gs' -> loop gs')
    in
    loop gs

(* --- fault-tolerant binary serialization ---------------------------- *)

(* The interesting profiles come from the runs that died: a program
   killed mid-exit leaves a torn gmon file, and one torn file must not
   poison a whole multi-run summing batch. The codec therefore (1)
   appends a checksum footer so torn or bit-flipped writes are
   detectable, (2) reports decode failures as structured errors
   carrying byte offsets, and (3) offers a salvage mode that recovers
   the valid prefix of buckets and arcs instead of rejecting the
   file. *)

type mode = [ `Strict | `Salvage ]

type decode_error = {
  de_path : string option;
  de_offset : int;
  de_context : string;
  de_msg : string;
}

let decode_error_to_string e =
  let path = match e.de_path with Some p -> p ^ ": " | None -> "" in
  Printf.sprintf "%sat byte %d: %s: %s" path e.de_offset e.de_context e.de_msg

let pp_decode_error ppf e =
  Format.pp_print_string ppf (decode_error_to_string e)

type checksum_state = [ `Ok | `Missing | `Mismatch ]

type report = {
  r_checksum : checksum_state;
  r_dropped_buckets : int;
  r_dropped_arcs : int;
  r_dropped_bytes : int;
  r_notes : string list;
}

let lossless_report =
  { r_checksum = `Ok; r_dropped_buckets = 0; r_dropped_arcs = 0;
    r_dropped_bytes = 0; r_notes = [] }

let report_degraded r =
  r.r_checksum <> `Ok || r.r_dropped_buckets > 0 || r.r_dropped_arcs > 0
  || r.r_dropped_bytes > 0 || r.r_notes <> []

let report_summary r =
  let checksum =
    match r.r_checksum with
    | `Ok -> []
    | `Missing -> [ "checksum footer missing (torn write?)" ]
    | `Mismatch -> [ "checksum mismatch" ]
  in
  let drop what n = if n > 0 then [ Printf.sprintf "%d %s dropped" n what ] else [] in
  String.concat "; "
    (checksum
    @ drop "bucket(s)" r.r_dropped_buckets
    @ drop "arc(s)" r.r_dropped_arcs
    @ drop "byte(s)" r.r_dropped_bytes
    @ r.r_notes)

(* Salvage bookkeeping lands in the default registry so callers can
   report exactly what was dropped without threading the report
   around. *)
let m_decode_errors =
  Obs.Metrics.counter Obs.Metrics.default "gmon.decode_errors"
    ~help:"profile decodes rejected outright (strict or unsalvageable)"

let m_salvaged_files =
  Obs.Metrics.counter Obs.Metrics.default "gmon.salvage.files"
    ~help:"profiles recovered with data loss by salvage decoding"

let m_salvaged_buckets =
  Obs.Metrics.counter Obs.Metrics.default "gmon.salvage.dropped_buckets"

let m_salvaged_arcs =
  Obs.Metrics.counter Obs.Metrics.default "gmon.salvage.dropped_arcs"

let m_salvaged_bytes =
  Obs.Metrics.counter Obs.Metrics.default "gmon.salvage.dropped_bytes"

let m_checksum_mismatches =
  Obs.Metrics.counter Obs.Metrics.default "gmon.checksum_mismatches"

let m_quarantined =
  Obs.Metrics.counter Obs.Metrics.default "gmon.quarantined_files"
    ~help:"undecodable profiles skipped by quarantined summing"

let magic = "GMONOCAML1\n"

(* 8-byte footer tag + 64-bit FNV-1a of everything before it. *)
let footer_magic = "GMCKSUM1"

let footer_len = String.length footer_magic + 8

let fnv1a64 ?len s =
  let len = match len with Some l -> l | None -> String.length s in
  let h = ref 0xcbf29ce484222325L in
  for i = 0 to len - 1 do
    h :=
      Int64.mul
        (Int64.logxor !h (Int64.of_int (Char.code (String.unsafe_get s i))))
        0x100000001b3L
  done;
  !h

let put_i64 buf n = Buffer.add_int64_le buf (Int64.of_int n)

let add_footer buf =
  let body = Buffer.contents buf in
  Buffer.add_string buf footer_magic;
  Buffer.add_int64_le buf (fnv1a64 body)

let to_bytes t =
  let buf = Buffer.create (1024 + (8 * Array.length t.hist.h_counts)) in
  Buffer.add_string buf magic;
  put_i64 buf t.hist.h_lowpc;
  put_i64 buf t.hist.h_highpc;
  put_i64 buf t.hist.h_bucket_size;
  put_i64 buf t.ticks_per_second;
  put_i64 buf t.cycles_per_tick;
  put_i64 buf t.runs;
  put_i64 buf (Array.length t.hist.h_counts);
  Array.iter (put_i64 buf) t.hist.h_counts;
  put_i64 buf (List.length t.arcs);
  List.iter
    (fun a ->
      put_i64 buf a.a_from;
      put_i64 buf a.a_self;
      put_i64 buf a.a_count)
    t.arcs;
  add_footer buf;
  Obs.Metrics.incr m_bytes_written ~by:(Buffer.length buf);
  Buffer.contents buf

(* Locate the checksum footer: [body_len] is where the decodable
   payload ends. A file without a verifiable footer is treated as
   possibly torn — the whole string is the (suspect) body. *)
let split_footer s =
  let len = String.length s in
  if
    len >= String.length magic + footer_len
    && String.sub s (len - footer_len) (String.length footer_magic) = footer_magic
  then begin
    let body_len = len - footer_len in
    let stored = String.get_int64_le s (len - 8) in
    if Int64.equal (fnv1a64 ~len:body_len s) stored then (`Ok, body_len)
    else (`Mismatch, body_len)
  end
  else (`Missing, len)

let decode ?path ~mode s =
  let exception Bad of decode_error in
  let fail ~offset ~context fmt =
    Printf.ksprintf
      (fun msg ->
        raise
          (Bad { de_path = path; de_offset = offset; de_context = context;
                 de_msg = msg }))
      fmt
  in
  Obs.Metrics.incr m_bytes_read ~by:(String.length s);
  let result =
    try
      let mlen = String.length magic in
      if String.length s < mlen || String.sub s 0 mlen <> magic then
        fail ~offset:0 ~context:"magic"
          "expected %S, found %S (not a profile data file)" magic
          (String.sub s 0 (min (String.length s) mlen));
      let checksum, body_len = split_footer s in
      if mode = `Strict && checksum <> `Ok then
        fail ~offset:body_len ~context:"checksum footer"
          "%s: file is torn or corrupt (total %d bytes)"
          (match checksum with
          | `Missing -> "missing"
          | _ -> "stored checksum disagrees with the body")
          (String.length s);
      if checksum = `Mismatch then Obs.Metrics.incr m_checksum_mismatches;
      let dropped_buckets = ref 0 in
      let dropped_arcs = ref 0 in
      let dropped_bytes = ref 0 in
      let notes = ref [] in
      let note fmt = Printf.ksprintf (fun m -> notes := m :: !notes) fmt in
      let pos = ref mlen in
      let get_i64 context =
        if !pos + 8 > body_len then
          fail ~offset:!pos ~context "need 8 bytes, have %d (file ends at %d)"
            (body_len - !pos) body_len;
        let v = Int64.to_int (String.get_int64_le s !pos) in
        pos := !pos + 8;
        v
      in
      (* The header is load-bearing: without its geometry and clock
         rates nothing downstream can be interpreted, so a header
         failure is unrecoverable even in salvage mode. *)
      let header_field context =
        let offset = !pos in
        let v = get_i64 context in
        (offset, v)
      in
      let _, lowpc = header_field "header field lowpc" in
      let hp_off, highpc = header_field "header field highpc" in
      let bs_off, bucket_size = header_field "header field bucket_size" in
      let tps_off, ticks_per_second = header_field "header field ticks_per_second" in
      let cpt_off, cycles_per_tick = header_field "header field cycles_per_tick" in
      let runs_off, runs = header_field "header field runs" in
      if bucket_size <= 0 then
        fail ~offset:bs_off ~context:"header field bucket_size"
          "%d not positive" bucket_size;
      if lowpc < 0 || highpc <= lowpc then
        fail ~offset:hp_off ~context:"header pc range" "bad range [%d,%d)" lowpc
          highpc;
      if ticks_per_second <= 0 then
        fail ~offset:tps_off ~context:"header field ticks_per_second"
          "%d not positive" ticks_per_second;
      if cycles_per_tick <= 0 then
        fail ~offset:cpt_off ~context:"header field cycles_per_tick"
          "%d not positive" cycles_per_tick;
      if runs < 1 then
        fail ~offset:runs_off ~context:"header field runs" "%d < 1" runs;
      let expect = n_buckets ~lowpc ~highpc ~bucket_size in
      if expect < 0 || expect > 1 lsl 26 then
        fail ~offset:hp_off ~context:"header pc range"
          "range [%d,%d) at bucket size %d implies an absurd bucket count" lowpc
          highpc bucket_size;
      let nb_off = !pos in
      let stored_buckets = get_i64 "bucket count" in
      if stored_buckets <> expect then begin
        if mode = `Strict then
          fail ~offset:nb_off ~context:"bucket count"
            "stored count %d disagrees with the pc range (expected %d)"
            stored_buckets expect
        else
          note "stored bucket count %d disagrees with the pc range; using %d"
            stored_buckets expect
      end;
      (* Buckets: in salvage mode a short or damaged histogram is
         zero-filled — zeros never invent ticks, and the geometry stays
         intact so the result still validates. *)
      let counts = Array.make expect 0 in
      let i = ref 0 in
      (try
         while !i < expect do
           let off = !pos in
           let c = get_i64 (Printf.sprintf "bucket %d" !i) in
           if c < 0 then
             if mode = `Strict then
               fail ~offset:off ~context:(Printf.sprintf "bucket %d" !i)
                 "negative count %d" c
             else begin
               incr dropped_buckets;
               note "bucket %d had negative count %d; zeroed" !i c
             end
           else counts.(!i) <- c;
           incr i
         done
       with Bad e when mode = `Salvage ->
         dropped_buckets := !dropped_buckets + (expect - !i);
         note "histogram truncated at byte %d: buckets %d..%d zero-filled"
           e.de_offset !i (expect - 1);
         pos := body_len);
      if mode = `Salvage && stored_buckets > expect then begin
        let skip = min ((stored_buckets - expect) * 8) (body_len - !pos) in
        dropped_bytes := !dropped_bytes + skip;
        pos := !pos + skip
      end;
      (* Arcs: recover whole records; a partial trailing record or a
         record with a negative count is dropped, never repaired. *)
      let rev_arcs = ref [] in
      let n_read = ref 0 in
      (try
         let na_off = !pos in
         let narcs = get_i64 "arc count" in
         if narcs < 0 || narcs > 1 lsl 30 then
           fail ~offset:na_off ~context:"arc count" "absurd value %d" narcs;
         while !n_read < narcs do
           let off = !pos in
           if !pos + 24 > body_len then
             fail ~offset:!pos ~context:(Printf.sprintf "arc %d" !n_read)
               "need 24 bytes, have %d" (body_len - !pos);
           let a_from = get_i64 "arc from" in
           let a_self = get_i64 "arc self" in
           let a_count = get_i64 "arc count field" in
           if a_count < 0 then
             if mode = `Strict then
               fail ~offset:off ~context:(Printf.sprintf "arc %d" !n_read)
                 "negative traversal count %d" a_count
             else begin
               incr dropped_arcs;
               note "arc %d (%d -> %d) had negative count %d; dropped" !n_read
                 a_from a_self a_count
             end
           else rev_arcs := { a_from; a_self; a_count } :: !rev_arcs;
           incr n_read
         done
       with Bad e when mode = `Salvage ->
         note "arc table ends early at byte %d after %d whole record(s)"
           e.de_offset !n_read;
         incr dropped_arcs;
         dropped_bytes := !dropped_bytes + (body_len - !pos);
         pos := body_len);
      let arcs = List.rev !rev_arcs in
      (* Strict files are written sorted; a salvaged bit-flip may break
         the order, so restore it and drop duplicate keys (first
         record wins — reordering invents nothing, merging would). *)
      let arcs =
        let rec sorted = function
          | [] | [ _ ] -> true
          | a :: (b :: _ as rest) ->
            compare (a.a_from, a.a_self) (b.a_from, b.a_self) < 0 && sorted rest
        in
        if sorted arcs then arcs
        else if mode = `Strict then
          fail ~offset:!pos ~context:"arc table" "records not strictly sorted"
        else begin
          note "arc table unsorted; reordered";
          let sorted_arcs =
            List.stable_sort
              (fun a b -> compare (a.a_from, a.a_self) (b.a_from, b.a_self))
              arcs
          in
          let rec dedup = function
            | [] -> []
            | [ a ] -> [ a ]
            | a :: (b :: _ as rest) ->
              if (a.a_from, a.a_self) = (b.a_from, b.a_self) then begin
                incr dropped_arcs;
                dedup (a :: List.tl rest)
              end
              else a :: dedup rest
          in
          dedup sorted_arcs
        end
      in
      if !pos <> body_len then begin
        if mode = `Strict then
          fail ~offset:!pos ~context:"end of file" "%d trailing bytes"
            (body_len - !pos)
        else begin
          dropped_bytes := !dropped_bytes + (body_len - !pos);
          note "%d trailing byte(s) ignored" (body_len - !pos)
        end
      end;
      let t =
        {
          hist =
            { h_lowpc = lowpc; h_highpc = highpc; h_bucket_size = bucket_size;
              h_counts = counts };
          arcs;
          ticks_per_second;
          cycles_per_tick;
          runs;
        }
      in
      (match validate t with
      | Ok () -> ()
      | Error es ->
        fail ~offset:0 ~context:"validation" "%s" (String.concat "; " es));
      let report =
        {
          r_checksum = checksum;
          r_dropped_buckets = !dropped_buckets;
          r_dropped_arcs = !dropped_arcs;
          r_dropped_bytes = !dropped_bytes;
          r_notes = List.rev !notes;
        }
      in
      Ok (t, report)
    with Bad e -> Error e
  in
  (match result with
  | Error _ -> Obs.Metrics.incr m_decode_errors
  | Ok (_, r) when report_degraded r ->
    Obs.Metrics.incr m_salvaged_files;
    Obs.Metrics.incr m_salvaged_buckets ~by:r.r_dropped_buckets;
    Obs.Metrics.incr m_salvaged_arcs ~by:r.r_dropped_arcs;
    Obs.Metrics.incr m_salvaged_bytes ~by:r.r_dropped_bytes
  | Ok _ -> ());
  result

let of_bytes s =
  match decode ~mode:`Strict s with
  | Ok (t, _) -> Ok t
  | Error e -> Error (decode_error_to_string e)

(* --- crash-safe emission -------------------------------------------- *)

(* Deliberate fault injection for the emission path: [Some n] makes
   the next save write only the first [n] bytes straight to the final
   path and stop — the torn file a non-atomic writer leaves when the
   process dies mid-condense. One-shot, consumed by the next save. *)
let torn_save_request : int option ref = ref None

let inject_torn_save n = torn_save_request := n

let write_file_atomic ~what path data =
  match !torn_save_request with
  | Some n ->
    torn_save_request := None;
    let n = max 0 (min n (String.length data)) in
    (try
       let oc = open_out_bin path in
       Fun.protect
         ~finally:(fun () -> close_out oc)
         (fun () -> output_string oc (String.sub data 0 n));
       Error
         (Printf.sprintf
            "%s: fault injected: torn write stopped after %d of %d bytes" path n
            (String.length data))
     with Sys_error e -> Error e)
  | None -> (
    (* Write to a temp file in the same directory, then rename: a
       crash leaves either the old file or the new one, never a torn
       hybrid, and the checksum footer catches whatever a dying
       filesystem still manages to tear. *)
    let tmp = path ^ ".tmp" in
    try
      let oc = open_out_bin tmp in
      (try
         Fun.protect
           ~finally:(fun () -> close_out oc)
           (fun () -> output_string oc data)
       with Sys_error e ->
         (try Sys.remove tmp with Sys_error _ -> ());
         raise (Sys_error e));
      Sys.rename tmp path;
      Ok ()
    with Sys_error e -> Error (Printf.sprintf "%s: cannot save %s: %s" path what e))

let save t path =
  Obs.Metrics.incr m_files_saved;
  Obs.Trace.with_span ~cat:"gmon" "gmon-save" (fun () ->
      write_file_atomic ~what:"profile data" path (to_bytes t))

let load_report ?(mode : mode = `Strict) path =
  Obs.Metrics.incr m_files_loaded;
  Obs.Trace.with_span ~cat:"gmon" "gmon-load" ~args:[ ("path", path) ] (fun () ->
      match In_channel.with_open_bin path In_channel.input_all with
      | s -> decode ~path ~mode s
      | exception Sys_error e ->
        Obs.Metrics.incr m_decode_errors;
        Error { de_path = Some path; de_offset = 0; de_context = "open"; de_msg = e })

let load ?(mode : mode = `Strict) path =
  match load_report ~mode path with
  | Ok (t, _) -> Ok t
  | Error e -> Error (decode_error_to_string e)

(* --- quarantined summing -------------------------------------------- *)

type quarantined = { q_path : string; q_reason : string }

let merge_all_quarantine inputs =
  let rev_quarantined = ref [] in
  let quarantine path reason =
    rev_quarantined := { q_path = path; q_reason = reason } :: !rev_quarantined;
    Obs.Metrics.incr m_quarantined
  in
  let acc =
    List.fold_left
      (fun acc (path, r) ->
        match r with
        | Error e ->
          quarantine path e;
          acc
        | Ok g -> (
          match acc with
          | None -> Some g
          | Some a -> (
            match merge a g with
            | Ok m -> Some m
            | Error e ->
              quarantine path e;
              Some a)))
      None inputs
  in
  match acc with
  | Some t -> Ok (t, List.rev !rev_quarantined)
  | None ->
    Error
      (if inputs = [] then "no profiles to merge"
       else
         Printf.sprintf "all %d profile(s) quarantined: %s" (List.length inputs)
           (String.concat "; "
              (List.map
                 (fun q -> Printf.sprintf "%s (%s)" q.q_path q.q_reason)
                 (List.rev !rev_quarantined))))

let load_merge ?(mode : mode = `Strict) paths =
  let loaded =
    List.map
      (fun p ->
        match load_report ~mode p with
        | Ok (t, rep) -> (p, Ok t, Some rep)
        | Error e ->
          (* the path is carried separately by the quarantine record *)
          (p, Error (decode_error_to_string { e with de_path = None }), None))
      paths
  in
  match
    merge_all_quarantine (List.map (fun (p, r, _) -> (p, r)) loaded)
  with
  | Error e -> Error e
  | Ok (t, quarantined) ->
    let reports =
      List.filter_map
        (fun (p, _, rep) -> Option.map (fun r -> (p, r)) rep)
        loaded
    in
    Ok (t, reports, quarantined)

let equal a b =
  a.hist.h_lowpc = b.hist.h_lowpc
  && a.hist.h_highpc = b.hist.h_highpc
  && a.hist.h_bucket_size = b.hist.h_bucket_size
  && a.hist.h_counts = b.hist.h_counts
  && a.arcs = b.arcs
  && a.ticks_per_second = b.ticks_per_second
  && a.cycles_per_tick = b.cycles_per_tick
  && a.runs = b.runs

let pp ppf t =
  Format.fprintf ppf
    "@[<v>profile: pc [%d,%d) step %d, %d ticks @@ %d Hz (%.3fs), %d run(s)"
    t.hist.h_lowpc t.hist.h_highpc t.hist.h_bucket_size (total_ticks t)
    t.ticks_per_second (total_seconds t) t.runs;
  Array.iteri
    (fun i c ->
      if c > 0 then
        let lo, hi = bucket_range t.hist i in
        Format.fprintf ppf "@,  bucket %d [%d,%d): %d" i lo hi c)
    t.hist.h_counts;
  List.iter
    (fun a -> Format.fprintf ppf "@,  arc %d -> %d: %d" a.a_from a.a_self a.a_count)
    t.arcs;
  Format.fprintf ppf "@]"

type profile = t

module Wire = struct
  let fnv1a64 = fnv1a64

  let add_footer = add_footer

  let split_footer = split_footer

  let write_file_atomic = write_file_atomic
end

module Icount = struct
  type t = { text_size : int; counts : int array }

  let of_counts counts = { text_size = Array.length counts; counts = Array.copy counts }

  let count t addr =
    if addr < 0 || addr >= t.text_size then
      invalid_arg "Icount.count: address out of range";
    t.counts.(addr)

  let total t = Array.fold_left ( + ) 0 t.counts

  let merge a b =
    if a.text_size <> b.text_size then
      Error "cannot merge instruction counts for different binaries"
    else
      Ok
        {
          text_size = a.text_size;
          counts = Array.mapi (fun i c -> c + b.counts.(i)) a.counts;
        }

  let magic = "ICOUNTOCaml1\n"

  let to_bytes t =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf magic;
    Buffer.add_int64_le buf (Int64.of_int t.text_size);
    let nonzero = Array.fold_left (fun n c -> if c <> 0 then n + 1 else n) 0 t.counts in
    Buffer.add_int64_le buf (Int64.of_int nonzero);
    Array.iteri
      (fun addr c ->
        if c <> 0 then begin
          Buffer.add_int64_le buf (Int64.of_int addr);
          Buffer.add_int64_le buf (Int64.of_int c)
        end)
      t.counts;
    add_footer buf;
    Buffer.contents buf

  let of_bytes s =
    let exception Bad of string in
    let bad ~offset fmt =
      Printf.ksprintf (fun m -> raise (Bad (Printf.sprintf "at byte %d: %s" offset m))) fmt
    in
    try
      let mlen = String.length magic in
      if String.length s < mlen || String.sub s 0 mlen <> magic then
        bad ~offset:0 "bad magic (not an instruction-count file)";
      let checksum, len = split_footer s in
      if checksum <> `Ok then
        bad ~offset:len "checksum footer %s: file is torn or corrupt"
          (match checksum with `Missing -> "missing" | _ -> "mismatched");
      let pos = ref mlen in
      let get what =
        if !pos + 8 > len then
          bad ~offset:!pos "truncated reading %s: need 8 bytes, have %d" what
            (len - !pos);
        let v = Int64.to_int (String.get_int64_le s !pos) in
        pos := !pos + 8;
        v
      in
      let text_size = get "text size" in
      if text_size < 0 || text_size > 1 lsl 30 then
        bad ~offset:(!pos - 8) "absurd text size %d" text_size;
      let nonzero = get "entry count" in
      if nonzero < 0 || nonzero > text_size then
        bad ~offset:(!pos - 8) "absurd entry count %d for text size %d" nonzero
          text_size;
      let counts = Array.make text_size 0 in
      for i = 1 to nonzero do
        let addr = get (Printf.sprintf "entry %d address" i) in
        let c = get (Printf.sprintf "entry %d count" i) in
        if addr < 0 || addr >= text_size then
          bad ~offset:(!pos - 16) "entry address %d outside text [0,%d)" addr
            text_size;
        if c <= 0 then bad ~offset:(!pos - 8) "nonpositive count %d" c;
        if counts.(addr) <> 0 then
          bad ~offset:(!pos - 16) "duplicate entry for address %d" addr;
        counts.(addr) <- c
      done;
      if !pos <> len then bad ~offset:!pos "%d trailing bytes" (len - !pos);
      Ok { text_size; counts }
    with Bad msg -> Error msg

  let save t path = write_file_atomic ~what:"instruction counts" path (to_bytes t)

  let load path =
    match In_channel.with_open_bin path In_channel.input_all with
    | s -> (
      match of_bytes s with
      | Ok t -> Ok t
      | Error e -> Error (Printf.sprintf "%s: %s" path e))
    | exception Sys_error e -> Error e

  let equal a b = a.text_size = b.text_size && a.counts = b.counts

end

module Epoch = struct
  type entry = {
    ep_end_cycle : int;
    ep_end_tick : int;
    ep_counts : int array;
    ep_arcs : arc list;
  }

  type t = {
    e_lowpc : int;
    e_highpc : int;
    e_bucket_size : int;
    e_ticks_per_second : int;
    e_cycles_per_tick : int;
    e_epochs : entry list;
  }

  let n_epochs c = List.length c.e_epochs

  let container_buckets c =
    n_buckets ~lowpc:c.e_lowpc ~highpc:c.e_highpc ~bucket_size:c.e_bucket_size

  let validate c =
    let errs = ref [] in
    let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
    if c.e_bucket_size <= 0 then err "bucket size %d not positive" c.e_bucket_size;
    if c.e_lowpc < 0 || c.e_highpc <= c.e_lowpc then
      err "bad pc range [%d,%d)" c.e_lowpc c.e_highpc;
    if c.e_ticks_per_second <= 0 then
      err "ticks_per_second %d not positive" c.e_ticks_per_second;
    if c.e_cycles_per_tick <= 0 then
      err "cycles_per_tick %d not positive" c.e_cycles_per_tick;
    if !errs = [] then begin
      let nb = container_buckets c in
      let prev_cycle = ref 0 and prev_tick = ref 0 in
      List.iteri
        (fun k e ->
          let k = k + 1 in
          if Array.length e.ep_counts <> nb then
            err "epoch %d has %d buckets, expected %d" k
              (Array.length e.ep_counts) nb;
          Array.iteri
            (fun i n -> if n < 0 then err "epoch %d bucket %d negative" k i)
            e.ep_counts;
          let rec arcs_ok = function
            | [] | [ _ ] -> ()
            | a :: (b :: _ as rest) ->
              if compare (a.a_from, a.a_self) (b.a_from, b.a_self) >= 0 then
                err "epoch %d arcs not strictly sorted at (%d,%d)" k b.a_from
                  b.a_self;
              arcs_ok rest
          in
          arcs_ok e.ep_arcs;
          List.iter
            (fun a ->
              if a.a_count < 0 then
                err "epoch %d negative arc count on (%d,%d)" k a.a_from a.a_self)
            e.ep_arcs;
          if e.ep_end_cycle < !prev_cycle then
            err "epoch %d cycle boundary %d before %d" k e.ep_end_cycle !prev_cycle;
          if e.ep_end_tick < !prev_tick then
            err "epoch %d tick boundary %d before %d" k e.ep_end_tick !prev_tick;
          prev_cycle := e.ep_end_cycle;
          prev_tick := e.ep_end_tick)
        c.e_epochs
    end;
    match List.rev !errs with [] -> Ok () | es -> Error es

  let profile_of c e =
    {
      hist =
        { h_lowpc = c.e_lowpc; h_highpc = c.e_highpc;
          h_bucket_size = c.e_bucket_size; h_counts = Array.copy e.ep_counts };
      arcs = e.ep_arcs;
      ticks_per_second = c.e_ticks_per_second;
      cycles_per_tick = c.e_cycles_per_tick;
      runs = 1;
    }

  let nth c k =
    if k < 1 || k > n_epochs c then
      Error
        (Printf.sprintf "epoch %d out of range (container has %d)" k
           (n_epochs c))
    else Ok (List.nth c.e_epochs (k - 1))

  (* Merge two sorted unique arc lists, summing counts on collision. *)
  let add_arcs xs ys =
    let rec go xs ys acc =
      match (xs, ys) with
      | [], rest | rest, [] -> List.rev_append acc rest
      | x :: xs', y :: ys' ->
        let c = compare (x.a_from, x.a_self) (y.a_from, y.a_self) in
        if c = 0 then go xs' ys' ({ x with a_count = x.a_count + y.a_count } :: acc)
        else if c < 0 then go xs' ys (x :: acc)
        else go xs ys' (y :: acc)
    in
    go xs ys []

  let sum c =
    match c.e_epochs with
    | [] -> Error "epoch container is empty"
    | es -> (
      match validate c with
      | Error errs -> Error (String.concat "; " errs)
      | Ok () ->
        let counts = Array.make (container_buckets c) 0 in
        let arcs =
          List.fold_left
            (fun acc e ->
              Array.iteri (fun i n -> counts.(i) <- counts.(i) + n) e.ep_counts;
              add_arcs acc e.ep_arcs)
            [] es
        in
        Ok
          {
            hist =
              { h_lowpc = c.e_lowpc; h_highpc = c.e_highpc;
                h_bucket_size = c.e_bucket_size; h_counts = counts };
            arcs;
            ticks_per_second = c.e_ticks_per_second;
            cycles_per_tick = c.e_cycles_per_tick;
            runs = 1;
          })

  (* --- serialization ------------------------------------------------ *)

  let magic = "GMONEPOCH1\n"

  let sniff_bytes s =
    String.length s >= String.length magic
    && String.sub s 0 (String.length magic) = magic

  let sniff_file path =
    match
      In_channel.with_open_bin path (fun ic ->
          really_input_string ic (String.length magic))
    with
    | s -> s = magic
    | exception (Sys_error _ | End_of_file) -> false

  let to_bytes c =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf magic;
    put_i64 buf c.e_lowpc;
    put_i64 buf c.e_highpc;
    put_i64 buf c.e_bucket_size;
    put_i64 buf c.e_ticks_per_second;
    put_i64 buf c.e_cycles_per_tick;
    put_i64 buf (List.length c.e_epochs);
    List.iter
      (fun e ->
        put_i64 buf e.ep_end_cycle;
        put_i64 buf e.ep_end_tick;
        let nonzero =
          Array.fold_left (fun n x -> if x <> 0 then n + 1 else n) 0 e.ep_counts
        in
        put_i64 buf nonzero;
        Array.iteri
          (fun i x ->
            if x <> 0 then begin
              put_i64 buf i;
              put_i64 buf x
            end)
          e.ep_counts;
        put_i64 buf (List.length e.ep_arcs);
        List.iter
          (fun a ->
            put_i64 buf a.a_from;
            put_i64 buf a.a_self;
            put_i64 buf a.a_count)
          e.ep_arcs)
      c.e_epochs;
    add_footer buf;
    Obs.Metrics.incr m_bytes_written ~by:(Buffer.length buf);
    Buffer.contents buf

  let m_salvaged_epochs =
    Obs.Metrics.counter Obs.Metrics.default "gmon.salvage.dropped_epochs"
      ~help:"whole epochs dropped from the tail of torn timeline containers"

  let decode ?path ~mode s =
    let exception Bad of decode_error in
    let fail ~offset ~context fmt =
      Printf.ksprintf
        (fun msg ->
          raise
            (Bad { de_path = path; de_offset = offset; de_context = context;
                   de_msg = msg }))
        fmt
    in
    Obs.Metrics.incr m_bytes_read ~by:(String.length s);
    let result =
      try
        let mlen = String.length magic in
        if not (sniff_bytes s) then
          fail ~offset:0 ~context:"magic"
            "expected %S, found %S (not an epoch container)" magic
            (String.sub s 0 (min (String.length s) mlen));
        let checksum, body_len = split_footer s in
        if mode = `Strict && checksum <> `Ok then
          fail ~offset:body_len ~context:"checksum footer"
            "%s: file is torn or corrupt (total %d bytes)"
            (match checksum with
            | `Missing -> "missing"
            | _ -> "stored checksum disagrees with the body")
            (String.length s);
        if checksum = `Mismatch then Obs.Metrics.incr m_checksum_mismatches;
        let dropped_bytes = ref 0 in
        let notes = ref [] in
        let note fmt = Printf.ksprintf (fun m -> notes := m :: !notes) fmt in
        let pos = ref mlen in
        let get_i64 context =
          if !pos + 8 > body_len then
            fail ~offset:!pos ~context "need 8 bytes, have %d (file ends at %d)"
              (body_len - !pos) body_len;
          let v = Int64.to_int (String.get_int64_le s !pos) in
          pos := !pos + 8;
          v
        in
        (* Header damage is unrecoverable in either mode: without the
           geometry and clock rates no epoch can be interpreted. *)
        let lowpc = get_i64 "header field lowpc" in
        let hp_off = !pos in
        let highpc = get_i64 "header field highpc" in
        let bs_off = !pos in
        let bucket_size = get_i64 "header field bucket_size" in
        let tps_off = !pos in
        let ticks_per_second = get_i64 "header field ticks_per_second" in
        let cpt_off = !pos in
        let cycles_per_tick = get_i64 "header field cycles_per_tick" in
        if bucket_size <= 0 then
          fail ~offset:bs_off ~context:"header field bucket_size"
            "%d not positive" bucket_size;
        if lowpc < 0 || highpc <= lowpc then
          fail ~offset:hp_off ~context:"header pc range" "bad range [%d,%d)"
            lowpc highpc;
        if ticks_per_second <= 0 then
          fail ~offset:tps_off ~context:"header field ticks_per_second"
            "%d not positive" ticks_per_second;
        if cycles_per_tick <= 0 then
          fail ~offset:cpt_off ~context:"header field cycles_per_tick"
            "%d not positive" cycles_per_tick;
        let nb = n_buckets ~lowpc ~highpc ~bucket_size in
        if nb < 0 || nb > 1 lsl 26 then
          fail ~offset:hp_off ~context:"header pc range"
            "range [%d,%d) at bucket size %d implies an absurd bucket count"
            lowpc highpc bucket_size;
        let ne_off = !pos in
        let stored_epochs = get_i64 "epoch count" in
        if stored_epochs < 0 || stored_epochs > 1 lsl 20 then
          fail ~offset:ne_off ~context:"epoch count" "absurd value %d"
            stored_epochs;
        (* Epochs are recovered whole or not at all: a failure inside
           epoch k drops k and everything after it — the prefix is
           intact data, the tail is never guessed at. *)
        let rev_epochs = ref [] in
        let k = ref 0 in
        let prev_cycle = ref 0 and prev_tick = ref 0 in
        let last_good = ref !pos in
        (try
           while !k < stored_epochs do
             let ctx fmt = Printf.ksprintf (fun c -> c) fmt in
             let e_ctx = ctx "epoch %d" (!k + 1) in
             let end_cycle = get_i64 (e_ctx ^ " end_cycle") in
             let end_tick = get_i64 (e_ctx ^ " end_tick") in
             if end_cycle < !prev_cycle || end_tick < !prev_tick then
               fail ~offset:!pos ~context:e_ctx
                 "boundary (%d cycles, %d ticks) before its predecessor"
                 end_cycle end_tick;
             let nz_off = !pos in
             let nonzero = get_i64 (e_ctx ^ " bucket entry count") in
             if nonzero < 0 || nonzero > nb then
               fail ~offset:nz_off ~context:(e_ctx ^ " bucket entry count")
                 "absurd value %d for %d buckets" nonzero nb;
             let counts = Array.make nb 0 in
             let prev_idx = ref (-1) in
             for _ = 1 to nonzero do
               let i_off = !pos in
               let i = get_i64 (e_ctx ^ " bucket index") in
               let c = get_i64 (e_ctx ^ " bucket delta") in
               if i <= !prev_idx || i >= nb then
                 fail ~offset:i_off ~context:(e_ctx ^ " bucket index")
                   "index %d out of order or outside [0,%d)" i nb;
               if c < 0 then
                 fail ~offset:(i_off + 8) ~context:(e_ctx ^ " bucket delta")
                   "negative count %d" c;
               counts.(i) <- c;
               prev_idx := i
             done;
             let na_off = !pos in
             let narcs = get_i64 (e_ctx ^ " arc count") in
             if narcs < 0 || narcs > 1 lsl 26 then
               fail ~offset:na_off ~context:(e_ctx ^ " arc count")
                 "absurd value %d" narcs;
             let rev_arcs = ref [] in
             let prev_key = ref None in
             for _ = 1 to narcs do
               let a_off = !pos in
               let a_from = get_i64 (e_ctx ^ " arc from") in
               let a_self = get_i64 (e_ctx ^ " arc self") in
               let a_count = get_i64 (e_ctx ^ " arc count field") in
               (match !prev_key with
               | Some key when compare key (a_from, a_self) >= 0 ->
                 fail ~offset:a_off ~context:(e_ctx ^ " arc table")
                   "records not strictly sorted at (%d,%d)" a_from a_self
               | _ -> ());
               if a_count < 0 then
                 fail ~offset:(a_off + 16) ~context:(e_ctx ^ " arc count field")
                   "negative traversal count %d" a_count;
               rev_arcs := { a_from; a_self; a_count } :: !rev_arcs;
               prev_key := Some (a_from, a_self)
             done;
             rev_epochs :=
               { ep_end_cycle = end_cycle; ep_end_tick = end_tick;
                 ep_counts = counts; ep_arcs = List.rev !rev_arcs }
               :: !rev_epochs;
             prev_cycle := end_cycle;
             prev_tick := end_tick;
             incr k;
             last_good := !pos
           done
         with Bad e when mode = `Salvage ->
           Obs.Metrics.incr m_salvaged_epochs ~by:(stored_epochs - !k);
           note "epoch stream damaged at byte %d: epoch(s) %d..%d dropped"
             e.de_offset (!k + 1) stored_epochs;
           dropped_bytes := !dropped_bytes + (body_len - !last_good);
           pos := body_len);
        if !pos <> body_len then begin
          if mode = `Strict then
            fail ~offset:!pos ~context:"end of file" "%d trailing bytes"
              (body_len - !pos)
          else begin
            dropped_bytes := !dropped_bytes + (body_len - !pos);
            note "%d trailing byte(s) ignored" (body_len - !pos)
          end
        end;
        let c =
          {
            e_lowpc = lowpc;
            e_highpc = highpc;
            e_bucket_size = bucket_size;
            e_ticks_per_second = ticks_per_second;
            e_cycles_per_tick = cycles_per_tick;
            e_epochs = List.rev !rev_epochs;
          }
        in
        (match validate c with
        | Ok () -> ()
        | Error es ->
          fail ~offset:0 ~context:"validation" "%s" (String.concat "; " es));
        let report =
          {
            r_checksum = checksum;
            r_dropped_buckets = 0;
            r_dropped_arcs = 0;
            r_dropped_bytes = !dropped_bytes;
            r_notes = List.rev !notes;
          }
        in
        Ok (c, report)
      with Bad e -> Error e
    in
    (match result with
    | Error _ -> Obs.Metrics.incr m_decode_errors
    | Ok (_, r) when report_degraded r ->
      Obs.Metrics.incr m_salvaged_files;
      Obs.Metrics.incr m_salvaged_bytes ~by:r.r_dropped_bytes
    | Ok _ -> ());
    result

  let of_bytes s =
    match decode ~mode:`Strict s with
    | Ok (c, _) -> Ok c
    | Error e -> Error (decode_error_to_string e)

  let save c path =
    Obs.Metrics.incr m_files_saved;
    Obs.Trace.with_span ~cat:"gmon" "epoch-save" (fun () ->
        write_file_atomic ~what:"epoch container" path (to_bytes c))

  let load_report ?(mode : mode = `Strict) path =
    Obs.Metrics.incr m_files_loaded;
    Obs.Trace.with_span ~cat:"gmon" "epoch-load" ~args:[ ("path", path) ]
      (fun () ->
        match In_channel.with_open_bin path In_channel.input_all with
        | s -> decode ~path ~mode s
        | exception Sys_error e ->
          Obs.Metrics.incr m_decode_errors;
          Error
            { de_path = Some path; de_offset = 0; de_context = "open";
              de_msg = e })

  let load ?(mode : mode = `Strict) path =
    match load_report ~mode path with
    | Ok (c, _) -> Ok c
    | Error e -> Error (decode_error_to_string e)

  let equal a b =
    a.e_lowpc = b.e_lowpc
    && a.e_highpc = b.e_highpc
    && a.e_bucket_size = b.e_bucket_size
    && a.e_ticks_per_second = b.e_ticks_per_second
    && a.e_cycles_per_tick = b.e_cycles_per_tick
    && List.length a.e_epochs = List.length b.e_epochs
    && List.for_all2
         (fun x y ->
           x.ep_end_cycle = y.ep_end_cycle
           && x.ep_end_tick = y.ep_end_tick
           && x.ep_counts = y.ep_counts
           && x.ep_arcs = y.ep_arcs)
         a.e_epochs b.e_epochs

end

module Sprof = struct
  type t = {
    sp_sample_interval : int;
    sp_ticks_per_second : int;
    sp_cycles_per_tick : int;
    sp_runs : int;
    sp_stacks : (int array * int) list;
  }

  (* Explicit lexicographic order over frame addresses (shorter stack
     first on a shared prefix): the canonical order every container
     stores its table in, so that equal merges are byte-identical
     regardless of the order inputs arrived in. Deliberately not the
     polymorphic compare, whose array ordering puts length first. *)
  let compare_stack a b =
    let la = Array.length a and lb = Array.length b in
    let rec go i =
      if i >= la || i >= lb then compare la lb
      else
        let c = compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

  (* Sort into canonical order and sum counts of duplicate stacks;
     zero- or negative-count entries are dropped (they carry no
     samples). *)
  let normalize stacks =
    let sorted =
      List.filter (fun (_, c) -> c > 0) stacks
      |> List.stable_sort (fun (a, _) (b, _) -> compare_stack a b)
    in
    let rec fuse = function
      | [] -> []
      | [ x ] -> [ x ]
      | (s1, c1) :: ((s2, c2) :: rest as tl) ->
        if compare_stack s1 s2 = 0 then fuse ((s1, c1 + c2) :: rest)
        else (s1, c1) :: fuse tl
    in
    fuse sorted

  let of_folded ~sample_interval ~ticks_per_second ~cycles_per_tick folded =
    if sample_interval < 1 then
      invalid_arg "Sprof.of_folded: sample_interval must be >= 1";
    if ticks_per_second < 1 then
      invalid_arg "Sprof.of_folded: ticks_per_second must be >= 1";
    if cycles_per_tick < 1 then
      invalid_arg "Sprof.of_folded: cycles_per_tick must be >= 1";
    {
      sp_sample_interval = sample_interval;
      sp_ticks_per_second = ticks_per_second;
      sp_cycles_per_tick = cycles_per_tick;
      sp_runs = 1;
      sp_stacks = normalize (List.map (fun (s, c) -> (Array.copy s, c)) folded);
    }

  let n_stacks t = List.length t.sp_stacks

  let n_samples t = List.fold_left (fun a (_, c) -> a + c) 0 t.sp_stacks

  let seconds_per_sample t =
    float_of_int t.sp_sample_interval /. float_of_int t.sp_ticks_per_second

  let total_seconds t = float_of_int (n_samples t) *. seconds_per_sample t

  let validate t =
    let errs = ref [] in
    let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
    if t.sp_sample_interval < 1 then
      err "sample_interval %d < 1" t.sp_sample_interval;
    if t.sp_ticks_per_second <= 0 then
      err "ticks_per_second %d not positive" t.sp_ticks_per_second;
    if t.sp_cycles_per_tick <= 0 then
      err "cycles_per_tick %d not positive" t.sp_cycles_per_tick;
    if t.sp_runs < 1 then err "runs %d < 1" t.sp_runs;
    List.iteri
      (fun i (s, c) ->
        if c < 1 then err "stack %d has nonpositive count %d" i c;
        Array.iter (fun a -> if a < 0 then err "stack %d has negative frame" i) s)
      t.sp_stacks;
    let rec sorted_ok i = function
      | [] | [ _ ] -> ()
      | (a, _) :: (((b, _) :: _) as rest) ->
        if compare_stack a b >= 0 then err "stacks not strictly sorted at %d" (i + 1);
        sorted_ok (i + 1) rest
    in
    sorted_ok 0 t.sp_stacks;
    match List.rev !errs with [] -> Ok () | es -> Error es

  (* --- self-observability ------------------------------------------- *)

  let m_bytes_written =
    Obs.Metrics.counter Obs.Metrics.default "sprof.codec.bytes_written"
      ~help:"sampled-profile bytes encoded"

  let m_bytes_read =
    Obs.Metrics.counter Obs.Metrics.default "sprof.codec.bytes_read"
      ~help:"sampled-profile bytes presented for decoding"

  let m_files_loaded =
    Obs.Metrics.counter Obs.Metrics.default "sprof.codec.files_loaded"

  let m_files_saved =
    Obs.Metrics.counter Obs.Metrics.default "sprof.codec.files_saved"

  let m_merges = Obs.Metrics.counter Obs.Metrics.default "sprof.codec.merges"

  let m_stacks_merged =
    Obs.Metrics.counter Obs.Metrics.default "sprof.codec.stacks_merged"
      ~help:"stack records combined on key collision during summing"

  let m_decode_errors =
    Obs.Metrics.counter Obs.Metrics.default "sprof.codec.decode_errors"
      ~help:"sampled-profile decodes rejected outright"

  let m_checksum_mismatches =
    Obs.Metrics.counter Obs.Metrics.default "sprof.codec.checksum_mismatches"

  let m_salvaged_files =
    Obs.Metrics.counter Obs.Metrics.default "sprof.codec.salvage.files"
      ~help:"sampled profiles recovered with data loss by salvage decoding"

  let m_salvaged_stacks =
    Obs.Metrics.counter Obs.Metrics.default "sprof.codec.salvage.dropped_stacks"

  let m_salvaged_bytes =
    Obs.Metrics.counter Obs.Metrics.default "sprof.codec.salvage.dropped_bytes"

  (* --- merge algebra ------------------------------------------------ *)

  let merge a b =
    if a.sp_sample_interval <> b.sp_sample_interval then
      Error "cannot merge sampled profiles with different sample intervals"
    else if a.sp_ticks_per_second <> b.sp_ticks_per_second then
      Error "cannot merge sampled profiles with different clock rates"
    else if a.sp_cycles_per_tick <> b.sp_cycles_per_tick then
      Error "cannot merge sampled profiles with different cycle rates"
    else begin
      (* Merge two canonically sorted unique stack tables, summing
         counts on collision: an exact integer sum, so the result is
         independent of merge order and association. *)
      let rec go xs ys acc =
        match (xs, ys) with
        | [], rest | rest, [] -> List.rev_append acc rest
        | ((sx, cx) as x) :: xs', ((sy, cy) as y) :: ys' ->
          let c = compare_stack sx sy in
          if c = 0 then go xs' ys' ((sx, cx + cy) :: acc)
          else if c < 0 then go xs' ys (x :: acc)
          else go xs ys' (y :: acc)
      in
      let stacks = go a.sp_stacks b.sp_stacks [] in
      Obs.Metrics.incr m_merges;
      Obs.Metrics.incr m_stacks_merged
        ~by:
          (List.length a.sp_stacks + List.length b.sp_stacks
          - List.length stacks);
      Ok
        {
          sp_sample_interval = a.sp_sample_interval;
          sp_ticks_per_second = a.sp_ticks_per_second;
          sp_cycles_per_tick = a.sp_cycles_per_tick;
          sp_runs = a.sp_runs + b.sp_runs;
          sp_stacks = stacks;
        }
    end

  let merge_all = function
    | [] -> Error "no sampled profiles to merge"
    | [ s ] -> Ok s
    | ss ->
      let rec round acc = function
        | [] -> Ok (List.rev acc)
        | [ x ] -> Ok (List.rev (x :: acc))
        | x :: y :: rest -> (
          match merge x y with
          | Error e -> Error e
          | Ok m -> round (m :: acc) rest)
      in
      let rec loop = function
        | [ s ] -> Ok s
        | ss -> ( match round [] ss with Error e -> Error e | Ok ss' -> loop ss')
      in
      loop ss

  (* --- serialization ------------------------------------------------ *)

  let magic = "SPROFOCAML1\n"

  let sniff_bytes s =
    String.length s >= String.length magic
    && String.sub s 0 (String.length magic) = magic

  let sniff_file path =
    match
      In_channel.with_open_bin path (fun ic ->
          really_input_string ic (String.length magic))
    with
    | s -> s = magic
    | exception (Sys_error _ | End_of_file) -> false

  let to_bytes t =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf magic;
    put_i64 buf t.sp_sample_interval;
    put_i64 buf t.sp_ticks_per_second;
    put_i64 buf t.sp_cycles_per_tick;
    put_i64 buf t.sp_runs;
    put_i64 buf (List.length t.sp_stacks);
    List.iter
      (fun (s, c) ->
        put_i64 buf c;
        put_i64 buf (Array.length s);
        Array.iter (put_i64 buf) s)
      t.sp_stacks;
    add_footer buf;
    Obs.Metrics.incr m_bytes_written ~by:(Buffer.length buf);
    Buffer.contents buf

  let max_depth_wire = 1 lsl 20

  let decode ?path ~mode s =
    let exception Bad of decode_error in
    let fail ~offset ~context fmt =
      Printf.ksprintf
        (fun msg ->
          raise
            (Bad { de_path = path; de_offset = offset; de_context = context;
                   de_msg = msg }))
        fmt
    in
    Obs.Metrics.incr m_bytes_read ~by:(String.length s);
    let result =
      try
        let mlen = String.length magic in
        if not (sniff_bytes s) then
          fail ~offset:0 ~context:"magic"
            "expected %S, found %S (not a sampled-profile file)" magic
            (String.sub s 0 (min (String.length s) mlen));
        let checksum, body_len = split_footer s in
        if mode = `Strict && checksum <> `Ok then
          fail ~offset:body_len ~context:"checksum footer"
            "%s: file is torn or corrupt (total %d bytes)"
            (match checksum with
            | `Missing -> "missing"
            | _ -> "stored checksum disagrees with the body")
            (String.length s);
        if checksum = `Mismatch then Obs.Metrics.incr m_checksum_mismatches;
        let dropped_stacks = ref 0 in
        let dropped_bytes = ref 0 in
        let notes = ref [] in
        let note fmt = Printf.ksprintf (fun m -> notes := m :: !notes) fmt in
        let pos = ref mlen in
        let get_i64 context =
          if !pos + 8 > body_len then
            fail ~offset:!pos ~context "need 8 bytes, have %d (file ends at %d)"
              (body_len - !pos) body_len;
          let v = Int64.to_int (String.get_int64_le s !pos) in
          pos := !pos + 8;
          v
        in
        (* Header damage is unrecoverable in either mode: without the
           interval and clock rates no count can be interpreted. *)
        let si_off = !pos in
        let sample_interval = get_i64 "header field sample_interval" in
        let tps_off = !pos in
        let ticks_per_second = get_i64 "header field ticks_per_second" in
        let cpt_off = !pos in
        let cycles_per_tick = get_i64 "header field cycles_per_tick" in
        let runs_off = !pos in
        let runs = get_i64 "header field runs" in
        if sample_interval < 1 then
          fail ~offset:si_off ~context:"header field sample_interval" "%d < 1"
            sample_interval;
        if ticks_per_second <= 0 then
          fail ~offset:tps_off ~context:"header field ticks_per_second"
            "%d not positive" ticks_per_second;
        if cycles_per_tick <= 0 then
          fail ~offset:cpt_off ~context:"header field cycles_per_tick"
            "%d not positive" cycles_per_tick;
        if runs < 1 then
          fail ~offset:runs_off ~context:"header field runs" "%d < 1" runs;
        let ns_off = !pos in
        let stored_stacks = get_i64 "stack count" in
        if stored_stacks < 0 || stored_stacks > 1 lsl 26 then
          fail ~offset:ns_off ~context:"stack count" "absurd value %d"
            stored_stacks;
        (* Stack records are recovered whole or not at all: a failure
           inside record k drops k and everything after it — the record
           length depends on the stored depth, so nothing after a
           damaged record can be trusted. *)
        let rev_stacks = ref [] in
        let k = ref 0 in
        let last_good = ref !pos in
        (try
           while !k < stored_stacks do
             let r_ctx = Printf.sprintf "stack record %d" (!k + 1) in
             let c_off = !pos in
             let count = get_i64 (r_ctx ^ " count") in
             if count < 1 then
               fail ~offset:c_off ~context:(r_ctx ^ " count")
                 "nonpositive sample count %d" count;
             let d_off = !pos in
             let depth = get_i64 (r_ctx ^ " depth") in
             if depth < 0 || depth > max_depth_wire then
               fail ~offset:d_off ~context:(r_ctx ^ " depth")
                 "absurd value %d" depth;
             let stack = Array.make depth 0 in
             for i = 0 to depth - 1 do
               let a_off = !pos in
               let a = get_i64 (r_ctx ^ " frame") in
               if a < 0 then
                 fail ~offset:a_off ~context:(r_ctx ^ " frame")
                   "negative address %d" a;
               stack.(i) <- a
             done;
             rev_stacks := (stack, count) :: !rev_stacks;
             incr k;
             last_good := !pos
           done
         with Bad e when mode = `Salvage ->
           Obs.Metrics.incr m_salvaged_stacks ~by:(stored_stacks - !k);
           dropped_stacks := !dropped_stacks + (stored_stacks - !k);
           note "stack table damaged at byte %d: record(s) %d..%d dropped"
             e.de_offset (!k + 1) stored_stacks;
           dropped_bytes := !dropped_bytes + (body_len - !last_good);
           pos := body_len);
        if !pos <> body_len then begin
          if mode = `Strict then
            fail ~offset:!pos ~context:"end of file" "%d trailing bytes"
              (body_len - !pos)
          else begin
            dropped_bytes := !dropped_bytes + (body_len - !pos);
            note "%d trailing byte(s) ignored" (body_len - !pos)
          end
        end;
        let stacks = List.rev !rev_stacks in
        (* Strict files are written in canonical order; a salvaged
           bit-flip may break it, so restore the order and drop
           duplicate keys (first record wins — reordering invents
           nothing, summing would). *)
        let stacks =
          let rec sorted = function
            | [] | [ _ ] -> true
            | (a, _) :: (((b, _) :: _) as rest) ->
              compare_stack a b < 0 && sorted rest
          in
          if sorted stacks then stacks
          else if mode = `Strict then
            fail ~offset:!pos ~context:"stack table"
              "records not in canonical order"
          else begin
            note "stack table out of order; reordered";
            let sorted_stacks =
              List.stable_sort (fun (a, _) (b, _) -> compare_stack a b) stacks
            in
            let rec dedup = function
              | [] -> []
              | [ x ] -> [ x ]
              | ((s1, _) as a) :: (((s2, _) :: _) as rest) ->
                if compare_stack s1 s2 = 0 then begin
                  incr dropped_stacks;
                  Obs.Metrics.incr m_salvaged_stacks;
                  dedup (a :: List.tl rest)
                end
                else a :: dedup rest
            in
            dedup sorted_stacks
          end
        in
        let t =
          {
            sp_sample_interval = sample_interval;
            sp_ticks_per_second = ticks_per_second;
            sp_cycles_per_tick = cycles_per_tick;
            sp_runs = runs;
            sp_stacks = stacks;
          }
        in
        (match validate t with
        | Ok () -> ()
        | Error es ->
          fail ~offset:0 ~context:"validation" "%s" (String.concat "; " es));
        let report =
          {
            r_checksum = checksum;
            r_dropped_buckets = 0;
            r_dropped_arcs = !dropped_stacks;
            r_dropped_bytes = !dropped_bytes;
            r_notes = List.rev !notes;
          }
        in
        Ok (t, report)
      with Bad e -> Error e
    in
    (match result with
    | Error _ -> Obs.Metrics.incr m_decode_errors
    | Ok (_, r) when report_degraded r ->
      Obs.Metrics.incr m_salvaged_files;
      Obs.Metrics.incr m_salvaged_bytes ~by:r.r_dropped_bytes
    | Ok _ -> ());
    result

  let of_bytes s =
    match decode ~mode:`Strict s with
    | Ok (t, _) -> Ok t
    | Error e -> Error (decode_error_to_string e)

  let save t path =
    Obs.Metrics.incr m_files_saved;
    Obs.Trace.with_span ~cat:"gmon" "sprof-save" (fun () ->
        write_file_atomic ~what:"sampled profile" path (to_bytes t))

  let load_report ?(mode : mode = `Strict) path =
    Obs.Metrics.incr m_files_loaded;
    Obs.Trace.with_span ~cat:"gmon" "sprof-load" ~args:[ ("path", path) ]
      (fun () ->
        match In_channel.with_open_bin path In_channel.input_all with
        | s -> decode ~path ~mode s
        | exception Sys_error e ->
          Obs.Metrics.incr m_decode_errors;
          Error
            { de_path = Some path; de_offset = 0; de_context = "open";
              de_msg = e })

  let load ?(mode : mode = `Strict) path =
    match load_report ~mode path with
    | Ok (t, _) -> Ok t
    | Error e -> Error (decode_error_to_string e)

  let equal a b =
    a.sp_sample_interval = b.sp_sample_interval
    && a.sp_ticks_per_second = b.sp_ticks_per_second
    && a.sp_cycles_per_tick = b.sp_cycles_per_tick
    && a.sp_runs = b.sp_runs
    && List.length a.sp_stacks = List.length b.sp_stacks
    && List.for_all2
         (fun (sa, ca) (sb, cb) -> ca = cb && compare_stack sa sb = 0)
         a.sp_stacks b.sp_stacks

  let pp ppf t =
    Format.fprintf ppf
      "@[<v>sampled profile: %d sample(s) over %d stack(s), interval %d @@ %d Hz, %d run(s)"
      (n_samples t) (n_stacks t) t.sp_sample_interval t.sp_ticks_per_second
      t.sp_runs;
    List.iter
      (fun (s, c) ->
        Format.fprintf ppf "@,  [%s] x %d"
          (String.concat ";" (Array.to_list (Array.map string_of_int s)))
          c)
      t.sp_stacks;
    Format.fprintf ppf "@]"
end
