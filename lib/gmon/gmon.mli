(** The profile data file — our [gmon.out].

    "Our solution is to gather profiling data in memory during program
    execution and to condense it to a file as the profiled program
    exits." The condensed file holds (1) the program-counter histogram,
    summarized as bounds, a step size, and one counter per bucket, and
    (2) the traversed call-graph arcs as (call site, callee, count)
    records.

    "An advantage of this approach is that the profile data for
    several executions of a program can be combined by the
    post-processing to provide a profile of many executions" —
    {!merge} implements that summing (gprof's [-s]). *)

type hist = {
  h_lowpc : int;  (** first text address covered *)
  h_highpc : int;  (** one past the last covered address *)
  h_bucket_size : int;  (** addresses per bucket, >= 1 *)
  h_counts : int array;
      (** clock ticks observed per bucket;
          length = ceil((highpc-lowpc)/bucket_size) *)
}

type arc = {
  a_from : int;  (** the call site: address of the call instruction *)
  a_self : int;  (** the callee: its entry address *)
  a_count : int;  (** traversals observed *)
}

type t = {
  hist : hist;
  arcs : arc list;  (** sorted by (from, self); no duplicates *)
  ticks_per_second : int;  (** clock rate the histogram was sampled at *)
  cycles_per_tick : int;  (** simulated cycles per clock tick *)
  runs : int;  (** number of executions summed into this profile *)
}

val n_buckets : lowpc:int -> highpc:int -> bucket_size:int -> int

val make_hist : lowpc:int -> highpc:int -> bucket_size:int -> hist
(** Zeroed histogram. @raise Invalid_argument on a nonpositive bucket
    size or an empty/negative pc range. *)

val bucket_of_pc : hist -> int -> int option
(** Bucket index for a pc, or [None] if outside [\[lowpc, highpc)]. *)

val bucket_range : hist -> int -> int * int
(** [bucket_range h i] is the address interval
    [\[lo, hi)] covered by bucket [i], clipped to [highpc]. *)

val total_ticks : t -> int

val seconds_of_ticks : t -> int -> float
(** Convert a tick count to (simulated) seconds at this profile's
    clock rate. *)

val total_seconds : t -> float

val arc_count_into : t -> int -> int
(** Sum of arc counts whose callee entry is the given address. *)

val validate : t -> (unit, string list) result
(** Check invariants: histogram shape consistent, counts nonnegative,
    arcs sorted and unique with nonnegative counts, positive clock
    rates, [runs >= 1]. *)

val merge : t -> t -> (t, string) result
(** Sum two profiles of the {e same} executable: histogram bounds,
    bucket size, and clock rates must match exactly, otherwise
    [Error]. Histogram counters add; arcs union with counts added;
    [runs] add. Commutative and associative (tested). *)

val merge_all : t list -> (t, string) result
(** Sum a non-empty list by balanced pairwise merging: adjacent pairs
    are merged until one profile remains. Because {!merge} is an exact
    integer sum, the tree shape cannot change the result — the outcome
    is [Gmon.equal] to any left fold of {!merge} (tested) — but the
    balanced tree avoids replaying the accumulated arc union against
    every input. The profile store's compaction uses this same path. *)

(** {1 Fault-tolerant serialization}

    The interesting profiles come from the runs that died: a profiled
    program killed mid-exit leaves a torn [gmon.out]. Files carry a
    checksum footer (8-byte tag plus 64-bit FNV-1a of the body) so
    torn or bit-flipped writes are detectable; decoding reports
    structured errors with byte offsets; and salvage mode recovers the
    valid prefix of buckets and arcs instead of rejecting the file. *)

type mode = [ `Strict | `Salvage ]
(** [`Strict] rejects any damage (missing/mismatched checksum,
    truncation, invalid records) with an offset-bearing error.
    [`Salvage] recovers what it can: missing buckets are zero-filled
    (the geometry is kept so the result still passes {!validate}),
    partial or invalid arc records are dropped, trailing bytes are
    ignored — salvage never invents data, so a salvaged profile is
    always a sub-profile of what strict decoding of the intact file
    would return. A file whose header (magic, geometry, clock rates)
    is damaged is unrecoverable in either mode. *)

type decode_error = {
  de_path : string option;  (** set by {!load}/{!load_report} *)
  de_offset : int;  (** byte position of the failure *)
  de_context : string;  (** what was being decoded *)
  de_msg : string;  (** reason, with expected vs. actual sizes *)
}

val decode_error_to_string : decode_error -> string

val pp_decode_error : Format.formatter -> decode_error -> unit

type checksum_state = [ `Ok | `Missing | `Mismatch ]

type report = {
  r_checksum : checksum_state;
  r_dropped_buckets : int;  (** buckets zero-filled or repaired *)
  r_dropped_arcs : int;  (** arc records dropped *)
  r_dropped_bytes : int;  (** unparseable bytes skipped *)
  r_notes : string list;  (** human diagnostics, in file order *)
}
(** What a decode left behind. Salvage losses are also published to
    the default {!Obs.Metrics} registry ([gmon.salvage.*],
    [gmon.checksum_mismatches], [gmon.decode_errors]). *)

val lossless_report : report

val report_degraded : report -> bool
(** True when anything was dropped, repaired, or unverifiable. *)

val report_summary : report -> string
(** One-line rendering of the losses; [""] for a lossless decode. *)

val decode :
  ?path:string -> mode:mode -> string -> (t * report, decode_error) result

val to_bytes : t -> string
(** Binary serialization (magic ["GMONOCAML1\n"], little-endian
    fixed-width fields, checksum footer). *)

val of_bytes : string -> (t, string) result
(** Strict {!decode} with the error rendered as a string. *)

val save : t -> string -> (unit, string) result
(** Crash-safe write: the encoding goes to [path ^ ".tmp"] and is
    renamed into place, so a crash leaves the old file or the new one,
    never a torn hybrid. [Error] (never an exception) on an unwritable
    path. *)

val inject_torn_save : int option -> unit
(** Fault injection for the emission path: [Some n] makes the {e next}
    save (of a profile or instruction counts) write only the first [n]
    bytes directly to the final path and return [Error] — deliberately
    producing the torn file a non-atomic writer leaves when the
    process dies mid-condense. One-shot; [None] cancels. *)

val load : ?mode:mode -> string -> (t, string) result
(** Read and {!decode} a file; the error string carries the path and
    byte offset. [mode] defaults to [`Strict]. *)

val load_report : ?mode:mode -> string -> (t * report, decode_error) result

(** {1 Quarantined summing} *)

type quarantined = { q_path : string; q_reason : string }

val merge_all_quarantine :
  (string * (t, string) result) list -> (t * quarantined list, string) result
(** Quarantine variant of {!merge_all} over per-file decode results:
    undecodable files — and files that refuse to merge with the
    accumulated sum (layout or clock mismatch) — are skipped and
    returned with per-file diagnostics instead of failing the batch.
    [Error] only when no file is usable at all. *)

val load_merge :
  ?mode:mode ->
  string list ->
  (t * (string * report) list * quarantined list, string) result
(** {!load_report} every path, then {!merge_all_quarantine}. Returns
    the merged profile, the per-file decode reports of the files that
    went into it, and the quarantined rest. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Debug rendering: header summary plus nonzero buckets and arcs. *)

type profile = t
(** Alias so submodules ({!Epoch}) can name the profile record while
    defining their own [t]. *)

(** {1 Wire helpers}

    The framing shared by every data file this module family writes:
    the FNV-1a checksum footer and the crash-safe temp-and-rename
    writer. Exposed so sibling codecs (the epoch container) frame
    their files identically. *)
module Wire : sig
  val fnv1a64 : ?len:int -> string -> int64

  val add_footer : Buffer.t -> unit
  (** Append the footer tag and the checksum of everything currently
      in the buffer. *)

  val split_footer : string -> checksum_state * int
  (** Verify the footer; returns its state and the byte length of the
      body (the whole string when the footer is missing). *)

  val write_file_atomic :
    what:string -> string -> string -> (unit, string) result
  (** [write_file_atomic ~what path data]: temp-and-rename write, like
      {!Gmon.save}; honours {!inject_torn_save}. *)
end

(** Exact per-address execution counts; see the module comment in the
    interface below. *)
module Icount : sig
  (** Exact per-address execution counts — the companion data file for
      basic-block/line-level counting.

      The paper distinguishes profiles "that present counts of statement
      or routine invocations" from timing profiles (§2); statement
      counts come from "inline increments to counters". Our VM gathers
      them as one counter per text address; this module condenses them
      to a file the way the arc table and histogram are condensed to
      the gmon file (only nonzero entries are stored). *)

  type t = {
    text_size : int;
    counts : int array;  (** length [text_size] *)
  }

  val of_counts : int array -> t

  val count : t -> int -> int
  (** Count at an address. @raise Invalid_argument when out of range. *)

  val total : t -> int

  val merge : t -> t -> (t, string) result
  (** Element-wise sum; [Error] on size mismatch (different binaries). *)

  val to_bytes : t -> string
  (** Sparse little-endian encoding with the same checksum footer as
      the profile format. *)

  val of_bytes : string -> (t, string) result
  (** Strict decode; error messages carry byte offsets and expected
      vs. actual sizes. *)

  val save : t -> string -> (unit, string) result
  (** Crash-safe temp-and-rename write, like {!Gmon.save}; honours
      {!Gmon.inject_torn_save}. *)

  val load : string -> (t, string) result
  (** Error messages carry the file path. *)

  val equal : t -> t -> bool

end

(** Multi-epoch profile containers — the timeline data file.

    A single gmon file condenses a whole run into one histogram and
    one arc table, erasing {e when} the time was spent — exactly the
    limitation the 2003 retrospective names (relating profile data
    back to program phases). The epoch container keeps a sequence of
    {e interval} profiles, one per wall-clock window of N simulated
    ticks: each epoch holds the ticks and arc traversals observed
    {e during} that window (the delta of the live counters between two
    boundaries), so summing all epochs reproduces the whole-run
    profile exactly ({!Epoch.sum}, tested bit-identical).

    On disk the histogram deltas are stored sparsely (only nonzero
    buckets), so K epochs of a mostly-idle histogram cost far less
    than K full files. The container is framed like every other data
    file here: versioned magic, little-endian fixed-width fields, and
    the {!Wire} checksum footer, with [`Salvage] decoding that
    recovers the valid prefix of whole epochs from a torn file. *)
module Epoch : sig
  type entry = {
    ep_end_cycle : int;  (** simulated cycle count at the boundary *)
    ep_end_tick : int;  (** clock tick count at the boundary *)
    ep_counts : int array;
        (** ticks observed during this epoch, one per bucket (full
            array in memory; sparse on disk) *)
    ep_arcs : arc list;
        (** traversals during this epoch, sorted by (from, self),
            no duplicates, counts nonnegative *)
  }

  type t = {
    e_lowpc : int;
    e_highpc : int;
    e_bucket_size : int;
    e_ticks_per_second : int;
    e_cycles_per_tick : int;
    e_epochs : entry list;  (** chronological *)
  }

  val n_epochs : t -> int

  val validate : t -> (unit, string list) result
  (** Geometry sane, every epoch's bucket array matches it, arcs
      sorted/unique/nonnegative, boundaries non-decreasing. *)

  val profile_of : t -> entry -> profile
  (** The interval profile of one epoch ([runs = 1]). *)

  val nth : t -> int -> (entry, string) result
  (** 1-based epoch lookup; [Error] names the valid range. *)

  val sum : t -> (profile, string) result
  (** Add every epoch's deltas back together: bit-identical to the
      single-run profile the same execution would have condensed
      ([runs = 1]). [Error] on an empty container. *)

  val to_bytes : t -> string

  val of_bytes : string -> (t, string) result
  (** Strict decode with the error rendered as a string. *)

  val decode :
    ?path:string -> mode:mode -> string -> (t * report, decode_error) result
  (** [`Salvage] recovers whole epochs: a failure inside epoch k drops
      epochs k.. (never a partial epoch — salvage never invents data);
      losses land in the report's notes and byte counts and in the
      [gmon.salvage.*] metrics. A damaged header is unrecoverable in
      either mode. *)

  val save : t -> string -> (unit, string) result
  (** Crash-safe temp-and-rename write; honours
      {!Gmon.inject_torn_save}. *)

  val load : ?mode:mode -> string -> (t, string) result

  val load_report : ?mode:mode -> string -> (t * report, decode_error) result

  val sniff_bytes : string -> bool
  (** True when the string starts with the epoch-container magic. *)

  val sniff_file : string -> bool
  (** {!sniff_bytes} on the first bytes of a file; false on any IO
      error. *)

  val equal : t -> t -> bool
end

(** Sampled call-stack profiles — the sprof data file.

    The second observability pipeline: where the gmon file condenses a
    run into a PC histogram plus isolated call-graph arcs (and the
    analyzer must {e propagate} time under the average-cost
    assumption, PAPER.md §6), the sprof file stores what the
    retrospective's "modern profiler" gathers — complete call stacks,
    interned: each distinct stack once, with the number of samples
    that hit it, plus the sampling interval and clock rates needed to
    convert counts back to seconds. Inclusive/exclusive times fall out
    by direct counting, with no propagation step at all.

    The table is kept in a canonical order (lexicographic by frame
    addresses, {!Sprof.compare_stack}) so that summing is not just
    commutative and associative but {e canonical}: any merge order of
    the same inputs serializes to byte-identical files — the property
    the fleet gate checks with [cmp] between a live daemon's answer
    and an offline merge. Framing is the family standard: versioned
    magic, little-endian fixed-width fields, {!Wire} checksum footer,
    structured decode errors, and a [`Salvage] mode that recovers the
    valid prefix of whole stack records from a torn file. *)
module Sprof : sig
  type t = {
    sp_sample_interval : int;  (** clock ticks between samples, >= 1 *)
    sp_ticks_per_second : int;
    sp_cycles_per_tick : int;
    sp_runs : int;  (** executions summed into this profile *)
    sp_stacks : (int array * int) list;
        (** (stack root-first, sample count): canonical order, unique
            stacks, counts >= 1 *)
  }

  val compare_stack : int array -> int array -> int
  (** Lexicographic by frame address; the shorter stack orders first
      on a shared prefix. The canonical table order. *)

  val of_folded :
    sample_interval:int ->
    ticks_per_second:int ->
    cycles_per_tick:int ->
    (int array * int) list ->
    t
  (** Build a single-run container from a folded sample list (e.g.
      {!Vm.Stacksamp.folded}): stacks are copied, sorted canonically,
      duplicates summed, empty counts dropped.
      @raise Invalid_argument on nonpositive rates. *)

  val n_stacks : t -> int

  val n_samples : t -> int
  (** Sum of all stack counts. *)

  val seconds_per_sample : t -> float

  val total_seconds : t -> float

  val validate : t -> (unit, string list) result
  (** Rates positive, [runs >= 1], stacks canonically sorted and
      unique with positive counts and nonnegative frame addresses. *)

  val merge : t -> t -> (t, string) result
  (** Sum two sampled profiles: sample interval and clock rates must
      match exactly, otherwise [Error]. Stack tables union with counts
      added; [runs] add. Commutative, associative, and canonical:
      equal merges serialize byte-identically (tested). *)

  val merge_all : t list -> (t, string) result
  (** Balanced pairwise {!merge} of a non-empty list. *)

  val to_bytes : t -> string
  (** Binary serialization (magic ["SPROFOCAML1\n"], little-endian
      fields, checksum footer). Byte counts land in the
      [sprof.codec.*] metrics. *)

  val of_bytes : string -> (t, string) result

  val decode :
    ?path:string -> mode:mode -> string -> (t * report, decode_error) result
  (** [`Salvage] recovers whole stack records: a failure inside record
      k drops records k.. (record length depends on the stored depth,
      so nothing after a damaged record can be trusted — salvage never
      invents data). Dropped records are counted in the report's
      [r_dropped_arcs] slot and the [sprof.codec.salvage.*] metrics. A
      damaged header is unrecoverable in either mode. *)

  val save : t -> string -> (unit, string) result
  (** Crash-safe temp-and-rename write; honours
      {!Gmon.inject_torn_save}. *)

  val load : ?mode:mode -> string -> (t, string) result

  val load_report : ?mode:mode -> string -> (t * report, decode_error) result

  val sniff_bytes : string -> bool
  (** True when the string starts with the sprof magic. *)

  val sniff_file : string -> bool
  (** {!sniff_bytes} on the first bytes of a file; false on any IO
      error. *)

  val equal : t -> t -> bool

  val pp : Format.formatter -> t -> unit
end
