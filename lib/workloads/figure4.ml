module I = Objcode.Instr

(* Ten routines, five instructions each, laid out consecutively. The
   bodies never execute; only the address ranges, the histogram, and
   the arc records matter to the post-processor. Every arc record's
   call site (entry + 2) holds a genuine indirect call so the profile
   survives linting: a Calli with no known operand is unresolvable,
   which the linter soundly treats as able to reach anything. The
   single direct Call placed in EXAMPLE's body is the one the static
   scanner must discover (EXAMPLE -> SUB3). *)

let names =
  [|
    "CALLER1"; "CALLER2"; "EXAMPLE"; "SUB1"; "SUB1B"; "SUB2"; "SUB3"; "DEPTH1";
    "DEPTH2"; "OTHER";
  |]

let fsize = 5

let entry name =
  let rec find i = if names.(i) = name then i * fsize else find (i + 1) in
  find 0

(* A call site inside a routine: two instructions past its entry. *)
let site name = entry name + 2

let objfile =
  let text =
    Array.concat
      (Array.to_list
         (Array.map
            (fun name ->
              let filler =
                if name = "EXAMPLE" then
                  (* the statically visible, dynamically untraversed call *)
                  I.Call (entry "SUB3", 0)
                else I.Const 0
              in
              [| I.Mcount; I.Enter 0; I.Calli 0; filler; I.Ret |])
            names))
  in
  {
    Objcode.Objfile.text;
    symbols =
      Array.mapi
        (fun i name ->
          { Objcode.Objfile.name; addr = i * fsize; size = fsize; profiled = true })
        names;
    entry = 0;
    globals = [||];
    global_init = [||];
    arrays = [||];
    lines = [||];
    source_name = "figure4";
  }

let ticks =
  [
    ("CALLER1", 26);
    ("EXAMPLE", 30);
    ("SUB1", 120);
    ("SUB1B", 60);
    ("DEPTH1", 120);
    ("DEPTH2", 150);
  ]

let arcs =
  [
    (* spontaneous roots: callers outside the text segment *)
    (-1, "CALLER1", 1);
    (-1, "CALLER2", 1);
    (-1, "OTHER", 1);
    (* EXAMPLE's parents: 4/10 and 6/10 *)
    (site "CALLER1", "EXAMPLE", 4);
    (site "CALLER2", "EXAMPLE", 6);
    (* self-recursion: the +4 *)
    (site "EXAMPLE", "EXAMPLE", 4);
    (* the cycle SUB1 <-> SUB1B, called 40 times from outside,
       20 of them by EXAMPLE *)
    (site "EXAMPLE", "SUB1", 20);
    (site "OTHER", "SUB1", 20);
    (site "SUB1", "SUB1B", 3);
    (site "SUB1B", "SUB1", 2);
    (* the cycle's external child *)
    (site "SUB1", "DEPTH1", 7);
    (* SUB2: called 5 times in all, once by EXAMPLE *)
    (site "EXAMPLE", "SUB2", 1);
    (site "OTHER", "SUB2", 4);
    (site "SUB2", "DEPTH2", 2);
    (* SUB3: 5 calls, none from EXAMPLE *)
    (site "OTHER", "SUB3", 5);
  ]

let gmon =
  let n = Array.length objfile.Objcode.Objfile.text in
  let hist = Gmon.make_hist ~lowpc:0 ~highpc:n ~bucket_size:1 in
  let counts = Array.copy hist.h_counts in
  List.iter (fun (name, t) -> counts.(entry name + 1) <- t) ticks;
  {
    Gmon.hist = { hist with h_counts = counts };
    arcs =
      List.map
        (fun (from, callee, count) ->
          { Gmon.a_from = from; a_self = entry callee; a_count = count })
        arcs
      |> List.sort (fun (a : Gmon.arc) b ->
             compare (a.a_from, a.a_self) (b.a_from, b.a_self));
    ticks_per_second = 60;
    cycles_per_tick = 16_666;
    runs = 1;
  }

let static_example_sub3 = ("EXAMPLE", "SUB3")

let expected_total_seconds = 506.0 /. 60.0
