(** The exact scenario of the paper's Figure 4.

    A synthetic executable and profile constructed so that the profile
    entry for EXAMPLE reproduces the published figure number for
    number: callers contributing 4/10 and 6/10 of its calls (0.20/1.20
    and 0.30/1.80 seconds), 4 self-recursive calls (10+4), a child in
    a cycle called 20/40 times showing 1.50/1.00, a child called 1/5
    showing 0.00/0.50, a statically-discovered child with 0/5, a total
    of 0.50 self + 3.00 descendants, and 41.5% of total run time. *)

val objfile : Objcode.Objfile.t
(** Ten five-instruction routines: CALLER1, CALLER2, EXAMPLE, SUB1,
    SUB1B (the cycle partner), SUB2, SUB3, DEPTH1 (the cycle's
    external child), DEPTH2 (SUB2's child), OTHER (the second caller
    of the cycle and of SUB2/SUB3). *)

val gmon : Gmon.t
(** Histogram ticks: 26 CALLER1, 30 EXAMPLE, 120 SUB1, 60 SUB1B, 120
    DEPTH1, 150 DEPTH2 — 506 ticks at 60 Hz, 8.43 seconds. Arc
    records as in the figure (the EXAMPLE -> SUB3 arc is static only
    and absent here). *)

val static_example_sub3 : string * string
(** The (caller, callee) names of the arc that exists only in the
    static call graph. *)

val expected_total_seconds : float
(** 506 / 60. *)
