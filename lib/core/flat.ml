let rows (p : Profile.t) =
  let listed =
    Array.to_list p.entries
    |> List.filter (fun (e : Profile.entry) ->
           e.e_self > 0.0 || e.e_calls > 0 || e.e_self_calls > 0)
  in
  let sorted =
    List.sort
      (fun (a : Profile.entry) (b : Profile.entry) ->
        let c = compare b.e_self a.e_self in
        if c <> 0 then c else compare a.e_id b.e_id)
      listed
  in
  let cum = ref 0.0 in
  List.map
    (fun (e : Profile.entry) ->
      cum := !cum +. e.e_self;
      (e.e_id, e.e_self, !cum, e.e_calls + e.e_self_calls))
    sorted

let explanation =
  "Each row describes one routine:\n\
  \  % time    the percentage of the total running time of the program\n\
  \            spent executing this routine itself,\n\
  \  cumulative seconds    a running sum of the self seconds down the listing,\n\
  \  self seconds    the time accounted to this routine alone, from the\n\
  \            program-counter histogram,\n\
  \  calls     the number of times the routine was invoked (exact, from the\n\
  \            monitoring routine; self-recursive invocations included),\n\
  \  self/total ms/call    the average milliseconds per call spent in the\n\
  \            routine itself, and including its descendants (blank for\n\
  \            members of cycles, whose descendant time is shared),\n\
  \  name      the routine, followed by its index in the call graph listing.\n\
   Routines are listed in decreasing order of self time. The self seconds\n\
   column sums to the total execution time.\n\n"

let listing ?(verbose = false) (p : Profile.t) =
  Obs.Trace.with_span ~cat:"core" "flat" @@ fun () ->
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "flat profile:\n\n";
  if verbose then Buffer.add_string buf explanation;
  Buffer.add_string buf
    "  %       cumulative    self                self     total\n";
  Buffer.add_string buf
    " time       seconds  seconds      calls  ms/call  ms/call  name\n";
  let total = p.total_time in
  List.iter
    (fun (id, self, cum, calls) ->
      let pct = if total > 0.0 then 100.0 *. self /. total else 0.0 in
      let e = p.entries.(id) in
      let ms_self =
        if calls > 0 then Printf.sprintf "%8.2f" (1000.0 *. self /. float_of_int calls)
        else String.make 8 ' '
      in
      let ms_total =
        if calls > 0 && e.e_cycle = 0 then
          Printf.sprintf "%8.2f"
            (1000.0 *. (e.e_self +. e.e_child) /. float_of_int calls)
        else String.make 8 ' '
      in
      let idx =
        match Profile.display_index p (Profile.Func id) with
        | Some i -> Printf.sprintf " [%d]" i
        | None -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "%5.1f %13.2f %8.2f %10d %s %s  %s%s\n" pct cum self calls
           ms_self ms_total
           (Profile.name_with_cycle p id)
           idx))
    (rows p);
  if p.unattributed > 0.0 then
    Buffer.add_string buf
      (Printf.sprintf "\n%.2f seconds could not be attributed to any routine.\n"
         p.unattributed);
  (match p.never_called with
  | [] -> ()
  | ids ->
    Buffer.add_string buf "\nroutines never called during this execution:\n";
    List.iter
      (fun id ->
        Buffer.add_string buf
          (Printf.sprintf "    %s\n" (Symtab.name p.symtab id)))
      ids);
  Buffer.contents buf
