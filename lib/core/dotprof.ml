let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if c = '"' || c = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render (p : Profile.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph profile {\n";
  Buffer.add_string buf "  node [shape=box, fontname=\"monospace\"];\n";
  let listed = Hashtbl.create 64 in
  Array.iter
    (function
      | Profile.Func id -> Hashtbl.replace listed id ()
      | Profile.Cycle _ | Profile.Spontaneous -> ())
    p.order;
  let node id =
    let e = p.entries.(id) in
    let pct = Profile.percent_time p (Profile.Func id) in
    Printf.sprintf
      "  f%d [label=\"%s\\nself %.2fs  total %.2fs  %.1f%%\"%s];\n" id
      (escape (Symtab.name p.symtab id))
      e.e_self (e.e_self +. e.e_child) pct
      (if pct >= 20.0 then ", style=filled, fillcolor=lightgrey" else "")
  in
  (* cycle members inside clusters, everything else at top level *)
  Array.iter
    (fun (c : Profile.cycle_entry) ->
      Buffer.add_string buf (Printf.sprintf "  subgraph cluster_cycle%d {\n" c.c_no);
      Buffer.add_string buf
        (Printf.sprintf "    label=\"cycle %d: %.2fs self, %.2fs descendants\";\n"
           c.c_no c.c_self c.c_child);
      List.iter (fun id -> Buffer.add_string buf ("  " ^ node id)) c.c_members;
      Buffer.add_string buf "  }\n")
    p.cycles;
  (* top-level nodes in id order: the renderer must be byte-for-byte
     deterministic (goldens diff it, CI caches it), so no hash-order
     iteration reaches the output *)
  let listed_ids =
    List.sort compare (Hashtbl.fold (fun id () acc -> id :: acc) listed [])
  in
  List.iter
    (fun id -> if p.entries.(id).e_cycle = 0 then Buffer.add_string buf (node id))
    listed_ids;
  (* arcs, from each entry's children, sorted by (source, target) *)
  let arcs =
    List.concat_map
      (fun src ->
        List.filter_map
          (fun (v : Profile.arc_view) ->
            match v.av_other with
            | Profile.Func dst when Hashtbl.mem listed dst ->
              Some (src, dst, v.av_count, v.av_intra)
            | _ -> None)
          p.entries.(src).e_children)
      listed_ids
  in
  List.iter
    (fun (src, dst, count, intra) ->
      let style =
        if intra then ", style=dotted"
        else if count = 0 then ", style=dashed"
        else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  f%d -> f%d [label=\"%d\"%s];\n" src dst count style))
    (List.sort compare arcs);
  (* spontaneous roots *)
  let spont = ref false in
  Array.iter
    (fun (e : Profile.entry) ->
      if
        Hashtbl.mem listed e.e_id
        && List.exists
             (fun (v : Profile.arc_view) -> v.av_other = Profile.Spontaneous)
             e.e_parents
      then begin
        if not !spont then begin
          spont := true;
          Buffer.add_string buf "  spontaneous [shape=plaintext, label=\"<spontaneous>\"];\n"
        end;
        Buffer.add_string buf (Printf.sprintf "  spontaneous -> f%d;\n" e.e_id)
      end)
    p.entries;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
