type metric = Self | Total

type policy = {
  p_min_seconds : float;
  p_min_ratio : float;
  p_descendants : bool;
}

let default_policy =
  { p_min_seconds = 0.05; p_min_ratio = 0.25; p_descendants = true }

type finding = {
  f_name : string;
  f_metric : metric;
  f_before : float;
  f_after : float;
  f_from : string;
  f_to : string;
}

let regressed policy ~before ~after =
  after > before (* a permissive policy must still mean *growth* *)
  && after -. before >= policy.p_min_seconds
  && after >= before *. (1.0 +. policy.p_min_ratio)

let compare_profiles policy ~from_label ~to_label a b =
  let d = Diffprof.diff a b in
  let findings =
    List.concat_map
      (fun (r : Diffprof.row) ->
        let v = Option.value ~default:0.0 in
        let mk metric before after =
          {
            f_name = r.d_name;
            f_metric = metric;
            f_before = before;
            f_after = after;
            f_from = from_label;
            f_to = to_label;
          }
        in
        let self_before = v r.d_self_a and self_after = v r.d_self_b in
        let self_hit = regressed policy ~before:self_before ~after:self_after in
        let self_findings =
          if self_hit then [ mk Self self_before self_after ] else []
        in
        let total_findings =
          if not policy.p_descendants then []
          else
            let before = v r.d_total_a and after = v r.d_total_b in
            (* a Self finding already names this routine; the Total one
               would restate it with the descendants mixed in *)
            if (not self_hit) && regressed policy ~before ~after then
              [ mk Total before after ]
            else []
        in
        self_findings @ total_findings)
      d.rows
  in
  List.stable_sort
    (fun x y ->
      compare (y.f_after -. y.f_before) (x.f_after -. x.f_before))
    findings

let scan policy labeled =
  let rec go acc = function
    | (la, a) :: ((lb, b) :: _ as rest) ->
      go (acc @ compare_profiles policy ~from_label:la ~to_label:lb a b) rest
    | _ -> acc
  in
  go [] labeled

let listing findings =
  let b = Buffer.create 256 in
  List.iter
    (fun f ->
      let metric = match f.f_metric with Self -> "self" | Total -> "total" in
      let growth = f.f_after -. f.f_before in
      let pct =
        if f.f_before > 0.0 then
          Printf.sprintf ", %+.0f%%" (100.0 *. growth /. f.f_before)
        else ""
      in
      Buffer.add_string b
        (Printf.sprintf "regression: %s %s %.3fs -> %.3fs (%+.3fs%s) [%s -> %s]\n"
           f.f_name metric f.f_before f.f_after growth pct f.f_from f.f_to))
    findings;
  Buffer.contents b
