(** The top of the post-processor: options, analysis, listings.

    [analyze] is what the [gprofx] command runs: executable + profile
    data in, complete profile out. The options cover the features the
    paper and retrospective describe:
    - static-arc augmentation from the executable (on by default);
    - removal of a user-specified set of arcs, by routine names;
    - the bounded heuristic that picks cycle-breaking arcs
      automatically (minimum-feedback-arc-set is NP-complete, so the
      search is capped);
    - filtering the display to the subgraph containing named routines,
      or to entries above a time threshold. *)

type options = {
  use_static_arcs : bool;
  removed_arcs : (string * string) list;
      (** arcs (caller, callee) to delete before analysis *)
  auto_break_cycles : int option;
      (** remove up to this many heuristically-chosen cycle arcs *)
  focus : string list;
      (** show only the parts of the graph containing these routines *)
  exclude : string list;
      (** drop these routines' own entries from the listings (their
          times still propagate; gprof's -e) *)
  min_percent : float;
      (** hide entries below this share of total time (0 = show all) *)
  lenient : bool;
      (** degrade instead of failing on damaged profile data: sampled
          PCs and arc endpoints that resolve to no routine fold into a
          synthetic [<unknown>] entry rather than being dropped, and a
          histogram whose pc range disagrees with the executable's
          text is analyzed anyway (the mismatch lands in
          [<unknown>]) *)
}

val default_options : options
(** Strict ([lenient = false]). *)

type t = {
  profile : Profile.t;
  removed : (int * int) list;
      (** function-id arcs actually removed (explicit + heuristic) *)
  dropped_records : int;
  folded_records : int;
      (** arc records folded into [<unknown>] by a lenient analysis *)
  options : options;
}

val analyze :
  ?options:options -> Objcode.Objfile.t -> Gmon.t -> (t, string) result
(** [Error] on unknown routine names in [removed_arcs]/[focus], or on
    an invalid profile. *)

val degraded : t -> bool
(** True when a lenient analysis had to fold unresolvable records or
    time into [<unknown>]. *)

val removed_arc_names : t -> (string * string) list

val flat_listing : ?verbose:bool -> t -> string

val graph_listing : ?verbose:bool -> t -> string

val index_listing : t -> string

val dot_graph : t -> string
(** Graphviz rendering of the analyzed graph ({!Dotprof}). *)

val full_listing : ?verbose:bool -> t -> string
(** Graph profile, flat profile, and index, with a preamble noting
    removed arcs and dropped records; [~verbose:true] adds the field
    explanations before each listing. *)
