(** Regression detection over a sequence of profiles.

    {!Diffprof} quantifies one before/after pair for a human; this
    layer turns the same comparison into a gate: given a policy (how
    much growth, in seconds and as a ratio, counts as a regression),
    it scans consecutive profiles of the same workload and reports
    every routine whose self time — or, optionally, whose
    self-plus-descendant time — grew past the threshold. The
    [profwatch] command drives it over a directory of profile data
    files. *)

type metric = Self | Total

type policy = {
  p_min_seconds : float;
      (** absolute growth floor: deltas below it are clock noise *)
  p_min_ratio : float;
      (** relative growth floor: [after >= before * (1 + ratio)] *)
  p_descendants : bool;
      (** also check self + descendants ([Total]); a routine whose
          [Self] already fired is not double-reported *)
}

val default_policy : policy
(** 0.05 s, 25%, descendants on. *)

type finding = {
  f_name : string;  (** the routine that regressed *)
  f_metric : metric;
  f_before : float;  (** seconds in the earlier profile (absent = 0) *)
  f_after : float;
  f_from : string;  (** label of the earlier profile *)
  f_to : string;  (** label of the later profile *)
}

val compare_profiles :
  policy ->
  from_label:string ->
  to_label:string ->
  Profile.t ->
  Profile.t ->
  finding list
(** Findings sorted by decreasing growth. Routines are matched by
    name, like {!Diffprof}; a routine absent from a side counts as
    zero seconds there. *)

val scan : policy -> (string * Profile.t) list -> finding list
(** Compare each consecutive pair of the (label, profile) sequence,
    in order. *)

val listing : finding list -> string
(** One line per finding:
    [regression: NAME self 0.123s -> 0.456s (+0.333s, +271%) [a -> b]].
    Empty string when there is nothing to report. *)
