type t = {
  cond : Graphlib.Condense.t;
  cycle_no : int array;
  n_cycles : int;
  members : int list array;
}

let find g =
  Obs.Trace.with_span ~cat:"core" "cyclefind" @@ fun () ->
  let cond = Graphlib.Condense.condense g in
  let n = Graphlib.Digraph.n_nodes g in
  let cycle_no = Array.make n 0 in
  let members = ref [] in
  let n_cycles = ref 0 in
  (* Component ids ascend leaves-first; visiting them in order numbers
     cycles the same way. *)
  for c = 0 to cond.scc.n_components - 1 do
    match cond.scc.members.(c) with
    | _ :: _ :: _ as ms ->
      incr n_cycles;
      let no = !n_cycles in
      List.iter (fun v -> cycle_no.(v) <- no) ms;
      members := ms :: !members
    | _ -> ()
  done;
  {
    cond;
    cycle_no;
    n_cycles = !n_cycles;
    members = Array.of_list (List.rev !members);
  }

let comp_of t v = t.cond.scc.component.(v)

let in_cycle t v = t.cycle_no.(v) > 0
