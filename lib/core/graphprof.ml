let separator =
  "-----------------------------------------------------------------------\n"

let header =
  "                                    called/total      parents\n\
   index  %time    self  descendants  called+self    name           index\n\
   \                                    called/total      children\n"

let fmt_time = Printf.sprintf "%7.2f"

let idx_ref (p : Profile.t) party =
  match party with
  | Profile.Spontaneous -> ""
  | _ -> (
    match Profile.display_index p party with
    | Some i -> Printf.sprintf " [%d]" i
    | None -> "")

(* A parent or child line: propagated self/descendants, the
   count/total fraction, the counterpart name, its index. *)
let arc_line (p : Profile.t) (v : Profile.arc_view) =
  match v.av_other with
  | Profile.Spontaneous -> "                                            <spontaneous>\n"
  | other ->
    let name =
      match other with
      | Profile.Func id -> Profile.name_with_cycle p id
      | Profile.Cycle no -> Printf.sprintf "<cycle %d as a whole>" no
      | Profile.Spontaneous -> assert false
    in
    let calls =
      if v.av_intra then Printf.sprintf "%11d  " v.av_count
      else Printf.sprintf "%6d/%-6d" v.av_count v.av_total
    in
    let times =
      if v.av_intra then "                    "
      else Printf.sprintf "%s      %s" (fmt_time v.av_self) (fmt_time v.av_child)
    in
    Printf.sprintf "      %s  %s   %s%s\n" times calls name (idx_ref p other)

let main_line (p : Profile.t) party ~self ~child ~calls ~self_calls ~name =
  let idx =
    match Profile.display_index p party with
    | Some i -> Printf.sprintf "[%d]" i
    | None -> "[?]"
  in
  let called =
    if self_calls > 0 then Printf.sprintf "%5d+%-6d" calls self_calls
    else Printf.sprintf "%5d      " calls
  in
  Printf.sprintf "%-6s %5.1f %s      %s  %s   %s %s\n" idx
    (Profile.percent_time p party)
    (fmt_time self) (fmt_time child) called name idx

let func_block (p : Profile.t) id =
  let e = p.entries.(id) in
  let buf = Buffer.create 512 in
  List.iter (fun v -> Buffer.add_string buf (arc_line p v)) e.e_parents;
  Buffer.add_string buf
    (main_line p (Profile.Func id) ~self:e.e_self ~child:e.e_child
       ~calls:e.e_calls ~self_calls:e.e_self_calls
       ~name:(Profile.name_with_cycle p id));
  List.iter (fun v -> Buffer.add_string buf (arc_line p v)) e.e_children;
  Buffer.contents buf

let cycle_block (p : Profile.t) no =
  let c = p.cycles.(no - 1) in
  let buf = Buffer.create 512 in
  List.iter (fun v -> Buffer.add_string buf (arc_line p v)) c.c_parents;
  Buffer.add_string buf
    (main_line p (Profile.Cycle no) ~self:c.c_self ~child:c.c_child
       ~calls:c.c_calls ~self_calls:c.c_intra_calls
       ~name:(Printf.sprintf "<cycle %d as a whole>" no));
  List.iter
    (fun (v : Profile.arc_view) ->
      (* Member lines do show their own self/descendant times. *)
      let name =
        match v.av_other with
        | Profile.Func id -> Profile.name_with_cycle p id
        | _ -> assert false
      in
      Buffer.add_string buf
        (Printf.sprintf "      %s      %s  %11d     %s%s\n" (fmt_time v.av_self)
           (fmt_time v.av_child) v.av_count name (idx_ref p v.av_other)))
    c.c_member_views;
  Buffer.contents buf

let entry_block p = function
  | Profile.Func id -> func_block p id
  | Profile.Cycle no -> cycle_block p no
  | Profile.Spontaneous -> invalid_arg "Graphprof.entry_block: Spontaneous"

let explanation =
  "Each entry in this listing describes one routine, between dashed lines.\n\
   The routine's own line carries its index in brackets, the percentage of\n\
   total time accounted to it and its descendants, its self seconds, the\n\
   seconds propagated to it from its descendants, and the number of times\n\
   it was called (calls+self for self-recursive routines, where only the\n\
   outside calls propagate time).\n\
   The lines above it are its parents: the self and descendant seconds this\n\
   routine propagates to each, and calls-from-that-parent / total-calls.\n\
   The lines below it are its children: the self and descendant seconds each\n\
   child propagates here, and calls-from-here / total-calls-to-that-child.\n\
   A child in a cycle shows the whole cycle's time, prorated by calls. A\n\
   cycle's own entry lists the members in place of children; calls among\n\
   members are shown but never propagate time. Every name is followed by\n\
   the index where its own entry can be found.\n\n"

let listing ?(verbose = false) (p : Profile.t) =
  Obs.Trace.with_span ~cat:"core" "graph" @@ fun () ->
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "call graph profile:\n\n";
  if verbose then Buffer.add_string buf explanation;
  Buffer.add_string buf
    (Printf.sprintf "granularity: each sample hit covers 1 instruction for %.2f%% of %.2f seconds\n\n"
       (if p.total_time > 0.0 then
          100.0 *. p.seconds_per_tick /. p.total_time
        else 0.0)
       p.total_time);
  Buffer.add_string buf header;
  Buffer.add_string buf separator;
  Array.iter
    (fun party ->
      Buffer.add_string buf (entry_block p party);
      Buffer.add_string buf separator)
    p.order;
  Buffer.contents buf
