(** Comparing two profiles — quantifying one optimization step.

    Section 6 prescribes an iterative loop: profile, eliminate a
    bottleneck, re-profile, watch the next bottleneck surface. This
    module diffs the before and after profiles of that loop, matching
    routines {e by name} (the builds usually differ: an optimization
    changes addresses, and inline expansion can remove routines from
    the dynamic graph entirely). *)

type row = {
  d_name : string;
  d_self_a : float option;  (** self seconds before; None if absent *)
  d_self_b : float option;
  d_total_a : float option;  (** self + descendants *)
  d_total_b : float option;
  d_calls_a : int option;
  d_calls_b : int option;
}

type t = {
  rows : row list;
      (** union of both profiles' routines, sorted by decreasing
          absolute self-time change *)
  total_a : float;
  total_b : float;
}

val diff : Profile.t -> Profile.t -> t
(** Routines that were never called and got no time on a side are
    reported as absent ([None]) on that side. *)

type side_row = {
  s_name : string;
  s_self : float;  (** self seconds *)
  s_total : float;  (** self + descendants, seconds *)
  s_calls : int option;  (** [None] when the side does not count calls *)
}

val diff_sides :
  total_a:float -> side_row list -> total_b:float -> side_row list -> t
(** The generic diff {!diff} is built on: each side is any per-routine
    accounting of self and total seconds — an analyzed arc profile, a
    stack-sample estimate (which counts no calls), or a mix of the
    two. *)

val side_rows : Profile.t -> side_row list
(** An analyzed profile as a diffable side. *)

val listing : t -> string

val self_delta : row -> float
(** [self_b - self_a], absent sides as 0. *)
