type options = {
  use_static_arcs : bool;
  removed_arcs : (string * string) list;
  auto_break_cycles : int option;
  focus : string list;
  exclude : string list;
  min_percent : float;
  lenient : bool;
}

let default_options =
  {
    use_static_arcs = true;
    removed_arcs = [];
    auto_break_cycles = None;
    focus = [];
    exclude = [];
    min_percent = 0.0;
    lenient = false;
  }

type t = {
  profile : Profile.t;
  removed : (int * int) list;
  dropped_records : int;
  folded_records : int;
  options : options;
}

let resolve_arc_names st arcs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (a, b) :: rest -> (
      match (Symtab.id_of_name st a, Symtab.id_of_name st b) with
      | Some ia, Some ib -> go ((ia, ib) :: acc) rest
      | None, _ -> Error (Printf.sprintf "unknown routine %s in arc removal" a)
      | _, None -> Error (Printf.sprintf "unknown routine %s in arc removal" b))
  in
  go [] arcs

(* Restrict the display order to parties connected to the focus set,
   mirroring "only parts of the graph containing certain methods". *)
let apply_focus st (profile : Profile.t) g focus =
  match focus with
  | [] -> Ok profile
  | names -> (
    match Symtab.ids_of_names st names with
    | Error n -> Error (Printf.sprintf "unknown routine %s in focus" n)
    | Ok ids ->
      let keep = Graphlib.Reach.between g ids in
      let cycle_kept (c : Profile.cycle_entry) =
        List.exists (fun m -> keep.(m)) c.c_members
      in
      let order =
        Array.to_list profile.order
        |> List.filter (function
             | Profile.Func f -> keep.(f)
             | Profile.Cycle no -> cycle_kept profile.cycles.(no - 1)
             | Profile.Spontaneous -> false)
        |> Array.of_list
      in
      Ok { profile with order })

let apply_exclude st (profile : Profile.t) names =
  match names with
  | [] -> Ok profile
  | names -> (
    match Symtab.ids_of_names st names with
    | Error n -> Error (Printf.sprintf "unknown routine %s in exclude" n)
    | Ok ids ->
      let order =
        Array.to_list profile.order
        |> List.filter (function
             | Profile.Func f -> not (List.mem f ids)
             | Profile.Cycle _ | Profile.Spontaneous -> true)
        |> Array.of_list
      in
      Ok { profile with order })

let apply_min_percent (profile : Profile.t) min_percent =
  if min_percent <= 0.0 then profile
  else
    let order =
      Array.to_list profile.order
      |> List.filter (fun party -> Profile.percent_time profile party >= min_percent)
      |> Array.of_list
    in
    { profile with order }

let analyze ?(options = default_options) o (gmon : Gmon.t) =
  Obs.Trace.with_span ~cat:"core" "analyze" @@ fun () ->
  match Gmon.validate gmon with
  | Error es -> Error ("invalid profile data: " ^ String.concat "; " es)
  | Ok () when
      (not options.lenient)
      && (gmon.hist.h_lowpc <> 0
          || gmon.hist.h_highpc <> Array.length o.Objcode.Objfile.text) ->
    (* A lenient analysis accepts the mismatch: whatever the histogram
       covers outside the text falls outside every routine and folds
       into <unknown> below. *)
    Error
      (Printf.sprintf
         "profile data covers pc [%d,%d) but the executable's text is [0,%d): \
          wrong gmon file for this binary?"
         gmon.hist.h_lowpc gmon.hist.h_highpc
         (Array.length o.Objcode.Objfile.text))
  | Ok () -> (
    let st = Symtab.of_objfile o in
    let st, unknown =
      if options.lenient then
        let st, u = Symtab.with_unknown st in
        (st, Some u)
      else (st, None)
    in
    let asg = Assign.assign ?unknown st gmon.hist in
    let static =
      if options.use_static_arcs then
        Obs.Trace.with_span ~cat:"core" "static-scan" (fun () ->
            (* Direct arcs from the text crawl, plus the sound
               over-approximation of functional-parameter calls the
               crawl alone cannot see (paper §2). *)
            let named =
              Objcode.Scan.static_arcs o @ Analysis.Indirect.static_arcs o
            in
            List.filter_map
              (fun (a, b) ->
                match (Symtab.id_of_name st a, Symtab.id_of_name st b) with
                | Some ia, Some ib -> Some (ia, ib)
                | _ -> None)
              named)
      else []
    in
    let ag = Arcgraph.build ~static ?unknown st gmon.arcs in
    match resolve_arc_names st options.removed_arcs with
    | Error e -> Error e
    | Ok explicit -> (
      let ag = Arcgraph.remove_arcs ag explicit in
      let heuristic =
        match options.auto_break_cycles with
        | None -> []
        | Some bound -> Graphlib.Feedback.greedy ag.graph ~bound
      in
      let ag = Arcgraph.remove_arcs ag heuristic in
      let seconds_per_tick = 1.0 /. float_of_int gmon.ticks_per_second in
      let profile = Propagate.run st asg ag ~seconds_per_tick in
      match
        Result.bind (apply_focus st profile ag.graph options.focus) (fun p ->
            apply_exclude st p options.exclude)
      with
      | Error e -> Error e
      | Ok profile ->
        let profile = apply_min_percent profile options.min_percent in
        Ok
          {
            profile;
            removed = explicit @ heuristic;
            dropped_records = ag.dropped;
            folded_records = ag.folded;
            options;
          }))

let degraded t =
  t.folded_records > 0
  ||
  match Symtab.id_of_name t.profile.symtab Symtab.unknown_name with
  | None -> false
  | Some u ->
    u < Array.length t.profile.entries
    &&
    let e = t.profile.entries.(u) in
    e.Profile.e_ticks > 0.0 || e.Profile.e_calls > 0

let removed_arc_names t =
  List.map
    (fun (a, b) ->
      (Symtab.name t.profile.symtab a, Symtab.name t.profile.symtab b))
    t.removed

let flat_listing ?verbose t = Flat.listing ?verbose t.profile

let graph_listing ?verbose t = Graphprof.listing ?verbose t.profile

let index_listing t = Xindex.listing t.profile

let dot_graph t = Dotprof.render t.profile

let full_listing ?verbose t =
  Obs.Trace.with_span ~cat:"core" "report" @@ fun () ->
  let buf = Buffer.create 8192 in
  if t.removed <> [] then begin
    Buffer.add_string buf "arcs removed from the analysis:\n";
    List.iter
      (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "    %s -> %s\n" a b))
      (removed_arc_names t);
    Buffer.add_char buf '\n'
  end;
  if t.dropped_records > 0 then
    Buffer.add_string buf
      (Printf.sprintf "%d arc records could not be resolved.\n\n" t.dropped_records);
  if t.folded_records > 0 then
    Buffer.add_string buf
      (Printf.sprintf "%d unresolvable arc records folded into %s.\n\n"
         t.folded_records Symtab.unknown_name);
  Buffer.add_string buf (graph_listing ?verbose t);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (flat_listing ?verbose t);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (index_listing t);
  Buffer.contents buf
