let entries (p : Profile.t) =
  let names =
    List.init (Symtab.n_funcs p.symtab) (fun id ->
        (Symtab.name p.symtab id, Profile.display_index p (Profile.Func id)))
  in
  let cycles =
    Array.to_list p.cycles
    |> List.map (fun (c : Profile.cycle_entry) ->
           ( Printf.sprintf "<cycle %d>" c.c_no,
             Profile.display_index p (Profile.Cycle c.c_no) ))
  in
  List.sort (fun (a, _) (b, _) -> compare a b) (names @ cycles)

let listing p =
  Obs.Trace.with_span ~cat:"core" "index" @@ fun () ->
  let buf = Buffer.create 512 in
  Buffer.add_string buf "index by function name:\n\n";
  List.iter
    (fun (name, idx) ->
      match idx with
      | Some i -> Buffer.add_string buf (Printf.sprintf "  [%3d] %s\n" i name)
      | None -> Buffer.add_string buf (Printf.sprintf "  [  -] %s\n" name))
    (entries p);
  Buffer.contents buf
