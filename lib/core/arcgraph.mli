(** Building the dynamic call graph from arc records.

    Arc records arrive as (call-site pc, callee entry pc, count). The
    call site is resolved to its containing routine to give a
    function-level graph; sites that resolve to no routine (the
    monitor's spontaneous pseudo-site among them) become
    "spontaneous" parents of their callee. Arcs into addresses that
    are not function entries are counted as [dropped] (they cannot
    occur with our monitor but may in corrupted data files).

    Static arcs from {!Objcode.Scan} are merged with count 0 — "thus
    they are never responsible for any time propagation. However,
    they may affect the structure of the graph" by completing
    strongly-connected components. *)

type t = {
  graph : Graphlib.Digraph.t;
      (** nodes are function ids; weights are traversal counts *)
  spontaneous : (int * int) list;
      (** (callee function id, count), sorted by callee *)
  dynamic_arcs : (int * int) list;
      (** the (src, dst) pairs that came from the profile (count > 0
          or an explicit dynamic record); static-only arcs are the
          rest *)
  dropped : int;  (** arc records that could not be resolved *)
  folded : int;
      (** arc records whose callee resolved to no routine and were
          redirected into the synthetic [<unknown>] node (lenient
          analyses only; strict ones count them as [dropped]) *)
}

val build :
  ?static:(int * int) list -> ?unknown:int -> Symtab.t -> Gmon.arc list -> t
(** [static] lists (caller id, callee id) pairs to add with count 0
    when absent from the dynamic graph. [unknown], when given, is the
    synthetic function id that absorbs arc records whose callee is no
    routine entry, instead of dropping them. *)

val remove_arcs :
  t -> (int * int) list -> t
(** Remove the given (caller id, callee id) arcs — the analysis-side
    arc deletion option. Spontaneous records are unaffected. *)
