type result = {
  self_ticks : float array;
  unattributed : float;
  total_ticks : int;
}

let assign ?unknown st (h : Gmon.hist) =
  Obs.Trace.with_span ~cat:"core" "assign" @@ fun () ->
  let n = Symtab.n_funcs st in
  let self = Array.make n 0.0 in
  let unattributed = ref 0.0 in
  let total = ref 0 in
  Array.iteri
    (fun i count ->
      if count > 0 then begin
        total := !total + count;
        let lo = h.h_lowpc + (i * h.h_bucket_size) in
        let hi = min (lo + h.h_bucket_size) h.h_highpc in
        let width = hi - lo in
        let ticks = float_of_int count in
        if width <= 0 then unattributed := !unattributed +. ticks
        else begin
          (* Prorate by overlap with each function's address range. *)
          let attributed = ref 0.0 in
          let fid = ref (Symtab.id_of_pc st lo) in
          (* Walk functions forward from the one containing (or after)
             lo until past hi. Function ranges are sorted and
             disjoint, so a linear walk over at most the overlapped
             functions is enough. *)
          (match !fid with
          | None ->
            (* lo falls in a gap; find the first function starting
               after lo. *)
            let rec find j =
              if j >= n then None
              else if Symtab.entry st j + Symtab.size st j > lo then Some j
              else find (j + 1)
            in
            fid := find 0
          | Some _ -> ());
          let rec walk = function
            | None -> ()
            | Some j when j >= n -> ()
            | Some j ->
              let f_lo = Symtab.entry st j in
              let f_hi = f_lo + Symtab.size st j in
              if f_lo >= hi then ()
              else begin
                let ov = min hi f_hi - max lo f_lo in
                if ov > 0 then begin
                  let share = ticks *. float_of_int ov /. float_of_int width in
                  self.(j) <- self.(j) +. share;
                  attributed := !attributed +. share
                end;
                walk (Some (j + 1))
              end
          in
          walk !fid;
          unattributed := !unattributed +. (ticks -. !attributed)
        end
      end)
    h.h_counts;
  (* Lenient analyses fold the time of unresolvable PCs into the
     synthetic <unknown> routine so it shows up in the listings
     instead of silently shrinking the total. *)
  (match unknown with
  | Some u when !unattributed > 0.0 ->
    self.(u) <- self.(u) +. !unattributed;
    unattributed := 0.0
  | _ -> ());
  { self_ticks = self; unattributed = !unattributed; total_ticks = !total }

let check_conservation r =
  let attributed = Array.fold_left ( +. ) 0.0 r.self_ticks in
  abs_float (attributed +. r.unattributed -. float_of_int r.total_ticks) < 1e-6
