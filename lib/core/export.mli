(** Machine-readable renderings of a computed profile.

    The listings in {!Flat} and {!Graphprof} reproduce the paper's
    output; this module exports the same analysis in the formats the
    rest of the profiling ecosystem grew around it:

    - {!folded_stacks} — one stack per line, suitable for
      flamegraph.pl or speedscope;
    - {!callgrind} — the callgrind file format, loadable by
      kcachegrind/qcachegrind;
    - {!json_report} — a stable JSON document carrying the flat
      profile, the call graph, the cycles, and the analysis
      provenance (schema ["gprof-repro.report/1"], documented in
      docs/json-report.md);
    - {!timeline} — a human-readable per-epoch digest of a
      {!Gmon.Epoch} container: the busiest routines of each window
      and the biggest movers between consecutive windows. *)

val folded_stacks : Profile.t -> string
(** One line per routine with sampled time:
    [root;...;parent;routine ticks]. The stack is reconstructed by
    walking each routine's heaviest parent upward (the profile stores
    an arc graph, not full stacks), so it shows the dominant path,
    with cycles cut at the first repeated node. Routines are emitted
    in function-id order; ticks are the routine's raw self ticks,
    rounded. *)

val folded_sampled : Symtab.t -> Gmon.Sprof.t -> string
(** Folded stacks straight from a sampled-profile container:
    [root;...;leaf count], one line per interned stack in canonical
    order. Unlike {!folded_stacks} there is no reconstruction — each
    line is a complete stack that was actually observed, weighted by
    its sample count. Frame addresses that match no function entry
    are skipped; stacks with no resolvable frame are omitted. *)

val callgrind : Profile.t -> string
(** The profile in callgrind format (events: [ticks]); self cost per
    routine plus one [cfn]/[calls] record per (caller, callee) arc
    with the arc's propagated inclusive ticks. Positions are entry
    addresses. *)

val json_report : Report.t -> string
(** The whole analysis as JSON, schema ["gprof-repro.report/1"]:
    totals, degradation counters, removed arcs, flat rows, graph
    entries (with parent/child arc views), cycles, and the
    never-called list. Keys and their meaning are stable; see
    docs/json-report.md. *)

val timeline :
  ?options:Report.options ->
  Objcode.Objfile.t ->
  Gmon.Epoch.t ->
  (string, string) result
(** Analyze each epoch's interval profile against the executable and
    render a per-window digest: the top routines by self time, and
    the routines whose self time moved most versus the previous
    window. [Error] when the container is empty or an epoch fails to
    analyze. *)
