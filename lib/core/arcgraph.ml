type t = {
  graph : Graphlib.Digraph.t;
  spontaneous : (int * int) list;
  dynamic_arcs : (int * int) list;
  dropped : int;
  folded : int;
}

let build ?(static = []) ?unknown st (arcs : Gmon.arc list) =
  Obs.Trace.with_span ~cat:"core" "arcgraph"
    ~args:[ ("arcs", string_of_int (List.length arcs)) ]
  @@ fun () ->
  let n = Symtab.n_funcs st in
  let g = Graphlib.Digraph.create n in
  let spont = Hashtbl.create 8 in
  let dynamic = Hashtbl.create 64 in
  let dropped = ref 0 in
  let folded = ref 0 in
  let add_spont callee count =
    let prev = Option.value ~default:0 (Hashtbl.find_opt spont callee) in
    Hashtbl.replace spont callee (prev + count)
  in
  let record caller_pc callee count =
    match Symtab.id_of_pc st caller_pc with
    | Some caller ->
      Graphlib.Digraph.add_arc g ~src:caller ~dst:callee ~count;
      Hashtbl.replace dynamic (caller, callee) ()
    | None -> add_spont callee count
  in
  List.iter
    (fun (a : Gmon.arc) ->
      match Symtab.id_of_entry st a.a_self with
      | Some callee -> record a.a_from callee a.a_count
      | None -> (
        (* A callee that is no routine entry cannot come from our
           monitor — it is damage. A lenient analysis folds the record
           into the synthetic <unknown> callee so the traversals stay
           visible; a strict one drops and counts it. *)
        match unknown with
        | Some u ->
          incr folded;
          record a.a_from u a.a_count
        | None -> incr dropped))
    arcs;
  List.iter
    (fun (src, dst) ->
      if src >= 0 && src < n && dst >= 0 && dst < n then
        if not (Graphlib.Digraph.mem_arc g ~src ~dst) then
          Graphlib.Digraph.add_arc g ~src ~dst ~count:0)
    static;
  let t =
    {
      graph = g;
      spontaneous =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) spont [] |> List.sort compare;
      dynamic_arcs =
        Hashtbl.fold (fun k () acc -> k :: acc) dynamic [] |> List.sort compare;
      dropped = !dropped;
      folded = !folded;
    }
  in
  let module M = Obs.Metrics in
  M.set (M.gauge M.default "core.arcgraph.dynamic") (List.length t.dynamic_arcs);
  M.set (M.gauge M.default "core.arcgraph.spontaneous") (List.length t.spontaneous);
  M.set (M.gauge M.default "core.arcgraph.dropped") t.dropped;
  M.set (M.gauge M.default "core.arcgraph.folded") t.folded;
  t

let remove_arcs t arcs =
  let g = Graphlib.Digraph.copy t.graph in
  List.iter (fun (src, dst) -> Graphlib.Digraph.remove_arc g ~src ~dst) arcs;
  let removed = Hashtbl.create 8 in
  List.iter (fun a -> Hashtbl.replace removed a ()) arcs;
  {
    t with
    graph = g;
    dynamic_arcs =
      List.filter (fun a -> not (Hashtbl.mem removed a)) t.dynamic_arcs;
  }
