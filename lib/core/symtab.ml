type t = {
  o : Objcode.Objfile.t;
  by_name : (string, int) Hashtbl.t;
}

let of_objfile o =
  Obs.Trace.with_span ~cat:"core" "symtab" @@ fun () ->
  let by_name = Hashtbl.create 64 in
  Array.iteri
    (fun i (s : Objcode.Objfile.symbol) -> Hashtbl.replace by_name s.name i)
    o.Objcode.Objfile.symbols;
  { o; by_name }

let objfile t = t.o

let n_funcs t = Array.length t.o.Objcode.Objfile.symbols

let sym t id = t.o.Objcode.Objfile.symbols.(id)

let name t id = (sym t id).name
let entry t id = (sym t id).addr
let size t id = (sym t id).size
let profiled t id = (sym t id).profiled

let id_of_pc t pc = Objcode.Objfile.symbol_index t.o pc

let id_of_entry t pc = Objcode.Objfile.func_id_of_addr t.o pc

let id_of_name t n = Hashtbl.find_opt t.by_name n

let ids_of_names t names =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | n :: rest -> (
      match id_of_name t n with
      | Some id -> go (id :: acc) rest
      | None -> Error n)
  in
  go [] names
