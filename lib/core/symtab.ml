type t = {
  o : Objcode.Objfile.t;
  by_name : (string, int) Hashtbl.t;
  extra : Objcode.Objfile.symbol array;
      (* synthetic symbols appended after the executable's own; they
         have no address range, so pc/entry lookup never returns them *)
}

let of_objfile o =
  Obs.Trace.with_span ~cat:"core" "symtab" @@ fun () ->
  let by_name = Hashtbl.create 64 in
  Array.iteri
    (fun i (s : Objcode.Objfile.symbol) -> Hashtbl.replace by_name s.name i)
    o.Objcode.Objfile.symbols;
  { o; by_name; extra = [||] }

let unknown_name = "<unknown>"

let with_unknown t =
  match Hashtbl.find_opt t.by_name unknown_name with
  | Some id -> (t, id)
  | None ->
    let n_real = Array.length t.o.Objcode.Objfile.symbols in
    let id = n_real + Array.length t.extra in
    let by_name = Hashtbl.copy t.by_name in
    Hashtbl.replace by_name unknown_name id;
    let unknown =
      { Objcode.Objfile.name = unknown_name; addr = max_int; size = 0;
        profiled = false }
    in
    ({ t with by_name; extra = Array.append t.extra [| unknown |] }, id)

let objfile t = t.o

let n_real t = Array.length t.o.Objcode.Objfile.symbols

let n_funcs t = n_real t + Array.length t.extra

let sym t id =
  let real = n_real t in
  if id < real then t.o.Objcode.Objfile.symbols.(id) else t.extra.(id - real)

let name t id = (sym t id).name
let entry t id = (sym t id).addr
let size t id = (sym t id).size
let profiled t id = (sym t id).profiled

let id_of_pc t pc = Objcode.Objfile.symbol_index t.o pc

let id_of_entry t pc = Objcode.Objfile.func_id_of_addr t.o pc

let id_of_name t n = Hashtbl.find_opt t.by_name n

let ids_of_names t names =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | n :: rest -> (
      match id_of_name t n with
      | Some id -> go (id :: acc) rest
      | None -> Error n)
  in
  go [] names
