(** The post-processor's view of the symbol table.

    Wraps an executable's symbols as a dense function-id space
    (0..n-1, in address order) with fast pc-to-function resolution —
    the first thing gprof needs to turn raw addresses from the profile
    data file back into routine names. *)

type t

val of_objfile : Objcode.Objfile.t -> t

val unknown_name : string
(** ["<unknown>"]. *)

val with_unknown : t -> t * int
(** Extend the table with a synthetic {!unknown_name} function (no
    address range, never returned by pc lookup) and return its id —
    the landing spot for sampled PCs and arc endpoints that resolve to
    no routine when the analysis runs leniently over damaged profile
    data. Idempotent. *)

val objfile : t -> Objcode.Objfile.t

val n_funcs : t -> int

val name : t -> int -> string

val entry : t -> int -> int
(** Entry address of function [id]. *)

val size : t -> int -> int

val profiled : t -> int -> bool

val id_of_pc : t -> int -> int option
(** Function whose address range contains the pc. *)

val id_of_entry : t -> int -> int option
(** Function whose entry address is exactly the given pc. *)

val id_of_name : t -> string -> int option

val ids_of_names : t -> string list -> (int list, string) result
(** All-or-nothing lookup; [Error] names the first unknown function. *)
