(* Exporters: folded stacks, callgrind, JSON, and the epoch-timeline
   digest. Everything here renders an already-computed analysis; no
   new profile semantics live in this file. *)

let round_ticks f = int_of_float (Float.round f)

(* ------------------------------------------------------------------ *)
(* Folded stacks                                                       *)

(* The profile stores an arc graph, not complete stacks, so each
   routine's line shows the dominant path to it: follow the heaviest
   parent upward until <spontaneous> or a repeat. Heaviness is the
   propagated time an arc carried, with the traversal count breaking
   ties (interval profiles can have arcs with calls but no samples). *)

let heaviest_parent views =
  List.fold_left
    (fun best (v : Profile.arc_view) ->
      match v.av_other with
      | Profile.Spontaneous -> best
      | _ -> (
        let w = (v.av_self +. v.av_child, v.av_count) in
        match best with
        | Some (bw, _) when bw >= w -> best
        | _ -> Some (w, v.av_other)))
    None views
  |> Option.map snd

let dominant_path (p : Profile.t) id =
  let rec up party visited acc =
    if List.mem party visited then acc
    else
      let parents =
        match party with
        | Profile.Func i -> p.entries.(i).e_parents
        | Profile.Cycle n -> p.cycles.(n - 1).c_parents
        | Profile.Spontaneous -> []
      in
      match heaviest_parent parents with
      | None -> acc
      | Some parent -> (
        match parent with
        | Profile.Spontaneous -> acc
        | _ -> up parent (party :: visited) (parent :: acc))
  in
  up (Profile.Func id) [] [ Profile.Func id ]

let folded_stacks (p : Profile.t) =
  let b = Buffer.create 1024 in
  Array.iteri
    (fun id (e : Profile.entry) ->
      let ticks = round_ticks e.e_ticks in
      if ticks > 0 then begin
        let path = dominant_path p id in
        List.iteri
          (fun i party ->
            if i > 0 then Buffer.add_char b ';';
            Buffer.add_string b (Profile.party_name p party))
          path;
        Buffer.add_string b (Printf.sprintf " %d\n" ticks)
      end)
    p.entries;
  Buffer.contents b

(* Sampled profiles carry complete stacks, so no dominant-path
   reconstruction is needed: each interned stack renders as exactly
   the path that was live, weighted by its sample count. *)
let folded_sampled st (sp : Gmon.Sprof.t) =
  let b = Buffer.create 1024 in
  List.iter
    (fun (stack, count) ->
      let names =
        Array.to_list stack
        |> List.filter_map (fun addr ->
               Option.map (Symtab.name st) (Symtab.id_of_entry st addr))
      in
      if names <> [] then
        Buffer.add_string b
          (Printf.sprintf "%s %d\n" (String.concat ";" names) count))
    sp.Gmon.Sprof.sp_stacks;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Callgrind                                                           *)

(* One fn= record per routine carrying its self cost at its entry
   address, one cfn=/calls= record per outgoing arc carrying the
   arc's propagated inclusive cost. Events are clock ticks, matching
   what the profiler actually measured. *)

let callgrind (p : Profile.t) =
  let st = p.symtab in
  let b = Buffer.create 4096 in
  let spt = p.seconds_per_tick in
  let ticks_of seconds =
    if spt > 0.0 then round_ticks (seconds /. spt) else 0
  in
  Buffer.add_string b "# callgrind format\n";
  Buffer.add_string b "version: 1\ncreator: gprof-repro\n";
  Buffer.add_string b "positions: line\nevents: ticks\n";
  Buffer.add_string b
    (Printf.sprintf "summary: %d\n\n" (ticks_of p.total_time));
  Array.iteri
    (fun id (e : Profile.entry) ->
      let self = round_ticks e.e_ticks in
      let has_arcs = e.e_children <> [] in
      if self > 0 || has_arcs || e.e_calls > 0 || e.e_self_calls > 0 then begin
        let pos = Symtab.entry st id in
        Buffer.add_string b (Printf.sprintf "fn=%s\n" (Symtab.name st id));
        Buffer.add_string b (Printf.sprintf "%d %d\n" pos self);
        List.iter
          (fun (v : Profile.arc_view) ->
            let cname, cpos =
              match v.av_other with
              | Profile.Func cid -> (Symtab.name st cid, Symtab.entry st cid)
              | Profile.Cycle n -> (Profile.party_name p (Profile.Cycle n), 0)
              | Profile.Spontaneous -> ("<spontaneous>", 0)
            in
            Buffer.add_string b (Printf.sprintf "cfn=%s\n" cname);
            Buffer.add_string b
              (Printf.sprintf "calls=%d %d\n" v.av_count cpos);
            Buffer.add_string b
              (Printf.sprintf "%d %d\n" pos
                 (ticks_of (v.av_self +. v.av_child))))
          e.e_children;
        Buffer.add_char b '\n'
      end)
    p.entries;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

let schema_id = "gprof-repro.report/1"

(* Jsonbuf.float stops at three fractional digits — too coarse for
   seconds at a 60 Hz clock — so seconds get six here. *)
let jsec b f = Buffer.add_string b (Printf.sprintf "%.6f" f)
let jstr b s = Obs.Jsonbuf.escape b s
let jint = Obs.Jsonbuf.int
let jbool b v = Buffer.add_string b (if v then "true" else "false")
let jnull b = Buffer.add_string b "null"

let jindex b (p : Profile.t) party =
  match Profile.display_index p party with
  | Some i -> jint b i
  | None -> jnull b

let jarc b (p : Profile.t) (v : Profile.arc_view) =
  Obs.Jsonbuf.obj b
    [
      ("name", fun () -> jstr b (Profile.party_name p v.av_other));
      ("index", fun () -> jindex b p v.av_other);
      ("count", fun () -> jint b v.av_count);
      ("total", fun () -> jint b v.av_total);
      ("self_seconds", fun () -> jsec b v.av_self);
      ("descendant_seconds", fun () -> jsec b v.av_child);
      ("intra_cycle", fun () -> jbool b v.av_intra);
    ]

let jgraph_entry b (p : Profile.t) party =
  match party with
  | Profile.Spontaneous -> jnull b (* never listed; keep the array well-formed *)
  | Profile.Func id ->
    let e = p.entries.(id) in
    Obs.Jsonbuf.obj b
      [
        ("kind", fun () -> jstr b "routine");
        ("index", fun () -> jindex b p party);
        ("name", fun () -> jstr b (Symtab.name p.symtab id));
        ("cycle", fun () -> jint b e.e_cycle);
        ("percent_time", fun () -> jsec b (Profile.percent_time p party));
        ("self_seconds", fun () -> jsec b e.e_self);
        ("descendant_seconds", fun () -> jsec b e.e_child);
        ("calls", fun () -> jint b e.e_calls);
        ("self_calls", fun () -> jint b e.e_self_calls);
        ("parents", fun () -> Obs.Jsonbuf.arr b e.e_parents (jarc b p));
        ("children", fun () -> Obs.Jsonbuf.arr b e.e_children (jarc b p));
      ]
  | Profile.Cycle n ->
    let c = p.cycles.(n - 1) in
    Obs.Jsonbuf.obj b
      [
        ("kind", fun () -> jstr b "cycle");
        ("index", fun () -> jindex b p party);
        ("number", fun () -> jint b c.c_no);
        ( "members",
          fun () ->
            Obs.Jsonbuf.arr b c.c_members (fun id ->
                jstr b (Symtab.name p.symtab id)) );
        ("percent_time", fun () -> jsec b (Profile.percent_time p party));
        ("self_seconds", fun () -> jsec b c.c_self);
        ("descendant_seconds", fun () -> jsec b c.c_child);
        ("calls", fun () -> jint b c.c_calls);
        ("intra_calls", fun () -> jint b c.c_intra_calls);
        ("parents", fun () -> Obs.Jsonbuf.arr b c.c_parents (jarc b p));
        ("members_views", fun () -> Obs.Jsonbuf.arr b c.c_member_views (jarc b p));
      ]

let json_report (r : Report.t) =
  let p = r.profile in
  let b = Buffer.create 8192 in
  Obs.Jsonbuf.obj b
    [
      ("schema", fun () -> jstr b schema_id);
      ("total_seconds", fun () -> jsec b p.total_time);
      ("seconds_per_tick", fun () -> jsec b p.seconds_per_tick);
      ("unattributed_seconds", fun () -> jsec b p.unattributed);
      ("degraded", fun () -> jbool b (Report.degraded r));
      ("dropped_records", fun () -> jint b r.dropped_records);
      ("folded_records", fun () -> jint b r.folded_records);
      ( "removed_arcs",
        fun () ->
          Obs.Jsonbuf.arr b (Report.removed_arc_names r) (fun (f, t) ->
              Obs.Jsonbuf.arr b [ f; t ] (jstr b)) );
      ( "flat",
        fun () ->
          Obs.Jsonbuf.arr b (Flat.rows p) (fun (id, self, cum, calls) ->
              Obs.Jsonbuf.obj b
                [
                  ("name", fun () -> jstr b (Symtab.name p.symtab id));
                  ( "percent_time",
                    (* the flat profile's %time is self-based, unlike
                       the graph's self+descendants share *)
                    fun () ->
                      jsec b
                        (if p.total_time > 0.0 then
                           100.0 *. self /. p.total_time
                         else 0.0) );
                  ("self_seconds", fun () -> jsec b self);
                  ("cumulative_seconds", fun () -> jsec b cum);
                  ("calls", fun () -> jint b calls);
                ]) );
      ( "graph",
        fun () ->
          Obs.Jsonbuf.arr b (Array.to_list p.order) (jgraph_entry b p) );
      ( "cycles",
        fun () ->
          Obs.Jsonbuf.arr b (Array.to_list p.cycles)
            (fun (c : Profile.cycle_entry) ->
              Obs.Jsonbuf.obj b
                [
                  ("number", fun () -> jint b c.c_no);
                  ( "members",
                    fun () ->
                      Obs.Jsonbuf.arr b c.c_members (fun id ->
                          jstr b (Symtab.name p.symtab id)) );
                  ("self_seconds", fun () -> jsec b c.c_self);
                  ("descendant_seconds", fun () -> jsec b c.c_child);
                  ("calls", fun () -> jint b c.c_calls);
                  ("intra_calls", fun () -> jint b c.c_intra_calls);
                ]) );
      ( "never_called",
        fun () ->
          Obs.Jsonbuf.arr b p.never_called (fun id ->
              jstr b (Symtab.name p.symtab id)) );
    ];
  Buffer.add_char b '\n';
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Timeline digest                                                     *)

(* Self-seconds by routine name for one analyzed interval. *)
let self_by_name (p : Profile.t) =
  let tbl = Hashtbl.create 64 in
  Array.iteri
    (fun id (e : Profile.entry) ->
      if e.e_self > 0.0 then
        Hashtbl.replace tbl (Symtab.name p.symtab id) e.e_self)
    p.entries;
  tbl

let mover_threshold = 0.0005 (* seconds; below this, clock noise *)

let timeline ?(options = Report.default_options) o (c : Gmon.Epoch.t) =
  if c.Gmon.Epoch.e_epochs = [] then Error "empty epoch container"
  else begin
    let b = Buffer.create 2048 in
    let tps = float_of_int c.Gmon.Epoch.e_ticks_per_second in
    Buffer.add_string b
      (Printf.sprintf "timeline: %d epoch(s), %d ticks/s\n"
         (Gmon.Epoch.n_epochs c) c.Gmon.Epoch.e_ticks_per_second);
    let rec go k prev_tick prev_tbl = function
      | [] -> Ok (Buffer.contents b)
      | (e : Gmon.Epoch.entry) :: rest -> (
        match Report.analyze ~options o (Gmon.Epoch.profile_of c e) with
        | Error msg -> Error (Printf.sprintf "epoch %d: %s" k msg)
        | Ok r ->
          let p = r.Report.profile in
          Buffer.add_string b
            (Printf.sprintf "epoch %d  [%.2fs .. %.2fs]\n" k
               (float_of_int prev_tick /. tps)
               (float_of_int e.ep_end_tick /. tps));
          let busiest =
            List.filter (fun (_, s) -> s > 0.0)
              (Array.to_list p.entries
              |> List.mapi (fun id (en : Profile.entry) ->
                     (Symtab.name p.symtab id, en.e_self))
              |> List.sort (fun (na, a) (nb, bv) ->
                     match compare bv a with 0 -> compare na nb | c -> c))
          in
          (match busiest with
          | [] -> Buffer.add_string b "  busiest: (no samples)\n"
          | _ ->
            Buffer.add_string b "  busiest:";
            List.iteri
              (fun i (name, s) ->
                if i < 3 then
                  Buffer.add_string b (Printf.sprintf " %s %.3fs" name s))
              busiest;
            Buffer.add_char b '\n');
          let cur_tbl = self_by_name p in
          (if k > 1 then begin
             let names = Hashtbl.create 64 in
             Hashtbl.iter (fun n _ -> Hashtbl.replace names n ()) cur_tbl;
             Hashtbl.iter (fun n _ -> Hashtbl.replace names n ()) prev_tbl;
             let movers =
               Hashtbl.fold
                 (fun n () acc ->
                   let before =
                     Option.value ~default:0.0 (Hashtbl.find_opt prev_tbl n)
                   in
                   let after =
                     Option.value ~default:0.0 (Hashtbl.find_opt cur_tbl n)
                   in
                   let d = after -. before in
                   if Float.abs d >= mover_threshold then
                     (n, before, after, d) :: acc
                   else acc)
                 names []
               |> List.sort (fun (na, _, _, da) (nb, _, _, db) ->
                      match compare (Float.abs db) (Float.abs da) with
                      | 0 -> compare na nb
                      | c -> c)
             in
             match movers with
             | [] -> Buffer.add_string b "  movers: (steady)\n"
             | _ ->
               Buffer.add_string b "  movers:";
               List.iteri
                 (fun i (n, before, after, d) ->
                   if i < 5 then
                     Buffer.add_string b
                       (Printf.sprintf " %s %+.3fs (%.3fs -> %.3fs)" n d
                          before after))
                 movers;
               Buffer.add_char b '\n'
           end);
          go (k + 1) e.ep_end_tick cur_tbl rest)
    in
    go 1 0 (Hashtbl.create 1) c.Gmon.Epoch.e_epochs
  end
