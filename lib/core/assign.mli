(** Assigning histogram ticks to routines — self time.

    Each histogram bucket covers an address interval; its ticks are
    the time observed there. With one-to-one granularity a bucket lies
    entirely inside one routine; with coarser granularity a bucket can
    straddle routine boundaries, in which case its ticks are prorated
    by address overlap (exactly what GNU gprof does). Ticks in buckets
    covering no routine are reported as unattributed. *)

type result = {
  self_ticks : float array;  (** per function id *)
  unattributed : float;  (** ticks outside every routine *)
  total_ticks : int;  (** sum over the histogram *)
}

val assign : ?unknown:int -> Symtab.t -> Gmon.hist -> result
(** [unknown], when given, is the function id that absorbs otherwise
    unattributed ticks (the synthetic [<unknown>] routine of a lenient
    analysis); [unattributed] is then 0. *)

val check_conservation : result -> bool
(** Attributed + unattributed = total (up to rounding); tested
    invariant. *)
