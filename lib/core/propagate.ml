module Digraph = Graphlib.Digraph

let run st (asg : Assign.result) (ag : Arcgraph.t) ~seconds_per_tick =
  Obs.Trace.with_span ~cat:"core" "propagate" @@ fun () ->
  let n = Symtab.n_funcs st in
  let g = ag.graph in
  let cf = Cyclefind.find g in
  let n_comps = cf.cond.scc.n_components in
  let spt = seconds_per_tick in
  let self_sec = Array.map (fun t -> t *. spt) asg.self_ticks in

  (* --- call-count bookkeeping --- *)
  let self_calls = Array.init n (fun f -> Digraph.arc_count g ~src:f ~dst:f) in
  let spont_into = Array.make n 0 in
  List.iter (fun (f, k) -> spont_into.(f) <- spont_into.(f) + k) ag.spontaneous;
  let calls_in =
    Array.init n (fun f ->
        List.fold_left
          (fun acc (r, k) -> if r = f then acc else acc + k)
          spont_into.(f) (Digraph.preds g f))
  in
  (* External calls into each component: arcs whose source lies in a
     different component, plus spontaneous invocations of members. *)
  let ext_calls = Array.make n_comps 0 in
  Array.iteri
    (fun f s -> ext_calls.(Cyclefind.comp_of cf f) <- ext_calls.(Cyclefind.comp_of cf f) + s)
    spont_into;
  Digraph.iter_arcs
    (fun ~src ~dst ~count ->
      let cd = Cyclefind.comp_of cf dst in
      if Cyclefind.comp_of cf src <> cd then ext_calls.(cd) <- ext_calls.(cd) + count)
    g;
  (* Calls among distinct members of each cycle. *)
  let intra_calls = Array.make (max cf.n_cycles 1) 0 in
  Digraph.iter_arcs
    (fun ~src ~dst ~count ->
      if src <> dst && cf.cycle_no.(src) > 0 && cf.cycle_no.(src) = cf.cycle_no.(dst)
      then
        intra_calls.(cf.cycle_no.(src) - 1) <-
          intra_calls.(cf.cycle_no.(src) - 1) + count)
    g;

  (* --- the propagation sweep --- *)
  let child_fun = Array.make n 0.0 in
  let comp_members = cf.cond.scc.members in
  let comp_self = Array.make n_comps 0.0 in
  let comp_child = Array.make n_comps 0.0 in
  for c = 0 to n_comps - 1 do
    let members = comp_members.(c) in
    comp_self.(c) <- List.fold_left (fun a m -> a +. self_sec.(m)) 0.0 members;
    comp_child.(c) <- List.fold_left (fun a m -> a +. child_fun.(m)) 0.0 members;
    let total = comp_self.(c) +. comp_child.(c) in
    let denom = ext_calls.(c) in
    if denom > 0 && total > 0.0 then
      List.iter
        (fun e ->
          List.iter
            (fun (r, count) ->
              if Cyclefind.comp_of cf r <> c && count > 0 then
                child_fun.(r) <-
                  child_fun.(r) +. (total *. float_of_int count /. float_of_int denom))
            (Digraph.preds g e))
        members
  done;

  (* --- arc views --- *)
  (* The time a caller [r]'s arc receives from callee [e]'s component:
     the component totals scaled by the arc's share of the external
     calls. *)
  let arc_shares ~dst count =
    let c = Cyclefind.comp_of cf dst in
    let denom = ext_calls.(c) in
    if denom <= 0 then (0.0, 0.0, denom)
    else begin
      let frac = float_of_int count /. float_of_int denom in
      (comp_self.(c) *. frac, comp_child.(c) *. frac, denom)
    end
  in
  let parents = Array.make n [] and children = Array.make n [] in
  Digraph.iter_arcs
    (fun ~src ~dst ~count ->
      if src <> dst then begin
        let same = Cyclefind.comp_of cf src = Cyclefind.comp_of cf dst in
        if same then begin
          let total = intra_calls.(cf.cycle_no.(src) - 1) in
          let view other =
            {
              Profile.av_other = other;
              av_count = count;
              av_total = total;
              av_self = 0.0;
              av_child = 0.0;
              av_intra = true;
            }
          in
          children.(src) <- view (Profile.Func dst) :: children.(src);
          parents.(dst) <- view (Profile.Func src) :: parents.(dst)
        end
        else begin
          let s, ch, denom = arc_shares ~dst count in
          let mk other =
            {
              Profile.av_other = other;
              av_count = count;
              av_total = (if denom > 0 then denom else calls_in.(dst));
              av_self = s;
              av_child = ch;
              av_intra = false;
            }
          in
          children.(src) <- mk (Profile.Func dst) :: children.(src);
          parents.(dst) <- mk (Profile.Func src) :: parents.(dst)
        end
      end)
    g;
  List.iter
    (fun (f, k) ->
      let s, ch, denom = arc_shares ~dst:f k in
      parents.(f) <-
        {
          Profile.av_other = Profile.Spontaneous;
          av_count = k;
          av_total = (if denom > 0 then denom else calls_in.(f));
          av_self = s;
          av_child = ch;
          av_intra = false;
        }
        :: parents.(f))
    ag.spontaneous;

  let share v = v.Profile.av_self +. v.Profile.av_child in
  let asc a b =
    compare (share a, a.Profile.av_count) (share b, b.Profile.av_count)
  in
  let desc a b = asc b a in

  (* --- entries --- *)
  let entries =
    Array.init n (fun f ->
        {
          Profile.e_id = f;
          e_cycle = cf.cycle_no.(f);
          e_self = self_sec.(f);
          e_child = child_fun.(f);
          e_calls = calls_in.(f);
          e_self_calls = self_calls.(f);
          e_ticks = asg.self_ticks.(f);
          e_parents = List.sort asc parents.(f);
          e_children = List.sort desc children.(f);
        })
  in

  (* --- cycle entries --- *)
  let cycles =
    Array.init cf.n_cycles (fun i ->
        let no = i + 1 in
        let members = cf.members.(i) in
        let comp = Cyclefind.comp_of cf (List.hd members) in
        let c_parents =
          List.concat_map
            (fun m ->
              List.filter
                (fun v -> not v.Profile.av_intra)
                entries.(m).Profile.e_parents)
            members
          |> List.sort asc
        in
        let member_views =
          List.map
            (fun m ->
              let intra_in =
                List.fold_left
                  (fun acc (r, k) ->
                    if r <> m && cf.cycle_no.(r) = no then acc + k else acc)
                  0 (Digraph.preds g m)
              in
              {
                Profile.av_other = Profile.Func m;
                av_count = intra_in;
                av_total = intra_calls.(i);
                av_self = self_sec.(m);
                av_child = child_fun.(m);
                av_intra = true;
              })
            members
          |> List.sort desc
        in
        {
          Profile.c_no = no;
          c_members = members;
          c_self = comp_self.(comp);
          c_child = comp_child.(comp);
          c_calls = ext_calls.(comp);
          c_intra_calls = intra_calls.(i);
          c_parents;
          c_member_views = member_views;
        })
  in

  (* --- display order and never-called --- *)
  let total_time = Array.fold_left ( +. ) 0.0 self_sec in
  let never_called =
    List.filter
      (fun f -> calls_in.(f) = 0 && self_calls.(f) = 0 && asg.self_ticks.(f) = 0.0)
      (List.init n Fun.id)
  in
  let listed f =
    calls_in.(f) > 0 || self_calls.(f) > 0
    || asg.self_ticks.(f) > 0.0
    || parents.(f) <> [] || children.(f) <> []
  in
  let parties =
    List.init cf.n_cycles (fun i -> Profile.Cycle (i + 1))
    @ (List.init n Fun.id |> List.filter listed |> List.map (fun f -> Profile.Func f))
  in
  let total_of = function
    | Profile.Func f -> self_sec.(f) +. child_fun.(f)
    | Profile.Cycle no ->
      let comp = Cyclefind.comp_of cf (List.hd cf.members.(no - 1)) in
      comp_self.(comp) +. comp_child.(comp)
    | Profile.Spontaneous -> 0.0
  in
  let party_label = function
    | Profile.Func f -> (1, Symtab.name st f)
    | Profile.Cycle no -> (0, string_of_int no)
    | Profile.Spontaneous -> (2, "")
  in
  let order =
    List.sort
      (fun a b ->
        let c = compare (total_of b) (total_of a) in
        if c <> 0 then c else compare (party_label a) (party_label b))
      parties
    |> Array.of_list
  in
  {
    Profile.symtab = st;
    total_time;
    seconds_per_tick = spt;
    entries;
    cycles;
    order;
    never_called;
    unattributed = asg.unattributed *. spt;
  }
