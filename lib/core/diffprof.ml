type row = {
  d_name : string;
  d_self_a : float option;
  d_self_b : float option;
  d_total_a : float option;
  d_total_b : float option;
  d_calls_a : int option;
  d_calls_b : int option;
}

type t = {
  rows : row list;
  total_a : float;
  total_b : float;
}

type side_row = {
  s_name : string;
  s_self : float;
  s_total : float;
  s_calls : int option;
}

let self_delta r =
  Option.value ~default:0.0 r.d_self_b -. Option.value ~default:0.0 r.d_self_a

let diff_sides ~total_a sa ~total_b sb =
  let tbl_of rows =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun r -> Hashtbl.replace tbl r.s_name (r.s_self, r.s_total, r.s_calls))
      rows;
    tbl
  in
  let ta = tbl_of sa and tb = tbl_of sb in
  let names = Hashtbl.create 64 in
  Hashtbl.iter (fun n _ -> Hashtbl.replace names n ()) ta;
  Hashtbl.iter (fun n _ -> Hashtbl.replace names n ()) tb;
  let rows =
    Hashtbl.fold
      (fun name () acc ->
        let pick tbl =
          match Hashtbl.find_opt tbl name with
          | Some (self, total, calls) -> (Some self, Some total, calls)
          | None -> (None, None, None)
        in
        let d_self_a, d_total_a, d_calls_a = pick ta in
        let d_self_b, d_total_b, d_calls_b = pick tb in
        { d_name = name; d_self_a; d_self_b; d_total_a; d_total_b; d_calls_a;
          d_calls_b }
        :: acc)
      names []
    |> List.sort (fun x y ->
           let c = compare (abs_float (self_delta y)) (abs_float (self_delta x)) in
           if c <> 0 then c else compare x.d_name y.d_name)
  in
  { rows; total_a; total_b }

(* A routine participates on a side when it was called or sampled. *)
let side_rows (p : Profile.t) =
  Array.to_list p.entries
  |> List.filter_map (fun (e : Profile.entry) ->
         if e.e_calls > 0 || e.e_self_calls > 0 || e.e_self > 0.0 then
           Some
             {
               s_name = Symtab.name p.symtab e.e_id;
               s_self = e.e_self;
               s_total = e.e_self +. e.e_child;
               s_calls = Some (e.e_calls + e.e_self_calls);
             }
         else None)

let diff (a : Profile.t) (b : Profile.t) =
  diff_sides ~total_a:a.total_time (side_rows a) ~total_b:b.total_time
    (side_rows b)

let cell = function
  | Some v -> Printf.sprintf "%8.2f" v
  | None -> "       -"

let cell_calls = function
  | Some c -> Printf.sprintf "%9d" c
  | None -> "        -"

let listing t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "profile diff: %.2fs before, %.2fs after (%+.2fs, %+.1f%%)\n\n"
       t.total_a t.total_b (t.total_b -. t.total_a)
       (if t.total_a > 0.0 then 100.0 *. (t.total_b -. t.total_a) /. t.total_a
        else 0.0));
  Buffer.add_string buf
    "    self(a)  self(b)    delta  total(a)  total(b)   calls(a)  calls(b)  name\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "   %s %s %+8.2f  %s  %s  %s %s  %s%s\n" (cell r.d_self_a)
           (cell r.d_self_b) (self_delta r) (cell r.d_total_a) (cell r.d_total_b)
           (cell_calls r.d_calls_a) (cell_calls r.d_calls_b) r.d_name
           (match (r.d_self_a, r.d_self_b) with
           | Some _, None -> "  [gone]"
           | None, Some _ -> "  [new]"
           | _ -> "")))
    t.rows;
  Buffer.contents buf
