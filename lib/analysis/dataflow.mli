(** The generic monotone dataflow framework.

    Everything a classic bit-vector or constant-propagation pass needs,
    abstracted once: a lattice (bottom, join, equality), a direction,
    a per-block transfer function, and an optional per-edge refinement
    — and a worklist fixpoint that is {e fuel-bounded} so a broken
    transfer function (or an adversarial binary) degrades to a
    reported non-convergence instead of a hung tool. The three
    instantiations living in {!Facts} (reaching definitions, liveness,
    conditional constant propagation) all go through {!Make.solve};
    {!Dom} shares the {!graph} view.

    Solving publishes [analysis.dataflow.*] counters (passes,
    iterations, fuel exhaustions) to {!Obs.Metrics.default}. *)

(** {1 Bit sets}

    Immutable fixed-width bit sets — the carrier of the may/must
    bit-vector lattices. Width is fixed at creation; all operands of a
    binary operation must share it. *)

module Bits : sig
  type t

  val empty : int -> t
  (** [empty w] is the empty set of width [w]. *)

  val full : int -> t
  (** [full w] holds every element of [0..w-1]. *)

  val add : t -> int -> t
  val remove : t -> int -> t
  val mem : t -> int -> bool
  val union : t -> t -> t
  val inter : t -> t -> t
  val diff : t -> t -> t
  val equal : t -> t -> bool
  val is_empty : t -> bool
  val cardinal : t -> int

  val elements : t -> int list
  (** Ascending. *)
end

(** {1 Graphs}

    The solver's view of a function: blocks as integers [0..n-1] with
    successor/predecessor adjacency. {!graph_of_func} derives it from
    a {!Cfg.func}; tests build arbitrary graphs directly. *)

type graph = {
  g_entry : int;
  g_succs : int array array;
  g_preds : int array array;
}

val graph_of_succs : entry:int -> int list array -> graph
(** Build a graph from successor lists; predecessors are derived.
    @raise Invalid_argument on an out-of-range entry or successor. *)

val graph_of_func : Cfg.func -> graph
(** Block indices in [Cfg.func] order ([fn_blocks] is address-sorted,
    so block 0 — the function entry — is the graph entry).
    @raise Invalid_argument on a function with no blocks. *)

val reachable : graph -> bool array
(** Forward reachability from [g_entry]. *)

(** {1 The framework} *)

type direction = Forward | Backward

type stats = {
  st_iterations : int;  (** transfer-function applications performed *)
  st_converged : bool;  (** [false] when the fuel bound was hit *)
}

module type LATTICE = sig
  type t

  val bottom : t
  (** The least element — "no information / unreachable". The solver
      seeds every block with it; [join bottom x = x] must hold. *)

  val equal : t -> t -> bool

  val join : t -> t -> t
  (** Least upper bound; with {!equal} this decides convergence.
      A may-analysis joins with union, a must-analysis with
      intersection (over a full-set bottom). *)
end

module Make (L : LATTICE) : sig
  type spec = {
    direction : direction;
    boundary : L.t;
        (** the fact entering the CFG: joined into the entry block's
            input (forward) or into every exit block's input
            (backward) *)
    transfer : int -> L.t -> L.t;
        (** [transfer b fact] pushes [fact] through block [b]; must be
            monotone in [fact] for the fixpoint to be the least one *)
    edge : (int -> int -> L.t -> L.t option) option;
        (** [edge src dst fact] refines the fact flowing along CFG
            edge [src -> dst] ([None] = the edge cannot execute —
            conditional constant propagation kills the untaken side of
            a constant branch this way). Defaults to [Some fact].
            Edges are always given in CFG orientation, also under
            [Backward]. *)
  }

  type result = { r_in : L.t array; r_out : L.t array; r_stats : stats }
  (** [r_in]/[r_out] are block {e input} and {e output} facts in the
      direction of flow: for a backward analysis [r_in.(b)] holds at
      the {e end} of [b] and [r_out.(b)] at its start. *)

  val solve : ?fuel:int -> graph -> spec -> result
  (** Run the worklist to a fixpoint or until [fuel] transfer
      applications have been spent (default [max 1024 (64 * n)]
      for [n] blocks). On exhaustion the partial facts are returned
      with [st_converged = false]; callers must degrade to their
      sound default (everything live, nothing constant). *)

  val is_fixpoint : graph -> spec -> result -> bool
  (** Re-apply every equation once: [true] iff nothing changes, i.e.
      the result really is a fixpoint. A converged {!solve} satisfies
      this by construction (the QCheck suite leans on it). *)
end
