(** The profile-vs-binary consistency linter.

    A gmon file is a bag of raw addresses; nothing in the paper's
    pipeline checks that those addresses make sense for the binary
    being analyzed — feed gprof the wrong [gmon.out] and it happily
    garbles. This pass verifies every claim the profile makes against
    the executable: call sites must hold call instructions, arc
    endpoints must be function entries, histogram buckets must map
    into the text segment, and every non-spontaneous dynamic arc must
    be {e feasible} in the static graph (direct calls to that callee,
    or an indirect site whose resolved target set admits it).

    {b Rule catalogue} (ids are stable; see docs/static-analysis.md):
    - [binary-invalid] (error): the executable fails
      {!Objcode.Objfile.validate}.
    - [hist-geometry] (error): histogram bounds or a bucket fall
      outside the text segment [0, len).
    - [hist-gap-ticks] (warning): a nonzero bucket covered by no
      routine.
    - [arc-from-non-call] (error): an arc's call site holds no
      [Call]/[Calli] instruction.
    - [arc-into-non-entry] (error): an arc's callee is mid-function or
      outside the symbol table.
    - [arc-into-unprofiled] (warning): an arc lands on a routine built
      without the monitoring prologue — the monitor cannot have
      produced it.
    - [arc-infeasible] (error): a non-spontaneous arc contradicts the
      static graph: a direct-call site targeting a different routine,
      or an indirect site whose resolved target set excludes the
      callee.
    - [arc-spontaneous] (info): an arc from outside the text segment —
      the monitor's pseudo-site for roots; the paper "declares them
      spontaneous".
    - [call-anomaly] (warning): the {e binary} has direct calls or
      funrefs whose target is no function entry
      ({!Objcode.Scan.anomalies}).
    - [dead-code-ticks] (warning): a statically-unreachable function
      observed with ticks or incoming calls ({!Reach.crosscheck}).
    - [profiled-unreachable] (info): an instrumented function the
      entry point can never reach.
    - [dead-blocks] (info): intra-procedurally unreachable blocks.

    Severities follow the PR 2 exit-code convention: 0 clean, 2 when
    findings at or above the failing threshold exist, 1 for
    operational failures (unreadable inputs). [--strict] fails on
    warnings and errors (default); [--lenient] fails only on
    errors. *)

type severity = Error | Warning | Info

val severity_to_string : severity -> string

type finding = {
  f_rule : string;
  f_severity : severity;
  f_addr : int option;  (** the offending address, when one exists *)
  f_msg : string;
}

type t = {
  l_findings : finding list;  (** errors first, then by rule/address *)
  l_arcs_checked : int;
  l_buckets_checked : int;
}

val rules : (string * severity * string) list
(** The catalogue: (id, severity, one-line description). *)

val lint :
  ?cfg:Cfg.t -> ?indirect:Indirect.t -> Objcode.Objfile.t -> Gmon.t -> t
(** Lint one profile against one executable. [cfg]/[indirect] default
    to fresh analyses of the executable; pass them to amortize over
    many profiles. Publishes [analysis.lint.*] counters to
    {!Obs.Metrics.default}. *)

val lint_binary : ?cfg:Cfg.t -> ?indirect:Indirect.t -> Objcode.Objfile.t -> t
(** The binary-only rules ([binary-invalid], [call-anomaly],
    [profiled-unreachable], [dead-blocks]) — what can be checked with
    no profile at hand. *)

val worst : t -> severity option
(** The highest severity present, [None] for a clean result. *)

val failed : strict:bool -> t -> bool
(** Whether the findings cross the failing threshold: errors always;
    warnings only when [strict]. *)

val exit_code : strict:bool -> t -> int
(** [0] clean (below threshold), [2] findings at or above it —
    matching the degraded-data convention of the ingestion layer. *)

val render : t -> string
(** Human listing: one line per finding
    ([severity \[rule\] message (addr N)]) and a summary count line.
    Stable order. *)
