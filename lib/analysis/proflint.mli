(** The profile-vs-binary consistency linter.

    A gmon file is a bag of raw addresses; nothing in the paper's
    pipeline checks that those addresses make sense for the binary
    being analyzed — feed gprof the wrong [gmon.out] and it happily
    garbles. This pass verifies every claim the profile makes against
    the executable: call sites must hold call instructions, arc
    endpoints must be function entries, histogram buckets must map
    into the text segment, and every non-spontaneous dynamic arc must
    be {e feasible} in the static graph (direct calls to that callee,
    or an indirect site whose resolved target set admits it).

    {b Rule catalogue} (ids are stable; see docs/static-analysis.md):
    - [binary-invalid] (error): the executable fails
      {!Objcode.Objfile.validate}.
    - [hist-geometry] (error): histogram bounds or a bucket fall
      outside the text segment [0, len).
    - [hist-gap-ticks] (warning): a nonzero bucket covered by no
      routine.
    - [arc-from-non-call] (error): an arc's call site holds no
      [Call]/[Calli] instruction.
    - [arc-into-non-entry] (error): an arc's callee is mid-function or
      outside the symbol table.
    - [arc-into-unprofiled] (warning): an arc lands on a routine built
      without the monitoring prologue — the monitor cannot have
      produced it.
    - [arc-infeasible] (error): a non-spontaneous arc contradicts the
      static graph: a direct-call site targeting a different routine,
      or an indirect site whose resolved target set excludes the
      callee.
    - [arc-spontaneous] (info): an arc from outside the text segment —
      the monitor's pseudo-site for roots; the paper "declares them
      spontaneous".
    - [call-anomaly] (warning): the {e binary} has direct calls or
      funrefs whose target is no function entry
      ({!Objcode.Scan.anomalies}).
    - [dead-code-ticks] (warning): a statically-unreachable function
      observed with ticks or incoming calls ({!Reach.crosscheck}).
    - [profiled-unreachable] (info): an instrumented function the
      entry point can never reach.
    - [dead-blocks] (info): intra-procedurally unreachable blocks.

    {b Dataflow rules} (over {!Dataflow}/{!Dom}/{!Facts}; binary-side
    unless noted):
    - [dead-store] (warning): a store to a local slot no path ever
      reads (liveness).
    - [dead-param] (warning): a parameter never read, for functions
      whose arity every call site agrees on.
    - [const-branch] (warning): a two-way branch whose condition
      constant propagation decides — it folds.
    - [const-dead-block] (info): a block the plain CFG reaches but
      constant propagation proves dead — beyond {!Reach}'s verdict.
    - [irreducible-loop] (warning): a multi-entry loop; natural-loop
      analysis is partial there.
    - [loop-call-unobserved] (warning, profile): a call site at loop
      depth >= 1 whose every feasible target is an instrumented entry,
      whose own block was sampled ticking (so the call provably
      fired), with no dynamic arc.
    - [loop-no-ticks] (warning, profile): a loop none of whose
      fully-contained buckets ticked although its function crossed the
      hot threshold.
    - [dead-block-ticks] (error, profile): ticks inside a
      statically-dead block — a symbol-map/profile mismatch no
      merge of views can explain.

    {b PGO pairing rules} ({!lint_pgo}, baseline binary vs. its
    profile-guided rebuild):
    - [pgo-symbol-missing] (error): a baseline routine is absent from
      the optimized binary.
    - [pgo-entry-mismatch] (error): the two binaries start in
      different routines.
    - [pgo-profiled-dropped] (warning): a routine lost its monitoring
      prologue across the rebuild — fresh profiles will silently miss
      it.
    - [pgo-inlined-away] (info): every direct call to a routine was
      inlined; baseline profiles attribute its time to the routine,
      fresh profiles to its callers — the granularity loss the paper
      warns inlining causes.

    Severities follow the PR 2 exit-code convention: 0 clean, 2 when
    findings at or above the failing threshold exist, 1 for
    operational failures (unreadable inputs). [--strict] fails on
    warnings and errors (default); [--lenient] fails only on
    errors. *)

type severity = Error | Warning | Info

val severity_to_string : severity -> string

type finding = {
  f_rule : string;
  f_severity : severity;
  f_addr : int option;  (** the offending address, when one exists *)
  f_func : string option;  (** the enclosing function, when one exists *)
  f_msg : string;
}

type t = {
  l_findings : finding list;  (** errors first, then by rule/address *)
  l_arcs_checked : int;
  l_buckets_checked : int;
}

val rules : (string * severity * string) list
(** The catalogue: (id, severity, one-line description). *)

type statics = {
  s_cfg : Cfg.t;
  s_indirect : Indirect.t;
  s_arities : int option array;  (** per function id, {!Facts.arities} *)
  s_doms : Dom.t option array;  (** [None] for empty functions *)
  s_live : Facts.live option array;
  s_cp : Facts.cp option array;
}
(** Every static analysis the linter consumes, bundled so N profiles
    against one executable pay for it once. *)

val prepare :
  ?cfg:Cfg.t -> ?indirect:Indirect.t -> Objcode.Objfile.t -> statics

val lint :
  ?cfg:Cfg.t ->
  ?indirect:Indirect.t ->
  ?statics:statics ->
  Objcode.Objfile.t ->
  Gmon.t ->
  t
(** Lint one profile against one executable. [statics] (or
    [cfg]/[indirect]) default to fresh analyses of the executable;
    pass them to amortize over many profiles. Publishes
    [analysis.lint.*] counters (including per-rule
    [analysis.lint.fired.*]) to {!Obs.Metrics.default}. *)

val lint_binary :
  ?cfg:Cfg.t -> ?indirect:Indirect.t -> ?statics:statics ->
  Objcode.Objfile.t -> t
(** The binary-only rules ([binary-invalid], [call-anomaly],
    [profiled-unreachable], [dead-blocks], and the dataflow rules
    [dead-store]/[dead-param]/[const-branch]/[const-dead-block]/
    [irreducible-loop]) — what can be checked with no profile at
    hand. *)

val lint_pgo : baseline:Objcode.Objfile.t -> Objcode.Objfile.t -> t
(** The PGO pairing rules: check a profile-guided rebuild against the
    baseline binary its profile came from ([pgo-symbol-missing],
    [pgo-entry-mismatch], [pgo-profiled-dropped], [pgo-inlined-away]).
    Purely binary-vs-binary; no profile required. *)

val static_warnings : Objcode.Objfile.t -> finding list
(** Just the warning-severity dataflow findings over a binary — the
    set [minic --werror] promotes, so the compiler and the linter
    agree by construction. *)

val worst : t -> severity option
(** The highest severity present, [None] for a clean result. *)

val failed : strict:bool -> t -> bool
(** Whether the findings cross the failing threshold: errors always;
    warnings only when [strict]. *)

val exit_code : strict:bool -> t -> int
(** [0] clean (below threshold), [2] findings at or above it —
    matching the degraded-data convention of the ingestion layer. *)

val render : t -> string
(** Human listing: one line per finding
    ([severity \[rule\] message (addr N)]) and a summary count line.
    Stable order. *)

(** {1 Aggregation and machine-readable output} *)

type aggregate = { a_finding : finding; a_profiles : int }
(** One distinct finding and how many of the linted profiles produced
    it. Binary-side findings appear once per profile result they were
    part of, so against N profiles they count N. *)

val aggregate : t list -> aggregate list
(** Deduplicate findings by (rule, function, address, message) across
    the per-profile results, in {!render} order. *)

val render_aggregate : nprofiles:int -> t list -> string
(** The multi-profile human listing: each distinct finding once, with
    a [(k/N profiles)] tag, and one combined summary line. *)

val json_schema : string
(** ["gprof-repro.lint/1"] — see docs/json-report.md. *)

val to_json : binary:string -> profiles:string list -> t list -> string
(** The machine-readable report: schema tag, inputs, a summary block,
    and the aggregated findings sorted by (rule, function, pc,
    message) — deterministic, byte-identical across runs on equal
    inputs. *)
