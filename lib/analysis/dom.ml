type loop = {
  l_header : int;
  l_body : int list;
  l_back_edges : int list;
  l_depth : int;
  l_parent : int option;
}

type t = {
  d_graph : Dataflow.graph;
  d_idom : int array;
  d_frontier : int list array;
  d_rpo : int array;
  d_loops : loop array;
  d_depth : int array;
  d_irreducible : bool;
}

(* Postorder DFS from the entry; also classifies retreating edges
   (target still on the DFS stack) for the irreducibility check. *)
let dfs (g : Dataflow.graph) =
  let n = Array.length g.Dataflow.g_succs in
  let state = Array.make n `White in
  let post = ref [] in
  let retreating = ref [] in
  let rec go b =
    state.(b) <- `Grey;
    Array.iter
      (fun s ->
        match state.(s) with
        | `White -> go s
        | `Grey -> retreating := (b, s) :: !retreating
        | `Black -> ())
      g.Dataflow.g_succs.(b);
    state.(b) <- `Black;
    post := b :: !post
  in
  go g.Dataflow.g_entry;
  (Array.of_list !post, !retreating)

let idoms (g : Dataflow.graph) rpo =
  let n = Array.length g.Dataflow.g_succs in
  let number = Array.make n (-1) in
  Array.iteri (fun i b -> number.(b) <- i) rpo;
  let idom = Array.make n (-1) in
  idom.(g.Dataflow.g_entry) <- g.Dataflow.g_entry;
  let rec intersect a b =
    if a = b then a
    else if number.(a) > number.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b <> g.Dataflow.g_entry then begin
          let new_idom =
            Array.fold_left
              (fun acc p ->
                if idom.(p) = -1 then acc
                else match acc with None -> Some p | Some a -> Some (intersect a p))
              None g.Dataflow.g_preds.(b)
          in
          match new_idom with
          | None -> ()
          | Some d ->
            if idom.(b) <> d then begin
              idom.(b) <- d;
              changed := true
            end
        end)
      rpo
  done;
  idom

let dominates_idom idom a b =
  if idom.(b) = -1 then false
  else
    let rec up x = if x = a then true else if idom.(x) = x then false else up idom.(x) in
    up b

let frontiers (g : Dataflow.graph) idom =
  let n = Array.length g.Dataflow.g_succs in
  let df = Array.make n [] in
  for b = 0 to n - 1 do
    if idom.(b) >= 0 && Array.length g.Dataflow.g_preds.(b) >= 2 then
      Array.iter
        (fun p ->
          if idom.(p) >= 0 then begin
            let runner = ref p in
            while !runner <> idom.(b) do
              if not (List.mem b df.(!runner)) then
                df.(!runner) <- b :: df.(!runner);
              runner := idom.(!runner)
            done
          end)
        g.Dataflow.g_preds.(b)
  done;
  Array.map (fun l -> List.sort compare l) df

(* The natural loop of a back edge src -> header: header plus every
   block that reaches src against the flow without passing header. *)
let natural_loop (g : Dataflow.graph) ~header ~src =
  let n = Array.length g.Dataflow.g_succs in
  let inloop = Array.make n false in
  inloop.(header) <- true;
  let rec pull b =
    if not inloop.(b) then begin
      inloop.(b) <- true;
      Array.iter pull g.Dataflow.g_preds.(b)
    end
  in
  pull src;
  inloop

let of_graph g =
  let n = Array.length g.Dataflow.g_succs in
  let rpo, retreating = dfs g in
  let idom = idoms g rpo in
  let df = frontiers g idom in
  (* back edges are the retreating edges whose target dominates the
     source; any remaining retreating edge witnesses irreducibility *)
  let back, irreducible =
    List.fold_left
      (fun (back, irr) (src, dst) ->
        if dominates_idom idom dst src then ((src, dst) :: back, irr)
        else (back, true))
      ([], false) retreating
  in
  let headers = List.sort_uniq compare (List.map snd back) in
  let bodies =
    List.map
      (fun h ->
        let inloop = Array.make n false in
        inloop.(h) <- true;
        List.iter
          (fun (src, dst) ->
            if dst = h then
              Array.iteri
                (fun b v -> if v then inloop.(b) <- true)
                (natural_loop g ~header:h ~src))
          back;
        (h, inloop))
      headers
  in
  (* nesting: the parent of a loop is the smallest other loop whose
     body contains its header (loops with distinct headers are nested
     or disjoint when reducible) *)
  let size body = Array.fold_left (fun n v -> if v then n + 1 else n) 0 body in
  let bodies = Array.of_list bodies in
  let parent =
    Array.mapi
      (fun i (h, _) ->
        let best = ref None in
        Array.iteri
          (fun j (_, body) ->
            if i <> j && body.(h) then
              match !best with
              | Some (_, s) when s <= size body -> ()
              | _ -> best := Some (j, size body))
          bodies;
        Option.map fst !best)
      bodies
  in
  let depth_of = Array.make (Array.length bodies) 0 in
  let rec depth i =
    if depth_of.(i) > 0 then depth_of.(i)
    else begin
      let d = match parent.(i) with None -> 1 | Some p -> 1 + depth p in
      depth_of.(i) <- d;
      d
    end
  in
  Array.iteri (fun i _ -> ignore (depth i)) bodies;
  let loops =
    Array.mapi
      (fun i (h, body) ->
        {
          l_header = h;
          l_body =
            Array.to_list
              (Array.of_seq
                 (Seq.filter_map
                    (fun b -> if body.(b) then Some b else None)
                    (Seq.init n Fun.id)));
          l_back_edges =
            List.sort compare
              (List.filter_map
                 (fun (src, dst) -> if dst = h then Some src else None)
                 back);
          l_depth = depth_of.(i);
          l_parent = parent.(i);
        })
      bodies
  in
  let block_depth = Array.make n 0 in
  Array.iteri
    (fun i (_, body) ->
      Array.iteri
        (fun b v -> if v then block_depth.(b) <- max block_depth.(b) depth_of.(i))
        body)
    bodies;
  {
    d_graph = g;
    d_idom = idom;
    d_frontier = df;
    d_rpo = rpo;
    d_loops = loops;
    d_depth = block_depth;
    d_irreducible = irreducible;
  }

let compute (f : Cfg.func) =
  let t = of_graph (Dataflow.graph_of_func f) in
  let reg = Obs.Metrics.default in
  Obs.Metrics.incr (Obs.Metrics.counter reg "analysis.dom.functions");
  Obs.Metrics.incr ~by:(Array.length t.d_loops)
    (Obs.Metrics.counter reg "analysis.dom.loops");
  if t.d_irreducible then
    Obs.Metrics.incr (Obs.Metrics.counter reg "analysis.dom.irreducible");
  t

let dominates t a b = dominates_idom t.d_idom a b
