module Objfile = Objcode.Objfile
module Instr = Objcode.Instr

type fn = {
  c_id : int;
  c_name : string;
  c_blocks : int;
  c_loops : int;
  c_depth : int;
  c_irreducible : bool;
  c_self : int;
  c_total : int option;
}

type t = { c_funcs : fn array; c_loop_weight : int }

let pow base e =
  let rec go acc e = if e <= 0 then acc else go (acc * base) (e - 1) in
  go 1 e

(* saturating: weights over deep nests overflow otherwise *)
let cap = max_int / 4
let sat n = if n > cap then cap else n
let sat_add a b = sat (a + b)
let sat_mul a b = if a = 0 || b = 0 then 0 else if a > cap / b then cap else a * b

let static_estimate ?(loop_weight = 8) ?indirect (cfg : Cfg.t) =
  let o = cfg.Cfg.cfg_obj in
  let indirect = match indirect with Some i -> i | None -> Indirect.analyze o in
  let nfuncs = Array.length cfg.Cfg.cfg_funcs in
  (* per function: dom info, weighted self cost, weighted call sites *)
  let shapes =
    Array.map
      (fun (f : Cfg.func) ->
        if Array.length f.Cfg.fn_blocks = 0 then None
        else begin
          let dom = Dom.compute f in
          let reach = Dataflow.reachable dom.Dom.d_graph in
          let self = ref 0 in
          let sites = ref [] in
          Array.iteri
            (fun bi (b : Cfg.block) ->
              if reach.(bi) then begin
                let w = pow loop_weight dom.Dom.d_depth.(bi) in
                for pc = b.Cfg.bb_start to b.Cfg.bb_start + b.Cfg.bb_len - 1 do
                  self := sat_add !self (sat_mul w (Instr.cost o.Objfile.text.(pc)))
                done;
                List.iter (fun pc -> sites := (pc, w) :: !sites) b.Cfg.bb_calls
              end)
            f.Cfg.fn_blocks;
          Some (dom, reach, !self, List.rev !sites)
        end)
      cfg.Cfg.cfg_funcs
  in
  let targets_of pc =
    match o.Objfile.text.(pc) with
    | Instr.Call (t, _) -> (
      match Objfile.func_id_of_addr o t with Some id -> [ id ] | None -> [])
    | Instr.Calli _ ->
      List.filter_map
        (fun t -> Objfile.func_id_of_addr o t)
        (Indirect.targets indirect ~site:pc)
    | _ -> []
  in
  (* total bound by memoized DFS; a cycle poisons everything on or
     above it with None *)
  let memo : int option option array = Array.make nfuncs None in
  let visiting = Array.make nfuncs false in
  let rec total id =
    match memo.(id) with
    | Some v -> v
    | None ->
      if visiting.(id) then None
      else begin
        visiting.(id) <- true;
        let v =
          match shapes.(id) with
          | None -> Some 0
          | Some (_, _, self, sites) ->
            List.fold_left
              (fun acc (pc, w) ->
                match acc with
                | None -> None
                | Some a -> (
                  match targets_of pc with
                  | [] -> acc
                  | ts ->
                    List.fold_left
                      (fun worst t ->
                        match (worst, total t) with
                        | None, _ | _, None -> None
                        | Some x, Some y -> Some (max x (sat_add a (sat_mul w y))))
                      (Some a) ts))
              (Some self) sites
        in
        visiting.(id) <- false;
        memo.(id) <- Some v;
        v
      end
  in
  let funcs =
    Array.mapi
      (fun id (s : Objfile.symbol) ->
        match shapes.(id) with
        | None ->
          {
            c_id = id;
            c_name = s.Objfile.name;
            c_blocks = 0;
            c_loops = 0;
            c_depth = 0;
            c_irreducible = false;
            c_self = 0;
            c_total = Some 0;
          }
        | Some (dom, reach, self, _) ->
          {
            c_id = id;
            c_name = s.Objfile.name;
            c_blocks =
              Array.fold_left (fun n v -> if v then n + 1 else n) 0 reach;
            c_loops = Array.length dom.Dom.d_loops;
            c_depth = Array.fold_left max 0 dom.Dom.d_depth;
            c_irreducible = dom.Dom.d_irreducible;
            c_self = self;
            c_total = total id;
          })
      o.Objfile.symbols
  in
  { c_funcs = funcs; c_loop_weight = loop_weight }

let listing ?measured t =
  let buf = Buffer.create 1024 in
  let funcs =
    List.sort
      (fun a b ->
        match compare b.c_self a.c_self with
        | 0 -> compare a.c_name b.c_name
        | c -> c)
      (Array.to_list t.c_funcs)
  in
  Buffer.add_string buf
    (Printf.sprintf
       "static cost bounds (loop weight %d per nesting level)\n"
       t.c_loop_weight);
  let has_measured = measured <> None in
  Buffer.add_string buf
    (Printf.sprintf "%-20s %6s %5s %5s %12s %12s%s\n" "function" "blocks"
       "loops" "depth" "self-bound" "total-bound"
       (if has_measured then "   self-s  total-s" else ""));
  List.iter
    (fun f ->
      let bound = function
        | None -> "unbounded"
        | Some v -> if v >= cap then ">= cap" else string_of_int v
      in
      let m =
        match measured with
        | None -> ""
        | Some lookup -> (
          match lookup f.c_name with
          | None -> "        -        -"
          | Some (self_s, total_s) ->
            Printf.sprintf " %8.2f %8.2f" self_s total_s)
      in
      Buffer.add_string buf
        (Printf.sprintf "%-20s %6d %5d %5d %12d %12s%s%s\n" f.c_name f.c_blocks
           f.c_loops f.c_depth f.c_self
           (bound f.c_total)
           m
           (if f.c_irreducible then "  (irreducible)" else "")))
    funcs;
  Buffer.contents buf
