module Objfile = Objcode.Objfile
module Instr = Objcode.Instr
module Bits = Dataflow.Bits

(* ------------------------------------------------------------------ *)
(* Arity reconstruction *)

let arities ?indirect (cfg : Cfg.t) =
  let o = cfg.Cfg.cfg_obj in
  let indirect = match indirect with Some i -> i | None -> Indirect.analyze o in
  let n = Array.length o.Objfile.symbols in
  (* None = unseen; Some (Some k) = consistent arity k; Some None =
     conflicting call sites *)
  let seen : int option option array = Array.make n None in
  let record target nargs =
    match Objfile.func_id_of_addr o target with
    | None -> ()
    | Some id -> (
      match seen.(id) with
      | None -> seen.(id) <- Some (Some nargs)
      | Some (Some k) when k = nargs -> ()
      | Some _ -> seen.(id) <- Some None)
  in
  Array.iteri
    (fun pc ins ->
      match ins with
      | Instr.Call (target, nargs) -> record target nargs
      | Instr.Calli nargs ->
        List.iter (fun t -> record t nargs) (Indirect.targets indirect ~site:pc)
      | _ -> ())
    o.Objfile.text;
  (* the entry routine is called by the machine with no arguments *)
  (match Objfile.func_id_of_addr o o.Objfile.entry with
  | Some id when seen.(id) = None -> seen.(id) <- Some (Some 0)
  | _ -> ());
  Array.map (function Some a -> a | None -> None) seen

let scan_nslots (o : Objfile.t) (f : Cfg.func) =
  let hi = ref 0 in
  Array.iter
    (fun (b : Cfg.block) ->
      for pc = b.Cfg.bb_start to b.Cfg.bb_start + b.Cfg.bb_len - 1 do
        match o.Objfile.text.(pc) with
        | Instr.Load s | Instr.Store s -> hi := max !hi (s + 1)
        | _ -> ()
      done)
    f.Cfg.fn_blocks;
  !hi

(* ------------------------------------------------------------------ *)
(* Reaching definitions *)

type rd = {
  rd_defs : (int * int) array;
  rd_in : Bits.t array;
  rd_out : Bits.t array;
  rd_stats : Dataflow.stats;
}

module RdL = struct
  type t = Bits.t

  let bottom = Bits.empty 0
  let equal = Bits.equal
  let join a b = if a == bottom then b else if b == bottom then a else Bits.union a b
end

module RdSolver = Dataflow.Make (RdL)

let reaching ?nslots (o : Objfile.t) (f : Cfg.func) =
  let nslots = max (scan_nslots o f) (Option.value nslots ~default:0) in
  let stores = ref [] in
  Array.iter
    (fun (b : Cfg.block) ->
      for pc = b.Cfg.bb_start to b.Cfg.bb_start + b.Cfg.bb_len - 1 do
        match o.Objfile.text.(pc) with
        | Instr.Store s -> stores := (pc, s) :: !stores
        | _ -> ()
      done)
    f.Cfg.fn_blocks;
  let defs =
    Array.of_list
      (List.init nslots (fun s -> (-1, s)) @ List.sort compare !stores)
  in
  let ndefs = Array.length defs in
  let empty = Bits.empty ndefs in
  (* every def of each slot, as a set — the kill mask of a store *)
  let slot_defs = Array.make (max nslots 1) empty in
  Array.iteri (fun i (_, s) -> slot_defs.(s) <- Bits.add slot_defs.(s) i) defs;
  let def_at = Hashtbl.create 16 in
  Array.iteri (fun i (pc, _) -> if pc >= 0 then Hashtbl.replace def_at pc i) defs;
  let g = Dataflow.graph_of_func f in
  let widen b = if Bits.equal b RdL.bottom then Bits.empty ndefs else b in
  (* precompute per-block gen/kill once so the transfer applied on
     every worklist visit is two word-parallel set operations instead
     of an instruction walk *)
  let nblocks = Array.length f.Cfg.fn_blocks in
  let gen = Array.make nblocks empty and kill = Array.make nblocks empty in
  Array.iteri
    (fun bi (b : Cfg.block) ->
      let gn = ref empty and kl = ref empty in
      for pc = b.Cfg.bb_start to b.Cfg.bb_start + b.Cfg.bb_len - 1 do
        match o.Objfile.text.(pc) with
        | Instr.Store s when s < nslots ->
          kl := Bits.union !kl slot_defs.(s);
          gn := Bits.add (Bits.diff !gn slot_defs.(s)) (Hashtbl.find def_at pc)
        | _ -> ()
      done;
      gen.(bi) <- !gn;
      kill.(bi) <- !kl)
    f.Cfg.fn_blocks;
  let transfer bi fact =
    Bits.union gen.(bi) (Bits.diff (widen fact) kill.(bi))
  in
  let boundary =
    List.fold_left Bits.add (Bits.empty ndefs) (List.init nslots Fun.id)
  in
  let res =
    RdSolver.solve g
      { direction = Dataflow.Forward; boundary; transfer; edge = None }
  in
  {
    rd_defs = defs;
    rd_in = Array.map widen res.RdSolver.r_in;
    rd_out = Array.map widen res.RdSolver.r_out;
    rd_stats = res.RdSolver.r_stats;
  }

(* ------------------------------------------------------------------ *)
(* Liveness *)

type live = {
  lv_nslots : int;
  lv_in : Bits.t array;
  lv_out : Bits.t array;
  lv_dead_stores : (int * int) list;
  lv_stats : Dataflow.stats;
}

let liveness ?nslots (o : Objfile.t) (f : Cfg.func) =
  let nslots = max (scan_nslots o f) (Option.value nslots ~default:0) in
  let g = Dataflow.graph_of_func f in
  let widen b = if Bits.equal b RdL.bottom then Bits.empty nslots else b in
  (* backward: the fact is the live-slot set at the point under the
     cursor; walk the block bottom-up *)
  let back bi fact dead =
    let live = ref fact in
    let b = f.Cfg.fn_blocks.(bi) in
    for pc = b.Cfg.bb_start + b.Cfg.bb_len - 1 downto b.Cfg.bb_start do
      match o.Objfile.text.(pc) with
      | Instr.Store s when s < nslots ->
        (match dead with
        | Some acc when not (Bits.mem !live s) -> acc := (pc, s) :: !acc
        | _ -> ());
        live := Bits.remove !live s
      | Instr.Load s when s < nslots -> live := Bits.add !live s
      | _ -> ()
    done;
    !live
  in
  (* precompute per-block upward-exposed uses and defs; the transfer
     is then live_in = use + (live_out - def), no instruction walk *)
  let nblocks = Array.length f.Cfg.fn_blocks in
  let empty = Bits.empty nslots in
  let use = Array.make nblocks empty and def = Array.make nblocks empty in
  Array.iteri
    (fun bi (b : Cfg.block) ->
      let u = ref empty and d = ref empty in
      for pc = b.Cfg.bb_start + b.Cfg.bb_len - 1 downto b.Cfg.bb_start do
        match o.Objfile.text.(pc) with
        | Instr.Store s when s < nslots ->
          u := Bits.remove !u s;
          d := Bits.add !d s
        | Instr.Load s when s < nslots -> u := Bits.add !u s
        | _ -> ()
      done;
      use.(bi) <- !u;
      def.(bi) <- !d)
    f.Cfg.fn_blocks;
  let transfer bi fact =
    Bits.union use.(bi) (Bits.diff (widen fact) def.(bi))
  in
  let res =
    RdSolver.solve g
      {
        direction = Dataflow.Backward;
        boundary = Bits.empty nslots;
        transfer;
        edge = None;
      }
  in
  (* in flow orientation r_in is the fact at block end, r_out at its
     start; surface them in program orientation *)
  let lv_out = Array.map widen res.RdSolver.r_in in
  let lv_in = Array.map widen res.RdSolver.r_out in
  let dead =
    if not res.RdSolver.r_stats.Dataflow.st_converged then []
    else begin
      let acc = ref [] in
      Array.iteri (fun bi _ -> ignore (back bi lv_out.(bi) (Some acc)))
        f.Cfg.fn_blocks;
      List.sort compare !acc
    end
  in
  {
    lv_nslots = nslots;
    lv_in;
    lv_out;
    lv_dead_stores = dead;
    lv_stats = res.RdSolver.r_stats;
  }

let dead_params (l : live) ~arity =
  if Array.length l.lv_in = 0 || not l.lv_stats.Dataflow.st_converged then []
  else
    List.filter
      (fun p -> p < l.lv_nslots && not (Bits.mem l.lv_in.(0) p))
      (List.init arity Fun.id)

(* ------------------------------------------------------------------ *)
(* Conditional constant propagation *)

type cvalue = Cunknown | Cconst of int

let truth b = Cconst (if b then 1 else 0)

let eval_alu (op : Instr.alu) a b =
  match (a, b) with
  | Cconst a, Cconst b -> (
    match op with
    | Instr.Add -> Cconst (a + b)
    | Instr.Sub -> Cconst (a - b)
    | Instr.Mul -> Cconst (a * b)
    | Instr.Div -> if b = 0 then Cunknown else Cconst (a / b)
    | Instr.Mod -> if b = 0 then Cunknown else Cconst (a mod b)
    | Instr.Lt -> truth (a < b)
    | Instr.Le -> truth (a <= b)
    | Instr.Gt -> truth (a > b)
    | Instr.Ge -> truth (a >= b)
    | Instr.Eq -> truth (a = b)
    | Instr.Ne -> truth (a <> b))
  | _ -> Cunknown

let eval_unop (op : Instr.unop) a =
  match (op, a) with
  | Instr.Neg, Cconst n -> Cconst (-n)
  | Instr.Not, Cconst n -> truth (n = 0)
  | _, Cunknown -> Cunknown

type cenv = { ce_slots : cvalue array; ce_cond : cvalue }

module CpL = struct
  type t = Unreach | Env of cenv

  let bottom = Unreach

  let equal_v a b =
    match (a, b) with
    | Cunknown, Cunknown -> true
    | Cconst x, Cconst y -> x = y
    | _ -> false

  let equal a b =
    match (a, b) with
    | Unreach, Unreach -> true
    | Env a, Env b ->
      equal_v a.ce_cond b.ce_cond
      && (a.ce_slots == b.ce_slots
         || Array.length a.ce_slots = Array.length b.ce_slots
            &&
            let rec go i =
              i < 0 || (equal_v a.ce_slots.(i) b.ce_slots.(i) && go (i - 1))
            in
            go (Array.length a.ce_slots - 1))
    | _ -> false

  let join_v a b = match (a, b) with
    | Cconst x, Cconst y when x = y -> a
    | _ -> Cunknown

  let join a b =
    match (a, b) with
    | Unreach, x | x, Unreach -> x
    | Env a, Env b ->
      Env
        {
          ce_slots = Array.map2 join_v a.ce_slots b.ce_slots;
          ce_cond = join_v a.ce_cond b.ce_cond;
        }
end

module CpSolver = Dataflow.Make (CpL)

type cp = {
  cp_executable : bool array;
  cp_dead_blocks : int list;
  cp_const_branches : (int * int) list;
  cp_stats : Dataflow.stats;
}

let constprop ?arity (o : Objfile.t) (f : Cfg.func) =
  let nslots = max (scan_nslots o f) (Option.value arity ~default:0) in
  let g = Dataflow.graph_of_func f in
  let blocks = f.Cfg.fn_blocks in
  let simulate (b : Cfg.block) slots0 =
    let slots = Array.copy slots0 in
    let stack = ref [] in
    let push v = stack := v :: !stack in
    let pop () =
      (* the stack at block entry is unknown (short-circuit codegen
         carries values across labels); popping past the known prefix
         is imprecise, never wrong *)
      match !stack with [] -> Cunknown | v :: r -> stack := r; v
    in
    let cond = ref Cunknown in
    for pc = b.Cfg.bb_start to b.Cfg.bb_start + b.Cfg.bb_len - 1 do
      match o.Objfile.text.(pc) with
      | Instr.Const n -> push (Cconst n)
      | Instr.Load s -> push (if s < nslots then slots.(s) else Cunknown)
      | Instr.Store s ->
        let v = pop () in
        if s < nslots then slots.(s) <- v
      | Instr.Gload _ -> push Cunknown
      | Instr.Gstore _ -> ignore (pop ())
      | Instr.Aload _ ->
        ignore (pop ());
        push Cunknown
      | Instr.Astore _ ->
        ignore (pop ());
        ignore (pop ())
      | Instr.Alu op ->
        let rhs = pop () in
        let lhs = pop () in
        push (eval_alu op lhs rhs)
      | Instr.Unop op ->
        let v = pop () in
        push (eval_unop op v)
      | Instr.Funref _ -> push Cunknown
      | Instr.Call (_, nargs) ->
        for _ = 1 to nargs do ignore (pop ()) done;
        push Cunknown
      | Instr.Calli nargs ->
        for _ = 1 to nargs + 1 do ignore (pop ()) done;
        push Cunknown
      | Instr.Syscall (Instr.Sys_print | Instr.Sys_putc) ->
        let v = pop () in
        push v
      | Instr.Syscall Instr.Sys_rand ->
        ignore (pop ());
        push Cunknown
      | Instr.Syscall Instr.Sys_cycles -> push Cunknown
      | Instr.Pop -> ignore (pop ())
      | Instr.Jumpz _ -> cond := pop ()
      | Instr.Jump _ | Instr.Ret | Instr.Halt | Instr.Nop | Instr.Mcount
      | Instr.Pcount _ | Instr.Enter _ ->
        ()
    done;
    (slots, !cond)
  in
  let transfer bi fact =
    match fact with
    | CpL.Unreach -> CpL.Unreach
    | CpL.Env e ->
      let slots, cond = simulate blocks.(bi) e.ce_slots in
      CpL.Env { ce_slots = slots; ce_cond = cond }
  in
  let edge src dst fact =
    match fact with
    | CpL.Unreach -> None
    | CpL.Env e -> (
      let sb = blocks.(src) in
      let last = sb.Cfg.bb_start + sb.Cfg.bb_len - 1 in
      match (o.Objfile.text.(last), e.ce_cond) with
      | Instr.Jumpz t, Cconst c ->
        let dst_addr = blocks.(dst).Cfg.bb_start in
        let wanted = if c = 0 then dst_addr = t else dst_addr = last + 1 in
        if wanted then Some fact else None
      | _ -> Some fact)
  in
  let boundary =
    CpL.Env
      {
        ce_slots =
          Array.init nslots (fun s ->
              match arity with
              | Some a when s >= a -> Cconst 0 (* Enter zero-fills *)
              | _ -> Cunknown);
        ce_cond = Cunknown;
      }
  in
  let res =
    CpSolver.solve g
      { direction = Dataflow.Forward; boundary; transfer; edge = Some edge }
  in
  let n = Array.length blocks in
  if not res.CpSolver.r_stats.Dataflow.st_converged then
    {
      cp_executable = Array.make n true;
      cp_dead_blocks = [];
      cp_const_branches = [];
      cp_stats = res.CpSolver.r_stats;
    }
  else begin
    let executable =
      Array.init n (fun b ->
          b = 0 || res.CpSolver.r_in.(b) <> CpL.Unreach)
    in
    let plain = Dataflow.reachable g in
    let dead = ref [] in
    for b = n - 1 downto 0 do
      if plain.(b) && not executable.(b) then dead := b :: !dead
    done;
    let branches = ref [] in
    Array.iteri
      (fun bi (b : Cfg.block) ->
        if executable.(bi) then
          let last = b.Cfg.bb_start + b.Cfg.bb_len - 1 in
          match o.Objfile.text.(last) with
          | Instr.Jumpz _ when List.length (List.sort_uniq compare b.Cfg.bb_succs) >= 2
            -> (
            let e =
              match (bi, res.CpSolver.r_in.(bi)) with
              | 0, CpL.Unreach -> (
                match boundary with CpL.Env e -> Some e | CpL.Unreach -> None)
              | _, CpL.Env e -> Some e
              | _ -> None
            in
            match e with
            | None -> ()
            | Some e -> (
              match snd (simulate b e.ce_slots) with
              | Cconst c -> branches := (last, c) :: !branches
              | Cunknown -> ()))
          | _ -> ())
      blocks;
    {
      cp_executable = executable;
      cp_dead_blocks = !dead;
      cp_const_branches = List.rev !branches;
      cp_stats = res.CpSolver.r_stats;
    }
  end
