(** Indirect-call resolution: flow-insensitive function-value
    propagation.

    The paper concedes that its static crawl misses "calls to routines
    passed as parameters" — functional variables (§2). This pass
    shrinks that blind spot: it propagates [Funref] values through
    local slots, globals, arrays, call arguments, and return values
    with a flow-insensitive fixpoint over the whole program, and
    attributes to every [Calli] site the set of function entries that
    can reach it.

    {b Soundness contract}: the resolution is a sound
    {e over-approximation} under one documented assumption — function
    values originate from [Funref] instructions and flow only through
    moves (loads, stores, argument passing, returns). Arithmetic that
    manufactures a function address from constants is invisible to the
    pass (and to the paper's crawl); a site whose abstract operand is
    unknown falls back to {e every} address-taken function, never to a
    smaller set. Resolved arcs therefore enter the call graph with
    count 0, exactly like the paper's statically discovered arcs:
    "they are never responsible for any time propagation". *)

type resolution =
  | Resolved of int list
      (** possible target entry addresses, ascending; may be empty
          (the site can only receive non-function values) *)
  | Unresolved
      (** the operand's origin is unknown; the sound fallback is the
          whole address-taken set *)

type t = {
  i_sites : (int * resolution) list;
      (** every [Calli] site, ascending by address *)
  i_address_taken : int list;
      (** entry addresses of functions whose address is taken with
          [Funref], ascending *)
  i_arcs : (string * string) list;
      (** the over-approximate (caller, callee) pairs contributed by
          the resolved sites, deduplicated, in site order — the
          count-0 arcs {!Gprof_core.Report} merges when
          [use_static_arcs] is on *)
}

val analyze : Objcode.Objfile.t -> t
(** Run the fixpoint. Publishes [analysis.indirect.*] counters
    (sites, resolved, unresolved, arcs) to {!Obs.Metrics.default}. *)

val targets : t -> site:int -> int list
(** The feasible callee entries of a [Calli] site, with the
    [Unresolved] fallback expanded to the address-taken set. Empty for
    addresses that are not known [Calli] sites. *)

val resolution : t -> site:int -> resolution option

val static_arcs : Objcode.Objfile.t -> (string * string) list
(** [analyze] then [i_arcs] — the shape {!Objcode.Scan.static_arcs}
    has, for callers that want only the arcs. *)
