(* ------------------------------------------------------------------ *)
(* Bit sets *)

module Bits = struct
  (* immutable: every operation copies; widths are small (defs or
     slots per function) so the copies are a word or two *)
  type t = int array

  let bits_per_word = Sys.int_size

  let empty w =
    if w < 0 then invalid_arg "Bits.empty: negative width";
    Array.make ((w + bits_per_word - 1) / bits_per_word) 0

  let full w =
    let t = empty w in
    for i = 0 to w - 1 do
      t.(i / bits_per_word) <-
        t.(i / bits_per_word) lor (1 lsl (i mod bits_per_word))
    done;
    t

  let check t i =
    if i < 0 || i / bits_per_word >= Array.length t then
      invalid_arg "Bits: element out of width"

  let add t i =
    check t i;
    let t' = Array.copy t in
    t'.(i / bits_per_word) <-
      t'.(i / bits_per_word) lor (1 lsl (i mod bits_per_word));
    t'

  let remove t i =
    check t i;
    let t' = Array.copy t in
    t'.(i / bits_per_word) <-
      t'.(i / bits_per_word) land lnot (1 lsl (i mod bits_per_word));
    t'

  let mem t i =
    i >= 0
    && i / bits_per_word < Array.length t
    && t.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

  let zip op a b =
    if Array.length a <> Array.length b then
      invalid_arg "Bits: width mismatch";
    Array.init (Array.length a) (fun i -> op a.(i) b.(i))

  let union a b = zip ( lor ) a b
  let inter a b = zip ( land ) a b
  let diff a b = zip (fun x y -> x land lnot y) a b

  (* hand-rolled: polymorphic compare on the word array is a measurable
     cost in the solver loop, which tests equality on every visit *)
  let equal a b =
    a == b
    || Array.length a = Array.length b
       &&
       let rec go i = i < 0 || (a.(i) = b.(i) && go (i - 1)) in
       go (Array.length a - 1)
  let is_empty t = Array.for_all (fun w -> w = 0) t

  let cardinal t =
    let pop w =
      let rec go w n = if w = 0 then n else go (w lsr 1) (n + (w land 1)) in
      go w 0
    in
    Array.fold_left (fun n w -> n + pop w) 0 t

  let elements t =
    let acc = ref [] in
    for i = (Array.length t * bits_per_word) - 1 downto 0 do
      if mem t i then acc := i :: !acc
    done;
    !acc
end

(* ------------------------------------------------------------------ *)
(* Graphs *)

type graph = {
  g_entry : int;
  g_succs : int array array;
  g_preds : int array array;
}

let graph_of_succs ~entry succs =
  let n = Array.length succs in
  if entry < 0 || entry >= n then invalid_arg "Dataflow.graph_of_succs: entry";
  let preds = Array.make n [] in
  Array.iteri
    (fun src ss ->
      List.iter
        (fun dst ->
          if dst < 0 || dst >= n then
            invalid_arg "Dataflow.graph_of_succs: successor out of range";
          preds.(dst) <- src :: preds.(dst))
        ss)
    succs;
  {
    g_entry = entry;
    g_succs = Array.map Array.of_list succs;
    g_preds = Array.map (fun l -> Array.of_list (List.rev l)) preds;
  }

let graph_of_func (f : Cfg.func) =
  let n = Array.length f.Cfg.fn_blocks in
  if n = 0 then invalid_arg "Dataflow.graph_of_func: empty function";
  (* fn_blocks is address-sorted, so a successor address maps to a
     block index by binary search; Cfg guarantees targets are block
     starts *)
  let index_of addr =
    let rec go lo hi =
      if lo > hi then None
      else
        let mid = (lo + hi) / 2 in
        let s = f.Cfg.fn_blocks.(mid).Cfg.bb_start in
        if s = addr then Some mid
        else if s < addr then go (mid + 1) hi
        else go lo (mid - 1)
    in
    go 0 (n - 1)
  in
  let succs =
    Array.map
      (fun (b : Cfg.block) -> List.filter_map index_of b.Cfg.bb_succs)
      f.Cfg.fn_blocks
  in
  graph_of_succs ~entry:0 succs

let reachable g =
  let n = Array.length g.g_succs in
  let seen = Array.make n false in
  let rec go b =
    if not seen.(b) then begin
      seen.(b) <- true;
      Array.iter go g.g_succs.(b)
    end
  in
  go g.g_entry;
  seen

(* ------------------------------------------------------------------ *)
(* The framework *)

type direction = Forward | Backward
type stats = { st_iterations : int; st_converged : bool }

module type LATTICE = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
end

(* the counters are looked up once — a solve is a few microseconds and
   a string-keyed registry find per publish would be a visible tax *)
let publish =
  let reg = Obs.Metrics.default in
  let passes = lazy (Obs.Metrics.counter reg "analysis.dataflow.passes") in
  let iters = lazy (Obs.Metrics.counter reg "analysis.dataflow.iterations") in
  let fuel = lazy (Obs.Metrics.counter reg "analysis.dataflow.fuel_exhausted") in
  fun (st : stats) ->
    Obs.Metrics.incr (Lazy.force passes);
    Obs.Metrics.incr ~by:st.st_iterations (Lazy.force iters);
    if not st.st_converged then Obs.Metrics.incr (Lazy.force fuel)

module Make (L : LATTICE) = struct
  type spec = {
    direction : direction;
    boundary : L.t;
    transfer : int -> L.t -> L.t;
    edge : (int -> int -> L.t -> L.t option) option;
  }

  type result = { r_in : L.t array; r_out : L.t array; r_stats : stats }

  (* The solver always propagates along "next" edges; for a backward
     analysis next = CFG predecessors and the boundary enters at the
     exit blocks. The [edge] hook is called in CFG orientation in both
     directions. *)

  let flow g spec =
    let n = Array.length g.g_succs in
    let next, prev =
      match spec.direction with
      | Forward -> (g.g_succs, g.g_preds)
      | Backward -> (g.g_preds, g.g_succs)
    in
    let is_root =
      match spec.direction with
      | Forward -> fun b -> b = g.g_entry
      | Backward -> fun b -> Array.length g.g_succs.(b) = 0
    in
    let edge src dst fact =
      match spec.edge with
      | None -> Some fact
      | Some e -> (
        match spec.direction with
        | Forward -> e src dst fact
        | Backward -> e dst src fact)
    in
    (n, next, prev, is_root, edge)

  let input ~prev ~is_root ~edge spec out b =
    let fact = if is_root b then spec.boundary else L.bottom in
    Array.fold_left
      (fun fact p ->
        match edge p b out.(p) with
        | None -> fact
        | Some v -> L.join fact v)
      fact prev.(b)

  let solve ?fuel g spec =
    let n, next, prev, is_root, edge = flow g spec in
    let fuel = match fuel with Some f -> f | None -> max 1024 (64 * n) in
    let inb = Array.make n L.bottom and out = Array.make n L.bottom in
    let on_list = Array.make n true in
    (* the worklist is a preallocated ring: [on_list] dedup bounds the
       pending entries at [n], and a heap-allocated queue cell per push
       shows up in the profile of these microsecond-scale solves *)
    let qbuf = Array.make n 0 in
    let qhead = ref 0 and qlen = ref 0 in
    let qpush b =
      qbuf.((!qhead + !qlen) mod n) <- b;
      incr qlen
    in
    let qpop () =
      let b = qbuf.(!qhead) in
      qhead := (!qhead + 1) mod n;
      decr qlen;
      b
    in
    (* seed every block so gen-style facts appear even where no
       boundary flows (e.g. liveness inside an infinite loop) *)
    (match spec.direction with
    | Forward -> for b = 0 to n - 1 do qpush b done
    | Backward -> for b = n - 1 downto 0 do qpush b done);
    let iters = ref 0 in
    let exhausted = ref false in
    while !qlen > 0 do
      let b = qpop () in
      on_list.(b) <- false;
      if !iters >= fuel then begin
        exhausted := true;
        qlen := 0
      end
      else begin
        incr iters;
        let i = input ~prev ~is_root ~edge spec out b in
        inb.(b) <- i;
        let o = spec.transfer b i in
        if not (L.equal o out.(b)) then begin
          out.(b) <- o;
          Array.iter
            (fun s ->
              if not on_list.(s) then begin
                on_list.(s) <- true;
                qpush s
              end)
            next.(b)
        end
      end
    done;
    (* inputs of blocks that were on the list when fuel ran out may be
       stale; recompute them all once from the final outputs so r_in
       is at least internally consistent with r_out's sources. A
       converged run needs no repair: any change to a source's output
       re-queued the block, and its visit refreshed the input. *)
    if !exhausted then
      for b = 0 to n - 1 do
        inb.(b) <- input ~prev ~is_root ~edge spec out b
      done;
    let st = { st_iterations = !iters; st_converged = not !exhausted } in
    publish st;
    { r_in = inb; r_out = out; r_stats = st }

  let is_fixpoint g spec res =
    let n, _, prev, is_root, edge = flow g spec in
    let ok = ref true in
    for b = 0 to n - 1 do
      let i = input ~prev ~is_root ~edge spec res.r_out b in
      if not (L.equal i res.r_in.(b)) then ok := false;
      if not (L.equal (spec.transfer b i) res.r_out.(b)) then ok := false
    done;
    !ok
end
