module Objfile = Objcode.Objfile
module Instr = Objcode.Instr

type block = {
  bb_start : int;
  bb_len : int;
  bb_succs : int list;
  bb_calls : int list;
}

type func = {
  fn_symbol : Objfile.symbol;
  fn_blocks : block array;
}

type t = {
  cfg_obj : Objfile.t;
  cfg_funcs : func array;
}

(* A block ends at a control transfer (jump, conditional, return,
   halt) or just before the next leader. Calls do not end blocks: they
   fall through, exactly as the paper's call sites sit mid-routine. *)

let build_func (o : Objfile.t) (s : Objfile.symbol) =
  if s.size <= 0 then { fn_symbol = s; fn_blocks = [||] }
  else
  let lo = s.addr and hi = s.addr + s.size in
  let in_func a = a >= lo && a < hi in
  let leader = Array.make (hi - lo) false in
  leader.(0) <- true;
  for pc = lo to hi - 1 do
    match o.text.(pc) with
    | Instr.Jump t | Instr.Jumpz t ->
      if in_func t then leader.(t - lo) <- true;
      if pc + 1 < hi then leader.(pc + 1 - lo) <- true
    | Instr.Ret | Instr.Halt -> if pc + 1 < hi then leader.(pc + 1 - lo) <- true
    | _ -> ()
  done;
  let starts =
    let acc = ref [] in
    for i = hi - lo - 1 downto 0 do
      if leader.(i) then acc := (lo + i) :: !acc
    done;
    !acc
  in
  let blocks =
    List.map
      (fun start ->
        let block_end =
          (* one past the last instruction of this block *)
          let rec go pc =
            if pc >= hi then hi
            else if pc > start && leader.(pc - lo) then pc
            else
              match o.text.(pc) with
              | Instr.Jump _ | Instr.Jumpz _ | Instr.Ret | Instr.Halt -> pc + 1
              | _ -> go (pc + 1)
          in
          go start
        in
        let last = block_end - 1 in
        let succs =
          match o.text.(last) with
          | Instr.Jump t -> if in_func t then [ t ] else []
          | Instr.Jumpz t ->
            let fall = if block_end < hi then [ block_end ] else [] in
            let taken = if in_func t then [ t ] else [] in
            List.sort_uniq compare (taken @ fall)
          | Instr.Ret | Instr.Halt -> []
          | _ -> if block_end < hi then [ block_end ] else []
        in
        let calls = ref [] in
        for pc = block_end - 1 downto start do
          match o.text.(pc) with
          | Instr.Call _ | Instr.Calli _ -> calls := pc :: !calls
          | _ -> ()
        done;
        { bb_start = start; bb_len = block_end - start; bb_succs = succs;
          bb_calls = !calls })
      starts
  in
  { fn_symbol = s; fn_blocks = Array.of_list blocks }

let n_blocks t =
  Array.fold_left (fun n f -> n + Array.length f.fn_blocks) 0 t.cfg_funcs

let n_edges t =
  Array.fold_left
    (fun n f ->
      Array.fold_left (fun n b -> n + List.length b.bb_succs) n f.fn_blocks)
    0 t.cfg_funcs

let build o =
  Obs.Trace.with_span ~cat:"analysis" "cfg-build" @@ fun () ->
  let t =
    {
      cfg_obj = o;
      cfg_funcs = Array.map (build_func o) o.Objfile.symbols;
    }
  in
  let reg = Obs.Metrics.default in
  Obs.Metrics.incr ~by:(Array.length t.cfg_funcs)
    (Obs.Metrics.counter reg "analysis.cfg.functions");
  Obs.Metrics.incr ~by:(n_blocks t) (Obs.Metrics.counter reg "analysis.cfg.blocks");
  Obs.Metrics.incr ~by:(n_edges t) (Obs.Metrics.counter reg "analysis.cfg.edges");
  t

let func_by_name t name =
  Array.find_opt (fun f -> f.fn_symbol.Objfile.name = name) t.cfg_funcs

let block_of_addr f addr =
  Array.find_opt
    (fun b -> addr >= b.bb_start && addr < b.bb_start + b.bb_len)
    f.fn_blocks

let block_index f addr =
  (* fn_blocks is address-sorted *)
  let n = Array.length f.fn_blocks in
  let rec go lo hi =
    if lo > hi then None
    else
      let mid = (lo + hi) / 2 in
      let b = f.fn_blocks.(mid) in
      if addr < b.bb_start then go lo (mid - 1)
      else if addr >= b.bb_start + b.bb_len then go (mid + 1) hi
      else Some mid
  in
  go 0 (n - 1)

let func_of_addr t addr =
  match Objfile.symbol_index t.cfg_obj addr with
  | None -> None
  | Some i -> Some (i, t.cfg_funcs.(i))

let call_graph ?(indirect = []) t =
  let o = t.cfg_obj in
  let n = Array.length o.Objfile.symbols in
  let g = Graphlib.Digraph.create n in
  let add ~site ~target =
    match (Objfile.symbol_index o site, Objfile.func_id_of_addr o target) with
    | Some src, Some dst ->
      if not (Graphlib.Digraph.mem_arc g ~src ~dst) then
        Graphlib.Digraph.add_arc g ~src ~dst ~count:0
    | _ -> ()
  in
  Array.iter
    (fun f ->
      Array.iter
        (fun b ->
          List.iter
            (fun pc ->
              match o.Objfile.text.(pc) with
              | Instr.Call (target, _) -> (
                (* direct calls to a function entry only; anomalous
                   targets are Scan.anomalies, not graph arcs *)
                match Objfile.func_id_of_addr o target with
                | Some _ -> add ~site:pc ~target
                | None -> ())
              | _ -> ())
            b.bb_calls)
        f.fn_blocks)
    t.cfg_funcs;
  List.iter
    (fun (site, targets) -> List.iter (fun tgt -> add ~site ~target:tgt) targets)
    indirect;
  g

let function_listing t f =
  ignore t;
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%s: %d block(s)\n" f.fn_symbol.Objfile.name
       (Array.length f.fn_blocks));
  Array.iter
    (fun b ->
      Buffer.add_string buf
        (Printf.sprintf "  [%d..%d)" b.bb_start (b.bb_start + b.bb_len));
      (match b.bb_succs with
      | [] -> Buffer.add_string buf "  -> exit"
      | ss ->
        Buffer.add_string buf "  ->";
        List.iter (fun s -> Buffer.add_string buf (Printf.sprintf " %d" s)) ss);
      (match b.bb_calls with
      | [] -> ()
      | cs ->
        Buffer.add_string buf "  calls:";
        List.iter (fun c -> Buffer.add_string buf (Printf.sprintf " %d" c)) cs);
      Buffer.add_char buf '\n')
    f.fn_blocks;
  Buffer.contents buf
