module Objfile = Objcode.Objfile

type t = {
  r_reachable : bool array;
  r_unreachable : string list;
  r_dead_profiled : string list;
  r_dead_blocks : (string * int * int) list;
  r_graph : Graphlib.Digraph.t;
}

let dead_blocks_of_func (f : Cfg.func) =
  let n = Array.length f.Cfg.fn_blocks in
  if n = 0 then []
  else begin
    let index_of_start =
      let tbl = Hashtbl.create n in
      Array.iteri (fun i b -> Hashtbl.replace tbl b.Cfg.bb_start i) f.fn_blocks;
      fun start -> Hashtbl.find_opt tbl start
    in
    let seen = Array.make n false in
    let rec visit i =
      if not seen.(i) then begin
        seen.(i) <- true;
        List.iter
          (fun s -> Option.iter visit (index_of_start s))
          f.fn_blocks.(i).Cfg.bb_succs
      end
    in
    visit 0;
    let acc = ref [] in
    Array.iteri
      (fun i b ->
        if not seen.(i) then
          acc :=
            (f.fn_symbol.Objfile.name, b.Cfg.bb_start, b.Cfg.bb_len) :: !acc)
      f.fn_blocks;
    List.rev !acc
  end

let analyze ?indirect (cfg : Cfg.t) =
  Obs.Trace.with_span ~cat:"analysis" "reach" @@ fun () ->
  let o = cfg.Cfg.cfg_obj in
  let ind =
    match indirect with Some i -> i | None -> Indirect.analyze o
  in
  let resolved =
    List.map (fun (site, _) -> (site, Indirect.targets ind ~site)) ind.i_sites
  in
  let g = Cfg.call_graph ~indirect:resolved cfg in
  let roots =
    match Objfile.func_id_of_addr o o.Objfile.entry with
    | Some id -> [ id ]
    | None -> []
  in
  let reachable = Graphlib.Reach.forward g roots in
  let unreachable = ref [] and dead_profiled = ref [] in
  Array.iteri
    (fun id (s : Objfile.symbol) ->
      if not reachable.(id) then begin
        unreachable := s.name :: !unreachable;
        if s.profiled then dead_profiled := s.name :: !dead_profiled
      end)
    o.Objfile.symbols;
  let dead_blocks =
    List.concat_map dead_blocks_of_func (Array.to_list cfg.Cfg.cfg_funcs)
  in
  let reg = Obs.Metrics.default in
  Obs.Metrics.incr
    ~by:(List.length !unreachable)
    (Obs.Metrics.counter reg "analysis.reach.unreachable_funcs");
  Obs.Metrics.incr
    ~by:(List.length dead_blocks)
    (Obs.Metrics.counter reg "analysis.reach.dead_blocks");
  {
    r_reachable = reachable;
    r_unreachable = List.rev !unreachable;
    r_dead_profiled = List.rev !dead_profiled;
    r_dead_blocks = dead_blocks;
    r_graph = g;
  }

type contradiction = { c_func : string; c_ticks : int; c_calls : int }

let crosscheck t (o : Objfile.t) (g : Gmon.t) =
  (* A profile explains its own activity through spontaneous roots and
     recorded arcs, so the contradiction is activity NEITHER view can
     explain: a function with ticks or incoming calls that is
     unreachable from entry ∪ spontaneous-arc targets over
     static ∪ dynamic arcs. *)
  let len = Array.length o.Objfile.text in
  let union = Graphlib.Digraph.copy t.r_graph in
  let roots = ref [] in
  (match Objfile.func_id_of_addr o o.Objfile.entry with
  | Some id -> roots := [ id ]
  | None -> ());
  List.iter
    (fun (a : Gmon.arc) ->
      match Objfile.func_id_of_addr o a.a_self with
      | None -> ()
      | Some dst ->
        if a.a_from < 0 || a.a_from >= len then roots := dst :: !roots
        else (
          match Objfile.symbol_index o a.a_from with
          | Some src -> Graphlib.Digraph.add_arc union ~src ~dst ~count:0
          | None -> ()))
    g.Gmon.arcs;
  let explained = Graphlib.Reach.forward union !roots in
  let ticks_in (s : Objfile.symbol) =
    (* sum the buckets whose address range intersects the function *)
    let total = ref 0 in
    Array.iteri
      (fun i count ->
        if count > 0 then begin
          let lo, hi = Gmon.bucket_range g.Gmon.hist i in
          if lo < s.addr + s.size && hi > s.addr then total := !total + count
        end)
      g.Gmon.hist.h_counts;
    !total
  in
  let acc = ref [] in
  Array.iteri
    (fun id (s : Objfile.symbol) ->
      if id < Array.length explained && not explained.(id) then begin
        let ticks = ticks_in s in
        let calls = Gmon.arc_count_into g s.addr in
        if ticks > 0 || calls > 0 then
          acc := { c_func = s.name; c_ticks = ticks; c_calls = calls } :: !acc
      end)
    o.Objfile.symbols;
  List.rev !acc
