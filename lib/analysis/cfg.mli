(** Control-flow graphs decoded from the text segment.

    The paper's static crawl (§2) walks the executable "looking for
    calls to routines"; this pass decodes the whole control structure:
    per-function basic blocks with intra-procedural edges, plus an
    interprocedural call-graph view that subsumes
    {!Objcode.Scan.function_graph}. The block structure is what the
    reachability pass ({!Reach}) and the profile linter ({!Proflint})
    stand on. *)

type block = {
  bb_start : int;  (** address of the first instruction *)
  bb_len : int;  (** number of instructions, >= 1 *)
  bb_succs : int list;
      (** successor block start addresses within the same function,
          ascending; falls through, jump targets, both arms of a
          conditional. Return/halt blocks have none. *)
  bb_calls : int list;
      (** addresses of [Call]/[Calli] instructions inside the block,
          ascending *)
}

type func = {
  fn_symbol : Objcode.Objfile.symbol;
  fn_blocks : block array;
      (** ascending by [bb_start]; the first block starts at the
          function entry *)
}

type t = {
  cfg_obj : Objcode.Objfile.t;
  cfg_funcs : func array;  (** same order as [cfg_obj.symbols] *)
}

val build : Objcode.Objfile.t -> t
(** Decode every function. Leaders are the function entry, every
    in-function jump target, and every instruction following a jump,
    conditional jump, return, or halt. Jumps whose target lies outside
    the function (invalid images) contribute no edge. Publishes
    [analysis.cfg.*] counters to {!Obs.Metrics.default}. *)

val func_by_name : t -> string -> func option

val block_of_addr : func -> int -> block option
(** The block whose address range contains the given address. *)

val block_index : func -> int -> int option
(** Like {!block_of_addr} but returning the index into [fn_blocks] —
    the block numbering {!Dataflow.graph_of_func}, {!Dom}, and
    {!Facts} all share. Binary search. *)

val func_of_addr : t -> int -> (int * func) option
(** The function (id and body) whose symbol covers the address. *)

val n_blocks : t -> int
(** Total basic blocks over all functions. *)

val n_edges : t -> int
(** Total intra-procedural edges over all functions. *)

val call_graph : ?indirect:(int * int list) list -> t -> Graphlib.Digraph.t
(** The interprocedural view: node [i] is [cfg_obj.symbols.(i)], one
    weight-0 arc per distinct (caller, callee) pair found at the
    decoded call sites. With only direct calls this equals
    {!Objcode.Scan.function_graph}; [indirect] adds
    (site address, target entry addresses) resolutions — the output of
    {!Indirect} — on top. Sites or targets that resolve to no function
    entry are skipped. *)

val function_listing : t -> func -> string
(** Debug rendering: one line per block with its successors and call
    sites. *)
