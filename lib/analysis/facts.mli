(** The three stock instantiations of {!Dataflow} over Mini bytecode:
    reaching definitions, liveness, and conditional constant
    propagation — the per-block facts {!Proflint}'s dataflow rules and
    {!Cost} consume.

    All three work on local slots: parameters occupy slots
    [0..arity-1] (filled from the operand stack at call time), the
    remaining slots are zero-initialized by [Enter]. Arity is not
    recorded in the object file, so {!arities} reconstructs it from
    call sites; analyses needing it degrade gracefully when it cannot
    be inferred.

    The operand stack is abstracted {e within} a block only: Mini's
    codegen can carry a value across a label (short-circuit [&&]/[||]),
    so at block entry the stack is unknown and popping past the known
    prefix yields "unknown" — imprecise, never unsound. *)

val arities : ?indirect:Indirect.t -> Cfg.t -> int option array
(** Per function id: the argument count, when every call site that can
    reach the function (direct calls and resolved indirect sites)
    agrees on it; the entry function takes no arguments by the Mini
    contract. [None] = uncalled or inconsistent. *)

(** {1 Reaching definitions} *)

type rd = {
  rd_defs : (int * int) array;
      (** the definition sites, [(pc, slot)]; one pseudo-definition
          [(-1, slot)] per slot models the value the frame was created
          with (a parameter or [Enter]'s zero) *)
  rd_in : Dataflow.Bits.t array;  (** per block, indexed into [rd_defs] *)
  rd_out : Dataflow.Bits.t array;
  rd_stats : Dataflow.stats;
}

val reaching : ?nslots:int -> Objcode.Objfile.t -> Cfg.func -> rd
(** Forward may-analysis: which definitions of each slot can reach
    each block. The objfile supplies the instruction text the
    function's blocks index into. *)

(** {1 Liveness} *)

type live = {
  lv_nslots : int;
  lv_in : Dataflow.Bits.t array;  (** slots live at block entry *)
  lv_out : Dataflow.Bits.t array;  (** slots live at block exit *)
  lv_dead_stores : (int * int) list;
      (** [(pc, slot)] of stores no path ever reads, ascending by pc;
          empty when the fixpoint did not converge (never report on a
          degraded result) *)
  lv_stats : Dataflow.stats;
}

val liveness : ?nslots:int -> Objcode.Objfile.t -> Cfg.func -> live
(** Backward may-analysis over slots. [nslots] widens the slot universe
    (pass the arity so an unread parameter has a bit to be dead in). *)

val dead_params : live -> arity:int -> int list
(** Parameter slots not live at function entry: their caller-supplied
    value is never read on any path. Ascending. *)

(** {1 Conditional constant propagation} *)

type cvalue = Cunknown | Cconst of int

type cp = {
  cp_executable : bool array;
      (** per block: reachable along executable edges from the entry,
          with constant branches taking only their decided side *)
  cp_dead_blocks : int list;
      (** blocks the plain CFG reaches but constant propagation
          proves dead — strictly beyond {!Reach}'s verdict *)
  cp_const_branches : (int * int) list;
      (** [(pc, cond)] for each executable [Jumpz] with two distinct
          successors whose condition converged to the constant [cond]
          — the branch folds *)
  cp_stats : Dataflow.stats;
}

val constprop : ?arity:int -> Objcode.Objfile.t -> Cfg.func -> cp
(** SCCP-style block-granularity conditional constant propagation:
    slot-wise constant lattice with executable-edge tracking. With a
    known [arity], slots beyond it start as [Enter]'s zero; parameters
    (and everything, when arity is unknown) start unknown. On a
    non-converged fixpoint everything degrades to executable /
    non-constant. *)
