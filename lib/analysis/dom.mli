(** Dominator trees, dominance frontiers, and natural loops.

    Immediate dominators via the Cooper–Harvey–Kennedy iterative
    algorithm ("A Simple, Fast Dominance Algorithm"): reverse-postorder
    sweeps with the two-finger intersection, no Lengauer–Tarjan link-eval
    machinery — at Mini function sizes the simple algorithm is also the
    fast one. On top: dominance frontiers (per CHK), back edges
    ([src -> header] where the header dominates the source), the natural
    loop of each header, nesting depth per block, and an irreducibility
    verdict (a DFS retreating edge whose target does {e not} dominate its
    source — a loop with more than one entry, which natural-loop analysis
    cannot represent).

    {!compute} publishes [analysis.dom.*] counters (functions, loops,
    irreducible) to {!Obs.Metrics.default}. *)

type loop = {
  l_header : int;  (** block index of the single entry *)
  l_body : int list;  (** blocks of the loop, ascending, includes header *)
  l_back_edges : int list;  (** sources of the back edges into the header *)
  l_depth : int;  (** 1 = outermost *)
  l_parent : int option;  (** index in [d_loops] of the enclosing loop *)
}

type t = {
  d_graph : Dataflow.graph;
  d_idom : int array;
      (** immediate dominator per block; the entry maps to itself,
          unreachable blocks to [-1] *)
  d_frontier : int list array;  (** dominance frontier per block, ascending *)
  d_rpo : int array;  (** reachable blocks in reverse postorder *)
  d_loops : loop array;
      (** one natural loop per header (multiple back edges into one
          header merge), ordered by header index *)
  d_depth : int array;
      (** loop-nesting depth per block; 0 = not inside any loop *)
  d_irreducible : bool;
      (** some retreating edge is not a back edge: the loop structure
          has a multi-entry region and [d_loops] under-approximates *)
}

val of_graph : Dataflow.graph -> t

val compute : Cfg.func -> t
(** [of_graph] over {!Dataflow.graph_of_func}, with metrics.
    @raise Invalid_argument on a function with no blocks. *)

val dominates : t -> int -> int -> bool
(** [dominates t a b]: every path from the entry to [b] passes through
    [a]. Reflexive; [false] when [b] is unreachable. *)
