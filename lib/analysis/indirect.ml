module Objfile = Objcode.Objfile
module Instr = Objcode.Instr

type resolution = Resolved of int list | Unresolved

type t = {
  i_sites : (int * resolution) list;
  i_address_taken : int list;
  i_arcs : (string * string) list;
}

(* The abstract value: which function entries can this word hold?
   [Top] means "unknown origin" and over-approximates to the whole
   address-taken set; [Set []] means "certainly not a function value
   (under the Funref-origin assumption)". *)
type value = Top | Set of int list (* sorted, unique *)

let join a b =
  match (a, b) with
  | Top, _ | _, Top -> Top
  | Set xs, Set ys -> Set (List.sort_uniq compare (xs @ ys))

let value_equal a b =
  match (a, b) with
  | Top, Top -> true
  | Set xs, Set ys -> xs = ys
  | _ -> false

let bottom = Set []

type env = {
  o : Objfile.t;
  locals : (int * int, value) Hashtbl.t;  (** (function id, slot) *)
  globals : value array;
  arrays : value array;
  rets : value array;  (** per function id *)
  address_taken : int list;
  mutable changed : bool;
}

let get tbl key = Option.value ~default:bottom (Hashtbl.find_opt tbl key)

let join_tbl env key v =
  let old = get env.locals key in
  let nv = join old v in
  if not (value_equal old nv) then begin
    Hashtbl.replace env.locals key nv;
    env.changed <- true
  end

let join_slot env arr i v =
  if i >= 0 && i < Array.length arr then begin
    let nv = join arr.(i) v in
    if not (value_equal arr.(i) nv) then begin
      arr.(i) <- nv;
      env.changed <- true
    end
  end

(* Entry addresses a value can call, with the Top fallback expanded. *)
let callable env = function
  | Top -> env.address_taken
  | Set xs -> List.filter (fun a -> Objfile.func_id_of_addr env.o a <> None) xs

(* One abstract pass over a function body. The operand stack is a
   known top prefix: popping past it yields Top (the value may have
   any origin). At every intra-function jump target the prefix is
   abandoned — join points merge paths we do not track separately.
   [on_calli] observes each Calli site with the abstract callee. *)
let simulate ?on_calli env (s : Objfile.symbol) fid jump_target =
  let stack = ref [] in
  let pop () =
    match !stack with
    | v :: rest ->
      stack := rest;
      v
    | [] -> Top
  in
  let push v = stack := v :: !stack in
  let pass_args ~target ~nargs args =
    (* args come off the stack last-first: args[i] is slot nargs-1-i *)
    match Objfile.func_id_of_addr env.o target with
    | None -> bottom
    | Some cid ->
      List.iteri (fun i v -> join_tbl env (cid, nargs - 1 - i) v) args;
      env.rets.(cid)
  in
  for pc = s.addr to s.addr + s.size - 1 do
    if jump_target (pc - s.addr) then stack := [];
    match env.o.Objfile.text.(pc) with
    | Instr.Nop | Instr.Enter _ | Instr.Mcount | Instr.Pcount _ -> ()
    | Instr.Const _ -> push bottom
    | Instr.Load n -> push (get env.locals (fid, n))
    | Instr.Store n -> join_tbl env (fid, n) (pop ())
    | Instr.Gload g ->
      push (if g >= 0 && g < Array.length env.globals then env.globals.(g) else bottom)
    | Instr.Gstore g -> join_slot env env.globals g (pop ())
    | Instr.Aload a ->
      ignore (pop ());
      push (if a >= 0 && a < Array.length env.arrays then env.arrays.(a) else bottom)
    | Instr.Astore a ->
      let v = pop () in
      ignore (pop ());
      join_slot env env.arrays a v
    | Instr.Alu _ ->
      ignore (pop ());
      ignore (pop ());
      push bottom
    | Instr.Unop _ ->
      ignore (pop ());
      push bottom
    | Instr.Jump _ -> stack := []
    | Instr.Jumpz _ -> ignore (pop ())
    | Instr.Call (target, nargs) ->
      let args = List.init nargs (fun _ -> pop ()) in
      push (pass_args ~target ~nargs args)
    | Instr.Calli nargs ->
      let callee = pop () in
      (match on_calli with Some f -> f pc callee | None -> ());
      let args = List.init nargs (fun _ -> pop ()) in
      let rets =
        List.fold_left
          (fun acc target -> join acc (pass_args ~target ~nargs args))
          bottom (callable env callee)
      in
      push rets
    | Instr.Funref target -> push (Set [ target ])
    | Instr.Ret ->
      join_slot env env.rets fid (pop ());
      stack := []
    | Instr.Pop -> ignore (pop ())
    | Instr.Syscall (Instr.Sys_print | Instr.Sys_putc) ->
      let v = pop () in
      push v
    | Instr.Syscall Instr.Sys_rand ->
      ignore (pop ());
      push bottom
    | Instr.Syscall Instr.Sys_cycles -> push bottom
    | Instr.Halt -> stack := []
  done

let jump_targets (o : Objfile.t) (s : Objfile.symbol) =
  let marks = Array.make (max s.size 1) false in
  for pc = s.addr to s.addr + s.size - 1 do
    match o.text.(pc) with
    | Instr.Jump t | Instr.Jumpz t ->
      if t >= s.addr && t < s.addr + s.size then marks.(t - s.addr) <- true
    | _ -> ()
  done;
  fun off -> off >= 0 && off < Array.length marks && marks.(off)

let analyze (o : Objfile.t) =
  Obs.Trace.with_span ~cat:"analysis" "indirect-resolve" @@ fun () ->
  let address_taken =
    let acc = ref [] in
    Array.iter
      (fun ins ->
        match (ins : Instr.t) with
        | Instr.Funref target when Objfile.func_id_of_addr o target <> None ->
          acc := target :: !acc
        | _ -> ())
      o.Objfile.text;
    List.sort_uniq compare !acc
  in
  let env =
    {
      o;
      locals = Hashtbl.create 64;
      globals = Array.make (Array.length o.Objfile.globals) bottom;
      arrays = Array.make (Array.length o.Objfile.arrays) bottom;
      rets = Array.make (Array.length o.Objfile.symbols) bottom;
      address_taken;
      changed = true;
    }
  in
  let per_func =
    Array.mapi (fun fid s -> (fid, s, jump_targets o s)) o.Objfile.symbols
  in
  let rounds = ref 0 in
  while env.changed && !rounds < 1000 do
    env.changed <- false;
    incr rounds;
    Array.iter (fun (fid, s, jt) -> simulate env s fid jt) per_func
  done;
  (* One more pass over the converged environment to read each site. *)
  let acc = ref [] in
  let on_calli pc callee =
    let r =
      match callee with
      | Top -> Unresolved
      | Set xs ->
        Resolved (List.filter (fun a -> Objfile.func_id_of_addr o a <> None) xs)
    in
    acc := (pc, r) :: !acc
  in
  Array.iter (fun (fid, s, jt) -> simulate ~on_calli env s fid jt) per_func;
  let sites = List.sort (fun (a, _) (b, _) -> compare a b) !acc in
  let arcs =
    let seen = Hashtbl.create 32 in
    List.concat_map
      (fun (site, r) ->
        match Objfile.find_symbol o site with
        | None -> []
        | Some caller ->
          let targets =
            match r with Resolved ts -> ts | Unresolved -> address_taken
          in
          List.filter_map
            (fun tgt ->
              match Objfile.find_symbol o tgt with
              | Some callee when callee.addr = tgt ->
                let key = (caller.Objfile.name, callee.Objfile.name) in
                if Hashtbl.mem seen key then None
                else begin
                  Hashtbl.replace seen key ();
                  Some key
                end
              | _ -> None)
            targets)
      sites
  in
  let reg = Obs.Metrics.default in
  let n_unresolved =
    List.length (List.filter (fun (_, r) -> r = Unresolved) sites)
  in
  Obs.Metrics.incr ~by:(List.length sites)
    (Obs.Metrics.counter reg "analysis.indirect.sites");
  Obs.Metrics.incr ~by:(List.length sites - n_unresolved)
    (Obs.Metrics.counter reg "analysis.indirect.resolved");
  Obs.Metrics.incr ~by:n_unresolved
    (Obs.Metrics.counter reg "analysis.indirect.unresolved");
  Obs.Metrics.incr ~by:(List.length arcs)
    (Obs.Metrics.counter reg "analysis.indirect.arcs");
  { i_sites = sites; i_address_taken = address_taken; i_arcs = arcs }

let resolution t ~site = List.assoc_opt site t.i_sites

let targets t ~site =
  match resolution t ~site with
  | Some (Resolved ts) -> ts
  | Some Unresolved -> t.i_address_taken
  | None -> []

let static_arcs o = (analyze o).i_arcs
