module Objfile = Objcode.Objfile
module Instr = Objcode.Instr

type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "note"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

type finding = {
  f_rule : string;
  f_severity : severity;
  f_addr : int option;
  f_msg : string;
}

type t = {
  l_findings : finding list;
  l_arcs_checked : int;
  l_buckets_checked : int;
}

let rules =
  [
    ("binary-invalid", Error, "the executable fails structural validation");
    ("hist-geometry", Error, "histogram bounds or a bucket outside the text segment");
    ("hist-gap-ticks", Warning, "a nonzero bucket covered by no routine");
    ("arc-from-non-call", Error, "an arc's call site holds no call instruction");
    ("arc-into-non-entry", Error, "an arc's callee is not a function entry");
    ("arc-into-unprofiled", Warning, "an arc lands on an uninstrumented routine");
    ("arc-infeasible", Error, "a dynamic arc the static call graph cannot admit");
    ("arc-spontaneous", Info, "an arc from outside the text segment (a root)");
    ("call-anomaly", Warning, "the binary has calls or funrefs to no function entry");
    ("dead-code-ticks", Warning, "a statically-unreachable function observed executing");
    ("profiled-unreachable", Info, "an instrumented function the entry cannot reach");
    ("dead-blocks", Info, "intra-procedurally unreachable basic blocks");
  ]

let severity_of_rule rule =
  match List.find_opt (fun (r, _, _) -> r = rule) rules with
  | Some (_, s, _) -> s
  | None -> invalid_arg ("Proflint: unknown rule " ^ rule)

let finding ?addr rule fmt =
  Format.kasprintf
    (fun msg ->
      { f_rule = rule; f_severity = severity_of_rule rule; f_addr = addr;
        f_msg = msg })
    fmt

let sort_findings fs =
  List.stable_sort
    (fun a b ->
      match compare (severity_rank a.f_severity) (severity_rank b.f_severity) with
      | 0 -> (
        match compare a.f_rule b.f_rule with
        | 0 -> compare a.f_addr b.f_addr
        | c -> c)
      | c -> c)
    fs

let publish fs =
  let reg = Obs.Metrics.default in
  let count sev =
    List.length (List.filter (fun f -> f.f_severity = sev) fs)
  in
  Obs.Metrics.incr ~by:(List.length fs)
    (Obs.Metrics.counter reg "analysis.lint.findings");
  Obs.Metrics.incr ~by:(count Error)
    (Obs.Metrics.counter reg "analysis.lint.errors");
  Obs.Metrics.incr ~by:(count Warning)
    (Obs.Metrics.counter reg "analysis.lint.warnings");
  Obs.Metrics.incr ~by:(count Info)
    (Obs.Metrics.counter reg "analysis.lint.infos")

(* ------------------------------------------------------------------ *)
(* Binary-only rules *)

let binary_findings ?cfg ?indirect (o : Objfile.t) =
  let cfg = match cfg with Some c -> c | None -> Cfg.build o in
  let indirect =
    match indirect with Some i -> i | None -> Indirect.analyze o
  in
  let acc = ref [] in
  (match Objfile.validate o with
  | Ok () -> ()
  | Error es ->
    List.iter (fun e -> acc := finding "binary-invalid" "%s" e :: !acc) es);
  List.iter
    (fun a ->
      acc :=
        finding ~addr:a.Objcode.Scan.an_addr "call-anomaly" "%s"
          (Objcode.Scan.anomaly_to_string a)
        :: !acc)
    (Objcode.Scan.anomalies o);
  let reach = Reach.analyze ~indirect cfg in
  List.iter
    (fun name ->
      acc :=
        finding "profiled-unreachable"
          "%s is instrumented but unreachable from the entry point" name
        :: !acc)
    reach.Reach.r_dead_profiled;
  List.iter
    (fun (fn, start, len) ->
      acc :=
        finding ~addr:start "dead-blocks"
          "%s: block [%d..%d) is unreachable within the function" fn start
          (start + len)
        :: !acc)
    reach.Reach.r_dead_blocks;
  (reach, List.rev !acc)

let lint_binary ?cfg ?indirect o =
  Obs.Trace.with_span ~cat:"analysis" "lint-binary" @@ fun () ->
  let _, fs = binary_findings ?cfg ?indirect o in
  let fs = sort_findings fs in
  publish fs;
  { l_findings = fs; l_arcs_checked = 0; l_buckets_checked = 0 }

(* ------------------------------------------------------------------ *)
(* Profile rules *)

let hist_findings (o : Objfile.t) (g : Gmon.t) =
  let len = Array.length o.Objfile.text in
  let h = g.Gmon.hist in
  let acc = ref [] in
  if h.h_lowpc < 0 || h.h_highpc > len then
    acc :=
      finding "hist-geometry"
        "histogram covers pc [%d,%d) but the text segment is [0,%d)" h.h_lowpc
        h.h_highpc len
      :: !acc;
  let covered_by_symbol lo hi =
    Array.exists
      (fun (s : Objfile.symbol) -> lo < s.addr + s.size && hi > s.addr)
      o.Objfile.symbols
  in
  Array.iteri
    (fun i count ->
      if count > 0 then begin
        let lo, hi = Gmon.bucket_range h i in
        if lo < 0 || hi > len then
          acc :=
            finding ~addr:lo "hist-geometry"
              "bucket %d ([%d,%d), %d tick%s) falls outside the text segment \
               [0,%d)"
              i lo hi count
              (if count = 1 then "" else "s")
              len
            :: !acc
        else if not (covered_by_symbol lo hi) then
          acc :=
            finding ~addr:lo "hist-gap-ticks"
              "bucket %d ([%d,%d)) has %d tick%s but no routine covers it" i lo
              hi count
              (if count = 1 then "" else "s")
            :: !acc
      end)
    h.h_counts;
  List.rev !acc

let arc_findings (o : Objfile.t) (indirect : Indirect.t) (g : Gmon.t) =
  let len = Array.length o.Objfile.text in
  let acc = ref [] in
  let emit f = acc := f :: !acc in
  List.iter
    (fun (a : Gmon.arc) ->
      let callee_entry = Objfile.func_id_of_addr o a.a_self <> None in
      (* the callee end *)
      (if not callee_entry then
         emit
           (finding ~addr:a.a_self "arc-into-non-entry"
              "arc (%d -> %d, count %d) lands %s" a.a_from a.a_self a.a_count
              (match Objfile.find_symbol o a.a_self with
              | Some s -> Printf.sprintf "mid-%s, not at a function entry" s.name
              | None -> "outside the symbol table"))
       else
         match Objfile.find_symbol o a.a_self with
         | Some s when not s.profiled ->
           emit
             (finding ~addr:a.a_self "arc-into-unprofiled"
                "arc (%d -> %s, count %d) lands on an uninstrumented routine: \
                 the monitor cannot have recorded it"
                a.a_from s.name a.a_count)
         | _ -> ());
      (* the call-site end *)
      if a.a_from < 0 || a.a_from >= len then
        emit
          (finding "arc-spontaneous"
             "arc from pseudo-site %d into %s: a spontaneous root" a.a_from
             (match Objfile.find_symbol o a.a_self with
             | Some s -> s.name
             | None -> string_of_int a.a_self))
      else
        match o.Objfile.text.(a.a_from) with
        | Instr.Call (target, _) ->
          if callee_entry && target <> a.a_self then
            emit
              (finding ~addr:a.a_from "arc-infeasible"
                 "site %d holds a call to %s but the arc (count %d) claims %s"
                 a.a_from
                 (match Objfile.find_symbol o target with
                 | Some s when s.addr = target -> s.name
                 | _ -> string_of_int target)
                 a.a_count
                 (match Objfile.find_symbol o a.a_self with
                 | Some s -> s.name
                 | None -> string_of_int a.a_self))
        | Instr.Calli _ -> (
          match Indirect.resolution indirect ~site:a.a_from with
          | Some (Resolved ts) when callee_entry && not (List.mem a.a_self ts) ->
            emit
              (finding ~addr:a.a_from "arc-infeasible"
                 "indirect site %d can reach {%s} but the arc (count %d) \
                  claims %s"
                 a.a_from
                 (String.concat ", "
                    (List.map
                       (fun t ->
                         match Objfile.find_symbol o t with
                         | Some s -> s.name
                         | None -> string_of_int t)
                       ts))
                 a.a_count
                 (match Objfile.find_symbol o a.a_self with
                 | Some s -> s.name
                 | None -> string_of_int a.a_self))
          | _ -> () (* Unresolved: anything is feasible; sound, silent *))
        | ins ->
          emit
            (finding ~addr:a.a_from "arc-from-non-call"
               "arc (%d -> %d, count %d): site holds %s, not a call" a.a_from
               a.a_self a.a_count (Instr.to_string ins)))
    g.Gmon.arcs;
  List.rev !acc

let lint ?cfg ?indirect (o : Objfile.t) (g : Gmon.t) =
  Obs.Trace.with_span ~cat:"analysis" "lint" @@ fun () ->
  let cfg = match cfg with Some c -> c | None -> Cfg.build o in
  let indirect =
    match indirect with Some i -> i | None -> Indirect.analyze o
  in
  let reach, binary = binary_findings ~cfg ~indirect o in
  let hist = hist_findings o g in
  let arcs = arc_findings o indirect g in
  let contradictions =
    List.map
      (fun (c : Reach.contradiction) ->
        finding "dead-code-ticks"
          "%s is unreachable in the static graph yet shows %d tick%s and %d \
           incoming call%s"
          c.c_func c.c_ticks
          (if c.c_ticks = 1 then "" else "s")
          c.c_calls
          (if c.c_calls = 1 then "" else "s"))
      (Reach.crosscheck reach o g)
  in
  let fs = sort_findings (binary @ hist @ arcs @ contradictions) in
  publish fs;
  {
    l_findings = fs;
    l_arcs_checked = List.length g.Gmon.arcs;
    l_buckets_checked = Array.length g.Gmon.hist.h_counts;
  }

(* ------------------------------------------------------------------ *)
(* Verdicts and rendering *)

let worst t =
  List.fold_left
    (fun acc f ->
      match acc with
      | None -> Some f.f_severity
      | Some s ->
        Some (if severity_rank f.f_severity < severity_rank s then f.f_severity else s))
    None t.l_findings

let failed ~strict t =
  match worst t with
  | Some Error -> true
  | Some Warning -> strict
  | Some Info | None -> false

let exit_code ~strict t = if failed ~strict t then 2 else 0

let render t =
  let buf = Buffer.create 512 in
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "%s [%s] %s%s\n"
           (severity_to_string f.f_severity)
           f.f_rule f.f_msg
           (match f.f_addr with
           | Some a -> Printf.sprintf " (addr %d)" a
           | None -> "")))
    t.l_findings;
  let count sev =
    List.length (List.filter (fun f -> f.f_severity = sev) t.l_findings)
  in
  Buffer.add_string buf
    (Printf.sprintf
       "proflint: %d error(s), %d warning(s), %d note(s); %d arc(s) and %d \
        bucket(s) checked\n"
       (count Error) (count Warning) (count Info) t.l_arcs_checked
       t.l_buckets_checked);
  Buffer.contents buf
