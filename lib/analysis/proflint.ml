module Objfile = Objcode.Objfile
module Instr = Objcode.Instr

type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "note"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

type finding = {
  f_rule : string;
  f_severity : severity;
  f_addr : int option;
  f_func : string option;
  f_msg : string;
}

type t = {
  l_findings : finding list;
  l_arcs_checked : int;
  l_buckets_checked : int;
}

let rules =
  [
    ("binary-invalid", Error, "the executable fails structural validation");
    ("hist-geometry", Error, "histogram bounds or a bucket outside the text segment");
    ("hist-gap-ticks", Warning, "a nonzero bucket covered by no routine");
    ("arc-from-non-call", Error, "an arc's call site holds no call instruction");
    ("arc-into-non-entry", Error, "an arc's callee is not a function entry");
    ("arc-into-unprofiled", Warning, "an arc lands on an uninstrumented routine");
    ("arc-infeasible", Error, "a dynamic arc the static call graph cannot admit");
    ("arc-spontaneous", Info, "an arc from outside the text segment (a root)");
    ("call-anomaly", Warning, "the binary has calls or funrefs to no function entry");
    ("dead-code-ticks", Warning, "a statically-unreachable function observed executing");
    ("profiled-unreachable", Info, "an instrumented function the entry cannot reach");
    ("dead-blocks", Info, "intra-procedurally unreachable basic blocks");
    ("dead-store", Warning, "a store to a local that no path ever reads");
    ("dead-param", Warning, "a parameter whose value no path ever reads");
    ("const-branch", Warning, "a branch whose condition is a compile-time constant");
    ("const-dead-block", Info, "a block only constant propagation proves unreachable");
    ("irreducible-loop", Warning, "a multi-entry loop defeats natural-loop analysis");
    ("loop-call-unobserved", Warning,
     "a call inside a loop with no dynamic arc though its block was sampled");
    ("loop-no-ticks", Warning, "a loop never observed ticking inside a hot function");
    ("dead-block-ticks", Error,
     "ticks inside a statically-dead block: the profile cannot match the binary");
    ("pgo-symbol-missing", Error,
     "a baseline routine is absent from the optimized binary");
    ("pgo-entry-mismatch", Error,
     "the optimized binary starts in a different routine than the baseline");
    ("pgo-profiled-dropped", Warning,
     "a routine lost its monitoring prologue across the rebuild");
    ("pgo-inlined-away", Info,
     "a routine's direct calls were all inlined; its time now folds into callers");
  ]

let severity_of_rule rule =
  match List.find_opt (fun (r, _, _) -> r = rule) rules with
  | Some (_, s, _) -> s
  | None -> invalid_arg ("Proflint: unknown rule " ^ rule)

let finding ?addr ?func rule fmt =
  Format.kasprintf
    (fun msg ->
      { f_rule = rule; f_severity = severity_of_rule rule; f_addr = addr;
        f_func = func; f_msg = msg })
    fmt

let sort_findings fs =
  List.stable_sort
    (fun a b ->
      match compare (severity_rank a.f_severity) (severity_rank b.f_severity) with
      | 0 -> (
        match compare a.f_rule b.f_rule with
        | 0 -> (
          match compare a.f_func b.f_func with
          | 0 -> compare a.f_addr b.f_addr
          | c -> c)
        | c -> c)
      | c -> c)
    fs

let publish fs =
  let reg = Obs.Metrics.default in
  let count sev =
    List.length (List.filter (fun f -> f.f_severity = sev) fs)
  in
  Obs.Metrics.incr ~by:(List.length fs)
    (Obs.Metrics.counter reg "analysis.lint.findings");
  Obs.Metrics.incr ~by:(count Error)
    (Obs.Metrics.counter reg "analysis.lint.errors");
  Obs.Metrics.incr ~by:(count Warning)
    (Obs.Metrics.counter reg "analysis.lint.warnings");
  Obs.Metrics.incr ~by:(count Info)
    (Obs.Metrics.counter reg "analysis.lint.infos");
  List.iter
    (fun f ->
      Obs.Metrics.incr
        (Obs.Metrics.counter reg ("analysis.lint.fired." ^ f.f_rule)))
    fs

(* ------------------------------------------------------------------ *)
(* Amortized static analyses: one bundle shared by every profile
   linted against the same executable *)

type statics = {
  s_cfg : Cfg.t;
  s_indirect : Indirect.t;
  s_arities : int option array;
  s_doms : Dom.t option array;
  s_live : Facts.live option array;
  s_cp : Facts.cp option array;
}

let prepare ?cfg ?indirect (o : Objfile.t) =
  Obs.Trace.with_span ~cat:"analysis" "lint-prepare" @@ fun () ->
  let cfg = match cfg with Some c -> c | None -> Cfg.build o in
  let indirect =
    match indirect with Some i -> i | None -> Indirect.analyze o
  in
  let arities = Facts.arities ~indirect cfg in
  let n = Array.length cfg.Cfg.cfg_funcs in
  let doms = Array.make n None in
  let live = Array.make n None in
  let cp = Array.make n None in
  Array.iteri
    (fun i (f : Cfg.func) ->
      if Array.length f.Cfg.fn_blocks > 0 then begin
        doms.(i) <- Some (Dom.compute f);
        let nslots = Option.value arities.(i) ~default:0 in
        live.(i) <- Some (Facts.liveness ~nslots o f);
        cp.(i) <- Some (Facts.constprop ?arity:arities.(i) o f)
      end)
    cfg.Cfg.cfg_funcs;
  {
    s_cfg = cfg;
    s_indirect = indirect;
    s_arities = arities;
    s_doms = doms;
    s_live = live;
    s_cp = cp;
  }

(* The dataflow-backed binary rules: dead stores, dead parameters,
   constant branches, constant-dead blocks, irreducible loops. All are
   restricted to blocks both the CFG and constant propagation consider
   executable — findings inside already-dead code are noise. *)

let dataflow_findings (st : statics) =
  let o = st.s_cfg.Cfg.cfg_obj in
  let acc = ref [] in
  let emit f = acc := f :: !acc in
  let at addr =
    match Objfile.line_of_addr o addr with
    | Some l -> Printf.sprintf " (line %d)" l
    | None -> ""
  in
  Array.iteri
    (fun i (f : Cfg.func) ->
      match (st.s_doms.(i), st.s_live.(i), st.s_cp.(i)) with
      | Some dom, Some live, Some cp ->
        let name = f.Cfg.fn_symbol.Objfile.name in
        let plain = Dataflow.reachable dom.Dom.d_graph in
        let alive bi = plain.(bi) && cp.Facts.cp_executable.(bi) in
        List.iter
          (fun (pc, slot) ->
            match Cfg.block_index f pc with
            | Some bi when alive bi ->
              emit
                (finding ~addr:pc ~func:name "dead-store"
                   "%s: the store to slot %d at pc %d%s is never read" name
                   slot pc (at pc))
            | _ -> ())
          live.Facts.lv_dead_stores;
        (match st.s_arities.(i) with
        | Some arity when arity > 0 ->
          List.iter
            (fun p ->
              emit
                (finding ~addr:f.Cfg.fn_symbol.Objfile.addr ~func:name
                   "dead-param"
                   "%s: parameter %d of %d is never read (every call site \
                    passes %d argument%s)"
                   name (p + 1) arity arity
                   (if arity = 1 then "" else "s")))
            (Facts.dead_params live ~arity)
        | _ -> ());
        List.iter
          (fun (pc, c) ->
            emit
              (finding ~addr:pc ~func:name "const-branch"
                 "%s: the branch at pc %d%s always %s — its condition is the \
                  constant %d"
                 name pc (at pc)
                 (if c = 0 then "jumps" else "falls through")
                 c))
          cp.Facts.cp_const_branches;
        List.iter
          (fun bi ->
            let b = f.Cfg.fn_blocks.(bi) in
            emit
              (finding ~addr:b.Cfg.bb_start ~func:name "const-dead-block"
                 "%s: block [%d..%d) is unreachable once constant conditions \
                  are decided"
                 name b.Cfg.bb_start
                 (b.Cfg.bb_start + b.Cfg.bb_len)))
          cp.Facts.cp_dead_blocks;
        if dom.Dom.d_irreducible then
          emit
            (finding ~addr:f.Cfg.fn_symbol.Objfile.addr ~func:name
               "irreducible-loop"
               "%s: control flow contains a multi-entry loop; natural-loop \
                analysis (and any loop-based optimization) is partial"
               name)
      | _ -> ())
    st.s_cfg.Cfg.cfg_funcs;
  List.rev !acc

let static_warnings o =
  List.filter
    (fun f -> f.f_severity = Warning)
    (dataflow_findings (prepare o))

(* ------------------------------------------------------------------ *)
(* Binary-only rules *)

let binary_findings ?cfg ?indirect ?statics (o : Objfile.t) =
  let statics =
    match statics with Some s -> s | None -> prepare ?cfg ?indirect o
  in
  let cfg = statics.s_cfg in
  let indirect = statics.s_indirect in
  let acc = ref [] in
  (match Objfile.validate o with
  | Ok () -> ()
  | Error es ->
    List.iter (fun e -> acc := finding "binary-invalid" "%s" e :: !acc) es);
  List.iter
    (fun a ->
      acc :=
        finding ~addr:a.Objcode.Scan.an_addr "call-anomaly" "%s"
          (Objcode.Scan.anomaly_to_string a)
        :: !acc)
    (Objcode.Scan.anomalies o);
  let reach = Reach.analyze ~indirect cfg in
  List.iter
    (fun name ->
      acc :=
        finding "profiled-unreachable"
          "%s is instrumented but unreachable from the entry point" name
        :: !acc)
    reach.Reach.r_dead_profiled;
  List.iter
    (fun (fn, start, len) ->
      acc :=
        finding ~addr:start "dead-blocks"
          "%s: block [%d..%d) is unreachable within the function" fn start
          (start + len)
        :: !acc)
    reach.Reach.r_dead_blocks;
  (reach, List.rev !acc @ dataflow_findings statics)

let lint_binary ?cfg ?indirect ?statics o =
  Obs.Trace.with_span ~cat:"analysis" "lint-binary" @@ fun () ->
  let _, fs = binary_findings ?cfg ?indirect ?statics o in
  let fs = sort_findings fs in
  publish fs;
  { l_findings = fs; l_arcs_checked = 0; l_buckets_checked = 0 }

(* ------------------------------------------------------------------ *)
(* PGO pairing rules: does an optimized rebuild still line up with the
   baseline it was derived from? Old profiles of the baseline pair
   with the baseline, fresh profiles with the rebuild; these rules
   flag what changed in between so neither gets misread. *)

let lint_pgo ~(baseline : Objfile.t) (o : Objfile.t) =
  Obs.Trace.with_span ~cat:"analysis" "lint-pgo" @@ fun () ->
  let acc = ref [] in
  let sym_of ob name =
    Array.find_opt (fun (s : Objfile.symbol) -> s.name = name) ob.Objfile.symbols
  in
  let entry_name ob =
    match Objfile.find_symbol ob ob.Objfile.entry with
    | Some s -> s.Objfile.name
    | None -> "<none>"
  in
  if entry_name baseline <> entry_name o then
    acc :=
      finding "pgo-entry-mismatch" "baseline enters %s, the rebuild enters %s"
        (entry_name baseline) (entry_name o)
      :: !acc;
  let callees ob =
    List.map snd (Objcode.Scan.static_arcs ob)
  in
  let opt_callees = callees o in
  Array.iter
    (fun (s : Objfile.symbol) ->
      match sym_of o s.Objfile.name with
      | None ->
        acc :=
          finding ~func:s.Objfile.name "pgo-symbol-missing"
            "%s exists in the baseline but not in the optimized binary"
            s.Objfile.name
          :: !acc
      | Some s' ->
        if s.Objfile.profiled && not s'.Objfile.profiled then
          acc :=
            finding ~func:s.Objfile.name "pgo-profiled-dropped"
              "%s was instrumented in the baseline but is not any more"
              s.Objfile.name
            :: !acc;
        if
          List.mem s.Objfile.name (callees baseline)
          && not (List.mem s.Objfile.name opt_callees)
        then
          acc :=
            finding ~func:s.Objfile.name "pgo-inlined-away"
              "every direct call to %s was inlined; old profiles of the \
               baseline attribute its time to the routine itself, fresh ones \
               to its callers"
              s.Objfile.name
            :: !acc)
    baseline.Objfile.symbols;
  let fs = sort_findings (List.rev !acc) in
  publish fs;
  { l_findings = fs; l_arcs_checked = 0; l_buckets_checked = 0 }

(* ------------------------------------------------------------------ *)
(* Profile rules *)

let hist_findings (o : Objfile.t) (g : Gmon.t) =
  let len = Array.length o.Objfile.text in
  let h = g.Gmon.hist in
  let acc = ref [] in
  if h.h_lowpc < 0 || h.h_highpc > len then
    acc :=
      finding "hist-geometry"
        "histogram covers pc [%d,%d) but the text segment is [0,%d)" h.h_lowpc
        h.h_highpc len
      :: !acc;
  (* symbols are address-sorted: either [lo] falls inside one (binary
     search), or one must start within (lo, hi) — checked against the
     first symbol at or after [lo]. A linear scan here multiplies by
     the bucket count and dominates the lint on dense histograms. *)
  let covered_by_symbol lo hi =
    match Objfile.symbol_index o lo with
    | Some _ -> true
    | None ->
      let syms = o.Objfile.symbols in
      let n = Array.length syms in
      let rec first l h =
        if l >= h then l
        else
          let m = (l + h) / 2 in
          if syms.(m).Objfile.addr < lo then first (m + 1) h else first l m
      in
      let i = first 0 n in
      i < n && syms.(i).Objfile.addr < hi
  in
  Array.iteri
    (fun i count ->
      if count > 0 then begin
        let lo, hi = Gmon.bucket_range h i in
        if lo < 0 || hi > len then
          acc :=
            finding ~addr:lo "hist-geometry"
              "bucket %d ([%d,%d), %d tick%s) falls outside the text segment \
               [0,%d)"
              i lo hi count
              (if count = 1 then "" else "s")
              len
            :: !acc
        else if not (covered_by_symbol lo hi) then
          acc :=
            finding ~addr:lo "hist-gap-ticks"
              "bucket %d ([%d,%d)) has %d tick%s but no routine covers it" i lo
              hi count
              (if count = 1 then "" else "s")
            :: !acc
      end)
    h.h_counts;
  List.rev !acc

let arc_findings (o : Objfile.t) (indirect : Indirect.t) (g : Gmon.t) =
  let len = Array.length o.Objfile.text in
  let acc = ref [] in
  let emit f = acc := f :: !acc in
  List.iter
    (fun (a : Gmon.arc) ->
      let callee_entry = Objfile.func_id_of_addr o a.a_self <> None in
      (* the callee end *)
      (if not callee_entry then
         emit
           (finding ~addr:a.a_self "arc-into-non-entry"
              "arc (%d -> %d, count %d) lands %s" a.a_from a.a_self a.a_count
              (match Objfile.find_symbol o a.a_self with
              | Some s -> Printf.sprintf "mid-%s, not at a function entry" s.name
              | None -> "outside the symbol table"))
       else
         match Objfile.find_symbol o a.a_self with
         | Some s when not s.profiled ->
           emit
             (finding ~addr:a.a_self "arc-into-unprofiled"
                "arc (%d -> %s, count %d) lands on an uninstrumented routine: \
                 the monitor cannot have recorded it"
                a.a_from s.name a.a_count)
         | _ -> ());
      (* the call-site end *)
      if a.a_from < 0 || a.a_from >= len then
        emit
          (finding "arc-spontaneous"
             "arc from pseudo-site %d into %s: a spontaneous root" a.a_from
             (match Objfile.find_symbol o a.a_self with
             | Some s -> s.name
             | None -> string_of_int a.a_self))
      else
        match o.Objfile.text.(a.a_from) with
        | Instr.Call (target, _) ->
          if callee_entry && target <> a.a_self then
            emit
              (finding ~addr:a.a_from "arc-infeasible"
                 "site %d holds a call to %s but the arc (count %d) claims %s"
                 a.a_from
                 (match Objfile.find_symbol o target with
                 | Some s when s.addr = target -> s.name
                 | _ -> string_of_int target)
                 a.a_count
                 (match Objfile.find_symbol o a.a_self with
                 | Some s -> s.name
                 | None -> string_of_int a.a_self))
        | Instr.Calli _ -> (
          match Indirect.resolution indirect ~site:a.a_from with
          | Some (Resolved ts) when callee_entry && not (List.mem a.a_self ts) ->
            emit
              (finding ~addr:a.a_from "arc-infeasible"
                 "indirect site %d can reach {%s} but the arc (count %d) \
                  claims %s"
                 a.a_from
                 (String.concat ", "
                    (List.map
                       (fun t ->
                         match Objfile.find_symbol o t with
                         | Some s -> s.name
                         | None -> string_of_int t)
                       ts))
                 a.a_count
                 (match Objfile.find_symbol o a.a_self with
                 | Some s -> s.name
                 | None -> string_of_int a.a_self))
          | _ -> () (* Unresolved: anything is feasible; sound, silent *))
        | ins ->
          emit
            (finding ~addr:a.a_from "arc-from-non-call"
               "arc (%d -> %d, count %d): site holds %s, not a call" a.a_from
               a.a_self a.a_count (Instr.to_string ins)))
    g.Gmon.arcs;
  List.rev !acc

(* The profile-vs-statics contradiction rules: the histogram and the
   arcs are checked against the dominator/loop/constant structure the
   dataflow passes derived.

   [loop-no-ticks] only counts buckets lying {e fully} inside a loop
   block, and only fires once a function has accumulated enough ticks
   ([hot_ticks]) that a genuinely iterating loop would almost surely
   have been sampled. [loop-call-unobserved] only speaks about call
   sites whose every feasible target is an instrumented entry — the
   monitor records no arcs into unprofiled code, so silence there
   proves nothing — and requires a tick inside the call's own block:
   a loop body that simply never happened to be entered (an empty
   hash chain, an error path) is silent for a benign reason. *)

let hot_ticks = 64

let statics_profile_findings (st : statics) (o : Objfile.t) (g : Gmon.t) =
  let acc = ref [] in
  let emit f = acc := f :: !acc in
  let h = g.Gmon.hist in
  (* buckets are uniform, so only the indices overlapping [lo,hi)
     need visiting — these run once per block, and a linear sweep of
     the whole histogram each time is what pushes the lint past its
     per-instruction budget *)
  let overlapping lo hi f =
    let nb = Array.length h.Gmon.h_counts in
    if nb > 0 && hi > h.Gmon.h_lowpc && lo < h.Gmon.h_highpc then begin
      let bs = h.Gmon.h_bucket_size in
      let i_min = max 0 ((max lo h.Gmon.h_lowpc - h.Gmon.h_lowpc) / bs) in
      let i_max = min (nb - 1) ((hi - 1 - h.Gmon.h_lowpc) / bs) in
      for i = i_min to i_max do
        f i h.Gmon.h_counts.(i)
      done
    end
  in
  let buckets_within lo hi =
    (* (buckets fully inside [lo,hi), their summed ticks) *)
    let n = ref 0 and t = ref 0 in
    overlapping lo hi (fun i count ->
        let blo, bhi = Gmon.bucket_range h i in
        if blo >= lo && bhi <= hi && bhi > blo then begin
          incr n;
          t := !t + count
        end);
    (!n, !t)
  in
  let ticks_touching lo hi =
    let t = ref 0 in
    overlapping lo hi (fun i count ->
        let blo, bhi = Gmon.bucket_range h i in
        if count > 0 && blo < hi && bhi > lo then t := !t + count);
    !t
  in
  (* index the arcs once: the per-function fan-in totals and the
     per-site "did any arc leave here" test are each asked O(funcs) and
     O(call sites) times, and a list scan per ask is quadratic *)
  let arc_from = Hashtbl.create 64 and arc_into = Hashtbl.create 64 in
  List.iter
    (fun (a : Gmon.arc) ->
      if a.Gmon.a_count > 0 then Hashtbl.replace arc_from a.Gmon.a_from ();
      Hashtbl.replace arc_into a.Gmon.a_self
        (a.Gmon.a_count
        + Option.value ~default:0 (Hashtbl.find_opt arc_into a.Gmon.a_self)))
    g.Gmon.arcs;
  Array.iteri
    (fun i (f : Cfg.func) ->
      match (st.s_doms.(i), st.s_cp.(i)) with
      | Some dom, Some cp ->
        let sym = f.Cfg.fn_symbol in
        let name = sym.Objfile.name in
        let plain = Dataflow.reachable dom.Dom.d_graph in
        let fticks = ticks_touching sym.Objfile.addr (sym.Objfile.addr + sym.Objfile.size) in
        let fcalls =
          Option.value ~default:0 (Hashtbl.find_opt arc_into sym.Objfile.addr)
        in
        (* dead-block-ticks: samples inside code no execution reaches *)
        Array.iteri
          (fun bi (b : Cfg.block) ->
            if not (plain.(bi) && cp.Facts.cp_executable.(bi)) then begin
              let lo = b.Cfg.bb_start and hi = b.Cfg.bb_start + b.Cfg.bb_len in
              let _, t = buckets_within lo hi in
              if t > 0 then
                emit
                  (finding ~addr:lo ~func:name "dead-block-ticks"
                     "%s: statically-dead block [%d..%d) shows %d tick%s — \
                      the profile cannot describe this binary"
                     name lo hi t
                     (if t = 1 then "" else "s"))
            end)
          f.Cfg.fn_blocks;
        (* loop-call-unobserved: a tick inside the call's own block
           proves the block ran — every call in it must then have
           fired, so a missing arc is a contradiction, not merely a
           loop body that never happened to be entered *)
        if fticks > 0 || fcalls > 0 then
          Array.iteri
            (fun bi (b : Cfg.block) ->
              if dom.Dom.d_depth.(bi) >= 1 && plain.(bi)
                 && cp.Facts.cp_executable.(bi)
                 && ticks_touching b.Cfg.bb_start
                      (b.Cfg.bb_start + b.Cfg.bb_len)
                    > 0 then
                List.iter
                  (fun pc ->
                    let targets =
                      match o.Objfile.text.(pc) with
                      | Instr.Call (t, _) -> [ t ]
                      | Instr.Calli _ ->
                        Indirect.targets st.s_indirect ~site:pc
                      | _ -> []
                    in
                    let provable =
                      targets <> []
                      && List.for_all
                           (fun t ->
                             match Objfile.find_symbol o t with
                             | Some s -> s.Objfile.addr = t && s.Objfile.profiled
                             | None -> false)
                           targets
                    in
                    if provable && not (Hashtbl.mem arc_from pc) then
                      emit
                        (finding ~addr:pc ~func:name "loop-call-unobserved"
                           "%s: the call at pc %d sits at loop depth %d yet \
                            no dynamic arc ever left it (function saw %d \
                            tick%s, %d call%s)"
                           name pc dom.Dom.d_depth.(bi) fticks
                           (if fticks = 1 then "" else "s")
                           fcalls
                           (if fcalls = 1 then "" else "s")))
                  b.Cfg.bb_calls)
            f.Cfg.fn_blocks;
        (* loop-no-ticks *)
        if fticks >= hot_ticks then
          Array.iter
            (fun (l : Dom.loop) ->
              let contained = ref 0 and ticks = ref 0 in
              List.iter
                (fun bi ->
                  let b = f.Cfg.fn_blocks.(bi) in
                  let n, t =
                    buckets_within b.Cfg.bb_start
                      (b.Cfg.bb_start + b.Cfg.bb_len)
                  in
                  contained := !contained + n;
                  ticks := !ticks + t)
                l.Dom.l_body;
              if !contained > 0 && !ticks = 0 then
                let hb = f.Cfg.fn_blocks.(l.Dom.l_header) in
                emit
                  (finding ~addr:hb.Cfg.bb_start ~func:name "loop-no-ticks"
                     "%s: the loop headed at pc %d was never observed \
                      ticking though its function accumulated %d ticks"
                     name hb.Cfg.bb_start fticks))
            dom.Dom.d_loops
      | _ -> ())
    st.s_cfg.Cfg.cfg_funcs;
  List.rev !acc

let lint ?cfg ?indirect ?statics (o : Objfile.t) (g : Gmon.t) =
  Obs.Trace.with_span ~cat:"analysis" "lint" @@ fun () ->
  let statics =
    match statics with Some s -> s | None -> prepare ?cfg ?indirect o
  in
  let indirect = statics.s_indirect in
  let reach, binary = binary_findings ~statics o in
  let hist = hist_findings o g in
  let arcs = arc_findings o indirect g in
  let versus = statics_profile_findings statics o g in
  let contradictions =
    List.map
      (fun (c : Reach.contradiction) ->
        finding "dead-code-ticks"
          "%s is unreachable in the static graph yet shows %d tick%s and %d \
           incoming call%s"
          c.c_func c.c_ticks
          (if c.c_ticks = 1 then "" else "s")
          c.c_calls
          (if c.c_calls = 1 then "" else "s"))
      (Reach.crosscheck reach o g)
  in
  let fs = sort_findings (binary @ hist @ arcs @ contradictions @ versus) in
  publish fs;
  {
    l_findings = fs;
    l_arcs_checked = List.length g.Gmon.arcs;
    l_buckets_checked = Array.length g.Gmon.hist.h_counts;
  }

(* ------------------------------------------------------------------ *)
(* Verdicts and rendering *)

let worst t =
  List.fold_left
    (fun acc f ->
      match acc with
      | None -> Some f.f_severity
      | Some s ->
        Some (if severity_rank f.f_severity < severity_rank s then f.f_severity else s))
    None t.l_findings

let failed ~strict t =
  match worst t with
  | Some Error -> true
  | Some Warning -> strict
  | Some Info | None -> false

let exit_code ~strict t = if failed ~strict t then 2 else 0

let render t =
  let buf = Buffer.create 512 in
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "%s [%s] %s%s\n"
           (severity_to_string f.f_severity)
           f.f_rule f.f_msg
           (match f.f_addr with
           | Some a -> Printf.sprintf " (addr %d)" a
           | None -> "")))
    t.l_findings;
  let count sev =
    List.length (List.filter (fun f -> f.f_severity = sev) t.l_findings)
  in
  Buffer.add_string buf
    (Printf.sprintf
       "proflint: %d error(s), %d warning(s), %d note(s); %d arc(s) and %d \
        bucket(s) checked\n"
       (count Error) (count Warning) (count Info) t.l_arcs_checked
       t.l_buckets_checked);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Aggregation across profiles, and machine-readable output *)

type aggregate = { a_finding : finding; a_profiles : int }

let aggregate (results : t list) =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun r ->
      List.iter
        (fun f ->
          let key = (f.f_rule, f.f_func, f.f_addr, f.f_msg) in
          match Hashtbl.find_opt tbl key with
          | None ->
            Hashtbl.add tbl key (ref 1);
            order := f :: !order
          | Some n -> incr n)
        r.l_findings)
    results;
  List.map
    (fun f ->
      {
        a_finding = f;
        a_profiles = !(Hashtbl.find tbl (f.f_rule, f.f_func, f.f_addr, f.f_msg));
      })
    (sort_findings (List.rev !order))

let render_aggregate ~nprofiles results =
  let aggs = aggregate results in
  let buf = Buffer.create 512 in
  List.iter
    (fun a ->
      let f = a.a_finding in
      Buffer.add_string buf
        (Printf.sprintf "%s [%s] %s%s (%d/%d profiles)\n"
           (severity_to_string f.f_severity)
           f.f_rule f.f_msg
           (match f.f_addr with
           | Some ad -> Printf.sprintf " (addr %d)" ad
           | None -> "")
           a.a_profiles nprofiles))
    aggs;
  let count sev =
    List.length (List.filter (fun a -> a.a_finding.f_severity = sev) aggs)
  in
  let arcs = List.fold_left (fun n r -> n + r.l_arcs_checked) 0 results in
  let buckets = List.fold_left (fun n r -> n + r.l_buckets_checked) 0 results in
  Buffer.add_string buf
    (Printf.sprintf
       "proflint: %d distinct finding(s) over %d profile(s): %d error(s), %d \
        warning(s), %d note(s); %d arc(s) and %d bucket(s) checked\n"
       (List.length aggs) nprofiles (count Error) (count Warning) (count Info)
       arcs buckets);
  Buffer.contents buf

let json_schema = "gprof-repro.lint/1"

let to_json ~binary ~profiles results =
  let aggs =
    (* deterministic machine order: rule, then function, then pc *)
    List.sort
      (fun a b ->
        match compare a.a_finding.f_rule b.a_finding.f_rule with
        | 0 -> (
          match compare a.a_finding.f_func b.a_finding.f_func with
          | 0 -> (
            match compare a.a_finding.f_addr b.a_finding.f_addr with
            | 0 -> compare a.a_finding.f_msg b.a_finding.f_msg
            | c -> c)
          | c -> c)
        | c -> c)
      (aggregate results)
  in
  let buf = Buffer.create 2048 in
  let j = Obs.Jsonbuf.escape buf in
  let count sev =
    List.length (List.filter (fun a -> a.a_finding.f_severity = sev) aggs)
  in
  Obs.Jsonbuf.obj buf
    [
      ("schema", fun () -> j json_schema);
      ("binary", fun () -> j binary);
      ("profiles", fun () -> Obs.Jsonbuf.arr buf profiles j);
      ( "summary",
        fun () ->
          Obs.Jsonbuf.obj buf
            [
              ("findings", fun () -> Obs.Jsonbuf.int buf (List.length aggs));
              ("errors", fun () -> Obs.Jsonbuf.int buf (count Error));
              ("warnings", fun () -> Obs.Jsonbuf.int buf (count Warning));
              ("notes", fun () -> Obs.Jsonbuf.int buf (count Info));
              ( "arcs_checked",
                fun () ->
                  Obs.Jsonbuf.int buf
                    (List.fold_left (fun n r -> n + r.l_arcs_checked) 0 results)
              );
              ( "buckets_checked",
                fun () ->
                  Obs.Jsonbuf.int buf
                    (List.fold_left
                       (fun n r -> n + r.l_buckets_checked)
                       0 results) );
            ] );
      ( "findings",
        fun () ->
          Obs.Jsonbuf.arr buf aggs (fun a ->
              let f = a.a_finding in
              Obs.Jsonbuf.obj buf
                [
                  ("rule", fun () -> j f.f_rule);
                  ( "severity",
                    fun () -> j (severity_to_string f.f_severity) );
                  ( "func",
                    fun () ->
                      match f.f_func with
                      | None -> Buffer.add_string buf "null"
                      | Some fn -> j fn );
                  ( "addr",
                    fun () ->
                      match f.f_addr with
                      | None -> Buffer.add_string buf "null"
                      | Some ad -> Obs.Jsonbuf.int buf ad );
                  ("profiles", fun () -> Obs.Jsonbuf.int buf a.a_profiles);
                  ("msg", fun () -> j f.f_msg);
                ]) );
    ];
  Buffer.add_char buf '\n';
  Buffer.contents buf
