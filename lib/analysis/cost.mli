(** Static cost bounds per function, to sit next to the measured
    profile.

    The estimate is deliberately a {e shape}, not a prediction: each
    reachable block contributes its summed {!Objcode.Instr.cost},
    weighted by [loop_weight]{^ depth} for its {!Dom} loop-nesting
    depth; call sites add the callee's own bound (the {e maximum} over
    an indirect site's {!Indirect} target set — fan-out resolves to the
    worst case), weighted the same way. Any function on a call-graph
    cycle — and anything that can reach one — has no finite descendant
    bound and reports [None], exactly the situation where the paper
    falls back from static reasoning to measured arcs. Comparing the
    two columns is the point: a routine whose measured share dwarfs
    its static bound is being {e called} too much, not {e doing} too
    much, and vice versa. *)

type fn = {
  c_id : int;  (** function id (symbol index) *)
  c_name : string;
  c_blocks : int;  (** intra-procedurally reachable blocks *)
  c_loops : int;
  c_depth : int;  (** maximum loop-nesting depth *)
  c_irreducible : bool;
  c_self : int;  (** loop-weighted cost bound of the body itself *)
  c_total : int option;
      (** body plus (weighted, worst-case) callees; [None] when a
          call-graph cycle makes any static bound infinite *)
}

type t = { c_funcs : fn array; c_loop_weight : int }

val static_estimate : ?loop_weight:int -> ?indirect:Indirect.t -> Cfg.t -> t
(** [loop_weight] (default 8) is the assumed iterations per loop
    level. [indirect] defaults to a fresh {!Indirect.analyze}. *)

val listing : ?measured:(string -> (float * float) option) -> t -> string
(** A table of the estimate, descending by self bound. [measured]
    supplies (self seconds, self+descendants seconds) per function
    name — when given, the measured columns are rendered beside the
    static ones. *)
