(** Reachability and dead-code reporting over the static graphs.

    Three questions, all answered from {!Cfg} plus {!Indirect}:
    which functions can execute at all (interprocedural reachability
    from the entry point over direct ∪ resolved-indirect arcs), which
    blocks inside a function can execute (intra-procedural
    reachability from its entry block), and — the cross-check the
    profile linter leans on — whether the {e dynamic} profile
    contradicts the static verdict. A "dead" function with nonzero
    ticks is a finding, not noise: either the binary and the profile
    do not match, or the static graph is missing an arc the paper
    would have had to declare "spontaneous" (§2). *)

type t = {
  r_reachable : bool array;  (** per function id *)
  r_unreachable : string list;
      (** names of functions unreachable from the entry point, in
          address order *)
  r_dead_profiled : string list;
      (** the subset of [r_unreachable] compiled with the monitoring
          prologue: instrumented code that can never execute *)
  r_dead_blocks : (string * int * int) list;
      (** (function, block start, block length) of intra-procedurally
          unreachable blocks, in address order — e.g. the compiler's
          fall-off-the-end epilogue after a body that always returns *)
  r_graph : Graphlib.Digraph.t;
      (** the static call graph (direct ∪ resolved-indirect arcs) the
          verdicts were computed over *)
}

val analyze : ?indirect:Indirect.t -> Cfg.t -> t
(** [indirect] defaults to {!Indirect.analyze} of the same executable;
    pass it explicitly to share one resolution between passes.
    Publishes [analysis.reach.*] counters to {!Obs.Metrics.default}. *)

type contradiction = {
  c_func : string;
  c_ticks : int;  (** histogram ticks landing inside the function *)
  c_calls : int;  (** dynamic arc traversals into its entry *)
}

val crosscheck : t -> Objcode.Objfile.t -> Gmon.t -> contradiction list
(** Functions the dynamic profile saw executing that {e neither} view
    can explain, in address order. A profile accounts for its own
    activity through spontaneous roots and recorded arcs (the paper
    "declares them spontaneous"), so the check reaches from
    entry ∪ spontaneous-arc targets over static ∪ dynamic arcs;
    activity outside that closure means the binary and the profile do
    not match. Empty when the views agree. *)
