(** An immutable, serializable capture of a {!Metrics} registry.

    A snapshot is what a telemetry client holds between polls: it
    serializes to exactly the JSON shape {!Metrics.to_json} emits,
    parses back with {!of_json}, and subtracts with {!diff} so any
    consumer can compute "what changed since last poll" — per-second
    rates, latency quantiles, shed percentages — without touching the
    live registry. *)

type hist = {
  h_count : int;
  h_sum : int;
  h_max : int;
  h_buckets : (int * int) list;
      (** [(bucket index, count)] pairs, ascending, counts > 0; bucket
          geometry is {!Metrics.hist_bucket_bounds}. *)
}

type t = {
  counters : (string * int) list;  (** name-sorted *)
  gauges : (string * int) list;
  histograms : (string * hist) list;
}

val empty : t

val of_registry : Metrics.t -> t
(** Capture every instrument's current value. *)

val to_json : t -> string
(** Byte-identical to {!Metrics.to_json} over the same state. *)

val of_json : string -> (t, string) result
(** Parse what {!to_json} (or {!Metrics.to_json}) wrote. *)

val of_value : Jsonin.value -> (t, string) result
(** Same, from an already parsed JSON value (e.g. the ["metrics"]
    member of a telemetry record). *)

val find_counter : t -> string -> int option
val find_gauge : t -> string -> int option
val find_hist : t -> string -> hist option

val diff : before:t -> after:t -> t
(** Counter and histogram deltas over [after]'s name set (a name
    missing from [before] counts from zero); gauges carry [after]'s
    value (last write wins). A histogram delta's [h_max] is the
    cumulative max when the window saw samples, 0 otherwise — the
    true window max is not recoverable from cumulative state. *)

val rates : elapsed:float -> t -> (string * float) list
(** Per-second rate of every counter of a {!diff}; empty when
    [elapsed <= 0]. *)

val monotonic_violations : before:t -> after:t -> (string * int * int) list
(** Counters (and histogram counts, suffixed [".count"]) that moved
    backwards between two snapshots, as [(name, before, after)] —
    empty for any pair taken from one uninterrupted process. *)

val hist_quantile : hist -> float -> float
(** [hist_quantile h q] estimates the [q]-quantile ([0..1]) by linear
    interpolation inside the log2 bucket holding it; the unbounded top
    bucket is clamped to [h_max]. 0 for an empty histogram. *)
