(** The self-observability metrics registry.

    Named counters, gauges, and histograms with fixed log2 buckets.
    Instruments are registered by name (get-or-create); registering
    the same name with a different instrument kind raises. A disabled
    registry turns every mutation into a no-op, so instrumentation can
    stay in place at zero reporting cost.

    [default] is the process-wide registry used by components that
    have no natural owner for their counters (e.g. the gmon codec's
    byte counts) and by the [--obs-metrics] CLI exporters. Components
    with their own internal state (the VM, the monitor) publish
    snapshots into a registry via their [observe] functions. *)

type t
(** A registry. *)

type counter
(** Monotonically increasing count. *)

type gauge
(** Last-write-wins value. *)

type histogram
(** Distribution with {!n_hist_buckets} log2 buckets plus count, sum,
    and max. *)

val create : unit -> t

val default : t
(** The process-wide registry. *)

val enabled : t -> bool

val set_enabled : t -> bool -> unit

val reset : t -> unit
(** Zero every instrument (registrations are kept). *)

(** {1 Instruments} *)

val counter : t -> ?help:string -> string -> counter
val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : t -> ?help:string -> string -> gauge
val set : gauge -> int -> unit
val gauge_value : gauge -> int

val histogram : t -> ?help:string -> string -> histogram

val observe : histogram -> int -> unit
(** Record one value into its log2 bucket. *)

val set_snapshot :
  histogram -> buckets:int array -> count:int -> sum:int -> max:int -> unit
(** Replace the histogram's contents wholesale — for components that
    maintain their own bucket array and publish it on demand.
    [buckets] must have length {!n_hist_buckets}.
    @raise Invalid_argument otherwise. *)

val hist_count : histogram -> int
val hist_sum : histogram -> int
val hist_max : histogram -> int
val hist_buckets : histogram -> int array

(** {1 Bucket geometry} *)

val n_hist_buckets : int
(** 32. *)

val hist_bucket_of : int -> int
(** Bucket 0 holds values [<= 0]; bucket [b >= 1] holds
    [2^(b-1) <= v < 2^b]; the top bucket absorbs the rest. *)

val hist_bucket_bounds : int -> int * int
(** Inclusive [(lo, hi)] of a bucket; the top bucket's [hi] is
    [max_int]. *)

(** {1 Lookup (tests, exporters)} *)

val find_counter : t -> string -> int option
val find_gauge : t -> string -> int option
val find_histogram : t -> string -> histogram option

(** {1 Enumeration} *)

type view =
  | View_counter of int
  | View_gauge of int
  | View_histogram of { v_count : int; v_sum : int; v_max : int; v_buckets : int array }
      (** An immutable copy of one instrument's current value. *)

val views : t -> (string * view) list
(** Every instrument, name-sorted, as value copies — the raw material
    of {!Snapshot.of_registry}. *)

(** {1 Export} *)

val dump : t -> string
(** Human-readable listing, sorted by name; histogram buckets are
    printed with their value ranges. *)

val to_json : t -> string
(** [{"counters":{...},"gauges":{...},"histograms":{...}}]; histogram
    buckets carry inclusive [lo]/[hi] bounds ([hi] = -1 for the
    unbounded top bucket). *)

val save : t -> string -> unit
(** Write {!to_json} to a file; ["-"] or ["/dev/stdout"] writes to
    stdout. *)
