(* Span-based tracing with monotonic timestamps and Chrome trace_event
   export.

   The clock is Unix.gettimeofday clamped to be non-decreasing (the
   stdlib exposes no monotonic clock; the clamp makes a backwards NTP
   step harmless). Timestamps are microseconds relative to the first
   observation, which keeps the JSON small and the viewer timeline
   anchored at zero. *)

let now_us =
  let origin = ref nan in
  let last = ref 0.0 in
  fun () ->
    let t = Unix.gettimeofday () *. 1e6 in
    if Float.is_nan !origin then origin := t;
    let t = t -. !origin in
    if t > !last then last := t;
    !last

type span = {
  s_name : string;
  s_cat : string;
  s_start_us : float;
  s_dur_us : float;
  s_depth : int;
  s_args : (string * string) list;
}

(* Events carry the open-time sequence number so [spans] can return
   true start order even when the microsecond clock ties. *)
type t = {
  mutable events : (int * span) list; (* completion order, newest first *)
  mutable depth : int;
  mutable seq : int;
  mutable enabled : bool;
}

let create () = { events = []; depth = 0; seq = 0; enabled = false }

let default = create ()

let enabled t = t.enabled

let set_enabled t on = t.enabled <- on

let clear t =
  t.events <- [];
  t.depth <- 0;
  t.seq <- 0

let next_seq t =
  let s = t.seq in
  t.seq <- s + 1;
  s

let with_span ?(t = default) ?(cat = "gprof") ?(args = []) name f =
  if not t.enabled then f ()
  else begin
    let start = now_us () in
    let seq = next_seq t in
    let depth = t.depth in
    t.depth <- depth + 1;
    let finish () =
      t.depth <- depth;
      let dur = now_us () -. start in
      t.events <-
        ( seq,
          {
            s_name = name;
            s_cat = cat;
            s_start_us = start;
            s_dur_us = dur;
            s_depth = depth;
            s_args = args;
          } )
        :: t.events
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

let instant ?(t = default) ?(cat = "gprof") ?(args = []) name =
  if t.enabled then
    let ts = now_us () in
    t.events <-
      ( next_seq t,
        {
          s_name = name;
          s_cat = cat;
          s_start_us = ts;
          s_dur_us = 0.0;
          s_depth = t.depth;
          s_args = args;
        } )
      :: t.events

let spans t =
  List.map snd
    (List.sort (fun (a, _) (b, _) -> compare a b) t.events)

let span_count t = List.length t.events

(* Chrome trace_event format: complete ("X") events, one process, one
   thread. Loadable in chrome://tracing and ui.perfetto.dev. *)
let to_chrome_json t =
  let buf = Buffer.create 4096 in
  Jsonbuf.obj buf
    [
      ("displayTimeUnit", fun () -> Jsonbuf.escape buf "ms");
      ( "traceEvents",
        fun () ->
          Jsonbuf.arr buf (spans t) (fun s ->
              Jsonbuf.obj buf
                ([
                   ("name", fun () -> Jsonbuf.escape buf s.s_name);
                   ("cat", fun () -> Jsonbuf.escape buf s.s_cat);
                   ("ph", fun () -> Jsonbuf.escape buf "X");
                   ("ts", fun () -> Jsonbuf.float buf s.s_start_us);
                   ("dur", fun () -> Jsonbuf.float buf s.s_dur_us);
                   ("pid", fun () -> Jsonbuf.int buf 1);
                   ("tid", fun () -> Jsonbuf.int buf 1);
                 ]
                @
                if s.s_args = [] then []
                else
                  [
                    ( "args",
                      fun () ->
                        Jsonbuf.obj buf
                          (List.map
                             (fun (k, v) -> (k, fun () -> Jsonbuf.escape buf v))
                             s.s_args) );
                  ])) );
    ];
  Buffer.contents buf

let save_chrome t path =
  let write oc = output_string oc (to_chrome_json t) in
  (* /dev/stdout via open_out would write through a second fd whose
     offset races the buffered report already on stdout; route it (and
     "-") through the stdout channel instead. *)
  if path = "-" || path = "/dev/stdout" then begin
    write stdout;
    flush stdout
  end
  else
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc)

let summary t =
  let buf = Buffer.create 512 in
  let ss = spans t in
  let width =
    List.fold_left
      (fun w s -> max w ((2 * s.s_depth) + String.length s.s_name))
      0 ss
  in
  List.iter
    (fun s ->
      let label = String.make (2 * s.s_depth) ' ' ^ s.s_name in
      Buffer.add_string buf
        (Printf.sprintf "  %-*s %10.3f ms%s\n" (max width 8) label
           (s.s_dur_us /. 1000.0)
           (match s.s_args with
           | [] -> ""
           | args ->
             "  ("
             ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) args)
             ^ ")")))
    ss;
  Buffer.contents buf
