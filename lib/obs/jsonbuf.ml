(* Minimal JSON emission over a Buffer — just enough for the metrics
   and trace exporters. No parsing, no numbers-as-strings tricks. *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let int buf n = Buffer.add_string buf (string_of_int n)

(* Trace timestamps are fractional microseconds; %.3f keeps them plain
   (no exponent), which every trace viewer accepts. *)
let float buf f = Buffer.add_string buf (Printf.sprintf "%.3f" f)

(* Comma-separate the elements produced by [each] over [xs]. *)
let seq buf xs each =
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char buf ',';
      each x)
    xs

let obj buf fields =
  Buffer.add_char buf '{';
  seq buf fields (fun (k, emit) ->
      escape buf k;
      Buffer.add_char buf ':';
      emit ());
  Buffer.add_char buf '}'

let arr buf xs each =
  Buffer.add_char buf '[';
  seq buf xs each;
  Buffer.add_char buf ']'
