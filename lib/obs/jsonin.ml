(* Minimal JSON parsing — the read-side twin of Jsonbuf. The obs layer
   emits JSON (metrics snapshots, telemetry records, event lines) and
   increasingly needs to read its own output back: Snapshot.of_json,
   the telemetry replayer, and proftop all parse what Jsonbuf wrote.
   A recursive-descent parser over the whole value grammar keeps that
   loop closed without a JSON library in the image. *)

type value =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of value list
  | Obj of (string * value) list

exception Bad of string * int  (* message, byte offset *)

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let bad msg = raise (Bad (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos
    else bad (Printf.sprintf "expected %C" c)
  in
  let keyword k v =
    if !pos + String.length k <= n && String.sub s !pos (String.length k) = k
    then begin
      pos := !pos + String.length k;
      v
    end
    else bad (Printf.sprintf "expected %s" k)
  in
  let hex4 () =
    if !pos + 4 > n then bad "truncated \\u escape";
    let v = int_of_string_opt ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    match v with Some v -> v | None -> bad "malformed \\u escape"
  in
  (* Decoded \uXXXX code points are re-encoded as UTF-8, so a string
     round-trips through escape/parse byte-for-byte only when it was
     valid UTF-8; Jsonbuf only \u-escapes control bytes (< 0x20),
     which land in the single-byte range and always round-trip. *)
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> bad "unterminated string"
      | Some '"' -> incr pos
      | Some '\\' -> (
        incr pos;
        match peek () with
        | Some '"' -> incr pos; Buffer.add_char buf '"'; go ()
        | Some '\\' -> incr pos; Buffer.add_char buf '\\'; go ()
        | Some '/' -> incr pos; Buffer.add_char buf '/'; go ()
        | Some 'b' -> incr pos; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> incr pos; Buffer.add_char buf '\012'; go ()
        | Some 'n' -> incr pos; Buffer.add_char buf '\n'; go ()
        | Some 'r' -> incr pos; Buffer.add_char buf '\r'; go ()
        | Some 't' -> incr pos; Buffer.add_char buf '\t'; go ()
        | Some 'u' ->
          incr pos;
          add_utf8 buf (hex4 ());
          go ()
        | _ -> bad "bad escape")
      | Some c ->
        incr pos;
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    let digits () =
      let seen = ref false in
      while (match peek () with Some '0' .. '9' -> true | _ -> false) do
        seen := true;
        incr pos
      done;
      if not !seen then bad "expected digits"
    in
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      incr pos;
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      incr pos;
      (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
      digits ()
    | _ -> ());
    let lit = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string lit)
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> Float (float_of_string lit)
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = string_lit () in
          skip_ws ();
          expect ':';
          let v = value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos; members ()
          | Some '}' -> incr pos
          | _ -> bad "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos; elements ()
          | Some ']' -> incr pos
          | _ -> bad "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
    | Some '"' -> Str (string_lit ())
    | Some ('-' | '0' .. '9') -> number ()
    | Some 't' -> keyword "true" (Bool true)
    | Some 'f' -> keyword "false" (Bool false)
    | Some 'n' -> keyword "null" Null
    | _ -> bad "expected a JSON value"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then bad "trailing bytes after the value";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Bad (msg, off) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" off msg)
  | exception Failure msg -> Error (Printf.sprintf "JSON parse error: %s" msg)

(* --- accessors --------------------------------------------------------- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string = function Str s -> Some s | _ -> None

let to_list = function List l -> Some l | _ -> None

let to_obj = function Obj fields -> Some fields | _ -> None
