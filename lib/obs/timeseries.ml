(* The telemetry time-series: an append-only JSONL file of metrics
   snapshots, each line independently checksummed.

   Line format (every line is itself valid JSON):

     {"crc":"<16 hex>","rec":{"seq":N,"ts":T,"metrics":{...}}}

   The crc is FNV-1a-64 over the serialized rec value, byte for byte
   as written. Because the crc prefix is fixed-width, a reader
   recovers the exact checksummed substring without re-serializing
   anything: rec = line[32 .. len-2]. Each line stands
   alone, so a torn tail (daemon killed mid-append) or a flipped byte
   costs exactly the damaged lines — the reader reports them and
   keeps the rest. *)

let fnv64 s =
  let offset_basis = 0xcbf29ce484222325L and prime = 0x100000001b3L in
  let h = ref offset_basis in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

type record = { r_seq : int; r_ts : float; r_metrics : Snapshot.t }

let prefix_len = String.length {|{"crc":"0123456789abcdef","rec":|}

let encode_line ~seq ~ts snapshot =
  let rec_json =
    Printf.sprintf {|{"seq":%d,"ts":%.6f,"metrics":%s}|} seq ts
      (Snapshot.to_json snapshot)
  in
  Printf.sprintf {|{"crc":"%016Lx","rec":%s}|} (fnv64 rec_json) rec_json

let decode_line line =
  let n = String.length line in
  if n < prefix_len + 1 then Error "line too short to hold a record"
  else if String.sub line 0 8 <> {|{"crc":"|} then
    Error "line does not start with a crc field"
  else if String.sub line 24 8 <> {|","rec":|} then
    Error "malformed crc field"
  else if line.[n - 1] <> '}' then Error "line does not end the record object"
  else
    let crc_hex = String.sub line 8 16 in
    let rec_json = String.sub line prefix_len (n - prefix_len - 1) in
    match Int64.of_string_opt ("0x" ^ crc_hex) with
    | None -> Error "crc is not 16 hex digits"
    | Some crc ->
      if fnv64 rec_json <> crc then Error "checksum mismatch (corrupt record)"
      else
        let ( let* ) = Result.bind in
        let* v = Jsonin.parse rec_json in
        let* seq =
          match Option.bind (Jsonin.member "seq" v) Jsonin.to_int with
          | Some s -> Ok s
          | None -> Error "record has no integer seq"
        in
        let* ts =
          match Option.bind (Jsonin.member "ts" v) Jsonin.to_float with
          | Some t -> Ok t
          | None -> Error "record has no ts"
        in
        let* metrics =
          match Jsonin.member "metrics" v with
          | Some m -> Snapshot.of_value m
          | None -> Error "record has no metrics"
        in
        Ok { r_seq = seq; r_ts = ts; r_metrics = metrics }

(* --- reading ----------------------------------------------------------- *)

let read path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents ->
    let lines =
      String.split_on_char '\n' contents
      |> List.filter (fun l -> String.trim l <> "")
    in
    let records = ref [] and complaints = ref [] in
    List.iteri
      (fun i line ->
        match decode_line line with
        | Ok r -> records := r :: !records
        | Error e ->
          complaints := Printf.sprintf "line %d: %s" (i + 1) e :: !complaints)
      lines;
    Ok (List.rev !records, List.rev !complaints)

(* --- writing ----------------------------------------------------------- *)

type writer = { w_oc : out_channel; mutable w_next_seq : int }

let open_writer path =
  (* continue the sequence across daemon restarts: the series stays
     monotonic even when the registry behind it starts over *)
  let next_seq =
    match read path with
    | Ok (records, _) ->
      1 + List.fold_left (fun acc r -> max acc r.r_seq) (-1) records
    | Error _ -> 0
  in
  match open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path with
  | oc -> Ok { w_oc = oc; w_next_seq = next_seq }
  | exception Sys_error e -> Error e

let append w ~ts snapshot =
  let seq = w.w_next_seq in
  match
    output_string w.w_oc (encode_line ~seq ~ts snapshot ^ "\n");
    flush w.w_oc
  with
  | () ->
    w.w_next_seq <- seq + 1;
    Ok seq
  | exception Sys_error e -> Error e

let close_writer w = try close_out w.w_oc with Sys_error _ -> ()
