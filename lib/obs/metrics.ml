(* The metrics registry: named counters, gauges, and fixed-log2-bucket
   histograms, with a human-readable dump and a JSON export. One
   process-wide [default] registry serves the common case (the gmon
   byte counters, the CLI exporters); components that snapshot their
   own state publish into whatever registry they are handed. *)

let n_hist_buckets = 32

(* Bucket 0 collects non-positive values; bucket b >= 1 covers
   [2^(b-1), 2^b). The top bucket absorbs everything larger. *)
let hist_bucket_of v =
  if v <= 0 then 0
  else begin
    let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
    min (n_hist_buckets - 1) (bits 0 v)
  end

let hist_bucket_bounds b =
  if b = 0 then (0, 0)
  else if b = n_hist_buckets - 1 then (1 lsl (b - 1), max_int)
  else (1 lsl (b - 1), (1 lsl b) - 1)

type counter = { mutable c_value : int; c_owner : t }

and gauge = { mutable g_value : int; g_owner : t }

and histogram = {
  h_buckets : int array;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_max : int;
  h_owner : t;
}

and instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

and t = {
  instruments : (string, instrument * string) Hashtbl.t; (* name -> (inst, help) *)
  mutable enabled : bool;
}

let create () = { instruments = Hashtbl.create 32; enabled = true }

let default = create ()

let enabled t = t.enabled

let set_enabled t on = t.enabled <- on

let describe = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let register t name help fresh select =
  match Hashtbl.find_opt t.instruments name with
  | Some (inst, _) -> (
    match select inst with
    | Some x -> x
    | None ->
      invalid_arg
        (Printf.sprintf "Obs.Metrics: %s already registered as a %s" name
           (describe inst)))
  | None ->
    let inst, x = fresh () in
    Hashtbl.replace t.instruments name (inst, Option.value ~default:"" help);
    x

let counter t ?help name =
  register t name help
    (fun () ->
      let c = { c_value = 0; c_owner = t } in
      (Counter c, c))
    (function Counter c -> Some c | _ -> None)

let gauge t ?help name =
  register t name help
    (fun () ->
      let g = { g_value = 0; g_owner = t } in
      (Gauge g, g))
    (function Gauge g -> Some g | _ -> None)

let histogram t ?help name =
  register t name help
    (fun () ->
      let h =
        {
          h_buckets = Array.make n_hist_buckets 0;
          h_count = 0;
          h_sum = 0;
          h_max = 0;
          h_owner = t;
        }
      in
      (Histogram h, h))
    (function Histogram h -> Some h | _ -> None)

let incr ?(by = 1) c = if c.c_owner.enabled then c.c_value <- c.c_value + by

let counter_value c = c.c_value

let set g v = if g.g_owner.enabled then g.g_value <- v

let gauge_value g = g.g_value

let observe h v =
  if h.h_owner.enabled then begin
    h.h_buckets.(hist_bucket_of v) <- h.h_buckets.(hist_bucket_of v) + 1;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum + v;
    if v > h.h_max then h.h_max <- v
  end

let set_snapshot h ~buckets ~count ~sum ~max =
  if h.h_owner.enabled then begin
    if Array.length buckets <> n_hist_buckets then
      invalid_arg "Obs.Metrics.set_snapshot: wrong bucket count";
    Array.blit buckets 0 h.h_buckets 0 n_hist_buckets;
    h.h_count <- count;
    h.h_sum <- sum;
    h.h_max <- max
  end

let hist_count h = h.h_count
let hist_sum h = h.h_sum
let hist_max h = h.h_max
let hist_buckets h = Array.copy h.h_buckets

let find_counter t name =
  match Hashtbl.find_opt t.instruments name with
  | Some (Counter c, _) -> Some c.c_value
  | _ -> None

let find_gauge t name =
  match Hashtbl.find_opt t.instruments name with
  | Some (Gauge g, _) -> Some g.g_value
  | _ -> None

let find_histogram t name =
  match Hashtbl.find_opt t.instruments name with
  | Some (Histogram h, _) -> Some h
  | _ -> None

let reset t =
  Hashtbl.iter
    (fun _ (inst, _) ->
      match inst with
      | Counter c -> c.c_value <- 0
      | Gauge g -> g.g_value <- 0
      | Histogram h ->
        Array.fill h.h_buckets 0 n_hist_buckets 0;
        h.h_count <- 0;
        h.h_sum <- 0;
        h.h_max <- 0)
    t.instruments

let sorted t =
  Hashtbl.fold (fun name (inst, help) acc -> (name, inst, help) :: acc) t.instruments []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

type view =
  | View_counter of int
  | View_gauge of int
  | View_histogram of { v_count : int; v_sum : int; v_max : int; v_buckets : int array }

let views t =
  List.map
    (fun (name, inst, _) ->
      match inst with
      | Counter c -> (name, View_counter c.c_value)
      | Gauge g -> (name, View_gauge g.g_value)
      | Histogram h ->
        ( name,
          View_histogram
            {
              v_count = h.h_count;
              v_sum = h.h_sum;
              v_max = h.h_max;
              v_buckets = Array.copy h.h_buckets;
            } ))
    (sorted t)

let dump t =
  let buf = Buffer.create 1024 in
  let width =
    List.fold_left (fun w (n, _, _) -> max w (String.length n)) 0 (sorted t)
  in
  List.iter
    (fun (name, inst, help) ->
      let pad = String.make (max 1 (width - String.length name + 2)) ' ' in
      (match inst with
      | Counter c ->
        Buffer.add_string buf (Printf.sprintf "counter  %s%s%d" name pad c.c_value)
      | Gauge g ->
        Buffer.add_string buf (Printf.sprintf "gauge    %s%s%d" name pad g.g_value)
      | Histogram h ->
        Buffer.add_string buf
          (Printf.sprintf "hist     %s%scount=%d sum=%d max=%d" name pad h.h_count
             h.h_sum h.h_max);
        Array.iteri
          (fun b n ->
            if n > 0 then begin
              let lo, hi = hist_bucket_bounds b in
              let range =
                if b = 0 then "        <=0"
                else if hi = max_int then Printf.sprintf "%9d..." lo
                else if lo = hi then Printf.sprintf "%11d" lo
                else Printf.sprintf "%5d..%4d" lo hi
              in
              Buffer.add_string buf (Printf.sprintf "\n           %s  %d" range n)
            end)
          h.h_buckets);
      if help <> "" then Buffer.add_string buf ("    # " ^ help);
      Buffer.add_char buf '\n')
    (sorted t);
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 1024 in
  let counters, gauges, hists =
    List.fold_left
      (fun (cs, gs, hs) (name, inst, _) ->
        match inst with
        | Counter c -> ((name, c) :: cs, gs, hs)
        | Gauge g -> (cs, (name, g) :: gs, hs)
        | Histogram h -> (cs, gs, (name, h) :: hs))
      ([], [], []) (List.rev (sorted t))
  in
  Jsonbuf.obj buf
    [
      ( "counters",
        fun () ->
          Jsonbuf.obj buf
            (List.map
               (fun (n, c) -> (n, fun () -> Jsonbuf.int buf c.c_value))
               counters) );
      ( "gauges",
        fun () ->
          Jsonbuf.obj buf
            (List.map (fun (n, g) -> (n, fun () -> Jsonbuf.int buf g.g_value)) gauges)
      );
      ( "histograms",
        fun () ->
          Jsonbuf.obj buf
            (List.map
               (fun (n, h) ->
                 ( n,
                   fun () ->
                     let buckets =
                       Array.to_list
                         (Array.mapi (fun b c -> (b, c)) h.h_buckets)
                       |> List.filter (fun (_, c) -> c > 0)
                     in
                     Jsonbuf.obj buf
                       [
                         ("count", fun () -> Jsonbuf.int buf h.h_count);
                         ("sum", fun () -> Jsonbuf.int buf h.h_sum);
                         ("max", fun () -> Jsonbuf.int buf h.h_max);
                         ( "buckets",
                           fun () ->
                             Jsonbuf.arr buf buckets (fun (b, c) ->
                                 let lo, hi = hist_bucket_bounds b in
                                 Jsonbuf.obj buf
                                   [
                                     ("lo", fun () -> Jsonbuf.int buf lo);
                                     ( "hi",
                                       fun () ->
                                         Jsonbuf.int buf (if hi = max_int then -1 else hi)
                                     );
                                     ("count", fun () -> Jsonbuf.int buf c);
                                   ]) );
                       ] ))
               hists) );
    ];
  Buffer.contents buf

let save t path =
  let write oc = output_string oc (to_json t) in
  (* /dev/stdout via open_out would write through a second fd whose
     offset races the buffered report already on stdout; route it (and
     "-") through the stdout channel instead. *)
  if path = "-" || path = "/dev/stdout" then begin
    write stdout;
    flush stdout
  end
  else
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc)
