(** Span-based phase tracing with Chrome [trace_event] export.

    A tracer collects completed spans — named intervals with
    microsecond timestamps, nesting depth, and optional string
    arguments. Timestamps come from [Unix.gettimeofday] clamped to be
    non-decreasing and rebased to the first observation.

    Tracers start {e disabled}: {!with_span} on a disabled tracer runs
    its thunk with no timing, no allocation beyond the closure, and no
    recording, so the pass instrumentation threaded through the
    analysis pipeline is free unless an exporter turned tracing on.

    The export is the Chrome trace-event JSON format: open the file in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}. *)

type t

type span = {
  s_name : string;
  s_cat : string;
  s_start_us : float;  (** microseconds since the tracer epoch *)
  s_dur_us : float;
  s_depth : int;  (** nesting depth at the time the span opened *)
  s_args : (string * string) list;
}

val create : unit -> t
(** A fresh, disabled tracer. *)

val default : t
(** The process-wide tracer the pipeline's pass spans record into. *)

val enabled : t -> bool

val set_enabled : t -> bool -> unit

val clear : t -> unit

val with_span :
  ?t:t -> ?cat:string -> ?args:(string * string) list -> string ->
  (unit -> 'a) -> 'a
(** [with_span name f] times [f ()] as one span (recorded even when
    [f] raises). Defaults to the {!default} tracer, category
    ["gprof"]. *)

val instant :
  ?t:t -> ?cat:string -> ?args:(string * string) list -> string -> unit
(** A zero-duration marker. *)

val spans : t -> span list
(** Completed spans in start order. *)

val span_count : t -> int

val to_chrome_json : t -> string
(** [{"displayTimeUnit":"ms","traceEvents":[...]}] with one complete
    ("X") event per span, pid/tid 1. *)

val save_chrome : t -> string -> unit
(** Write {!to_chrome_json} to a file; ["-"] or ["/dev/stdout"]
    writes to stdout. *)

val summary : t -> string
(** Human-readable wall-time table, indented by nesting depth — the
    self-profiling report. *)
