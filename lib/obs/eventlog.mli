(** Leveled, structured JSONL event logging for long-running
    processes.

    Each record is one complete JSON line written with a single
    [write] — records never interleave mid-line the way ad-hoc
    [eprintf] fragments can — and carries a per-log monotonic [seq],
    a wall-clock [ts] (seconds, microsecond precision), a [level],
    and an [event] kind, plus caller fields:

    {v {"seq":42,"ts":1754650000.123456,"level":"warn","event":"shed","label":"web-7"} v}

    Events below the log's minimum level are dropped without
    allocating (and without consuming a sequence number). *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string
val level_of_string : string -> level option

(** One field value. *)
type field = S of string | I of int | F of float | B of bool

type t

val null : t
(** Drops everything. *)

val to_stderr : ?level:level -> unit -> t
(** JSONL to stderr — the daemon's default when no [--log FILE] is
    given. [level] defaults to [Info]. *)

val open_file : ?level:level -> string -> (t, string) result
(** Append-mode JSONL file. *)

val close : t -> unit

val seq : t -> int
(** The next sequence number (= events emitted so far). *)

val would_log : t -> level -> bool

val event : ?level:level -> t -> string -> (string * field) list -> unit
(** [event t kind fields] appends one record; [level] defaults to
    [Info]. *)

val debug : t -> string -> (string * field) list -> unit
val info : t -> string -> (string * field) list -> unit
val warn : t -> string -> (string * field) list -> unit
val error : t -> string -> (string * field) list -> unit
