(** Minimal JSON emission helpers shared by the metrics and trace
    exporters. *)

val escape : Buffer.t -> string -> unit
(** Emit a JSON string literal, quoting and escaping as needed. *)

val int : Buffer.t -> int -> unit

val float : Buffer.t -> float -> unit
(** Plain decimal notation (no exponent), 3 fractional digits. *)

val obj : Buffer.t -> (string * (unit -> unit)) list -> unit
(** [obj buf fields] emits [{"k":v,...}]; each field's value is
    produced by its thunk. *)

val arr : Buffer.t -> 'a list -> ('a -> unit) -> unit
(** [arr buf xs each] emits [[...]] calling [each] per element. *)
