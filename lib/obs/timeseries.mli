(** The telemetry time-series: append-only, per-line-checksummed
    JSONL of {!Snapshot} records.

    Every line is one valid JSON object:

    {v {"crc":"<16 hex FNV-1a-64>","rec":{"seq":N,"ts":T,"metrics":{...}}} v}

    where [crc] covers the serialized [rec] value byte for byte.
    Lines verify independently, so a torn tail or a flipped byte
    costs exactly the damaged lines; the reader keeps the rest and
    reports the damage. [seq] is monotonic within a file and
    continues across daemon restarts (the writer resumes after the
    highest intact record). *)

type record = { r_seq : int; r_ts : float; r_metrics : Snapshot.t }

val encode_line : seq:int -> ts:float -> Snapshot.t -> string
(** One line, without the trailing newline. *)

val decode_line : string -> (record, string) result
(** Verify the checksum and parse; [Error] names what failed. *)

val read : string -> (record list * string list, string) result
(** All intact records in file order, plus one complaint per damaged
    line. [Error] only when the file itself cannot be read. *)

(** {1 Writing} *)

type writer

val open_writer : string -> (writer, string) result
(** Append mode; the next sequence number continues after the highest
    intact record already in the file. *)

val append : writer -> ts:float -> Snapshot.t -> (int, string) result
(** Append one record (flushed); returns the sequence number used. *)

val close_writer : writer -> unit
