(* The structured event log: leveled JSONL with a monotonic sequence
   number per log.

   This replaces ad-hoc Printf.eprintf lines in long-running daemons.
   Two properties the ad-hoc prints lacked: every event is one
   machine-parseable JSON object (no interleaving of partial lines —
   each record is a single write of a complete line), and every event
   carries a sequence number, so a consumer can detect gaps and order
   records even when timestamps tie. *)

type level = Debug | Info | Warn | Error

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type field =
  | S of string
  | I of int
  | F of float
  | B of bool

type sink = Silent | Stderr | Channel of out_channel

type t = {
  sink : sink;
  min_level : level;
  mutable seq : int;
  owned : bool;  (* close the channel on close? *)
}

let null = { sink = Silent; min_level = Error; seq = 0; owned = false }

let to_stderr ?(level = Info) () =
  { sink = Stderr; min_level = level; seq = 0; owned = false }

let open_file ?(level = Info) path =
  match open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path with
  | oc -> Ok { sink = Channel oc; min_level = level; seq = 0; owned = true }
  | exception Sys_error e -> Error e

let close t =
  match t.sink with
  | Channel oc when t.owned -> ( try close_out oc with Sys_error _ -> ())
  | _ -> ()

let seq t = t.seq

let would_log t level = t.sink <> Silent && level_rank level >= level_rank t.min_level

let event ?(level = Info) t kind fields =
  if would_log t level then begin
    let s = t.seq in
    t.seq <- s + 1;
    let buf = Buffer.create 128 in
    Jsonbuf.obj buf
      ([
         ("seq", fun () -> Jsonbuf.int buf s);
         ( "ts",
           fun () ->
             Buffer.add_string buf
               (Printf.sprintf "%.6f" (Unix.gettimeofday ())) );
         ("level", fun () -> Jsonbuf.escape buf (level_to_string level));
         ("event", fun () -> Jsonbuf.escape buf kind);
       ]
      @ List.map
          (fun (k, v) ->
            ( k,
              fun () ->
                match v with
                | S s -> Jsonbuf.escape buf s
                | I i -> Jsonbuf.int buf i
                | F f -> Buffer.add_string buf (Printf.sprintf "%.6f" f)
                | B b -> Buffer.add_string buf (if b then "true" else "false")
            ))
          fields);
    Buffer.add_char buf '\n';
    let line = Buffer.contents buf in
    (* one write per record: lines stay atomic under concurrent
       connection handling and (for short lines) concurrent appenders *)
    match t.sink with
    | Silent -> ()
    | Stderr ->
      output_string stderr line;
      flush stderr
    | Channel oc -> (
      try
        output_string oc line;
        flush oc
      with Sys_error _ -> ())
  end

let debug t kind fields = event ~level:Debug t kind fields
let info t kind fields = event ~level:Info t kind fields
let warn t kind fields = event ~level:Warn t kind fields
let error t kind fields = event ~level:Error t kind fields
