(** Minimal JSON parsing — the read-side twin of {!Jsonbuf}, used by
    {!Snapshot.of_json}, the telemetry replayer, and proftop to read
    back what the obs layer wrote. *)

type value =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of value list
  | Obj of (string * value) list
      (** Fields in document order; duplicate keys are kept. *)

exception Bad of string * int
(** Parse failure: message and byte offset. *)

val parse_exn : string -> value
(** Parse one complete JSON value (trailing whitespace allowed).
    @raise Bad on malformed input. *)

val parse : string -> (value, string) result

(** {1 Accessors} — shallow, [None] on shape mismatch. *)

val member : string -> value -> value option
(** First field with that key of an [Obj]. *)

val to_int : value -> int option
(** [Int], or a [Float] with integral value. *)

val to_float : value -> float option
(** [Float], or an [Int] widened. *)

val to_string : value -> string option
val to_list : value -> value list option
val to_obj : value -> (string * value) list option
