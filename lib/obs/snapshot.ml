(* An immutable, serializable capture of a metrics registry.

   The registry itself is live state; a snapshot is the unit a client
   can hold, ship, store, and subtract. Its JSON form is exactly the
   shape Metrics.to_json has always emitted, so every existing
   consumer of --obs-metrics files keeps working, and of_json closes
   the loop: anything the obs layer wrote can be read back and
   diffed. *)

type hist = {
  h_count : int;
  h_sum : int;
  h_max : int;
  h_buckets : (int * int) list;  (* (bucket index, count), ascending, > 0 *)
}

type t = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * hist) list;
}

let empty = { counters = []; gauges = []; histograms = [] }

let of_registry reg =
  let counters = ref [] and gauges = ref [] and hists = ref [] in
  List.iter
    (fun (name, view) ->
      match (view : Metrics.view) with
      | Metrics.View_counter v -> counters := (name, v) :: !counters
      | Metrics.View_gauge v -> gauges := (name, v) :: !gauges
      | Metrics.View_histogram { v_count; v_sum; v_max; v_buckets } ->
        let buckets = ref [] in
        Array.iteri
          (fun b c -> if c > 0 then buckets := (b, c) :: !buckets)
          v_buckets;
        hists :=
          ( name,
            {
              h_count = v_count;
              h_sum = v_sum;
              h_max = v_max;
              h_buckets = List.rev !buckets;
            } )
          :: !hists)
    (Metrics.views reg);
  {
    counters = List.rev !counters;
    gauges = List.rev !gauges;
    histograms = List.rev !hists;
  }

let find_counter t name = List.assoc_opt name t.counters
let find_gauge t name = List.assoc_opt name t.gauges
let find_hist t name = List.assoc_opt name t.histograms

(* --- JSON, both directions --------------------------------------------- *)

(* Byte-identical to Metrics.to_json over the same state: same field
   order (name-sorted within each class), same bucket encoding
   (inclusive lo/hi, hi = -1 for the unbounded top bucket). *)
let to_json t =
  let buf = Buffer.create 1024 in
  Jsonbuf.obj buf
    [
      ( "counters",
        fun () ->
          Jsonbuf.obj buf
            (List.map (fun (n, v) -> (n, fun () -> Jsonbuf.int buf v)) t.counters)
      );
      ( "gauges",
        fun () ->
          Jsonbuf.obj buf
            (List.map (fun (n, v) -> (n, fun () -> Jsonbuf.int buf v)) t.gauges)
      );
      ( "histograms",
        fun () ->
          Jsonbuf.obj buf
            (List.map
               (fun (n, h) ->
                 ( n,
                   fun () ->
                     Jsonbuf.obj buf
                       [
                         ("count", fun () -> Jsonbuf.int buf h.h_count);
                         ("sum", fun () -> Jsonbuf.int buf h.h_sum);
                         ("max", fun () -> Jsonbuf.int buf h.h_max);
                         ( "buckets",
                           fun () ->
                             Jsonbuf.arr buf h.h_buckets (fun (b, c) ->
                                 let lo, hi = Metrics.hist_bucket_bounds b in
                                 Jsonbuf.obj buf
                                   [
                                     ("lo", fun () -> Jsonbuf.int buf lo);
                                     ( "hi",
                                       fun () ->
                                         Jsonbuf.int buf
                                           (if hi = max_int then -1 else hi) );
                                     ("count", fun () -> Jsonbuf.int buf c);
                                   ]) );
                       ] ))
               t.histograms) );
    ];
  Buffer.contents buf

let of_value v =
  let ( let* ) = Result.bind in
  let int_fields section v =
    match Jsonin.to_obj v with
    | None -> Error (Printf.sprintf "%S is not an object" section)
    | Some fields ->
      List.fold_left
        (fun acc (name, v) ->
          let* acc = acc in
          match Jsonin.to_int v with
          | Some i -> Ok ((name, i) :: acc)
          | None -> Error (Printf.sprintf "%s %S is not an integer" section name))
        (Ok []) fields
      |> Result.map List.rev
  in
  let bucket name v =
    match
      ( Option.bind (Jsonin.member "lo" v) Jsonin.to_int,
        Option.bind (Jsonin.member "hi" v) Jsonin.to_int,
        Option.bind (Jsonin.member "count" v) Jsonin.to_int )
    with
    | Some lo, Some hi, Some count ->
      (* the bucket index is recoverable from its lower bound: bucket 0
         starts at 0, bucket b >= 1 at 2^(b-1) *)
      let b = Metrics.hist_bucket_of lo in
      let want_lo, want_hi = Metrics.hist_bucket_bounds b in
      if lo <> want_lo || (hi <> want_hi && not (hi = -1 && want_hi = max_int))
      then
        Error
          (Printf.sprintf "histogram %S: bucket [%d,%d] is not a log2 bucket"
             name lo hi)
      else Ok (b, count)
    | _ -> Error (Printf.sprintf "histogram %S: malformed bucket" name)
  in
  let histogram (name, v) =
    match
      ( Option.bind (Jsonin.member "count" v) Jsonin.to_int,
        Option.bind (Jsonin.member "sum" v) Jsonin.to_int,
        Option.bind (Jsonin.member "max" v) Jsonin.to_int,
        Option.bind (Jsonin.member "buckets" v) Jsonin.to_list )
    with
    | Some count, Some sum, Some max, Some buckets ->
      let* bs =
        List.fold_left
          (fun acc bv ->
            let* acc = acc in
            let* b = bucket name bv in
            Ok (b :: acc))
          (Ok []) buckets
      in
      Ok
        ( name,
          { h_count = count; h_sum = sum; h_max = max; h_buckets = List.rev bs }
        )
    | _ -> Error (Printf.sprintf "histogram %S: missing count/sum/max/buckets" name)
  in
  match
    ( Jsonin.member "counters" v,
      Jsonin.member "gauges" v,
      Jsonin.member "histograms" v )
  with
  | Some cs, Some gs, Some hs ->
    let* counters = int_fields "counters" cs in
    let* gauges = int_fields "gauges" gs in
    let* hfields =
      match Jsonin.to_obj hs with
      | Some fields -> Ok fields
      | None -> Error "\"histograms\" is not an object"
    in
    let* histograms =
      List.fold_left
        (fun acc f ->
          let* acc = acc in
          let* h = histogram f in
          Ok (h :: acc))
        (Ok []) hfields
      |> Result.map List.rev
    in
    Ok { counters; gauges; histograms }
  | _ -> Error "not a metrics snapshot (missing counters/gauges/histograms)"

let of_json s = Result.bind (Jsonin.parse s) of_value

(* --- delta arithmetic --------------------------------------------------- *)

(* What changed between two polls. Counter and histogram entries are
   subtracted (a name missing from [before] counts from zero — a
   counter registered between the polls); gauges are last-write-wins,
   so the diff simply carries [after]'s value. The result covers
   [after]'s name set: an instrument that vanished (registry reset)
   is dropped rather than reported as a negative ghost. *)
let diff ~before ~after =
  let counters =
    List.map
      (fun (n, v) ->
        (n, v - Option.value ~default:0 (find_counter before n)))
      after.counters
  in
  let histograms =
    List.map
      (fun (n, h) ->
        match find_hist before n with
        | None -> (n, h)
        | Some b ->
          let rec sub bs hs =
            match (bs, hs) with
            | [], hs -> hs
            | _, [] -> []  (* a bucket drained: registry reset; drop it *)
            | (bb, bc) :: brest, (hb, hc) :: hrest ->
              if hb < bb then (hb, hc) :: sub bs hrest
              else if hb > bb then sub brest hs
              else
                let d = hc - bc in
                if d > 0 then (hb, d) :: sub brest hrest else sub brest hrest
          in
          ( n,
            {
              h_count = h.h_count - b.h_count;
              h_sum = h.h_sum - b.h_sum;
              (* the window's max is unknowable from cumulative state:
                 report the cumulative max when the window saw samples *)
              h_max = (if h.h_count > b.h_count then h.h_max else 0);
              h_buckets = sub b.h_buckets h.h_buckets;
            } ))
      after.histograms
  in
  { counters; gauges = after.gauges; histograms }

let rates ~elapsed t =
  if elapsed <= 0.0 then []
  else List.map (fun (n, v) -> (n, float_of_int v /. elapsed)) t.counters

let monotonic_violations ~before ~after =
  List.filter_map
    (fun (n, v) ->
      match find_counter before n with
      | Some b when v < b -> Some (n, b, v)
      | _ -> None)
    after.counters
  @ List.filter_map
      (fun (n, h) ->
        match find_hist before n with
        | Some b when h.h_count < b.h_count ->
          Some (n ^ ".count", b.h_count, h.h_count)
        | _ -> None)
      after.histograms

(* --- quantiles from log2 buckets --------------------------------------- *)

(* An estimate, honest about its resolution: find the bucket holding
   the q-th sample and interpolate linearly inside its [lo, hi] range.
   The unbounded top bucket is clamped to the observed max. Exact
   enough for a live monitor — the bucket bounds themselves bound the
   error to a factor of two. *)
let hist_quantile h q =
  if h.h_count <= 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let want = q *. float_of_int h.h_count in
    let rec locate seen = function
      | [] -> float_of_int h.h_max
      | (b, c) :: rest ->
        let seen' = seen + c in
        if float_of_int seen' >= want || rest = [] then begin
          let lo, hi = Metrics.hist_bucket_bounds b in
          let hi = if hi = max_int then max lo h.h_max else hi in
          let inside =
            if c = 0 then 0.0
            else (want -. float_of_int seen) /. float_of_int c
          in
          float_of_int lo
          +. (Float.max 0.0 (Float.min 1.0 inside) *. float_of_int (hi - lo))
        end
        else locate seen' rest
    in
    locate 0 h.h_buckets
  end
