(** The sharded, append-only profile store.

    The paper's observation that "data from several runs can be
    summed" scales badly when the runs arrive continuously from a
    fleet: a one-shot [merge_all] over files re-reads and re-merges
    everything on every question. The store gives ingested profiles a
    durable home with incremental summing:

    - {b Segments}: every accepted profile lands as its own segment
      file in one of [n] shard directories (shard = FNV-1a hash of the
      submission label). Segments are ordinary gmon payloads — framed
      and checksummed by {!Gmon.Wire}, written with the crash-safe
      temp-and-rename writer — so a kill at any instant leaves either
      a complete, verifiable segment or nothing.
    - {b Compaction}: a balanced k-way merge ({!Gmon.merge_all}'s
      pairwise tree) folds a shard's compacted profile plus its tail
      of segments into one [compact-<seq>.gmon] — named by the highest
      segment sequence folded into it — then deletes the folded
      segments. The fold is an exact integer sum, so compaction never
      changes the merged view, and the sequence number in the file
      name lets recovery drop stale leftovers without double-counting.
    - {b Queries} serve from the compacted profile plus the
      uncompacted tail. The merged view of each shard is cached and
      invalidated only when a new segment lands; hits and misses are
      published as [store.cache.hits]/[store.cache.misses].
    - {b Quarantine}: undecodable submissions and unrecoverable torn
      segments are moved aside with their diagnostics instead of
      poisoning the shard.

    Invariant (tested end to end): for any set of runs, the store's
    merged view is {!Gmon.equal} to the offline {!Gmon.merge_all} of
    the same files, whatever the interleaving of appends, compactions,
    restarts, and crashes between them. *)

type t

type open_report = {
  or_created : bool;  (** fresh store (no prior manifest or segments) *)
  or_segments : int;  (** intact tail segments recovered *)
  or_compacted : int;  (** shards holding a compacted profile *)
  or_salvaged : int;  (** torn segments recovered with data loss *)
  or_quarantined : Gmon.quarantined list;
      (** segments that decoded to nothing and were moved aside *)
  or_notes : string list;  (** human diagnostics, e.g. a rebuilt manifest *)
}
(** What opening found on disk. A store that was killed mid-ingest
    reports its losses here: fully-written segments always survive
    (atomic writes), a torn tail is salvaged when its valid prefix
    decodes and quarantined when it does not. *)

val open_report_degraded : open_report -> bool

val open_report_summary : open_report -> string
(** One line; [""] when recovery was clean. *)

val default_shards : int

val open_ : ?shards:int -> string -> (t * open_report, string) result
(** Open a store directory, creating it (and its manifest) when
    empty. [shards] applies only to creation — an existing store keeps
    the shard count in its manifest, because the label-to-shard map
    depends on it. *)

val dir : t -> string

val n_shards : t -> int

val shard_of_label : t -> string -> int

val append : t -> label:string -> Gmon.t -> (unit, string) result
(** Durably add one profile to [label]'s shard as a new segment.
    The write is atomic; the shard's cached merged view is
    invalidated. *)

val append_sprof : t -> label:string -> Gmon.Sprof.t -> (unit, string) result
(** Durably add one sampled profile to [label]'s shard on the sampled
    track ([sseg-*.sprof] segments). Same atomicity and cache
    invalidation as {!append}; the two tracks share a shard but never
    mix payloads. *)

val append_bytes :
  t ->
  label:string ->
  string ->
  ([ `Stored | `Quarantined of string ], string) result
(** Decode an untrusted submission strictly and append it, routing by
    magic: sprof payloads go to the sampled track, everything else is
    decoded as an arc profile. Undecodable bytes are written to the
    quarantine directory with their per-file diagnostics —
    [`Quarantined reason] — and never fail the store. [Error] is
    reserved for IO failures. *)

val shard_view : t -> int -> (Gmon.t option, string) result
(** Merged profile of one shard: compacted state plus the uncompacted
    tail, [None] when the shard is empty. Served from the cache when
    no segment landed since the last call. *)

val merged : t -> (Gmon.t option, string) result
(** Merged profile of the whole store ({!shard_view} over every
    shard, summed). *)

val sprof_shard_view : t -> int -> (Gmon.Sprof.t option, string) result
(** Merged sampled profile of one shard's sampled track; cached like
    {!shard_view}. *)

val merged_sprof : t -> (Gmon.Sprof.t option, string) result
(** Merged sampled profile of the whole store. Because the sprof merge
    is canonical, this serializes byte-identically to
    {!Gmon.Sprof.merge_all} over the originally submitted files,
    whatever the interleaving of appends, compactions, and restarts
    (tested; [make sample-smoke] checks it with [cmp] against a live
    daemon). *)

val compact : t -> (int, string) result
(** Fold every shard's tail into its compacted profile — both tracks;
    returns the number of segments folded. The atomic rename of the new
    [compact-<seq>.gmon] is the commit point: a crash before it loses
    nothing (old compact and segments survive), and a crash after it
    leaves only stale files whose sequence numbers identify them as
    already folded, which recovery removes instead of double-merging. *)

type stats = {
  st_shards : int;
  st_segments : int;  (** uncompacted tail segments on disk *)
  st_compacted_runs : int;  (** runs folded into compact profiles *)
  st_total_runs : int;  (** compacted + tail *)
  st_sprof_segments : int;  (** uncompacted sampled-track segments *)
  st_sprof_runs : int;  (** sampled-profile runs, compacted + tail *)
  st_quarantined : int;  (** files in quarantine/ *)
  st_cache_hits : int;
  st_cache_misses : int;
  st_disk_bytes : int;  (** segment + compact bytes on disk *)
}

val stats : t -> stats

val stats_to_json : stats -> string

type shard_info = {
  si_index : int;
  si_segments : int;  (** uncompacted arc-track tail segments *)
  si_sprof_segments : int;  (** uncompacted sampled-track tail segments *)
  si_compact_seq : int;  (** highest folded arc-track seq; 0 = never compacted *)
  si_scompact_seq : int;  (** same, sampled track *)
}

val shard_info : t -> shard_info list
(** Per-shard occupancy, in shard order — what a live monitor renders
    and the health RPC reports. *)

val last_compact_seq : t -> int
(** Highest sequence number any shard has folded into a compact
    profile (either track); 0 when no compaction has ever run. *)

val top_buckets : t -> n:int -> ((int * int * int) list, string) result
(** Top-N histogram buckets of the merged view by self ticks, as
    [(addr_lo, addr_hi, ticks)], heaviest first. The store is
    symbol-free; callers with an executable resolve names
    (gprofx [--store]). *)

val arc_totals : t -> ((int * int * int) list, string) result
(** Every arc of the merged view as [(from, self, count)], sorted. *)

val quarantine_dir : t -> string

val sync : t -> (unit, string) result
(** Fsync the store's directories so every acknowledged append — the
    renames the atomic writer relies on — survives a power cut. The
    daemon calls this once on graceful drain; filesystems that refuse
    directory fsync are treated as clean. *)
