(* The sharded, append-only profile store. See store.mli for the
   design contract; the layout on disk is

     DIR/MANIFEST                versioned header naming the shard count
     DIR/shard-NNN/seg-S.gmon    uncompacted tail segments (whole gmon
                                 payloads, checksum-framed, atomic)
     DIR/shard-NNN/compact-S.gmon  the shard's folded profile; S is the
                                 highest segment sequence folded into it
     DIR/quarantine/q-*.bin      rejected submissions + .reason sidecars

   Everything durable goes through Gmon's crash-safe writer, so every
   file is either complete and checksummed or absent — recovery is a
   directory scan, not a log replay. The folded-through sequence number
   in the compact file's own name is what makes the scan unambiguous: a
   crash between "rename compact-N into place" and "delete the folded
   segments" leaves segments with seq <= N on disk, and recovery knows
   they are already counted and removes them instead of double-merging
   them. *)

type shard = {
  sh_index : int;
  sh_dir : string;
  (* tail segments: (sequence, path, runs), oldest first *)
  mutable sh_segments : (int * string * int) list;
  mutable sh_next_seq : int;
  mutable sh_compact : Gmon.t option;
  mutable sh_compact_seq : int;  (* 0 = no compact file *)
  (* memoized merged view; [None] = invalid, [Some v] = computed
     (where [v = None] means the shard is empty) *)
  mutable sh_cache : Gmon.t option option;
  (* the sampled-profile track: same lifecycle as the arc track, in
     sseg-/scompact- files, so one shard can hold both kinds of
     submissions for a label without either poisoning the other *)
  mutable sh_ssegments : (int * string * int) list;
  mutable sh_snext_seq : int;
  mutable sh_scompact : Gmon.Sprof.t option;
  mutable sh_scompact_seq : int;
  mutable sh_scache : Gmon.Sprof.t option option;
}

type t = {
  dir : string;
  n_shards : int;
  shards : shard array;
  mutable next_quarantine : int;
}

type open_report = {
  or_created : bool;
  or_segments : int;
  or_compacted : int;
  or_salvaged : int;
  or_quarantined : Gmon.quarantined list;
  or_notes : string list;
}

let open_report_degraded r =
  r.or_salvaged > 0 || r.or_quarantined <> [] || r.or_notes <> []

let open_report_summary r =
  let part cond s = if cond then [ s ] else [] in
  String.concat "; "
    (part (r.or_salvaged > 0)
       (Printf.sprintf "%d torn file(s) salvaged" r.or_salvaged)
    @ part
        (r.or_quarantined <> [])
        (Printf.sprintf "%d file(s) quarantined" (List.length r.or_quarantined))
    @ r.or_notes)

let default_shards = 8

(* --- observability --------------------------------------------------- *)

let m_appends =
  Obs.Metrics.counter Obs.Metrics.default "store.appends"
    ~help:"profiles durably appended as segments"

let m_quarantined =
  Obs.Metrics.counter Obs.Metrics.default "store.quarantined"
    ~help:"submissions and torn files moved to quarantine"

let m_compactions = Obs.Metrics.counter Obs.Metrics.default "store.compactions"

let m_segments_folded =
  Obs.Metrics.counter Obs.Metrics.default "store.segments_folded"
    ~help:"tail segments folded into compact profiles"

let m_cache_hits =
  Obs.Metrics.counter Obs.Metrics.default "store.cache.hits"
    ~help:"shard queries served from the cached merged view"

let m_cache_misses =
  Obs.Metrics.counter Obs.Metrics.default "store.cache.misses"
    ~help:"shard queries that re-read and re-merged segments"

let m_recovered =
  Obs.Metrics.counter Obs.Metrics.default "store.recovered_segments"
    ~help:"intact segments found when opening a store"

let m_salvaged =
  Obs.Metrics.counter Obs.Metrics.default "store.salvaged_segments"
    ~help:"torn files recovered with data loss when opening a store"

(* --- paths and small helpers ----------------------------------------- *)

let manifest_magic = "PROFSTORE1\n"

let manifest_path dir = Filename.concat dir "MANIFEST"

let shard_dir dir i = Filename.concat dir (Printf.sprintf "shard-%03d" i)

let quarantine_dir_of dir = Filename.concat dir "quarantine"

let segment_path sh seq =
  Filename.concat sh.sh_dir (Printf.sprintf "seg-%08d.gmon" seq)

let compact_path sh seq =
  Filename.concat sh.sh_dir (Printf.sprintf "compact-%08d.gmon" seq)

let ssegment_path sh seq =
  Filename.concat sh.sh_dir (Printf.sprintf "sseg-%08d.sprof" seq)

let scompact_path sh seq =
  Filename.concat sh.sh_dir (Printf.sprintf "scompact-%08d.sprof" seq)

let scan_seq fmt name =
  try Scanf.sscanf name fmt (fun n -> Some n)
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let segment_seq name = scan_seq "seg-%d.gmon%!" name

let compact_seq name = scan_seq "compact-%d.gmon%!" name

let ssegment_seq name = scan_seq "sseg-%d.sprof%!" name

let scompact_seq name = scan_seq "scompact-%d.sprof%!" name

let mkdir_p path =
  let rec go p =
    if p <> "" && p <> "." && p <> "/" && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  try
    go path;
    if Sys.is_directory path then Ok ()
    else Error (Printf.sprintf "%s: exists and is not a directory" path)
  with Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "%s: cannot create: %s" path (Unix.error_message e))

let list_dir path =
  match Sys.readdir path with
  | entries -> List.sort compare (Array.to_list entries)
  | exception Sys_error _ -> []

let file_size path = match (Unix.stat path).st_size with n -> n | exception _ -> 0

let read_file path =
  try Some (In_channel.with_open_bin path In_channel.input_all)
  with Sys_error _ -> None

(* --- manifest --------------------------------------------------------- *)

let write_manifest dir ~shards =
  let buf = Buffer.create 64 in
  Buffer.add_string buf manifest_magic;
  Buffer.add_string buf (Printf.sprintf "shards %d\n" shards);
  Gmon.Wire.add_footer buf;
  Gmon.Wire.write_file_atomic ~what:"store manifest" (manifest_path dir)
    (Buffer.contents buf)

let read_manifest dir =
  match read_file (manifest_path dir) with
  | None -> `Missing
  | Some s -> (
    let state, body_len = Gmon.Wire.split_footer s in
    let mlen = String.length manifest_magic in
    if state <> `Ok then `Corrupt "checksum failure (torn write?)"
    else if body_len < mlen || String.sub s 0 mlen <> manifest_magic then
      `Corrupt "bad magic"
    else
      match
        Scanf.sscanf
          (String.sub s mlen (body_len - mlen))
          "shards %d\n%!"
          (fun n -> n)
      with
      | n when n >= 1 && n <= 4096 -> `Shards n
      | n -> `Corrupt (Printf.sprintf "absurd shard count %d" n)
      | exception _ -> `Corrupt "unparseable body")

(* --- quarantine ------------------------------------------------------- *)

let quarantine_bytes t ~origin ~reason bytes =
  let seq = t.next_quarantine in
  t.next_quarantine <- seq + 1;
  let base =
    Filename.concat (quarantine_dir_of t.dir) (Printf.sprintf "q-%06d" seq)
  in
  Obs.Metrics.incr m_quarantined;
  match
    Gmon.Wire.write_file_atomic ~what:"quarantined submission" (base ^ ".bin")
      bytes
  with
  | Error e -> Error e
  | Ok () ->
    (* the sidecar is advisory: losing it to a crash costs diagnostics,
       never data *)
    Gmon.Wire.write_file_atomic ~what:"quarantine reason" (base ^ ".reason")
      (Printf.sprintf "origin: %s\nreason: %s\n" origin reason)

(* --- opening and recovery -------------------------------------------- *)

type recovery = {
  mutable rv_segments : int;
  mutable rv_compacted : int;
  mutable rv_salvaged : int;
  mutable rv_quarantined : Gmon.quarantined list;
  mutable rv_notes : string list;
}

let quarantine_file t rv path reason =
  let bytes = Option.value ~default:"" (read_file path) in
  (match quarantine_bytes t ~origin:path ~reason bytes with
  | Ok () | Error _ -> ());
  (try Sys.remove path with Sys_error _ -> ());
  rv.rv_quarantined <- { Gmon.q_path = path; q_reason = reason } :: rv.rv_quarantined

(* Choose the shard's compacted state. Compact files are examined from
   the highest folded-through sequence down; the first that decodes
   strictly wins. A higher compact file that does not decode can only
   be the remains of an interrupted (or fault-injected) compaction
   whose segments were therefore never deleted, so its content is still
   covered by the lower compact plus the surviving segments — it is
   quarantined, not salvaged. Only when no compact file decodes at all
   is the newest one salvaged, since then its valid prefix is the best
   remaining evidence. Lower intact compact files are subsumed by the
   chosen one and removed. *)
(* Recovery is the same story for both tracks (arc profiles and
   sampled profiles), so it is written once against a codec record and
   instantiated per track. *)
type 'p codec = {
  c_load : string -> ('p, string) result;
  c_load_salvage : string -> ('p * Gmon.report, Gmon.decode_error) result;
  c_save : 'p -> string -> (unit, string) result;
  c_runs : 'p -> int;
}

let gmon_codec =
  {
    c_load = Gmon.load ~mode:`Strict;
    c_load_salvage = Gmon.load_report ~mode:`Salvage;
    c_save = Gmon.save;
    c_runs = (fun g -> g.Gmon.runs);
  }

let sprof_codec =
  {
    c_load = Gmon.Sprof.load ~mode:`Strict;
    c_load_salvage = Gmon.Sprof.load_report ~mode:`Salvage;
    c_save = Gmon.Sprof.save;
    c_runs = (fun (s : Gmon.Sprof.t) -> s.sp_runs);
  }

let recover_compacts c t rv ~set compacts =
  let ordered = List.sort (fun (a, _) (b, _) -> compare b a) compacts in
  let rec choose damaged = function
    | [] -> (
      (* nothing strict-clean; salvage the newest damaged one, if any *)
      match List.rev damaged with
      | [] -> ()
      | (seq, path) :: rest -> (
        List.iter
          (fun (_, p) ->
            quarantine_file t rv p "superseded torn compact profile")
          rest;
        match c.c_load_salvage path with
        | Ok (g, rep) ->
          (match c.c_save g path with Ok () | Error _ -> ());
          set g seq;
          Obs.Metrics.incr m_salvaged;
          rv.rv_compacted <- rv.rv_compacted + 1;
          rv.rv_salvaged <- rv.rv_salvaged + 1;
          rv.rv_notes <-
            Printf.sprintf "%s: salvaged (%s)" path (Gmon.report_summary rep)
            :: rv.rv_notes
        | Error e ->
          quarantine_file t rv path
            (Gmon.decode_error_to_string { e with de_path = None })))
    | (seq, path) :: rest -> (
      match c.c_load path with
      | Ok g ->
        set g seq;
        rv.rv_compacted <- rv.rv_compacted + 1;
        (* everything below is strictly subsumed; everything damaged
           above is covered by us + surviving segments *)
        List.iter
          (fun (_, p) ->
            quarantine_file t rv p "torn compact profile (interrupted \
                                    compaction; its segments survive)")
          (List.rev damaged);
        List.iter
          (fun (_, p) ->
            rv.rv_notes <-
              Printf.sprintf "%s: removed (subsumed by newer compaction)" p
              :: rv.rv_notes;
            try Sys.remove p with Sys_error _ -> ())
          rest
      | Error _ -> choose ((seq, path) :: damaged) rest)
  in
  choose [] ordered

(* One tail segment: keep it intact, salvage-rewrite it, or
   quarantine it. [compact_seq] identifies stale leftovers of an
   interrupted post-compaction delete. *)
let recover_segment c t rv ~compact_seq ~add path seq =
  if seq <= compact_seq then begin
    (* already folded into the compact profile: the remains of an
       interrupted post-compaction delete *)
    rv.rv_notes <-
      Printf.sprintf "%s: removed (already folded into compaction %d)" path
        compact_seq
      :: rv.rv_notes;
    try Sys.remove path with Sys_error _ -> ()
  end
  else
    match c.c_load path with
    | Ok g ->
      add (seq, path, c.c_runs g);
      Obs.Metrics.incr m_recovered;
      rv.rv_segments <- rv.rv_segments + 1
    | Error _ -> (
      match c.c_load_salvage path with
      | Ok (g, rep) ->
        (* rewrite the salvaged prefix so the segment is intact
           from here on; a failed rewrite keeps the torn file for
           the next recovery *)
        (match c.c_save g path with Ok () | Error _ -> ());
        add (seq, path, c.c_runs g);
        Obs.Metrics.incr m_salvaged;
        rv.rv_segments <- rv.rv_segments + 1;
        rv.rv_salvaged <- rv.rv_salvaged + 1;
        rv.rv_notes <-
          Printf.sprintf "%s: salvaged (%s)" path (Gmon.report_summary rep)
          :: rv.rv_notes
      | Error e ->
        quarantine_file t rv path
          (Gmon.decode_error_to_string { e with de_path = None }))

let recover_shard t rv sh =
  let entries = list_dir sh.sh_dir in
  let paths_matching scan =
    List.filter_map
      (fun name ->
        Option.map (fun seq -> (seq, Filename.concat sh.sh_dir name)) (scan name))
      entries
  in
  recover_compacts gmon_codec t rv
    ~set:(fun g seq ->
      sh.sh_compact <- Some g;
      sh.sh_compact_seq <- seq)
    (paths_matching compact_seq);
  recover_compacts sprof_codec t rv
    ~set:(fun s seq ->
      sh.sh_scompact <- Some s;
      sh.sh_scompact_seq <- seq)
    (paths_matching scompact_seq);
  List.iter
    (fun name ->
      match segment_seq name with
      | Some seq ->
        let path = Filename.concat sh.sh_dir name in
        sh.sh_next_seq <- max sh.sh_next_seq (seq + 1);
        recover_segment gmon_codec t rv ~compact_seq:sh.sh_compact_seq
          ~add:(fun s -> sh.sh_segments <- s :: sh.sh_segments)
          path seq
      | None -> (
        match ssegment_seq name with
        | Some seq ->
          let path = Filename.concat sh.sh_dir name in
          sh.sh_snext_seq <- max sh.sh_snext_seq (seq + 1);
          recover_segment sprof_codec t rv ~compact_seq:sh.sh_scompact_seq
            ~add:(fun s -> sh.sh_ssegments <- s :: sh.sh_ssegments)
            path seq
        | None -> () (* stray or temp file; leave it alone *)))
    entries;
  sh.sh_next_seq <- max sh.sh_next_seq (sh.sh_compact_seq + 1);
  sh.sh_segments <- List.sort compare sh.sh_segments;
  sh.sh_snext_seq <- max sh.sh_snext_seq (sh.sh_scompact_seq + 1);
  sh.sh_ssegments <- List.sort compare sh.sh_ssegments

let open_ ?(shards = default_shards) dir =
  if shards < 1 || shards > 4096 then
    Error (Printf.sprintf "store: absurd shard count %d" shards)
  else
    Obs.Trace.with_span ~cat:"store" "store-open" ~args:[ ("dir", dir) ]
    @@ fun () ->
    Result.bind (mkdir_p dir) @@ fun () ->
    let existing_shard_dirs =
      List.filter
        (fun name ->
          String.length name > 6
          && String.sub name 0 6 = "shard-"
          && Sys.is_directory (Filename.concat dir name))
        (list_dir dir)
    in
    let notes = ref [] in
    let created = ref false in
    let shard_count =
      match read_manifest dir with
      | `Shards n ->
        if List.length existing_shard_dirs <= n then Ok n
        else
          Error
            (Printf.sprintf
               "store %s: manifest says %d shard(s) but %d shard directories \
                exist"
               dir n
               (List.length existing_shard_dirs))
      | `Missing when existing_shard_dirs = [] ->
        (* a fresh store *)
        created := true;
        Result.map (fun () -> shards) (write_manifest dir ~shards)
      | `Missing ->
        (* segments exist but the manifest is gone: the shard count is
           load-bearing (it is the label-to-shard map), so rebuild it
           from the directories and say so *)
        let n = List.length existing_shard_dirs in
        notes :=
          Printf.sprintf "manifest missing; rebuilt for %d shard(s)" n :: !notes;
        Result.map (fun () -> n) (write_manifest dir ~shards:n)
      | `Corrupt why ->
        if existing_shard_dirs = [] then begin
          created := true;
          notes := Printf.sprintf "manifest corrupt (%s); recreated" why :: !notes;
          Result.map (fun () -> shards) (write_manifest dir ~shards)
        end
        else begin
          let n = List.length existing_shard_dirs in
          notes :=
            Printf.sprintf "manifest corrupt (%s); rebuilt for %d shard(s)" why n
            :: !notes;
          Result.map (fun () -> n) (write_manifest dir ~shards:n)
        end
    in
    Result.bind shard_count @@ fun n_shards ->
    Result.bind (mkdir_p (quarantine_dir_of dir)) @@ fun () ->
    let mk i =
      {
        sh_index = i;
        sh_dir = shard_dir dir i;
        sh_segments = [];
        sh_next_seq = 1;
        sh_compact = None;
        sh_compact_seq = 0;
        sh_cache = None;
        sh_ssegments = [];
        sh_snext_seq = 1;
        sh_scompact = None;
        sh_scompact_seq = 0;
        sh_scache = None;
      }
    in
    let shards_arr = Array.init n_shards mk in
    let rec make_dirs i =
      if i >= n_shards then Ok ()
      else
        match mkdir_p shards_arr.(i).sh_dir with
        | Error e -> Error e
        | Ok () -> make_dirs (i + 1)
    in
    Result.bind (make_dirs 0) @@ fun () ->
    let next_q =
      List.fold_left
        (fun acc name ->
          match scan_seq "q-%d.bin%!" name with
          | Some n -> max acc (n + 1)
          | None -> acc)
        1
        (list_dir (quarantine_dir_of dir))
    in
    let t = { dir; n_shards; shards = shards_arr; next_quarantine = next_q } in
    let rv =
      {
        rv_segments = 0;
        rv_compacted = 0;
        rv_salvaged = 0;
        rv_quarantined = [];
        rv_notes = [];
      }
    in
    Array.iter (recover_shard t rv) shards_arr;
    Ok
      ( t,
        {
          or_created = !created;
          or_segments = rv.rv_segments;
          or_compacted = rv.rv_compacted;
          or_salvaged = rv.rv_salvaged;
          or_quarantined = List.rev rv.rv_quarantined;
          or_notes = List.rev !notes @ List.rev rv.rv_notes;
        } )

let dir t = t.dir

let n_shards t = t.n_shards

let quarantine_dir t = quarantine_dir_of t.dir

let shard_of_label t label =
  Int64.to_int
    (Int64.rem
       (Int64.logand (Gmon.Wire.fnv1a64 label) Int64.max_int)
       (Int64.of_int t.n_shards))

(* --- appending -------------------------------------------------------- *)

let append t ~label g =
  let sh = t.shards.(shard_of_label t label) in
  let seq = sh.sh_next_seq in
  let path = segment_path sh seq in
  (* bump first: even a failed (torn) write may leave a file at this
     path, and a retry must not collide with it *)
  sh.sh_next_seq <- seq + 1;
  match Gmon.save g path with
  | Error e -> Error e
  | Ok () ->
    sh.sh_segments <- sh.sh_segments @ [ (seq, path, g.Gmon.runs) ];
    sh.sh_cache <- None;
    Obs.Metrics.incr m_appends;
    Ok ()

let append_sprof t ~label sp =
  let sh = t.shards.(shard_of_label t label) in
  let seq = sh.sh_snext_seq in
  let path = ssegment_path sh seq in
  (* bump first: even a failed (torn) write may leave a file at this
     path, and a retry must not collide with it *)
  sh.sh_snext_seq <- seq + 1;
  match Gmon.Sprof.save sp path with
  | Error e -> Error e
  | Ok () ->
    sh.sh_ssegments <- sh.sh_ssegments @ [ (seq, path, sp.Gmon.Sprof.sp_runs) ];
    sh.sh_scache <- None;
    Obs.Metrics.incr m_appends;
    Ok ()

(* Submissions are routed by magic: an sprof payload goes to the
   sampled track, anything else is tried as an arc profile. *)
let append_bytes t ~label bytes =
  if Gmon.Sprof.sniff_bytes bytes then
    match Gmon.Sprof.decode ~mode:`Strict bytes with
    | Ok (sp, _) -> Result.map (fun () -> `Stored) (append_sprof t ~label sp)
    | Error e ->
      let reason = Gmon.decode_error_to_string e in
      Result.map
        (fun () -> `Quarantined reason)
        (quarantine_bytes t ~origin:("submission " ^ label) ~reason bytes)
  else
    match Gmon.decode ~mode:`Strict bytes with
    | Ok (g, _) -> Result.map (fun () -> `Stored) (append t ~label g)
    | Error e ->
      let reason = Gmon.decode_error_to_string e in
      Result.map
        (fun () -> `Quarantined reason)
        (quarantine_bytes t ~origin:("submission " ^ label) ~reason bytes)

(* --- queries ---------------------------------------------------------- *)

let load_segments sh =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (_, path, _) :: rest -> (
      match Gmon.load path with
      | Ok g -> go (g :: acc) rest
      | Error e -> Error e)
  in
  go [] sh.sh_segments

let shard_view t i =
  if i < 0 || i >= t.n_shards then
    Error (Printf.sprintf "store: shard %d out of range [0,%d)" i t.n_shards)
  else
    let sh = t.shards.(i) in
    match sh.sh_cache with
    | Some v ->
      Obs.Metrics.incr m_cache_hits;
      Ok v
    | None -> (
      Obs.Metrics.incr m_cache_misses;
      Obs.Trace.with_span ~cat:"store" "store-shard-view"
        ~args:[ ("shard", string_of_int i) ]
      @@ fun () ->
      match load_segments sh with
      | Error e -> Error e
      | Ok tail -> (
        let parts =
          match sh.sh_compact with Some c -> c :: tail | None -> tail
        in
        match parts with
        | [] ->
          sh.sh_cache <- Some None;
          Ok None
        | parts -> (
          match Gmon.merge_all parts with
          | Error e -> Error e
          | Ok m ->
            sh.sh_cache <- Some (Some m);
            Ok (Some m))))

let merged t =
  let rec go acc i =
    if i >= t.n_shards then Ok (List.rev acc)
    else
      match shard_view t i with
      | Error e -> Error e
      | Ok None -> go acc (i + 1)
      | Ok (Some g) -> go (g :: acc) (i + 1)
  in
  match go [] 0 with
  | Error e -> Error e
  | Ok [] -> Ok None
  | Ok parts -> Result.map Option.some (Gmon.merge_all parts)

let load_ssegments sh =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (_, path, _) :: rest -> (
      match Gmon.Sprof.load path with
      | Ok s -> go (s :: acc) rest
      | Error e -> Error e)
  in
  go [] sh.sh_ssegments

let sprof_shard_view t i =
  if i < 0 || i >= t.n_shards then
    Error (Printf.sprintf "store: shard %d out of range [0,%d)" i t.n_shards)
  else
    let sh = t.shards.(i) in
    match sh.sh_scache with
    | Some v ->
      Obs.Metrics.incr m_cache_hits;
      Ok v
    | None -> (
      Obs.Metrics.incr m_cache_misses;
      Obs.Trace.with_span ~cat:"store" "store-sprof-shard-view"
        ~args:[ ("shard", string_of_int i) ]
      @@ fun () ->
      match load_ssegments sh with
      | Error e -> Error e
      | Ok tail -> (
        let parts =
          match sh.sh_scompact with Some c -> c :: tail | None -> tail
        in
        match parts with
        | [] ->
          sh.sh_scache <- Some None;
          Ok None
        | parts -> (
          match Gmon.Sprof.merge_all parts with
          | Error e -> Error e
          | Ok m ->
            sh.sh_scache <- Some (Some m);
            Ok (Some m))))

let merged_sprof t =
  let rec go acc i =
    if i >= t.n_shards then Ok (List.rev acc)
    else
      match sprof_shard_view t i with
      | Error e -> Error e
      | Ok None -> go acc (i + 1)
      | Ok (Some s) -> go (s :: acc) (i + 1)
  in
  match go [] 0 with
  | Error e -> Error e
  | Ok [] -> Ok None
  | Ok parts -> Result.map Option.some (Gmon.Sprof.merge_all parts)

(* --- compaction ------------------------------------------------------- *)

let compact_shard sh =
  match sh.sh_segments with
  | [] -> Ok 0
  | segs -> (
    match load_segments sh with
    | Error e -> Error e
    | Ok tail -> (
      let parts = match sh.sh_compact with Some c -> c :: tail | None -> tail in
      match Gmon.merge_all parts with
      | Error e -> Error e
      | Ok m -> (
        let folded_seq =
          List.fold_left (fun acc (s, _, _) -> max acc s) sh.sh_compact_seq segs
        in
        (* commit point: the rename of compact-<folded_seq> into place.
           A crash before it loses nothing (the old compact and every
           segment survive); a crash after it leaves stale segments
           with seq <= folded_seq and possibly the old compact file,
           all of which recovery identifies by sequence number and
           removes without double-counting. *)
        match Gmon.save m (compact_path sh folded_seq) with
        | Error e -> Error e
        | Ok () ->
          List.iter
            (fun (_, path, _) -> try Sys.remove path with Sys_error _ -> ())
            segs;
          if sh.sh_compact_seq > 0 then begin
            try Sys.remove (compact_path sh sh.sh_compact_seq)
            with Sys_error _ -> ()
          end;
          let n = List.length segs in
          sh.sh_segments <- [];
          sh.sh_compact <- Some m;
          sh.sh_compact_seq <- folded_seq;
          sh.sh_cache <- Some (Some m);
          Obs.Metrics.incr m_segments_folded ~by:n;
          Ok n)))

let compact_shard_sprof sh =
  match sh.sh_ssegments with
  | [] -> Ok 0
  | segs -> (
    match load_ssegments sh with
    | Error e -> Error e
    | Ok tail -> (
      let parts =
        match sh.sh_scompact with Some c -> c :: tail | None -> tail
      in
      match Gmon.Sprof.merge_all parts with
      | Error e -> Error e
      | Ok m -> (
        let folded_seq =
          List.fold_left (fun acc (s, _, _) -> max acc s) sh.sh_scompact_seq
            segs
        in
        (* same commit protocol as the arc track: the rename of
           scompact-<folded_seq> is the commit point *)
        match Gmon.Sprof.save m (scompact_path sh folded_seq) with
        | Error e -> Error e
        | Ok () ->
          List.iter
            (fun (_, path, _) -> try Sys.remove path with Sys_error _ -> ())
            segs;
          if sh.sh_scompact_seq > 0 then begin
            try Sys.remove (scompact_path sh sh.sh_scompact_seq)
            with Sys_error _ -> ()
          end;
          let n = List.length segs in
          sh.sh_ssegments <- [];
          sh.sh_scompact <- Some m;
          sh.sh_scompact_seq <- folded_seq;
          sh.sh_scache <- Some (Some m);
          Obs.Metrics.incr m_segments_folded ~by:n;
          Ok n)))

let compact t =
  Obs.Trace.with_span ~cat:"store" "store-compact" @@ fun () ->
  Obs.Metrics.incr m_compactions;
  let rec go acc i =
    if i >= t.n_shards then Ok acc
    else
      match compact_shard t.shards.(i) with
      | Error e -> Error e
      | Ok n -> (
        match compact_shard_sprof t.shards.(i) with
        | Error e -> Error e
        | Ok ns -> go (acc + n + ns) (i + 1))
  in
  go 0 0

(* --- stats ------------------------------------------------------------ *)

type stats = {
  st_shards : int;
  st_segments : int;
  st_compacted_runs : int;
  st_total_runs : int;
  st_sprof_segments : int;
  st_sprof_runs : int;
  st_quarantined : int;
  st_cache_hits : int;
  st_cache_misses : int;
  st_disk_bytes : int;
}

let stats t =
  let segments = ref 0 and compacted = ref 0 and tail_runs = ref 0 in
  let ssegments = ref 0 and sruns = ref 0 in
  let bytes = ref 0 in
  Array.iter
    (fun sh ->
      segments := !segments + List.length sh.sh_segments;
      List.iter
        (fun (_, path, runs) ->
          tail_runs := !tail_runs + runs;
          bytes := !bytes + file_size path)
        sh.sh_segments;
      (match sh.sh_compact with
      | Some c ->
        compacted := !compacted + c.Gmon.runs;
        bytes := !bytes + file_size (compact_path sh sh.sh_compact_seq)
      | None -> ());
      ssegments := !ssegments + List.length sh.sh_ssegments;
      List.iter
        (fun (_, path, runs) ->
          sruns := !sruns + runs;
          bytes := !bytes + file_size path)
        sh.sh_ssegments;
      match sh.sh_scompact with
      | Some c ->
        sruns := !sruns + c.Gmon.Sprof.sp_runs;
        bytes := !bytes + file_size (scompact_path sh sh.sh_scompact_seq)
      | None -> ())
    t.shards;
  let quarantined =
    List.length
      (List.filter
         (fun n -> Filename.check_suffix n ".bin")
         (list_dir (quarantine_dir t)))
  in
  {
    st_shards = t.n_shards;
    st_segments = !segments;
    st_compacted_runs = !compacted;
    st_total_runs = !compacted + !tail_runs;
    st_sprof_segments = !ssegments;
    st_sprof_runs = !sruns;
    st_quarantined = quarantined;
    st_cache_hits = Obs.Metrics.counter_value m_cache_hits;
    st_cache_misses = Obs.Metrics.counter_value m_cache_misses;
    st_disk_bytes = !bytes;
  }

type shard_info = {
  si_index : int;
  si_segments : int;
  si_sprof_segments : int;
  si_compact_seq : int;
  si_scompact_seq : int;
}

let shard_info t =
  Array.to_list
    (Array.map
       (fun sh ->
         {
           si_index = sh.sh_index;
           si_segments = List.length sh.sh_segments;
           si_sprof_segments = List.length sh.sh_ssegments;
           si_compact_seq = sh.sh_compact_seq;
           si_scompact_seq = sh.sh_scompact_seq;
         })
       t.shards)

let last_compact_seq t =
  Array.fold_left
    (fun acc sh -> max acc (max sh.sh_compact_seq sh.sh_scompact_seq))
    0 t.shards

let stats_to_json s =
  Printf.sprintf
    "{\"shards\":%d,\"segments\":%d,\"compacted_runs\":%d,\"total_runs\":%d,\
     \"sprof_segments\":%d,\"sprof_runs\":%d,\
     \"quarantined\":%d,\"cache_hits\":%d,\"cache_misses\":%d,\"disk_bytes\":%d}"
    s.st_shards s.st_segments s.st_compacted_runs s.st_total_runs
    s.st_sprof_segments s.st_sprof_runs s.st_quarantined s.st_cache_hits
    s.st_cache_misses s.st_disk_bytes

(* --- merged-view queries ---------------------------------------------- *)

let top_buckets t ~n =
  match merged t with
  | Error e -> Error e
  | Ok None -> Ok []
  | Ok (Some g) ->
    let nonzero = ref [] in
    Array.iteri
      (fun i c -> if c > 0 then nonzero := (i, c) :: !nonzero)
      g.Gmon.hist.h_counts;
    let sorted =
      List.sort (fun (i1, c1) (i2, c2) -> compare (-c1, i1) (-c2, i2)) !nonzero
    in
    let rec take k = function
      | [] -> []
      | _ when k <= 0 -> []
      | x :: rest -> x :: take (k - 1) rest
    in
    Ok
      (List.map
         (fun (i, c) ->
           let lo, hi = Gmon.bucket_range g.Gmon.hist i in
           (lo, hi, c))
         (take n sorted))

let arc_totals t =
  match merged t with
  | Error e -> Error e
  | Ok None -> Ok []
  | Ok (Some g) ->
    Ok
      (List.map
         (fun (a : Gmon.arc) -> (a.a_from, a.a_self, a.a_count))
         g.Gmon.arcs)

let sync t =
  (* The atomic writer leaves durability of the *rename* to the
     directory: fsync every shard directory (and the root, for the
     manifest and quarantine) so a power cut after a graceful drain
     cannot roll back segments the daemon already acknowledged. *)
  let sync_dir path =
    match Unix.openfile path [ Unix.O_RDONLY ] 0 with
    | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
    | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          match Unix.fsync fd with
          | () -> Ok ()
          | exception Unix.Unix_error (e, _, _) ->
            (* some filesystems refuse fsync on a directory fd; that
               is a property of the mount, not a store failure *)
            if e = Unix.EINVAL || e = Unix.EBADF then Ok ()
            else Error (Printf.sprintf "%s: %s" path (Unix.error_message e)))
  in
  let dirs =
    t.dir
    :: quarantine_dir t
    :: Array.to_list (Array.map (fun sh -> sh.sh_dir) t.shards)
  in
  let rec go = function
    | [] -> Ok ()
    | d :: rest ->
      if not (Sys.file_exists d) then go rest
      else ( match sync_dir d with Ok () -> go rest | Error e -> Error e)
  in
  go dirs
