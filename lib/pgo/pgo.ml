module Ast = Mini.Ast
module Asm = Objcode.Asm
module Objfile = Objcode.Objfile
module Codegen = Compile.Codegen
module Transform = Compile.Transform
module Cfg = Analysis.Cfg
module Dom = Analysis.Dom
module Profile = Gprof_core.Profile
module Symtab = Gprof_core.Symtab

type inline_decision = {
  i_callee : string;
  i_calls : int;
  i_sites : int;
  i_size : int;
  i_taken : bool;
  i_why : string;
}

type reorder_decision = {
  r_func : string;
  r_blocks : int;
  r_layout : int list;
  r_cold : int;
  r_jumps_cut : int;
  r_jumps_added : int;
}

type report = {
  p_source : string;
  p_ticks : int;
  p_runs : int;
  p_arc_records : int;
  p_hot_calls : int;
  p_max_size : int;
  p_budget : int;
  p_inline : inline_decision list;
  p_inline_names : string list;
  p_reorder : reorder_decision list;
  p_reorder_skipped : int;
  p_order : (string * float) list;
}

(* --- heat: translate the profile's raw addresses into names and
   source lines, so the measurements survive the AST transforms and
   relayout that follow ------------------------------------------------ *)

type heat = {
  ht_line_ticks : (int, float) Hashtbl.t;
      (* source line -> prorated histogram ticks (reference build) *)
  ht_callee_calls : (string * int * int) list;
      (* callee name, dynamic calls, distinct call sites; callees with
         at least one attributable (non-spontaneous) arc, in first-
         observation order *)
  ht_incl : (string, float) Hashtbl.t;
      (* function name -> inclusive (self + descendants) seconds *)
}

let tbl_addf tbl k v =
  let cur = Option.value (Hashtbl.find_opt tbl k) ~default:0.0 in
  Hashtbl.replace tbl k (cur +. v)

let heat_of (o : Objfile.t) (g : Gmon.t) (prof : Profile.t) =
  let line_ticks = Hashtbl.create 64 in
  let h = g.Gmon.hist in
  Array.iteri
    (fun i count ->
      if count > 0 then begin
        let lo, hi = Gmon.bucket_range h i in
        if hi > lo then begin
          (* a bucket spanning several instructions splits its ticks
             evenly; with the VM's default bucket size this is exact *)
          let share = float_of_int count /. float_of_int (hi - lo) in
          for a = lo to hi - 1 do
            match Objfile.line_of_addr o a with
            | Some l -> tbl_addf line_ticks l share
            | None -> ()
          done
        end
      end)
    h.Gmon.h_counts;
  let calls = Hashtbl.create 16 and sites = Hashtbl.create 16 in
  let seen = ref [] in
  List.iter
    (fun (a : Gmon.arc) ->
      (* spontaneous arcs (a_from outside any routine) have no call
         site to inline, so they do not count toward callee heat *)
      match (Objfile.find_symbol o a.a_from, Objfile.func_id_of_addr o a.a_self) with
      | Some _, Some id ->
        let callee = o.Objfile.symbols.(id).Objfile.name in
        if not (Hashtbl.mem calls callee) then seen := callee :: !seen;
        Hashtbl.replace calls callee
          (a.a_count + Option.value (Hashtbl.find_opt calls callee) ~default:0);
        Hashtbl.replace sites callee
          (1 + Option.value (Hashtbl.find_opt sites callee) ~default:0)
      | _ -> ())
    g.Gmon.arcs;
  let callee_calls =
    List.rev_map
      (fun name ->
        (name, Hashtbl.find calls name, Hashtbl.find sites name))
      !seen
  in
  let incl = Hashtbl.create 16 in
  Array.iter
    (fun (e : Profile.entry) ->
      Hashtbl.replace incl
        (Symtab.name prof.Profile.symtab e.Profile.e_id)
        (e.Profile.e_self +. e.Profile.e_child))
    prof.Profile.entries;
  { ht_line_ticks = line_ticks; ht_callee_calls = callee_calls; ht_incl = incl }

(* --- inline selection: arc count x callee size under a budget ------- *)

let select_inlines ~forced ~eligible ~size_of ~max_size ~budget heat =
  let total =
    List.fold_left (fun n (_, c, _) -> n + c) 0 heat.ht_callee_calls
  in
  let hot = max 16 (total / 50) in
  let observed =
    List.sort
      (fun (n1, c1, _) (n2, c2, _) -> compare (-c1, n1) (-c2, n2))
      heat.ht_callee_calls
  in
  (* forced names the profile never saw still expand; list them so the
     log explains every name that reaches the expander *)
  let unobserved_forced =
    List.filter
      (fun n -> not (List.exists (fun (m, _, _) -> m = n) observed))
      forced
  in
  let spent = ref 0 in
  let decide (name, calls, sites) =
    let size = size_of name in
    let taken, why =
      if List.mem name forced then (true, "forced by --inline")
      else if not (List.mem name eligible) then
        (false, "not inlinable: body is not a lone non-recursive return")
      else if calls < hot then
        (false, Printf.sprintf "cold: %d calls under threshold %d" calls hot)
      else if size > max_size then
        (false, Printf.sprintf "too large: %d instrs over limit %d" size max_size)
      else begin
        let growth = sites * size in
        if !spent + growth > budget then
          (false,
           Printf.sprintf "budget: growth %d exceeds remaining %d" growth
             (budget - !spent))
        else begin
          spent := !spent + growth;
          (true, Printf.sprintf "hot and small: growth %d, budget left %d" growth
             (budget - !spent))
        end
      end
    in
    { i_callee = name; i_calls = calls; i_sites = sites; i_size = size;
      i_taken = taken; i_why = why }
  in
  let decisions =
    List.map decide observed
    @ List.map
        (fun n ->
          { i_callee = n; i_calls = 0; i_sites = 0; i_size = size_of n;
            i_taken = true; i_why = "forced by --inline" })
        unobserved_forced
  in
  let names =
    List.filter_map (fun d -> if d.i_taken then Some d.i_callee else None)
      decisions
  in
  (hot, decisions, names)

(* --- hot/cold function splitting ------------------------------------ *)

let order_funs ~incl_of ~inlined funs =
  let keyed =
    List.mapi
      (fun i (f : Asm.afun) ->
        (* an inlined-away callee's profile time now lives in its
           callers; its own number is stale, so it goes cold *)
        let cold = if List.mem f.Asm.name inlined then 1 else 0 in
        ((cold, -.incl_of f.Asm.name, i), f))
      funs
  in
  List.map snd (List.sort (fun (k1, _) (k2, _) -> compare k1 k2) keyed)

(* --- basic-block reordering ------------------------------------------

   The assembled function gives exact block boundaries (Cfg) and a
   line table; reference-build line ticks project onto the blocks, and
   a greedy chain lays the hottest successor next so it falls through.
   Fixups keep control flow identical: a trailing jump to the block
   placed next is cut; a displaced fall-through gets an explicit jump.
   Conditions are never inverted: Jumpz costs the same taken or not,
   so there is nothing to win. *)

type term =
  | Tjump of int  (* unconditional, to block index *)
  | Tcond of int * int  (* Jumpz: taken block, fall-through block *)
  | Tfall of int  (* falls into the next block *)
  | Tstop  (* Ret / Halt *)

type chunk = {
  mutable c_items : Asm.item list;  (* in order *)
  mutable c_label : string option;  (* a label at the block entry, if any *)
}

exception Give_up

(* Split an afun's item list into per-block chunks matching the
   assembled blocks. Labels and SrcLine markers attach to the
   instruction that follows them; every chunk opens with a SrcLine so
   relocating it cannot corrupt the line table. *)
let chunks_of (fn : Cfg.func) (items : Asm.item list) =
  let sym = fn.Cfg.fn_symbol in
  let blocks = fn.Cfg.fn_blocks in
  let n = Array.length blocks in
  let start_of = Hashtbl.create (2 * n) in
  Array.iteri
    (fun j b -> Hashtbl.replace start_of (b.Cfg.bb_start - sym.Objfile.addr) j)
    blocks;
  (* chunk item lists are built reversed, flipped at the end *)
  let chunks = Array.init n (fun _ -> { c_items = []; c_label = None }) in
  let label_pos = Hashtbl.create 16 in
  let cur = ref 0 and k = ref 0 in
  let pending = ref [] (* reversed *) and cur_line = ref 0 in
  let add j it = chunks.(j).c_items <- it :: chunks.(j).c_items in
  List.iter
    (fun it ->
      match it with
      | Asm.Label l ->
        Hashtbl.replace label_pos l !k;
        pending := it :: !pending
      | Asm.SrcLine ln ->
        cur_line := ln;
        pending := it :: !pending
      | Asm.Ins _ ->
        let j =
          match Hashtbl.find_opt start_of !k with Some j -> j | None -> !cur
        in
        if j <> !cur || !k = 0 then begin
          (* opening chunk j: the pending labels/markers belong to it,
             and it gets a source-line marker so relocating the chunk
             cannot corrupt the line table *)
          if
            j <> !cur && !cur_line > 0
            && not
                 (List.exists
                    (function Asm.SrcLine _ -> true | _ -> false)
                    !pending)
          then add j (Asm.SrcLine !cur_line);
          List.iter
            (fun p ->
              (match p with
              | Asm.Label l ->
                if chunks.(j).c_label = None then chunks.(j).c_label <- Some l
              | _ -> ());
              add j p)
            (List.rev !pending);
          pending := [];
          cur := j
        end
        else begin
          List.iter (add !cur) (List.rev !pending);
          pending := []
        end;
        add !cur it;
        incr k)
    items;
  (* trailing labels/markers (none in compiler output, but keep them) *)
  List.iter (add !cur) (List.rev !pending);
  if !k <> sym.Objfile.size then raise Give_up;
  Array.iter (fun c -> c.c_items <- List.rev c.c_items) chunks;
  (chunks, label_pos, start_of)

let block_terms (fn : Cfg.func) chunks label_pos start_of =
  let sym = fn.Cfg.fn_symbol in
  let blocks = fn.Cfg.fn_blocks in
  let block_of_label l =
    match Hashtbl.find_opt label_pos l with
    | None -> raise Give_up
    | Some k -> (
      match Hashtbl.find_opt start_of k with
      | Some j -> j
      | None -> raise Give_up)
  in
  Array.mapi
    (fun j (b : Cfg.block) ->
      let last =
        List.fold_left
          (fun acc it -> match it with Asm.Ins i -> Some i | _ -> acc)
          None chunks.(j).c_items
      in
      let fall () =
        let next = b.Cfg.bb_start + b.Cfg.bb_len - sym.Objfile.addr in
        match Hashtbl.find_opt start_of next with
        | Some j' -> j'
        | None -> raise Give_up
      in
      match last with
      | None -> raise Give_up
      | Some (Asm.AJump l) -> Tjump (block_of_label l)
      | Some (Asm.AJumpz l) -> Tcond (block_of_label l, fall ())
      | Some (Asm.ARet | Asm.AHalt) -> Tstop
      | Some _ -> Tfall (fall ()))
    blocks

let reorder_fun ~(line_ticks : (int, float) Hashtbl.t) ~obj ~(fn : Cfg.func)
    ~(dom : Dom.t) (f : Asm.afun) =
  let blocks = fn.Cfg.fn_blocks in
  let n = Array.length blocks in
  if n <= 2 then None
  else begin
    (* project reference-build line ticks onto the blocks: a block is
       as hot as the distinct source lines it implements *)
    let block_heat =
      Array.map
        (fun (b : Cfg.block) ->
          let lines = ref [] in
          for a = b.Cfg.bb_start to b.Cfg.bb_start + b.Cfg.bb_len - 1 do
            match Objfile.line_of_addr obj a with
            | Some l when not (List.mem l !lines) -> lines := l :: !lines
            | _ -> ()
          done;
          List.fold_left
            (fun h l ->
              h +. Option.value (Hashtbl.find_opt line_ticks l) ~default:0.0)
            0.0 !lines)
        blocks
    in
    if Array.for_all (fun h -> h = 0.0) block_heat then None
    else
      try
        let chunks, label_pos, start_of = chunks_of fn f.Asm.items in
        let terms = block_terms fn chunks label_pos start_of in
        let succs j =
          match terms.(j) with
          | Tjump t -> [ t ]
          | Tcond (t, fl) -> [ fl; t ]
          | Tfall fl -> [ fl ]
          | Tstop -> []
        in
        let depth = dom.Dom.d_depth in
        let better a b =
          block_heat.(a) > block_heat.(b)
          || (block_heat.(a) = block_heat.(b)
              && (depth.(a) > depth.(b) || (depth.(a) = depth.(b) && a < b)))
        in
        let pick = function
          | [] -> None
          | j :: rest ->
            Some (List.fold_left (fun b j' -> if better j' b then j' else b) j rest)
        in
        let placed = Array.make n false in
        placed.(0) <- true;
        let order = ref [ 0 ] and count = ref 1 and last = ref 0 in
        while !count < n do
          let cands = List.filter (fun j -> not placed.(j)) (succs !last) in
          let next =
            match pick cands with
            | Some j -> j
            | None ->
              let rest = ref [] in
              for j = n - 1 downto 0 do
                if not placed.(j) then rest := j :: !rest
              done;
              Option.get (pick !rest)
          in
          placed.(next) <- true;
          order := next :: !order;
          incr count;
          last := next
        done;
        let order = List.rev !order in
        begin
          let arr = Array.of_list order in
          let drop_last = Array.make n false in
          let append_to = Array.make n None in
          let cut = ref 0 and added = ref 0 in
          let fresh = ref 0 in
          let label_of j =
            match chunks.(j).c_label with
            | Some l -> l
            | None ->
              let rec gen () =
                let l = Printf.sprintf "Lpgo%d" !fresh in
                incr fresh;
                if Hashtbl.mem label_pos l then gen () else l
              in
              let l = gen () in
              chunks.(j).c_label <- Some l;
              chunks.(j).c_items <- Asm.Label l :: chunks.(j).c_items;
              l
          in
          Array.iteri
            (fun t j ->
              let next = if t + 1 < n then Some arr.(t + 1) else None in
              match terms.(j) with
              | Tjump tgt when Some tgt = next ->
                drop_last.(j) <- true;
                incr cut
              | Tjump _ | Tstop -> ()
              | Tcond (_, fl) | Tfall fl ->
                if Some fl <> next then begin
                  append_to.(j) <- Some (label_of fl);
                  incr added
                end)
            arr;
          let items =
            List.concat_map
              (fun j ->
                let body =
                  if drop_last.(j) then
                    match List.rev chunks.(j).c_items with
                    | Asm.Ins _ :: rest -> List.rev rest
                    | _ -> chunks.(j).c_items
                  else chunks.(j).c_items
                in
                match append_to.(j) with
                | Some l -> body @ [ Asm.Ins (Asm.AJump l) ]
                | None -> body)
              order
          in
          let identity = order = List.init n (fun i -> i) in
          if identity && !cut = 0 && !added = 0 then None
          else begin
            let cold =
              Array.fold_left
                (fun c h -> if h = 0.0 then c + 1 else c)
                0 block_heat
            in
            Some
              ( { f with Asm.items },
                { r_func = f.Asm.name; r_blocks = n; r_layout = order;
                  r_cold = cold; r_jumps_cut = !cut; r_jumps_added = !added } )
          end
        end
      with Give_up -> None
  end

let reorder_blocks ~line_ticks (aprog : Asm.aprog) (obj : Objfile.t) =
  let cfg = Cfg.build obj in
  let decisions = ref [] and skipped = ref 0 in
  let funs =
    List.map
      (fun (f : Asm.afun) ->
        match Cfg.func_by_name cfg f.Asm.name with
        | Some fn when Array.length fn.Cfg.fn_blocks > 0 -> (
          let dom = Dom.compute fn in
          match reorder_fun ~line_ticks ~obj ~fn ~dom f with
          | Some (f', d) ->
            decisions := d :: !decisions;
            f'
          | None ->
            incr skipped;
            f)
        | _ ->
          incr skipped;
          f)
      aprog.Asm.a_funs
  in
  ({ aprog with Asm.a_funs = funs }, List.rev !decisions, !skipped)

(* --- the driver ------------------------------------------------------ *)

let optimize ?(max_callee_size = 24) ?(growth_budget = 256)
    ?(options = Codegen.default_options) ?(source_name = "<mini>") p gmon =
  (* the reference build reproduces the binary the profile was
     gathered from: same options, no inlining *)
  let ref_options = { options with Codegen.inline = [] } in
  match Codegen.compile_program ~options:ref_options ~source_name p with
  | Error e -> Error e
  | Ok refobj -> (
    let lint = Analysis.Proflint.lint refobj gmon in
    match
      List.find_opt
        (fun (f : Analysis.Proflint.finding) ->
          f.Analysis.Proflint.f_severity = Analysis.Proflint.Error)
        lint.Analysis.Proflint.l_findings
    with
    | Some f ->
      Error
        (Printf.sprintf
           "profile does not pair with this program: [%s] %s"
           f.Analysis.Proflint.f_rule f.Analysis.Proflint.f_msg)
    | None -> (
      match Gprof_core.Report.analyze refobj gmon with
      | Error e -> Error ("profile analysis failed: " ^ e)
      | Ok rep -> (
        let heat = heat_of refobj gmon rep.Gprof_core.Report.profile in
        let size_of name =
          match Objfile.symbol_by_name refobj name with
          | Some s -> s.Objfile.size
          | None -> max_int
        in
        let hot, inline_decisions, selected =
          select_inlines ~forced:options.Codegen.inline
            ~eligible:(Transform.inlinable p) ~size_of
            ~max_size:max_callee_size ~budget:growth_budget heat
        in
        let p1 =
          if selected = [] then p
          else Transform.inline_expansion ~names:selected p
        in
        let p2 = if options.Codegen.fold then Transform.constant_fold p1 else p1 in
        let aprog = Codegen.to_asm ~options ~source_name p2 in
        let incl_of name =
          Option.value (Hashtbl.find_opt heat.ht_incl name) ~default:0.0
        in
        let aprog =
          { aprog with
            Asm.a_funs =
              order_funs ~incl_of ~inlined:selected aprog.Asm.a_funs }
        in
        match Asm.assemble aprog with
        | Error e -> Error ("pgo layout failed to assemble: " ^ e)
        | Ok obj0 -> (
          let aprog, reorder, skipped =
            reorder_blocks ~line_ticks:heat.ht_line_ticks aprog obj0
          in
          match Asm.assemble aprog with
          | Error e -> Error ("pgo block reorder failed to assemble: " ^ e)
          | Ok obj ->
            let report =
              { p_source = source_name;
                p_ticks = Gmon.total_ticks gmon;
                p_runs = gmon.Gmon.runs;
                p_arc_records = List.length gmon.Gmon.arcs;
                p_hot_calls = hot;
                p_max_size = max_callee_size;
                p_budget = growth_budget;
                p_inline = inline_decisions;
                p_inline_names = selected;
                p_reorder = reorder;
                p_reorder_skipped = skipped;
                p_order =
                  List.map
                    (fun (f : Asm.afun) -> (f.Asm.name, incl_of f.Asm.name))
                    aprog.Asm.a_funs }
            in
            Ok (obj, report)))))

(* --- the decision log ------------------------------------------------ *)

let report_listing r =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "pgo: decisions for %s\n" r.p_source;
  pf "  profile: %d ticks over %d run(s), %d arc records\n" r.p_ticks r.p_runs
    r.p_arc_records;
  pf "  inliner: hot >= %d calls, size <= %d instrs, growth budget %d instrs\n"
    r.p_hot_calls r.p_max_size r.p_budget;
  pf "\ninline decisions (hottest first):\n";
  if r.p_inline = [] then pf "  (no attributable calls in the profile)\n";
  List.iter
    (fun d ->
      pf "  %-4s %-16s %8d calls %3d site%s %4d instrs  %s\n"
        (if d.i_taken then "take" else "keep")
        d.i_callee d.i_calls d.i_sites
        (if d.i_sites = 1 then " " else "s")
        d.i_size d.i_why)
    r.p_inline;
  (match r.p_inline_names with
  | [] -> pf "  expanding: nothing\n"
  | names -> pf "  expanding: %s\n" (String.concat " " names));
  pf "\nblock layout (ticks onto blocks via the line table; ties by loop depth):\n";
  List.iter
    (fun d ->
      pf "  %-16s %3d blocks  order %s  %d cold  %d jump%s cut, %d added\n"
        d.r_func d.r_blocks
        (String.concat " " (List.map string_of_int d.r_layout))
        d.r_cold d.r_jumps_cut
        (if d.r_jumps_cut = 1 then "" else "s")
        d.r_jumps_added)
    r.p_reorder;
  pf "  (%d function%s unchanged: trivial layout or no samples)\n"
    r.p_reorder_skipped
    (if r.p_reorder_skipped = 1 then "" else "s");
  pf "\nfunction order (inclusive seconds, hot first; inlined callees sunk):\n";
  List.iteri
    (fun i (name, incl) -> pf "  %2d %-16s %10.4fs\n" (i + 1) name incl)
    r.p_order;
  Buffer.contents b
