(** Profile-guided optimization: the loop from a gmon profile back
    into the Mini compiler.

    The paper's closing argument is that a call-graph profile exists
    to direct optimization effort ("a profiler must aid the user in
    interpreting the profile so the program can be improved"); this
    subsystem closes that loop mechanically. Given a Mini program and
    a profile gathered from an instrumented build of the {e same}
    program, {!optimize} drives three transformations:

    - {b profile-driven inlining}: hot, small, non-recursive
      single-return callees (the {!Compile.Transform.inlinable} set)
      are selected by arc count x callee size under a growth budget
      and expanded via {!Compile.Transform.inline_expansion} — the
      paper's "expanded inline … the overhead of a function call and
      return can be saved for each datum", now chosen by measurement
      instead of a hand-written [--inline] list.
    - {b basic-block reordering}: within each sampled function, the
      layout is rebuilt so the hottest successor chain falls through
      (histogram ticks projected through the line table onto
      {!Analysis.Cfg} blocks, ties broken by {!Analysis.Dom} loop
      depth), cold blocks sink to the end, and jump fixups keep the
      control flow identical: a trailing jump to the next-placed block
      is cut, a displaced fall-through gets an explicit jump.
      Conditions are never inverted — on this VM a [Jumpz] costs the
      same taken or not, so polarity fixups are pure churn.
    - {b hot/cold function splitting}: functions are laid out in the
      object file by descending inclusive (self + descendants) time,
      so hot code is contiguous; callees that were inlined away sink
      to the cold end regardless of their (now stale) profile time.

    Every decision — taken or refused, with the numbers that decided
    it — lands in the {!report}, and {!report_listing} renders it
    deterministically: byte-identical across runs on equal inputs. *)

type inline_decision = {
  i_callee : string;
  i_calls : int;  (** dynamic calls observed into the callee *)
  i_sites : int;  (** distinct call sites among the profile's arcs *)
  i_size : int;  (** callee size in the reference binary, instructions *)
  i_taken : bool;
  i_why : string;  (** deterministic one-line reason *)
}

type reorder_decision = {
  r_func : string;
  r_blocks : int;
  r_layout : int list;  (** original block indices in final order *)
  r_cold : int;  (** blocks with no projected ticks, sunk *)
  r_jumps_cut : int;  (** trailing jumps dropped (target falls through) *)
  r_jumps_added : int;  (** explicit jumps added for displaced fall-throughs *)
}

type report = {
  p_source : string;
  p_ticks : int;  (** histogram ticks in the profile *)
  p_runs : int;
  p_arc_records : int;
  p_hot_calls : int;  (** the computed hot-call threshold *)
  p_max_size : int;
  p_budget : int;
  p_inline : inline_decision list;  (** every observed callee, hottest first *)
  p_inline_names : string list;  (** the names actually passed to expansion *)
  p_reorder : reorder_decision list;  (** functions whose layout changed *)
  p_reorder_skipped : int;  (** functions left alone: trivial or unsampled *)
  p_order : (string * float) list;
      (** final object-file function order with inclusive seconds *)
}

val optimize :
  ?max_callee_size:int ->
  ?growth_budget:int ->
  ?options:Compile.Codegen.options ->
  ?source_name:string ->
  Mini.Ast.program ->
  Gmon.t ->
  (Objcode.Objfile.t * report, string) result
(** Compile the program with profile feedback. The profile must come
    from a build of the same program with the same [options] modulo
    inlining (the baseline [minic --pg] build); a reference build is
    recompiled internally and the pairing is verified with
    {!Analysis.Proflint.lint} — error-severity findings (wrong
    binary, impossible arcs) refuse the profile rather than quietly
    mis-optimizing. [max_callee_size] (default 24 instructions) and
    [growth_budget] (default 256 instructions of estimated expansion)
    bound the inliner. Forced [options.inline] names are honoured and
    marked as such in the report. *)

val report_listing : report -> string
(** The decision log: profile summary, one line per inline decision
    with the numbers behind it, per-function layout changes, and the
    final function order. Deterministic; byte-identical across runs on
    equal inputs. *)
