(* The client-side profile spool. See spool.mli for the contract. *)

let magic = "PROFSPOOL1\n"

let entry_name id = Printf.sprintf "sp-%s.spool" id

let is_entry name =
  String.length name > String.length "sp-.spool"
  && String.sub name 0 3 = "sp-"
  && Filename.check_suffix name ".spool"

let id_of_path path =
  let base = Filename.basename path in
  Filename.chop_suffix (String.sub base 3 (String.length base - 3)) ".spool"

let ensure_dir dir =
  match Unix.mkdir dir 0o755 with
  | () -> Ok ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "%s: %s" dir (Unix.error_message e))

let add ~dir ~label payload =
  if not (Proto.valid_label label) then
    Error (Printf.sprintf "invalid label %S" label)
  else
    match ensure_dir dir with
    | Error e -> Error e
    | Ok () ->
      (* ids are unique per process, but an entry is durable state that
         must never be overwritten: re-draw on the off chance another
         process spooled under the same id *)
      let rec pick () =
        let id = Proto.fresh_id () in
        let path = Filename.concat dir (entry_name id) in
        if Sys.file_exists path then pick () else (id, path)
      in
      let id, path = pick () in
      let data = magic ^ label ^ "\n" ^ payload in
      (* same crash-safety contract as every other durable file in the
         pipeline: complete or absent, never torn *)
      let tmp = path ^ ".tmp" in
      (try
         let oc = open_out_bin tmp in
         (try
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () -> output_string oc data)
          with Sys_error e ->
            (try Sys.remove tmp with Sys_error _ -> ());
            raise (Sys_error e));
         Sys.rename tmp path;
         Ok id
       with Sys_error e -> Error e)

let entries ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> Ok []
  | names ->
    let picked =
      Array.to_list names
      |> List.filter is_entry
      |> List.sort compare
      |> List.map (Filename.concat dir)
    in
    Ok picked

let read path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | data ->
    let mlen = String.length magic in
    if
      String.length data < mlen || String.sub data 0 mlen <> magic
    then Error (Printf.sprintf "%s: not a spool entry (bad magic)" path)
    else (
      match String.index_from_opt data mlen '\n' with
      | None -> Error (Printf.sprintf "%s: truncated spool entry" path)
      | Some i ->
        let label = String.sub data mlen (i - mlen) in
        if not (Proto.valid_label label) then
          Error (Printf.sprintf "%s: invalid spooled label" path)
        else
          Ok
            ( label,
              id_of_path path,
              String.sub data (i + 1) (String.length data - i - 1) ))

let drain ~dir ~submit =
  match entries ~dir with
  | Error e -> Error e
  | Ok paths ->
    let drained = ref 0 and remaining = ref 0 in
    List.iter
      (fun path ->
        match read path with
        | Error _ ->
          (* a damaged entry must not wedge the drain forever: set it
             aside, visibly, like the store's quarantine *)
          (try Sys.rename path (path ^ ".bad") with Sys_error _ -> ());
          incr remaining
        | Ok (label, id, payload) -> (
          match submit ~label ~id payload with
          | Ok `Accepted ->
            (try Sys.remove path with Sys_error _ -> ());
            incr drained
          | Ok `Retry | Error _ -> incr remaining))
      paths;
    Ok (!drained, !remaining)
