(* The profd daemon engine. See server.mli for the contract.

   One select loop, non-blocking everything, explicit state per
   connection. The old engine served one connection to completion at a
   time, which made a single slow peer a denial of service; this one
   interleaves all of them and enforces a per-frame deadline, so the
   worst a hostile peer can do is waste one connection slot for
   conn_timeout seconds. *)

(* --- metrics ----------------------------------------------------------- *)

let m_accepted =
  Obs.Metrics.counter Obs.Metrics.default "profd.conn.accepted"
    ~help:"client connections accepted"

let m_refused =
  Obs.Metrics.counter Obs.Metrics.default "profd.conn.refused"
    ~help:"connections refused at the concurrency cap (answered BUSY)"

let m_deadline =
  Obs.Metrics.counter Obs.Metrics.default "profd.conn.deadline_closed"
    ~help:"connections closed for missing the per-frame IO deadline"

let m_torn =
  Obs.Metrics.counter Obs.Metrics.default "profd.conn.torn"
    ~help:"connections dropped mid-frame (torn frame, reset, disconnect)"

let m_oversize =
  Obs.Metrics.counter Obs.Metrics.default "profd.conn.oversize"
    ~help:"frames refused for exceeding the length cap"

let m_requests =
  Obs.Metrics.counter Obs.Metrics.default "profd.requests"
    ~help:"requests decoded and handled"

let m_shed =
  Obs.Metrics.counter Obs.Metrics.default "profd.shed.overload"
    ~help:"submissions answered BUSY because the ingest queue was full"

let m_dedup =
  Obs.Metrics.counter Obs.Metrics.default "profd.dedup.hits"
    ~help:"duplicate submission ids acknowledged without re-ingesting"

(* --- config ------------------------------------------------------------ *)

type config = {
  socket : string;
  conn_timeout : float;
  max_conns : int;
  retry_after : float;
  drain_grace : float;
}

let default_config ~socket =
  {
    socket;
    conn_timeout = 10.0;
    max_conns = 64;
    retry_after = 0.1;
    drain_grace = 5.0;
  }

(* --- the duplicate-suppression window ---------------------------------- *)

(* Ids live in memory only: the window exists to absorb the retry
   storm after a lost response (seconds), not to dedupe across daemon
   restarts. Bounded FIFO so a hostile client cannot grow it. *)
module Dedup = struct
  type t = { seen : (string, unit) Hashtbl.t; order : string Queue.t; cap : int }

  let create cap = { seen = Hashtbl.create 64; order = Queue.create (); cap }

  let mem t id = Hashtbl.mem t.seen id

  let add t id =
    if not (Hashtbl.mem t.seen id) then begin
      Hashtbl.replace t.seen id ();
      Queue.push id t.order;
      if Queue.length t.order > t.cap then
        Hashtbl.remove t.seen (Queue.pop t.order)
    end
end

(* --- per-connection state ---------------------------------------------- *)

type conn = {
  c_fd : Unix.file_descr;
  c_hdr : Bytes.t;  (* 4-byte length prefix, filled incrementally *)
  mutable c_hdr_got : int;
  mutable c_body : Bytes.t;
  mutable c_body_got : int;
  mutable c_body_len : int;  (* -1 = header not complete yet *)
  mutable c_out : string;  (* the framed response being written *)
  mutable c_out_pos : int;
  mutable c_deadline : float;  (* absolute; refreshed per phase *)
  mutable c_close_after_write : bool;
  mutable c_dead : bool;
}

let mid_frame c = c.c_hdr_got > 0 || c.c_body_len >= 0

let has_output c = String.length c.c_out > c.c_out_pos

let kill reason c =
  if not c.c_dead then begin
    c.c_dead <- true;
    (match reason with
    | `Clean -> ()
    | `Deadline -> Obs.Metrics.incr m_deadline
    | `Torn -> Obs.Metrics.incr m_torn);
    try Unix.close c.c_fd with Unix.Unix_error _ -> ()
  end

let frame_bytes body =
  let len = String.length body in
  let b = Bytes.create (4 + len) in
  Bytes.set_int32_le b 0 (Int32.of_int len);
  Bytes.blit_string body 0 b 4 len;
  Bytes.unsafe_to_string b

let enqueue_response config c resp =
  let body = Proto.encode_response resp in
  let body =
    if String.length body <= Proto.max_frame then body
    else Proto.encode_response (Resp_err "response exceeds the frame cap")
  in
  c.c_out <- frame_bytes body;
  c.c_out_pos <- 0;
  c.c_deadline <- Unix.gettimeofday () +. config.conn_timeout

(* --- request handling -------------------------------------------------- *)

let handle_request config ingest dedup ~active_conns ~drain req =
  Obs.Metrics.incr m_requests;
  let store = Ingest.store ingest in
  (* queries observe their own writes: anything still buffered in the
     ingest queue is flushed before the store answers *)
  let flush_for_query () =
    match Ingest.flush ingest with Ok _ -> Ok () | Error e -> Error e
  in
  match (req : Proto.request) with
  | Submit { label; id; payload } -> (
    match id with
    | Some id when Dedup.mem dedup id ->
      Obs.Metrics.incr m_dedup;
      Proto.Resp_ok "duplicate\n"
    | _ -> (
      match Ingest.submit ingest ~label payload with
      | Error e -> Resp_err e
      | Ok Ingest.Shed ->
        Obs.Metrics.incr m_shed;
        Resp_busy config.retry_after
      | Ok outcome ->
        (* only accepted submissions enter the window: a shed one must
           be retried for real *)
        Option.iter (Dedup.add dedup) id;
        (match outcome with
        | Ingest.Queued n -> Resp_ok (Printf.sprintf "queued %d\n" n)
        | Ingest.Flushed n -> Resp_ok (Printf.sprintf "flushed %d\n" n)
        | Ingest.Quarantined reason ->
          Resp_ok (Printf.sprintf "quarantined %s\n" reason)
        | Ingest.Shed -> assert false)))
  | Query_top n -> (
    match
      Result.bind (flush_for_query ()) (fun () -> Store.top_buckets store ~n)
    with
    | Error e -> Resp_err e
    | Ok rows ->
      Resp_ok
        (String.concat ""
           (List.map
              (fun (lo, hi, ticks) -> Printf.sprintf "%d %d %d\n" lo hi ticks)
              rows)))
  | Query_report -> (
    match Result.bind (flush_for_query ()) (fun () -> Store.merged store) with
    | Error e -> Resp_err e
    | Ok None -> Resp_err "store is empty"
    | Ok (Some g) -> Resp_ok (Gmon.to_bytes g))
  | Query_sreport -> (
    match
      Result.bind (flush_for_query ()) (fun () -> Store.merged_sprof store)
    with
    | Error e -> Resp_err e
    | Ok None -> Resp_err "store holds no sampled profiles"
    | Ok (Some sp) -> Resp_ok (Gmon.Sprof.to_bytes sp))
  | Query_stats -> (
    match flush_for_query () with
    | Error e -> Resp_err e
    | Ok () ->
      let s = Store.stats store in
      Resp_ok
        (Printf.sprintf
           "{\"store\":%s,\"queue\":{\"pending\":%d,\"cap\":%d},\"conns\":{\"active\":%d}}\n"
           (Store.stats_to_json s) (Ingest.pending ingest)
           (Ingest.queue_cap ingest) active_conns))
  | Flush -> (
    match Ingest.flush ingest with
    | Error e -> Resp_err e
    | Ok n -> Resp_ok (Printf.sprintf "flushed %d\n" n))
  | Compact -> (
    match Result.bind (flush_for_query ()) (fun () -> Store.compact store) with
    | Error e -> Resp_err e
    | Ok n -> Resp_ok (Printf.sprintf "folded %d\n" n))
  | Shutdown ->
    drain ();
    (match Ingest.flush ingest with
    | Ok _ -> Resp_ok "bye\n"
    | Error e -> Resp_err e)

(* --- the event loop ---------------------------------------------------- *)

let read_step conn buf off need =
  Faultplane.delay ();
  if Faultplane.fail_read () then
    `Err "injected ECONNRESET: peer reset the connection"
  else
    match Unix.read conn.c_fd buf off (Faultplane.clamp_io need) with
    | 0 -> `Eof
    | n -> `Got n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      `Again
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Again
    | exception Unix.Unix_error (e, _, _) -> `Err (Unix.error_message e)

let rec pump_read config ingest dedup ~active_conns ~drain conn =
  if conn.c_dead || has_output conn then ()
  else if conn.c_body_len < 0 then (
    (* still collecting the 4-byte length prefix *)
    match read_step conn conn.c_hdr conn.c_hdr_got (4 - conn.c_hdr_got) with
    | `Again -> ()
    | `Eof -> kill (if mid_frame conn then `Torn else `Clean) conn
    | `Err _ -> kill `Torn conn
    | `Got n ->
      conn.c_hdr_got <- conn.c_hdr_got + n;
      if conn.c_hdr_got < 4 then
        pump_read config ingest dedup ~active_conns ~drain conn
      else begin
        let len = Int32.to_int (Bytes.get_int32_le conn.c_hdr 0) in
        if len < 0 || len > Proto.max_frame then begin
          (* refuse the frame without allocating it: one structured
             error frame, then hang up (the stream is unusable — we
             cannot skip bytes we refuse to buffer) *)
          Obs.Metrics.incr m_oversize;
          enqueue_response config conn
            (Resp_err
               (Printf.sprintf "frame length %d exceeds the %d-byte cap" len
                  Proto.max_frame));
          conn.c_close_after_write <- true
        end
        else begin
          conn.c_body <- Bytes.create len;
          conn.c_body_len <- len;
          conn.c_body_got <- 0;
          pump_read config ingest dedup ~active_conns ~drain conn
        end
      end)
  else if conn.c_body_got < conn.c_body_len then (
    match
      read_step conn conn.c_body conn.c_body_got
        (conn.c_body_len - conn.c_body_got)
    with
    | `Again -> ()
    | `Eof | `Err _ -> kill `Torn conn
    | `Got n ->
      conn.c_body_got <- conn.c_body_got + n;
      pump_read config ingest dedup ~active_conns ~drain conn)
  else begin
    (* a whole frame: handle it, queue the response, rearm the reader *)
    let body = Bytes.unsafe_to_string conn.c_body in
    conn.c_hdr_got <- 0;
    conn.c_body <- Bytes.empty;
    conn.c_body_len <- -1;
    conn.c_body_got <- 0;
    let req = Proto.decode_request body in
    let resp =
      match req with
      | Error e -> Proto.Resp_err e
      | Ok req -> handle_request config ingest dedup ~active_conns ~drain req
    in
    enqueue_response config conn resp;
    match req with
    | Ok Proto.Shutdown -> conn.c_close_after_write <- true
    | _ -> ()
  end

let pump_write config conn =
  if conn.c_dead || not (has_output conn) then ()
  else begin
    Faultplane.delay ();
    if Faultplane.fail_write () then kill `Torn conn
    else
      let len = String.length conn.c_out - conn.c_out_pos in
      match
        Unix.write_substring conn.c_fd conn.c_out conn.c_out_pos
          (Faultplane.clamp_io len)
      with
      | n ->
        conn.c_out_pos <- conn.c_out_pos + n;
        if not (has_output conn) then begin
          if conn.c_close_after_write then kill `Clean conn
          else begin
            (* response delivered; the next request gets a fresh
               deadline budget *)
            conn.c_out <- "";
            conn.c_out_pos <- 0;
            conn.c_deadline <- Unix.gettimeofday () +. config.conn_timeout
          end
        end
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (_, _, _) -> kill `Torn conn
  end

let serve config ingest ~stop_requested ~log =
  let socket = config.socket in
  (* a stale socket file from a killed daemon would make bind fail;
     it is dead by construction (we are the only server) *)
  (match Unix.stat socket with
  | { st_kind = Unix.S_SOCK; _ } -> ( try Unix.unlink socket with _ -> ())
  | _ -> ()
  | exception Unix.Unix_error _ -> ());
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "socket: %s" (Unix.error_message e))
  | lsock -> (
    match Unix.bind lsock (Unix.ADDR_UNIX socket) with
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close lsock with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "%s: %s" socket (Unix.error_message e))
    | () ->
      Unix.listen lsock (max 16 config.max_conns);
      Unix.set_nonblock lsock;
      let conns = ref [] in
      let draining = ref false in
      let listener_open = ref true in
      let dedup = Dedup.create 4096 in
      let drain () = draining := true in
      let refuse fd =
        (* explicit shed at the connection cap: one best-effort BUSY
           frame so the peer backs off instead of guessing, then close *)
        Obs.Metrics.incr m_refused;
        let frame =
          frame_bytes (Proto.encode_response (Proto.Resp_busy config.retry_after))
        in
        (try ignore (Unix.write_substring fd frame 0 (String.length frame))
         with Unix.Unix_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ()
      in
      let accept_new () =
        match Unix.accept lsock with
        | exception
            Unix.Unix_error
              ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
          ()
        | exception Unix.Unix_error _ -> ()
        | fd, _ ->
          if List.length !conns >= config.max_conns then refuse fd
          else begin
            Obs.Metrics.incr m_accepted;
            Unix.set_nonblock fd;
            conns :=
              {
                c_fd = fd;
                c_hdr = Bytes.create 4;
                c_hdr_got = 0;
                c_body = Bytes.empty;
                c_body_got = 0;
                c_body_len = -1;
                c_out = "";
                c_out_pos = 0;
                c_deadline = Unix.gettimeofday () +. config.conn_timeout;
                c_close_after_write = false;
                c_dead = false;
              }
              :: !conns
          end
      in
      let drain_deadline = ref 0.0 in
      let rec loop () =
        if (stop_requested () || !draining) && !drain_deadline = 0.0 then begin
          draining := true;
          drain_deadline := Unix.gettimeofday () +. config.drain_grace;
          log "draining: refusing new connections, finishing in-flight work"
        end;
        if !draining && !listener_open then begin
          listener_open := false;
          (try Unix.close lsock with Unix.Unix_error _ -> ());
          (try Unix.unlink socket with Unix.Unix_error _ -> ())
        end;
        (* reap: deadline misses, and — during a drain — idle peers *)
        let now = Unix.gettimeofday () in
        List.iter
          (fun c ->
            if not c.c_dead then
              if now > c.c_deadline then kill `Deadline c
              else if !draining && (not (mid_frame c)) && not (has_output c)
              then kill `Clean c)
          !conns;
        conns := List.filter (fun c -> not c.c_dead) !conns;
        let finished =
          !draining && (!conns = [] || now > !drain_deadline)
        in
        if finished then ()
        else begin
          let readers =
            List.filter (fun c -> not (has_output c)) !conns
            |> List.map (fun c -> c.c_fd)
          in
          let writers =
            List.filter has_output !conns |> List.map (fun c -> c.c_fd)
          in
          let rds = if !listener_open then lsock :: readers else readers in
          (* wake for the nearest deadline so a stalled peer is cut
             promptly even on an otherwise idle daemon *)
          let tmo =
            List.fold_left
              (fun acc c -> Float.min acc (c.c_deadline -. now))
              0.25 !conns
            |> Float.max 0.01
          in
          (match Unix.select rds writers [] tmo with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | exception Unix.Unix_error _ -> ()
          | rd, wr, _ ->
            if !listener_open && List.memq lsock rd then accept_new ();
            let active_conns = List.length !conns in
            List.iter
              (fun c ->
                if List.memq c.c_fd rd then
                  pump_read config ingest dedup ~active_conns ~drain c)
              !conns;
            List.iter
              (fun c -> if List.memq c.c_fd wr then pump_write config c)
              !conns);
          (* the age trigger only fires from this idle loop: the
             daemon is single-threaded by design *)
          (match Ingest.tick ingest with
          | Ok _ -> ()
          | Error e -> log (Printf.sprintf "flush: %s" e));
          loop ()
        end
      in
      loop ();
      List.iter (kill `Clean) !conns;
      if !listener_open then begin
        (try Unix.close lsock with Unix.Unix_error _ -> ());
        try Unix.unlink socket with Unix.Unix_error _ -> ()
      end;
      (match Ingest.flush ingest with
      | Ok _ -> ()
      | Error e -> log (Printf.sprintf "final flush: %s" e));
      (match Store.sync (Ingest.store ingest) with
      | Ok () -> ()
      | Error e -> log (Printf.sprintf "store sync: %s" e));
      Ok ())
