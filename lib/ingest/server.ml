(* The profd daemon engine. See server.mli for the contract.

   One select loop, non-blocking everything, explicit state per
   connection. The old engine served one connection to completion at a
   time, which made a single slow peer a denial of service; this one
   interleaves all of them and enforces a per-frame deadline, so the
   worst a hostile peer can do is waste one connection slot for
   conn_timeout seconds.

   This revision makes the daemon observable while it runs, not just
   at exit: every RPC's latency lands in a per-verb histogram, bytes
   are counted in both directions, QUERY metrics/health serve live
   JSON snapshots, a telemetry loop appends periodic snapshots to a
   checksummed JSONL time-series, and every operationally interesting
   moment (shed, quarantine, deadline close, drain, compaction) is a
   structured event-log record instead of an eprintf. *)

let version = "1.8.0"

(* --- metrics ----------------------------------------------------------- *)

let m_accepted =
  Obs.Metrics.counter Obs.Metrics.default "profd.conn.accepted"
    ~help:"client connections accepted"

let m_refused =
  Obs.Metrics.counter Obs.Metrics.default "profd.conn.refused"
    ~help:"connections refused at the concurrency cap (answered BUSY)"

let m_deadline =
  Obs.Metrics.counter Obs.Metrics.default "profd.conn.deadline_closed"
    ~help:"connections closed for missing the per-frame IO deadline"

let m_torn =
  Obs.Metrics.counter Obs.Metrics.default "profd.conn.torn"
    ~help:"connections dropped mid-frame (torn frame, reset, disconnect)"

let m_oversize =
  Obs.Metrics.counter Obs.Metrics.default "profd.conn.oversize"
    ~help:"frames refused for exceeding the length cap"

let m_requests =
  Obs.Metrics.counter Obs.Metrics.default "profd.requests"
    ~help:"requests decoded and handled"

let m_shed =
  Obs.Metrics.counter Obs.Metrics.default "profd.shed.overload"
    ~help:"submissions answered BUSY because the ingest queue was full"

let m_dedup =
  Obs.Metrics.counter Obs.Metrics.default "profd.dedup.hits"
    ~help:"duplicate submission ids acknowledged without re-ingesting"

let m_bytes_read =
  Obs.Metrics.counter Obs.Metrics.default "profd.bytes.read"
    ~help:"payload and framing bytes read from peers"

let m_bytes_written =
  Obs.Metrics.counter Obs.Metrics.default "profd.bytes.written"
    ~help:"payload and framing bytes written to peers"

let m_telemetry =
  Obs.Metrics.counter Obs.Metrics.default "profd.telemetry.records"
    ~help:"snapshots appended to the telemetry time-series"

let g_queue =
  Obs.Metrics.gauge Obs.Metrics.default "profd.queue.pending"
    ~help:"profiles buffered in the ingest queue"

let g_conns =
  Obs.Metrics.gauge Obs.Metrics.default "profd.conns.active"
    ~help:"connections currently open"

(* One latency histogram per verb, registered on first use. Values are
   microseconds, measured from the first byte of the request frame to
   the last byte of the response written — transport stalls (and
   injected latency faults) are part of the request as the client
   experienced it, so they belong in the number. *)
let rpc_latency =
  let table = Hashtbl.create 16 in
  fun verb ->
    match Hashtbl.find_opt table verb with
    | Some h -> h
    | None ->
      let h =
        Obs.Metrics.histogram Obs.Metrics.default
          (Printf.sprintf "profd.rpc.%s.latency" verb)
          ~help:"request latency, first request byte to last response byte, µs"
      in
      Hashtbl.replace table verb h;
      h

let verb_of_request = function
  | Proto.Submit _ -> "submit"
  | Proto.Query_top _ -> "top"
  | Proto.Query_report -> "report"
  | Proto.Query_sreport -> "sreport"
  | Proto.Query_stats -> "stats"
  | Proto.Query_metrics -> "metrics"
  | Proto.Query_health -> "health"
  | Proto.Flush -> "flush"
  | Proto.Compact -> "compact"
  | Proto.Shutdown -> "shutdown"

(* --- config ------------------------------------------------------------ *)

type config = {
  socket : string;
  conn_timeout : float;
  max_conns : int;
  retry_after : float;
  drain_grace : float;
  telemetry_out : string option;
  telemetry_interval : float;
}

let default_config ~socket =
  {
    socket;
    conn_timeout = 10.0;
    max_conns = 64;
    retry_after = 0.1;
    drain_grace = 5.0;
    telemetry_out = None;
    telemetry_interval = 1.0;
  }

(* --- the duplicate-suppression window ---------------------------------- *)

(* Ids live in memory only: the window exists to absorb the retry
   storm after a lost response (seconds), not to dedupe across daemon
   restarts. Bounded FIFO so a hostile client cannot grow it. *)
module Dedup = struct
  type t = { seen : (string, unit) Hashtbl.t; order : string Queue.t; cap : int }

  let create cap = { seen = Hashtbl.create 64; order = Queue.create (); cap }

  let mem t id = Hashtbl.mem t.seen id

  let add t id =
    if not (Hashtbl.mem t.seen id) then begin
      Hashtbl.replace t.seen id ();
      Queue.push id t.order;
      if Queue.length t.order > t.cap then
        Hashtbl.remove t.seen (Queue.pop t.order)
    end
end

(* --- shared serving state ---------------------------------------------- *)

type ctx = {
  cfg : config;
  ingest : Ingest.t;
  dedup : Dedup.t;
  events : Obs.Eventlog.t;
  started : float;  (* Unix.gettimeofday at serve start *)
  mutable telemetry : Obs.Timeseries.writer option;
  mutable active_conns : int;
}

(* --- per-connection state ---------------------------------------------- *)

type conn = {
  c_fd : Unix.file_descr;
  c_hdr : Bytes.t;  (* 4-byte length prefix, filled incrementally *)
  mutable c_hdr_got : int;
  mutable c_body : Bytes.t;
  mutable c_body_got : int;
  mutable c_body_len : int;  (* -1 = header not complete yet *)
  mutable c_out : string;  (* the framed response being written *)
  mutable c_out_pos : int;
  mutable c_deadline : float;  (* absolute; refreshed per phase *)
  mutable c_req_start : float;  (* first byte of the current frame; nan = idle *)
  mutable c_verb : string;  (* verb being answered, for the latency hist *)
  mutable c_close_after_write : bool;
  mutable c_dead : bool;
}

let mid_frame c = c.c_hdr_got > 0 || c.c_body_len >= 0

let has_output c = String.length c.c_out > c.c_out_pos

let kill ctx reason c =
  if not c.c_dead then begin
    c.c_dead <- true;
    (match reason with
    | `Clean -> ()
    | `Deadline ->
      Obs.Metrics.incr m_deadline;
      Obs.Eventlog.warn ctx.events "conn.deadline_closed" []
    | `Torn ->
      Obs.Metrics.incr m_torn;
      Obs.Eventlog.debug ctx.events "conn.torn" []);
    try Unix.close c.c_fd with Unix.Unix_error _ -> ()
  end

let frame_bytes body =
  let len = String.length body in
  let b = Bytes.create (4 + len) in
  Bytes.set_int32_le b 0 (Int32.of_int len);
  Bytes.blit_string body 0 b 4 len;
  Bytes.unsafe_to_string b

let enqueue_response ctx c resp =
  let body = Proto.encode_response resp in
  let body =
    if String.length body <= Proto.max_frame then body
    else Proto.encode_response (Resp_err "response exceeds the frame cap")
  in
  c.c_out <- frame_bytes body;
  c.c_out_pos <- 0;
  c.c_deadline <- Unix.gettimeofday () +. ctx.cfg.conn_timeout

(* --- health and metrics payloads --------------------------------------- *)

let counter_value name =
  Option.value ~default:0 (Obs.Metrics.find_counter Obs.Metrics.default name)

let health_json ctx =
  let store = Ingest.store ctx.ingest in
  let s = Store.stats store in
  let shards = Store.shard_info store in
  let buf = Buffer.create 1024 in
  let j = Obs.Jsonbuf.int buf in
  Obs.Jsonbuf.obj buf
    [
      ("version", fun () -> Obs.Jsonbuf.escape buf version);
      ("pid", fun () -> j (Unix.getpid ()));
      ( "uptime",
        fun () ->
          Buffer.add_string buf
            (Printf.sprintf "%.3f" (Unix.gettimeofday () -. ctx.started)) );
      ( "queue",
        fun () ->
          Obs.Jsonbuf.obj buf
            [
              ("pending", fun () -> j (Ingest.pending ctx.ingest));
              ("cap", fun () -> j (Ingest.queue_cap ctx.ingest));
            ] );
      ( "conns",
        fun () ->
          Obs.Jsonbuf.obj buf
            [
              ("active", fun () -> j ctx.active_conns);
              ("max", fun () -> j ctx.cfg.max_conns);
            ] );
      ( "store",
        fun () ->
          Obs.Jsonbuf.obj buf
            [
              ("shards", fun () -> j s.Store.st_shards);
              ("segments", fun () -> j s.Store.st_segments);
              ("sprof_segments", fun () -> j s.Store.st_sprof_segments);
              ("total_runs", fun () -> j s.Store.st_total_runs);
              ("sprof_runs", fun () -> j s.Store.st_sprof_runs);
              ("quarantined", fun () -> j s.Store.st_quarantined);
              ("disk_bytes", fun () -> j s.Store.st_disk_bytes);
              ("last_compact_seq", fun () -> j (Store.last_compact_seq store));
              ( "per_shard",
                fun () ->
                  Obs.Jsonbuf.arr buf shards (fun si ->
                      Obs.Jsonbuf.obj buf
                        [
                          ("shard", fun () -> j si.Store.si_index);
                          ("segments", fun () -> j si.Store.si_segments);
                          ( "sprof_segments",
                            fun () -> j si.Store.si_sprof_segments );
                          ("compact_seq", fun () -> j si.Store.si_compact_seq);
                          ("scompact_seq", fun () -> j si.Store.si_scompact_seq);
                        ]) );
            ] );
      ( "counters",
        fun () ->
          Obs.Jsonbuf.obj buf
            (List.map
               (fun (k, name) -> (k, fun () -> j (counter_value name)))
               [
                 ("requests", "profd.requests");
                 ("accepted", "profd.conn.accepted");
                 ("refused", "profd.conn.refused");
                 ("deadline_closed", "profd.conn.deadline_closed");
                 ("torn", "profd.conn.torn");
                 ("shed", "profd.shed.overload");
                 ("dedup_hits", "profd.dedup.hits");
                 ("submitted", "ingest.submitted");
                 ("quarantined", "ingest.quarantined");
                 ("bytes_read", "profd.bytes.read");
                 ("bytes_written", "profd.bytes.written");
               ]) );
      ( "telemetry",
        fun () ->
          Obs.Jsonbuf.obj buf
            [
              ( "enabled",
                fun () ->
                  Buffer.add_string buf
                    (if ctx.telemetry <> None then "true" else "false") );
              ( "interval",
                fun () ->
                  Buffer.add_string buf
                    (Printf.sprintf "%g" ctx.cfg.telemetry_interval) );
              ("records", fun () -> j (counter_value "profd.telemetry.records"));
            ] );
      ("log", fun () -> Obs.Jsonbuf.obj buf [ ("seq", fun () -> j (Obs.Eventlog.seq ctx.events)) ]);
    ];
  Buffer.contents buf

(* --- request handling -------------------------------------------------- *)

let handle_request ctx ~drain req =
  Obs.Metrics.incr m_requests;
  let store = Ingest.store ctx.ingest in
  (* queries observe their own writes: anything still buffered in the
     ingest queue is flushed before the store answers *)
  let flush_for_query () =
    match Ingest.flush ctx.ingest with Ok _ -> Ok () | Error e -> Error e
  in
  match (req : Proto.request) with
  | Submit { label; id; payload } -> (
    match id with
    | Some id when Dedup.mem ctx.dedup id ->
      Obs.Metrics.incr m_dedup;
      Obs.Eventlog.debug ctx.events "submit.duplicate"
        [ ("label", S label); ("id", S id) ];
      Proto.Resp_ok "duplicate\n"
    | _ -> (
      match Ingest.submit ctx.ingest ~label payload with
      | Error e -> Resp_err e
      | Ok Ingest.Shed ->
        Obs.Metrics.incr m_shed;
        Obs.Eventlog.warn ctx.events "shed"
          [
            ("label", S label);
            ("pending", I (Ingest.pending ctx.ingest));
            ("cap", I (Ingest.queue_cap ctx.ingest));
          ];
        Resp_busy ctx.cfg.retry_after
      | Ok outcome ->
        (* only accepted submissions enter the window: a shed one must
           be retried for real *)
        Option.iter (Dedup.add ctx.dedup) id;
        (match outcome with
        | Ingest.Queued n -> Resp_ok (Printf.sprintf "queued %d\n" n)
        | Ingest.Flushed n -> Resp_ok (Printf.sprintf "flushed %d\n" n)
        | Ingest.Quarantined reason ->
          Obs.Eventlog.warn ctx.events "quarantine"
            [ ("label", S label); ("reason", S reason) ];
          Resp_ok (Printf.sprintf "quarantined %s\n" reason)
        | Ingest.Shed -> assert false)))
  | Query_top n -> (
    match
      Result.bind (flush_for_query ()) (fun () -> Store.top_buckets store ~n)
    with
    | Error e -> Resp_err e
    | Ok rows ->
      Resp_ok
        (String.concat ""
           (List.map
              (fun (lo, hi, ticks) -> Printf.sprintf "%d %d %d\n" lo hi ticks)
              rows)))
  | Query_report -> (
    match Result.bind (flush_for_query ()) (fun () -> Store.merged store) with
    | Error e -> Resp_err e
    | Ok None -> Resp_err "store is empty"
    | Ok (Some g) -> Resp_ok (Gmon.to_bytes g))
  | Query_sreport -> (
    match
      Result.bind (flush_for_query ()) (fun () -> Store.merged_sprof store)
    with
    | Error e -> Resp_err e
    | Ok None -> Resp_err "store holds no sampled profiles"
    | Ok (Some sp) -> Resp_ok (Gmon.Sprof.to_bytes sp))
  | Query_stats -> (
    match flush_for_query () with
    | Error e -> Resp_err e
    | Ok () ->
      let s = Store.stats store in
      Resp_ok
        (Printf.sprintf
           "{\"store\":%s,\"queue\":{\"pending\":%d,\"cap\":%d},\"conns\":{\"active\":%d}}\n"
           (Store.stats_to_json s)
           (Ingest.pending ctx.ingest)
           (Ingest.queue_cap ctx.ingest) ctx.active_conns))
  | Query_metrics ->
    (* the live registry, in the exact shape --obs-metrics dumps at
       exit, so one parser (Obs.Snapshot.of_json) reads both *)
    Obs.Metrics.set g_queue (Ingest.pending ctx.ingest);
    Obs.Metrics.set g_conns ctx.active_conns;
    Resp_ok (Obs.Metrics.to_json Obs.Metrics.default ^ "\n")
  | Query_health -> Resp_ok (health_json ctx ^ "\n")
  | Flush -> (
    match Ingest.flush ctx.ingest with
    | Error e -> Resp_err e
    | Ok n -> Resp_ok (Printf.sprintf "flushed %d\n" n))
  | Compact -> (
    match Result.bind (flush_for_query ()) (fun () -> Store.compact store) with
    | Error e ->
      Obs.Eventlog.error ctx.events "compact.failed" [ ("error", S e) ];
      Resp_err e
    | Ok n ->
      Obs.Eventlog.info ctx.events "compact"
        [
          ("folded", I n);
          ("last_seq", I (Store.last_compact_seq store));
        ];
      Resp_ok (Printf.sprintf "folded %d\n" n))
  | Shutdown ->
    Obs.Eventlog.info ctx.events "shutdown.requested" [];
    drain ();
    (match Ingest.flush ctx.ingest with
    | Ok _ -> Resp_ok "bye\n"
    | Error e -> Resp_err e)

(* --- the event loop ---------------------------------------------------- *)

let read_step conn buf off need =
  Faultplane.delay ();
  if Faultplane.fail_read () then
    `Err "injected ECONNRESET: peer reset the connection"
  else
    match Unix.read conn.c_fd buf off (Faultplane.clamp_io need) with
    | 0 -> `Eof
    | n ->
      Obs.Metrics.incr m_bytes_read ~by:n;
      `Got n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      `Again
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Again
    | exception Unix.Unix_error (e, _, _) -> `Err (Unix.error_message e)

let rec pump_read ctx ~drain conn =
  if conn.c_dead || has_output conn then ()
  else if conn.c_body_len < 0 then (
    (* still collecting the 4-byte length prefix *)
    match read_step conn conn.c_hdr conn.c_hdr_got (4 - conn.c_hdr_got) with
    | `Again -> ()
    | `Eof -> kill ctx (if mid_frame conn then `Torn else `Clean) conn
    | `Err _ -> kill ctx `Torn conn
    | `Got n ->
      if Float.is_nan conn.c_req_start then
        conn.c_req_start <- Unix.gettimeofday ();
      conn.c_hdr_got <- conn.c_hdr_got + n;
      if conn.c_hdr_got < 4 then pump_read ctx ~drain conn
      else begin
        let len = Int32.to_int (Bytes.get_int32_le conn.c_hdr 0) in
        if len < 0 || len > Proto.max_frame then begin
          (* refuse the frame without allocating it: one structured
             error frame, then hang up (the stream is unusable — we
             cannot skip bytes we refuse to buffer) *)
          Obs.Metrics.incr m_oversize;
          Obs.Eventlog.warn ctx.events "conn.oversize" [ ("length", I len) ];
          conn.c_verb <- "invalid";
          enqueue_response ctx conn
            (Resp_err
               (Printf.sprintf "frame length %d exceeds the %d-byte cap" len
                  Proto.max_frame));
          conn.c_close_after_write <- true
        end
        else begin
          conn.c_body <- Bytes.create len;
          conn.c_body_len <- len;
          conn.c_body_got <- 0;
          pump_read ctx ~drain conn
        end
      end)
  else if conn.c_body_got < conn.c_body_len then (
    match
      read_step conn conn.c_body conn.c_body_got
        (conn.c_body_len - conn.c_body_got)
    with
    | `Again -> ()
    | `Eof | `Err _ -> kill ctx `Torn conn
    | `Got n ->
      conn.c_body_got <- conn.c_body_got + n;
      pump_read ctx ~drain conn)
  else begin
    (* a whole frame: handle it, queue the response, rearm the reader *)
    let body = Bytes.unsafe_to_string conn.c_body in
    conn.c_hdr_got <- 0;
    conn.c_body <- Bytes.empty;
    conn.c_body_len <- -1;
    conn.c_body_got <- 0;
    let req = Proto.decode_request body in
    conn.c_verb <-
      (match req with Ok r -> verb_of_request r | Error _ -> "invalid");
    let resp =
      match req with
      | Error e -> Proto.Resp_err e
      | Ok req -> handle_request ctx ~drain req
    in
    enqueue_response ctx conn resp;
    match req with
    | Ok Proto.Shutdown -> conn.c_close_after_write <- true
    | _ -> ()
  end

let observe_latency conn =
  if not (Float.is_nan conn.c_req_start) then begin
    let us =
      int_of_float ((Unix.gettimeofday () -. conn.c_req_start) *. 1e6)
    in
    Obs.Metrics.observe (rpc_latency conn.c_verb) (max 1 us);
    conn.c_req_start <- Float.nan
  end

let pump_write ctx conn =
  if conn.c_dead || not (has_output conn) then ()
  else begin
    Faultplane.delay ();
    if Faultplane.fail_write () then kill ctx `Torn conn
    else
      let len = String.length conn.c_out - conn.c_out_pos in
      match
        Unix.write_substring conn.c_fd conn.c_out conn.c_out_pos
          (Faultplane.clamp_io len)
      with
      | n ->
        Obs.Metrics.incr m_bytes_written ~by:n;
        conn.c_out_pos <- conn.c_out_pos + n;
        if not (has_output conn) then begin
          (* the whole response is on the wire: that closes the RPC *)
          observe_latency conn;
          if conn.c_close_after_write then kill ctx `Clean conn
          else begin
            (* response delivered; the next request gets a fresh
               deadline budget *)
            conn.c_out <- "";
            conn.c_out_pos <- 0;
            conn.c_deadline <- Unix.gettimeofday () +. ctx.cfg.conn_timeout
          end
        end
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (_, _, _) -> kill ctx `Torn conn
  end

(* append one snapshot to the time-series; telemetry failures are
   reported once and disable the writer rather than wedging serving *)
let telemetry_tick ctx now =
  match ctx.telemetry with
  | None -> ()
  | Some w -> (
    Obs.Metrics.set g_queue (Ingest.pending ctx.ingest);
    Obs.Metrics.set g_conns ctx.active_conns;
    let snap = Obs.Snapshot.of_registry Obs.Metrics.default in
    match Obs.Timeseries.append w ~ts:now snap with
    | Ok _ -> Obs.Metrics.incr m_telemetry
    | Error e ->
      Obs.Eventlog.error ctx.events "telemetry.failed" [ ("error", S e) ];
      Obs.Timeseries.close_writer w;
      ctx.telemetry <- None)

let serve config ingest ~stop_requested ~events =
  let socket = config.socket in
  (* a stale socket file from a killed daemon would make bind fail;
     it is dead by construction (we are the only server) *)
  (match Unix.stat socket with
  | { st_kind = Unix.S_SOCK; _ } -> ( try Unix.unlink socket with _ -> ())
  | _ -> ()
  | exception Unix.Unix_error _ -> ());
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "socket: %s" (Unix.error_message e))
  | lsock -> (
    match Unix.bind lsock (Unix.ADDR_UNIX socket) with
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close lsock with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "%s: %s" socket (Unix.error_message e))
    | () ->
      Unix.listen lsock (max 16 config.max_conns);
      Unix.set_nonblock lsock;
      let ctx =
        {
          cfg = config;
          ingest;
          dedup = Dedup.create 4096;
          events;
          started = Unix.gettimeofday ();
          telemetry = None;
          active_conns = 0;
        }
      in
      (match config.telemetry_out with
      | None -> ()
      | Some path -> (
        match Obs.Timeseries.open_writer path with
        | Ok w -> ctx.telemetry <- Some w
        | Error e ->
          Obs.Eventlog.error events "telemetry.open_failed"
            [ ("path", S path); ("error", S e) ]));
      Obs.Eventlog.info events "serve.start"
        [
          ("socket", S socket);
          ("version", S version);
          ("pid", I (Unix.getpid ()));
          ("max_conns", I config.max_conns);
          ("queue_cap", I (Ingest.queue_cap ingest));
          ( "telemetry",
            S (Option.value ~default:"" config.telemetry_out) );
        ];
      let conns = ref [] in
      let draining = ref false in
      let listener_open = ref true in
      let drain () = draining := true in
      let refuse fd =
        (* explicit shed at the connection cap: one best-effort BUSY
           frame so the peer backs off instead of guessing, then close *)
        Obs.Metrics.incr m_refused;
        Obs.Eventlog.warn events "conn.refused"
          [ ("active", I (List.length !conns)) ];
        let frame =
          frame_bytes (Proto.encode_response (Proto.Resp_busy config.retry_after))
        in
        (try ignore (Unix.write_substring fd frame 0 (String.length frame))
         with Unix.Unix_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ()
      in
      let accept_new () =
        match Unix.accept lsock with
        | exception
            Unix.Unix_error
              ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
          ()
        | exception Unix.Unix_error _ -> ()
        | fd, _ ->
          if List.length !conns >= config.max_conns then refuse fd
          else begin
            Obs.Metrics.incr m_accepted;
            Unix.set_nonblock fd;
            conns :=
              {
                c_fd = fd;
                c_hdr = Bytes.create 4;
                c_hdr_got = 0;
                c_body = Bytes.empty;
                c_body_got = 0;
                c_body_len = -1;
                c_out = "";
                c_out_pos = 0;
                c_deadline = Unix.gettimeofday () +. config.conn_timeout;
                c_req_start = Float.nan;
                c_verb = "invalid";
                c_close_after_write = false;
                c_dead = false;
              }
              :: !conns
          end
      in
      let drain_deadline = ref 0.0 in
      let next_telemetry =
        ref
          (if ctx.telemetry = None then infinity
           else Unix.gettimeofday () +. config.telemetry_interval)
      in
      let rec loop () =
        if (stop_requested () || !draining) && !drain_deadline = 0.0 then begin
          draining := true;
          drain_deadline := Unix.gettimeofday () +. config.drain_grace;
          Obs.Eventlog.info events "draining"
            [
              ("in_flight", I (List.length !conns));
              ("grace", F config.drain_grace);
            ]
        end;
        if !draining && !listener_open then begin
          listener_open := false;
          (try Unix.close lsock with Unix.Unix_error _ -> ());
          (try Unix.unlink socket with Unix.Unix_error _ -> ())
        end;
        (* reap: deadline misses, and — during a drain — idle peers *)
        let now = Unix.gettimeofday () in
        List.iter
          (fun c ->
            if not c.c_dead then
              if now > c.c_deadline then kill ctx `Deadline c
              else if !draining && (not (mid_frame c)) && not (has_output c)
              then kill ctx `Clean c)
          !conns;
        conns := List.filter (fun c -> not c.c_dead) !conns;
        ctx.active_conns <- List.length !conns;
        if now >= !next_telemetry then begin
          telemetry_tick ctx now;
          next_telemetry := now +. config.telemetry_interval
        end;
        let finished =
          !draining && (!conns = [] || now > !drain_deadline)
        in
        if finished then ()
        else begin
          let readers =
            List.filter (fun c -> not (has_output c)) !conns
            |> List.map (fun c -> c.c_fd)
          in
          let writers =
            List.filter has_output !conns |> List.map (fun c -> c.c_fd)
          in
          let rds = if !listener_open then lsock :: readers else readers in
          (* wake for the nearest deadline so a stalled peer is cut
             promptly even on an otherwise idle daemon — and for the
             next telemetry tick, which must fire on an idle daemon too *)
          let tmo =
            List.fold_left
              (fun acc c -> Float.min acc (c.c_deadline -. now))
              (Float.min 0.25 (!next_telemetry -. now))
              !conns
            |> Float.max 0.01
          in
          (match Unix.select rds writers [] tmo with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | exception Unix.Unix_error _ -> ()
          | rd, wr, _ ->
            if !listener_open && List.memq lsock rd then accept_new ();
            ctx.active_conns <- List.length !conns;
            List.iter
              (fun c -> if List.memq c.c_fd rd then pump_read ctx ~drain c)
              !conns;
            List.iter
              (fun c -> if List.memq c.c_fd wr then pump_write ctx c)
              !conns);
          (* the age trigger only fires from this idle loop: the
             daemon is single-threaded by design *)
          (match Ingest.tick ctx.ingest with
          | Ok _ -> ()
          | Error e -> Obs.Eventlog.error events "flush.failed" [ ("error", S e) ]);
          loop ()
        end
      in
      loop ();
      List.iter (kill ctx `Clean) !conns;
      if !listener_open then begin
        (try Unix.close lsock with Unix.Unix_error _ -> ());
        try Unix.unlink socket with Unix.Unix_error _ -> ()
      end;
      (match Ingest.flush ingest with
      | Ok _ -> ()
      | Error e ->
        Obs.Eventlog.error events "final_flush.failed" [ ("error", S e) ]);
      (match Store.sync (Ingest.store ingest) with
      | Ok () -> ()
      | Error e -> Obs.Eventlog.error events "store_sync.failed" [ ("error", S e) ]);
      (* one last snapshot so the series ends with the final counts *)
      telemetry_tick ctx (Unix.gettimeofday ());
      (match ctx.telemetry with
      | Some w ->
        Obs.Timeseries.close_writer w;
        ctx.telemetry <- None
      | None -> ());
      Obs.Eventlog.info events "drain.done" [];
      Ok ())
