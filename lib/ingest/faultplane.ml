(* The deterministic fault plane. One seeded PRNG stream drives every
   decision, so a given spec replays the same faults for the same
   operation sequence. See faultplane.mli for the contract. *)

type t = {
  prng : Util.Prng.t;
  short : float;
  reset : float;
  torn : float;
  latency : float;
  delay_ms : int;
  storefail : float;
  spec : string;
}

let spec t = t.spec

let of_spec spec =
  let seed = ref 1
  and short = ref 0.0
  and reset = ref 0.0
  and torn = ref 0.0
  and latency = ref 0.0
  and delay_ms = ref 2
  and storefail = ref 0.0 in
  let rate key v r =
    match float_of_string_opt v with
    | Some f when f >= 0.0 && f <= 1.0 ->
      r := f;
      Ok ()
    | _ -> Error (Printf.sprintf "%s wants a rate in [0,1], got %S" key v)
  in
  let field kv =
    match String.index_opt kv '=' with
    | None -> Error (Printf.sprintf "malformed field %S (want key=value)" kv)
    | Some i -> (
      let key = String.sub kv 0 i in
      let v = String.sub kv (i + 1) (String.length kv - i - 1) in
      match key with
      | "seed" -> (
        match int_of_string_opt v with
        | Some n ->
          seed := n;
          Ok ()
        | None -> Error (Printf.sprintf "seed wants an integer, got %S" v))
      | "delay_ms" -> (
        match int_of_string_opt v with
        | Some n when n >= 0 ->
          delay_ms := n;
          Ok ()
        | _ -> Error (Printf.sprintf "delay_ms wants an integer >= 0, got %S" v))
      | "short" -> rate key v short
      | "reset" -> rate key v reset
      | "torn" -> rate key v torn
      | "latency" -> rate key v latency
      | "storefail" -> rate key v storefail
      | _ -> Error (Printf.sprintf "unknown fault %S" key))
  in
  let fields =
    List.filter (fun s -> s <> "") (String.split_on_char ',' (String.trim spec))
  in
  if fields = [] then Error "empty fault spec"
  else
    let rec go = function
      | [] ->
        Ok
          {
            prng = Util.Prng.create !seed;
            short = !short;
            reset = !reset;
            torn = !torn;
            latency = !latency;
            delay_ms = !delay_ms;
            storefail = !storefail;
            spec;
          }
      | kv :: rest -> ( match field kv with Ok () -> go rest | Error e -> Error e)
    in
    go fields

let plane : t option ref = ref None

(* Injected faults are themselves observable: when a chaos run shows a
   latency histogram shifted right or torn-connection counters moving,
   these counters say how much of that the fault plane caused. *)
let m_short =
  Obs.Metrics.counter Obs.Metrics.default "faultplane.injected.short"
    ~help:"IO operations clamped to 1 byte by the fault plane"

let m_reset =
  Obs.Metrics.counter Obs.Metrics.default "faultplane.injected.reset"
    ~help:"reads/writes failed with an injected reset"

let m_torn =
  Obs.Metrics.counter Obs.Metrics.default "faultplane.injected.torn"
    ~help:"frames torn mid-write by the fault plane"

let m_latency =
  Obs.Metrics.counter Obs.Metrics.default "faultplane.injected.latency"
    ~help:"IO operations delayed by the fault plane"

let m_storefail =
  Obs.Metrics.counter Obs.Metrics.default "faultplane.injected.storefail"
    ~help:"store appends refused by the fault plane"

let configure p = plane := p

let configure_from_env () =
  match Sys.getenv_opt "PROFD_FAULTS" with
  | None | Some "" -> Ok ()
  | Some spec -> (
    match of_spec spec with
    | Ok p ->
      configure (Some p);
      Ok ()
    | Error e -> Error (Printf.sprintf "PROFD_FAULTS: %s" e))

let active () = !plane <> None

(* every decision consumes PRNG state only when its fault is enabled,
   so plans with different fault sets stay independent streams *)
let hit t rate = rate > 0.0 && Util.Prng.float t.prng 1.0 < rate

let clamp_io len =
  match !plane with
  | Some t when len > 1 && hit t t.short ->
    Obs.Metrics.incr m_short;
    1
  | _ -> len

let fail_read () =
  match !plane with
  | Some t when hit t t.reset ->
    Obs.Metrics.incr m_reset;
    true
  | _ -> false

let fail_write () =
  match !plane with
  | Some t when hit t t.reset ->
    Obs.Metrics.incr m_reset;
    true
  | _ -> false

let tear_frame total =
  match !plane with
  | Some t when total > 0 && hit t t.torn ->
    Obs.Metrics.incr m_torn;
    Some (Util.Prng.int t.prng total)
  | _ -> None

let delay () =
  match !plane with
  | Some t when hit t t.latency && t.delay_ms > 0 ->
    Obs.Metrics.incr m_latency;
    ignore (Unix.select [] [] [] (float_of_int t.delay_ms /. 1000.0))
  | _ -> ()

let store_fails () =
  match !plane with
  | Some t when hit t t.storefail ->
    Obs.Metrics.incr m_storefail;
    true
  | _ -> false
