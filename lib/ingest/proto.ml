(* The profd wire protocol: u32-LE length-prefixed frames carrying a
   verb line plus an optional binary payload. See proto.mli for the
   grammar.

   The transport layer here is the chokepoint for every byte the fleet
   pipeline moves, so it carries the robustness obligations in one
   place: deadlines on every syscall, EINTR/EAGAIN retries, partial
   writes finished, and the deterministic fault plane consulted on
   each operation so chaos tests can corrupt either side at will. *)

type request =
  | Submit of { label : string; id : string option; payload : string }
  | Query_top of int
  | Query_report
  | Query_sreport
  | Query_stats
  | Query_metrics
  | Query_health
  | Flush
  | Compact
  | Shutdown

type response =
  | Resp_ok of string
  | Resp_busy of float
  | Resp_err of string

let max_frame = 64 * 1024 * 1024

let valid_label s =
  s <> "" && String.length s <= 256
  && not (String.exists (fun c -> c = '\n' || c = '\r') s)

let valid_id s =
  s <> "" && String.length s <= 64
  && String.for_all
       (fun c ->
         (c >= '0' && c <= '9')
         || (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || c = '_' || c = '.' || c = '-')
       s

(* One process-wide stream, seeded once: splitmix64 cannot repeat an
   output within a stream, so ids are unique per process, and the pid
   in the seed keeps concurrent processes apart. Seeding per call from
   time ⊕ counter is not safe — calls 1 µs and one increment apart can
   cancel to the same seed, and a colliding id silently overwrites a
   spool entry. *)
let id_rng =
  lazy
    (Util.Prng.create
       (int_of_float (Unix.gettimeofday () *. 1e6)
       lxor (Unix.getpid () lsl 40)))

let fresh_id () =
  Printf.sprintf "%016Lx" (Util.Prng.next64 (Lazy.force id_rng))

(* --- frame transport -------------------------------------------------- *)

type frame_error =
  | Eof
  | Timeout
  | Oversize of int
  | Torn of string

let frame_error_to_string = function
  | Eof -> "connection closed"
  | Timeout -> "IO deadline exceeded"
  | Oversize len ->
    Printf.sprintf "frame length %d exceeds the %d-byte cap" len max_frame
  | Torn msg -> msg

(* Wait until [fd] is ready for [kind], bounded by the absolute
   [deadline]. Blocking fds normally never need this, but it is what
   turns EAGAIN/EWOULDBLOCK (and slow peers, once a deadline is set)
   from hangs into structured errors. *)
let await kind fd deadline =
  let rec go () =
    let tmo =
      match deadline with
      | None -> -1.0 (* wait forever *)
      | Some d -> d -. Unix.gettimeofday ()
    in
    if tmo <= 0.0 && deadline <> None then Error Timeout
    else
      let r, w = match kind with `R -> ([ fd ], []) | `W -> ([], [ fd ]) in
      match Unix.select r w [] tmo with
      | [], [], _ -> if deadline = None then go () else Error Timeout
      | _ -> Ok ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (e, _, _) -> Error (Torn (Unix.error_message e))
  in
  go ()

let rec write_all ?deadline fd bytes off len =
  if len = 0 then Ok ()
  else begin
    Faultplane.delay ();
    if Faultplane.fail_write () then
      Error (Torn "injected EPIPE: peer reset the connection")
    else
      match Unix.write fd bytes off (Faultplane.clamp_io len) with
      | n -> write_all ?deadline fd bytes (off + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        write_all ?deadline fd bytes off len
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> (
        match await `W fd deadline with
        | Ok () -> write_all ?deadline fd bytes off len
        | Error e -> Error e)
      | exception Unix.Unix_error (Unix.EPIPE, _, _) ->
        Error (Torn "peer closed the connection mid-write (EPIPE)")
      | exception Unix.Unix_error (e, _, _) -> Error (Torn (Unix.error_message e))
  end

let rec read_all ?deadline fd bytes off len =
  if len = 0 then Ok ()
  else begin
    Faultplane.delay ();
    if Faultplane.fail_read () then
      Error (Torn "injected ECONNRESET: peer reset the connection")
    else
      match Unix.read fd bytes off (Faultplane.clamp_io len) with
      | 0 ->
        Error
          (Torn
             (Printf.sprintf "connection closed with %d byte(s) missing" len))
      | n -> read_all ?deadline fd bytes (off + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        read_all ?deadline fd bytes off len
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> (
        match await `R fd deadline with
        | Ok () -> read_all ?deadline fd bytes off len
        | Error e -> Error e)
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
        Error (Torn "peer reset the connection (ECONNRESET)")
      | exception Unix.Unix_error (e, _, _) -> Error (Torn (Unix.error_message e))
  end

let write_frame ?deadline fd body =
  let len = String.length body in
  if len > max_frame then Error (Oversize len)
  else begin
    let b = Bytes.create (4 + len) in
    Bytes.set_int32_le b 0 (Int32.of_int len);
    Bytes.blit_string body 0 b 4 len;
    match Faultplane.tear_frame (4 + len) with
    | Some n ->
      (* a torn frame on the wire: emit a prefix, then "die" *)
      ignore (write_all ?deadline fd b 0 n);
      Error (Torn "injected torn frame: writer died mid-frame")
    | None -> write_all ?deadline fd b 0 (4 + len)
  end

let read_frame ?deadline fd =
  let hdr = Bytes.create 4 in
  (* distinguish a clean close (EOF before any header byte) from a
     torn one (EOF with a frame in flight) *)
  let first =
    Faultplane.delay ();
    if Faultplane.fail_read () then
      Error (Torn "injected ECONNRESET: peer reset the connection")
    else
      match await `R fd deadline with
      | Error e -> Error e
      | Ok () -> (
        match Unix.read fd hdr 0 (Faultplane.clamp_io 4) with
        | 0 -> Error Eof
        | n -> Ok n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> Ok 0
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          Ok 0
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
          Error (Torn "peer reset the connection (ECONNRESET)")
        | exception Unix.Unix_error (e, _, _) ->
          Error (Torn (Unix.error_message e)))
  in
  match first with
  | Error e -> Error e
  | Ok n -> (
    match read_all ?deadline fd hdr n (4 - n) with
    | Error e -> Error e
    | Ok () -> (
      let len = Int32.to_int (Bytes.get_int32_le hdr 0) in
      if len < 0 || len > max_frame then Error (Oversize len)
      else
        let body = Bytes.create len in
        match read_all ?deadline fd body 0 len with
        | Error e -> Error e
        | Ok () -> Ok (Bytes.unsafe_to_string body)))

(* --- body codecs ------------------------------------------------------ *)

let encode_request = function
  | Submit { label; id = None; payload } ->
    Printf.sprintf "SUBMIT %s\n%s" label payload
  | Submit { label; id = Some id; payload } ->
    Printf.sprintf "SUBMIT %s %s\n%s" label id payload
  | Query_top n -> Printf.sprintf "QUERY top %d\n" n
  | Query_report -> "QUERY report\n"
  | Query_sreport -> "QUERY sreport\n"
  | Query_stats -> "QUERY stats\n"
  | Query_metrics -> "QUERY metrics\n"
  | Query_health -> "QUERY health\n"
  | Flush -> "FLUSH\n"
  | Compact -> "COMPACT\n"
  | Shutdown -> "SHUTDOWN\n"

let split_verb_line body =
  match String.index_opt body '\n' with
  | None -> (body, "")
  | Some i ->
    (String.sub body 0 i, String.sub body (i + 1) (String.length body - i - 1))

let decode_request body =
  let line, payload = split_verb_line body in
  let submit label id =
    if not (valid_label label) then
      Error (Printf.sprintf "invalid label %S" label)
    else
      match id with
      | Some i when not (valid_id i) ->
        Error (Printf.sprintf "invalid submission id %S" i)
      | _ -> Ok (Submit { label; id; payload })
  in
  match String.split_on_char ' ' line with
  | [ "SUBMIT"; label ] -> submit label None
  | [ "SUBMIT"; label; id ] -> submit label (Some id)
  | [ "QUERY"; "top"; n ] -> (
    match int_of_string_opt n with
    | Some n when n >= 1 && n <= 1_000_000 -> Ok (Query_top n)
    | _ -> Error (Printf.sprintf "invalid top count %S" n))
  | [ "QUERY"; "report" ] -> Ok Query_report
  | [ "QUERY"; "sreport" ] -> Ok Query_sreport
  | [ "QUERY"; "stats" ] -> Ok Query_stats
  | [ "QUERY"; "metrics" ] -> Ok Query_metrics
  | [ "QUERY"; "health" ] -> Ok Query_health
  | [ "FLUSH" ] -> Ok Flush
  | [ "COMPACT" ] -> Ok Compact
  | [ "SHUTDOWN" ] -> Ok Shutdown
  | _ -> Error (Printf.sprintf "unknown request %S" line)

let encode_response = function
  | Resp_ok payload -> "OK\n" ^ payload
  | Resp_busy retry_after -> Printf.sprintf "BUSY %.3f\n" retry_after
  | Resp_err msg ->
    Printf.sprintf "ERR %s\n" (String.map (function '\n' -> ' ' | c -> c) msg)

let decode_response body =
  let line, payload = split_verb_line body in
  if line = "OK" then Ok (Resp_ok payload)
  else
    match String.index_opt line ' ' with
    | Some 4 when String.sub line 0 4 = "BUSY" -> (
      match float_of_string_opt (String.sub line 5 (String.length line - 5)) with
      | Some retry_after when retry_after >= 0.0 -> Ok (Resp_busy retry_after)
      | _ -> Error (Printf.sprintf "malformed BUSY response %S" line))
    | Some 3 when String.sub line 0 3 = "ERR" ->
      Ok (Resp_err (String.sub line 4 (String.length line - 4)))
    | _ -> Error (Printf.sprintf "malformed response line %S" line)

(* --- client side ------------------------------------------------------ *)

let rpc_once ~timeout ~socket req =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let deadline = Unix.gettimeofday () +. timeout in
        match Unix.connect fd (Unix.ADDR_UNIX socket) with
        | exception Unix.Unix_error (e, _, _) ->
          Error (Printf.sprintf "%s: %s" socket (Unix.error_message e))
        | () -> (
          match write_frame ~deadline fd (encode_request req) with
          | Error e -> Error (frame_error_to_string e)
          | Ok () -> (
            match read_frame ~deadline fd with
            | Error e -> Error (frame_error_to_string e)
            | Ok body -> decode_response body)))

(* Capped exponential backoff with deterministic jitter: attempt k
   sleeps min(2s, 50ms * 2^k) scaled into [0.5, 1.0) by the seeded
   PRNG, so two clients with different seeds never thundering-herd in
   lockstep and a chaos run replays its exact schedule. *)
let backoff_delay prng k =
  let base = Float.min 2.0 (0.05 *. Float.pow 2.0 (float_of_int k)) in
  base *. (0.5 +. (0.5 *. Util.Prng.float prng 1.0))

let rpc ?(attempts = 1) ?(timeout = 30.0) ?(retry_seed = 0) ~socket req =
  let attempts = max 1 attempts in
  let prng = Util.Prng.create (0x9e3779b9 lxor retry_seed) in
  let sleep d = if d > 0.0 then ignore (Unix.select [] [] [] d) in
  let rec attempt k =
    let outcome = rpc_once ~timeout ~socket req in
    let last = k >= attempts - 1 in
    match outcome with
    | Ok (Resp_busy retry_after) when not last ->
      (* the daemon is shedding load: its retry-after is the floor *)
      sleep (Float.max retry_after (backoff_delay prng k));
      attempt (k + 1)
    | Error _ when not last ->
      sleep (backoff_delay prng k);
      attempt (k + 1)
    | outcome -> outcome
  in
  attempt 0

let wait_ready ~socket ~timeout =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec poll pause =
    match rpc ~timeout:(Float.max 1.0 timeout) ~socket Query_stats with
    | Ok (Resp_ok _) -> Ok ()
    | Ok (Resp_busy _) -> Ok () (* overloaded is still alive *)
    | Ok (Resp_err e) -> Error (Printf.sprintf "daemon answered with: %s" e)
    | Error e ->
      if Unix.gettimeofday () >= deadline then
        Error (Printf.sprintf "daemon not ready after %.1fs: %s" timeout e)
      else begin
        ignore (Unix.select [] [] [] pause);
        poll (Float.min 0.25 (pause *. 2.0))
      end
  in
  poll 0.01
