(* The profd wire protocol: u32-LE length-prefixed frames carrying a
   verb line plus an optional binary payload. See proto.mli for the
   grammar. *)

type request =
  | Submit of { label : string; payload : string }
  | Query_top of int
  | Query_report
  | Query_sreport
  | Query_stats
  | Flush
  | Compact
  | Shutdown

type response = Resp_ok of string | Resp_err of string

let max_frame = 64 * 1024 * 1024

let valid_label s =
  s <> "" && String.length s <= 256
  && not (String.exists (fun c -> c = '\n' || c = '\r') s)

(* --- frame transport -------------------------------------------------- *)

let rec write_all fd bytes off len =
  if len = 0 then Ok ()
  else
    match Unix.write fd bytes off len with
    | n -> write_all fd bytes (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd bytes off len
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let rec read_all fd bytes off len =
  if len = 0 then Ok ()
  else
    match Unix.read fd bytes off len with
    | 0 -> Error (Printf.sprintf "connection closed with %d byte(s) missing" len)
    | n -> read_all fd bytes (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_all fd bytes off len
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let write_frame fd body =
  let len = String.length body in
  if len > max_frame then
    Error (Printf.sprintf "frame of %d bytes exceeds the %d-byte cap" len max_frame)
  else begin
    let b = Bytes.create (4 + len) in
    Bytes.set_int32_le b 0 (Int32.of_int len);
    Bytes.blit_string body 0 b 4 len;
    write_all fd b 0 (4 + len)
  end

let read_frame fd =
  let hdr = Bytes.create 4 in
  match read_all fd hdr 0 4 with
  | Error e -> Error e
  | Ok () -> (
    let len = Int32.to_int (Bytes.get_int32_le hdr 0) in
    if len < 0 || len > max_frame then
      Error
        (Printf.sprintf "frame length %d outside [0,%d] (corrupt stream?)" len
           max_frame)
    else
      let body = Bytes.create len in
      match read_all fd body 0 len with
      | Error e -> Error e
      | Ok () -> Ok (Bytes.unsafe_to_string body))

(* --- body codecs ------------------------------------------------------ *)

let encode_request = function
  | Submit { label; payload } -> Printf.sprintf "SUBMIT %s\n%s" label payload
  | Query_top n -> Printf.sprintf "QUERY top %d\n" n
  | Query_report -> "QUERY report\n"
  | Query_sreport -> "QUERY sreport\n"
  | Query_stats -> "QUERY stats\n"
  | Flush -> "FLUSH\n"
  | Compact -> "COMPACT\n"
  | Shutdown -> "SHUTDOWN\n"

let split_verb_line body =
  match String.index_opt body '\n' with
  | None -> (body, "")
  | Some i ->
    (String.sub body 0 i, String.sub body (i + 1) (String.length body - i - 1))

let decode_request body =
  let line, payload = split_verb_line body in
  match String.split_on_char ' ' line with
  | [ "SUBMIT"; label ] ->
    if valid_label label then Ok (Submit { label; payload })
    else Error (Printf.sprintf "invalid label %S" label)
  | [ "QUERY"; "top"; n ] -> (
    match int_of_string_opt n with
    | Some n when n >= 1 && n <= 1_000_000 -> Ok (Query_top n)
    | _ -> Error (Printf.sprintf "invalid top count %S" n))
  | [ "QUERY"; "report" ] -> Ok Query_report
  | [ "QUERY"; "sreport" ] -> Ok Query_sreport
  | [ "QUERY"; "stats" ] -> Ok Query_stats
  | [ "FLUSH" ] -> Ok Flush
  | [ "COMPACT" ] -> Ok Compact
  | [ "SHUTDOWN" ] -> Ok Shutdown
  | _ -> Error (Printf.sprintf "unknown request %S" line)

let encode_response = function
  | Resp_ok payload -> "OK\n" ^ payload
  | Resp_err msg -> Printf.sprintf "ERR %s\n" (String.map (function '\n' -> ' ' | c -> c) msg)

let decode_response body =
  let line, payload = split_verb_line body in
  if line = "OK" then Ok (Resp_ok payload)
  else
    match String.index_opt line ' ' with
    | Some 3 when String.sub line 0 3 = "ERR" ->
      Ok (Resp_err (String.sub line 4 (String.length line - 4)))
    | _ -> Error (Printf.sprintf "malformed response line %S" line)

(* --- client side ------------------------------------------------------ *)

let rpc ~socket req =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        match Unix.connect fd (Unix.ADDR_UNIX socket) with
        | exception Unix.Unix_error (e, _, _) ->
          Error (Printf.sprintf "%s: %s" socket (Unix.error_message e))
        | () -> (
          match write_frame fd (encode_request req) with
          | Error e -> Error e
          | Ok () -> (
            match read_frame fd with
            | Error e -> Error e
            | Ok body -> decode_response body)))

let wait_ready ~socket ~timeout =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec poll () =
    match rpc ~socket Query_stats with
    | Ok (Resp_ok _) -> Ok ()
    | Ok (Resp_err e) -> Error (Printf.sprintf "daemon answered with: %s" e)
    | Error e ->
      if Unix.gettimeofday () >= deadline then
        Error (Printf.sprintf "daemon not ready after %.1fs: %s" timeout e)
      else begin
        ignore (Unix.select [] [] [] 0.05);
        poll ()
      end
  in
  poll ()
