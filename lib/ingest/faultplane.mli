(** The deterministic fault plane for the fleet pipeline.

    Chaos testing the daemon and its clients needs hostile-network
    behavior — short reads and writes, connection resets, torn frames,
    latency spikes, a store that refuses appends — that {e replays
    byte-for-byte}: the same seed and the same operation sequence must
    produce the same faults, so a failing chaos run can be re-driven
    under a debugger. All randomness flows through one seeded
    {!Util.Prng} stream owned by the plane.

    The plane is process-global and off by default (every hook is a
    no-op until {!configure} installs a plan). Processes under test
    arm it from the [PROFD_FAULTS] environment variable — see
    {!of_spec} for the grammar — so the same binaries run faulty in
    the chaos gate and clean everywhere else.

    Transport hooks are consulted by {!Proto}'s frame layer on both
    sides of the socket; the store hook is consulted by
    {!Ingest.flush} before each append, simulating a disk that stalls
    or errors under load (the trigger for the daemon's overload
    shedding). *)

type t

val of_spec : string -> (t, string) result
(** Parse a fault plan. The spec is comma-separated [key=value]
    pairs; every rate is a probability in [0,1]:

    {v
      seed=N        PRNG seed (default 1)
      short=R       truncate a read/write syscall to 1 byte
      reset=R       fail a read/write with ECONNRESET (reads) / EPIPE (writes)
      torn=R        stop a frame write partway and report the peer gone
      latency=R     sleep before a read/write syscall
      delay_ms=N    how long a latency fault sleeps (default 2)
      storefail=R   make the ingest queue's store append fail
    v}

    e.g. ["seed=42,short=0.3,reset=0.02,torn=0.02,storefail=0.5"]. *)

val configure : t option -> unit
(** Install (or, with [None], remove) the process-global plan. *)

val configure_from_env : unit -> (unit, string) result
(** Read [PROFD_FAULTS]; unset or empty leaves the plane off. *)

val active : unit -> bool

val spec : t -> string
(** The spec string the plan was parsed from (for banners). *)

(** {1 Hooks} — no-ops when the plane is off *)

val clamp_io : int -> int
(** Length a read/write syscall is allowed to move this time
    (a [short] fault truncates it to 1 byte). *)

val fail_read : unit -> bool
(** True: the caller should fail this read as [ECONNRESET]. *)

val fail_write : unit -> bool
(** True: the caller should fail this write as [EPIPE]. *)

val tear_frame : int -> int option
(** [tear_frame total]: [Some n] orders the frame writer to emit only
    [n < total] bytes and then report the connection gone — a torn
    frame on the wire. *)

val delay : unit -> unit
(** Maybe sleep [delay_ms]. *)

val store_fails : unit -> bool
(** True: the ingest queue must fail this store append with an
    injected IO error. *)
