(** The batching ingestion queue in front of the profile store.

    Continuous profiling means submissions arrive one at a time, but
    appending every one of them to disk individually wastes the
    store's sequential write path. The queue buffers decoded
    submissions and flushes a whole batch when either trigger fires:

    - {b size}: the buffer reached [max_batch] profiles;
    - {b age}: the oldest buffered profile has waited [max_age]
      seconds ({!tick} checks this — a daemon calls it from its idle
      loop).

    Submissions are decoded {e strictly} on arrival, routed by magic
    (arc profiles and {!Gmon.Sprof} sampled profiles share the queue):
    an undecodable payload goes to the store's quarantine with its
    per-file diagnostics immediately ([`Quarantined]) and can never
    poison a batch. Every flush publishes batch metrics ([ingest.*])
    and a span to {!Obs}. *)

type t

val create : ?max_batch:int -> ?max_age:float -> ?queue_cap:int -> Store.t -> t
(** Defaults: [max_batch = 64], [max_age = 5.0] seconds,
    [queue_cap = 256] (clamped to at least [max_batch]). A
    [max_batch] of 1 makes every submission durable immediately.
    [queue_cap] bounds the buffer: once the store stops keeping up and
    the queue fills, further submissions are {e shed} explicitly
    instead of growing memory without bound. *)

val store : t -> Store.t

val pending : t -> int
(** Profiles buffered and not yet flushed. *)

val queue_cap : t -> int

type outcome =
  | Queued of int  (** buffered; the batch now holds this many *)
  | Flushed of int  (** buffered, and a size-triggered flush wrote this many *)
  | Quarantined of string  (** undecodable; the per-file diagnostics *)
  | Shed
      (** the queue is at [queue_cap] and a flush could not drain it:
          the submission was refused (backpressure) — the caller
          should answer overload with a retry-after, never drop
          silently. Counted in [ingest.shed]. *)

val submit : t -> label:string -> string -> (outcome, string) result
(** Decode one submission and buffer it (or quarantine it). When the
    size trigger fires but the store refuses the batch, the
    submission is still accepted ([Queued]) as long as the queue is
    under [queue_cap] — the age trigger or an explicit {!flush}
    retries the append. [Error] only on IO failures — a daemon treats
    those as fatal for the request, never for the process. *)

val flush : t -> (int, string) result
(** Append every buffered profile to the store now; returns how many
    were written. A failed append re-buffers the remaining tail so no
    accepted submission is silently dropped. *)

val tick : t -> (int, string) result
(** Flush if the age trigger fired; [Ok 0] otherwise. *)
