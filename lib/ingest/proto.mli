(** The profd wire protocol: length-prefixed frames over a
    Unix-domain stream socket.

    Every message — request or response — is one frame:

    {v
      +----------------+---------------------+
      | u32 LE length  |  body (length bytes)|
      +----------------+---------------------+
    v}

    A request body is a verb line terminated by ['\n'], optionally
    followed by a binary payload (the rest of the frame):

    {v
      SUBMIT <label>[ <id>]\n<bytes>   ingest one profile (gmon or sprof)
      QUERY top <n>\n                  top-N buckets by self ticks
      QUERY report\n                   the merged profile, as gmon bytes
      QUERY sreport\n                  the merged sampled profile, as sprof bytes
      QUERY stats\n                    store + queue statistics, JSON
      QUERY metrics\n                  the daemon's full metrics registry, JSON
      QUERY health\n                   uptime, queue, conns, shards, version, JSON
      FLUSH\n                          force the ingest queue to the store
      COMPACT\n                        fold every shard's tail
      SHUTDOWN\n                       drain, flush, then stop serving
    v}

    The optional submission [id] makes retries safe: a daemon remembers
    recently seen ids and acknowledges a duplicate without ingesting it
    again, so a client whose response frame was lost can resend without
    double-counting the profile.

    A response body is a status line, then a payload:

    {v
      OK\n<payload>
      BUSY <retry_after>\n             overloaded: retry after that many seconds
      ERR <message>\n
    v}

    Labels must be non-empty and newline-free. Frames are capped at
    {!max_frame} bytes so a corrupt or hostile length prefix cannot
    make either side allocate unboundedly.

    The transport layer retries [EINTR] and [EAGAIN]/[EWOULDBLOCK],
    finishes partial writes, honors an absolute deadline on every
    syscall, and consults {!Faultplane} so chaos tests can inject
    short reads, resets, and torn frames deterministically. *)

type request =
  | Submit of { label : string; id : string option; payload : string }
  | Query_top of int
  | Query_report
  | Query_sreport
  | Query_stats
  | Query_metrics
  | Query_health
  | Flush
  | Compact
  | Shutdown

type response =
  | Resp_ok of string
  | Resp_busy of float  (** overloaded; retry after this many seconds *)
  | Resp_err of string

val max_frame : int
(** 64 MiB. *)

val valid_label : string -> bool

val valid_id : string -> bool
(** Non-empty, at most 64 bytes of [[0-9a-zA-Z_.-]]. *)

val fresh_id : unit -> string
(** A new submission id, unique per process per call. *)

(** {1 Frame transport} *)

type frame_error =
  | Eof  (** the peer closed cleanly before any byte of this frame *)
  | Timeout  (** the deadline passed with the frame incomplete *)
  | Oversize of int  (** length prefix beyond {!max_frame} *)
  | Torn of string  (** mid-frame close, reset, or transport failure *)

val frame_error_to_string : frame_error -> string

val write_frame :
  ?deadline:float -> Unix.file_descr -> string -> (unit, frame_error) result
(** [deadline] is absolute ([Unix.gettimeofday]-based); omitted means
    wait forever. Partial writes are completed; [EINTR] and
    [EAGAIN]/[EWOULDBLOCK] are retried (waiting for writability, up to
    the deadline). *)

val read_frame :
  ?deadline:float -> Unix.file_descr -> (string, frame_error) result
(** [Error Eof] when the peer closed between frames — the clean end of
    a connection; every other error is abnormal. *)

(** {1 Body codecs} *)

val encode_request : request -> string

val decode_request : string -> (request, string) result

val encode_response : response -> string

val decode_response : string -> (response, string) result

(** {1 Client side} *)

val rpc :
  ?attempts:int ->
  ?timeout:float ->
  ?retry_seed:int ->
  socket:string ->
  request ->
  (response, string) result
(** Connect to a daemon, send one request, read one response, close.
    [timeout] (default 30 s) bounds each attempt's IO; [attempts]
    (default 1) adds capped exponential backoff with deterministic
    jitter (seeded by [retry_seed]) between attempts, retrying
    transport failures and [Resp_busy] answers — a [Resp_busy]'s
    [retry_after] floor is honored. Retrying a [Submit] is safe when
    it carries an id (the daemon dedupes). The final attempt's
    [Resp_busy] is returned as-is so the caller can degrade (e.g.
    spool). [Error] carries connect/transport failures; a daemon-side
    failure arrives as [Resp_err]. *)

val wait_ready : socket:string -> timeout:float -> (unit, string) result
(** Poll {!rpc}[ Query_stats] with bounded backoff (10 ms doubling to
    250 ms) until the daemon answers or [timeout] seconds elapse. *)
