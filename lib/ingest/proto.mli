(** The profd wire protocol: length-prefixed frames over a
    Unix-domain stream socket.

    Every message — request or response — is one frame:

    {v
      +----------------+---------------------+
      | u32 LE length  |  body (length bytes)|
      +----------------+---------------------+
    v}

    A request body is a verb line terminated by ['\n'], optionally
    followed by a binary payload (the rest of the frame):

    {v
      SUBMIT <label>\n<gmon bytes>     ingest one profile (gmon or sprof)
      QUERY top <n>\n                  top-N buckets by self ticks
      QUERY report\n                   the merged profile, as gmon bytes
      QUERY sreport\n                  the merged sampled profile, as sprof bytes
      QUERY stats\n                    store + queue statistics, JSON
      FLUSH\n                          force the ingest queue to the store
      COMPACT\n                        fold every shard's tail
      SHUTDOWN\n                       flush, then stop serving
    v}

    A response body is a status line, then a payload:

    {v
      OK\n<payload>
      ERR <message>\n
    v}

    Labels must be non-empty and newline-free. Frames are capped at
    {!max_frame} bytes so a corrupt or hostile length prefix cannot
    make either side allocate unboundedly. *)

type request =
  | Submit of { label : string; payload : string }
  | Query_top of int
  | Query_report
  | Query_sreport
  | Query_stats
  | Flush
  | Compact
  | Shutdown

type response = Resp_ok of string | Resp_err of string

val max_frame : int
(** 64 MiB. *)

val valid_label : string -> bool

(** {1 Frame transport} *)

val write_frame : Unix.file_descr -> string -> (unit, string) result

val read_frame : Unix.file_descr -> (string, string) result
(** [Error] on EOF, a short read, or an oversized length prefix. *)

(** {1 Body codecs} *)

val encode_request : request -> string

val decode_request : string -> (request, string) result

val encode_response : response -> string

val decode_response : string -> (response, string) result

(** {1 Client side} *)

val rpc : socket:string -> request -> (response, string) result
(** Connect to a daemon, send one request, read one response, close.
    [Error] carries connect/transport failures (e.g. no daemon
    listening); a daemon-side failure arrives as [Resp_err]. *)

val wait_ready : socket:string -> timeout:float -> (unit, string) result
(** Poll {!rpc}[ Query_stats] until the daemon answers or [timeout]
    seconds elapse. *)
