(** The profd daemon engine: a single-threaded, multi-connection
    event loop over the {!Proto} wire protocol, hardened for hostile
    peers and observable while it runs.

    The loop owns every connection concurrently (non-blocking fds,
    one [select]), so no single peer can stall the daemon:

    - {b Deadlines}: every connection must finish its current frame —
      in either direction — within [conn_timeout] seconds of starting
      it; a slowloris peer that trickles bytes (or stops) is closed
      and counted in [profd.conn.deadline_closed].
    - {b Connection cap}: at [max_conns] concurrent connections a new
      peer is answered with one best-effort [BUSY] frame and closed,
      counted in [profd.conn.refused] — never silently ignored.
    - {b Bounded queue}: when the ingest queue is at capacity and the
      store cannot drain it, submissions are shed with
      [BUSY <retry_after>] ([profd.shed.overload]); the client's
      backoff honors the hint.
    - {b Oversize frames}: a length prefix beyond {!Proto.max_frame}
      is answered with a structured [ERR] frame and the connection is
      closed — no allocation, no hang ([profd.conn.oversize]).
    - {b Duplicate suppression}: submissions carrying an id are
      remembered in a bounded window; a retry whose previous response
      was lost is acknowledged ([OK duplicate]) without ingesting
      twice ([profd.dedup.hits]).
    - {b Graceful drain}: on [SHUTDOWN], SIGTERM, or SIGINT the loop
      stops accepting, finishes in-flight requests (bounded by
      [drain_grace]), flushes the ingest queue, and fsyncs the store
      directories before returning.

    Telemetry (this revision):

    - Every RPC's latency — first request byte to last response byte,
      microseconds, transport stalls included — lands in a per-verb
      histogram [profd.rpc.<verb>.latency].
    - Bytes are counted per direction in
      [profd.bytes.read]/[profd.bytes.written]; the queue depth and
      connection count are published as gauges.
    - [QUERY metrics] answers with the live registry in the exact JSON
      shape of [--obs-metrics]; [QUERY health] answers with a one-look
      JSON summary (version, uptime, queue, conns, per-shard store
      occupancy, headline counters, telemetry state).
    - With [telemetry_out] set, the loop appends a checksummed
      {!Obs.Timeseries} snapshot every [telemetry_interval] seconds —
      on an idle daemon too — and once more at drain.
    - Every operationally interesting moment (shed, quarantine,
      deadline close, refused conn, drain, compaction, flush failure)
      is a structured {!Obs.Eventlog} record, not an stderr print.

    Torn frames, resets, and mid-request disconnects are survived by
    construction: a connection failure never touches another
    connection or the process. *)

val version : string
(** Reported by [QUERY health] and the [serve.start] event. *)

type config = {
  socket : string;  (** Unix-domain socket path to serve on *)
  conn_timeout : float;  (** per-frame IO deadline, seconds *)
  max_conns : int;  (** concurrent-connection cap *)
  retry_after : float;  (** the hint carried by [BUSY] responses *)
  drain_grace : float;  (** max seconds to finish in-flight work on drain *)
  telemetry_out : string option;
      (** append periodic {!Obs.Timeseries} snapshots here; [None]
          disables the loop *)
  telemetry_interval : float;  (** seconds between snapshots *)
}

val default_config : socket:string -> config
(** [conn_timeout = 10], [max_conns = 64], [retry_after = 0.1],
    [drain_grace = 5], [telemetry_out = None],
    [telemetry_interval = 1.0]. *)

val serve :
  config ->
  Ingest.t ->
  stop_requested:(unit -> bool) ->
  events:Obs.Eventlog.t ->
  (unit, string) result
(** Run the loop until a drain completes. [stop_requested] is polled
    every iteration (profd's signal handlers set it); the [SHUTDOWN]
    request drains too. Lifecycle and anomaly reporting goes through
    [events]. [Error] only for listener setup failures — peer failures
    never end the loop. *)
