(** The client-side profile spool: local durability when the daemon
    is not.

    A run that cannot reach profd must not lose its profile — the
    whole premise of leaving profiling on in production is that
    collection is safe. When submission fails after retries, the
    payload is written to a spool directory instead; a later
    [profd --drain-spool DIR] resubmits everything and deletes what
    the daemon acknowledged, so the pipeline's accounting equation
    (submitted = stored + quarantined + spooled) closes exactly.

    A spool entry is one file, [sp-<id>.spool], written with the
    crash-safe temp-and-rename writer:

    {v
      PROFSPOOL1\n<label>\n<payload bytes>
    v}

    The [<id>] in the name is the submission id: draining resubmits
    under the same id, so a drain interrupted after the daemon's
    acknowledgment but before the local delete is deduplicated by the
    daemon on the next drain rather than double-counted. *)

val add : dir:string -> label:string -> string -> (string, string) result
(** Spool one payload (gmon or sprof bytes — the daemon routes by
    magic); creates [dir] when missing. Returns the entry's id. *)

val entries : dir:string -> (string list, string) result
(** Spool file paths, oldest first (by name); [[]] when the directory
    does not exist. *)

val read : string -> (string * string * string, string) result
(** [read path] is [(label, id, payload)]. *)

val drain :
  dir:string ->
  submit:(label:string -> id:string -> string -> ([ `Accepted | `Retry ], string) result) ->
  (int * int, string) result
(** Submit every entry; delete the accepted ones. [`Retry] (and
    [Error]) keep the entry for a later drain; undecodable spool
    files are renamed to [.bad] so one damaged entry cannot wedge the
    drain forever. Returns [(drained, remaining)]. *)
