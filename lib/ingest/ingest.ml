(* The batching ingestion queue. Decode strictly at the door,
   quarantine failures immediately, buffer the rest, and flush whole
   batches to the store on a size or age trigger. *)

type payload = Arc of Gmon.t | Sampled of Gmon.Sprof.t

type entry = { e_label : string; e_payload : payload }

type t = {
  ing_store : Store.t;
  max_batch : int;
  max_age : float;
  queue_cap : int;
  mutable buffer : entry list;  (* newest first *)
  mutable n_buffered : int;
  mutable oldest : float;  (* arrival time of the oldest buffered entry *)
}

let m_submitted =
  Obs.Metrics.counter Obs.Metrics.default "ingest.submitted"
    ~help:"submissions accepted into the queue"

let m_quarantined =
  Obs.Metrics.counter Obs.Metrics.default "ingest.quarantined"
    ~help:"submissions rejected at decode and quarantined"

let m_batches =
  Obs.Metrics.counter Obs.Metrics.default "ingest.batches"
    ~help:"batch flushes performed"

let m_flushed =
  Obs.Metrics.counter Obs.Metrics.default "ingest.flushed_profiles"
    ~help:"profiles appended to the store by batch flushes"

let m_batch_size =
  Obs.Metrics.histogram Obs.Metrics.default "ingest.batch_size"
    ~help:"profiles per flushed batch"

let m_bytes =
  Obs.Metrics.counter Obs.Metrics.default "ingest.bytes_received"
    ~help:"submission bytes presented to the queue"

let m_shed =
  Obs.Metrics.counter Obs.Metrics.default "ingest.shed"
    ~help:"submissions refused because the queue was full (overload)"

let create ?(max_batch = 64) ?(max_age = 5.0) ?(queue_cap = 256) store =
  let max_batch = max 1 max_batch in
  {
    ing_store = store;
    max_batch;
    max_age = Float.max 0.0 max_age;
    queue_cap = max max_batch queue_cap;
    buffer = [];
    n_buffered = 0;
    oldest = 0.0;
  }

let store t = t.ing_store

let pending t = t.n_buffered

let queue_cap t = t.queue_cap

type outcome =
  | Queued of int
  | Flushed of int
  | Quarantined of string
  | Shed

let flush t =
  match t.buffer with
  | [] -> Ok 0
  | entries ->
    let batch = List.rev entries in
    t.buffer <- [];
    t.n_buffered <- 0;
    Obs.Trace.with_span ~cat:"ingest" "ingest-flush"
      ~args:[ ("batch", string_of_int (List.length batch)) ]
    @@ fun () ->
    let rec go n = function
      | [] ->
        Obs.Metrics.incr m_batches;
        Obs.Metrics.incr m_flushed ~by:n;
        Obs.Metrics.observe m_batch_size n;
        Ok n
      | e :: rest -> (
        let appended =
          if Faultplane.store_fails () then
            Error "injected store fault: append refused"
          else
            match e.e_payload with
            | Arc g -> Store.append t.ing_store ~label:e.e_label g
            | Sampled sp -> Store.append_sprof t.ing_store ~label:e.e_label sp
        in
        match appended with
        | Ok () -> go (n + 1) rest
        | Error err ->
          (* keep what did not reach the store: the next flush (or the
             caller's retry) sees it again *)
          let kept = e :: rest in
          t.buffer <- List.rev kept @ t.buffer;
          t.n_buffered <- t.n_buffered + List.length kept;
          Error err)
    in
    go 0 batch

let submit t ~label bytes =
  Obs.Metrics.incr m_bytes ~by:(String.length bytes);
  (* Backpressure before decode: a full queue means the store is not
     keeping up, and the cheapest thing to do with work we cannot hold
     is to refuse it before spending decode cycles on it. The shed is
     explicit (the caller answers BUSY, never drops silently). *)
  if
    t.n_buffered >= t.queue_cap
    && (Result.is_error (flush t) || t.n_buffered >= t.queue_cap)
  then begin
    Obs.Metrics.incr m_shed;
    Ok Shed
  end
  else
    let decoded =
      if Gmon.Sprof.sniff_bytes bytes then
        Result.map
          (fun (sp, _) -> Sampled sp)
          (Gmon.Sprof.decode ~mode:`Strict bytes)
      else Result.map (fun (g, _) -> Arc g) (Gmon.decode ~mode:`Strict bytes)
    in
    match decoded with
    | Error e ->
      Obs.Metrics.incr m_quarantined;
      let reason = Gmon.decode_error_to_string e in
      Result.map
        (fun _ -> Quarantined reason)
        (Store.append_bytes t.ing_store ~label bytes)
    | Ok payload ->
      Obs.Metrics.incr m_submitted;
      if t.buffer = [] then t.oldest <- Unix.gettimeofday ();
      t.buffer <- { e_label = label; e_payload = payload } :: t.buffer;
      t.n_buffered <- t.n_buffered + 1;
      let n = t.n_buffered in
      if n >= t.max_batch then
        match flush t with
        | Ok k -> Ok (Flushed k)
        | Error _ when t.n_buffered <= t.queue_cap ->
          (* the store refused the batch but the queue can still hold
             it: the submission is accepted (buffered), and the age
             trigger or an explicit FLUSH will retry the append *)
          Ok (Queued t.n_buffered)
        | Error e -> Error e
      else Ok (Queued n)

let tick t =
  if t.buffer <> [] && Unix.gettimeofday () -. t.oldest >= t.max_age then
    flush t
  else Ok 0
