(** Static checking for Mini programs.

    Mini is untyped at the machine level (every value is a word), so
    "checking" means scope and shape validation: bound names, no
    duplicate definitions, arrays used only as arrays, direct calls
    with the right arity. Function names used as plain values become
    function references (the "functional variables" of the paper);
    indirect calls through such values cannot be arity-checked
    statically and are validated by the VM at call time. *)

type error = { msg : string; loc : Ast.loc }

val pp_error : Format.formatter -> error -> unit

val check : ?builtins:(string * int) list -> Ast.program -> error list
(** [check p] returns all diagnosed errors, in source order (empty
    means the program is well-formed). [builtins] declares ambient
    functions with their arities (e.g. [("print", 1)]); they may be
    called directly but not used as values (a builtin is a system
    call, not an addressable routine) and may not be redefined. *)

val check_entry : Ast.program -> error list
(** Errors about the program entry point: [main] must exist and take
    no parameters. *)

val warnings : ?builtins:(string * int) list -> Ast.program -> error list
(** The known-callee pass over indirect call sites, in source order.
    A flow-insensitive fixpoint tracks which function names each
    variable, array, parameter, and return value may hold (function
    values originate only from a function name used as a value), then
    every indirect call is checked against its candidate set: a
    callee that is never assigned a function value cannot succeed,
    and a call whose argument count matches no candidate's arity
    will fail at run time. Also flags constant conditions: an [if]
    that always goes one way, and a [while]/[for] whose condition is
    constantly false ([while (1)] — the deliberate infinite loop — is
    left alone). These are warnings, not errors — the set is an
    over-approximation and a given site may be dynamically dead — but
    [minic --werror] promotes them. *)
