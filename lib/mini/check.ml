type error = { msg : string; loc : Ast.loc }

let pp_error ppf { msg; loc } = Format.fprintf ppf "%a: %s" Ast.pp_loc loc msg

type binding =
  | Scalar (* global var *)
  | Array of int
  | Func of int (* arity *)
  | Builtin of int
  | LocalVar (* parameter or local *)

type env = {
  globals : (string, binding) Hashtbl.t;
  mutable locals : (string, binding) Hashtbl.t;
  mutable loop_depth : int;
  mutable errors : error list; (* reversed *)
}

let err env loc fmt =
  Format.kasprintf (fun msg -> env.errors <- { msg; loc } :: env.errors) fmt

let lookup env x =
  match Hashtbl.find_opt env.locals x with
  | Some b -> Some b
  | None -> Hashtbl.find_opt env.globals x

let rec check_expr env (e : Ast.expr) =
  match e.desc with
  | Ast.Int _ -> ()
  | Ast.Var x -> (
    match lookup env x with
    | None -> err env e.eloc "unbound variable %s" x
    | Some (Array _) ->
      err env e.eloc "array %s cannot be used as a value; index it" x
    | Some (Builtin _) ->
      err env e.eloc "builtin %s may only be called directly" x
    | Some (Scalar | Func _ | LocalVar) -> ())
  | Ast.Index (a, i) ->
    (match lookup env a with
    | None -> err env e.eloc "unbound array %s" a
    | Some (Array _) -> ()
    | Some _ -> err env e.eloc "%s is not an array" a);
    check_expr env i
  | Ast.Call (f, args) ->
    List.iter (check_expr env) args;
    (match f.desc with
    | Ast.Var name -> (
      match lookup env name with
      | Some (Func arity | Builtin arity) ->
        if List.length args <> arity then
          err env e.eloc "%s expects %d argument%s but got %d" name arity
            (if arity = 1 then "" else "s")
            (List.length args)
      | Some (Scalar | LocalVar) -> () (* indirect call; checked at run time *)
      | Some (Array _) -> err env e.eloc "array %s cannot be called" name
      | None -> err env e.eloc "unbound function %s" name)
    | _ -> check_expr env f)
  | Ast.Binop (_, l, r) ->
    check_expr env l;
    check_expr env r
  | Ast.Unop (_, e1) -> check_expr env e1

let check_lvalue env loc x =
  match lookup env x with
  | None -> err env loc "unbound variable %s" x
  | Some (Func _ | Builtin _) -> err env loc "cannot assign to function %s" x
  | Some (Array _) -> err env loc "cannot assign to array %s without an index" x
  | Some (Scalar | LocalVar) -> ()

let rec check_stmt env (s : Ast.stmt) =
  match s.sdesc with
  | Ast.Decl (x, init) ->
    Option.iter (check_expr env) init;
    if Hashtbl.mem env.locals x then
      err env s.sloc "duplicate local declaration of %s" x
    else Hashtbl.replace env.locals x LocalVar
  | Ast.Assign (x, e) ->
    check_expr env e;
    check_lvalue env s.sloc x
  | Ast.Astore (a, i, e) ->
    check_expr env i;
    check_expr env e;
    (match lookup env a with
    | None -> err env s.sloc "unbound array %s" a
    | Some (Array _) -> ()
    | Some _ -> err env s.sloc "%s is not an array" a)
  | Ast.If (c, t, e) ->
    check_expr env c;
    List.iter (check_stmt env) t;
    List.iter (check_stmt env) e
  | Ast.While (c, b) ->
    check_expr env c;
    env.loop_depth <- env.loop_depth + 1;
    List.iter (check_stmt env) b;
    env.loop_depth <- env.loop_depth - 1
  | Ast.For (init, c, step, b) ->
    check_stmt env init;
    check_expr env c;
    (match step.sdesc with
    | Ast.Decl _ -> err env step.sloc "for-step may not declare a variable"
    | _ -> check_stmt env step);
    env.loop_depth <- env.loop_depth + 1;
    List.iter (check_stmt env) b;
    env.loop_depth <- env.loop_depth - 1
  | Ast.Return e -> Option.iter (check_expr env) e
  | Ast.Break ->
    if env.loop_depth = 0 then err env s.sloc "break outside of a loop"
  | Ast.Continue ->
    if env.loop_depth = 0 then err env s.sloc "continue outside of a loop"
  | Ast.Expr e -> check_expr env e

let check_fundef env (f : Ast.fundef) =
  env.locals <- Hashtbl.create 16;
  env.loop_depth <- 0;
  List.iter
    (fun p ->
      if Hashtbl.mem env.locals p then
        err env f.floc "duplicate parameter %s in %s" p f.fname
      else Hashtbl.replace env.locals p LocalVar)
    f.params;
  List.iter (check_stmt env) f.body

let check ?(builtins = []) (p : Ast.program) =
  let globals = Hashtbl.create 64 in
  List.iter (fun (name, arity) -> Hashtbl.replace globals name (Builtin arity)) builtins;
  let env = { globals; locals = Hashtbl.create 16; loop_depth = 0; errors = [] } in
  (* First pass: declare globals and functions (mutual recursion is
     allowed, so functions are visible before their definitions). *)
  List.iter
    (fun g ->
      let name, binding, loc =
        match g with
        | Ast.Gvar (x, _, loc) -> (x, Scalar, loc)
        | Ast.Garray (x, n, loc) -> (x, Array n, loc)
      in
      if Hashtbl.mem globals name then err env loc "duplicate global %s" name
      else Hashtbl.replace globals name binding)
    p.globals;
  List.iter
    (fun (f : Ast.fundef) ->
      if Hashtbl.mem globals f.fname then
        err env f.floc "duplicate definition of %s" f.fname
      else Hashtbl.replace globals f.fname (Func (List.length f.params)))
    p.funs;
  (* Second pass: check bodies. *)
  List.iter (check_fundef env) p.funs;
  List.rev env.errors

(* ------------------------------------------------------------------ *)
(* The known-callee warning pass.

   Direct calls are arity-checked above; indirect calls "through
   functional variables" are normally deferred to the VM. This pass
   recovers what can be known statically with a flow-insensitive
   fixpoint over the sets of function names each variable, array,
   parameter, and return value may hold — the AST-level mirror of
   Analysis.Indirect over object code. Function values originate only
   from a function name used as a value, so the sets are exact up to
   flow-insensitivity; arithmetic on a function value launders it out
   of the sets, which can only add warnings, never hide errors. *)

module SSet = Set.Make (String)

let warnings ?(builtins = []) (p : Ast.program) =
  let arity = Hashtbl.create 16 in
  List.iter
    (fun (f : Ast.fundef) ->
      Hashtbl.replace arity f.fname (List.length f.params))
    p.funs;
  let params = Hashtbl.create 16 in
  List.iter
    (fun (f : Ast.fundef) -> Hashtbl.replace params f.fname f.params)
    p.funs;
  let builtin = Hashtbl.create 8 in
  List.iter (fun (name, _) -> Hashtbl.replace builtin name ()) builtins;
  let garray = Hashtbl.create 8 in
  List.iter
    (function
      | Ast.Garray (x, _, _) -> Hashtbl.replace garray x ()
      | Ast.Gvar _ -> ())
    p.globals;
  let locals_of =
    let tbl = Hashtbl.create 16 in
    let rec collect acc (s : Ast.stmt) =
      match s.sdesc with
      | Ast.Decl (x, _) -> SSet.add x acc
      | Ast.If (_, t, e) ->
        List.fold_left collect (List.fold_left collect acc t) e
      | Ast.While (_, b) -> List.fold_left collect acc b
      | Ast.For (init, _, step, b) ->
        List.fold_left collect (collect (collect acc init) step) b
      | _ -> acc
    in
    List.iter
      (fun (f : Ast.fundef) ->
        Hashtbl.replace tbl f.fname
          (List.fold_left collect (SSet.of_list f.params) f.body))
      p.funs;
    fun fn -> Option.value ~default:SSet.empty (Hashtbl.find_opt tbl fn)
  in
  (* One flat store: locals are keyed per enclosing function, arrays
     as a whole (indices are not tracked), returns per function. *)
  let vals : (string, SSet.t) Hashtbl.t = Hashtbl.create 64 in
  let get k = Option.value ~default:SSet.empty (Hashtbl.find_opt vals k) in
  let changed = ref true in
  let joink k v =
    let old = get k in
    if not (SSet.subset v old) then begin
      Hashtbl.replace vals k (SSet.union old v);
      changed := true
    end
  in
  let lkey fn x = "l:" ^ fn ^ ":" ^ x
  and gkey x = "g:" ^ x
  and akey x = "a:" ^ x
  and rkey fn = "r:" ^ fn in
  let var_key fn x =
    if SSet.mem x (locals_of fn) then Some (lkey fn x)
    else if Hashtbl.mem garray x || Hashtbl.mem arity x
            || Hashtbl.mem builtin x then None
    else Some (gkey x)
  in
  let rec eval ?on_indirect fn (e : Ast.expr) =
    let eval = eval ?on_indirect in
    match e.desc with
    | Ast.Int _ -> SSet.empty
    | Ast.Var x ->
      if SSet.mem x (locals_of fn) then get (lkey fn x)
      else if Hashtbl.mem arity x then SSet.singleton x
      else if Hashtbl.mem garray x || Hashtbl.mem builtin x then SSet.empty
      else get (gkey x)
    | Ast.Index (a, i) ->
      ignore (eval fn i);
      get (akey a)
    | Ast.Call (f, args) -> (
      let argvs = List.map (eval fn) args in
      let nargs = List.length args in
      let apply candidates =
        (* arguments flow into the parameters of every candidate the
           call could bind to; results are the join of their returns *)
        SSet.fold
          (fun c acc ->
            (match Hashtbl.find_opt params c with
            | Some ps when List.length ps = nargs ->
              List.iter2 (fun p v -> joink (lkey c p) v) ps argvs
            | _ -> ());
            SSet.union acc (get (rkey c)))
          candidates SSet.empty
      in
      match f.desc with
      | Ast.Var x when not (SSet.mem x (locals_of fn)) && Hashtbl.mem arity x ->
        apply (SSet.singleton x)
      | Ast.Var x when not (SSet.mem x (locals_of fn)) && Hashtbl.mem builtin x
        ->
        SSet.empty
      | _ ->
        let callees = eval fn f in
        (match on_indirect with
        | Some observe -> observe fn f callees nargs
        | None -> ());
        apply callees)
    | Ast.Binop (_, l, r) ->
      ignore (eval fn l);
      ignore (eval fn r);
      SSet.empty
    | Ast.Unop (_, e1) ->
      ignore (eval fn e1);
      SSet.empty
  in
  let rec walk ?on_indirect fn (s : Ast.stmt) =
    let eval = eval ?on_indirect and walk = walk ?on_indirect in
    match s.sdesc with
    | Ast.Decl (x, init) ->
      Option.iter (fun e -> joink (lkey fn x) (eval fn e)) init
    | Ast.Assign (x, e) ->
      let v = eval fn e in
      Option.iter (fun k -> joink k v) (var_key fn x)
    | Ast.Astore (a, i, e) ->
      ignore (eval fn i);
      joink (akey a) (eval fn e)
    | Ast.If (c, t, e) ->
      ignore (eval fn c);
      List.iter (walk fn) t;
      List.iter (walk fn) e
    | Ast.While (c, b) ->
      ignore (eval fn c);
      List.iter (walk fn) b
    | Ast.For (init, c, step, b) ->
      walk fn init;
      ignore (eval fn c);
      walk fn step;
      List.iter (walk fn) b
    | Ast.Return e -> Option.iter (fun e -> joink (rkey fn) (eval fn e)) e
    | Ast.Break | Ast.Continue -> ()
    | Ast.Expr e -> ignore (eval fn e)
  in
  let rounds = ref 0 in
  while !changed && !rounds < 1000 do
    changed := false;
    incr rounds;
    List.iter
      (fun (f : Ast.fundef) -> List.iter (walk f.fname) f.body)
      p.funs
  done;
  (* One more walk over the converged sets to diagnose each site. *)
  let warns = ref [] in
  let describe (f : Ast.expr) =
    match f.desc with
    | Ast.Var x -> x
    | Ast.Index (a, _) -> a ^ "[...]"
    | _ -> "the callee expression"
  in
  let on_indirect _fn f callees nargs =
    if SSet.is_empty callees then
      warns :=
        {
          msg =
            Printf.sprintf
              "%s is never assigned a function value; this indirect call \
               cannot succeed"
              (describe f);
          loc = f.eloc;
        }
        :: !warns
    else if
      not
        (SSet.exists
           (fun c -> Hashtbl.find_opt arity c = Some nargs)
           callees)
    then
      warns :=
        {
          msg =
            Printf.sprintf
              "no possible callee of %s takes %d argument%s (candidates: %s)"
              (describe f) nargs
              (if nargs = 1 then "" else "s")
              (String.concat ", "
                 (List.map
                    (fun c ->
                      Printf.sprintf "%s/%d" c
                        (Option.value ~default:0 (Hashtbl.find_opt arity c)))
                    (SSet.elements callees)));
          loc = f.eloc;
        }
        :: !warns
  in
  changed := false;
  List.iter
    (fun (f : Ast.fundef) -> List.iter (walk ~on_indirect f.fname) f.body)
    p.funs;
  (* Constant conditions: an [if] that always goes one way, or a loop
     whose body can never run. [while (1)] stays quiet — the deliberate
     infinite loop is idiom; the branch that cannot happen is a bug.
     This is the source-level mirror of Analysis.Facts.constprop's
     const-branch rule over the object code. *)
  let constant_cond (c : Ast.expr) what =
    match c.desc with
    | Ast.Int 0 ->
      warns :=
        { msg = Printf.sprintf "%s condition is constantly false" what;
          loc = c.eloc }
        :: !warns
    | Ast.Int _ when what = "if" ->
      warns :=
        { msg = "if condition is constantly true"; loc = c.eloc } :: !warns
    | _ -> ()
  in
  let rec scan (s : Ast.stmt) =
    match s.sdesc with
    | Ast.If (c, t, e) ->
      constant_cond c "if";
      List.iter scan t;
      List.iter scan e
    | Ast.While (c, b) ->
      constant_cond c "while";
      List.iter scan b
    | Ast.For (init, c, step, b) ->
      scan init;
      constant_cond c "for";
      scan step;
      List.iter scan b
    | Ast.Decl _ | Ast.Assign _ | Ast.Astore _ | Ast.Return _ | Ast.Break
    | Ast.Continue | Ast.Expr _ -> ()
  in
  List.iter (fun (f : Ast.fundef) -> List.iter scan f.body) p.funs;
  List.sort
    (fun a b -> compare (a.loc.Ast.line, a.loc.Ast.col) (b.loc.Ast.line, b.loc.Ast.col))
    !warns

let check_entry (p : Ast.program) =
  match List.find_opt (fun (f : Ast.fundef) -> f.fname = "main") p.funs with
  | None -> [ { msg = "program has no main function"; loc = Ast.dummy_loc } ]
  | Some f ->
    if f.params = [] then []
    else [ { msg = "main must take no parameters"; loc = f.floc } ]
