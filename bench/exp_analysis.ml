(* The static-analysis subsystem: how the cost of the CFG build, the
   indirect-call fixpoint, and the full lint scale with text size, and
   whether the functional-parameter resolution actually recovers the
   arcs the paper's crawl concedes it misses ("calls to routines
   passed as parameters", §2). *)

open Harness

let time_of f =
  (* Median of repeated runs; these passes are microseconds to
     milliseconds, so a handful of repetitions is enough to shrug off
     a scheduler hiccup. *)
  let reps = 9 in
  let samples =
    List.init reps (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (f ());
        Unix.gettimeofday () -. t0)
  in
  List.nth (List.sort compare samples) (reps / 2)

let t_analysis () =
  section "analysis cost vs text size (every workload)";
  Printf.printf "  %-16s %6s %6s %6s %10s %10s %10s\n" "workload" "text"
    "blocks" "edges" "cfg us" "indir us" "lint us";
  let rows =
    List.map
      (fun (w : Workloads.Programs.t) ->
        let r = run_workload w in
        let o = r.objfile in
        let cfg = Analysis.Cfg.build o in
        let ind = Analysis.Indirect.analyze o in
        let t_cfg = time_of (fun () -> Analysis.Cfg.build o) in
        let t_ind = time_of (fun () -> Analysis.Indirect.analyze o) in
        let t_lint =
          time_of (fun () -> Analysis.Proflint.lint ~cfg ~indirect:ind o r.gmon)
        in
        let result = Analysis.Proflint.lint ~cfg ~indirect:ind o r.gmon in
        Printf.printf "  %-16s %6d %6d %6d %10.1f %10.1f %10.1f\n" w.w_name
          (Array.length o.Objcode.Objfile.text)
          (Analysis.Cfg.n_blocks cfg) (Analysis.Cfg.n_edges cfg) (t_cfg *. 1e6)
          (t_ind *. 1e6) (t_lint *. 1e6);
        (w.w_name, Array.length o.Objcode.Objfile.text, t_cfg +. t_ind +. t_lint,
         result))
      Workloads.Programs.all
  in
  expect "every intact workload lints clean (no errors)"
    (List.for_all
       (fun (_, _, _, result) ->
         match Analysis.Proflint.worst result with
         | Some Analysis.Proflint.Error -> false
         | _ -> true)
       rows);
  (* The passes are a linear scan plus a small fixpoint; on these
     workloads (tens to hundreds of instructions) the whole stack
     should stay comfortably in the sub-10ms regime. *)
  expect "full analysis of every workload under 10 ms"
    (List.for_all (fun (_, _, t, _) -> t < 0.010) rows);
  let cost_per_instr (_, n, t, _) = t /. float_of_int (max 1 n) in
  let costs = List.map cost_per_instr rows in
  let lo = List.fold_left min infinity costs
  and hi = List.fold_left max 0.0 costs in
  Printf.printf "  per-instruction cost: %.0f..%.0f ns\n" (lo *. 1e9)
    (hi *. 1e9);
  (* A loose super-linearity guard: if the per-instruction cost of the
     dearest workload dwarfs the cheapest by orders of magnitude, a
     pass has gone quadratic. *)
  expect "per-instruction cost spread within 100x" (hi <= 100.0 *. lo);

  section "indirect-arc recall (the 'functional parameter' blind spot)";
  let r = run_workload Workloads.Programs.indirect in
  let o = r.objfile in
  let ind = Analysis.Indirect.analyze o in
  let name_of addr =
    match Objcode.Objfile.find_symbol o addr with
    | Some s -> s.Objcode.Objfile.name
    | None -> "?"
  in
  (* Dynamic arcs whose call site holds a Calli are exactly the arcs
     the paper's crawl cannot see. Sound resolution must predict every
     one of them. *)
  let dynamic_indirect =
    List.filter_map
      (fun (a : Gmon.arc) ->
        if
          a.Gmon.a_from >= 0
          && a.Gmon.a_from < Array.length o.Objcode.Objfile.text
        then
          match o.Objcode.Objfile.text.(a.Gmon.a_from) with
          | Objcode.Instr.Calli _ ->
            Some (name_of a.Gmon.a_from, name_of a.Gmon.a_self)
          | _ -> None
        else None)
      r.gmon.Gmon.arcs
    |> List.sort_uniq compare
  in
  let predicted = ind.Analysis.Indirect.i_arcs in
  let recalled =
    List.filter (fun arc -> List.mem arc predicted) dynamic_indirect
  in
  Printf.printf
    "  dynamic indirect arcs: %d   predicted static arcs: %d   recalled: %d\n"
    (List.length dynamic_indirect) (List.length predicted)
    (List.length recalled);
  List.iter
    (fun (src, dst) ->
      Printf.printf "    %s -> %s%s\n" src dst
        (if List.mem (src, dst) predicted then "" else "   [MISSED]"))
    dynamic_indirect;
  expect "workload exercises indirect calls" (dynamic_indirect <> []);
  expect "recall = 1.0: every dynamic indirect arc is predicted"
    (List.length recalled = List.length dynamic_indirect);
  (* Over-approximation is allowed, silence is not: the resolved set
     may exceed what one run exercised, but a pass that predicted
     nothing would trivially "never miss". *)
  expect "prediction is an over-approximation (>= dynamic set)"
    (List.length predicted >= List.length dynamic_indirect);
  Obs.Metrics.set
    (Obs.Metrics.gauge Obs.Metrics.default "bench.analysis.indirect_recall_ppm"
       ~help:
         "share of dynamically observed indirect arcs predicted by the \
          static resolution, parts per million")
    (if dynamic_indirect = [] then 0
     else 1_000_000 * List.length recalled / List.length dynamic_indirect);

  section "count-0 arcs reach the report (use_static_arcs)";
  (* A dispatch table with an entry this run never picks: the arc to
     the unpicked handler exists only statically, so it can enter the
     listing only through the augmentation, and only at count 0. *)
  let unpicked : Workloads.Programs.t =
    {
      w_name = "unpicked";
      w_about = "dispatch table with a handler this run never selects";
      w_source =
        {|
array tab[2];
var sink;

fun used(x) { return x + 1; }
fun unpicked(x) { return x - 1; }

fun main() {
  var i;
  var f;
  tab[0] = used;
  tab[1] = unpicked;
  for (i = 0; i < 4000; i = i + 1) { f = tab[0]; sink = sink + f(i); }
  print(sink);
  return 0;
}
|};
    }
  in
  let r = run_workload unpicked in
  let options =
    { Gprof_core.Report.default_options with use_static_arcs = true }
  in
  let rep = analyze_run ~report:options r in
  let p = rep.Gprof_core.Report.profile in
  let statically_only =
    (* Child lines with zero traversals: the paper's "never
       responsible for any time propagation" arcs, visible in the
       call-graph listing only because the static augmentation added
       them. *)
    Array.fold_left
      (fun acc (e : Gprof_core.Profile.entry) ->
        acc
        + List.length
            (List.filter
               (fun (av : Gprof_core.Profile.arc_view) ->
                 av.Gprof_core.Profile.av_count = 0)
               e.Gprof_core.Profile.e_children))
      0 p.Gprof_core.Profile.entries
  in
  Printf.printf "  count-0 arcs in the augmented call graph: %d\n"
    statically_only;
  expect "static augmentation contributes count-0 arcs" (statically_only > 0)

let register () =
  register "t-analysis"
    "static analysis: pass cost vs text size, indirect-arc recall, count-0 arcs"
    t_analysis
