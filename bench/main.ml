(* The benchmark and experiment harness.

   Regenerates every figure of the paper and every quantitative or
   mechanism claim of the paper and its retrospective (see the
   experiment index in DESIGN.md and the results log in
   EXPERIMENTS.md).

     dune exec bench/main.exe                 # run everything
     dune exec bench/main.exe -- --list       # list experiment ids
     dune exec bench/main.exe -- --only fig4  # run a single experiment
     dune exec bench/main.exe -- --obs-json m.json   # dump the metrics registry
*)

let () =
  Exp_figures.register ();
  Exp_claims.register ();
  Exp_accuracy.register ();
  Exp_micro.register ();
  Exp_obs.register ();
  Exp_robust.register ();
  Exp_timeline.register ();
  Exp_analysis.register ();
  Exp_dataflow.register ();
  Exp_store.register ();
  Exp_chaos.register ();
  Exp_pgo.register ();
  let args = Array.to_list Sys.argv |> List.tl in
  let obs_json = ref None in
  let rec parse only = function
    | [] -> List.rev only
    | "--list" :: _ ->
      List.iter
        (fun (t : Harness.t) -> Printf.printf "%-12s %s\n" t.id t.what)
        (List.rev !Harness.registry);
      exit 0
    | "--only" :: id :: rest -> parse (id :: only) rest
    | "--obs-json" :: file :: rest ->
      obs_json := Some file;
      parse only rest
    | arg :: _ ->
      Printf.eprintf "unknown argument %s (try --list, --only ID, --obs-json FILE)\n"
        arg;
      exit 1
  in
  let only = parse [] args in
  let finally () =
    (* Written even when expectations failed: the registry — per-
       experiment wall times, gmon traffic, the instrumentation-
       overhead gauge — is exactly what BENCH files want to track. *)
    Option.iter (Obs.Metrics.save Obs.Metrics.default) !obs_json
  in
  Fun.protect ~finally (fun () -> Harness.run_all ~only)
