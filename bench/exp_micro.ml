(* Microbenchmarks: the arc-table keying ablation (§3.1's design
   argument) and throughput of the post-processor's hot paths, timed
   with Bechamel. *)

open Harness

(* §3.1: "We use the call site as the primary key … Another
   alternative would use the callee as the primary key … at the
   expense of longer lookups in the monitoring routine." *)
let t_hash () =
  section "modelled probe counts on real workloads";
  let t =
    Util.Table.create
      [ ("workload", Util.Table.Left); ("keying", Util.Table.Left);
        ("records", Util.Table.Right); ("probes", Util.Table.Right);
        ("probes/record", Util.Table.Right); ("mcount cycles", Util.Table.Right) ]
  in
  let measured =
    List.concat_map
      (fun w ->
        List.map
          (fun keying ->
            let config = { Vm.Machine.default_config with keying } in
            let r = run_workload ~config w in
            let mon = Vm.Machine.monitor r.machine in
            let records = Vm.Monitor.total_records mon in
            let probes = Vm.Monitor.total_probes mon in
            Util.Table.add_row t
              [
                w.Workloads.Programs.w_name;
                (match keying with
                | Vm.Monitor.Site_primary -> "call-site primary"
                | Vm.Monitor.Callee_primary -> "callee primary");
                string_of_int records;
                string_of_int probes;
                Printf.sprintf "%.2f" (float_of_int probes /. float_of_int records);
                string_of_int (Vm.Machine.mcount_cycles r.machine);
              ];
            ((w.Workloads.Programs.w_name, keying), (probes, records)))
          [ Vm.Monitor.Site_primary; Vm.Monitor.Callee_primary ])
      Workloads.Programs.[ matrix; indirect; explore ]
  in
  Util.Table.print t;
  let per_record w k =
    let probes, records = List.assoc (w, k) measured in
    float_of_int probes /. float_of_int records
  in
  (* The trade-off exactly as §3.1 argues it: keying by callee makes
     lookups longer wherever a routine has many callers (explore's
     write_out); keying by call site only ever chains at sites with
     multiple destinations — functional variables (indirect). *)
  expect "with many callers per callee (explore), callee keying probes ~2x more"
    (per_record "explore" Vm.Monitor.Callee_primary
    > 1.8 *. per_record "explore" Vm.Monitor.Site_primary);
  expect
    "call-site keying probes exactly once per record when every site has one callee"
    (per_record "matrix" Vm.Monitor.Site_primary < 1.001
    && per_record "explore" Vm.Monitor.Site_primary < 1.001);
  expect "only functional-variable sites (indirect) lengthen call-site chains"
    (per_record "indirect" Vm.Monitor.Site_primary > 1.2);

  section "host-time microbenchmark of the two table layouts (Bechamel)";
  (* A synthetic record stream: 64 call sites calling 8 shared
     callees, the shape that separates the layouts. *)
  let stream =
    let prng = Util.Prng.create 42 in
    Array.init 4096 (fun _ ->
        (Util.Prng.int prng 64 * 4, 600 + (Util.Prng.int prng 8 * 4)))
  in
  let bench keying name =
    Bechamel.Test.make ~name
      (Bechamel.Staged.stage (fun () ->
           let mon = Vm.Monitor.create ~text_size:1024 ~keying in
           Array.iter
             (fun (frompc, selfpc) -> ignore (Vm.Monitor.record mon ~frompc ~selfpc))
             stream))
  in
  let grouped =
    Bechamel.Test.make_grouped ~name:"mcount"
      [ bench Vm.Monitor.Site_primary "site-primary";
        bench Vm.Monitor.Callee_primary "callee-primary" ]
  in
  let ests = stats_of_benchmark grouped in
  List.iter
    (fun (name, ns) -> Printf.printf "  %-28s %12.0f ns/run\n" name ns)
    (List.sort compare ests);
  let est name =
    List.assoc_opt name ests
  in
  match (est "mcount/site-primary", est "mcount/callee-primary") with
  | Some site, Some callee ->
    expect "site-primary is at least as fast on the shared-callee stream"
      (site <= callee *. 1.10)
  | _ -> expect "bechamel produced estimates for both layouts" false

(* Throughput of the analysis hot paths on large random inputs. *)
let bench_core () =
  let prng = Util.Prng.create 7 in
  let n = 2000 in
  let g = Graphlib.Digraph.create n in
  for _ = 1 to 8000 do
    Graphlib.Digraph.add_arc g
      ~src:(Util.Prng.int prng n)
      ~dst:(Util.Prng.int prng n)
      ~count:(1 + Util.Prng.int prng 50)
  done;
  let o = (run_workload Workloads.Programs.codegen).objfile in
  let gmon = (run_workload Workloads.Programs.codegen).gmon in
  let vm_obj =
    match
      Compile.Codegen.compile_source ~options:Compile.Codegen.profiling_options
        Workloads.Programs.quick.w_source
    with
    | Ok o -> o
    | Error e -> failwith e
  in
  let tests =
    Bechamel.Test.make_grouped ~name:"core"
      [
        Bechamel.Test.make ~name:"tarjan-scc-2k-nodes"
          (Bechamel.Staged.stage (fun () -> ignore (Graphlib.Tarjan.scc g)));
        Bechamel.Test.make ~name:"condense-2k-nodes"
          (Bechamel.Staged.stage (fun () -> ignore (Graphlib.Condense.condense g)));
        Bechamel.Test.make ~name:"gprof-analyze-codegen"
          (Bechamel.Staged.stage (fun () ->
               ignore (Gprof_core.Report.analyze o gmon)));
        Bechamel.Test.make ~name:"render-graph-profile"
          (let r =
             match Gprof_core.Report.analyze o gmon with
             | Ok r -> r
             | Error e -> failwith e
           in
           Bechamel.Staged.stage (fun () ->
               ignore (Gprof_core.Report.graph_listing r)));
        Bechamel.Test.make ~name:"vm-run-quick-workload"
          (Bechamel.Staged.stage (fun () ->
               let m = Vm.Machine.create vm_obj in
               ignore (Vm.Machine.run m)));
      ]
  in
  section "post-processor and VM throughput (Bechamel, ns per run)";
  let ests = stats_of_benchmark tests in
  List.iter
    (fun (name, ns) -> Printf.printf "  %-28s %14.0f ns/run\n" name ns)
    (List.sort compare ests);
  expect "all five hot paths produced estimates" (List.length ests = 5)

let register () =
  register "t-hash" "§3.1 design choice: call-site-primary vs callee-primary arc table" t_hash;
  register "bench-core" "microbenchmarks of SCC, analysis, rendering, and the VM" bench_core
