(* Close the loop: feed each workload's own profile back into the
   compiler and measure, honestly, what the rebuild buys — executed
   instructions and simulated time against the baseline — then
   re-profile the optimized binary and lint the pairing, since a PGO
   build that can no longer be profiled has traded away the paper's
   whole subject. *)

open Harness

let workloads =
  Workloads.Programs.[ quick; matrix; sort; short; skewed ]

let optimize (w : Workloads.Programs.t) gmon =
  let p = Mini.Parser.parse_program w.w_source in
  match
    Pgo.optimize ~options:Compile.Codegen.profiling_options
      ~source_name:w.w_name p gmon
  with
  | Ok (obj, report) -> (obj, report)
  | Error e ->
    Printf.eprintf "pgo %s failed: %s\n" w.w_name e;
    exit 3

let run_obj name obj =
  let machine = Vm.Machine.create obj in
  match Vm.Machine.run machine with
  | Vm.Machine.Halted -> machine
  | Vm.Machine.Faulted f ->
    Printf.eprintf "optimized %s faulted: %s\n" name
      (Format.asprintf "%a" Vm.Machine.pp_fault f);
    exit 3
  | Vm.Machine.Running ->
    Printf.eprintf "optimized %s did not terminate\n" name;
    exit 3

type row = {
  w : Workloads.Programs.t;
  base : Workloads.Driver.run;
  obj : Objcode.Objfile.t;
  report : Pgo.report;
  machine : Vm.Machine.t;
  fresh : Gmon.t;
}

let t_pgo () =
  section "profile-guided rebuild vs baseline (instructions and simulated time)";
  Printf.printf "  %-10s %12s %12s %7s %12s %12s %7s\n" "workload" "base instr"
    "pgo instr" "delta" "base cyc" "pgo cyc" "delta";
  let rows =
    List.map
      (fun (w : Workloads.Programs.t) ->
        let base = run_workload w in
        let obj, report = optimize w base.gmon in
        let machine = run_obj w.w_name obj in
        let fresh = Vm.Machine.profile machine in
        let bi = Vm.Machine.instructions_executed base.machine
        and oi = Vm.Machine.instructions_executed machine
        and bc = Vm.Machine.cycles base.machine
        and oc = Vm.Machine.cycles machine in
        let pct a b = 100.0 *. float_of_int (b - a) /. float_of_int a in
        Printf.printf "  %-10s %12d %12d %6.2f%% %12d %12d %6.2f%%\n" w.w_name
          bi oi (pct bi oi) bc oc (pct bc oc);
        { w; base; obj; report; machine; fresh })
      workloads
  in
  let instr r = Vm.Machine.instructions_executed r.machine
  and base_instr r = Vm.Machine.instructions_executed r.base.machine
  and cyc r = Vm.Machine.cycles r.machine
  and base_cyc r = Vm.Machine.cycles r.base.machine in
  expect "no workload executes more instructions after PGO"
    (List.for_all (fun r -> instr r <= base_instr r) rows);
  expect "at least 2 workloads execute strictly fewer instructions"
    (List.length (List.filter (fun r -> instr r < base_instr r) rows) >= 2);
  expect "no workload takes more simulated time after PGO"
    (List.for_all (fun r -> cyc r <= base_cyc r) rows);
  expect "at least 2 workloads take strictly less simulated time"
    (List.length (List.filter (fun r -> cyc r < base_cyc r) rows) >= 2);
  expect "every optimized build prints the baseline's output"
    (List.for_all
       (fun r -> Vm.Machine.output r.machine = Vm.Machine.output r.base.machine)
       rows);

  section "the optimized binaries still profile cleanly";
  let lints =
    List.map
      (fun r -> (r, Analysis.Proflint.lint r.obj r.fresh))
      rows
  in
  List.iter
    (fun ((r : row), lint) ->
      Printf.printf "  %-10s fresh-profile lint exit %d\n" r.w.w_name
        (Analysis.Proflint.exit_code ~strict:true lint))
    lints;
  expect "fresh profile of every optimized binary lints clean (strict)"
    (List.for_all
       (fun (_, lint) -> Analysis.Proflint.exit_code ~strict:true lint = 0)
       lints);
  expect "pgo pairing rules find no errors or warnings against the baseline"
    (List.for_all
       (fun r ->
         Analysis.Proflint.exit_code ~strict:true
           (Analysis.Proflint.lint_pgo ~baseline:r.base.objfile r.obj)
         = 0)
       rows);

  section "decisions are deterministic";
  expect "a second optimization run reproduces binary and log byte-for-byte"
    (List.for_all
       (fun r ->
         let obj2, report2 = optimize r.w r.base.gmon in
         Objcode.Objfile.equal r.obj obj2
         && Pgo.report_listing r.report = Pgo.report_listing report2)
       rows);
  expect "the inliner fired on at least 2 workloads"
    (List.length (List.filter (fun r -> r.report.Pgo.p_inline_names <> []) rows)
    >= 2);
  expect "block layout changed somewhere"
    (List.exists (fun r -> r.report.Pgo.p_reorder <> []) rows);

  section "what the optimizer decided (sort workload)";
  (match List.find_opt (fun r -> r.w.Workloads.Programs.w_name = "sort") rows with
  | Some r -> print_string (Pgo.report_listing r.report)
  | None -> ())

let register () =
  register "t-pgo"
    "profile-guided optimization: optimized vs baseline, re-profiled and linted"
    t_pgo
