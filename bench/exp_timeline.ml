(* The profile timeline: exactness of the epoch engine (summing the
   per-window deltas must reproduce the whole-run profile bit for
   bit), the container round-trip, the rendered digest, and the
   host-time overhead of snapshotting every window (target: below
   5%). *)

open Harness

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let t_timeline () =
  section "epoch exactness (matrix workload, one epoch per 8 ticks)";
  let config = { Vm.Machine.default_config with epoch_ticks = Some 8 } in
  let r = run_workload ~config Workloads.Programs.matrix in
  let c =
    match Vm.Machine.epochs r.machine with
    | Some c -> c
    | None ->
      Printf.eprintf "epoch engine produced no container\n";
      exit 3
  in
  Printf.printf "  %d ticks over %d epoch(s)\n" (Vm.Machine.ticks r.machine)
    (Gmon.Epoch.n_epochs c);
  expect "several epochs recorded" (Gmon.Epoch.n_epochs c > 1);
  expect "container validates" (Gmon.Epoch.validate c = Ok ());
  (match Gmon.Epoch.sum c with
  | Error e ->
    Printf.eprintf "sum failed: %s\n" e;
    expect "epoch sum computable" false
  | Ok s ->
    expect "sum of epochs is bit-identical to the whole-run profile"
      (Gmon.to_bytes s = Gmon.to_bytes r.gmon));
  expect "container encoding round-trips"
    (match Gmon.Epoch.of_bytes (Gmon.Epoch.to_bytes c) with
    | Ok c' -> Gmon.Epoch.equal c c'
    | Error _ -> false);

  section "timeline digest";
  (match Gprof_core.Export.timeline r.objfile c with
  | Error e ->
    Printf.eprintf "timeline failed: %s\n" e;
    expect "timeline renders" false
  | Ok digest ->
    print_string digest;
    expect "timeline renders" (contains ~needle:"timeline:" digest);
    expect "digest covers every window"
      (contains
         ~needle:(Printf.sprintf "epoch %d " (Gmon.Epoch.n_epochs c))
         digest));

  section "host-time overhead of epoch snapshots (median paired ratio)";
  let obj =
    match Workloads.Driver.compile Workloads.Programs.matrix with
    | Ok o -> o
    | Error e -> failwith e
  in
  let time epoch_ticks =
    let config = { Vm.Machine.default_config with epoch_ticks } in
    let t0 = Unix.gettimeofday () in
    ignore (Vm.Machine.run (Vm.Machine.create ~config obj));
    Unix.gettimeofday () -. t0
  in
  (* Sequential A-then-B measurement confuses machine drift (thermal,
     contention) with the configuration under test.  Each iteration
     times the two configurations back to back, so the per-pair ratio
     cancels whatever speed the machine happened to be running at; the
     median over pairs then discards the pairs a scheduler hiccup
     landed on. *)
  ignore (time None);
  ignore (time (Some 8));
  let pairs =
    List.init 11 (fun _ ->
        let off = time None in
        let on = time (Some 8) in
        (off, on))
  in
  let median l = List.nth (List.sort compare l) (List.length l / 2) in
  let off = median (List.map fst pairs) and on = median (List.map snd pairs) in
  Printf.printf "  %-20s %12.0f ns/run\n  %-20s %12.0f ns/run\n"
    "vm/epochs-off" (off *. 1e9) "vm/epochs-on" (on *. 1e9);
  let ratio = median (List.map (fun (off, on) -> on /. off) pairs) in
  let overhead = ratio -. 1.0 in
  Printf.printf "  overhead: %.2f%% (median of %d paired ratios)\n"
    (100.0 *. overhead) (List.length pairs);
  (* Published so `bench/main.exe --obs-json` lets BENCH files track
     the snapshot cost across PRs. *)
  Obs.Metrics.set
    (Obs.Metrics.gauge Obs.Metrics.default "bench.timeline.overhead_ppm"
       ~help:
         "relative host-time cost of epoch-snapshotting VM runs, parts \
          per million")
    (int_of_float (overhead *. 1e6));
  expect "epoch-snapshot overhead below 5%" (ratio <= 1.05)

let register () =
  register "t-timeline"
    "profile timeline: epoch exactness, container round-trip, snapshot overhead"
    t_timeline
