(* The experiment harness shared by all bench targets: registration,
   headers, and the expectation summary printed per experiment. *)

type outcome = { checked : int; holds : int }

type t = {
  id : string;
  what : string; (* the paper artifact or claim being regenerated *)
  run : unit -> unit;
}

let registry : t list ref = ref []

let register id what run = registry := { id; what; run } :: !registry

let expectations : (bool * string) list ref = ref []

let expect label holds = expectations := (holds, label) :: !expectations

let section fmt = Printf.printf ("\n== " ^^ fmt ^^ " ==\n")

let run_one t =
  Printf.printf "\n%s\n" (String.make 74 '=');
  Printf.printf "[%s] %s\n" t.id t.what;
  Printf.printf "%s\n" (String.make 74 '=');
  expectations := [];
  let started = Unix.gettimeofday () in
  Obs.Trace.with_span ~cat:"bench" ("exp:" ^ t.id) t.run;
  (* Per-experiment wall time lands in the default registry so
     --obs-json captures a machine-readable cost breakdown. *)
  Obs.Metrics.set
    (Obs.Metrics.gauge Obs.Metrics.default ("bench.exp." ^ t.id ^ ".us"))
    (int_of_float ((Unix.gettimeofday () -. started) *. 1e6));
  let exps = List.rev !expectations in
  List.iter
    (fun (holds, label) ->
      Printf.printf "  %s %s\n" (if holds then "[holds]" else "[FAILS]") label)
    exps;
  let holds = List.length (List.filter fst exps) in
  { checked = List.length exps; holds }

let run_all ~only =
  let all = List.rev !registry in
  let selected =
    match only with
    | [] -> all
    | ids -> List.filter (fun t -> List.mem t.id ids) all
  in
  if selected = [] then begin
    Printf.printf "no experiments matched; available ids:\n";
    List.iter (fun t -> Printf.printf "  %-12s %s\n" t.id t.what) all;
    exit 1
  end;
  let results = List.map (fun t -> (t.id, run_one t)) selected in
  Printf.printf "\n%s\n" (String.make 74 '=');
  Printf.printf "summary\n%s\n" (String.make 74 '=');
  List.iter
    (fun (id, o) ->
      Printf.printf "  %-12s %d/%d expectations hold\n" id o.holds o.checked)
    results;
  let bad =
    List.exists (fun (_, o) -> o.holds < o.checked) results
  in
  if bad then exit 2

(* Shared helpers. *)

(* Run a bechamel test group and return (name, ns-per-run) estimates. *)
let stats_of_benchmark test =
  let open Bechamel in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1500 ~quota:(Time.second 0.4) ~kde:None () in
  let raw = Benchmark.all cfg instances test in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  Hashtbl.fold
    (fun name result acc ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> (name, est) :: acc
      | _ -> acc)
    results []

let run_workload ?options ?config w =
  match Workloads.Driver.run ?options ?config w with
  | Ok r -> r
  | Error e ->
    Printf.eprintf "workload %s failed: %s\n" w.Workloads.Programs.w_name e;
    exit 3

let analyze_run ?(report = Gprof_core.Report.default_options) (r : Workloads.Driver.run) =
  match Gprof_core.Report.analyze ~options:report r.objfile r.gmon with
  | Ok rep -> rep
  | Error e ->
    Printf.eprintf "analyze failed: %s\n" e;
    exit 3

let entry_by (p : Gprof_core.Profile.t) name =
  match Gprof_core.Symtab.id_of_name p.symtab name with
  | Some id -> p.entries.(id)
  | None ->
    Printf.eprintf "no such routine %s\n" name;
    exit 3

let cycles_per_second = 1_000_000.0
