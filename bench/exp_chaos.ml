(* The ingestion pipeline under injected store faults: throughput and
   shed rate when 0%, 1%, and 10% of store appends fail, driven through
   the same bounded queue and fault plane the daemon uses. The
   load-bearing check is the accounting equation: every submission is
   either stored, quarantined, or shed-and-retried — after the retries
   land, the store holds exactly one run per submission, and its merged
   view equals the offline merge. Nothing is ever silently dropped. *)

open Harness

let with_dir f =
  let dir = Filename.temp_file "bench_chaos" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun n -> rm (Filename.concat p n)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

let gauge name help v =
  Obs.Metrics.set (Obs.Metrics.gauge Obs.Metrics.default name ~help) v

let t_chaos () =
  let payloads =
    List.map
      (fun seed ->
        let r =
          run_workload
            ~config:{ Vm.Machine.default_config with seed }
            Workloads.Programs.quick
        in
        Gmon.to_bytes r.gmon)
      [ 1; 2; 3; 4 ]
  in
  let nth_bytes i = List.nth payloads (i mod 4) in
  let n = 500 in
  let ok = function
    | Ok v -> v
    | Error e ->
      Printf.eprintf "store operation failed: %s\n" e;
      exit 3
  in
  let all_accounted = ref true in
  List.iter
    (fun rate ->
      with_dir @@ fun dir ->
      section "%d profiles with %.0f%% of store appends failing" n
        (rate *. 100.0);
      let st, _ = ok (Store.open_ ~shards:8 dir) in
      (* queue_cap = max_batch puts the queue at capacity the moment a
         flush fails, so backpressure (shed) is visible at realistic
         fault rates instead of needing a long outage *)
      let q = Ingest.create ~max_batch:16 ~max_age:3600.0 ~queue_cap:16 st in
      (match
         Faultplane.of_spec (Printf.sprintf "seed=42,storefail=%g" rate)
       with
      | Ok p -> Faultplane.configure (Some p)
      | Error e ->
        Printf.eprintf "fault spec: %s\n" e;
        exit 3);
      Fun.protect ~finally:(fun () -> Faultplane.configure None)
      @@ fun () ->
      (* a shed submission models what a client spools: it must be
         retried, and the retry must land exactly once *)
      let shed = ref [] in
      let n_shed = ref 0 in
      let t0 = Unix.gettimeofday () in
      for i = 1 to n do
        let payload = nth_bytes i in
        match
          ok
            (Ingest.submit q
               ~label:(Printf.sprintf "svc-%d" (i mod 16))
               payload)
        with
        | Ingest.Shed ->
          incr n_shed;
          shed := (i, payload) :: !shed
        | Ingest.Queued _ | Ingest.Flushed _ -> ()
        | Ingest.Quarantined _ -> all_accounted := false
      done;
      (* the flaky store eventually takes the tail: keep flushing, as
         the daemon's age trigger would *)
      let flush_until_empty () =
        let budget = ref 100_000 in
        while Ingest.pending q > 0 && !budget > 0 do
          decr budget;
          ignore (Ingest.flush q)
        done;
        if Ingest.pending q > 0 then all_accounted := false
      in
      flush_until_empty ();
      let ingest_s = Unix.gettimeofday () -. t0 in
      (* drain the "spool": resubmit everything that was shed *)
      List.iter
        (fun (i, payload) ->
          let rec retry k =
            if k > 10_000 then all_accounted := false
            else
              match
                ok
                  (Ingest.submit q
                     ~label:(Printf.sprintf "svc-%d" (i mod 16))
                     payload)
              with
              | Ingest.Shed -> (
                match Ingest.flush q with _ -> retry (k + 1))
              | _ -> ()
          in
          retry 0)
        (List.rev !shed);
      flush_until_empty ();
      let stats = Store.stats st in
      let stored = stats.Store.st_total_runs in
      let quarantined = stats.Store.st_quarantined in
      let per_s = float_of_int n /. ingest_s in
      Printf.printf
        "  ingest %7.0f profiles/s; shed %d/%d (%.1f%%); stored %d, \
         quarantined %d — accounted %d/%d\n"
        per_s !n_shed n
        (100.0 *. float_of_int !n_shed /. float_of_int n)
        stored quarantined (stored + quarantined) n;
      if stored + quarantined <> n then all_accounted := false;
      let tag = Printf.sprintf "%.0f" (rate *. 100.0) in
      gauge
        ("bench.chaos.ingest_per_s_fault" ^ tag)
        "ingest throughput with injected store-append faults, profiles/s"
        (int_of_float per_s);
      gauge ("bench.chaos.shed_fault" ^ tag)
        "submissions shed (BUSY) under injected store-append faults" !n_shed)
    [ 0.0; 0.01; 0.1 ];
  expect
    "every submission accounted for: stored + quarantined = submitted, at \
     every fault rate"
    !all_accounted

let register () =
  register "t-chaos"
    "robustness: ingest throughput, shed rate, and exact accounting under \
     injected store faults"
    t_chaos
